#include "tools/audlint_core.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace aud {
namespace audlint {

namespace {

// Strips a trailing // comment and surrounding whitespace.
std::string StripLine(std::string line) {
  size_t comment = line.find("//");
  if (comment != std::string::npos) {
    line.erase(comment);
  }
  size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = line.find_last_not_of(" \t");
  return line.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True if `text` contains `token` not embedded in a longer identifier.
bool ContainsToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t after = pos + token.size();
    bool right_ok = after >= text.size() || !IsIdentChar(text[after]);
    if (left_ok && right_ok) {
      return true;
    }
    pos = after;
  }
  return false;
}

const std::string* Find(const std::map<std::string, std::string>& files,
                        const std::string& key) {
  auto it = files.find(key);
  return it == files.end() ? nullptr : &it->second;
}

}  // namespace

OpcodeEnum ParseOpcodeEnum(const std::string& protocol_h,
                           std::vector<std::string>* problems) {
  OpcodeEnum result;
  size_t start = protocol_h.find("enum class Opcode");
  if (start == std::string::npos) {
    problems->push_back("protocol.h: `enum class Opcode` not found");
    return result;
  }
  size_t open = protocol_h.find('{', start);
  size_t close = protocol_h.find("};", open);
  if (open == std::string::npos || close == std::string::npos) {
    problems->push_back("protocol.h: Opcode enum body not found");
    return result;
  }
  for (const std::string& raw :
       SplitLines(protocol_h.substr(open + 1, close - open - 1))) {
    std::string line = StripLine(raw);
    if (line.empty() || line[0] != 'k') {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    std::string name = StripLine(line.substr(0, eq));
    int value = -1;
    try {
      value = std::stoi(StripLine(line.substr(eq + 1)));
    } catch (...) {
      problems->push_back("protocol.h: unparseable opcode value in: " + line);
      continue;
    }
    if (name == "kOpcodeCount") {
      result.count = value;
    } else {
      result.entries.push_back({name.substr(1), value});
    }
  }
  if (result.count < 0) {
    problems->push_back("protocol.h: kOpcodeCount not found in Opcode enum");
  } else if (static_cast<int>(result.entries.size()) != result.count) {
    problems->push_back("protocol.h: kOpcodeCount is " +
                        std::to_string(result.count) + " but the enum lists " +
                        std::to_string(result.entries.size()) + " opcodes");
  }
  // Values must be dense 0..N-1 in declaration order: the name table and
  // the per-opcode metrics arrays index by value.
  for (size_t i = 0; i < result.entries.size(); ++i) {
    if (result.entries[i].value != static_cast<int>(i)) {
      problems->push_back("protocol.h: opcode k" + result.entries[i].name +
                          " has value " + std::to_string(result.entries[i].value) +
                          ", expected dense value " + std::to_string(i));
    }
  }
  return result;
}

std::vector<std::string> ParseStructFields(const std::string& header,
                                           const std::string& name) {
  std::vector<std::string> fields;
  size_t start = header.find("struct " + name + " {");
  if (start == std::string::npos) {
    return fields;
  }
  size_t open = header.find('{', start);
  int depth = 0;
  size_t end = open;
  for (size_t i = open; i < header.size(); ++i) {
    if (header[i] == '{') {
      ++depth;
    } else if (header[i] == '}') {
      if (--depth == 0) {
        end = i;
        break;
      }
    }
  }
  int line_depth = 1;
  for (const std::string& raw : SplitLines(header.substr(open + 1, end - open - 1))) {
    std::string line = StripLine(raw);
    int depth_before = line_depth;
    for (char c : line) {
      if (c == '{') {
        ++line_depth;
      } else if (c == '}') {
        --line_depth;
      }
    }
    // Field declarations live at depth 1 (skip nested struct bodies),
    // end with ';' and carry no parentheses (skip method declarations).
    if (depth_before != 1 || line_depth != 1 || line.empty() || line.back() != ';' ||
        line.find('(') != std::string::npos || line.rfind("using ", 0) == 0 ||
        line.rfind("struct ", 0) == 0 || line.rfind("static ", 0) == 0) {
      continue;
    }
    std::string decl = line.substr(0, line.size() - 1);
    size_t eq = decl.find('=');
    if (eq != std::string::npos) {
      decl = decl.substr(0, eq);
    }
    decl = StripLine(decl);
    // Field name = trailing identifier of the declarator.
    size_t tail = decl.size();
    while (tail > 0 && IsIdentChar(decl[tail - 1])) {
      --tail;
    }
    if (tail < decl.size()) {
      fields.push_back(decl.substr(tail));
    }
  }
  return fields;
}

namespace {

// Check 2: the kOpcodeNames table in protocol.cc matches the enum exactly,
// in order.
void CheckNameTable(const std::string& protocol_cc, const OpcodeEnum& opcodes,
                    std::vector<std::string>* problems) {
  size_t start = protocol_cc.find("kOpcodeNames[]");
  if (start == std::string::npos) {
    problems->push_back("protocol.cc: kOpcodeNames table not found");
    return;
  }
  size_t open = protocol_cc.find('{', start);
  size_t close = protocol_cc.find("};", open);
  std::vector<std::string> names;
  size_t pos = open;
  while (pos < close) {
    size_t q1 = protocol_cc.find('"', pos);
    if (q1 == std::string::npos || q1 >= close) {
      break;
    }
    size_t q2 = protocol_cc.find('"', q1 + 1);
    names.push_back(protocol_cc.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  if (names.size() != opcodes.entries.size()) {
    problems->push_back("protocol.cc: kOpcodeNames has " +
                        std::to_string(names.size()) + " entries, enum has " +
                        std::to_string(opcodes.entries.size()));
  }
  for (size_t i = 0; i < std::min(names.size(), opcodes.entries.size()); ++i) {
    if (names[i] != opcodes.entries[i].name) {
      problems->push_back("protocol.cc: kOpcodeNames[" + std::to_string(i) +
                          "] is \"" + names[i] + "\", enum says \"" +
                          opcodes.entries[i].name + "\"");
    }
  }
}

// Check 3: every struct in messages.h declaring Encode also declares
// Decode, and vice versa.
void CheckEncodeDecodePairs(const std::string& messages_h,
                            std::vector<std::string>* problems) {
  std::vector<std::string> lines = SplitLines(messages_h);
  std::string current;
  bool has_encode = false;
  bool has_decode = false;
  int depth = 0;
  auto flush = [&] {
    if (current.empty()) {
      return;
    }
    if (has_encode && !has_decode) {
      problems->push_back("messages.h: struct " + current +
                          " has Encode but no Decode");
    }
    if (has_decode && !has_encode) {
      problems->push_back("messages.h: struct " + current +
                          " has Decode but no Encode");
    }
    current.clear();
  };
  for (const std::string& raw : lines) {
    std::string line = StripLine(raw);
    if (depth == 0 && line.rfind("struct ", 0) == 0 &&
        line.find('{') != std::string::npos) {
      flush();
      current = line.substr(7, line.find(' ', 7) - 7);
      has_encode = has_decode = false;
    }
    if (!current.empty() && depth >= 1) {
      if (line.find("Encode(") != std::string::npos) {
        has_encode = true;
      }
      if (line.find("Decode(") != std::string::npos) {
        has_decode = true;
      }
    }
    for (char c : line) {
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
      }
    }
    if (depth == 0 && !current.empty() && line.find("};") != std::string::npos) {
      flush();
    }
  }
  flush();
}

// Checks 4 & 5: every opcode has a dispatcher case and an Alib reference.
void CheckWiring(const OpcodeEnum& opcodes, const std::string& dispatcher_cc,
                 const std::string& alib_all, std::vector<std::string>* problems) {
  for (const OpcodeEntry& op : opcodes.entries) {
    if (!ContainsToken(dispatcher_cc, "Opcode::k" + op.name)) {
      problems->push_back("dispatcher.cc: no `case Opcode::k" + op.name +
                          "` handler for opcode " + std::to_string(op.value));
    }
    if (!ContainsToken(alib_all, "Opcode::k" + op.name)) {
      problems->push_back("alib: no wrapper references Opcode::k" + op.name +
                          " (opcode " + std::to_string(op.value) + ")");
    }
  }
}

// Check 6: the PROTOCOL.md opcode index table lists every opcode with its
// number, and lists nothing that is not in the enum. Only the table under
// the "Opcode index" heading counts — the doc has other numeric tables
// (event codes, error codes) that are not opcode rows.
void CheckProtocolDoc(const OpcodeEnum& opcodes, const std::string& doc,
                      std::vector<std::string>* problems) {
  std::map<std::string, int> rows;  // name -> opcode number
  bool in_section = false;
  for (const std::string& raw : SplitLines(doc)) {
    std::string line = StripLine(raw);
    if (!line.empty() && line[0] == '#') {
      if (in_section) {
        break;  // next heading ends the opcode index section
      }
      in_section = line.find("Opcode index") != std::string::npos;
      continue;
    }
    if (!in_section || line.empty() || line[0] != '|') {
      continue;
    }
    // Split "| 1 | CreateLoud | ... |" into cells.
    std::vector<std::string> cells;
    size_t pos = 1;
    while (pos < line.size()) {
      size_t next = line.find('|', pos);
      if (next == std::string::npos) {
        break;
      }
      cells.push_back(StripLine(line.substr(pos, next - pos)));
      pos = next + 1;
    }
    if (cells.size() < 2 || cells[0].empty() ||
        cells[0].find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    rows[cells[1]] = std::stoi(cells[0]);
  }
  for (const OpcodeEntry& op : opcodes.entries) {
    auto it = rows.find(op.name);
    if (it == rows.end()) {
      problems->push_back("PROTOCOL.md: opcode index has no row for " + op.name +
                          " (opcode " + std::to_string(op.value) + ")");
    } else if (it->second != op.value) {
      problems->push_back("PROTOCOL.md: opcode index says " + op.name + " = " +
                          std::to_string(it->second) + ", protocol.h says " +
                          std::to_string(op.value));
    }
  }
  for (const auto& [name, value] : rows) {
    bool known = std::any_of(opcodes.entries.begin(), opcodes.entries.end(),
                             [&](const OpcodeEntry& op) { return op.name == name; });
    if (!known) {
      problems->push_back("PROTOCOL.md: opcode index lists unknown opcode " + name +
                          " = " + std::to_string(value));
    }
  }
}

// Check 7: append-only reply schemas. schema.lock holds one line per
// (struct, version) with the field order as shipped at that version:
//
//   ServerStatsReply 1 stats_version proto_major ...
//
// Rules: the highest locked version of each struct must equal the struct's
// k<Name>Version constant and match the current field list exactly; every
// older locked version must be a strict prefix of the current fields.
// Changing a reply therefore forces appending fields, bumping the version
// constant, and adding (never editing) a lock line.
void CheckSchemaLock(const std::string& lock, const std::string& messages_h,
                     std::vector<std::string>* problems) {
  struct Locked {
    int version;
    std::vector<std::string> fields;
  };
  std::map<std::string, std::vector<Locked>> locked;
  for (const std::string& raw : SplitLines(lock)) {
    std::string line = StripLine(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream in(line);
    std::string name;
    int version = -1;
    in >> name >> version;
    Locked entry{version, {}};
    std::string field;
    while (in >> field) {
      entry.fields.push_back(field);
    }
    if (name.empty() || version < 1 || entry.fields.empty()) {
      problems->push_back("schema.lock: malformed line: " + line);
      continue;
    }
    locked[name].push_back(std::move(entry));
  }
  if (locked.empty()) {
    problems->push_back("schema.lock: no schemas locked");
    return;
  }
  for (auto& [name, versions] : locked) {
    std::vector<std::string> current = ParseStructFields(messages_h, name);
    if (current.empty()) {
      problems->push_back("schema.lock: struct " + name + " not found in messages.h");
      continue;
    }
    std::sort(versions.begin(), versions.end(),
              [](const Locked& a, const Locked& b) { return a.version < b.version; });
    // The struct's version constant, e.g. ServerStatsReply -> kServerStatsVersion.
    std::string base = name;
    if (base.size() > 5 && base.compare(base.size() - 5, 5, "Reply") == 0) {
      base.erase(base.size() - 5);
    }
    std::string constant = "k" + base + "Version";
    int declared = -1;
    size_t pos = messages_h.find(constant);
    if (pos != std::string::npos) {
      size_t eq = messages_h.find('=', pos);
      if (eq != std::string::npos) {
        try {
          declared = std::stoi(messages_h.substr(eq + 1));
        } catch (...) {
        }
      }
    }
    const Locked& head = versions.back();
    if (declared != -1 && declared != head.version) {
      problems->push_back("schema.lock: " + name + " locked at version " +
                          std::to_string(head.version) + " but messages.h declares " +
                          constant + " = " + std::to_string(declared));
    }
    if (head.fields != current) {
      problems->push_back(
          "schema.lock: " + name + " v" + std::to_string(head.version) +
          " field list does not match messages.h — append new fields, bump " +
          constant + " and add a new lock line (never edit old ones)");
    }
    for (size_t i = 0; i + 1 < versions.size(); ++i) {
      const Locked& old = versions[i];
      bool prefix = old.fields.size() < current.size() &&
                    std::equal(old.fields.begin(), old.fields.end(), current.begin());
      if (!prefix) {
        problems->push_back("schema.lock: " + name + " v" +
                            std::to_string(old.version) +
                            " is not a strict prefix of the current fields — " +
                            "reply layouts are append-only");
      }
    }
  }
}

// Check 8: versioned replies cannot drift from the docs. Every field of
// the newest locked version of every struct in schema.lock must appear (as
// a whole word) in PROTOCOL.md — appending a field to a locked reply
// without documenting it fails the lint the same commit.
bool ContainsWord(const std::string& text, const std::string& word) {
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) {
      return true;
    }
    pos = end;
  }
  return false;
}

void CheckStatsDocCoverage(const std::string& lock, const std::string& protocol_md,
                           std::vector<std::string>* problems) {
  // Newest locked version of EVERY locked struct — whatever earns a
  // schema.lock line is a versioned reply clients decode by prefix, and
  // its current field list must be documented.
  struct Newest {
    int version = -1;
    std::vector<std::string> fields;
  };
  std::map<std::string, Newest> newest;
  for (const std::string& raw : SplitLines(lock)) {
    std::string line = StripLine(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream in(line);
    std::string name;
    int version = -1;
    in >> name >> version;
    if (name.empty() || version <= newest[name].version) {
      continue;
    }
    Newest& entry = newest[name];
    entry.version = version;
    entry.fields.clear();
    std::string field;
    while (in >> field) {
      entry.fields.push_back(field);
    }
  }
  for (const auto& [name, entry] : newest) {
    for (const std::string& field : entry.fields) {
      if (!ContainsWord(protocol_md, field)) {
        problems->push_back("PROTOCOL.md: " + name + " v" +
                            std::to_string(entry.version) + " field " + field +
                            " is not documented");
      }
    }
  }
}

}  // namespace

std::vector<std::string> LintTree(const std::map<std::string, std::string>& files) {
  std::vector<std::string> problems;
  for (const char* required : kRequiredFiles) {
    if (files.find(required) == files.end()) {
      problems.push_back(std::string("missing input file: ") + required);
    }
  }
  if (!problems.empty()) {
    return problems;
  }

  OpcodeEnum opcodes = ParseOpcodeEnum(*Find(files, "protocol.h"), &problems);
  CheckNameTable(*Find(files, "protocol.cc"), opcodes, &problems);
  CheckEncodeDecodePairs(*Find(files, "messages.h"), &problems);
  CheckWiring(opcodes, *Find(files, "dispatcher.cc"),
              *Find(files, "alib.h") + *Find(files, "alib.cc") +
                  *Find(files, "requests.cc"),
              &problems);
  CheckProtocolDoc(opcodes, *Find(files, "PROTOCOL.md"), &problems);
  CheckSchemaLock(*Find(files, "schema.lock"), *Find(files, "messages.h"), &problems);
  CheckStatsDocCoverage(*Find(files, "schema.lock"), *Find(files, "PROTOCOL.md"),
                        &problems);
  return problems;
}

}  // namespace audlint
}  // namespace aud
