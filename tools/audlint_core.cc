#include "tools/audlint_core.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace aud {
namespace audlint {

namespace {

// Strips a trailing // comment and surrounding whitespace.
std::string StripLine(std::string line) {
  size_t comment = line.find("//");
  if (comment != std::string::npos) {
    line.erase(comment);
  }
  size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = line.find_last_not_of(" \t");
  return line.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True if `text` contains `token` not embedded in a longer identifier.
bool ContainsToken(const std::string& text, const std::string& token) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    size_t after = pos + token.size();
    bool right_ok = after >= text.size() || !IsIdentChar(text[after]);
    if (left_ok && right_ok) {
      return true;
    }
    pos = after;
  }
  return false;
}

const std::string* Find(const std::map<std::string, std::string>& files,
                        const std::string& key) {
  auto it = files.find(key);
  return it == files.end() ? nullptr : &it->second;
}

}  // namespace

OpcodeEnum ParseOpcodeEnum(const std::string& protocol_h,
                           std::vector<std::string>* problems) {
  OpcodeEnum result;
  size_t start = protocol_h.find("enum class Opcode");
  if (start == std::string::npos) {
    problems->push_back("protocol.h: `enum class Opcode` not found");
    return result;
  }
  size_t open = protocol_h.find('{', start);
  size_t close = protocol_h.find("};", open);
  if (open == std::string::npos || close == std::string::npos) {
    problems->push_back("protocol.h: Opcode enum body not found");
    return result;
  }
  for (const std::string& raw :
       SplitLines(protocol_h.substr(open + 1, close - open - 1))) {
    std::string line = StripLine(raw);
    if (line.empty() || line[0] != 'k') {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    std::string name = StripLine(line.substr(0, eq));
    int value = -1;
    try {
      value = std::stoi(StripLine(line.substr(eq + 1)));
    } catch (...) {
      problems->push_back("protocol.h: unparseable opcode value in: " + line);
      continue;
    }
    if (name == "kOpcodeCount") {
      result.count = value;
    } else {
      result.entries.push_back({name.substr(1), value});
    }
  }
  if (result.count < 0) {
    problems->push_back("protocol.h: kOpcodeCount not found in Opcode enum");
  } else if (static_cast<int>(result.entries.size()) != result.count) {
    problems->push_back("protocol.h: kOpcodeCount is " +
                        std::to_string(result.count) + " but the enum lists " +
                        std::to_string(result.entries.size()) + " opcodes");
  }
  // Values must be dense 0..N-1 in declaration order: the name table and
  // the per-opcode metrics arrays index by value.
  for (size_t i = 0; i < result.entries.size(); ++i) {
    if (result.entries[i].value != static_cast<int>(i)) {
      problems->push_back("protocol.h: opcode k" + result.entries[i].name +
                          " has value " + std::to_string(result.entries[i].value) +
                          ", expected dense value " + std::to_string(i));
    }
  }
  return result;
}

std::vector<EnumEntry> ParseValuedEnum(const std::string& header,
                                       const std::string& enum_name,
                                       std::vector<std::string>* problems) {
  std::vector<EnumEntry> entries;
  size_t start = header.find("enum class " + enum_name);
  if (start == std::string::npos) {
    problems->push_back("`enum class " + enum_name + "` not found");
    return entries;
  }
  size_t open = header.find('{', start);
  size_t close = header.find("};", open);
  if (open == std::string::npos || close == std::string::npos) {
    problems->push_back(enum_name + " enum body not found");
    return entries;
  }
  for (const std::string& raw : SplitLines(header.substr(open + 1, close - open - 1))) {
    std::string line = StripLine(raw);
    if (line.empty() || line[0] != 'k') {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      // A continuation of the previous enumerator's comment starting with
      // 'k' would be stripped above; a real enumerator without an explicit
      // value is drift waiting to happen in a wire/doc-visible enum.
      if (line.back() == ',') {
        problems->push_back(enum_name + ": enumerator without explicit value: " + line);
      }
      continue;
    }
    std::string name = StripLine(line.substr(0, eq));
    int value = 0;
    try {
      value = std::stoi(StripLine(line.substr(eq + 1)));
    } catch (...) {
      problems->push_back(enum_name + ": unparseable value in: " + line);
      continue;
    }
    entries.push_back({name.substr(1), value});
  }
  return entries;
}

std::vector<std::string> ParseStructFields(const std::string& header,
                                           const std::string& name) {
  std::vector<std::string> fields;
  size_t start = header.find("struct " + name + " {");
  if (start == std::string::npos) {
    return fields;
  }
  size_t open = header.find('{', start);
  int depth = 0;
  size_t end = open;
  for (size_t i = open; i < header.size(); ++i) {
    if (header[i] == '{') {
      ++depth;
    } else if (header[i] == '}') {
      if (--depth == 0) {
        end = i;
        break;
      }
    }
  }
  int line_depth = 1;
  for (const std::string& raw : SplitLines(header.substr(open + 1, end - open - 1))) {
    std::string line = StripLine(raw);
    int depth_before = line_depth;
    for (char c : line) {
      if (c == '{') {
        ++line_depth;
      } else if (c == '}') {
        --line_depth;
      }
    }
    // Field declarations live at depth 1 (skip nested struct bodies),
    // end with ';' and carry no parentheses (skip method declarations).
    if (depth_before != 1 || line_depth != 1 || line.empty() || line.back() != ';' ||
        line.find('(') != std::string::npos || line.rfind("using ", 0) == 0 ||
        line.rfind("struct ", 0) == 0 || line.rfind("static ", 0) == 0) {
      continue;
    }
    std::string decl = line.substr(0, line.size() - 1);
    size_t eq = decl.find('=');
    if (eq != std::string::npos) {
      decl = decl.substr(0, eq);
    }
    decl = StripLine(decl);
    // Field name = trailing identifier of the declarator.
    size_t tail = decl.size();
    while (tail > 0 && IsIdentChar(decl[tail - 1])) {
      --tail;
    }
    if (tail < decl.size()) {
      fields.push_back(decl.substr(tail));
    }
  }
  return fields;
}

namespace {

// Check 2: the kOpcodeNames table in protocol.cc matches the enum exactly,
// in order.
void CheckNameTable(const std::string& protocol_cc, const OpcodeEnum& opcodes,
                    std::vector<std::string>* problems) {
  size_t start = protocol_cc.find("kOpcodeNames[]");
  if (start == std::string::npos) {
    problems->push_back("protocol.cc: kOpcodeNames table not found");
    return;
  }
  size_t open = protocol_cc.find('{', start);
  size_t close = protocol_cc.find("};", open);
  std::vector<std::string> names;
  size_t pos = open;
  while (pos < close) {
    size_t q1 = protocol_cc.find('"', pos);
    if (q1 == std::string::npos || q1 >= close) {
      break;
    }
    size_t q2 = protocol_cc.find('"', q1 + 1);
    names.push_back(protocol_cc.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  if (names.size() != opcodes.entries.size()) {
    problems->push_back("protocol.cc: kOpcodeNames has " +
                        std::to_string(names.size()) + " entries, enum has " +
                        std::to_string(opcodes.entries.size()));
  }
  for (size_t i = 0; i < std::min(names.size(), opcodes.entries.size()); ++i) {
    if (names[i] != opcodes.entries[i].name) {
      problems->push_back("protocol.cc: kOpcodeNames[" + std::to_string(i) +
                          "] is \"" + names[i] + "\", enum says \"" +
                          opcodes.entries[i].name + "\"");
    }
  }
}

// Check 3: every struct in messages.h declaring Encode also declares
// Decode, and vice versa.
void CheckEncodeDecodePairs(const std::string& messages_h,
                            std::vector<std::string>* problems) {
  std::vector<std::string> lines = SplitLines(messages_h);
  std::string current;
  bool has_encode = false;
  bool has_decode = false;
  int depth = 0;
  auto flush = [&] {
    if (current.empty()) {
      return;
    }
    if (has_encode && !has_decode) {
      problems->push_back("messages.h: struct " + current +
                          " has Encode but no Decode");
    }
    if (has_decode && !has_encode) {
      problems->push_back("messages.h: struct " + current +
                          " has Decode but no Encode");
    }
    current.clear();
  };
  for (const std::string& raw : lines) {
    std::string line = StripLine(raw);
    if (depth == 0 && line.rfind("struct ", 0) == 0 &&
        line.find('{') != std::string::npos) {
      flush();
      current = line.substr(7, line.find(' ', 7) - 7);
      has_encode = has_decode = false;
    }
    if (!current.empty() && depth >= 1) {
      if (line.find("Encode(") != std::string::npos) {
        has_encode = true;
      }
      if (line.find("Decode(") != std::string::npos) {
        has_decode = true;
      }
    }
    for (char c : line) {
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
      }
    }
    if (depth == 0 && !current.empty() && line.find("};") != std::string::npos) {
      flush();
    }
  }
  flush();
}

// Checks 4 & 5: every opcode has a dispatcher case and an Alib reference.
void CheckWiring(const OpcodeEnum& opcodes, const std::string& dispatcher_cc,
                 const std::string& alib_all, std::vector<std::string>* problems) {
  for (const OpcodeEntry& op : opcodes.entries) {
    if (!ContainsToken(dispatcher_cc, "Opcode::k" + op.name)) {
      problems->push_back("dispatcher.cc: no `case Opcode::k" + op.name +
                          "` handler for opcode " + std::to_string(op.value));
    }
    if (!ContainsToken(alib_all, "Opcode::k" + op.name)) {
      problems->push_back("alib: no wrapper references Opcode::k" + op.name +
                          " (opcode " + std::to_string(op.value) + ")");
    }
  }
}

// Check 6: the PROTOCOL.md opcode index table lists every opcode with its
// number, and lists nothing that is not in the enum. Only the table under
// the "Opcode index" heading counts — the doc has other numeric tables
// (event codes, error codes) that are not opcode rows.
void CheckProtocolDoc(const OpcodeEnum& opcodes, const std::string& doc,
                      std::vector<std::string>* problems) {
  std::map<std::string, int> rows;  // name -> opcode number
  bool in_section = false;
  for (const std::string& raw : SplitLines(doc)) {
    std::string line = StripLine(raw);
    if (!line.empty() && line[0] == '#') {
      if (in_section) {
        break;  // next heading ends the opcode index section
      }
      in_section = line.find("Opcode index") != std::string::npos;
      continue;
    }
    if (!in_section || line.empty() || line[0] != '|') {
      continue;
    }
    // Split "| 1 | CreateLoud | ... |" into cells.
    std::vector<std::string> cells;
    size_t pos = 1;
    while (pos < line.size()) {
      size_t next = line.find('|', pos);
      if (next == std::string::npos) {
        break;
      }
      cells.push_back(StripLine(line.substr(pos, next - pos)));
      pos = next + 1;
    }
    if (cells.size() < 2 || cells[0].empty() ||
        cells[0].find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    rows[cells[1]] = std::stoi(cells[0]);
  }
  for (const OpcodeEntry& op : opcodes.entries) {
    auto it = rows.find(op.name);
    if (it == rows.end()) {
      problems->push_back("PROTOCOL.md: opcode index has no row for " + op.name +
                          " (opcode " + std::to_string(op.value) + ")");
    } else if (it->second != op.value) {
      problems->push_back("PROTOCOL.md: opcode index says " + op.name + " = " +
                          std::to_string(it->second) + ", protocol.h says " +
                          std::to_string(op.value));
    }
  }
  for (const auto& [name, value] : rows) {
    bool known = std::any_of(opcodes.entries.begin(), opcodes.entries.end(),
                             [&](const OpcodeEntry& op) { return op.name == name; });
    if (!known) {
      problems->push_back("PROTOCOL.md: opcode index lists unknown opcode " + name +
                          " = " + std::to_string(value));
    }
  }
}

// Check 7: append-only reply schemas. schema.lock holds one line per
// (struct, version) with the field order as shipped at that version:
//
//   ServerStatsReply 1 stats_version proto_major ...
//
// Rules: the highest locked version of each struct must equal the struct's
// k<Name>Version constant and match the current field list exactly; every
// older locked version must be a strict prefix of the current fields.
// Changing a reply therefore forces appending fields, bumping the version
// constant, and adding (never editing) a lock line.
void CheckSchemaLock(const std::string& lock, const std::string& messages_h,
                     std::vector<std::string>* problems) {
  struct Locked {
    int version;
    std::vector<std::string> fields;
  };
  std::map<std::string, std::vector<Locked>> locked;
  for (const std::string& raw : SplitLines(lock)) {
    std::string line = StripLine(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream in(line);
    std::string name;
    int version = -1;
    in >> name >> version;
    Locked entry{version, {}};
    std::string field;
    while (in >> field) {
      entry.fields.push_back(field);
    }
    if (name.empty() || version < 1 || entry.fields.empty()) {
      problems->push_back("schema.lock: malformed line: " + line);
      continue;
    }
    locked[name].push_back(std::move(entry));
  }
  if (locked.empty()) {
    problems->push_back("schema.lock: no schemas locked");
    return;
  }
  for (auto& [name, versions] : locked) {
    std::vector<std::string> current = ParseStructFields(messages_h, name);
    if (current.empty()) {
      problems->push_back("schema.lock: struct " + name + " not found in messages.h");
      continue;
    }
    std::sort(versions.begin(), versions.end(),
              [](const Locked& a, const Locked& b) { return a.version < b.version; });
    // The struct's version constant, e.g. ServerStatsReply -> kServerStatsVersion.
    std::string base = name;
    if (base.size() > 5 && base.compare(base.size() - 5, 5, "Reply") == 0) {
      base.erase(base.size() - 5);
    }
    std::string constant = "k" + base + "Version";
    int declared = -1;
    size_t pos = messages_h.find(constant);
    if (pos != std::string::npos) {
      size_t eq = messages_h.find('=', pos);
      if (eq != std::string::npos) {
        try {
          declared = std::stoi(messages_h.substr(eq + 1));
        } catch (...) {
        }
      }
    }
    const Locked& head = versions.back();
    if (declared != -1 && declared != head.version) {
      problems->push_back("schema.lock: " + name + " locked at version " +
                          std::to_string(head.version) + " but messages.h declares " +
                          constant + " = " + std::to_string(declared));
    }
    if (head.fields != current) {
      problems->push_back(
          "schema.lock: " + name + " v" + std::to_string(head.version) +
          " field list does not match messages.h — append new fields, bump " +
          constant + " and add a new lock line (never edit old ones)");
    }
    for (size_t i = 0; i + 1 < versions.size(); ++i) {
      const Locked& old = versions[i];
      bool prefix = old.fields.size() < current.size() &&
                    std::equal(old.fields.begin(), old.fields.end(), current.begin());
      if (!prefix) {
        problems->push_back("schema.lock: " + name + " v" +
                            std::to_string(old.version) +
                            " is not a strict prefix of the current fields — " +
                            "reply layouts are append-only");
      }
    }
  }
}

// Check 8: versioned replies cannot drift from the docs. Every field of
// the newest locked version of every struct in schema.lock must appear (as
// a whole word) in PROTOCOL.md — appending a field to a locked reply
// without documenting it fails the lint the same commit.
bool ContainsWord(const std::string& text, const std::string& word) {
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) {
      return true;
    }
    pos = end;
  }
  return false;
}

void CheckStatsDocCoverage(const std::string& lock, const std::string& protocol_md,
                           std::vector<std::string>* problems) {
  // Newest locked version of EVERY locked struct — whatever earns a
  // schema.lock line is a versioned reply clients decode by prefix, and
  // its current field list must be documented.
  struct Newest {
    int version = -1;
    std::vector<std::string> fields;
  };
  std::map<std::string, Newest> newest;
  for (const std::string& raw : SplitLines(lock)) {
    std::string line = StripLine(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream in(line);
    std::string name;
    int version = -1;
    in >> name >> version;
    if (name.empty() || version <= newest[name].version) {
      continue;
    }
    Newest& entry = newest[name];
    entry.version = version;
    entry.fields.clear();
    std::string field;
    while (in >> field) {
      entry.fields.push_back(field);
    }
  }
  for (const auto& [name, entry] : newest) {
    for (const std::string& field : entry.fields) {
      if (!ContainsWord(protocol_md, field)) {
        problems->push_back("PROTOCOL.md: " + name + " v" +
                            std::to_string(entry.version) + " field " + field +
                            " is not documented");
      }
    }
  }
}

// Check 9: the LockRank enum (src/common/lock_rank.h) and the DESIGN.md
// lock table must agree — same enumerators, same numeric ranks, no extras
// on either side. The table is the row set under the header
// `| Lock | Guards | LockRank | Rank |`; the LockRank cell carries the
// backticked enumerator, the Rank cell its numeric value. Together with the
// runtime checker this closes the loop: code ranks are executed, and the
// doc cannot drift from the code.
void CheckLockRanks(const std::string& lock_rank_h, const std::string& design_md,
                    std::vector<std::string>* problems) {
  std::vector<std::string> enum_problems;
  std::vector<EnumEntry> entries =
      ParseValuedEnum(lock_rank_h, "LockRank", &enum_problems);
  for (const std::string& p : enum_problems) {
    problems->push_back("lock_rank.h: " + p);
  }

  // Parse the doc table: header row -> following `|` rows.
  std::map<std::string, int> rows;  // enumerator (with 'k') -> rank
  bool in_table = false;
  for (const std::string& raw : SplitLines(design_md)) {
    std::string line = StripLine(raw);
    if (line.empty() || line[0] != '|') {
      if (in_table) {
        break;  // first non-row line ends the table
      }
      continue;
    }
    std::vector<std::string> cells;
    size_t pos = 1;
    while (pos < line.size()) {
      size_t next = line.find('|', pos);
      if (next == std::string::npos) {
        break;
      }
      cells.push_back(StripLine(line.substr(pos, next - pos)));
      pos = next + 1;
    }
    if (!in_table) {
      in_table = cells.size() == 4 && cells[2] == "LockRank" && cells[3] == "Rank";
      continue;
    }
    if (cells.size() != 4 || cells[2].find('-') == 0) {
      continue;  // separator row
    }
    // Strip backticks from the LockRank cell.
    std::string name = cells[2];
    name.erase(std::remove(name.begin(), name.end(), '`'), name.end());
    if (name.empty() || name[0] != 'k') {
      problems->push_back("DESIGN.md: lock table LockRank cell is not a `k...` "
                          "enumerator: " + cells[2]);
      continue;
    }
    int rank = -1;
    try {
      rank = std::stoi(cells[3]);
    } catch (...) {
      problems->push_back("DESIGN.md: lock table rank for " + name +
                          " is not a number: " + cells[3]);
      continue;
    }
    if (rows.count(name) != 0) {
      problems->push_back("DESIGN.md: lock table lists " + name + " twice");
      continue;
    }
    rows[name] = rank;
  }
  if (rows.empty()) {
    problems->push_back(
        "DESIGN.md: lock table (header `| Lock | Guards | LockRank | Rank |`) "
        "not found or empty");
    return;
  }

  for (const EnumEntry& e : entries) {
    if (e.name == "Unranked") {
      continue;  // the opt-out sentinel is not a real lock
    }
    auto it = rows.find("k" + e.name);
    if (it == rows.end()) {
      problems->push_back("DESIGN.md: lock table has no row for k" + e.name +
                          " (rank " + std::to_string(e.value) + ")");
    } else if (it->second != e.value) {
      problems->push_back("DESIGN.md: lock table says k" + e.name + " = " +
                          std::to_string(it->second) + ", lock_rank.h says " +
                          std::to_string(e.value));
    }
  }
  for (const auto& [name, rank] : rows) {
    bool known = std::any_of(entries.begin(), entries.end(), [&](const EnumEntry& e) {
      return "k" + e.name == name;
    });
    if (!known) {
      problems->push_back("DESIGN.md: lock table lists unknown rank " + name +
                          " = " + std::to_string(rank));
    }
  }
}

// Check 10: error-code drift. The ErrorCode enum (status.h), the
// ErrorCodeName switch (status.cc) and the PROTOCOL.md "Error codes"
// paragraph (`Name(N)` list) must describe the same code set: every
// enumerator has a name-table case returning exactly its enumerator name,
// and every code except Ok is documented with its wire value.
void CheckErrorCodes(const std::string& status_h, const std::string& status_cc,
                     const std::string& protocol_md,
                     std::vector<std::string>* problems) {
  std::vector<std::string> enum_problems;
  std::vector<EnumEntry> entries =
      ParseValuedEnum(status_h, "ErrorCode", &enum_problems);
  for (const std::string& p : enum_problems) {
    problems->push_back("status.h: " + p);
  }

  // Parse the ErrorCodeName switch: `case ErrorCode::kX:` ... `return "Y";`.
  std::map<std::string, std::string> cases;  // kX -> "Y"
  size_t fn = status_cc.find("ErrorCodeName");
  if (fn == std::string::npos) {
    problems->push_back("status.cc: ErrorCodeName not found");
  } else {
    std::string pending;
    for (const std::string& raw : SplitLines(status_cc.substr(fn))) {
      std::string line = StripLine(raw);
      size_t c = line.find("case ErrorCode::");
      if (c != std::string::npos) {
        size_t begin = c + 16;
        size_t end = begin;
        while (end < line.size() && IsIdentChar(line[end])) {
          ++end;
        }
        pending = line.substr(begin, end - begin);
        line = line.substr(end);  // `case X: return "Y";` on one line
      }
      size_t r = line.find("return \"");
      if (r != std::string::npos && !pending.empty()) {
        size_t q2 = line.find('"', r + 8);
        if (q2 != std::string::npos) {
          cases[pending] = line.substr(r + 8, q2 - r - 8);
        }
        pending.clear();
      }
      if (line.find('}') != std::string::npos && line.find('{') == std::string::npos &&
          !cases.empty() && pending.empty() && line == "}") {
        break;  // end of function body
      }
    }
  }
  for (const EnumEntry& e : entries) {
    auto it = cases.find("k" + e.name);
    if (it == cases.end()) {
      problems->push_back("status.cc: ErrorCodeName has no case for k" + e.name);
    } else if (it->second != e.name) {
      problems->push_back("status.cc: ErrorCodeName maps k" + e.name + " to \"" +
                          it->second + "\"");
    }
  }
  for (const auto& [name, text] : cases) {
    bool known = std::any_of(entries.begin(), entries.end(), [&](const EnumEntry& e) {
      return "k" + e.name == name;
    });
    if (!known) {
      problems->push_back("status.cc: ErrorCodeName has a case for unknown code " +
                          name);
    }
  }

  // The PROTOCOL.md error-code paragraph: backticked `Name(N)` pairs from
  // the "Error codes" marker to the end of the paragraph. (Opcodes use the
  // same notation elsewhere in the doc, hence the scoping.)
  size_t marker = protocol_md.find("Error codes");
  if (marker == std::string::npos) {
    problems->push_back("PROTOCOL.md: \"Error codes\" paragraph not found");
    return;
  }
  size_t para_end = protocol_md.find("\n\n", marker);
  std::string para = protocol_md.substr(
      marker, para_end == std::string::npos ? std::string::npos : para_end - marker);
  std::map<std::string, int> documented;
  for (size_t pos = 0; (pos = para.find('`', pos)) != std::string::npos;) {
    size_t close = para.find('`', pos + 1);
    if (close == std::string::npos) {
      break;
    }
    std::string span = para.substr(pos + 1, close - pos - 1);
    size_t open_paren = span.find('(');
    size_t close_paren = span.find(')');
    if (open_paren != std::string::npos && close_paren == span.size() - 1 &&
        open_paren > 0) {
      std::string name = span.substr(0, open_paren);
      std::string digits = span.substr(open_paren + 1, close_paren - open_paren - 1);
      if (!digits.empty() &&
          digits.find_first_not_of("0123456789") == std::string::npos) {
        documented[name] = std::stoi(digits);
      }
    }
    pos = close + 1;
  }
  for (const EnumEntry& e : entries) {
    if (e.name == "Ok") {
      continue;  // success is not an error code the doc lists
    }
    auto it = documented.find(e.name);
    if (it == documented.end()) {
      problems->push_back("PROTOCOL.md: error code " + e.name + "(" +
                          std::to_string(e.value) + ") is not documented");
    } else if (it->second != e.value) {
      problems->push_back("PROTOCOL.md: error codes say " + e.name + " = " +
                          std::to_string(it->second) + ", status.h says " +
                          std::to_string(e.value));
    }
  }
  for (const auto& [name, value] : documented) {
    bool known = std::any_of(entries.begin(), entries.end(), [&](const EnumEntry& e) {
      return e.name == name;
    });
    if (!known) {
      problems->push_back("PROTOCOL.md: error codes list unknown code " + name +
                          "(" + std::to_string(value) + ")");
    }
  }
}

// Field names of `struct ServerMetrics`, including array fields
// (`obs::Counter requests[kOpcodes];`), which ParseStructFields skips.
std::vector<std::string> ParseMetricsFields(const std::string& metrics_h,
                                            std::vector<std::string>* problems) {
  std::vector<std::string> fields;
  size_t start = metrics_h.find("struct ServerMetrics {");
  if (start == std::string::npos) {
    problems->push_back("metrics.h: struct ServerMetrics not found");
    return fields;
  }
  size_t open = metrics_h.find('{', start);
  int depth = 1;
  size_t end = open + 1;
  while (end < metrics_h.size() && depth > 0) {
    if (metrics_h[end] == '{') {
      ++depth;
    } else if (metrics_h[end] == '}') {
      --depth;
    }
    ++end;
  }
  int line_depth = 1;
  for (const std::string& raw :
       SplitLines(metrics_h.substr(open + 1, end - open - 2))) {
    std::string line = StripLine(raw);
    int depth_before = line_depth;
    for (char c : line) {
      if (c == '{') {
        ++line_depth;
      } else if (c == '}') {
        --line_depth;
      }
    }
    if (depth_before != 1 || line.empty() || line.back() != ';' ||
        line.rfind("static ", 0) == 0 || line.rfind("using ", 0) == 0) {
      continue;
    }
    // `Type name...;` — the field name is the identifier after the first
    // whitespace run, up to `[`, `{`, `=` or `;`. Method declarations and
    // definitions have `(` before any of those; skip them.
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      continue;
    }
    // Template types contain spaces inside <>; skip past balanced <>.
    int angle = 0;
    size_t i = 0;
    for (; i < line.size(); ++i) {
      if (line[i] == '<') {
        ++angle;
      } else if (line[i] == '>') {
        --angle;
      } else if (line[i] == ' ' && angle == 0) {
        break;
      }
    }
    size_t name_begin = line.find_first_not_of(' ', i);
    if (name_begin == std::string::npos) {
      continue;
    }
    size_t name_end = name_begin;
    while (name_end < line.size() && IsIdentChar(line[name_end])) {
      ++name_end;
    }
    if (name_end == name_begin || (name_end < line.size() && line[name_end] == '(')) {
      continue;
    }
    fields.push_back(line.substr(name_begin, name_end - name_begin));
  }
  return fields;
}

// Check 11: no write-only metrics. Every ServerMetrics field must be
// referenced by at least one of the paths that surface it to a client —
// the ServerStatsReply builder (server_state.cc), the Prometheus text
// renderer (stats_render.cc), the flight recorder, or a dispatch reply
// (dispatcher.cc, e.g. the trace-id key of GetServerTrace) — otherwise the
// counter is bumped forever and shown nowhere.
void CheckMetricsCoverage(const std::string& metrics_h,
                          const std::string& render_sources,
                          std::vector<std::string>* problems) {
  for (const std::string& field : ParseMetricsFields(metrics_h, problems)) {
    if (field == "start_time") {
      continue;  // surfaced via the uptime_ms() accessor, not by name
    }
    if (!ContainsToken(render_sources, field)) {
      problems->push_back("metrics.h: ServerMetrics." + field +
                          " is never rendered (server stats, Prometheus text, "
                          "or flight recorder)");
    }
  }
}

// `--flag` string literals in a tool's source, deduplicated. The bare `--`
// separator and template fragments are skipped.
std::vector<std::string> ExtractCliFlags(const std::string& tool_cc) {
  std::vector<std::string> flags;
  for (size_t pos = 0; (pos = tool_cc.find("\"--", pos)) != std::string::npos;
       ++pos) {
    size_t close = tool_cc.find('"', pos + 1);
    if (close == std::string::npos) {
      break;
    }
    std::string flag = tool_cc.substr(pos + 1, close - pos - 1);
    std::string body = flag.substr(2);
    if (body.empty() ||
        body.find_first_not_of("abcdefghijklmnopqrstuvwxyz0123456789-") !=
            std::string::npos) {
      continue;
    }
    if (std::find(flags.begin(), flags.end(), flag) == flags.end()) {
      flags.push_back(flag);
    }
  }
  return flags;
}

// True if `--flag` appears in the doc not embedded in a longer flag.
bool ContainsFlag(const std::string& doc, const std::string& flag) {
  for (size_t pos = 0; (pos = doc.find(flag, pos)) != std::string::npos;
       pos += flag.size()) {
    bool left_ok = pos == 0 || doc[pos - 1] != '-';
    size_t after = pos + flag.size();
    bool right_ok = after >= doc.size() ||
                    (!IsIdentChar(doc[after]) && doc[after] != '-');
    if (left_ok && right_ok) {
      return true;
    }
  }
  return false;
}

// Check 12: CLI flag documentation. Every `--flag` literal in audiond.cc,
// audioctl.cc, and audioload.cc must appear in README.md — a flag shipped
// without a line of documentation fails the lint the same commit.
void CheckCliDocCoverage(const std::string& tool, const std::string& tool_cc,
                         const std::string& readme,
                         std::vector<std::string>* problems) {
  for (const std::string& flag : ExtractCliFlags(tool_cc)) {
    if (!ContainsFlag(readme, flag)) {
      problems->push_back("README.md: " + tool + " flag " + flag +
                          " is undocumented");
    }
  }
}

}  // namespace

std::vector<std::string> LintTree(const std::map<std::string, std::string>& files) {
  std::vector<std::string> problems;
  for (const char* required : kRequiredFiles) {
    if (files.find(required) == files.end()) {
      problems.push_back(std::string("missing input file: ") + required);
    }
  }
  if (!problems.empty()) {
    return problems;
  }

  OpcodeEnum opcodes = ParseOpcodeEnum(*Find(files, "protocol.h"), &problems);
  CheckNameTable(*Find(files, "protocol.cc"), opcodes, &problems);
  CheckEncodeDecodePairs(*Find(files, "messages.h"), &problems);
  CheckWiring(opcodes, *Find(files, "dispatcher.cc"),
              *Find(files, "alib.h") + *Find(files, "alib.cc") +
                  *Find(files, "requests.cc"),
              &problems);
  CheckProtocolDoc(opcodes, *Find(files, "PROTOCOL.md"), &problems);
  CheckSchemaLock(*Find(files, "schema.lock"), *Find(files, "messages.h"), &problems);
  CheckStatsDocCoverage(*Find(files, "schema.lock"), *Find(files, "PROTOCOL.md"),
                        &problems);
  CheckLockRanks(*Find(files, "lock_rank.h"), *Find(files, "DESIGN.md"), &problems);
  CheckErrorCodes(*Find(files, "status.h"), *Find(files, "status.cc"),
                  *Find(files, "PROTOCOL.md"), &problems);
  CheckMetricsCoverage(*Find(files, "metrics.h"),
                       *Find(files, "server_state.cc") +
                           *Find(files, "stats_render.cc") +
                           *Find(files, "flight_recorder.cc") +
                           *Find(files, "dispatcher.cc"),
                       &problems);
  CheckCliDocCoverage("audiond", *Find(files, "audiond.cc"),
                      *Find(files, "README.md"), &problems);
  CheckCliDocCoverage("audioctl", *Find(files, "audioctl.cc"),
                      *Find(files, "README.md"), &problems);
  CheckCliDocCoverage("audioload", *Find(files, "audioload.cc"),
                      *Find(files, "README.md"), &problems);
  return problems;
}

}  // namespace audlint
}  // namespace aud
