// audiotop: a live top(1)-style view of a running audiond, built on the
// GetEntityStats / GetServerStats opcodes. Redraws every --interval-ms
// (default 1000); per-connection rows are sorted by total bytes moved, so
// the heaviest client is always the first row.
//
//   audiotop [--host H] [--port N] [--interval-ms N] [--once]
//
// --once prints a single frame without clearing the screen (script-friendly;
// CI uses it as a smoke test).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "src/alib/alib.h"

namespace {

using namespace aud;

void PrintFrame(AudioConnection& audio, bool clear) {
  auto server = audio.GetServerStats(false);
  auto entities = audio.GetEntityStats(true);
  if (!server.ok() || !entities.ok()) {
    std::fprintf(stderr, "audiotop: stats query failed (server gone?)\n");
    return;
  }
  const ServerStatsReply& s = server.value();
  EntityStatsReply e = entities.value();
  std::sort(e.connections.begin(), e.connections.end(),
            [](const ConnectionStatsWire& a, const ConnectionStatsWire& b) {
              return a.bytes_in + a.bytes_out > b.bytes_in + b.bytes_out;
            });

  if (clear) {
    std::printf("\033[H\033[2J");  // cursor home + clear screen
  }
  std::printf("audiond %u.%u  up %llu.%03llu s  engine %u Hz x%u  ticks %llu  "
              "req %llu (%llu err)  conns %lld\n",
              s.proto_major, s.proto_minor,
              static_cast<unsigned long long>(s.uptime_ms / 1000),
              static_cast<unsigned long long>(s.uptime_ms % 1000), s.engine_rate_hz,
              s.engine_threads, static_cast<unsigned long long>(s.ticks_run),
              static_cast<unsigned long long>(s.requests_total),
              static_cast<unsigned long long>(s.request_errors_total),
              static_cast<long long>(s.connections_open));
  std::printf("tick p99 %.0fus  dispatch p99 %.0fus  mouth-to-ear p99 %.0fus  "
              "tracing %s\n\n",
              s.tick_us.empty() ? 0.0 : s.tick_us.Percentile(99),
              s.dispatch_us.empty() ? 0.0 : s.dispatch_us.Percentile(99),
              s.mouth_to_ear_us.empty() ? 0.0 : s.mouth_to_ear_us.Percentile(99),
              s.trace_sample_every > 0 ? "on" : "off");

  std::printf("%-4s %-16s %10s %6s %12s %12s %8s %8s %10s\n", "#", "client", "requests",
              "errors", "bytes_in", "bytes_out", "events", "dropped", "disp_p99");
  for (const ConnectionStatsWire& c : e.connections) {
    std::printf("%-4u %-16s %10llu %6llu %12llu %12llu %8llu %8llu %9.0fus\n", c.index,
                c.name.empty() ? "?" : c.name.c_str(),
                static_cast<unsigned long long>(c.requests),
                static_cast<unsigned long long>(c.errors),
                static_cast<unsigned long long>(c.bytes_in),
                static_cast<unsigned long long>(c.bytes_out),
                static_cast<unsigned long long>(c.events_sent),
                static_cast<unsigned long long>(c.events_dropped),
                c.dispatch_us.empty() ? 0.0 : c.dispatch_us.Percentile(99));
  }
  if (!e.devices.empty()) {
    std::printf("\n%-10s %-10s %-8s %14s %14s\n", "root", "owner", "active",
                "frames_prod", "frames_cons");
    for (const DeviceStatsWire& d : e.devices) {
      char owner[16];
      if (d.owner == 0xFFFFFFFFu) {
        std::snprintf(owner, sizeof(owner), "server");
      } else {
        std::snprintf(owner, sizeof(owner), "#%u", d.owner);
      }
      std::printf("0x%-8x %-10s %-8s %14llu %14llu\n", d.root, owner,
                  d.active != 0 ? "yes" : "no",
                  static_cast<unsigned long long>(d.frames_produced),
                  static_cast<unsigned long long>(d.frames_consumed));
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7800;
  int interval_ms = 1000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (flag == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms < 100) {
        interval_ms = 100;
      }
    } else if (flag == "--once") {
      once = true;
    } else {
      std::fprintf(stderr,
                   "usage: audiotop [--host H] [--port N] [--interval-ms N] [--once]\n");
      return flag == "--help" ? 0 : 1;
    }
  }

  auto audio = AudioConnection::OpenTcp(host, port, "audiotop");
  if (audio == nullptr) {
    std::fprintf(stderr, "audiotop: cannot connect to %s:%u (is audiond running?)\n",
                 host.c_str(), port);
    return 1;
  }

  if (once) {
    PrintFrame(*audio, false);
    return 0;
  }
  while (audio->connected()) {
    PrintFrame(*audio, true);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
