// Command-line front end for the perf-regression comparator.
//
//   benchdiff [--threshold=0.10] [--warn-only] BASELINE.json CURRENT.json
//
// Exits 1 when any metric regressed past the threshold (unless
// --warn-only), 2 on usage or parse errors. See tools/benchdiff_core.h.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/benchdiff_core.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  bool warn_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "benchdiff: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: benchdiff [--threshold=0.10] [--warn-only] "
                 "BASELINE.json CURRENT.json\n");
    return 2;
  }

  std::string base_text, cur_text, error;
  if (!ReadFile(paths[0], &base_text)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", paths[0].c_str());
    return 2;
  }
  if (!ReadFile(paths[1], &cur_text)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", paths[1].c_str());
    return 2;
  }
  auto baseline = aud::benchdiff::ParseBenchJson(base_text, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", paths[0].c_str(), error.c_str());
    return 2;
  }
  auto current = aud::benchdiff::ParseBenchJson(cur_text, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", paths[1].c_str(), error.c_str());
    return 2;
  }

  aud::benchdiff::DiffResult result =
      aud::benchdiff::Compare(baseline, current, threshold);
  std::fputs(aud::benchdiff::FormatReport(result).c_str(), stdout);
  if (result.has_regression) {
    std::printf("benchdiff: regression past %.0f%% threshold%s\n",
                threshold * 100.0, warn_only ? " (warn-only)" : "");
    return warn_only ? 0 : 1;
  }
  std::printf("benchdiff: ok\n");
  return 0;
}
