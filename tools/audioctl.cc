// audioctl: command-line client for a running audiond.
//
//   audioctl [--host H] [--port N] <command> [args]
//
//   info                     server name, device LOUD, active stack
//   catalogue                list server-side sounds
//   play <name>              play a catalogue sound to the speaker
//   play-wav <file.wav>      upload a WAV file and play it
//   say <text...>            speak text through the synthesizer
//   record <seconds> <file>  record the microphone to a WAV file
//   beep                     play the catalogue beep
//   dial <number>            place a call and report progress
//
// Every subcommand is an ordinary Alib client; reading this file is the
// fastest tour of the client API.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/alib/alib.h"
#include "src/common/wav.h"
#include "src/dsp/encoding.h"
#include "src/toolkit/toolkit.h"

namespace {

using namespace aud;

int CmdInfo(AudioConnection& audio) {
  std::printf("server: %s\n", audio.server_name().c_str());
  auto devices = audio.QueryDeviceLoud();
  if (!devices.ok()) {
    return 1;
  }
  std::printf("device LOUD 0x%x:\n", devices.value().root);
  for (const auto& dev : devices.value().devices) {
    std::printf("  0x%x %-18s %-14s domain %u", dev.id,
                std::string(DeviceClassName(dev.device_class)).c_str(),
                dev.attrs.GetString(AttrTag::kName).value_or("?").c_str(),
                dev.attrs.GetU32(AttrTag::kAmbientDomain).value_or(0));
    if (auto number = dev.attrs.GetString(AttrTag::kPhoneNumber)) {
      std::printf("  number %s", number->c_str());
    }
    std::printf("\n");
  }
  for (const auto& wire : devices.value().hard_wires) {
    std::printf("  hard-wired: 0x%x -> 0x%x\n", wire.src_device, wire.dst_device);
  }
  auto stack = audio.QueryActiveStack();
  if (stack.ok()) {
    std::printf("active stack (%zu):\n", stack.value().entries.size());
    for (const auto& entry : stack.value().entries) {
      std::printf("  0x%x %s\n", entry.loud, entry.active != 0 ? "active" : "waiting");
    }
  }
  return 0;
}

int CmdCatalogue(AudioConnection& audio) {
  auto catalogue = audio.ListCatalogue();
  if (!catalogue.ok()) {
    return 1;
  }
  for (const auto& entry : catalogue.value().entries) {
    std::printf("%-28s %8llu bytes  %s @ %u Hz\n", entry.name.c_str(),
                static_cast<unsigned long long>(entry.size_bytes),
                std::string(EncodingName(entry.format.encoding)).c_str(),
                entry.format.sample_rate_hz);
  }
  return 0;
}

int PlaySound(AudioConnection& audio, ResourceId sound) {
  AudioToolkit toolkit(&audio);
  auto chain = toolkit.BuildPlaybackChain();
  if (!toolkit.PlayAndWait(chain, sound, 120000)) {
    std::fprintf(stderr, "playback failed\n");
    return 1;
  }
  return 0;
}

int CmdPlay(AudioConnection& audio, const std::string& name) {
  ResourceId sound = audio.LoadCatalogueSound(name);
  Status status = audio.Sync();
  AsyncError error;
  if (!status.ok() || audio.NextError(&error)) {
    std::fprintf(stderr, "no catalogue sound \"%s\"\n", name.c_str());
    return 1;
  }
  return PlaySound(audio, sound);
}

int CmdPlayWav(AudioConnection& audio, const std::string& path) {
  auto wav = ReadWavFile(path);
  if (!wav.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 wav.status().ToString().c_str());
    return 1;
  }
  AudioToolkit toolkit(&audio);
  ResourceId sound = toolkit.UploadSound(wav.value().samples,
                                         {Encoding::kPcm16, wav.value().sample_rate_hz});
  std::printf("uploaded %zu samples @ %u Hz\n", wav.value().samples.size(),
              wav.value().sample_rate_hz);
  return PlaySound(audio, sound);
}

int CmdSay(AudioConnection& audio, const std::string& text) {
  AudioToolkit toolkit(&audio);
  return toolkit.SayAndWait(text, 300000) ? 0 : 1;
}

int CmdRecord(AudioConnection& audio, int seconds, const std::string& path) {
  AudioToolkit toolkit(&audio);
  auto chain = toolkit.BuildRecordChain();
  ResourceId sound = audio.CreateSound({Encoding::kPcm16, 8000});
  audio.Enqueue(chain.loud,
                {RecordCommand(chain.recorder, sound, kTerminateOnStop,
                               static_cast<uint32_t>(seconds) * 1000, 1)});
  audio.StartQueue(chain.loud);
  audio.Sync();
  std::printf("recording %d s...\n", seconds);
  if (!toolkit.WaitCommandDone(1, seconds * 1000 + 10000)) {
    std::fprintf(stderr, "recording did not finish\n");
    return 1;
  }
  auto pcm = toolkit.DownloadSound(sound);
  if (!pcm.ok()) {
    return 1;
  }
  if (!WriteWavFile(path, pcm.value(), 8000)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu samples to %s\n", pcm.value().size(), path.c_str());
  return 0;
}

int CmdDial(AudioConnection& audio, const std::string& number) {
  AudioToolkit toolkit(&audio);
  ResourceId loud = audio.CreateLoud(kNoResource, {});
  ResourceId telephone = audio.CreateDevice(loud, DeviceClass::kTelephone, {});
  audio.SelectEvents(loud, kTelephoneEvents | kQueueEvents);
  audio.MapLoud(loud);
  audio.Enqueue(loud, {DialCommand(telephone, number, 1)});
  audio.StartQueue(loud);
  audio.Sync();
  std::printf("dialing %s...\n", number.c_str());
  auto done = toolkit.WaitFor(
      [](const EventMessage& e) {
        if (e.type == EventType::kCallProgress) {
          std::printf("  call progress: %s\n",
                      std::string(CallStateName(CallProgressArgs::Decode(e.args).state))
                          .c_str());
        }
        return e.type == EventType::kTelephoneDialDone;
      },
      60000);
  if (!done) {
    std::fprintf(stderr, "dial timed out\n");
    return 1;
  }
  CallState state = CallProgressArgs::Decode(done->args).state;
  std::printf("dial finished: %s\n", std::string(CallStateName(state)).c_str());
  audio.Immediate(loud, HangUpCommand(telephone));
  audio.Sync();
  return state == CallState::kConnected ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7800;
  int arg = 1;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    std::string flag = argv[arg];
    if (flag == "--host" && arg + 1 < argc) {
      host = argv[++arg];
    } else if (flag == "--port" && arg + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++arg]));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
    ++arg;
  }
  if (arg >= argc) {
    std::fprintf(stderr,
                 "usage: audioctl [--host H] [--port N] "
                 "info|catalogue|play|play-wav|say|record|beep|dial ...\n");
    return 1;
  }

  auto audio = AudioConnection::OpenTcp(host, port, "audioctl");
  if (audio == nullptr) {
    std::fprintf(stderr, "audioctl: cannot connect to %s:%u (is audiond running?)\n",
                 host.c_str(), port);
    return 1;
  }

  std::string command = argv[arg++];
  auto rest = [&]() {
    std::string joined;
    for (; arg < argc; ++arg) {
      if (!joined.empty()) {
        joined += ' ';
      }
      joined += argv[arg];
    }
    return joined;
  };

  if (command == "info") {
    return CmdInfo(*audio);
  }
  if (command == "catalogue") {
    return CmdCatalogue(*audio);
  }
  if (command == "play" && arg < argc) {
    return CmdPlay(*audio, argv[arg]);
  }
  if (command == "play-wav" && arg < argc) {
    return CmdPlayWav(*audio, argv[arg]);
  }
  if (command == "say" && arg < argc) {
    return CmdSay(*audio, rest());
  }
  if (command == "record" && arg + 1 < argc) {
    int seconds = std::atoi(argv[arg]);
    return CmdRecord(*audio, seconds, argv[arg + 1]);
  }
  if (command == "beep") {
    return CmdPlay(*audio, "beep");
  }
  if (command == "dial" && arg < argc) {
    return CmdDial(*audio, argv[arg]);
  }
  std::fprintf(stderr, "audioctl: bad command or missing argument\n");
  return 1;
}
