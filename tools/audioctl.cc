// audioctl: command-line client for a running audiond.
//
//   audioctl [--host H] [--port N] <command> [args]
//
//   info                     server name, uptime, device LOUD, active stack
//   catalogue                list server-side sounds
//   play <name>              play a catalogue sound to the speaker
//   play-wav <file.wav>      upload a WAV file and play it
//   say <text...>            speak text through the synthesizer
//   record <seconds> <file>  record the microphone to a WAV file
//   beep                     play the catalogue beep
//   dial <number>            place a call and report progress
//   stats [--json]           server counters and latency histograms
//   trace [N]                newest N engine/dispatcher trace events
//   trace --request [ID]     spans of one traced request (default: newest)
//   top                      per-connection and per-device stats, sorted
//                            by bytes (see also audiotop for a live view)
//
// Every subcommand is an ordinary Alib client; reading this file is the
// fastest tour of the client API.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/alib/alib.h"
#include "src/common/wav.h"
#include "src/dsp/encoding.h"
#include "src/toolkit/toolkit.h"

namespace {

using namespace aud;

int CmdInfo(AudioConnection& audio) {
  std::printf("server: %s\n", audio.server_name().c_str());
  if (auto stats = audio.GetServerStats(false); stats.ok()) {
    const ServerStatsReply& s = stats.value();
    std::printf("protocol: %u.%u (stats v%u)\n", s.proto_major, s.proto_minor,
                s.stats_version);
    std::printf("uptime: %llu.%03llu s  engine: %u Hz x%u threads  ticks: %llu\n",
                static_cast<unsigned long long>(s.uptime_ms / 1000),
                static_cast<unsigned long long>(s.uptime_ms % 1000), s.engine_rate_hz,
                s.engine_threads, static_cast<unsigned long long>(s.ticks_run));
  }
  auto devices = audio.QueryDeviceLoud();
  if (!devices.ok()) {
    return 1;
  }
  std::printf("device LOUD 0x%x:\n", devices.value().root);
  for (const auto& dev : devices.value().devices) {
    std::printf("  0x%x %-18s %-14s domain %u", dev.id,
                std::string(DeviceClassName(dev.device_class)).c_str(),
                dev.attrs.GetString(AttrTag::kName).value_or("?").c_str(),
                dev.attrs.GetU32(AttrTag::kAmbientDomain).value_or(0));
    if (auto number = dev.attrs.GetString(AttrTag::kPhoneNumber)) {
      std::printf("  number %s", number->c_str());
    }
    std::printf("\n");
  }
  for (const auto& wire : devices.value().hard_wires) {
    std::printf("  hard-wired: 0x%x -> 0x%x\n", wire.src_device, wire.dst_device);
  }
  auto stack = audio.QueryActiveStack();
  if (stack.ok()) {
    std::printf("active stack (%zu):\n", stack.value().entries.size());
    for (const auto& entry : stack.value().entries) {
      std::printf("  0x%x %s\n", entry.loud, entry.active != 0 ? "active" : "waiting");
    }
  }
  return 0;
}

int CmdCatalogue(AudioConnection& audio) {
  auto catalogue = audio.ListCatalogue();
  if (!catalogue.ok()) {
    return 1;
  }
  for (const auto& entry : catalogue.value().entries) {
    std::printf("%-28s %8llu bytes  %s @ %u Hz\n", entry.name.c_str(),
                static_cast<unsigned long long>(entry.size_bytes),
                std::string(EncodingName(entry.format.encoding)).c_str(),
                entry.format.sample_rate_hz);
  }
  return 0;
}

int PlaySound(AudioConnection& audio, ResourceId sound) {
  AudioToolkit toolkit(&audio);
  auto chain = toolkit.BuildPlaybackChain();
  if (!toolkit.PlayAndWait(chain, sound, 120000)) {
    std::fprintf(stderr, "playback failed\n");
    return 1;
  }
  return 0;
}

int CmdPlay(AudioConnection& audio, const std::string& name) {
  ResourceId sound = audio.LoadCatalogueSound(name);
  Status status = audio.Sync();
  AsyncError error;
  if (!status.ok() || audio.NextError(&error)) {
    std::fprintf(stderr, "no catalogue sound \"%s\"\n", name.c_str());
    return 1;
  }
  return PlaySound(audio, sound);
}

int CmdPlayWav(AudioConnection& audio, const std::string& path) {
  auto wav = ReadWavFile(path);
  if (!wav.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 wav.status().ToString().c_str());
    return 1;
  }
  AudioToolkit toolkit(&audio);
  ResourceId sound = toolkit.UploadSound(wav.value().samples,
                                         {Encoding::kPcm16, wav.value().sample_rate_hz});
  std::printf("uploaded %zu samples @ %u Hz\n", wav.value().samples.size(),
              wav.value().sample_rate_hz);
  return PlaySound(audio, sound);
}

int CmdSay(AudioConnection& audio, const std::string& text) {
  AudioToolkit toolkit(&audio);
  return toolkit.SayAndWait(text, 300000) ? 0 : 1;
}

int CmdRecord(AudioConnection& audio, int seconds, const std::string& path) {
  AudioToolkit toolkit(&audio);
  auto chain = toolkit.BuildRecordChain();
  ResourceId sound = audio.CreateSound({Encoding::kPcm16, 8000});
  audio.Enqueue(chain.loud,
                {RecordCommand(chain.recorder, sound, kTerminateOnStop,
                               static_cast<uint32_t>(seconds) * 1000, 1)});
  audio.StartQueue(chain.loud);
  if (!audio.Sync().ok()) {
    std::fprintf(stderr, "server connection lost\n");
    return 1;
  }
  std::printf("recording %d s...\n", seconds);
  if (!toolkit.WaitCommandDone(1, seconds * 1000 + 10000)) {
    std::fprintf(stderr, "recording did not finish\n");
    return 1;
  }
  auto pcm = toolkit.DownloadSound(sound);
  if (!pcm.ok()) {
    return 1;
  }
  if (!WriteWavFile(path, pcm.value(), 8000)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu samples to %s\n", pcm.value().size(), path.c_str());
  return 0;
}

int CmdDial(AudioConnection& audio, const std::string& number) {
  AudioToolkit toolkit(&audio);
  ResourceId loud = audio.CreateLoud(kNoResource, {});
  ResourceId telephone = audio.CreateDevice(loud, DeviceClass::kTelephone, {});
  audio.SelectEvents(loud, kTelephoneEvents | kQueueEvents);
  audio.MapLoud(loud);
  audio.Enqueue(loud, {DialCommand(telephone, number, 1)});
  audio.StartQueue(loud);
  if (!audio.Sync().ok()) {
    std::fprintf(stderr, "server connection lost\n");
    return 1;
  }
  std::printf("dialing %s...\n", number.c_str());
  auto done = toolkit.WaitFor(
      [](const EventMessage& e) {
        if (e.type == EventType::kCallProgress) {
          std::printf("  call progress: %s\n",
                      std::string(CallStateName(CallProgressArgs::Decode(e.args).state))
                          .c_str());
        }
        return e.type == EventType::kTelephoneDialDone;
      },
      60000);
  if (!done) {
    std::fprintf(stderr, "dial timed out\n");
    return 1;
  }
  CallState state = CallProgressArgs::Decode(done->args).state;
  std::printf("dial finished: %s\n", std::string(CallStateName(state)).c_str());
  audio.Immediate(loud, HangUpCommand(telephone));
  // Best-effort flush of the hang-up; the exit code reflects the call.
  (void)audio.Sync();
  return state == CallState::kConnected ? 0 : 1;
}

void PrintHistogramLine(const char* name, const obs::HistogramSnapshot& h) {
  if (h.empty()) {
    std::printf("  %-18s (no samples)\n", name);
    return;
  }
  std::printf("  %-18s n=%-8llu mean=%-8.1f p50=%-7.0f p95=%-7.0f p99=%-7.0f "
              "min=%llu max=%llu\n",
              name, static_cast<unsigned long long>(h.count), h.Mean(), h.Percentile(50),
              h.Percentile(95), h.Percentile(99), static_cast<unsigned long long>(h.min),
              static_cast<unsigned long long>(h.max));
}

void PrintHistogramJson(const char* name, const obs::HistogramSnapshot& h, bool last) {
  std::printf("    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
              "\"max\": %llu, \"mean\": %.2f, \"p50\": %.1f, \"p95\": %.1f, "
              "\"p99\": %.1f}%s\n",
              name, static_cast<unsigned long long>(h.count),
              static_cast<unsigned long long>(h.sum),
              static_cast<unsigned long long>(h.min),
              static_cast<unsigned long long>(h.max), h.Mean(),
              h.empty() ? 0.0 : h.Percentile(50), h.empty() ? 0.0 : h.Percentile(95),
              h.empty() ? 0.0 : h.Percentile(99), last ? "" : ",");
}

int CmdStats(AudioConnection& audio, bool json) {
  auto stats = audio.GetServerStats(true);
  if (!stats.ok()) {
    std::fprintf(stderr, "GetServerStats failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  const ServerStatsReply& s = stats.value();

  if (json) {
    std::printf("{\n");
    std::printf("  \"stats_version\": %u,\n", s.stats_version);
    std::printf("  \"protocol\": \"%u.%u\",\n", s.proto_major, s.proto_minor);
    std::printf("  \"uptime_ms\": %llu,\n", static_cast<unsigned long long>(s.uptime_ms));
    std::printf("  \"engine\": {\"rate_hz\": %u, \"threads\": %u, \"ticks_run\": %llu, "
                "\"tick_overruns\": %llu},\n",
                s.engine_rate_hz, s.engine_threads,
                static_cast<unsigned long long>(s.ticks_run),
                static_cast<unsigned long long>(s.tick_overruns));
    std::printf("  \"histograms\": {\n");
    PrintHistogramJson("tick_us", s.tick_us, false);
    PrintHistogramJson("tick_jitter_us", s.tick_jitter_us, false);
    PrintHistogramJson("islands_per_tick", s.islands_per_tick, false);
    PrintHistogramJson("worker_imbalance", s.worker_imbalance, false);
    PrintHistogramJson("dispatch_us", s.dispatch_us, false);
    PrintHistogramJson("lock_wait_us", s.lock_wait_us, false);
    PrintHistogramJson("epoch_commit_us", s.epoch_commit_us, false);
    PrintHistogramJson("mouth_to_ear_us", s.mouth_to_ear_us, false);
    PrintHistogramJson("loop_dispatch_us", s.loop_dispatch_us, true);
    std::printf("  },\n");
    std::printf("  \"requests\": {\"total\": %llu, \"errors\": %llu},\n",
                static_cast<unsigned long long>(s.requests_total),
                static_cast<unsigned long long>(s.request_errors_total));
    std::printf("  \"opcodes\": [\n");
    for (size_t i = 0; i < s.opcodes.size(); ++i) {
      const OpcodeStats& op = s.opcodes[i];
      std::printf("    {\"opcode\": \"%s\", \"count\": %llu, \"errors\": %llu, "
                  "\"total_us\": %llu}%s\n",
                  std::string(OpcodeName(static_cast<Opcode>(op.opcode))).c_str(),
                  static_cast<unsigned long long>(op.count),
                  static_cast<unsigned long long>(op.errors),
                  static_cast<unsigned long long>(op.total_us),
                  i + 1 < s.opcodes.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"connections\": {\"open\": %lld, \"total\": %llu, \"bytes_in\": %llu, "
                "\"bytes_out\": %llu, \"events_sent\": %llu},\n",
                static_cast<long long>(s.connections_open),
                static_cast<unsigned long long>(s.connections_total),
                static_cast<unsigned long long>(s.bytes_in),
                static_cast<unsigned long long>(s.bytes_out),
                static_cast<unsigned long long>(s.events_sent));
    std::printf("  \"objects\": %u,\n", s.objects);
    std::printf("  \"active_louds\": %u,\n", s.active_louds);
    std::printf("  \"queues\": {\"enqueued\": %llu, \"done\": %llu, \"aborted\": %llu, "
                "\"events\": %llu},\n",
                static_cast<unsigned long long>(s.commands_enqueued),
                static_cast<unsigned long long>(s.commands_done),
                static_cast<unsigned long long>(s.commands_aborted),
                static_cast<unsigned long long>(s.queue_events));
    std::printf("  \"decoded_cache\": {\"hits\": %llu, \"misses\": %llu, "
                "\"bytes\": %llu, \"evictions\": %llu},\n",
                static_cast<unsigned long long>(s.decoded_cache_hits),
                static_cast<unsigned long long>(s.decoded_cache_misses),
                static_cast<unsigned long long>(s.decoded_cache_bytes),
                static_cast<unsigned long long>(s.decoded_cache_evictions));
    std::printf("  \"egress\": {\"events_dropped\": %llu, \"disconnects\": %llu, "
                "\"queued_bytes\": %lld, \"accept_retries\": %llu},\n",
                static_cast<unsigned long long>(s.events_dropped),
                static_cast<unsigned long long>(s.egress_disconnects),
                static_cast<long long>(s.egress_queued_bytes),
                static_cast<unsigned long long>(s.accept_retries));
    std::printf("  \"epoch\": {\"commits\": %llu, \"shard_contention\": %llu},\n",
                static_cast<unsigned long long>(s.epoch_commits),
                static_cast<unsigned long long>(s.dispatch_shard_contention));
    std::printf("  \"tracing\": {\"spans\": %llu, \"requests_sampled\": %llu, "
                "\"sample_every\": %u},\n",
                static_cast<unsigned long long>(s.trace_spans),
                static_cast<unsigned long long>(s.trace_requests_sampled),
                s.trace_sample_every);
    std::printf("  \"loops\": {\"count\": %u, \"fds_watched\": %lld, "
                "\"epoll_waits\": %llu, \"wakeups\": %llu, "
                "\"readiness_spurious\": %llu},\n",
                s.loops, static_cast<long long>(s.fds_watched),
                static_cast<unsigned long long>(s.epoll_waits),
                static_cast<unsigned long long>(s.wakeups),
                static_cast<unsigned long long>(s.readiness_spurious));
    std::printf("  \"overload\": {\"admission_rejects\": %llu, "
                "\"rate_limited\": %llu, \"rate_limit_disconnects\": %llu, "
                "\"quota_denials\": %llu, \"draining\": %u, "
                "\"drain_forced_closes\": %llu, \"drain_duration_ms\": %llu}\n",
                static_cast<unsigned long long>(s.admission_rejects),
                static_cast<unsigned long long>(s.rate_limited),
                static_cast<unsigned long long>(s.rate_limit_disconnects),
                static_cast<unsigned long long>(s.quota_denials), s.draining,
                static_cast<unsigned long long>(s.drain_forced_closes),
                static_cast<unsigned long long>(s.drain_duration_ms));
    std::printf("}\n");
    return 0;
  }

  std::printf("protocol %u.%u, stats v%u, uptime %llu.%03llu s\n", s.proto_major,
              s.proto_minor, s.stats_version,
              static_cast<unsigned long long>(s.uptime_ms / 1000),
              static_cast<unsigned long long>(s.uptime_ms % 1000));
  std::printf("engine: %u Hz, %u thread%s, %llu ticks, %llu overruns\n", s.engine_rate_hz,
              s.engine_threads, s.engine_threads == 1 ? "" : "s",
              static_cast<unsigned long long>(s.ticks_run),
              static_cast<unsigned long long>(s.tick_overruns));
  PrintHistogramLine("tick us", s.tick_us);
  PrintHistogramLine("tick jitter us", s.tick_jitter_us);
  PrintHistogramLine("islands/tick", s.islands_per_tick);
  PrintHistogramLine("worker imbalance", s.worker_imbalance);
  std::printf("requests: %llu total, %llu errors\n",
              static_cast<unsigned long long>(s.requests_total),
              static_cast<unsigned long long>(s.request_errors_total));
  PrintHistogramLine("dispatch us", s.dispatch_us);
  for (const OpcodeStats& op : s.opcodes) {
    std::printf("  %-22s %8llu req %6llu err %10llu us\n",
                std::string(OpcodeName(static_cast<Opcode>(op.opcode))).c_str(),
                static_cast<unsigned long long>(op.count),
                static_cast<unsigned long long>(op.errors),
                static_cast<unsigned long long>(op.total_us));
  }
  std::printf("connections: %lld open, %llu total; bytes in %llu out %llu; "
              "events sent %llu\n",
              static_cast<long long>(s.connections_open),
              static_cast<unsigned long long>(s.connections_total),
              static_cast<unsigned long long>(s.bytes_in),
              static_cast<unsigned long long>(s.bytes_out),
              static_cast<unsigned long long>(s.events_sent));
  std::printf("objects: %u (%u active LOUDs)\n", s.objects, s.active_louds);
  std::printf("queues: %llu enqueued, %llu done, %llu aborted, %llu events\n",
              static_cast<unsigned long long>(s.commands_enqueued),
              static_cast<unsigned long long>(s.commands_done),
              static_cast<unsigned long long>(s.commands_aborted),
              static_cast<unsigned long long>(s.queue_events));
  std::printf("decoded cache: %llu hits, %llu misses, %llu bytes resident, "
              "%llu evictions\n",
              static_cast<unsigned long long>(s.decoded_cache_hits),
              static_cast<unsigned long long>(s.decoded_cache_misses),
              static_cast<unsigned long long>(s.decoded_cache_bytes),
              static_cast<unsigned long long>(s.decoded_cache_evictions));
  std::printf("egress: %llu events dropped, %llu slow-client disconnects, "
              "%lld bytes queued; accept retries %llu\n",
              static_cast<unsigned long long>(s.events_dropped),
              static_cast<unsigned long long>(s.egress_disconnects),
              static_cast<long long>(s.egress_queued_bytes),
              static_cast<unsigned long long>(s.accept_retries));
  std::printf("epoch: %llu commits, %llu shard-lock contentions\n",
              static_cast<unsigned long long>(s.epoch_commits),
              static_cast<unsigned long long>(s.dispatch_shard_contention));
  PrintHistogramLine("lock wait us", s.lock_wait_us);
  PrintHistogramLine("epoch commit us", s.epoch_commit_us);
  if (s.trace_sample_every > 0) {
    std::printf("tracing: every %uth request; %llu requests sampled, %llu spans\n",
                s.trace_sample_every,
                static_cast<unsigned long long>(s.trace_requests_sampled),
                static_cast<unsigned long long>(s.trace_spans));
  } else {
    std::printf("tracing: off (start audiond with --trace-sample N)\n");
  }
  PrintHistogramLine("mouth-to-ear us", s.mouth_to_ear_us);
  if (s.loops > 0) {
    std::printf("loops: %u event loop%s, %lld fds watched; %llu waits, "
                "%llu wakeups, %llu spurious\n",
                s.loops, s.loops == 1 ? "" : "s",
                static_cast<long long>(s.fds_watched),
                static_cast<unsigned long long>(s.epoll_waits),
                static_cast<unsigned long long>(s.wakeups),
                static_cast<unsigned long long>(s.readiness_spurious));
    PrintHistogramLine("loop dispatch us", s.loop_dispatch_us);
  } else {
    std::printf("loops: off (thread-per-connection; start audiond with "
                "--connection-threads N)\n");
  }
  std::printf("overload: %llu admission rejects, %llu rate-limited, "
              "%llu rate-limit disconnects, %llu quota denials\n",
              static_cast<unsigned long long>(s.admission_rejects),
              static_cast<unsigned long long>(s.rate_limited),
              static_cast<unsigned long long>(s.rate_limit_disconnects),
              static_cast<unsigned long long>(s.quota_denials));
  if (s.draining != 0 || s.drain_duration_ms != 0 || s.drain_forced_closes != 0) {
    std::printf("drain: %s, %llu forced closes, last drain %llu ms\n",
                s.draining != 0 ? "in progress" : "done",
                static_cast<unsigned long long>(s.drain_forced_closes),
                static_cast<unsigned long long>(s.drain_duration_ms));
  }
  return 0;
}

int CmdTrace(AudioConnection& audio, uint32_t max_events) {
  auto trace = audio.GetServerTrace(max_events);
  if (!trace.ok()) {
    std::fprintf(stderr, "GetServerTrace failed: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  for (const TraceEventWire& e : trace.value().events) {
    std::printf("%12lld us  t%-3u seq %-8llu %-16s arg0=%u arg1=%u\n",
                static_cast<long long>(e.t_us), e.tid,
                static_cast<unsigned long long>(e.seq),
                std::string(obs::TraceReasonName(static_cast<obs::TraceReason>(e.reason)))
                    .c_str(),
                e.arg0, e.arg1);
  }
  std::printf("%zu events\n", trace.value().events.size());
  return 0;
}

int CmdRequestTrace(AudioConnection& audio, uint64_t trace_id) {
  auto trace = audio.GetRequestTrace(trace_id);
  if (!trace.ok()) {
    std::fprintf(stderr, "GetRequestTrace failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  const RequestTraceReply& reply = trace.value();
  if (reply.spans.empty()) {
    std::printf("no spans for trace 0x%llx (tracing off, or the request was "
                "not sampled / already aged out of the ring)\n",
                static_cast<unsigned long long>(reply.trace_id));
    return 1;
  }
  // trace id = (id-block base << 32) | sequence; the id base for client
  // index i is (i + 1) << 20, so the connection index falls out directly.
  const uint64_t id_base = reply.trace_id >> 32;
  std::printf("trace 0x%llx: client #%llu sequence %llu, %zu spans\n",
              static_cast<unsigned long long>(reply.trace_id),
              static_cast<unsigned long long>((id_base >> 20) - 1),
              static_cast<unsigned long long>(reply.trace_id & 0xFFFFFFFFull),
              reply.spans.size());
  // Indent children under their parent (spans arrive in timestamp order,
  // so a parent that *starts* earlier has already been assigned a depth —
  // except the backdated root, which always has parent 0).
  std::map<uint64_t, int> depth;
  const int64_t t0 = reply.spans.front().t_us;
  for (const TraceEventWire& e : reply.spans) {
    int d = 0;
    if (e.parent != 0) {
      auto it = depth.find(e.parent);
      d = it != depth.end() ? it->second + 1 : 1;
    }
    depth[e.seq] = d;
    std::printf("  +%-8lld %*s%-16s dur=%-7u us  arg0=%u arg1=%u  (seq %llu%s)\n",
                static_cast<long long>(e.t_us - t0), d * 2, "",
                std::string(obs::TraceReasonName(static_cast<obs::TraceReason>(e.reason)))
                    .c_str(),
                e.dur_us, e.arg0, e.arg1, static_cast<unsigned long long>(e.seq),
                e.parent != 0
                    ? (" parent " + std::to_string(e.parent)).c_str()
                    : "");
  }
  return 0;
}

int CmdTop(AudioConnection& audio) {
  auto stats = audio.GetEntityStats(true);
  if (!stats.ok()) {
    std::fprintf(stderr, "GetEntityStats failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  EntityStatsReply reply = stats.value();
  std::sort(reply.connections.begin(), reply.connections.end(),
            [](const ConnectionStatsWire& a, const ConnectionStatsWire& b) {
              return a.bytes_in + a.bytes_out > b.bytes_in + b.bytes_out;
            });
  std::printf("%-4s %-16s %10s %6s %12s %12s %8s %8s %10s\n", "#", "client", "requests",
              "errors", "bytes_in", "bytes_out", "events", "dropped", "disp_p99");
  for (const ConnectionStatsWire& c : reply.connections) {
    std::printf("%-4u %-16s %10llu %6llu %12llu %12llu %8llu %8llu %9.0fus\n", c.index,
                c.name.empty() ? "?" : c.name.c_str(),
                static_cast<unsigned long long>(c.requests),
                static_cast<unsigned long long>(c.errors),
                static_cast<unsigned long long>(c.bytes_in),
                static_cast<unsigned long long>(c.bytes_out),
                static_cast<unsigned long long>(c.events_sent),
                static_cast<unsigned long long>(c.events_dropped),
                c.dispatch_us.empty() ? 0.0 : c.dispatch_us.Percentile(99));
  }
  if (!reply.devices.empty()) {
    std::printf("\n%-10s %-10s %-8s %14s %14s\n", "root", "owner", "active",
                "frames_prod", "frames_cons");
    for (const DeviceStatsWire& d : reply.devices) {
      char owner[16];
      if (d.owner == 0xFFFFFFFFu) {
        std::snprintf(owner, sizeof(owner), "server");
      } else {
        std::snprintf(owner, sizeof(owner), "#%u", d.owner);
      }
      std::printf("0x%-8x %-10s %-8s %14llu %14llu\n", d.root, owner,
                  d.active != 0 ? "yes" : "no",
                  static_cast<unsigned long long>(d.frames_produced),
                  static_cast<unsigned long long>(d.frames_consumed));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7800;
  int arg = 1;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    std::string flag = argv[arg];
    if (flag == "--host" && arg + 1 < argc) {
      host = argv[++arg];
    } else if (flag == "--port" && arg + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++arg]));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
    ++arg;
  }
  if (arg >= argc) {
    std::fprintf(stderr,
                 "usage: audioctl [--host H] [--port N] "
                 "info|catalogue|play|play-wav|say|record|beep|dial|stats|trace|top ...\n");
    return 1;
  }

  auto audio = AudioConnection::OpenTcp(host, port, "audioctl");
  if (audio == nullptr) {
    std::fprintf(stderr, "audioctl: cannot connect to %s:%u (is audiond running?)\n",
                 host.c_str(), port);
    return 1;
  }

  std::string command = argv[arg++];
  auto rest = [&]() {
    std::string joined;
    for (; arg < argc; ++arg) {
      if (!joined.empty()) {
        joined += ' ';
      }
      joined += argv[arg];
    }
    return joined;
  };

  if (command == "info") {
    return CmdInfo(*audio);
  }
  if (command == "catalogue") {
    return CmdCatalogue(*audio);
  }
  if (command == "play" && arg < argc) {
    return CmdPlay(*audio, argv[arg]);
  }
  if (command == "play-wav" && arg < argc) {
    return CmdPlayWav(*audio, argv[arg]);
  }
  if (command == "say" && arg < argc) {
    return CmdSay(*audio, rest());
  }
  if (command == "record" && arg + 1 < argc) {
    int seconds = std::atoi(argv[arg]);
    return CmdRecord(*audio, seconds, argv[arg + 1]);
  }
  if (command == "beep") {
    return CmdPlay(*audio, "beep");
  }
  if (command == "dial" && arg < argc) {
    return CmdDial(*audio, argv[arg]);
  }
  if (command == "stats") {
    bool json = arg < argc && std::string(argv[arg]) == "--json";
    return CmdStats(*audio, json);
  }
  if (command == "trace") {
    if (arg < argc && std::string(argv[arg]) == "--request") {
      ++arg;
      // Accepts 0x-hex or decimal; no argument = most recently sampled.
      uint64_t trace_id =
          arg < argc ? std::strtoull(argv[arg], nullptr, 0) : 0;
      return CmdRequestTrace(*audio, trace_id);
    }
    uint32_t max_events = arg < argc ? static_cast<uint32_t>(std::atoi(argv[arg])) : 0;
    return CmdTrace(*audio, max_events);
  }
  if (command == "top") {
    return CmdTop(*audio);
  }
  std::fprintf(stderr, "audioctl: bad command or missing argument\n");
  return 1;
}
