// benchdiff: the perf-regression comparator. Reads two bench JSON files
// (the google-benchmark-shaped output of bench/bench_json.h, or real
// google-benchmark --benchmark_out files) and flags metrics that moved
// more than a threshold in the bad direction. "Bad" is per-metric: times
// regress when they grow, metrics named *speedup* regress when they
// shrink. Runs from CI against the checked-in bench/baselines/ files.
//
// Like audlint, the core is a pure function over strings so the unit test
// (tests/benchdiff_test.cc) can exercise it on in-memory fixtures; the
// binary (tools/benchdiff.cc) adds file I/O and flags.

#ifndef TOOLS_BENCHDIFF_CORE_H_
#define TOOLS_BENCHDIFF_CORE_H_

#include <map>
#include <string>
#include <vector>

namespace aud {
namespace benchdiff {

// One benchmark entry: its name plus every numeric field found on it.
struct BenchEntry {
  std::string name;
  std::map<std::string, double> metrics;
};

// Parses the "benchmarks" array out of bench JSON. On malformed input
// returns an empty vector and sets *error; unknown fields are ignored.
std::vector<BenchEntry> ParseBenchJson(const std::string& text,
                                       std::string* error);

// One compared metric. `ratio` is current/baseline; `regression` is set
// when the move exceeds the threshold in the bad direction.
struct MetricDelta {
  std::string bench;
  std::string metric;
  double baseline = 0;
  double current = 0;
  double ratio = 1.0;
  bool regression = false;
};

struct DiffResult {
  std::vector<MetricDelta> deltas;    // every metric present in both files
  std::vector<std::string> notes;     // benchmarks only on one side
  bool has_regression = false;
};

// True when larger values of this metric are better (e.g. speedups);
// everything else (times, counts) regresses upward.
bool HigherIsBetter(const std::string& metric);

// Compares every metric present in both files. `threshold` is fractional:
// 0.10 flags moves beyond +/-10% in the bad direction. Bookkeeping fields
// ("iterations", "cpu_time" -- duplicated from real_time by our writer)
// are skipped.
DiffResult Compare(const std::vector<BenchEntry>& baseline,
                   const std::vector<BenchEntry>& current, double threshold);

// Human-readable report, one line per compared metric.
std::string FormatReport(const DiffResult& result);

}  // namespace benchdiff
}  // namespace aud

#endif  // TOOLS_BENCHDIFF_CORE_H_
