// audlint driver: lints the real tree. Usage: audlint [repo-root]
// (default "."). Registered as a ctest so protocol drift fails the build's
// test stage; see tools/audlint_core.h for the checks.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/audlint_core.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : ".";
  const std::pair<const char*, const char*> sources[] = {
      {"protocol.h", "src/wire/protocol.h"},
      {"protocol.cc", "src/wire/protocol.cc"},
      {"messages.h", "src/wire/messages.h"},
      {"messages.cc", "src/wire/messages.cc"},
      {"alib.h", "src/alib/alib.h"},
      {"alib.cc", "src/alib/alib.cc"},
      {"requests.cc", "src/alib/requests.cc"},
      {"dispatcher.cc", "src/server/dispatcher.cc"},
      {"PROTOCOL.md", "docs/PROTOCOL.md"},
      {"schema.lock", "docs/schema.lock"},
      {"lock_rank.h", "src/common/lock_rank.h"},
      {"DESIGN.md", "DESIGN.md"},
      {"status.h", "src/common/status.h"},
      {"status.cc", "src/common/status.cc"},
      {"metrics.h", "src/server/metrics.h"},
      {"server_state.cc", "src/server/server_state.cc"},
      {"stats_render.cc", "src/server/stats_render.cc"},
      {"flight_recorder.cc", "src/server/flight_recorder.cc"},
      {"audiond.cc", "tools/audiond.cc"},
      {"audioctl.cc", "tools/audioctl.cc"},
      {"audioload.cc", "tools/audioload.cc"},
      {"README.md", "README.md"},
  };

  std::map<std::string, std::string> files;
  bool read_ok = true;
  for (const auto& [key, rel] : sources) {
    std::string text;
    std::string path = root + "/" + rel;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "audlint: cannot read %s\n", path.c_str());
      read_ok = false;
      continue;
    }
    files[key] = std::move(text);
  }
  if (!read_ok) {
    return 2;
  }

  std::vector<std::string> problems = aud::audlint::LintTree(files);
  for (const std::string& problem : problems) {
    std::fprintf(stderr, "audlint: %s\n", problem.c_str());
  }
  if (!problems.empty()) {
    std::fprintf(stderr, "audlint: %zu problem(s)\n", problems.size());
    return 1;
  }
  std::printf("audlint: ok\n");
  return 0;
}
