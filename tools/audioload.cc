// audioload: capacity load generator for audiond (the C10k driver behind
// bench_capacity). Opens N raw-protocol clients — no Alib, so the generator
// spends a fixed worker pool rather than a thread per connection, exactly
// the discipline the server's event-loop plane is being measured on — ramps
// them up over --ramp-ms, then holds for --hold-ms while every client is
// touched round-robin with a class-specific request mix:
//
//   dial       Immediate(DialCommand) on a telephone device
//   play       Immediate(PlayCommand) of a small uploaded sound
//   record     Immediate(RecordCommand) into a scratch sound
//   subscribe  SelectEvents(kAllEvents) + Map/UnmapLoud churn (self-events)
//
// Every --sync-every'th touch is a kSync round-trip; its RTT is the
// client-observed end-to-end latency (framing, loop dispatch, the big lock,
// egress) and is reported as p50/p95/p99/max. Exit code 1 when any client
// died unexpectedly or nothing connected — so CI smoke can assert survival.
//
// --abuse swaps the mix for an overload-protection exercise: flooders
// (request storms), device hogs and sound hogs (quota busters), plus one
// well-behaved player class whose sync RTT is the fairness verdict. The
// RateLimited / QuotaExceeded errors each client observes are counted and
// reported; abusers being throttled or cut does not fail the run.
//
// usage: audioload --port P [--host 127.0.0.1] [--clients 100] [--workers 8]
//                  [--ramp-ms 1000] [--hold-ms 2000] [--sync-every 8]
//                  [--abuse] [--json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/alib/alib.h"
#include "src/transport/framer.h"
#include "src/transport/socket_stream.h"
#include "src/wire/messages.h"

namespace aud {
namespace {

// The well-behaved mix, plus the --abuse classes: flooders burst requests
// far past any sane rate (tripping the token buckets), device hogs create
// virtual devices until the quota says no, sound hogs append sound data
// until the byte quota says no. Abuse runs keep one well-behaved class in
// the mix so the server's fairness — abusers throttled, the compliant
// client's sync RTT intact — is observable from the same process.
enum class MixClass : uint8_t {
  kDial,
  kPlay,
  kRecord,
  kSubscribe,
  kFlood,
  kDeviceHog,
  kSoundHog,
};

const char* MixName(MixClass mix) {
  switch (mix) {
    case MixClass::kDial: return "dial";
    case MixClass::kPlay: return "play";
    case MixClass::kRecord: return "record";
    case MixClass::kSubscribe: return "subscribe";
    case MixClass::kFlood: return "flood";
    case MixClass::kDeviceHog: return "devicehog";
    case MixClass::kSoundHog: return "soundhog";
  }
  return "?";
}

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int clients = 100;
  int workers = 8;
  int ramp_ms = 1000;
  int hold_ms = 2000;
  int sync_every = 8;
  bool json = false;
  // Abuse mode: 3/4 of clients are flooders and quota-busters, 1/4 stay
  // well-behaved players. Abusers getting throttled or cut is the expected
  // outcome, so only "nothing connected" fails the run.
  bool abuse = false;
};

// One raw-protocol client: a TCP stream, its id block, and a per-class
// touch. Owned and driven by exactly one worker thread; no locking.
class LoadClient {
 public:
  LoadClient(int index, MixClass mix) : index_(index), mix_(mix) {}

  bool alive() const { return stream_ != nullptr && !dead_; }
  MixClass mix() const { return mix_; }
  bool abusive() const { return mix_ >= MixClass::kFlood; }
  uint64_t touches() const { return touches_; }
  uint64_t events_seen() const { return events_seen_; }
  uint64_t rate_limited_seen() const { return rate_limited_seen_; }
  uint64_t quota_denied_seen() const { return quota_denied_seen_; }
  const std::vector<uint32_t>& rtts_us() const { return rtts_us_; }

  // Connects, performs the setup handshake, and creates the class's server
  // objects (async), confirmed by one sync round-trip.
  bool Connect(const Options& options) {
    stream_ = ConnectTcp(options.host, options.port);
    if (stream_ == nullptr) {
      return false;
    }
    SetupRequest request;
    request.client_name = std::string(MixName(mix_)) + "-" + std::to_string(index_);
    ByteWriter w;
    request.Encode(&w);
    if (!WriteMessage(stream_.get(), MessageType::kRequest, kSetupOpcode, 0,
                      w.bytes())) {
      return Fail();
    }
    std::optional<FramedMessage> reply = ReadMessage(stream_.get());
    if (!reply) {
      return Fail();
    }
    ByteReader r(reply->payload);
    SetupReply setup = SetupReply::Decode(&r);
    if (!r.ok() || setup.success == 0) {
      return Fail();
    }
    id_base_ = setup.id_base;
    return Prepare();
  }

  // One round-robin visit: the class's async request, plus a measured sync
  // round-trip every sync_every'th visit.
  bool Touch(int sync_every) {
    if (!alive()) {
      return false;
    }
    switch (mix_) {
      case MixClass::kDial:
        SendImmediate(DialCommand(device_, "5551234"));
        break;
      case MixClass::kPlay:
        SendImmediate(PlayCommand(device_, sound_, /*tag=*/NextTag()));
        break;
      case MixClass::kRecord:
        SendImmediate(
            RecordCommand(device_, sound_, /*termination=*/0, /*max_ms=*/20));
        break;
      case MixClass::kSubscribe: {
        // Map/unmap churn: lifecycle events the client itself subscribed to.
        MapLoudReq map;
        map.loud = loud_;
        ByteWriter w;
        map.Encode(&w);
        Send(mapped_ ? Opcode::kUnmapLoud : Opcode::kMapLoud, w.bytes());
        mapped_ = !mapped_;
        break;
      }
      case MixClass::kFlood:
        // Request storm: a burst of NoOps per visit, far past any sane
        // request rate. Soft-policy refusals come back as RateLimited
        // errors (consumed and counted at the next sync); the hard policy
        // cuts the connection, which abuse-mode scoring expects.
        for (int k = 0; k < 32 && alive(); ++k) {
          if (!Send(Opcode::kNoOp, {})) {
            break;
          }
        }
        break;
      case MixClass::kDeviceHog:
        // One more virtual device per visit, forever — the device quota
        // answers QuotaExceeded once the cap is reached.
        CreateDevice(DeviceClass::kPlayer);
        break;
      case MixClass::kSoundHog: {
        // Append another block to the hoard; the sound-byte quota denies
        // all growth past the cap. The offset stops advancing at 1 MiB so
        // the denial stays a quota denial (not the absolute size cap).
        WriteSoundDataReq write;
        write.id = sound_;
        write.offset = hog_offset_;
        write.data.assign(4096, 0x40);
        if (hog_offset_ < (1u << 20)) {
          hog_offset_ += 4096;
        }
        ByteWriter w;
        write.Encode(&w);
        Send(Opcode::kWriteSoundData, w.bytes());
        break;
      }
    }
    ++touches_;
    if (sync_every > 0 && touches_ % static_cast<uint64_t>(sync_every) == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      if (!SyncRoundTrip()) {
        return false;
      }
      rtts_us_.push_back(static_cast<uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    return alive();
  }

  void Close() {
    if (stream_ != nullptr) {
      stream_->Close();
    }
  }

 private:
  bool Fail() {
    dead_ = true;
    if (stream_ != nullptr) {
      stream_->Close();
      stream_.reset();
    }
    return false;
  }

  ResourceId AllocId() { return id_base_ + next_id_++; }
  uint32_t NextTag() { return ++tag_; }

  bool Send(Opcode opcode, std::span<const uint8_t> payload) {
    if (!WriteMessage(stream_.get(), MessageType::kRequest,
                      static_cast<uint16_t>(opcode), ++sequence_, payload)) {
      return Fail();
    }
    return true;
  }

  void SendImmediate(const CommandSpec& command) {
    ImmediateCommandReq req;
    req.loud = loud_;
    req.command = command;
    ByteWriter w;
    req.Encode(&w);
    Send(Opcode::kImmediateCommand, w.bytes());
  }

  // kSync round-trip; async events and errors that arrive first are
  // consumed (events counted, errors tolerated — hostile-free load still
  // races device-state errors, e.g. Dial on an already-dialing telephone).
  bool SyncRoundTrip() {
    if (!Send(Opcode::kSync, {})) {
      return false;
    }
    const uint32_t want = sequence_;
    for (int i = 0; i < 100000; ++i) {
      std::optional<FramedMessage> msg = ReadMessage(stream_.get());
      if (!msg) {
        Fail();
        return false;
      }
      if (msg->header.type == MessageType::kEvent) {
        ++events_seen_;
        continue;
      }
      if (msg->header.type == MessageType::kError) {
        // Tolerated, but overload verdicts are counted: they are the
        // client-side evidence the server's throttles actually fired.
        ByteReader er(msg->payload);
        ErrorMessage error = ErrorMessage::Decode(&er);
        if (er.ok() && error.code == ErrorCode::kRateLimited) {
          ++rate_limited_seen_;
        } else if (er.ok() && error.code == ErrorCode::kQuotaExceeded) {
          ++quota_denied_seen_;
        }
        continue;
      }
      if (msg->header.type == MessageType::kReply &&
          msg->header.sequence == want) {
        return true;
      }
    }
    Fail();
    return false;
  }

  bool Prepare() {
    loud_ = AllocId();
    CreateLoudReq loud;
    loud.id = loud_;
    ByteWriter lw;
    loud.Encode(&lw);
    if (!Send(Opcode::kCreateLoud, lw.bytes())) {
      return false;
    }
    switch (mix_) {
      case MixClass::kDial:
        if (!CreateDevice(DeviceClass::kTelephone)) {
          return false;
        }
        break;
      case MixClass::kPlay:
        if (!CreateDevice(DeviceClass::kPlayer) || !CreateSound(true)) {
          return false;
        }
        break;
      case MixClass::kRecord:
        if (!CreateDevice(DeviceClass::kRecorder) || !CreateSound(false)) {
          return false;
        }
        break;
      case MixClass::kSubscribe: {
        SelectEventsReq select;
        select.resource = loud_;
        select.mask = kAllEvents;
        ByteWriter sw;
        select.Encode(&sw);
        if (!Send(Opcode::kSelectEvents, sw.bytes())) {
          return false;
        }
        break;
      }
      case MixClass::kFlood:
      case MixClass::kDeviceHog:
        break;  // the LOUD alone is enough to abuse from
      case MixClass::kSoundHog:
        if (!CreateSound(false)) {
          return false;
        }
        break;
    }
    return SyncRoundTrip();  // all creates landed; errors surfaced, client up
  }

  bool CreateDevice(DeviceClass device_class) {
    device_ = AllocId();
    CreateVirtualDeviceReq req;
    req.id = device_;
    req.loud = loud_;
    req.device_class = device_class;
    ByteWriter w;
    req.Encode(&w);
    return Send(Opcode::kCreateVirtualDevice, w.bytes());
  }

  bool CreateSound(bool upload) {
    sound_ = AllocId();
    CreateSoundReq req;
    req.id = sound_;
    req.format = kTelephoneFormat;
    ByteWriter w;
    req.Encode(&w);
    if (!Send(Opcode::kCreateSound, w.bytes())) {
      return false;
    }
    if (upload) {
      WriteSoundDataReq write;
      write.id = sound_;
      write.data.assign(800, 0x40);  // 100 ms of mulaw at 8 kHz
      ByteWriter ww;
      write.Encode(&ww);
      return Send(Opcode::kWriteSoundData, ww.bytes());
    }
    return true;
  }

  const int index_;
  const MixClass mix_;
  std::unique_ptr<ByteStream> stream_;
  ResourceId id_base_ = kNoResource;
  uint32_t next_id_ = 0;
  uint32_t sequence_ = 0;
  uint32_t tag_ = 0;
  ResourceId loud_ = kNoResource;
  ResourceId device_ = kNoResource;
  ResourceId sound_ = kNoResource;
  bool mapped_ = false;
  bool dead_ = false;
  uint64_t touches_ = 0;
  uint64_t events_seen_ = 0;
  uint64_t rate_limited_seen_ = 0;
  uint64_t quota_denied_seen_ = 0;
  uint64_t hog_offset_ = 0;
  std::vector<uint32_t> rtts_us_;
};

double PercentileOf(std::vector<uint32_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t index = static_cast<size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       p / 100.0 * static_cast<double>(sorted.size())));
  return static_cast<double>(sorted[index]);
}

int Run(const Options& options) {
  const int workers =
      std::max(1, std::min(options.workers, std::max(1, options.clients)));
  std::atomic<int64_t> connected{0};
  std::atomic<int64_t> setup_failed{0};
  std::atomic<int64_t> died{0};
  std::atomic<int64_t> abusers_died{0};
  std::atomic<uint64_t> touches{0};
  std::atomic<uint64_t> events_seen{0};
  std::atomic<uint64_t> rate_limited_seen{0};
  std::atomic<uint64_t> quota_denied_seen{0};
  std::vector<std::vector<uint32_t>> worker_rtts(static_cast<size_t>(workers));

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const int lo = options.clients * w / workers;
      const int hi = options.clients * (w + 1) / workers;
      std::vector<std::unique_ptr<LoadClient>> mine;
      mine.reserve(static_cast<size_t>(hi - lo));

      // Ramp: spread this worker's connects evenly across the ramp window.
      for (int i = lo; i < hi; ++i) {
        if (options.ramp_ms > 0 && hi > lo) {
          const auto due = started + std::chrono::milliseconds(
                                         options.ramp_ms * (i - lo) / (hi - lo));
          std::this_thread::sleep_until(due);
        }
        // Abuse mix: flooder / device hog / sound hog / well-behaved
        // player, so fairness (the player's RTT under attack) is measured
        // in the same run that generates the attack.
        const MixClass mix =
            options.abuse
                ? (i % 4 == 3 ? MixClass::kPlay
                              : static_cast<MixClass>(
                                    static_cast<int>(MixClass::kFlood) + i % 4))
                : static_cast<MixClass>(i % 4);
        auto client = std::make_unique<LoadClient>(i, mix);
        if (client->Connect(options)) {
          connected.fetch_add(1);
          mine.push_back(std::move(client));
        } else {
          setup_failed.fetch_add(1);
        }
      }

      // Hold: round-robin touches until the deadline.
      const auto deadline = started +
                            std::chrono::milliseconds(options.ramp_ms) +
                            std::chrono::milliseconds(options.hold_ms);
      while (std::chrono::steady_clock::now() < deadline) {
        bool any = false;
        for (auto& client : mine) {
          if (!client->alive()) {
            continue;
          }
          any = true;
          if (!client->Touch(options.sync_every)) {
            // An abuser cut by the hard policy is the system working, not a
            // casualty; only well-behaved deaths count against the run.
            (client->abusive() ? abusers_died : died).fetch_add(1);
          }
        }
        if (!any) {
          break;
        }
      }

      for (auto& client : mine) {
        touches.fetch_add(client->touches());
        events_seen.fetch_add(client->events_seen());
        rate_limited_seen.fetch_add(client->rate_limited_seen());
        quota_denied_seen.fetch_add(client->quota_denied_seen());
        // In abuse mode the RTT percentiles are the fairness verdict: only
        // the well-behaved clients' syncs count (a throttled flooder's sync
        // queues behind its own refused backlog by design).
        if (!options.abuse || !client->abusive()) {
          auto& sink = worker_rtts[static_cast<size_t>(w)];
          sink.insert(sink.end(), client->rtts_us().begin(),
                      client->rtts_us().end());
        }
        client->Close();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  std::vector<uint32_t> rtts;
  for (auto& chunk : worker_rtts) {
    rtts.insert(rtts.end(), chunk.begin(), chunk.end());
  }
  std::sort(rtts.begin(), rtts.end());
  const double p50 = PercentileOf(rtts, 50);
  const double p95 = PercentileOf(rtts, 95);
  const double p99 = PercentileOf(rtts, 99);
  const double max = rtts.empty() ? 0.0 : static_cast<double>(rtts.back());
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  if (options.json) {
    std::printf(
        "{\"clients\": %d, \"connected\": %lld, \"setup_failed\": %lld, "
        "\"died\": %lld, \"abusers_died\": %lld, \"touches\": %llu, "
        "\"events_seen\": %llu, \"rate_limited_seen\": %llu, "
        "\"quota_denied_seen\": %llu, "
        "\"syncs\": %zu, \"sync_rtt_us\": {\"p50\": %.0f, \"p95\": %.0f, "
        "\"p99\": %.0f, \"max\": %.0f}, \"wall_s\": %.2f}\n",
        options.clients, static_cast<long long>(connected.load()),
        static_cast<long long>(setup_failed.load()),
        static_cast<long long>(died.load()),
        static_cast<long long>(abusers_died.load()),
        static_cast<unsigned long long>(touches.load()),
        static_cast<unsigned long long>(events_seen.load()),
        static_cast<unsigned long long>(rate_limited_seen.load()),
        static_cast<unsigned long long>(quota_denied_seen.load()), rtts.size(),
        p50, p95, p99, max, wall_s);
  } else {
    std::printf("audioload: %lld/%d clients up (%lld setup failures), "
                "%llu touches, %llu events, %.1fs\n",
                static_cast<long long>(connected.load()), options.clients,
                static_cast<long long>(setup_failed.load()),
                static_cast<unsigned long long>(touches.load()),
                static_cast<unsigned long long>(events_seen.load()), wall_s);
    std::printf("audioload: sync rtt us p50=%.0f p95=%.0f p99=%.0f max=%.0f "
                "(%zu samples)\n",
                p50, p95, p99, max, rtts.size());
    if (options.abuse) {
      std::printf("audioload: abuse: %llu rate-limited, %llu quota denials "
                  "seen, %lld abusers cut\n",
                  static_cast<unsigned long long>(rate_limited_seen.load()),
                  static_cast<unsigned long long>(quota_denied_seen.load()),
                  static_cast<long long>(abusers_died.load()));
    }
    if (died.load() > 0) {
      std::printf("audioload: %lld clients died mid-hold\n",
                  static_cast<long long>(died.load()));
    }
  }
  // Abuse runs expect casualties among the abusers; a dead well-behaved
  // client still fails the run either way.
  const bool ok = connected.load() > 0 && died.load() == 0;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main(int argc, char** argv) {
  aud::Options options;
  auto next_int = [&](int i) { return i + 1 < argc ? std::atoi(argv[i + 1]) : 0; };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(next_int(i));
      ++i;
    } else if (arg == "--clients") {
      options.clients = std::max(1, next_int(i));
      ++i;
    } else if (arg == "--workers") {
      options.workers = std::max(1, next_int(i));
      ++i;
    } else if (arg == "--ramp-ms") {
      options.ramp_ms = std::max(0, next_int(i));
      ++i;
    } else if (arg == "--hold-ms") {
      options.hold_ms = std::max(0, next_int(i));
      ++i;
    } else if (arg == "--sync-every") {
      options.sync_every = std::max(0, next_int(i));
      ++i;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--abuse") {
      options.abuse = true;
    } else {
      std::fprintf(stderr,
                   "usage: audioload --port P [--host H] [--clients N] "
                   "[--workers W] [--ramp-ms R] [--hold-ms H] "
                   "[--sync-every K] [--abuse] [--json]\n");
      return 2;
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "audioload: --port is required\n");
    return 2;
  }
  return aud::Run(options);
}
