#include "tools/benchdiff_core.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace aud {
namespace benchdiff {
namespace {

// Minimal recursive-descent JSON reader covering the subset benchmark
// files use (objects, arrays, strings, numbers, true/false/null). It only
// materializes what benchdiff needs: for each element of the top-level
// "benchmarks" array, the "name" string and every numeric field.
class JsonReader {
 public:
  JsonReader(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::vector<BenchEntry> ReadBenchFile() {
    std::vector<BenchEntry> entries;
    SkipWs();
    if (!Consume('{')) {
      Fail("expected top-level object");
      return {};
    }
    if (!ReadObjectMembers([&](const std::string& key) {
          if (key == "benchmarks") {
            entries = ReadBenchArray();
            return !failed_;
          }
          return SkipValue();
        })) {
      return {};
    }
    return entries;
  }

 private:
  std::vector<BenchEntry> ReadBenchArray() {
    std::vector<BenchEntry> entries;
    SkipWs();
    if (!Consume('[')) {
      Fail("\"benchmarks\" is not an array");
      return {};
    }
    SkipWs();
    if (Consume(']')) {
      return entries;
    }
    do {
      BenchEntry entry;
      SkipWs();
      if (!Consume('{')) {
        Fail("benchmark entry is not an object");
        return {};
      }
      if (!ReadObjectMembers([&](const std::string& key) {
            SkipWs();
            if (key == "name" && Peek() == '"') {
              return ReadString(&entry.name);
            }
            if (Peek() == '-' || std::isdigit(static_cast<unsigned char>(Peek()))) {
              double value = 0;
              if (!ReadNumber(&value)) {
                return false;
              }
              entry.metrics[key] = value;
              return true;
            }
            return SkipValue();
          })) {
        return {};
      }
      entries.push_back(std::move(entry));
      SkipWs();
    } while (Consume(','));
    if (!Consume(']')) {
      Fail("unterminated benchmarks array");
      return {};
    }
    return entries;
  }

  // Reads `"key": value` pairs until the closing '}'. The callback consumes
  // the value and returns false to abort.
  template <typename Fn>
  bool ReadObjectMembers(Fn&& on_member) {
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    do {
      SkipWs();
      std::string key;
      if (!ReadString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':' after key");
      }
      if (!on_member(key)) {
        return false;
      }
      SkipWs();
    } while (Consume(','));
    if (!Consume('}')) {
      return Fail("unterminated object");
    }
    return true;
  }

  bool SkipValue() {
    SkipWs();
    char c = Peek();
    if (c == '"') {
      std::string ignored;
      return ReadString(&ignored);
    }
    if (c == '{') {
      ++pos_;
      return ReadObjectMembers([&](const std::string&) { return SkipValue(); });
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (Consume(']')) {
        return true;
      }
      do {
        if (!SkipValue()) {
          return false;
        }
        SkipWs();
      } while (Consume(','));
      return Consume(']') || Fail("unterminated array");
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      double ignored = 0;
      return ReadNumber(&ignored);
    }
    for (const char* word : {"true", "false", "null"}) {
      if (text_.compare(pos_, std::char_traits<char>::length(word), word) == 0) {
        pos_ += std::char_traits<char>::length(word);
        return true;
      }
    }
    return Fail("unrecognized value");
  }

  bool ReadString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        out->push_back(text_[pos_ + 1]);
        pos_ += 2;
      } else {
        out->push_back(text_[pos_]);
        ++pos_;
      }
    }
    return Consume('"') || Fail("unterminated string");
  }

  bool ReadNumber(double* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected number");
    }
    *out = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const char* what) {
    if (!failed_ && error_ != nullptr) {
      *error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
    failed_ = true;
    return false;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  bool failed_ = false;
};

bool IsBookkeeping(const std::string& metric) {
  return metric == "iterations" || metric == "cpu_time";
}

}  // namespace

std::vector<BenchEntry> ParseBenchJson(const std::string& text,
                                       std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  JsonReader reader(text, error);
  std::vector<BenchEntry> entries = reader.ReadBenchFile();
  if (error != nullptr && !error->empty()) {
    return {};
  }
  return entries;
}

bool HigherIsBetter(const std::string& metric) {
  return metric.find("speedup") != std::string::npos;
}

DiffResult Compare(const std::vector<BenchEntry>& baseline,
                   const std::vector<BenchEntry>& current, double threshold) {
  DiffResult result;
  std::map<std::string, const BenchEntry*> current_by_name;
  for (const BenchEntry& entry : current) {
    current_by_name[entry.name] = &entry;
  }
  std::map<std::string, bool> matched;
  for (const BenchEntry& base : baseline) {
    auto it = current_by_name.find(base.name);
    if (it == current_by_name.end()) {
      result.notes.push_back("baseline benchmark \"" + base.name +
                             "\" missing from current run");
      continue;
    }
    matched[base.name] = true;
    for (const auto& [metric, base_value] : base.metrics) {
      if (IsBookkeeping(metric)) {
        continue;
      }
      auto mit = it->second->metrics.find(metric);
      if (mit == it->second->metrics.end()) {
        continue;
      }
      MetricDelta delta;
      delta.bench = base.name;
      delta.metric = metric;
      delta.baseline = base_value;
      delta.current = mit->second;
      delta.ratio = base_value != 0 ? mit->second / base_value
                                    : (mit->second == 0 ? 1.0 : HUGE_VAL);
      if (HigherIsBetter(metric)) {
        delta.regression = delta.ratio < 1.0 - threshold;
      } else {
        delta.regression = delta.ratio > 1.0 + threshold;
      }
      result.has_regression = result.has_regression || delta.regression;
      result.deltas.push_back(std::move(delta));
    }
  }
  for (const BenchEntry& entry : current) {
    if (!matched.count(entry.name)) {
      result.notes.push_back("benchmark \"" + entry.name +
                             "\" is new (not in baseline)");
    }
  }
  return result;
}

std::string FormatReport(const DiffResult& result) {
  std::string report;
  char line[256];
  for (const MetricDelta& d : result.deltas) {
    std::snprintf(line, sizeof(line),
                  "%-9s %-40s %-24s %14.3f -> %14.3f  (%+.1f%%)\n",
                  d.regression ? "REGRESSED" : "ok", d.bench.c_str(),
                  d.metric.c_str(), d.baseline, d.current,
                  (d.ratio - 1.0) * 100.0);
    report += line;
  }
  for (const std::string& note : result.notes) {
    report += "note: " + note + "\n";
  }
  return report;
}

}  // namespace benchdiff
}  // namespace aud
