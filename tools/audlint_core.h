// audlint: the whole-program invariant linter. Cross-references the five
// places an opcode must be wired — the Opcode enum, the kOpcodeNames table,
// the dispatcher switch, the Alib veneer, and the PROTOCOL.md opcode index —
// and enforces the append-only reply rule against docs/schema.lock. v2 adds
// whole-program drift checks beyond the protocol: lock ranks (LockRank enum
// vs the DESIGN.md lock table), error codes (ErrorCode enum vs the name
// switch vs PROTOCOL.md), metrics coverage (every ServerMetrics field must
// be rendered somewhere), and CLI flag documentation (every audiond/audioctl
// --flag must appear in README.md). Runs as a ctest (tools/audlint.cc) so
// drift fails CI the same commit it happens.
//
// The checker is a pure function over file contents so the unit test can
// lint in-memory fixture trees (tests/audlint_test.cc) without touching
// disk.

#ifndef TOOLS_AUDLINT_CORE_H_
#define TOOLS_AUDLINT_CORE_H_

#include <map>
#include <string>
#include <vector>

namespace aud {
namespace audlint {

// Canonical file keys the linter expects in the input map (basenames):
//   protocol.h protocol.cc messages.h messages.cc alib.h alib.cc
//   requests.cc dispatcher.cc PROTOCOL.md schema.lock
//   lock_rank.h DESIGN.md status.h status.cc metrics.h server_state.cc
//   stats_render.cc flight_recorder.cc audiond.cc audioctl.cc audioload.cc
//   README.md
// A missing key is itself reported as a problem.
inline constexpr const char* kRequiredFiles[] = {
    "protocol.h",      "protocol.cc",        "messages.h",  "messages.cc",
    "alib.h",          "alib.cc",            "requests.cc", "dispatcher.cc",
    "PROTOCOL.md",     "schema.lock",        "lock_rank.h", "DESIGN.md",
    "status.h",        "status.cc",          "metrics.h",   "server_state.cc",
    "stats_render.cc", "flight_recorder.cc", "audiond.cc",  "audioctl.cc",
    "audioload.cc",    "README.md",
};

// One opcode as parsed from the enum in protocol.h.
struct OpcodeEntry {
  std::string name;  // without the leading 'k', e.g. "CreateLoud"
  int value = -1;
};

// Parsed `enum class Opcode` contents; count is kOpcodeCount's value.
struct OpcodeEnum {
  std::vector<OpcodeEntry> entries;
  int count = -1;
};

// Parses the Opcode enum out of protocol.h text. Parse errors are appended
// to `problems`.
OpcodeEnum ParseOpcodeEnum(const std::string& protocol_h,
                           std::vector<std::string>* problems);

// Ordered member field names of `struct <name> { ... };` in a header.
std::vector<std::string> ParseStructFields(const std::string& header,
                                           const std::string& name);

// One enumerator of a `k`-prefixed enum with explicit values, e.g. LockRank
// or ErrorCode. `name` drops the leading 'k' ("EngineRoot", "BadValue").
struct EnumEntry {
  std::string name;
  int value = 0;
};

// Parses `enum class <enum_name>` out of header text into (name, value)
// pairs, in declaration order. Enumerators without an explicit `= value`
// are reported as problems (both enums audlint cares about are
// wire/doc-visible, so implicit values are drift waiting to happen).
std::vector<EnumEntry> ParseValuedEnum(const std::string& header,
                                       const std::string& enum_name,
                                       std::vector<std::string>* problems);

// Runs every check over the given file map and returns the list of
// problems (empty = clean tree).
std::vector<std::string> LintTree(const std::map<std::string, std::string>& files);

}  // namespace audlint
}  // namespace aud

#endif  // TOOLS_AUDLINT_CORE_H_
