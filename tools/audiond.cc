// audiond: the audio server daemon. Owns the (simulated) workstation audio
// board and serves the audio protocol over TCP, the way each workstation
// runs one controlling server (section 4.1).
//
// Usage:
//   audiond [--port N] [--speakers N] [--microphones N] [--lines N]
//           [--engine-threads N] [--connection-threads N] [--speakerphone]
//           [--wav-out FILE] [--stats-interval-ms N] [--trace-sample N]
//           [--metrics-port N] [--flight-dump FILE] [--verbose]
//
// --wav-out streams everything played on speaker0 into a WAV file so the
// simulated output is audible with ordinary tooling.
// --stats-interval-ms logs a one-line stats summary (ticks, tick p99,
// requests, connections) every N milliseconds.
// --trace-sample N samples every Nth request per connection for
// request-scoped tracing (GetRequestTrace / audioctl trace --request).
// --metrics-port serves Prometheus text at GET /metrics.
// --flight-dump names the flight-recorder output file (default
// audiond.flight); SIGUSR2 writes a dump on demand, and fatal signals
// (SIGSEGV & co.) write the last snapshot before the process dies.
//
// Overload protection (DESIGN.md decision 15): --max-connections caps
// accepted clients; --limit-rps/--limit-bps rate-limit each connection
// (with --limit-policy soft answering RateLimited and hard disconnecting);
// --quota-devices/--quota-sound-bytes/--quota-plays bound what one client
// may hold. SIGTERM triggers a graceful drain bounded by --drain-ms
// (SIGINT remains the immediate stop).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/dsp/encoding.h"

#include "src/common/logging.h"
#include "src/common/wav.h"
#include "src/hw/board.h"
#include "src/server/flight_recorder.h"
#include "src/server/server.h"
#include "src/server/stats_render.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_drain = 0;
volatile std::sig_atomic_t g_dump = 0;

void HandleSignal(int) { g_stop = 1; }
// SIGTERM asks for a graceful drain (answer in-flight work, flush egress,
// hang up phone lines); SIGINT keeps the immediate hard stop.
void HandleDrainSignal(int) { g_drain = 1; }
void HandleDumpSignal(int) { g_dump = 1; }

// Minimal HTTP/1.x responder for the metrics endpoint: one request per
// connection, GET /metrics only. Reuses the server's own socket transport.
void ServeMetricsClient(aud::ByteStream* stream, aud::AudioServer* server) {
  using namespace aud;
  // Read until the header terminator (or the peer stops sending).
  std::string request;
  uint8_t buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < 16384) {
    size_t n = stream->Read(std::span<uint8_t>(buf, sizeof(buf)));
    if (n == 0) {
      break;
    }
    request.append(reinterpret_cast<const char*>(buf), n);
  }
  std::string body;
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4";
  if (request.rfind("GET /metrics", 0) == 0) {
    ServerStatsReply stats;
    {
      MutexLock lock(&server->mutex());
      stats = server->state().BuildServerStats(false);
    }
    body = RenderPrometheusText(stats);
  } else {
    status = "404 Not Found";
    body = "only GET /metrics is served\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  stream->Write(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()), response.size()));
  stream->Close();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aud;

  uint16_t port = 7800;
  uint16_t metrics_port = 0;
  BoardConfig config;
  ServerOptions options;
  std::string wav_out;
  std::string catalogue_dir;
  std::string flight_dump = "audiond.flight";
  int stats_interval_ms = 0;
  int drain_ms = 5000;  // SIGTERM graceful-drain deadline
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int fallback) {
      return i + 1 < argc ? std::atoi(argv[++i]) : fallback;
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(next_int(port));
    } else if (arg == "--speakers") {
      config.speakers = next_int(config.speakers);
    } else if (arg == "--microphones") {
      config.microphones = next_int(config.microphones);
    } else if (arg == "--lines") {
      config.phone_lines = next_int(config.phone_lines);
    } else if (arg == "--engine-threads") {
      options.engine_threads = next_int(options.engine_threads);
      if (options.engine_threads < 1) {
        options.engine_threads = 1;
      }
    } else if (arg == "--connection-threads") {
      int n = next_int(0);
      options.connection_threads = n > 0 ? static_cast<uint32_t>(n) : 0;
    } else if (arg == "--loop-poll") {
      options.loop_use_poll = true;
    } else if (arg == "--loop-edge") {
      options.loop_edge_triggered = true;
    } else if (arg == "--speakerphone") {
      config.speakerphone = true;
    } else if (arg == "--wav-out") {
      if (i + 1 < argc) {
        wav_out = argv[++i];
      }
    } else if (arg == "--catalogue") {
      if (i + 1 < argc) {
        catalogue_dir = argv[++i];
      }
    } else if (arg == "--stats-interval-ms") {
      stats_interval_ms = next_int(stats_interval_ms);
    } else if (arg == "--trace-sample") {
      int every = next_int(0);
      options.trace_sample_every = every > 0 ? static_cast<uint32_t>(every) : 0;
    } else if (arg == "--metrics-port") {
      metrics_port = static_cast<uint16_t>(next_int(0));
    } else if (arg == "--flight-dump") {
      if (i + 1 < argc) {
        flight_dump = argv[++i];
      }
    } else if (arg == "--egress-buffer-bytes") {
      int bytes = next_int(static_cast<int>(options.egress_buffer_bytes));
      if (bytes > 0) {
        options.egress_buffer_bytes = static_cast<size_t>(bytes);
      }
    } else if (arg == "--egress-overflow") {
      std::string policy = i + 1 < argc ? argv[++i] : "";
      if (policy == "drop-events") {
        options.egress_overflow = EgressOverflowPolicy::kDropEvents;
      } else if (policy == "disconnect") {
        options.egress_overflow = EgressOverflowPolicy::kDisconnect;
      } else {
        std::fprintf(stderr, "audiond: --egress-overflow wants drop-events|disconnect\n");
        return 1;
      }
    } else if (arg == "--fault") {
      // Seeded transport fault injection on every accepted connection
      // (chaos testing): "seed=7,short_read=0.3,reset_write=0.01,...".
      options.fault = ParseFaultSpec(i + 1 < argc ? argv[++i] : "");
    } else if (arg == "--max-connections") {
      int n = next_int(0);
      options.max_connections = n > 0 ? static_cast<size_t>(n) : 0;
    } else if (arg == "--limit-rps") {
      int n = next_int(0);
      options.limit_rps = n > 0 ? static_cast<uint32_t>(n) : 0;
    } else if (arg == "--limit-rps-burst") {
      int n = next_int(0);
      options.limit_rps_burst = n > 0 ? static_cast<uint32_t>(n) : 0;
    } else if (arg == "--limit-bps") {
      int n = next_int(0);
      options.limit_bps = n > 0 ? static_cast<uint64_t>(n) : 0;
    } else if (arg == "--limit-bps-burst") {
      int n = next_int(0);
      options.limit_bps_burst = n > 0 ? static_cast<uint64_t>(n) : 0;
    } else if (arg == "--limit-policy") {
      std::string policy = i + 1 < argc ? argv[++i] : "";
      if (policy == "soft") {
        options.limit_policy = RateLimitPolicy::kSoft;
      } else if (policy == "hard") {
        options.limit_policy = RateLimitPolicy::kHard;
      } else {
        std::fprintf(stderr, "audiond: --limit-policy wants soft|hard\n");
        return 1;
      }
    } else if (arg == "--quota-devices") {
      int n = next_int(0);
      options.quota_devices = n > 0 ? static_cast<uint32_t>(n) : 0;
    } else if (arg == "--quota-sound-bytes") {
      int n = next_int(0);
      options.quota_sound_bytes = n > 0 ? static_cast<uint64_t>(n) : 0;
    } else if (arg == "--quota-plays") {
      int n = next_int(0);
      options.quota_plays = n > 0 ? static_cast<uint32_t>(n) : 0;
    } else if (arg == "--drain-ms") {
      drain_ms = next_int(drain_ms);
    } else if (arg == "--verbose") {
      SetLogLevel(LogLevel::kDebug);
    } else {
      std::fprintf(stderr,
                   "usage: audiond [--port N] [--speakers N] [--microphones N] "
                   "[--lines N] [--engine-threads N] [--connection-threads N] "
                   "[--loop-poll] [--loop-edge] [--speakerphone] "
                   "[--wav-out FILE] [--catalogue DIR] [--stats-interval-ms N] "
                   "[--trace-sample N] [--metrics-port N] [--flight-dump FILE] "
                   "[--egress-buffer-bytes N] [--egress-overflow drop-events|disconnect] "
                   "[--max-connections N] [--limit-rps N] [--limit-rps-burst N] "
                   "[--limit-bps N] [--limit-bps-burst N] [--limit-policy soft|hard] "
                   "[--quota-devices N] [--quota-sound-bytes N] [--quota-plays N] "
                   "[--drain-ms N] [--fault SPEC] [--verbose]\n");
      return arg == "--help" ? 0 : 1;
    }
  }
  if (stats_interval_ms > 0 && GetLogLevel() > LogLevel::kInfo) {
    SetLogLevel(LogLevel::kInfo);  // the periodic stats line logs at Info
  }

  Board board(config);
  AudioServer server(&board, options);

  // Seed the server catalogue with WAV files from --catalogue DIR; each
  // file becomes a named sound ("greeting.wav" -> "greeting").
  if (!catalogue_dir.empty()) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(catalogue_dir, ec)) {
      if (entry.path().extension() != ".wav") {
        continue;
      }
      auto wav = ReadWavFile(entry.path().string());
      if (!wav.ok()) {
        std::fprintf(stderr, "audiond: skipping %s: %s\n", entry.path().c_str(),
                     wav.status().ToString().c_str());
        continue;
      }
      CatalogueSound sound;
      sound.format = {Encoding::kPcm16, wav.value().sample_rate_hz};
      StreamEncoder encoder(Encoding::kPcm16);
      encoder.Encode(wav.value().samples, &sound.data);
      std::string name = entry.path().stem().string();
      MutexLock lock(&server.mutex());
      server.state().catalogue()[name] = std::move(sound);
      std::printf("audiond: catalogue += \"%s\" (%zu samples @ %u Hz)\n", name.c_str(),
                  wav.value().samples.size(), wav.value().sample_rate_hz);
    }
    if (ec) {
      std::fprintf(stderr, "audiond: cannot read catalogue dir %s\n",
                   catalogue_dir.c_str());
    }
  }

  std::vector<Sample> wav_capture;
  if (!wav_out.empty()) {
    board.speakers()[0]->set_sink([&wav_capture](std::span<const Sample> block) {
      wav_capture.insert(wav_capture.end(), block.begin(), block.end());
    });
  }

  if (!server.ListenTcp(port)) {
    std::fprintf(stderr, "audiond: cannot listen on port %u\n", port);
    return 1;
  }
  server.StartRealtime();
  std::printf("audiond: serving \"netaudio\" on 127.0.0.1:%u\n", server.tcp_port());
  std::printf("audiond: board: %d speaker(s), %d microphone(s), %d line(s)%s\n",
              config.speakers, config.microphones, config.phone_lines,
              config.speakerphone ? " + speakerphone" : "");
  std::printf("audiond: engine: %d thread(s)%s\n", options.engine_threads,
              options.engine_threads > 1 ? " (island-parallel tick)" : "");
  if (server.connection_loops() > 0) {
    std::printf("audiond: connections: %zu event loop(s)%s%s\n",
                server.connection_loops(),
                options.loop_use_poll ? " [poll backend]" : "",
                options.loop_edge_triggered ? " [edge-triggered]" : "");
  } else {
    std::printf("audiond: connections: thread-per-connection\n");
  }
  if (options.trace_sample_every > 0) {
    std::printf("audiond: tracing every %uth request per connection\n",
                options.trace_sample_every);
  }

  // Flight recorder: pre-render a first snapshot, then refresh in the main
  // loop so a fatal signal always has something recent to write.
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.set_dump_path(flight_dump);
  recorder.InstallFatalHandlers();

  // Metrics endpoint: Prometheus text over a one-request-per-connection
  // HTTP responder, reusing the server's socket transport.
  SocketListener metrics_listener;
  std::thread metrics_thread;
  if (metrics_port != 0) {
    if (!metrics_listener.Listen(metrics_port)) {
      std::fprintf(stderr, "audiond: cannot listen on metrics port %u\n", metrics_port);
      return 1;
    }
    metrics_thread = std::thread([&metrics_listener, &server] {
      while (true) {
        std::unique_ptr<ByteStream> stream = metrics_listener.Accept();
        if (stream == nullptr) {
          return;  // listener closed: shutting down
        }
        ServeMetricsClient(stream.get(), &server);
      }
    });
    std::printf("audiond: metrics on http://127.0.0.1:%u/metrics\n",
                metrics_listener.port());
  }
  for (PhoneLineUnit* line : board.phone_lines()) {
    std::printf("audiond: line %s is %s\n", line->name().c_str(),
                line->line()->number().c_str());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGUSR2, HandleDumpSignal);
  auto next_stats = std::chrono::steady_clock::now();
  auto next_snapshot = std::chrono::steady_clock::now();
  while (g_stop == 0 && g_drain == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // Refresh the flight-recorder snapshot about once a second (and right
    // before an on-demand dump), so a crash dump is at most ~1 s stale.
    if (g_dump != 0 || std::chrono::steady_clock::now() >= next_snapshot) {
      next_snapshot = std::chrono::steady_clock::now() + std::chrono::seconds(1);
      ServerStatsReply stats;
      {
        MutexLock lock(&server.mutex());
        stats = server.state().BuildServerStats(false);
      }
      std::vector<TraceEventWire> trace;
      for (const obs::TraceEvent& e : obs::TraceRegistry::Instance().Snapshot(0)) {
        TraceEventWire wire;
        wire.t_us = e.t_us;
        wire.seq = e.seq;
        wire.tid = e.tid;
        wire.reason = static_cast<uint16_t>(e.reason);
        wire.arg0 = e.arg0;
        wire.arg1 = e.arg1;
        wire.trace = e.trace;
        wire.parent = e.parent;
        wire.dur_us = e.dur_us;
        trace.push_back(wire);
      }
      recorder.SetSnapshot(RenderFlightDumpText(g_dump != 0 ? "SIGUSR2" : "periodic",
                                                stats, trace, RecentLogLines()));
      if (g_dump != 0) {
        g_dump = 0;
        if (recorder.WriteDump()) {
          std::printf("audiond: flight dump written to %s\n",
                      recorder.dump_path().c_str());
          std::fflush(stdout);
        }
      }
    }
    if (stats_interval_ms > 0 && std::chrono::steady_clock::now() >= next_stats) {
      next_stats = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(stats_interval_ms);
      ServerStatsReply stats;
      {
        MutexLock lock(&server.mutex());
        stats = server.state().BuildServerStats(false);
      }
      char line[512];
      std::snprintf(line, sizeof(line),
                    "stats: ticks=%llu overruns=%llu tick_p99=%.0fus jitter_p99=%.0fus "
                    "req=%llu err=%llu conns=%lld bytes_in=%llu bytes_out=%llu "
                    "ev_dropped=%llu egress_cuts=%llu epochs=%llu shard_cont=%llu "
                    "commit_p99=%.0fus lockwait_p99=%.0fus "
                    "loops=%u fds=%lld loopdisp_p99=%.0fus "
                    "adm_rej=%llu ratelim=%llu rl_cuts=%llu quota_den=%llu",
                    static_cast<unsigned long long>(stats.ticks_run),
                    static_cast<unsigned long long>(stats.tick_overruns),
                    stats.tick_us.empty() ? 0.0 : stats.tick_us.Percentile(99),
                    stats.tick_jitter_us.empty() ? 0.0 : stats.tick_jitter_us.Percentile(99),
                    static_cast<unsigned long long>(stats.requests_total),
                    static_cast<unsigned long long>(stats.request_errors_total),
                    static_cast<long long>(stats.connections_open),
                    static_cast<unsigned long long>(stats.bytes_in),
                    static_cast<unsigned long long>(stats.bytes_out),
                    static_cast<unsigned long long>(stats.events_dropped),
                    static_cast<unsigned long long>(stats.egress_disconnects),
                    static_cast<unsigned long long>(stats.epoch_commits),
                    static_cast<unsigned long long>(stats.dispatch_shard_contention),
                    stats.epoch_commit_us.empty() ? 0.0 : stats.epoch_commit_us.Percentile(99),
                    stats.lock_wait_us.empty() ? 0.0 : stats.lock_wait_us.Percentile(99),
                    stats.loops, static_cast<long long>(stats.fds_watched),
                    stats.loop_dispatch_us.empty() ? 0.0
                                                   : stats.loop_dispatch_us.Percentile(99),
                    static_cast<unsigned long long>(stats.admission_rejects),
                    static_cast<unsigned long long>(stats.rate_limited),
                    static_cast<unsigned long long>(stats.rate_limit_disconnects),
                    static_cast<unsigned long long>(stats.quota_denials));
      LogMessage(LogLevel::kInfo, line);
    }
  }

  if (g_drain != 0) {
    // SIGTERM: graceful drain — stop accepting, answer in-flight requests,
    // flush egress under the deadline, hang up any off-hook lines.
    std::printf("\naudiond: draining (deadline %d ms)\n", drain_ms);
    std::fflush(stdout);
    const bool flushed = server.Drain(std::chrono::milliseconds(drain_ms));
    std::printf("audiond: drain %s\n",
                flushed ? "complete" : "deadline expired (forced closes)");
  } else {
    std::printf("\naudiond: shutting down\n");
  }
  if (metrics_thread.joinable()) {
    metrics_listener.Close();
    metrics_thread.join();
  }
  server.Shutdown();
  if (g_drain != 0) {
    // Final flight-recorder dump: the drain's closing stats, written where
    // a post-mortem would look first.
    ServerStatsReply stats;
    {
      MutexLock lock(&server.mutex());
      stats = server.state().BuildServerStats(false);
    }
    recorder.SetSnapshot(
        RenderFlightDumpText("SIGTERM drain", stats, {}, RecentLogLines()));
    if (recorder.WriteDump()) {
      std::printf("audiond: flight dump written to %s\n",
                  recorder.dump_path().c_str());
    }
  }
  if (!wav_out.empty() && !wav_capture.empty()) {
    if (WriteWavFile(wav_out, wav_capture, board.sample_rate_hz())) {
      std::printf("audiond: wrote %zu samples to %s\n", wav_capture.size(),
                  wav_out.c_str());
    }
  }
  return 0;
}
