// E11 -- active-stack operations (paper section 5.4): mapping puts a LOUD
// on the active stack; the server "activates as many LOUDs as it can at
// one time" walking top-down. Preemption must be cheap enough to happen
// on every map/unmap/restack.
//
// Measures: map->active latency (requests), RecomputeActivation cost vs
// stack depth, and preemption/restore round trips on the exclusive phone
// line (with server-paused queues).

#include <chrono>

#include "bench/bench_util.h"

namespace aud {
namespace {

int Run() {
  PrintHeader("E11: active stack and preemption",
              "activation/deactivation is the fundamental scheduling mechanism; it "
              "happens dynamically with device state restored (section 5.4)");

  // Part 1: activation recompute cost vs stack depth.
  std::printf("%-14s %-22s\n", "stack depth", "map+activate cost");
  for (int depth : {1, 8, 32, 128}) {
    BenchWorld world;
    AudioConnection& client = world.client();
    std::vector<ResourceId> louds;
    for (int i = 0; i < depth; ++i) {
      ResourceId loud = client.CreateLoud(kNoResource, {});
      client.CreateDevice(loud, DeviceClass::kOutput, {});
      client.CreateDevice(loud, DeviceClass::kPlayer, {});
      louds.push_back(loud);
    }
    (void)client.Sync();
    // Map all (each map walks the whole stack).
    auto t0 = std::chrono::steady_clock::now();
    for (ResourceId loud : louds) {
      client.MapLoud(loud);
    }
    (void)client.Sync();
    auto t1 = std::chrono::steady_clock::now();
    double per_map_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / depth;
    std::printf("%-14d %18.1f us/map\n", depth, per_map_us);
  }

  // Part 2: preemption/restore churn on the exclusive telephone.
  {
    BenchWorld world;
    AudioConnection& client = world.client();
    AudioToolkit& toolkit = world.toolkit();

    ResourceId victim = client.CreateLoud(kNoResource, {});
    ResourceId phone1 = client.CreateDevice(victim, DeviceClass::kTelephone, {});
    ResourceId player = client.CreateDevice(victim, DeviceClass::kPlayer, {});
    client.CreateWire(player, 0, phone1, 0);
    client.SelectEvents(victim, kQueueEvents | kLifecycleEvents);
    client.MapLoud(victim);

    std::vector<Sample> pcm(8000 * 30, 50);
    ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
    client.Enqueue(victim, {PlayCommand(player, sound, 1)});
    client.StartQueue(victim);

    ResourceId thief = client.CreateLoud(kNoResource, {});
    client.CreateDevice(thief, DeviceClass::kTelephone, {});
    (void)client.Sync();

    constexpr int kCycles = 200;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kCycles; ++i) {
      client.MapLoud(thief);    // victim deactivates, queue server-pauses
      client.UnmapLoud(thief);  // victim reactivates, queue auto-resumes
    }
    (void)client.Sync();
    auto t1 = std::chrono::steady_clock::now();
    double per_cycle_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kCycles;

    // After all that churn the victim must be active with a running queue.
    auto state = client.QueryLoud(victim);
    auto queue = client.QueryQueue(victim);
    bool healthy = state.ok() && state.value().active == 1 && queue.ok() &&
                   queue.value().state == QueueState::kStarted;
    // And playback still progresses.
    world.server().StepFrames(1600);
    bool playing = toolkit.WaitFor([](const EventMessage& e) {
                     return e.type == EventType::kQueuePaused ||
                            e.type == EventType::kQueueResumed;
                   },
                   10) == std::nullopt;  // no stray transitions pending
    (void)playing;

    std::printf("preempt+restore cycle: %.1f us (%d cycles)\n", per_cycle_us, kCycles);
    std::printf("victim after churn: active=%d queue=%s\n",
                state.ok() ? state.value().active : -1,
                queue.ok() ? std::string(QueueStateName(queue.value().state)).c_str()
                           : "?");
    std::printf("verdict (state restored exactly after preemption): %s\n",
                healthy ? "MET" : "MISSED");
    return healthy ? 0 : 1;
  }
}

}  // namespace
}  // namespace aud

int main() { return aud::Run(); }
