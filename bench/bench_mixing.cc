// E4 -- multi-client mixing scalability (paper sections 2 and 6.1):
// "multiplexing of output requests from a number of applications to a
// single speaker, to be heard simultaneously" with transparently inserted
// mixers.
//
// N clients each play a continuous stream to the one speaker; we measure
// the engine's cost per tick (and thus the real-time headroom) as N grows,
// and verify the mix is sample-correct.

#include <chrono>

#include "bench/bench_util.h"

namespace aud {
namespace {

struct MixClient {
  std::unique_ptr<AudioConnection> conn;
  std::unique_ptr<AudioToolkit> toolkit;
  AudioToolkit::PlaybackChain chain;
};

int Run() {
  PrintHeader("E4: multi-client mixing to one speaker",
              "multiple applications play simultaneously to a single speaker "
              "(server inserts mixers transparently)");

  std::printf("%-10s %-14s %-16s %-18s %-10s\n", "clients", "tick cost", "realtime",
              "mix correctness", "verdict");

  bool all_ok = true;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    BenchWorld world;
    world.board().speakers()[0]->set_capture_output(true);

    std::vector<MixClient> clients(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      MixClient& c = clients[static_cast<size_t>(i)];
      c.conn = world.Connect("mix-client-" + std::to_string(i));
      c.toolkit = std::make_unique<AudioToolkit>(c.conn.get());
      c.chain = c.toolkit->BuildPlaybackChain();
      // Each client contributes a constant +10 for 2 s of audio.
      std::vector<Sample> pcm(16000, 10);
      ResourceId sound = c.toolkit->UploadSound(pcm, {Encoding::kPcm16, 8000});
      c.conn->Enqueue(c.chain.loud, {PlayCommand(c.chain.player, sound, 1)});
      c.conn->StartQueue(c.chain.loud);
    }
    for (auto& c : clients) {
      c.conn->Sync();
    }

    // Advance 2 s of audio in 20 ms ticks, timing the engine.
    constexpr int kTicks = 100;
    auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < kTicks; ++t) {
      world.server().StepFrames(160);
    }
    auto t1 = std::chrono::steady_clock::now();
    double tick_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kTicks;
    double realtime_factor = 20000.0 / tick_us;  // 20 ms of audio per tick

    // Verify the plateau mix value equals n * 10.
    const auto& played = world.board().speakers()[0]->played();
    int64_t plateau = 0;
    for (Sample s : played) {
      if (s == n * 10) {
        ++plateau;
      }
    }
    bool correct = plateau > 8000;  // at least 1 s of perfectly mixed audio
    all_ok = all_ok && correct && realtime_factor > 1.0;
    std::printf("%-10d %10.1f us %13.0fx %11lld/16000 %-10s\n", n, tick_us,
                realtime_factor, static_cast<long long>(plateau),
                correct ? "ok" : "WRONG");
  }

  std::printf("paper expectation (simultaneous mixed output, real-time capable): %s\n",
              all_ok ? "MET" : "MISSED");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main() { return aud::Run(); }
