// E4 -- multi-client mixing scalability (paper sections 2 and 6.1):
// "multiplexing of output requests from a number of applications to a
// single speaker, to be heard simultaneously" with transparently inserted
// mixers.
//
// N clients each play a continuous stream to the one speaker; we measure
// the engine's cost per tick (and thus the real-time headroom) as N grows,
// and verify the mix is sample-correct.

#include <chrono>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/dsp/gain.h"
#include "src/dsp/kernels.h"

namespace aud {
namespace {

struct MixClient {
  std::unique_ptr<AudioConnection> conn;
  std::unique_ptr<AudioToolkit> toolkit;
  AudioToolkit::PlaybackChain chain;
};

// Times one kernel-table op over a 160-frame engine block; returns ns/op.
template <typename Fn>
double TimeKernel(int iters, Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    fn();
  }
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

// DSP kernel microbenchmarks: the dispatched variant vs the scalar
// reference on the same binary (both are bit-identical; this measures the
// vectorization win in isolation).
void RunKernelMicro(BenchJsonWriter* json, bool quick) {
  const int iters = quick ? 2000 : 50000;
  constexpr size_t kFrames = 160;
  std::vector<Sample> pcm(kFrames);
  std::vector<int32_t> acc(kFrames, 0), acc2(kFrames, 1);
  std::vector<uint8_t> bytes(kFrames);
  for (size_t i = 0; i < kFrames; ++i) {
    pcm[i] = static_cast<Sample>((i * 997) % 65536 - 32768);
    bytes[i] = static_cast<uint8_t>(i * 31);
  }

  std::printf("\nDSP kernels (160-frame block, ns/op, dispatched=%s):\n",
              Kernels().name);
  struct Row {
    const char* name;
    void (*run)(const KernelOps&, std::vector<Sample>&, std::vector<int32_t>&,
                std::vector<int32_t>&, std::vector<uint8_t>&);
  };
  const Row rows[] = {
      {"mix_accumulate", [](const KernelOps& k, std::vector<Sample>& p, std::vector<int32_t>& a,
                            std::vector<int32_t>&, std::vector<uint8_t>&) {
         k.mix_accumulate(a.data(), p.data(), p.size(), kUnityGain);
       }},
      {"mix_add", [](const KernelOps& k, std::vector<Sample>&, std::vector<int32_t>& a,
                     std::vector<int32_t>& b, std::vector<uint8_t>&) {
         k.mix_add(a.data(), b.data(), a.size());
       }},
      {"mix_resolve", [](const KernelOps& k, std::vector<Sample>& p, std::vector<int32_t>& a,
                         std::vector<int32_t>&, std::vector<uint8_t>&) {
         k.mix_resolve(p.data(), a.data(), p.size());
       }},
      {"mulaw_encode", [](const KernelOps& k, std::vector<Sample>& p, std::vector<int32_t>&,
                          std::vector<int32_t>&, std::vector<uint8_t>& by) {
         k.mulaw_encode(by.data(), p.data(), by.size());
       }},
      {"mulaw_decode", [](const KernelOps& k, std::vector<Sample>& p, std::vector<int32_t>&,
                          std::vector<int32_t>&, std::vector<uint8_t>& by) {
         k.mulaw_decode(p.data(), by.data(), by.size());
       }},
  };
  for (const Row& row : rows) {
    double scalar_ns = TimeKernel(iters, [&] {
      row.run(ScalarKernels(), pcm, acc, acc2, bytes);
    });
    double dispatched_ns = TimeKernel(iters, [&] {
      row.run(Kernels(), pcm, acc, acc2, bytes);
    });
    std::printf("  %-16s scalar %8.1f ns   dispatched %8.1f ns  (%.2fx)\n",
                row.name, scalar_ns, dispatched_ns,
                dispatched_ns > 0 ? scalar_ns / dispatched_ns : 0.0);
    if (json != nullptr) {
      json->Add(std::string("kernel_") + row.name + "/scalar", iters, scalar_ns);
      json->Add(std::string("kernel_") + row.name + "/dispatched", iters, dispatched_ns);
    }
  }
}

// Repeated catalogue play with the decoded-PCM cache on vs off. Returns
// false when the cache-on run fails to clear the required speedup.
bool RunCatalogPlay(BenchJsonWriter* json, bool quick) {
  const int clients = quick ? 4 : 8;
  const int plays_each = quick ? 2 : 5;
  std::printf("\nRepeated catalogue play (%d players x %d plays of the ADPCM/16k "
              "\"prompt\"):\n", clients, plays_each);

  CatalogPlayResult off = RunCatalogPlayWorkload(0, clients, plays_each);
  CatalogPlayResult on =
      RunCatalogPlayWorkload(8 * 1024 * 1024, clients, plays_each);
  double speedup = on.wall_ns_per_play > 0 ? off.wall_ns_per_play / on.wall_ns_per_play : 0.0;
  std::printf("  cache off: %10.0f ns/play   tick p50 %6.1f us  p99 %6.1f us\n",
              off.wall_ns_per_play, off.tick_p50_us, off.tick_p99_us);
  std::printf("  cache on : %10.0f ns/play   tick p50 %6.1f us  p99 %6.1f us  "
              "(%llu hits / %llu misses)\n",
              on.wall_ns_per_play, on.tick_p50_us, on.tick_p99_us,
              static_cast<unsigned long long>(on.cache_hits),
              static_cast<unsigned long long>(on.cache_misses));
  std::printf("  speedup  : %.2fx (target >= 1.5x)\n", speedup);
  if (json != nullptr) {
    // The workload size is part of the name so benchdiff never compares a
    // --quick run against a full-run baseline (per-play cost depends on
    // the hit/miss mix, which depends on plays_each).
    const std::string prefix = "catalog_play/" + std::to_string(clients) + "x" +
                               std::to_string(plays_each) + "/";
    auto& e_off = json->Add(prefix + "cache_off", off.plays, off.wall_ns_per_play);
    e_off.extra.emplace_back("tick_p50_us", off.tick_p50_us);
    e_off.extra.emplace_back("tick_p99_us", off.tick_p99_us);
    auto& e_on = json->Add(prefix + "cache_on", on.plays, on.wall_ns_per_play);
    e_on.extra.emplace_back("tick_p50_us", on.tick_p50_us);
    e_on.extra.emplace_back("tick_p99_us", on.tick_p99_us);
    e_on.extra.emplace_back("speedup_vs_cache_off", speedup);
  }
  // Quick (CI smoke) runs are too small/noisy to gate on the ratio; the
  // full run enforces the 1.5x acceptance bar.
  return off.ok && on.ok && (quick || speedup >= 1.5);
}

int Run(const BenchFlags& flags) {
  PrintHeader("E4: multi-client mixing to one speaker",
              "multiple applications play simultaneously to a single speaker "
              "(server inserts mixers transparently)");

  BenchJsonWriter json("mixing");

  std::printf("%-10s %-14s %-16s %-18s %-10s\n", "clients", "tick cost", "realtime",
              "mix correctness", "verdict");

  bool all_ok = true;
  std::vector<int> counts = flags.quick ? std::vector<int>{1, 4, 8}
                                        : std::vector<int>{1, 2, 4, 8, 16, 32};
  for (int n : counts) {
    BenchWorld world;
    world.board().speakers()[0]->set_capture_output(true);

    std::vector<MixClient> clients(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      MixClient& c = clients[static_cast<size_t>(i)];
      c.conn = world.Connect("mix-client-" + std::to_string(i));
      c.toolkit = std::make_unique<AudioToolkit>(c.conn.get());
      c.chain = c.toolkit->BuildPlaybackChain();
      // Each client contributes a constant +10 for 2 s of audio.
      std::vector<Sample> pcm(16000, 10);
      ResourceId sound = c.toolkit->UploadSound(pcm, {Encoding::kPcm16, 8000});
      c.conn->Enqueue(c.chain.loud, {PlayCommand(c.chain.player, sound, 1)});
      c.conn->StartQueue(c.chain.loud);
    }
    for (auto& c : clients) {
      (void)c.conn->Sync();
    }

    // Advance 2 s of audio in 20 ms ticks, timing the engine.
    constexpr int kTicks = 100;
    auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < kTicks; ++t) {
      world.server().StepFrames(160);
    }
    auto t1 = std::chrono::steady_clock::now();
    double tick_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kTicks;
    double realtime_factor = 20000.0 / tick_us;  // 20 ms of audio per tick

    // Verify the plateau mix value equals n * 10.
    const auto& played = world.board().speakers()[0]->played();
    int64_t plateau = 0;
    for (Sample s : played) {
      if (s == n * 10) {
        ++plateau;
      }
    }
    bool correct = plateau > 8000;  // at least 1 s of perfectly mixed audio
    all_ok = all_ok && correct && realtime_factor > 1.0;
    std::printf("%-10d %10.1f us %13.0fx %11lld/16000 %-10s\n", n, tick_us,
                realtime_factor, static_cast<long long>(plateau),
                correct ? "ok" : "WRONG");
    json.Add("mix_tick/" + std::to_string(n) + "_clients", kTicks,
             tick_us * 1000.0);
  }

  RunKernelMicro(&json, flags.quick);
  bool cache_ok = RunCatalogPlay(&json, flags.quick);
  all_ok = all_ok && cache_ok;

  if (!flags.json_out.empty() && !json.WriteTo(flags.json_out)) {
    std::fprintf(stderr, "failed to write %s\n", flags.json_out.c_str());
    all_ok = false;
  }

  std::printf("paper expectation (simultaneous mixed output, real-time capable): %s\n",
              all_ok ? "MET" : "MISSED");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main(int argc, char** argv) {
  return aud::Run(aud::BenchFlags::Parse(argc, argv));
}
