// Ablation: engine period size. The period is the server's fundamental
// latency/efficiency knob — the paper's start-latency goal (E1) is bounded
// below by it, while per-tick overhead is amortized across it. Sweeps the
// period and reports per-tick cost, per-second-of-audio cost, and the
// implied worst-case command-start latency.

#include <chrono>

#include "bench/bench_util.h"

namespace aud {
namespace {

int Run() {
  PrintHeader("Ablation: engine period size",
              "playback start latency is bounded by the period; tick overhead is "
              "amortized across it (DESIGN.md decision 2)");

  std::printf("%-14s %-14s %-18s %-22s\n", "period", "tick cost", "cost/audio-sec",
              "worst-case start lat.");
  bool all_realtime = true;
  for (size_t period : {40u, 80u, 160u, 320u, 800u}) {
    BenchWorld world(BoardConfig{}, ServerOptions{.name = "netaudio", .period_frames = period});
    AudioToolkit& toolkit = world.toolkit();
    AudioConnection& client = world.client();
    toolkit.set_time_pump([&] { world.server().StepFrames(static_cast<int64_t>(period)); });

    // 8 active chains playing long sounds.
    std::vector<AudioToolkit::PlaybackChain> chains;
    std::vector<Sample> pcm(8000 * 30, 100);
    for (int i = 0; i < 8; ++i) {
      ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
      auto chain = toolkit.BuildPlaybackChain();
      client.Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
      client.StartQueue(chain.loud);
      chains.push_back(chain);
    }
    (void)client.Sync();
    world.server().StepFrames(static_cast<int64_t>(period));

    // Time 10 s of audio worth of ticks.
    size_t ticks = 10 * 8000 / period;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t t = 0; t < ticks; ++t) {
      world.server().StepFrames(static_cast<int64_t>(period));
    }
    auto t1 = std::chrono::steady_clock::now();
    double total_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    double tick_us = total_us / static_cast<double>(ticks);
    double per_audio_second_us = total_us / 10.0;
    double period_ms = static_cast<double>(period) / 8.0;
    all_realtime = all_realtime && per_audio_second_us < 1e6;

    std::printf("%5.1f ms %10.1f us %13.0f us/s %15.1f ms\n", period_ms, tick_us,
                per_audio_second_us, period_ms);
  }
  std::printf("observation: smaller periods buy latency with more ticks; all stay\n"
              "far above real time, so the 20 ms default favors latency (E1).\n");
  std::printf("verdict (every period real-time capable with 8 streams): %s\n",
              all_realtime ? "MET" : "MISSED");
  return all_realtime ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main() { return aud::Run(); }
