// E2 -- continuous playback cost (paper section 6): "support continuous
// playback without gaps, using well under 10% of the CPU."
//
// The engine runs in real time for several seconds of telephone-quality
// playback; we measure process CPU time over the interval and verify the
// codec recorded no underruns. A second phase replays the answering-machine
// workload (repeated catalogue prompts) with the decoded-PCM cache on and
// off, comparing per-play CPU cost.

#include <chrono>
#include <thread>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace aud {
namespace {

// Repeated catalogue play, CPU-cost angle: the realtime phase above shows
// headroom; this shows where the cycles went. Returns false when the cache
// fails to clear the required speedup.
bool RunCatalogPlayCpu(BenchJsonWriter* json, bool quick) {
  const int clients = quick ? 4 : 8;
  const int plays_each = quick ? 2 : 5;
  std::printf("\nRepeated catalogue play, CPU per play (%d players x %d plays):\n",
              clients, plays_each);

  CatalogPlayResult off = RunCatalogPlayWorkload(0, clients, plays_each);
  CatalogPlayResult on =
      RunCatalogPlayWorkload(8 * 1024 * 1024, clients, plays_each);
  double speedup =
      on.cpu_ns_per_play > 0 ? off.cpu_ns_per_play / on.cpu_ns_per_play : 0.0;
  std::printf("  cache off: %10.0f CPU ns/play\n", off.cpu_ns_per_play);
  std::printf("  cache on : %10.0f CPU ns/play  (%llu hits / %llu misses)\n",
              on.cpu_ns_per_play, static_cast<unsigned long long>(on.cache_hits),
              static_cast<unsigned long long>(on.cache_misses));
  std::printf("  CPU speedup: %.2fx (target >= 1.5x)\n", speedup);
  if (json != nullptr) {
    // Workload size in the name keeps --quick runs from diffing against
    // full-run baselines (the hit/miss mix differs).
    const std::string prefix = "catalog_play_cpu/" + std::to_string(clients) +
                               "x" + std::to_string(plays_each) + "/";
    json->Add(prefix + "cache_off", off.plays, off.cpu_ns_per_play);
    auto& e_on = json->Add(prefix + "cache_on", on.plays, on.cpu_ns_per_play);
    e_on.extra.emplace_back("speedup_vs_cache_off", speedup);
  }
  // Quick (CI smoke) runs are too small/noisy to gate on the ratio; the
  // full run enforces the 1.5x acceptance bar.
  return off.ok && on.ok && (quick || speedup >= 1.5);
}

int Run(const BenchFlags& flags) {
  PrintHeader("E2: continuous playback CPU usage",
              "continuous playback without gaps, using well under 10% of the CPU");

  BenchJsonWriter json("playback_cpu");
  BenchWorld world;
  AudioConnection& client = world.client();
  AudioToolkit& toolkit = world.toolkit();

  // Real-time playback, fed by a client streaming data ahead.
  const int kSeconds = flags.quick ? 2 : 6;
  std::vector<Sample> pcm;
  SineOscillator osc(440.0, 8000, 0.4);
  osc.Generate(8000ull * static_cast<uint64_t>(kSeconds), &pcm);
  ResourceId sound = toolkit.UploadSound(pcm, kTelephoneFormat);
  auto chain = toolkit.BuildPlaybackChain();
  (void)client.Sync();

  world.server().StartRealtime();
  toolkit.set_time_pump({});
  double cpu0 = ProcessCpuSeconds();
  auto wall0 = std::chrono::steady_clock::now();

  client.Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client.StartQueue(chain.loud);
  bool completed = toolkit.WaitCommandDone(1, (kSeconds + 5) * 1000);

  double cpu1 = ProcessCpuSeconds();
  auto wall1 = std::chrono::steady_clock::now();
  world.server().StopRealtime();

  double wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  double cpu_pct = 100.0 * (cpu1 - cpu0) / wall_s;
  int64_t underrun_frames = world.board().speakers()[0]->codec().underrun_frames();
  int64_t gaps = world.board().speakers()[0]->codec().underrun_events();

  std::printf("playback: %d s of 8 kHz mu-law (8000 bytes/sec stream)\n", kSeconds);
  std::printf("completed: %s, wall %.2f s\n", completed ? "yes" : "NO", wall_s);
  std::printf("%-32s %10.2f %%\n", "process CPU during playback", cpu_pct);
  std::printf("%-32s %10lld frames in %lld gap(s)\n", "codec underruns",
              static_cast<long long>(underrun_frames), static_cast<long long>(gaps));
  bool pass = completed && cpu_pct < 10.0 && gaps == 0;
  auto& realtime_entry =
      json.Add("realtime_playback/cpu_pct", kSeconds, cpu_pct);
  realtime_entry.extra.emplace_back("underrun_gaps", static_cast<double>(gaps));

  bool cache_ok = RunCatalogPlayCpu(&json, flags.quick);
  pass = pass && cache_ok;

  if (!flags.json_out.empty() && !json.WriteTo(flags.json_out)) {
    std::fprintf(stderr, "failed to write %s\n", flags.json_out.c_str());
    pass = false;
  }

  std::printf("paper goals (<10%% CPU, zero gaps): %s\n", pass ? "MET" : "MISSED");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main(int argc, char** argv) {
  return aud::Run(aud::BenchFlags::Parse(argc, argv));
}
