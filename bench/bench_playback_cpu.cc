// E2 -- continuous playback cost (paper section 6): "support continuous
// playback without gaps, using well under 10% of the CPU."
//
// The engine runs in real time for several seconds of telephone-quality
// playback; we measure process CPU time over the interval and verify the
// codec recorded no underruns.

#include <sys/resource.h>

#include <chrono>
#include <thread>

#include "bench/bench_util.h"

namespace aud {
namespace {

double ProcessCpuSeconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  auto to_s = [](const timeval& tv) { return tv.tv_sec + tv.tv_usec / 1e6; };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
}

int Run() {
  PrintHeader("E2: continuous playback CPU usage",
              "continuous playback without gaps, using well under 10% of the CPU");

  BenchWorld world;
  AudioConnection& client = world.client();
  AudioToolkit& toolkit = world.toolkit();

  // 6 s of real-time playback, fed by a client streaming data ahead.
  constexpr int kSeconds = 6;
  std::vector<Sample> pcm;
  SineOscillator osc(440.0, 8000, 0.4);
  osc.Generate(8000ull * kSeconds, &pcm);
  ResourceId sound = toolkit.UploadSound(pcm, kTelephoneFormat);
  auto chain = toolkit.BuildPlaybackChain();
  client.Sync();

  world.server().StartRealtime();
  toolkit.set_time_pump({});
  double cpu0 = ProcessCpuSeconds();
  auto wall0 = std::chrono::steady_clock::now();

  client.Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client.StartQueue(chain.loud);
  bool completed = toolkit.WaitCommandDone(1, (kSeconds + 5) * 1000);

  double cpu1 = ProcessCpuSeconds();
  auto wall1 = std::chrono::steady_clock::now();
  world.server().StopRealtime();

  double wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  double cpu_pct = 100.0 * (cpu1 - cpu0) / wall_s;
  int64_t underrun_frames = world.board().speakers()[0]->codec().underrun_frames();
  int64_t gaps = world.board().speakers()[0]->codec().underrun_events();

  std::printf("playback: %d s of 8 kHz mu-law (8000 bytes/sec stream)\n", kSeconds);
  std::printf("completed: %s, wall %.2f s\n", completed ? "yes" : "NO", wall_s);
  std::printf("%-32s %10.2f %%\n", "process CPU during playback", cpu_pct);
  std::printf("%-32s %10lld frames in %lld gap(s)\n", "codec underruns",
              static_cast<long long>(underrun_frames), static_cast<long long>(gaps));
  bool pass = completed && cpu_pct < 10.0 && gaps == 0;
  std::printf("paper goals (<10%% CPU, zero gaps): %s\n", pass ? "MET" : "MISSED");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main() { return aud::Run(); }
