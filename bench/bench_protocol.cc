// E7 -- protocol performance (paper section 4.1): "requests are
// asynchronous, so that an application can send requests without waiting
// for the completion of previous requests" -- the X-style argument that an
// asynchronous protocol amortizes round trips.
//
// google-benchmark over the wire path: asynchronous request throughput,
// blocking round-trip latency, pipelined-vs-blocking speedup, and sound
// data upload bandwidth -- over the in-memory pipe and over TCP.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/transport/socket_stream.h"

namespace aud {
namespace {

std::unique_ptr<AudioConnection> TcpClient(BenchWorld& world) {
  if (!world.server().ListenTcp(0)) {
    return nullptr;
  }
  return AudioConnection::OpenTcp("127.0.0.1", world.server().tcp_port(), "tcp-bench");
}

// Asynchronous no-op flood: requests/second the server dispatches.
void BM_AsyncRequestThroughput(benchmark::State& state) {
  BenchWorld world;
  bool tcp = state.range(0) != 0;
  std::unique_ptr<AudioConnection> tcp_client;
  AudioConnection* client = &world.client();
  if (tcp) {
    tcp_client = TcpClient(world);
    if (tcp_client == nullptr) {
      state.SkipWithError("tcp setup failed");
      return;
    }
    client = tcp_client.get();
  }
  constexpr int kBatch = 1000;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      client->SendRequest(Opcode::kNoOp, {});
    }
    (void)client->Sync();  // barrier: all processed
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel(tcp ? "tcp" : "pipe");
}
BENCHMARK(BM_AsyncRequestThroughput)->Arg(0)->Arg(1);

// Blocking round trip: one Sync per iteration.
void BM_RoundTripLatency(benchmark::State& state) {
  BenchWorld world;
  bool tcp = state.range(0) != 0;
  std::unique_ptr<AudioConnection> tcp_client;
  AudioConnection* client = &world.client();
  if (tcp) {
    tcp_client = TcpClient(world);
    if (tcp_client == nullptr) {
      state.SkipWithError("tcp setup failed");
      return;
    }
    client = tcp_client.get();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->Sync());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(tcp ? "tcp" : "pipe");
}
BENCHMARK(BM_RoundTripLatency)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// The asynchronous-protocol payoff: N object creations pipelined (fire
// then one Sync) vs N blocking query round trips.
void BM_PipelinedCreates(benchmark::State& state) {
  BenchWorld world;
  AudioConnection& client = world.client();
  constexpr int kBatch = 200;
  for (auto _ : state) {
    ResourceId loud = client.CreateLoud(kNoResource, {});
    for (int i = 0; i < kBatch; ++i) {
      client.CreateDevice(loud, DeviceClass::kPlayer, {});
    }
    (void)client.Sync();
    state.PauseTiming();
    client.DestroyLoud(loud);
    (void)client.Sync();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("async pipeline");
}
BENCHMARK(BM_PipelinedCreates);

void BM_BlockingQueries(benchmark::State& state) {
  BenchWorld world;
  AudioConnection& client = world.client();
  ResourceId loud = client.CreateLoud(kNoResource, {});
  ResourceId device = client.CreateDevice(loud, DeviceClass::kPlayer, {});
  (void)client.Sync();
  constexpr int kBatch = 200;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      benchmark::DoNotOptimize(client.QueryDevice(device));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel("blocking round trips");
}
BENCHMARK(BM_BlockingQueries);

// Sound-data upload bandwidth (client-side supply path, section 6.2).
void BM_SoundUpload(benchmark::State& state) {
  BenchWorld world;
  AudioConnection& client = world.client();
  size_t chunk = static_cast<size_t>(state.range(0));
  ResourceId sound = client.CreateSound({Encoding::kPcm16, 8000});
  (void)client.Sync();
  std::vector<uint8_t> data(chunk, 0x5A);
  uint64_t offset = 0;
  for (auto _ : state) {
    client.WriteSound(sound, 0, data);  // overwrite in place: bounded memory
    (void)client.Sync();
    offset += chunk;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk));
}
BENCHMARK(BM_SoundUpload)->Arg(1024)->Arg(16384)->Arg(262144);

}  // namespace
}  // namespace aud

BENCHMARK_MAIN();
