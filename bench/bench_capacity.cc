// E11 -- connection-plane capacity (the C10k experiment behind DESIGN.md
// decision 14): how many concurrent clients can one server hold at its
// latency SLOs on each connection plane?
//
// Each ladder step starts a fresh realtime server (legacy thread-per-
// connection vs a 4-thread event-loop pool) and connects C raw-protocol
// clients from a fixed worker pool. The population is the classic C10k mix:
// every client creates and maps a loud, subscribes to events, and keeps a
// trickle of kSync round-trips flowing through the measure window, while
// every kPlayerStride-th client additionally builds a full playback chain
// with 20 ms sync marks and runs its queue. Engine mixing therefore scales
// with C / kPlayerStride while the connection plane carries all C sockets —
// the step measures the connection plane, not the mixer. A step passes when
// every client connected and survived (no egress-overflow disconnects), the
// engine held its period (tick p99 <= one 20 ms period), dispatch p99
// stayed under a period, and the per-tick sync-mark fan-out actually
// reached the players. Capacity = the highest passing step; the ladder
// stops at the first failure.
//
// The per-connection overhead is the discriminator: the legacy plane pays
// two dedicated threads per held connection plus a writer wake per
// subscribed player per tick, so the scheduler drowns first; the loop plane
// holds every connection on <= 4 loop threads and egress rides the owning
// loop's write readiness.
//
// Full-run acceptance (exit 1 otherwise):
//   * loop capacity >= 4x legacy capacity at the same SLOs;
//   * O(1) threads: on every passing loop step the process thread count is
//     unchanged by accepting C clients (thread_delta == 0).
//
// Emitted via bench/bench_json.h for tools/benchdiff. Capacity counts are
// named *_speedup so benchdiff treats higher as better; per-step latency
// extras keep the default lower-is-better direction.
//
// --with-limits re-runs the ladder with overload protection armed (decision
// 15) at thresholds a compliant client never trips; the pass criterion then
// also requires zero rate-limit/quota/admission refusals, so the run proves
// the guards are free for clients that behave.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/alib/alib.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/transport/framer.h"
#include "src/transport/socket_stream.h"
#include "src/wire/messages.h"

namespace aud {
namespace {

constexpr double kSloTickP99Us = 20000.0;      // one 20 ms engine period
constexpr double kSloDispatchP99Us = 20000.0;  // end-to-end server dispatch

// Every kPlayerStride-th client actively plays; the rest hold mapped,
// subscribed, periodically-syncing connections. Client 0 always plays, so
// every step has at least one sync-mark producer.
constexpr int kPlayerStride = 8;

int ProcessThreadCount() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  int threads = -1;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) {
      break;
    }
  }
  std::fclose(f);
  return threads;
}

// One raw-protocol capacity client. The setup handshake and chain build use
// blocking reads; during the measure window the owning worker drains events
// and replies through the resumable Framer (SocketStream::ReadSome is
// MSG_DONTWAIT, so the same stream serves both phases).
class CapClient {
 public:
  explicit CapClient(int index) : index_(index) {}

  bool alive() const { return stream_ != nullptr && !dead_; }
  bool player() const { return index_ % kPlayerStride == 0; }
  uint64_t events() const { return events_; }

  bool Connect(uint16_t port, const std::vector<uint8_t>& sound_bytes) {
    stream_ = ConnectTcp("127.0.0.1", port);
    if (stream_ == nullptr) {
      return false;
    }
    SetupRequest request;
    request.client_name = "cap-" + std::to_string(index_);
    ByteWriter w;
    request.Encode(&w);
    if (!WriteMessage(stream_.get(), MessageType::kRequest, kSetupOpcode, 0,
                      w.bytes())) {
      return Fail();
    }
    std::optional<FramedMessage> reply = ReadMessage(stream_.get());
    if (!reply) {
      return Fail();
    }
    ByteReader r(reply->payload);
    SetupReply setup = SetupReply::Decode(&r);
    if (!r.ok() || setup.success == 0) {
      return Fail();
    }
    id_base_ = setup.id_base;
    return player() ? BuildChain(sound_bytes) : BuildIdle();
  }

  // Arms the playback: sync marks start flowing once the queue runs.
  bool StartQueue() {
    if (!player()) {
      return true;
    }
    ResourceReq req;
    req.id = loud_;
    ByteWriter w;
    req.Encode(&w);
    return Send(Opcode::kStartQueue, w.bytes());
  }

  bool SendSync() { return Send(Opcode::kSync, {}); }

  // Drains everything currently readable; false when the connection died.
  bool Drain() {
    if (!alive()) {
      return false;
    }
    for (int i = 0; i < 4096; ++i) {
      FramedMessage msg;
      switch (framer_.TryReadMessage(stream_.get(), &msg)) {
        case FrameStatus::kMessage:
          if (msg.header.type == MessageType::kEvent) {
            ++events_;
          }
          continue;
        case FrameStatus::kWouldBlock:
          return true;
        case FrameStatus::kEof:
        case FrameStatus::kMalformed:
          Fail();
          return false;
      }
    }
    return true;
  }

  void Close() {
    if (stream_ != nullptr) {
      stream_->Close();
    }
  }

 private:
  bool Fail() {
    dead_ = true;
    if (stream_ != nullptr) {
      stream_->Close();
      stream_.reset();
    }
    return false;
  }

  ResourceId AllocId() { return id_base_ + next_id_++; }

  bool Send(Opcode opcode, std::span<const uint8_t> payload) {
    if (!WriteMessage(stream_.get(), MessageType::kRequest,
                      static_cast<uint16_t>(opcode), ++sequence_, payload)) {
      return Fail();
    }
    return true;
  }

  // An idle-but-held connection: an event-subscribed loud that is never
  // mapped, so it joins no engine island and costs the tick nothing — the
  // client is purely a held socket with live protocol state, the C10k idle
  // connection. Its kSync trickle still exercises the dispatch path.
  bool BuildIdle() {
    loud_ = AllocId();
    CreateLoudReq loud;
    loud.id = loud_;
    ByteWriter lw;
    loud.Encode(&lw);
    if (!Send(Opcode::kCreateLoud, lw.bytes())) {
      return false;
    }
    SelectEventsReq select;
    select.resource = loud_;
    select.mask = kQueueEvents | kLifecycleEvents | kSyncEvents;
    ByteWriter sw;
    select.Encode(&sw);
    if (!Send(Opcode::kSelectEvents, sw.bytes())) {
      return false;
    }
    return SyncBlocking();
  }

  // The toolkit's BuildPlaybackChain, raw: loud + player + output + wire,
  // event subscription, map, an uploaded sound, 20 ms sync marks, and one
  // queued play — everything async, confirmed by a blocking sync.
  bool BuildChain(const std::vector<uint8_t>& sound_bytes) {
    loud_ = AllocId();
    CreateLoudReq loud;
    loud.id = loud_;
    ByteWriter lw;
    loud.Encode(&lw);
    if (!Send(Opcode::kCreateLoud, lw.bytes())) {
      return false;
    }
    player_ = AllocId();
    output_ = AllocId();
    for (auto [id, device_class] :
         {std::pair{player_, DeviceClass::kPlayer},
          std::pair{output_, DeviceClass::kOutput}}) {
      CreateVirtualDeviceReq dev;
      dev.id = id;
      dev.loud = loud_;
      dev.device_class = device_class;
      ByteWriter dw;
      dev.Encode(&dw);
      if (!Send(Opcode::kCreateVirtualDevice, dw.bytes())) {
        return false;
      }
    }
    CreateWireReq wire;
    wire.id = AllocId();
    wire.src_device = player_;
    wire.dst_device = output_;
    ByteWriter ww;
    wire.Encode(&ww);
    if (!Send(Opcode::kCreateWire, ww.bytes())) {
      return false;
    }
    SelectEventsReq select;
    select.resource = loud_;
    select.mask = kQueueEvents | kLifecycleEvents | kSyncEvents;
    ByteWriter sw;
    select.Encode(&sw);
    if (!Send(Opcode::kSelectEvents, sw.bytes())) {
      return false;
    }
    MapLoudReq map;
    map.loud = loud_;
    ByteWriter mw;
    map.Encode(&mw);
    if (!Send(Opcode::kMapLoud, mw.bytes())) {
      return false;
    }
    sound_ = AllocId();
    CreateSoundReq create;
    create.id = sound_;
    create.format = kTelephoneFormat;
    ByteWriter cw;
    create.Encode(&cw);
    if (!Send(Opcode::kCreateSound, cw.bytes())) {
      return false;
    }
    WriteSoundDataReq write;
    write.id = sound_;
    write.data = sound_bytes;
    ByteWriter dw;
    write.Encode(&dw);
    if (!Send(Opcode::kWriteSoundData, dw.bytes())) {
      return false;
    }
    SetSyncMarksReq marks;
    marks.loud = loud_;
    marks.interval_ms = 20;
    ByteWriter kw;
    marks.Encode(&kw);
    if (!Send(Opcode::kSetSyncMarks, kw.bytes())) {
      return false;
    }
    EnqueueCommandsReq enqueue;
    enqueue.loud = loud_;
    enqueue.commands.push_back(PlayCommand(player_, sound_, 1));
    ByteWriter ew;
    enqueue.Encode(&ew);
    if (!Send(Opcode::kEnqueueCommands, ew.bytes())) {
      return false;
    }
    return SyncBlocking();
  }

  // Blocking ramp-phase sync: consume events until our reply arrives.
  bool SyncBlocking() {
    if (!Send(Opcode::kSync, {})) {
      return false;
    }
    const uint32_t want = sequence_;
    for (int i = 0; i < 100000; ++i) {
      std::optional<FramedMessage> msg = ReadMessage(stream_.get());
      if (!msg) {
        return Fail();
      }
      if (msg->header.type == MessageType::kEvent) {
        ++events_;
        continue;
      }
      if (msg->header.type == MessageType::kReply && msg->header.sequence == want) {
        return true;
      }
    }
    return Fail();
  }

  const int index_;
  std::unique_ptr<ByteStream> stream_;
  Framer framer_;
  ResourceId id_base_ = kNoResource;
  uint32_t next_id_ = 0;
  uint32_t sequence_ = 0;
  ResourceId loud_ = kNoResource;
  ResourceId player_ = kNoResource;
  ResourceId output_ = kNoResource;
  ResourceId sound_ = kNoResource;
  bool dead_ = false;
  uint64_t events_ = 0;
};

struct StepResult {
  int clients = 0;
  int players = 0;
  int connected = 0;
  int died = 0;
  int threads_before = 0;   // server up, zero clients
  int threads_loaded = 0;   // all clients held
  int bench_threads = 0;    // the bench's own workers, spawned after threads_before
  double tick_p99_us = 0;
  double dispatch_p99_us = 0;
  double loop_dispatch_p99_us = 0;
  int64_t fds_watched = 0;
  uint64_t egress_disconnects = 0;
  uint64_t events_sent = 0;
  uint64_t events_received = 0;
  uint64_t rate_limited = 0;
  uint64_t quota_denials = 0;
  double window_s = 0;
  bool pass = false;
};

// with_limits runs the identical workload against a server with overload
// protection armed (DESIGN.md decision 15). The limits are sized so a
// compliant capacity client never trips them — the chain build bursts ~12
// requests and one 80 KB sound upload, the hold phase trickles syncs — so
// the step must pass the same SLOs *and* record zero refusals, proving the
// admission/bucket/quota checks cost compliant clients nothing.
StepResult RunStep(uint32_t connection_threads, int clients, int window_ms,
                   bool with_limits) {
  StepResult result;
  result.clients = clients;
  result.players = (clients + kPlayerStride - 1) / kPlayerStride;

  ServerOptions options;
  options.connection_threads = connection_threads;
  if (with_limits) {
    options.max_connections = static_cast<size_t>(clients) + 8;
    options.limit_rps = 2000;
    options.limit_rps_burst = 256;
    options.limit_bps = 4 << 20;
    options.limit_bps_burst = 1 << 20;
    options.quota_devices = 8;
    options.quota_sound_bytes = 1 << 20;
    options.quota_plays = 4;
  }
  Board board{BoardConfig{}};
  AudioServer server(&board, options);
  if (!server.ListenTcp(0)) {
    return result;
  }
  server.StartRealtime();
  const uint16_t port = server.tcp_port();
  result.threads_before = ProcessThreadCount();

  // 10 s of near-silent mulaw: outlives ramp + window, so sync marks keep
  // firing for every client through the whole measure window.
  const std::vector<uint8_t> sound_bytes(8000 * 10, 0xFE);

  const int workers = std::min(4, clients);
  result.bench_threads = workers;
  std::vector<std::vector<std::unique_ptr<CapClient>>> per_worker(
      static_cast<size_t>(workers));
  std::atomic<int> connected{0};
  std::atomic<int> died{0};
  std::atomic<uint64_t> events_received{0};
  std::atomic<int> ramp_done{0};
  std::atomic<bool> window_open{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto& mine = per_worker[static_cast<size_t>(w)];
      const int lo = clients * w / workers;
      const int hi = clients * (w + 1) / workers;
      for (int i = lo; i < hi && !stop.load(); ++i) {
        auto client = std::make_unique<CapClient>(i);
        if (client->Connect(port, sound_bytes)) {
          connected.fetch_add(1);
          mine.push_back(std::move(client));
        }
      }
      ramp_done.fetch_add(1);
      // Barrier: wait for every worker's ramp before the window opens.
      while (!window_open.load() && !stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (auto& client : mine) {
        client->StartQueue();
      }
      // Hold: drain events non-blockingly, trickle syncs to keep request
      // dispatch in the measurement.
      uint64_t pass_count = 0;
      while (!stop.load()) {
        ++pass_count;
        for (auto& client : mine) {
          if (!client->alive()) {
            continue;
          }
          if (!client->Drain()) {
            died.fetch_add(1);
            continue;
          }
          if (pass_count % 16 == 0) {
            client->SendSync();
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      for (auto& client : mine) {
        events_received.fetch_add(client->events());
        client->Close();
      }
    });
  }

  // Wait for every worker to finish its ramp (success or failure — a step
  // with failed connects still runs its window and then fails the
  // all-connected criterion), then open the measure window.
  while (ramp_done.load() < workers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  window_open.store(true);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  result.threads_loaded = ProcessThreadCount();
  ServerStatsReply stats;
  {
    MutexLock lock(&server.mutex());
    stats = server.state().BuildServerStats(false);
  }
  stop.store(true);
  for (std::thread& t : threads) {
    t.join();
  }
  result.window_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.Shutdown();

  result.connected = connected.load();
  result.died = died.load();
  result.events_received = events_received.load();
  result.tick_p99_us = stats.tick_us.empty() ? 0.0 : stats.tick_us.Percentile(99);
  result.dispatch_p99_us =
      stats.dispatch_us.empty() ? 0.0 : stats.dispatch_us.Percentile(99);
  result.loop_dispatch_p99_us =
      stats.loop_dispatch_us.empty() ? 0.0 : stats.loop_dispatch_us.Percentile(99);
  result.fds_watched = stats.fds_watched;
  result.egress_disconnects = stats.egress_disconnects;
  result.events_sent = stats.events_sent;
  result.rate_limited = stats.rate_limited;
  result.quota_denials = stats.quota_denials;
  result.pass = result.connected == clients && result.died == 0 &&
                result.egress_disconnects == 0 &&
                result.tick_p99_us <= kSloTickP99Us &&
                result.dispatch_p99_us <= kSloDispatchP99Us &&
                result.events_received >= static_cast<uint64_t>(result.players) &&
                // With limits armed, compliant traffic must sail through.
                result.rate_limited == 0 && result.quota_denials == 0 &&
                stats.admission_rejects == 0;
  return result;
}

const char* PlaneName(uint32_t connection_threads) {
  return connection_threads == 0 ? "legacy" : "loop";
}

}  // namespace
}  // namespace aud

int main(int argc, char** argv) {
  // --with-limits is ours; strip it before the common parser warns.
  bool with_limits = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--with-limits") == 0) {
      with_limits = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  aud::BenchFlags flags = aud::BenchFlags::Parse(argc, argv);

  // The legacy plane burns 2 fds-worth of kernel objects and 2 threads per
  // client, and the bench itself holds the client end of every socket: lift
  // the fd ceiling so the ladder measures the server, not our rlimit.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
  }

  const int window_ms = flags.quick ? 1000 : 2000;
  const std::vector<int> legacy_ladder =
      flags.quick ? std::vector<int>{16, 48} : std::vector<int>{64, 128, 256, 512, 1024};
  const std::vector<int> loop_ladder =
      flags.quick ? std::vector<int>{16, 48, 96}
                  : std::vector<int>{512, 1024, 2048, 4096, 8192};

  aud::BenchJsonWriter json("capacity");
  int capacity[2] = {0, 0};  // [0]=legacy, [1]=loop
  int loop_thread_delta_max = 0;
  // Limit-armed steps get their own names so benchdiff never compares a
  // guarded run against an unguarded baseline.
  const std::string step_prefix = with_limits ? "step_limits/" : "step/";

  for (int plane = 0; plane < 2; ++plane) {
    const uint32_t connection_threads = plane == 0 ? 0u : 4u;
    const std::vector<int>& ladder = plane == 0 ? legacy_ladder : loop_ladder;
    for (int clients : ladder) {
      aud::StepResult r =
          aud::RunStep(connection_threads, clients, window_ms, with_limits);
      // threads_before is sampled before the bench spawns its own workers,
      // so subtract them: the delta isolates server-side thread growth.
      const int thread_delta = r.threads_loaded - r.threads_before - r.bench_threads;
      std::printf(
          "capacity%s/%s/%d: %s connected=%d players=%d died=%d tick_p99=%.0fus "
          "dispatch_p99=%.0fus loop_dispatch_p99=%.0fus threads=%d (+%d) "
          "fds=%lld events rx=%llu tx=%llu cuts=%llu ratelim=%llu quota=%llu\n",
          with_limits ? "+limits" : "", aud::PlaneName(connection_threads),
          clients, r.pass ? "PASS" : "fail", r.connected, r.players, r.died,
          r.tick_p99_us, r.dispatch_p99_us, r.loop_dispatch_p99_us,
          r.threads_loaded, thread_delta, static_cast<long long>(r.fds_watched),
          static_cast<unsigned long long>(r.events_received),
          static_cast<unsigned long long>(r.events_sent),
          static_cast<unsigned long long>(r.egress_disconnects),
          static_cast<unsigned long long>(r.rate_limited),
          static_cast<unsigned long long>(r.quota_denials));
      std::fflush(stdout);
      auto& entry = json.Add(step_prefix + aud::PlaneName(connection_threads) +
                                 "/" + std::to_string(clients),
                             /*iterations=*/1, r.tick_p99_us * 1000.0);
      entry.extra.emplace_back("tick_p99_us", r.tick_p99_us);
      entry.extra.emplace_back("dispatch_p99_us", r.dispatch_p99_us);
      entry.extra.emplace_back("loop_dispatch_p99_us", r.loop_dispatch_p99_us);
      entry.extra.emplace_back("threads", r.threads_loaded);
      entry.extra.emplace_back("thread_delta", thread_delta);
      entry.extra.emplace_back("connected", r.connected);
      entry.extra.emplace_back("players", r.players);
      entry.extra.emplace_back("events_rx", static_cast<double>(r.events_received));
      entry.extra.emplace_back("pass", r.pass ? 1.0 : 0.0);
      if (r.pass) {
        capacity[plane] = clients;
        if (plane == 1) {
          loop_thread_delta_max = std::max(loop_thread_delta_max, thread_delta);
        }
      } else {
        break;  // the ladder is monotone; higher steps only burn time
      }
    }
  }

  const double ratio =
      capacity[0] > 0 ? static_cast<double>(capacity[1]) / capacity[0] : 0.0;
  std::printf("capacity%s: legacy=%d loop=%d ratio=%.2fx loop_thread_delta=%d\n",
              with_limits ? "+limits" : "", capacity[0], capacity[1], ratio,
              loop_thread_delta_max);
  // Quick runs use a toy ladder whose ratio says nothing about the full
  // acceptance run; a distinct summary name keeps benchdiff from comparing
  // the two (its per-step names never collide because the ladders differ).
  // Limit-armed runs are a third population, named apart for the same reason.
  std::string summary_name = flags.quick ? "capacity/summary_quick" : "capacity/summary";
  if (with_limits) {
    summary_name += "_limits";
  }
  auto& summary = json.Add(summary_name, 1, 1.0);
  summary.extra.emplace_back("legacy_clients_speedup", capacity[0]);
  summary.extra.emplace_back("loop_clients_speedup", capacity[1]);
  summary.extra.emplace_back("loop_vs_legacy_speedup", ratio);
  summary.extra.emplace_back("loop_thread_delta", loop_thread_delta_max);

  if (!flags.json_out.empty() && !json.WriteTo(flags.json_out)) {
    std::fprintf(stderr, "bench_capacity: failed to write %s\n",
                 flags.json_out.c_str());
    return 1;
  }

  if (!flags.quick) {
    // Acceptance: the event-loop plane must hold >= 4x the clients at the
    // same SLOs, without growing the thread count per client.
    if (ratio < 4.0) {
      std::fprintf(stderr,
                   "bench_capacity: FAIL loop/legacy capacity ratio %.2f < 4.0\n",
                   ratio);
      return 1;
    }
    if (loop_thread_delta_max != 0) {
      std::fprintf(stderr,
                   "bench_capacity: FAIL loop plane grew %d threads with "
                   "clients (want 0)\n",
                   loop_thread_delta_max);
      return 1;
    }
  }
  return 0;
}
