// Machine-readable bench output for the perf-regression harness. The
// experiment binaries are hand-rolled (they assert paper claims, not just
// time loops), so this emits the subset of the google-benchmark JSON shape
// that tools/benchdiff consumes: a context block plus one entry per
// measurement with name / iterations / real_time in ns. Extra scalars
// (tick p50/p99, speedups) ride along as additional numeric fields, which
// benchdiff compares when present in both files.

#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <sys/utsname.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace aud {

class BenchJsonWriter {
 public:
  struct Entry {
    std::string name;
    int64_t iterations = 1;
    double real_time_ns = 0;  // ns per iteration
    std::vector<std::pair<std::string, double>> extra;
  };

  // `bench` names the suite ("mixing" -> BENCH_mixing.json).
  explicit BenchJsonWriter(std::string bench) : bench_(std::move(bench)) {}

  Entry& Add(std::string name, int64_t iterations, double real_time_ns) {
    entries_.push_back(Entry{std::move(name), iterations, real_time_ns, {}});
    return entries_.back();
  }

  // Writes google-benchmark-shaped JSON. Returns false on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    utsname un{};
    uname(&un);
    std::fprintf(f, "{\n  \"context\": {\n");
    std::fprintf(f, "    \"executable\": \"bench_%s\",\n", bench_.c_str());
    std::fprintf(f, "    \"host_name\": \"%s\",\n", un.nodename);
    std::fprintf(f, "    \"machine\": \"%s %s\",\n", un.sysname, un.machine);
    std::fprintf(f, "    \"library_build_type\": \"release\"\n");
    std::fprintf(f, "  },\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                   "\"iterations\": %lld, \"real_time\": %.3f, "
                   "\"cpu_time\": %.3f, \"time_unit\": \"ns\"",
                   e.name.c_str(), static_cast<long long>(e.iterations),
                   e.real_time_ns, e.real_time_ns);
      for (const auto& [key, value] : e.extra) {
        std::fprintf(f, ", \"%s\": %.3f", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::string bench_;
  std::vector<Entry> entries_;
};

// Common flag parsing for the experiment binaries: --json-out=PATH writes
// the BENCH_<name>.json artifact, --quick shrinks workloads for CI smoke
// lanes.
struct BenchFlags {
  std::string json_out;
  bool quick = false;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--json-out=", 0) == 0) {
        flags.json_out = arg.substr(11);
      } else if (arg == "--quick") {
        flags.quick = true;
      } else {
        std::fprintf(stderr, "unknown flag %s (supported: --json-out=PATH, --quick)\n",
                     arg.c_str());
      }
    }
    return flags;
  }
};

}  // namespace aud

#endif  // BENCH_BENCH_JSON_H_
