// E5 -- data-rate coverage (paper section 1.1 / 6.2): "telephone quality
// recording requires 8,000 bytes per second; ... a stereo compact audio
// disc consumes just over 175,000 bytes per second. ... The lower data
// rates are usually adequate ... higher data rates are already supported
// by the protocol."
//
// google-benchmark micro-benchmarks of the codec paths (bytes/second they
// can sustain) plus an end-to-end virtual-time playback at each format,
// reporting the real-time margin.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/dsp/encoding.h"

namespace aud {
namespace {

std::vector<Sample> TestSignal(size_t n) {
  std::vector<Sample> signal;
  SineOscillator osc(440.0, 8000, 0.5);
  osc.Generate(n, &signal);
  return signal;
}

void BM_Encode(benchmark::State& state) {
  auto encoding = static_cast<Encoding>(state.range(0));
  auto signal = TestSignal(8000);
  StreamEncoder encoder(encoding);
  for (auto _ : state) {
    std::vector<uint8_t> out;
    out.reserve(16000);
    encoder.Encode(signal, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          BytesForSamples(encoding, 8000));
  state.SetLabel(std::string(EncodingName(encoding)));
}
BENCHMARK(BM_Encode)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_Decode(benchmark::State& state) {
  auto encoding = static_cast<Encoding>(state.range(0));
  auto signal = TestSignal(8000);
  StreamEncoder encoder(encoding);
  std::vector<uint8_t> bytes;
  encoder.Encode(signal, &bytes);
  StreamDecoder decoder(encoding);
  for (auto _ : state) {
    std::vector<Sample> out;
    out.reserve(16000);
    decoder.Decode(bytes, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
  state.SetLabel(std::string(EncodingName(encoding)));
}
BENCHMARK(BM_Decode)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

// End-to-end: play 2 s of audio in a given format through the server in
// virtual time; report achieved speed relative to real time.
void BM_EndToEndPlayback(benchmark::State& state) {
  auto encoding = static_cast<Encoding>(state.range(0));
  uint32_t rate = static_cast<uint32_t>(state.range(1));
  AudioFormat format{encoding, rate};

  for (auto _ : state) {
    state.PauseTiming();
    BenchWorld world;
    AudioToolkit& toolkit = world.toolkit();
    std::vector<Sample> pcm;
    SineOscillator osc(440.0, rate, 0.4);
    osc.Generate(rate * 2, &pcm);  // 2 s at the sound's rate
    ResourceId sound = toolkit.UploadSound(pcm, format);
    auto chain = toolkit.BuildPlaybackChain();
    world.client().Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
    world.client().StartQueue(chain.loud);
    (void)world.client().Sync();
    state.ResumeTiming();

    // 2 s of engine time in 20 ms ticks.
    for (int t = 0; t < 100; ++t) {
      world.server().StepFrames(160);
    }
    state.PauseTiming();
    bool done = toolkit.WaitCommandDone(1, 10000);
    if (!done) {
      state.SkipWithError("playback did not finish");
    }
    state.ResumeTiming();
  }
  // 2 s of audio per iteration: items/s > 1 means faster than real time.
  state.SetItemsProcessed(state.iterations() * 2);
  state.SetLabel(std::string(EncodingName(encoding)) + "@" + std::to_string(rate) + "Hz (" +
                 std::to_string(format.BytesPerSecond()) + " B/s)");
}
BENCHMARK(BM_EndToEndPlayback)
    ->Args({static_cast<int>(Encoding::kMulaw8), 8000})    // 8,000 B/s (paper's low end)
    ->Args({static_cast<int>(Encoding::kAdpcm4), 8000})    // 4,000 B/s
    ->Args({static_cast<int>(Encoding::kPcm16), 8000})     // 16,000 B/s
    ->Args({static_cast<int>(Encoding::kPcm16), 16000})    // 32,000 B/s
    ->Args({static_cast<int>(Encoding::kPcm16), 44100})    // 88,200 B/s (mono CD)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aud

BENCHMARK_MAIN();
