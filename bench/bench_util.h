// Shared scaffolding for the benchmark/experiment binaries. Each bench
// reproduces one experiment from DESIGN.md (E1..E11) and prints rows
// comparing the paper's stated goal with the measured value; EXPERIMENTS.md
// records the results.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/alib/alib.h"
#include "src/dsp/tone.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"

namespace aud {

// An in-process server + one client, like the test fixture but bench-grade.
class BenchWorld {
 public:
  explicit BenchWorld(const BoardConfig& config = BoardConfig{},
                      ServerOptions options = ServerOptions{})
      : board_(config), server_(&board_, options) {
    client_ = Connect("bench");
    toolkit_ = std::make_unique<AudioToolkit>(client_.get());
    toolkit_->set_time_pump([this] { server_.StepFrames(160); });
  }

  ~BenchWorld() { server_.Shutdown(); }

  std::unique_ptr<AudioConnection> Connect(const std::string& name) {
    auto [client_end, server_end] = CreatePipePair();
    server_.AddConnection(std::move(server_end));
    return AudioConnection::Open(std::move(client_end), name);
  }

  Board& board() { return board_; }
  AudioServer& server() { return server_; }
  AudioConnection& client() { return *client_; }
  AudioToolkit& toolkit() { return *toolkit_; }

 private:
  Board board_;
  AudioServer server_;
  std::unique_ptr<AudioConnection> client_;
  std::unique_ptr<AudioToolkit> toolkit_;
};

struct DistributionStats {
  double min = 0;
  double median = 0;
  double p90 = 0;
  double max = 0;
  double mean = 0;
};

inline DistributionStats Summarize(std::vector<double> values) {
  DistributionStats stats;
  if (values.empty()) {
    return stats;
  }
  std::sort(values.begin(), values.end());
  stats.min = values.front();
  stats.max = values.back();
  stats.median = values[values.size() / 2];
  stats.p90 = values[values.size() * 9 / 10];
  stats.mean = std::accumulate(values.begin(), values.end(), 0.0) /
               static_cast<double>(values.size());
  return stats;
}

inline void PrintHeader(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

// Process CPU time (user + system), for CPU-share measurements.
inline double ProcessCpuSeconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  auto to_s = [](const timeval& tv) { return tv.tv_sec + tv.tv_usec / 1e6; };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
}

// -- Repeated catalogue play (the decoded-PCM cache's target workload) -------
//
// The answering-machine pattern: several lines play the same catalogued
// prompt (4-bit ADPCM at 16 kHz, so each play costs an ADPCM decode plus a
// 16k -> 8k resample unless the cache serves it) over and over. `clients`
// players run concurrently, each playing the prompt `plays_each` times
// back-to-back; virtual time advances until every queue drains.

struct CatalogPlayResult {
  bool ok = false;                // every play completed
  int plays = 0;                  // total plays timed
  double wall_ns_per_play = 0;    // wall ns per play (engine stepping)
  double cpu_ns_per_play = 0;     // process CPU ns per play
  double tick_p50_us = 0;         // server tick latency percentiles
  double tick_p99_us = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

inline CatalogPlayResult RunCatalogPlayWorkload(size_t cache_bytes, int clients,
                                                int plays_each) {
  ServerOptions options;
  options.decoded_cache_bytes = cache_bytes;
  BenchWorld world(BoardConfig{}, options);

  struct PlayClient {
    std::unique_ptr<AudioConnection> conn;
    std::unique_ptr<AudioToolkit> toolkit;
    AudioToolkit::PlaybackChain chain;
  };
  std::vector<PlayClient> players(static_cast<size_t>(clients));
  const uint32_t last_tag = 1000;
  for (int i = 0; i < clients; ++i) {
    PlayClient& c = players[static_cast<size_t>(i)];
    c.conn = world.Connect("catalog-play-" + std::to_string(i));
    c.toolkit = std::make_unique<AudioToolkit>(c.conn.get());
    c.toolkit->set_time_pump([&world] { world.server().StepFrames(160); });
    c.chain = c.toolkit->BuildPlaybackChain();
    ResourceId sound = c.conn->LoadCatalogueSound("prompt");
    std::vector<CommandSpec> program;
    for (int p = 0; p < plays_each; ++p) {
      program.push_back(PlayCommand(c.chain.player, sound,
                                    p + 1 == plays_each ? last_tag : 0));
    }
    c.conn->Enqueue(c.chain.loud, program);
  }
  for (auto& c : players) {
    (void)c.conn->Sync();
  }

  CatalogPlayResult result;
  result.plays = clients * plays_each;
  double cpu0 = ProcessCpuSeconds();
  auto t0 = std::chrono::steady_clock::now();
  for (auto& c : players) {
    c.conn->StartQueue(c.chain.loud);
  }
  result.ok = true;
  for (auto& c : players) {
    result.ok = c.toolkit->WaitCommandDone(last_tag, 120000) && result.ok;
  }
  auto t1 = std::chrono::steady_clock::now();
  double cpu1 = ProcessCpuSeconds();

  double wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  result.wall_ns_per_play = wall_ns / result.plays;
  result.cpu_ns_per_play = (cpu1 - cpu0) * 1e9 / result.plays;

  auto stats = players[0].conn->GetServerStats(false);
  if (stats.ok()) {
    const auto& tick = stats.value().tick_us;
    result.tick_p50_us = tick.empty() ? 0.0 : tick.Percentile(50);
    result.tick_p99_us = tick.empty() ? 0.0 : tick.Percentile(99);
    result.cache_hits = stats.value().decoded_cache_hits;
    result.cache_misses = stats.value().decoded_cache_misses;
  }
  return result;
}

}  // namespace aud

#endif  // BENCH_BENCH_UTIL_H_
