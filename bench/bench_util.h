// Shared scaffolding for the benchmark/experiment binaries. Each bench
// reproduces one experiment from DESIGN.md (E1..E11) and prints rows
// comparing the paper's stated goal with the measured value; EXPERIMENTS.md
// records the results.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/alib/alib.h"
#include "src/dsp/tone.h"
#include "src/hw/board.h"
#include "src/server/server.h"
#include "src/toolkit/toolkit.h"
#include "src/transport/pipe_stream.h"

namespace aud {

// An in-process server + one client, like the test fixture but bench-grade.
class BenchWorld {
 public:
  explicit BenchWorld(const BoardConfig& config = BoardConfig{},
                      ServerOptions options = ServerOptions{})
      : board_(config), server_(&board_, options) {
    client_ = Connect("bench");
    toolkit_ = std::make_unique<AudioToolkit>(client_.get());
    toolkit_->set_time_pump([this] { server_.StepFrames(160); });
  }

  ~BenchWorld() { server_.Shutdown(); }

  std::unique_ptr<AudioConnection> Connect(const std::string& name) {
    auto [client_end, server_end] = CreatePipePair();
    server_.AddConnection(std::move(server_end));
    return AudioConnection::Open(std::move(client_end), name);
  }

  Board& board() { return board_; }
  AudioServer& server() { return server_; }
  AudioConnection& client() { return *client_; }
  AudioToolkit& toolkit() { return *toolkit_; }

 private:
  Board board_;
  AudioServer server_;
  std::unique_ptr<AudioConnection> client_;
  std::unique_ptr<AudioToolkit> toolkit_;
};

struct DistributionStats {
  double min = 0;
  double median = 0;
  double p90 = 0;
  double max = 0;
  double mean = 0;
};

inline DistributionStats Summarize(std::vector<double> values) {
  DistributionStats stats;
  if (values.empty()) {
    return stats;
  }
  std::sort(values.begin(), values.end());
  stats.min = values.front();
  stats.max = values.back();
  stats.median = values[values.size() / 2];
  stats.p90 = values[values.size() * 9 / 10];
  stats.mean = std::accumulate(values.begin(), values.end(), 0.0) /
               static_cast<double>(values.size());
  return stats;
}

inline void PrintHeader(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

}  // namespace aud

#endif  // BENCH_BENCH_UTIL_H_
