// E3 -- seamless queue transitions (paper sections 5.5 and 6.2): "for a
// set of digital sounds, there should be zero delay between them" and
// "pre-issuing commands allows plays to occur without a single dropped or
// inserted sample."
//
// Back-to-back plays with deliberately period-misaligned sound lengths,
// and play->record turnarounds, verified sample-exactly in virtual time.

#include "bench/bench_util.h"

namespace aud {
namespace {

// Counts dropped/inserted samples at the A->B boundary in the speaker
// capture. A is all `a_val`, B all `b_val`; returns -1 on structure error.
int64_t BoundaryDefects(const std::vector<Sample>& played, Sample a_val, Sample b_val,
                        size_t a_len, size_t b_len) {
  size_t start = 0;
  while (start < played.size() && played[start] != a_val) {
    ++start;
  }
  if (start == played.size()) {
    return -1;
  }
  int64_t defects = 0;
  for (size_t i = 0; i < a_len; ++i) {
    if (start + i >= played.size() || played[start + i] != a_val) {
      ++defects;
    }
  }
  for (size_t i = 0; i < b_len; ++i) {
    size_t pos = start + a_len + i;
    if (pos >= played.size() || played[pos] != b_val) {
      ++defects;
    }
  }
  return defects;
}

int Run() {
  PrintHeader("E3: gapless queue transitions",
              "zero delay between queued digital sounds; not a single dropped or "
              "inserted sample (pre-issued commands, device-clock completion)");

  // Sweep sound lengths that straddle period boundaries (period = 160).
  const size_t kLengthsA[] = {160, 167, 480, 1234, 3201};
  const size_t kLengthsB[] = {159, 320, 555, 2048, 4097};

  std::printf("%-12s %-12s %-18s %-14s\n", "len A", "len B", "boundary defects",
              "verdict");
  int64_t total_defects = 0;
  int failures = 0;
  for (size_t a_len : kLengthsA) {
    for (size_t b_len : kLengthsB) {
      BenchWorld world;
      world.board().speakers()[0]->set_capture_output(true);
      AudioConnection& client = world.client();
      AudioToolkit& toolkit = world.toolkit();

      std::vector<Sample> a(a_len, 1000);
      std::vector<Sample> b(b_len, -2000);
      ResourceId sa = toolkit.UploadSound(a, {Encoding::kPcm16, 8000});
      ResourceId sb = toolkit.UploadSound(b, {Encoding::kPcm16, 8000});
      auto chain = toolkit.BuildPlaybackChain();
      client.Enqueue(chain.loud, {PlayCommand(chain.player, sa, 1),
                                  PlayCommand(chain.player, sb, 2)});
      client.StartQueue(chain.loud);
      (void)client.Sync();
      if (!toolkit.WaitCommandDone(2, 30000)) {
        std::printf("%-12zu %-12zu %-18s FAILED (timeout)\n", a_len, b_len, "-");
        ++failures;
        continue;
      }
      world.server().StepFrames(static_cast<int64_t>(a_len + b_len) + 1600);

      int64_t defects =
          BoundaryDefects(world.board().speakers()[0]->played(), 1000, -2000, a_len, b_len);
      total_defects += defects < 0 ? 1 : defects;
      if (defects != 0) {
        ++failures;
      }
      std::printf("%-12zu %-12zu %-18lld %-14s\n", a_len, b_len,
                  static_cast<long long>(defects), defects == 0 ? "exact" : "DEFECT");
    }
  }

  // Play -> record turnaround: the answering-machine transition. The beep
  // must be fully played and recording must begin the very next sample.
  {
    BenchWorld world;
    AudioConnection& client = world.client();
    AudioToolkit& toolkit = world.toolkit();
    // Loud: player -> output, input -> recorder; mic hears a constant tone
    // so the first recorded sample is deterministic.
    ResourceId loud = client.CreateLoud(kNoResource, {});
    ResourceId player = client.CreateDevice(loud, DeviceClass::kPlayer, {});
    ResourceId output = client.CreateDevice(loud, DeviceClass::kOutput, {});
    ResourceId input = client.CreateDevice(loud, DeviceClass::kInput, {});
    ResourceId recorder = client.CreateDevice(loud, DeviceClass::kRecorder, {});
    client.CreateWire(player, 0, output, 0);
    client.CreateWire(input, 0, recorder, 0);
    client.SelectEvents(loud, kQueueEvents | kRecorderEvents);
    client.MapLoud(loud);

    world.board().microphones()[0]->set_source([](std::span<Sample> block) {
      for (Sample& s : block) {
        s = 7777;
      }
    });

    std::vector<Sample> prompt(1111, 3000);  // misaligned length
    ResourceId prompt_sound = toolkit.UploadSound(prompt, {Encoding::kPcm16, 8000});
    ResourceId message = client.CreateSound({Encoding::kPcm16, 8000});
    client.Enqueue(loud, {PlayCommand(player, prompt_sound, 1),
                          RecordCommand(recorder, message, kTerminateOnStop, 100, 2)});
    client.StartQueue(loud);
    (void)client.Sync();
    bool ok = toolkit.WaitCommandDone(2, 30000);
    auto recorded = toolkit.DownloadSound(message);
    int64_t silent_lead = 0;
    if (recorded.ok()) {
      for (Sample s : recorded.value()) {
        if (s == 7777) {
          break;
        }
        ++silent_lead;
      }
    }
    std::printf("play->record turnaround: recording leads with %lld non-live samples %s\n",
                static_cast<long long>(silent_lead),
                ok && silent_lead == 0 ? "(exact)" : "(DEFECT)");
    if (!ok || silent_lead != 0) {
      ++failures;
    }
  }

  std::printf("total boundary defects: %lld across %zu combinations\n",
              static_cast<long long>(total_defects),
              std::size(kLengthsA) * std::size(kLengthsB));
  std::printf("paper goal (zero dropped/inserted samples): %s\n",
              failures == 0 ? "MET" : "MISSED");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main() { return aud::Run(); }
