// E6 -- synchronization-event delivery (paper section 5.7 / figure 6-1):
// the Soundviewer updates its bar graph from server sync events; useful
// synchronization needs marks delivered with low, stable latency relative
// to the audio they describe.
//
// Real-time engine; sync marks every 125 ms. We measure the wall-clock
// interval between consecutive marks as observed by the client, and the
// skew between each mark's audio position and the wall time it arrived.

#include <chrono>
#include <cmath>

#include "bench/bench_util.h"

namespace aud {
namespace {

int Run() {
  PrintHeader("E6: synchronization event delivery",
              "sync events drive media-synchronized graphics (Soundviewer); delivery "
              "must track audio position closely");

  BenchWorld world;
  AudioConnection& client = world.client();
  AudioToolkit& toolkit = world.toolkit();

  std::vector<Sample> pcm(8000 * 4, 5000);  // 4 s
  ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
  auto chain = toolkit.BuildPlaybackChain();
  constexpr int kIntervalMs = 125;
  client.SetSyncMarks(chain.loud, kIntervalMs);
  (void)client.Sync();

  world.server().StartRealtime();
  toolkit.set_time_pump({});

  client.Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
  client.StartQueue(chain.loud);

  struct Observation {
    double wall_ms;       // arrival time since first mark
    uint64_t position;    // audio position reported
  };
  std::vector<Observation> observations;
  auto start = std::chrono::steady_clock::now();
  bool done = false;
  while (!done) {
    EventMessage event;
    if (!client.WaitEvent(&event, 8000)) {
      break;
    }
    if (event.type == EventType::kSyncMark) {
      auto now = std::chrono::steady_clock::now();
      SyncMarkArgs mark = SyncMarkArgs::Decode(event.args);
      observations.push_back(
          {std::chrono::duration<double, std::milli>(now - start).count(),
           mark.position_samples});
    } else if (event.type == EventType::kCommandDone) {
      done = true;
    }
  }
  world.server().StopRealtime();

  if (observations.size() < 8) {
    std::printf("too few marks (%zu)\n", observations.size());
    return 1;
  }

  // Inter-mark wall intervals.
  std::vector<double> intervals;
  for (size_t i = 1; i < observations.size(); ++i) {
    intervals.push_back(observations[i].wall_ms - observations[i - 1].wall_ms);
  }
  auto interval_stats = Summarize(intervals);

  // Position-vs-wall skew: audio ms described by the mark minus wall ms
  // since the first mark (constant offset removed via the first sample).
  double base_audio = static_cast<double>(observations[0].position) / 8.0;
  double base_wall = observations[0].wall_ms;
  std::vector<double> skews;
  for (const auto& obs : observations) {
    double audio_ms = static_cast<double>(obs.position) / 8.0 - base_audio;
    skews.push_back(std::abs((obs.wall_ms - base_wall) - audio_ms));
  }
  auto skew_stats = Summarize(skews);

  std::printf("marks delivered: %zu (nominal interval %d ms)\n", observations.size(),
              kIntervalMs);
  std::printf("%-30s %8.1f %8.1f %8.1f %8.1f  (ms)\n", "inter-mark wall interval",
              interval_stats.min, interval_stats.median, interval_stats.p90,
              interval_stats.max);
  std::printf("%-30s %8.1f %8.1f %8.1f %8.1f  (ms)\n", "audio-vs-wall skew",
              skew_stats.min, skew_stats.median, skew_stats.p90, skew_stats.max);
  // Acceptable: skew bounded by ~2 engine periods.
  bool pass = skew_stats.p90 < 60.0 && interval_stats.median > 100.0 &&
              interval_stats.median < 150.0;
  std::printf("verdict (skew p90 < 60 ms, median interval ~125 ms): %s\n",
              pass ? "MET" : "MISSED");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main() { return aud::Run(); }
