// E10 -- engine scaling ablation (paper section 6.1): the multi-threaded
// prototype manages "multiple simultaneous audio data streams"; our engine
// must keep per-tick cost well under the period as the active device graph
// grows, and — with the epoch-snapshot tick (DESIGN.md decision 12) — must
// keep request dispatch responsive while a multi-threaded tick storm runs.
//
// Two experiments, emitted via bench/bench_json.h for tools/benchdiff:
//   1. tick cost vs active playback chains, serial vs island-parallel;
//   2. client-observed dispatch latency for an engine-plane request against
//      an idle root, measured idle, under a load-matched control (a second
//      server ticking identical islands flat out), and under a continuous
//      4-thread tick storm on the measured server itself. Acceptance (full
//      runs): storm p99 <= 1.25x control p99 — the control burns the same
//      CPU without sharing any lock with the probe, so the ratio isolates
//      lock interference, which is what "breaking the big lock" removes
//      (the pre-epoch engine held the state lock across the whole fan-out).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace aud {
namespace {

double PercentileOf(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p / 100.0 * static_cast<double>(values.size()));
  if (rank >= values.size()) {
    rank = values.size() - 1;
  }
  return values[rank];
}

// N independent playing chains (one uploaded sound each, so the island
// partitioner sees N independent islands), each queueing `plays_each`
// back-to-back plays of a 60 s sound.
void BuildChains(BenchWorld& world, int n, int plays_each) {
  AudioToolkit& toolkit = world.toolkit();
  AudioConnection& client = world.client();
  std::vector<Sample> pcm(8000 * 60, 100);
  for (int i = 0; i < n; ++i) {
    ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
    auto chain = toolkit.BuildPlaybackChain();
    std::vector<CommandSpec> program;
    for (int p = 0; p < plays_each; ++p) {
      program.push_back(PlayCommand(chain.player, sound, 1));
    }
    client.Enqueue(chain.loud, program);
    client.StartQueue(chain.loud);
  }
  (void)client.Sync();
  world.server().StepFrames(160);  // warm up: everything starts
}

// -- Experiment 1: tick cost vs chains, serial vs island-parallel ------------

struct TickResult {
  double wall_us_per_tick = 0;
  double tick_p50_us = 0;
  double tick_p99_us = 0;
};

TickResult RunChainTicks(int chains, int engine_threads, int ticks) {
  ServerOptions options;
  options.engine_threads = engine_threads;
  BenchWorld world(BoardConfig{}, options);
  BuildChains(world, chains, /*plays_each=*/1);

  auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < ticks; ++t) {
    world.server().StepFrames(160);
  }
  auto t1 = std::chrono::steady_clock::now();

  TickResult result;
  result.wall_us_per_tick =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / ticks;
  auto stats = world.client().GetServerStats(false);
  if (stats.ok() && !stats.value().tick_us.empty()) {
    result.tick_p50_us = stats.value().tick_us.Percentile(50);
    result.tick_p99_us = stats.value().tick_us.Percentile(99);
  }
  return result;
}

void RunTickScaling(BenchJsonWriter* json, bool quick, bool* all_ok) {
  const int ticks = quick ? 100 : 500;
  const std::vector<int> chain_counts = quick ? std::vector<int>{4, 16}
                                              : std::vector<int>{16, 64};
  std::printf("\nTick cost vs active chains (20 ms of audio per tick):\n");
  std::printf("%-8s %-14s %-14s %-10s\n", "chains", "serial", "4 threads", "speedup");
  for (int n : chain_counts) {
    TickResult serial = RunChainTicks(n, 1, ticks);
    TickResult parallel = RunChainTicks(n, 4, ticks);
    double speedup = parallel.wall_us_per_tick > 0
                         ? serial.wall_us_per_tick / parallel.wall_us_per_tick
                         : 0.0;
    std::printf("%-8d %10.1f us %10.1f us %8.2fx\n", n, serial.wall_us_per_tick,
                parallel.wall_us_per_tick, speedup);
    // Real-time requirement: even the serial tick must beat its 20 ms
    // period by a wide margin.
    *all_ok = *all_ok && serial.wall_us_per_tick < 20000.0 &&
              parallel.wall_us_per_tick < 20000.0;

    auto& e_serial = json->Add("tick/" + std::to_string(n) + "ch_1t", ticks,
                               serial.wall_us_per_tick * 1000.0);
    e_serial.extra.emplace_back("tick_p50_us", serial.tick_p50_us);
    e_serial.extra.emplace_back("tick_p99_us", serial.tick_p99_us);
    auto& e_par = json->Add("tick/" + std::to_string(n) + "ch_4t", ticks,
                            parallel.wall_us_per_tick * 1000.0);
    e_par.extra.emplace_back("tick_p50_us", parallel.tick_p50_us);
    e_par.extra.emplace_back("tick_p99_us", parallel.tick_p99_us);
    e_par.extra.emplace_back("speedup_vs_serial", speedup);
  }
}

// -- Experiment 2: dispatch latency under a tick storm -----------------------

struct DispatchResult {
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t epoch_commits = 0;
  uint64_t shard_contention = 0;
  double commit_p99_us = 0;
  double lock_wait_p99_us = 0;
};

// What shares the machine with the measured server while we probe it.
enum class DispatchLoad {
  kIdle,     // nothing: the true floor for a request round-trip
  kControl,  // a SECOND, unconnected server ticks identical islands flat out
  kStorm,    // the MEASURED server itself ticks flat out (requests race epochs)
};

// Round-trips `requests` engine-plane queries (QueryQueue on an unmapped
// root — its shard lock is never held by the engine) and records each
// client-observed latency.
//
// The acceptance comparison is storm-vs-control, not storm-vs-idle: the
// control run burns exactly the same CPU (same chains, same 4-thread pool
// wake/join cadence) but on a server the client never talks to, so the two
// runs see identical scheduling pressure and differ only in whether the
// probe's dispatch path shares locks with the ticking engine. That is the
// variable "breaking the big lock" changes: the pre-epoch engine held the
// state lock across the whole fan-out, so its storm tail would sit a full
// tick above control; the epoch engine's state-lock holds are bounded by
// epoch open/commit. (Storm-vs-idle also folds in raw single-core
// timesharing, which no locking scheme can remove; it is still reported.)
DispatchResult MeasureDispatch(DispatchLoad load, int requests) {
  ServerOptions options;
  options.engine_threads = 4;
  BenchWorld world(BoardConfig{}, options);
  // 5 x 60 s per chain: the storm cannot drain the queues mid-measurement.
  BuildChains(world, 8, /*plays_each=*/5);

  // The load-matched control: an identical second world whose server the
  // probing client never connects to.
  std::unique_ptr<BenchWorld> control_world;
  if (load == DispatchLoad::kControl) {
    control_world = std::make_unique<BenchWorld>(BoardConfig{}, options);
    BuildChains(*control_world, 8, /*plays_each=*/5);
  }

  AudioConnection& client = world.client();
  ResourceId probe = client.CreateLoud(kNoResource, {});
  (void)client.Sync();

  std::atomic<bool> stop{false};
  std::thread pump;
  if (load != DispatchLoad::kIdle) {
    AudioServer* ticking = load == DispatchLoad::kStorm
                               ? &world.server()
                               : &control_world->server();
    pump = std::thread([ticking, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ticking->StepFrames(160);
      }
    });
  }

  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto reply = client.QueryQueue(probe);
    auto t1 = std::chrono::steady_clock::now();
    if (!reply.ok()) {
      std::fprintf(stderr, "QueryQueue failed: %s\n",
                   reply.status().ToString().c_str());
      break;
    }
    latencies.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

  stop.store(true);
  if (pump.joinable()) {
    pump.join();
  }

  DispatchResult result;
  if (!latencies.empty()) {
    result.mean_us = std::accumulate(latencies.begin(), latencies.end(), 0.0) /
                     static_cast<double>(latencies.size());
  }
  result.p50_us = PercentileOf(latencies, 50);
  result.p99_us = PercentileOf(latencies, 99);
  auto stats = client.GetServerStats(false);
  if (stats.ok()) {
    const ServerStatsReply& s = stats.value();
    result.epoch_commits = s.epoch_commits;
    result.shard_contention = s.dispatch_shard_contention;
    result.commit_p99_us = s.epoch_commit_us.empty() ? 0.0 : s.epoch_commit_us.Percentile(99);
    result.lock_wait_p99_us = s.lock_wait_us.empty() ? 0.0 : s.lock_wait_us.Percentile(99);
  }
  return result;
}

bool RunDispatchStorm(BenchJsonWriter* json, bool quick) {
  const int requests = quick ? 2000 : 20000;
  std::printf("\nDispatch latency under a 4-thread tick storm "
              "(%d QueryQueue round-trips on an idle root):\n", requests);

  DispatchResult idle = MeasureDispatch(DispatchLoad::kIdle, requests);
  DispatchResult control = MeasureDispatch(DispatchLoad::kControl, requests);
  DispatchResult under_storm = MeasureDispatch(DispatchLoad::kStorm, requests);
  double ratio_vs_control =
      control.p99_us > 0 ? under_storm.p99_us / control.p99_us : 0.0;
  double ratio_vs_idle = idle.p99_us > 0 ? under_storm.p99_us / idle.p99_us : 0.0;

  std::printf("  idle    : mean %7.1f us   p50 %7.1f us   p99 %7.1f us\n",
              idle.mean_us, idle.p50_us, idle.p99_us);
  std::printf("  control : mean %7.1f us   p50 %7.1f us   p99 %7.1f us   "
              "(identical load on a second server: scheduling cost only)\n",
              control.mean_us, control.p50_us, control.p99_us);
  std::printf("  storm   : mean %7.1f us   p50 %7.1f us   p99 %7.1f us   "
              "(%llu epochs, %llu shard contentions, commit p99 %.0f us, "
              "lock wait p99 %.0f us)\n",
              under_storm.mean_us, under_storm.p50_us, under_storm.p99_us,
              static_cast<unsigned long long>(under_storm.epoch_commits),
              static_cast<unsigned long long>(under_storm.shard_contention),
              under_storm.commit_p99_us, under_storm.lock_wait_p99_us);
  std::printf("  p99 storm/control: %.2fx (acceptance <= 1.25x)   "
              "storm/idle: %.2fx (informative)\n",
              ratio_vs_control, ratio_vs_idle);

  if (json != nullptr) {
    auto& e_idle = json->Add("dispatch/idle", requests, idle.mean_us * 1000.0);
    e_idle.extra.emplace_back("p50_us", idle.p50_us);
    e_idle.extra.emplace_back("p99_us", idle.p99_us);
    auto& e_ctl = json->Add("dispatch/loaded_control", requests,
                            control.mean_us * 1000.0);
    e_ctl.extra.emplace_back("p50_us", control.p50_us);
    e_ctl.extra.emplace_back("p99_us", control.p99_us);
    auto& e_storm = json->Add("dispatch/storm_4t", requests,
                              under_storm.mean_us * 1000.0);
    e_storm.extra.emplace_back("p50_us", under_storm.p50_us);
    e_storm.extra.emplace_back("p99_us", under_storm.p99_us);
    e_storm.extra.emplace_back("p99_vs_control", ratio_vs_control);
    e_storm.extra.emplace_back("p99_vs_idle", ratio_vs_idle);
    e_storm.extra.emplace_back("epoch_commits",
                               static_cast<double>(under_storm.epoch_commits));
    e_storm.extra.emplace_back("shard_contention",
                               static_cast<double>(under_storm.shard_contention));
    e_storm.extra.emplace_back("epoch_commit_p99_us", under_storm.commit_p99_us);
    e_storm.extra.emplace_back("lock_wait_p99_us", under_storm.lock_wait_p99_us);
  }

  // Quick (CI smoke) runs are too noisy to gate on the tail ratio; the full
  // run enforces the 1.25x acceptance bar.
  return quick || (ratio_vs_control > 0 && ratio_vs_control <= 1.25);
}

int Run(const BenchFlags& flags) {
  PrintHeader("E10: engine scaling + epoch-snapshot dispatch isolation",
              "multiple simultaneous audio data streams; request dispatch "
              "stays responsive while the engine ticks");

  BenchJsonWriter json("engine_scaling");
  bool all_ok = true;

  RunTickScaling(&json, flags.quick, &all_ok);
  bool storm_ok = RunDispatchStorm(&json, flags.quick);
  all_ok = all_ok && storm_ok;

  if (!flags.json_out.empty() && !json.WriteTo(flags.json_out)) {
    std::fprintf(stderr, "failed to write %s\n", flags.json_out.c_str());
    all_ok = false;
  }

  std::printf("paper expectation (real-time capable, dispatch isolated from "
              "the tick): %s\n", all_ok ? "MET" : "MISSED");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main(int argc, char** argv) {
  return aud::Run(aud::BenchFlags::Parse(argc, argv));
}
