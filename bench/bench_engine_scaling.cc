// E10 -- engine scaling ablation (paper section 6.1): the multi-threaded
// prototype manages "multiple simultaneous audio data streams"; our
// single-pump engine must keep per-tick cost well under the period as the
// active device graph grows.
//
// google-benchmark: cost of one 20 ms engine tick vs the number of active
// playback chains (LOUD + player + wire + output), and vs wire fan-out
// through mixers.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace aud {
namespace {

// N independent playing chains, ticked with the given engine options.
// Each chain uploads its own sound, so the island partitioner sees N
// independent islands (shared sounds would merge them).
void RunActiveChainTicks(benchmark::State& state, int n, const ServerOptions& options) {
  BenchWorld world(BoardConfig{}, options);
  AudioToolkit& toolkit = world.toolkit();
  AudioConnection& client = world.client();

  std::vector<AudioToolkit::PlaybackChain> chains;
  // One long looping-ish sound per chain (long enough to outlast the run).
  std::vector<Sample> pcm(8000 * 60, 100);
  for (int i = 0; i < n; ++i) {
    ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
    auto chain = toolkit.BuildPlaybackChain();
    client.Enqueue(chain.loud, {PlayCommand(chain.player, sound, 1)});
    client.StartQueue(chain.loud);
    chains.push_back(chain);
  }
  client.Sync();
  world.server().StepFrames(160);  // warm up: everything starts

  for (auto _ : state) {
    world.server().StepFrames(160);
  }
  state.SetLabel(std::to_string(n) + " chains, " +
                 std::to_string(options.engine_threads) + " engine thread(s)");
  // A tick is 20 ms of audio; report the real-time multiple.
  state.counters["audio_ms_per_tick"] = 20;

  // Fold the server's own tick timing (GetServerStats) into the JSON so the
  // bench records what the always-on instrumentation saw, not just what
  // google-benchmark measured from outside the big lock.
  auto stats = client.GetServerStats(false);
  if (stats.ok() && !stats.value().tick_us.empty()) {
    state.counters["tick_p50_us"] = stats.value().tick_us.Percentile(50);
    state.counters["tick_p99_us"] = stats.value().tick_us.Percentile(99);
  }
}

// One tick with N independent playing chains (serial engine).
void BM_TickWithActiveChains(benchmark::State& state) {
  RunActiveChainTicks(state, static_cast<int>(state.range(0)), ServerOptions{});
}
// Iterations are capped so the 60 s sounds outlast the measurement (each
// iteration consumes 20 ms of audio).
BENCHMARK(BM_TickWithActiveChains)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(128)
    ->Iterations(2500)->Unit(benchmark::kMicrosecond);

// The same workload under the island-parallel engine: args are
// {chains, engine_threads}. Compare against BM_TickWithActiveChains for
// the speedup (acceptance: >= 2x at 128 chains / 4 threads).
void BM_TickWithActiveChainsParallel(benchmark::State& state) {
  ServerOptions options;
  options.engine_threads = static_cast<int>(state.range(1));
  RunActiveChainTicks(state, static_cast<int>(state.range(0)), options);
}
BENCHMARK(BM_TickWithActiveChainsParallel)
    ->Args({16, 4})->Args({64, 4})->Args({128, 2})->Args({128, 4})
    ->Iterations(2500)->Unit(benchmark::kMicrosecond);

// One tick with a deep transform pipeline: player -> dsp x K -> output.
void BM_TickWithTransformDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  BenchWorld world;
  AudioConnection& client = world.client();
  AudioToolkit& toolkit = world.toolkit();

  ResourceId loud = client.CreateLoud(kNoResource, {});
  ResourceId player = client.CreateDevice(loud, DeviceClass::kPlayer, {});
  ResourceId prev = player;
  for (int i = 0; i < depth; ++i) {
    ResourceId dsp = client.CreateDevice(loud, DeviceClass::kDsp, {});
    client.CreateWire(prev, 0, dsp, 0);
    prev = dsp;
  }
  ResourceId output = client.CreateDevice(loud, DeviceClass::kOutput, {});
  client.CreateWire(prev, 0, output, 0);
  client.MapLoud(loud);

  std::vector<Sample> pcm(8000 * 60, 100);
  ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
  client.Enqueue(loud, {PlayCommand(player, sound, 1)});
  client.StartQueue(loud);
  client.Sync();
  world.server().StepFrames(160);

  for (auto _ : state) {
    world.server().StepFrames(160);
  }
  state.SetLabel("dsp depth " + std::to_string(depth));
}
BENCHMARK(BM_TickWithTransformDepth)->Arg(0)->Arg(2)->Arg(8)->Arg(32)
    ->Iterations(2500)->Unit(benchmark::kMicrosecond);

// Idle server tick (the floor: codecs + board only).
void BM_IdleTick(benchmark::State& state) {
  BenchWorld world;
  for (auto _ : state) {
    world.server().StepFrames(160);
  }
}
BENCHMARK(BM_IdleTick)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aud

BENCHMARK_MAIN();
