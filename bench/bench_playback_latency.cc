// E1 -- playback start latency (paper section 6): "we would like to be
// able to start playback of a sound, using an existing server connection,
// in less than several hundred milliseconds."
//
// The engine runs in real time; we measure the wall-clock time from the
// client issuing the Play request to the first sound sample leaving the
// codec at the speaker.

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "bench/bench_util.h"

namespace aud {
namespace {

int Run() {
  PrintHeader("E1: playback start latency",
              "start playback over an existing connection in < several hundred ms");

  BenchWorld world;
  world.server().StartRealtime();
  AudioConnection& client = world.client();
  AudioToolkit& toolkit = world.toolkit();
  toolkit.set_time_pump({});  // real time: no virtual stepping

  // Wall-clock timestamp of the first audible sample out of the codec.
  std::atomic<bool> armed{false};
  std::atomic<int64_t> first_sound_ns{0};
  world.board().speakers()[0]->set_sink([&](std::span<const Sample> block) {
    if (!armed.load(std::memory_order_acquire)) {
      return;
    }
    for (Sample s : block) {
      if (std::abs(s) > 200) {
        first_sound_ns.store(std::chrono::steady_clock::now().time_since_epoch().count(),
                             std::memory_order_release);
        armed.store(false, std::memory_order_release);
        return;
      }
    }
  });

  // 200 ms tone; constant nonzero so the first sample is detectable.
  std::vector<Sample> pcm(1600, 8000);
  ResourceId sound = toolkit.UploadSound(pcm, {Encoding::kPcm16, 8000});
  auto chain = toolkit.BuildPlaybackChain();
  (void)client.Sync();

  constexpr int kTrials = 25;
  std::vector<double> latencies_ms;
  for (int i = 0; i < kTrials; ++i) {
    uint32_t tag = 1000 + static_cast<uint32_t>(i);
    first_sound_ns.store(0);
    armed.store(true);
    auto t0 = std::chrono::steady_clock::now();
    client.Enqueue(chain.loud, {PlayCommand(chain.player, sound, tag)});
    client.StartQueue(chain.loud);
    if (!toolkit.WaitCommandDone(tag, 5000)) {
      std::printf("trial %d: play never completed\n", i);
      return 1;
    }
    int64_t t1 = first_sound_ns.load();
    if (t1 == 0) {
      continue;  // sound never detected (shouldn't happen)
    }
    double ms = (t1 - t0.time_since_epoch().count()) / 1e6;
    latencies_ms.push_back(ms);
    // Let the tail drain so trials don't overlap.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  world.server().StopRealtime();

  auto stats = Summarize(latencies_ms);
  std::printf("trials: %zu (engine period 20 ms)\n", latencies_ms.size());
  std::printf("%-28s %8s %8s %8s %8s\n", "metric", "min", "median", "p90", "max");
  std::printf("%-28s %7.1f %8.1f %8.1f %8.1f   (ms)\n", "request->first sample",
              stats.min, stats.median, stats.p90, stats.max);
  bool pass = stats.p90 < 300.0;
  std::printf("paper goal (<300 ms): %s\n", pass ? "MET" : "MISSED");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace aud

int main() { return aud::Run(); }
