// Encoding-dispatch transcoder: converts a byte stream in any supported
// Encoding to/from the engine's canonical 16-bit linear samples. Stateful
// (ADPCM carries predictor state), so one Transcoder instance serves one
// stream from its beginning. This is the device-boundary conversion the
// paper requires so that "applications should be sheltered" from coding
// changes (section 2).

#ifndef SRC_DSP_ENCODING_H_
#define SRC_DSP_ENCODING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sample.h"
#include "src/dsp/adpcm.h"

namespace aud {

// Decodes encoded bytes into linear samples.
class StreamDecoder {
 public:
  explicit StreamDecoder(Encoding encoding) : encoding_(encoding) {}

  Encoding encoding() const { return encoding_; }

  // Appends decoded samples to `out`.
  void Decode(std::span<const uint8_t> in, std::vector<Sample>* out);

  // Restarts the stream (clears ADPCM predictor state and any half-consumed
  // 16-bit PCM sample).
  void Reset();

 private:
  Encoding encoding_;
  AdpcmDecoder adpcm_;
  // 16-bit PCM chunks may split mid-sample: the dangling low byte is held
  // here until the next call completes the sample.
  uint8_t pending_byte_ = 0;
  bool has_pending_byte_ = false;
};

// Encodes linear samples into encoded bytes.
class StreamEncoder {
 public:
  explicit StreamEncoder(Encoding encoding) : encoding_(encoding) {}

  Encoding encoding() const { return encoding_; }

  // Appends encoded bytes to `out`.
  void Encode(std::span<const Sample> in, std::vector<uint8_t>* out);

  // Restarts the stream.
  void Reset();

 private:
  Encoding encoding_;
  AdpcmEncoder adpcm_;
};

// Number of whole samples encoded by `bytes` bytes of `encoding`.
int64_t SamplesInBytes(Encoding encoding, int64_t bytes);

// Number of bytes that hold `samples` samples of `encoding` (rounded up for
// ADPCM).
int64_t BytesForSamples(Encoding encoding, int64_t samples);

}  // namespace aud

#endif  // SRC_DSP_ENCODING_H_
