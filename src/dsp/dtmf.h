// DTMF (touch-tone) generation and detection. Telephony applications in the
// paper lean on touch tones ("dial by name", tone menus); the telephone
// device class has a SendDTMF command and the recognizer side needs "touch
// tone decoding" with immediate feedback (section 1.4).

#ifndef SRC_DSP_DTMF_H_
#define SRC_DSP_DTMF_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/sample.h"

namespace aud {

// The 16 DTMF digits: 0-9, *, #, A-D.
bool IsDtmfDigit(char c);

// Row/column frequencies for a digit; returns false for non-digits.
bool DtmfFrequencies(char digit, double* row_hz, double* col_hz);

// Renders a digit as `tone_ms` of dual tone followed by `gap_ms` of
// silence. Returns empty for invalid digits.
std::vector<Sample> MakeDtmfDigit(char digit, uint32_t sample_rate_hz, int tone_ms = 80,
                                  int gap_ms = 60, double amplitude = 0.35);

// Renders a whole digit string.
std::vector<Sample> MakeDtmfString(const std::string& digits, uint32_t sample_rate_hz,
                                   int tone_ms = 80, int gap_ms = 60);

// Streaming DTMF detector using Goertzel filters over fixed frames.
// Feed audio; collected digits appear in TakeDigits(). A digit is reported
// once per continuous press (debounced).
class DtmfDetector {
 public:
  explicit DtmfDetector(uint32_t sample_rate_hz);

  // Processes a block of samples.
  void Process(std::span<const Sample> in);

  // Returns digits detected since the last call and clears the queue.
  std::string TakeDigits();

  // Currently pressed digit, if a tone is live right now.
  std::optional<char> current() const { return current_; }

 private:
  void AnalyzeFrame();

  uint32_t rate_;
  size_t frame_size_;
  std::vector<Sample> frame_;
  std::string digits_;
  std::optional<char> current_;
  int silent_frames_ = 0;
};

}  // namespace aud

#endif  // SRC_DSP_DTMF_H_
