#include "src/dsp/pause_detector.h"

#include <cmath>

namespace aud {

namespace {
double FrameRms(std::span<const Sample> frame) {
  if (frame.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (Sample s : frame) {
    double x = s / 32768.0;
    acc += x * x;
  }
  return std::sqrt(acc / static_cast<double>(frame.size()));
}
}  // namespace

PauseDetector::PauseDetector(uint32_t sample_rate_hz)
    : PauseDetector(sample_rate_hz, Options{}) {}

PauseDetector::PauseDetector(uint32_t sample_rate_hz, Options options)
    : rate_(sample_rate_hz),
      options_(options),
      frame_size_(static_cast<size_t>(static_cast<int64_t>(sample_rate_hz) * options.frame_ms /
                                      1000)) {
  frame_.reserve(frame_size_);
}

bool PauseDetector::Process(std::span<const Sample> in) {
  for (Sample s : in) {
    frame_.push_back(s);
    if (frame_.size() == frame_size_) {
      AnalyzeFrame();
      frame_.clear();
    }
  }
  return pause_detected_;
}

void PauseDetector::AnalyzeFrame() {
  if (FrameRms(frame_) < options_.silence_threshold) {
    ++silent_frames_;
    if (silent_frames_ * options_.frame_ms >= options_.pause_ms) {
      pause_detected_ = true;
    }
  } else {
    silent_frames_ = 0;
  }
}

int PauseDetector::trailing_silence_ms() const { return silent_frames_ * options_.frame_ms; }

void PauseDetector::Reset() {
  frame_.clear();
  silent_frames_ = 0;
  pause_detected_ = false;
}

std::vector<Sample> CompressPauses(std::span<const Sample> in, uint32_t sample_rate_hz,
                                   double silence_threshold, int keep_ms) {
  const size_t frame = sample_rate_hz / 50;  // 20 ms frames
  const size_t keep_frames = static_cast<size_t>(keep_ms / 20);
  std::vector<Sample> out;
  out.reserve(in.size());

  size_t silent_run = 0;
  for (size_t pos = 0; pos < in.size(); pos += frame) {
    size_t len = std::min(frame, in.size() - pos);
    auto block = in.subspan(pos, len);
    if (FrameRms(block) < silence_threshold) {
      ++silent_run;
      if (silent_run <= keep_frames) {
        out.insert(out.end(), block.begin(), block.end());
      }
    } else {
      silent_run = 0;
      out.insert(out.end(), block.begin(), block.end());
    }
  }
  return out;
}

}  // namespace aud
