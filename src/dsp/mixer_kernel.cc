#include "src/dsp/mixer_kernel.h"

#include <algorithm>

#include "src/dsp/gain.h"

namespace aud {

void MixAccumulator::Clear() {
  std::fill(acc_.begin(), acc_.end(), 0);
  input_count_ = 0;
}

void MixAccumulator::Reset(size_t block_size) {
  acc_.assign(block_size, 0);
  input_count_ = 0;
}

void MixAccumulator::Accumulate(std::span<const Sample> in, int32_t gain) {
  size_t n = std::min(in.size(), acc_.size());
  int32_t* __restrict acc = acc_.data();
  const Sample* __restrict src = in.data();
  if (gain == kUnityGain) {
    for (size_t i = 0; i < n; ++i) {
      acc[i] += src[i];
    }
  } else {
    const int64_t g = gain;
    for (size_t i = 0; i < n; ++i) {
      acc[i] += static_cast<int32_t>(src[i] * g / kUnityGain);
    }
  }
  ++input_count_;
}

void MixAccumulator::AddFrom(const MixAccumulator& other) {
  size_t n = std::min(acc_.size(), other.acc_.size());
  int32_t* __restrict acc = acc_.data();
  const int32_t* __restrict src = other.acc_.data();
  for (size_t i = 0; i < n; ++i) {
    acc[i] += src[i];
  }
  input_count_ += other.input_count_;
}

void MixAccumulator::Resolve(std::span<Sample> out) const {
  size_t n = std::min(out.size(), acc_.size());
  for (size_t i = 0; i < n; ++i) {
    out[i] = SaturateSample(acc_[i]);
  }
}

void MixEqual(std::span<const std::span<const Sample>> inputs, std::span<Sample> out) {
  thread_local MixAccumulator acc;
  acc.Reset(out.size());
  for (const auto& in : inputs) {
    acc.Accumulate(in, kUnityGain);
  }
  acc.Resolve(out);
}

}  // namespace aud
