#include "src/dsp/mixer_kernel.h"

#include <algorithm>

#include "src/dsp/gain.h"
#include "src/dsp/kernels.h"

namespace aud {

void MixAccumulator::Clear() {
  std::fill(acc_.begin(), acc_.end(), 0);
  input_count_ = 0;
}

void MixAccumulator::Reset(size_t block_size) {
  acc_.assign(block_size, 0);
  input_count_ = 0;
}

void MixAccumulator::Accumulate(std::span<const Sample> in, int32_t gain) {
  size_t n = std::min(in.size(), acc_.size());
  Kernels().mix_accumulate(acc_.data(), in.data(), n, gain);
  ++input_count_;
}

void MixAccumulator::AddFrom(const MixAccumulator& other) {
  size_t n = std::min(acc_.size(), other.acc_.size());
  Kernels().mix_add(acc_.data(), other.acc_.data(), n);
  input_count_ += other.input_count_;
}

void MixAccumulator::Resolve(std::span<Sample> out) const {
  size_t n = std::min(out.size(), acc_.size());
  Kernels().mix_resolve(out.data(), acc_.data(), n);
}

void MixEqual(std::span<const std::span<const Sample>> inputs, std::span<Sample> out) {
  thread_local MixAccumulator acc;
  acc.Reset(out.size());
  for (const auto& in : inputs) {
    acc.Accumulate(in, kUnityGain);
  }
  acc.Resolve(out);
}

}  // namespace aud
