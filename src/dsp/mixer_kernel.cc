#include "src/dsp/mixer_kernel.h"

#include <algorithm>

#include "src/dsp/gain.h"

namespace aud {

void MixAccumulator::Clear() {
  std::fill(acc_.begin(), acc_.end(), 0);
  input_count_ = 0;
}

void MixAccumulator::Accumulate(std::span<const Sample> in, int32_t gain) {
  size_t n = std::min(in.size(), acc_.size());
  if (gain == kUnityGain) {
    for (size_t i = 0; i < n; ++i) {
      acc_[i] += in[i];
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      acc_[i] += static_cast<int32_t>(static_cast<int64_t>(in[i]) * gain / kUnityGain);
    }
  }
  ++input_count_;
}

void MixAccumulator::Resolve(std::span<Sample> out) const {
  size_t n = std::min(out.size(), acc_.size());
  for (size_t i = 0; i < n; ++i) {
    out[i] = SaturateSample(acc_[i]);
  }
}

void MixEqual(std::span<const std::span<const Sample>> inputs, std::span<Sample> out) {
  MixAccumulator acc(out.size());
  for (const auto& in : inputs) {
    acc.Accumulate(in, kUnityGain);
  }
  acc.Resolve(out);
}

}  // namespace aud
