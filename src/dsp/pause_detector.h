// Energy-based silence/pause detection. Backs two recorder attributes from
// the paper (section 5.1): compressing recordings "by removing pauses" and
// "pause detection to terminate recording" (the answering machine's Record
// termination condition, section 5.9).

#ifndef SRC_DSP_PAUSE_DETECTOR_H_
#define SRC_DSP_PAUSE_DETECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sample.h"

namespace aud {

// Streaming pause detector over fixed frames with a hangover period.
class PauseDetector {
 public:
  struct Options {
    // Frame length for energy measurement.
    int frame_ms = 20;
    // RMS threshold (fraction of full scale) below which a frame is silent.
    double silence_threshold = 0.01;
    // A pause is declared after this much continuous silence.
    int pause_ms = 1500;
  };

  explicit PauseDetector(uint32_t sample_rate_hz);
  PauseDetector(uint32_t sample_rate_hz, Options options);

  // Processes a block; returns true if a pause has been detected at or
  // before the end of this block (latches until Reset).
  bool Process(std::span<const Sample> in);

  // True once a pause has been detected.
  bool pause_detected() const { return pause_detected_; }

  // Milliseconds of trailing continuous silence observed so far.
  int trailing_silence_ms() const;

  void Reset();

 private:
  void AnalyzeFrame();

  uint32_t rate_;
  Options options_;
  size_t frame_size_;
  std::vector<Sample> frame_;
  int silent_frames_ = 0;
  bool pause_detected_ = false;
};

// Offline pause compression: removes stretches of silence longer than
// `keep_ms`, keeping `keep_ms` of each (so speech rhythm survives).
std::vector<Sample> CompressPauses(std::span<const Sample> in, uint32_t sample_rate_hz,
                                   double silence_threshold = 0.01, int keep_ms = 150);

}  // namespace aud

#endif  // SRC_DSP_PAUSE_DETECTOR_H_
