#include "src/dsp/dtmf.h"

#include <algorithm>
#include <array>

#include "src/dsp/goertzel.h"
#include "src/dsp/tone.h"

namespace aud {

namespace {

constexpr std::array<double, 4> kRowFreqs = {697.0, 770.0, 852.0, 941.0};
constexpr std::array<double, 4> kColFreqs = {1209.0, 1336.0, 1477.0, 1633.0};

// Keypad layout rows x cols.
constexpr char kKeypad[4][4] = {
    {'1', '2', '3', 'A'},
    {'4', '5', '6', 'B'},
    {'7', '8', '9', 'C'},
    {'*', '0', '#', 'D'},
};

bool DigitPosition(char digit, int* row, int* col) {
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (kKeypad[r][c] == digit) {
        *row = r;
        *col = c;
        return true;
      }
    }
  }
  return false;
}

// Detection threshold on normalized Goertzel power.
constexpr double kPowerThreshold = 0.004;
// A tone must dominate the other bins in its group by this ratio.
constexpr double kDominanceRatio = 4.0;

}  // namespace

bool IsDtmfDigit(char c) {
  int r;
  int col;
  return DigitPosition(c, &r, &col);
}

bool DtmfFrequencies(char digit, double* row_hz, double* col_hz) {
  int r;
  int c;
  if (!DigitPosition(digit, &r, &c)) {
    return false;
  }
  *row_hz = kRowFreqs[static_cast<size_t>(r)];
  *col_hz = kColFreqs[static_cast<size_t>(c)];
  return true;
}

std::vector<Sample> MakeDtmfDigit(char digit, uint32_t sample_rate_hz, int tone_ms, int gap_ms,
                                  double amplitude) {
  double row;
  double col;
  if (!DtmfFrequencies(digit, &row, &col)) {
    return {};
  }
  size_t tone_n = static_cast<size_t>(static_cast<int64_t>(sample_rate_hz) * tone_ms / 1000);
  size_t gap_n = static_cast<size_t>(static_cast<int64_t>(sample_rate_hz) * gap_ms / 1000);
  std::vector<Sample> out;
  out.reserve(tone_n + gap_n);
  DualToneOscillator osc(row, col, sample_rate_hz, amplitude);
  osc.Generate(tone_n, &out);
  out.insert(out.end(), gap_n, 0);
  return out;
}

std::vector<Sample> MakeDtmfString(const std::string& digits, uint32_t sample_rate_hz,
                                   int tone_ms, int gap_ms) {
  std::vector<Sample> out;
  for (char d : digits) {
    auto one = MakeDtmfDigit(d, sample_rate_hz, tone_ms, gap_ms);
    out.insert(out.end(), one.begin(), one.end());
  }
  return out;
}

DtmfDetector::DtmfDetector(uint32_t sample_rate_hz)
    : rate_(sample_rate_hz),
      // ~20 ms frames: good Goertzel resolution for the DTMF grid at 8 kHz.
      frame_size_(sample_rate_hz / 50) {
  frame_.reserve(frame_size_);
}

void DtmfDetector::Process(std::span<const Sample> in) {
  for (Sample s : in) {
    frame_.push_back(s);
    if (frame_.size() == frame_size_) {
      AnalyzeFrame();
      frame_.clear();
    }
  }
}

void DtmfDetector::AnalyzeFrame() {
  std::array<double, 4> row_power;
  std::array<double, 4> col_power;
  for (size_t i = 0; i < 4; ++i) {
    row_power[i] = GoertzelPower(frame_, kRowFreqs[i], rate_);
    col_power[i] = GoertzelPower(frame_, kColFreqs[i], rate_);
  }
  auto best_row = std::max_element(row_power.begin(), row_power.end()) - row_power.begin();
  auto best_col = std::max_element(col_power.begin(), col_power.end()) - col_power.begin();

  double rp = row_power[static_cast<size_t>(best_row)];
  double cp = col_power[static_cast<size_t>(best_col)];

  bool valid = rp > kPowerThreshold && cp > kPowerThreshold;
  if (valid) {
    // Dominance check: second-strongest bin must be well below the peak.
    for (size_t i = 0; i < 4; ++i) {
      if (static_cast<long>(i) != best_row && row_power[i] * kDominanceRatio > rp) {
        valid = false;
      }
      if (static_cast<long>(i) != best_col && col_power[i] * kDominanceRatio > cp) {
        valid = false;
      }
    }
  }

  if (valid) {
    char digit = kKeypad[best_row][best_col];
    silent_frames_ = 0;
    if (!current_ || *current_ != digit) {
      current_ = digit;
      digits_.push_back(digit);
    }
  } else {
    // Require two consecutive non-tone frames before declaring release, so
    // a single noisy frame inside a press doesn't double-report the digit.
    if (current_ && ++silent_frames_ >= 2) {
      current_.reset();
      silent_frames_ = 0;
    }
  }
}

std::string DtmfDetector::TakeDigits() {
  std::string out;
  out.swap(digits_);
  return out;
}

}  // namespace aud
