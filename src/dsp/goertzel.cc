#include "src/dsp/goertzel.h"

#include <cmath>
#include <numbers>

namespace aud {

double GoertzelPower(std::span<const Sample> frame, double frequency_hz,
                     uint32_t sample_rate_hz) {
  if (frame.empty()) {
    return 0.0;
  }
  double omega = 2.0 * std::numbers::pi * frequency_hz / sample_rate_hz;
  double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (Sample x : frame) {
    double s = x / 32768.0 + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  double power = s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
  // Normalize: a unit sine of N samples yields power N^2/4.
  double n = static_cast<double>(frame.size());
  return power / (n * n / 4.0);
}

}  // namespace aud
