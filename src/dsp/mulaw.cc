#include "src/dsp/mulaw.h"

#include "src/dsp/kernels.h"

namespace aud {

namespace {
constexpr int kBias = 0x84;  // 132: standard G.711 bias.
constexpr int kClip = 32635;
}  // namespace

uint8_t MulawEncode(Sample linear) {
  int sample = linear;
  int sign = (sample >> 8) & 0x80;
  if (sign != 0) {
    sample = -sample;
  }
  if (sample > kClip) {
    sample = kClip;
  }
  sample += kBias;

  // Find the segment: position of the highest set bit above bit 5.
  int exponent = 7;
  for (int mask = 0x4000; (sample & mask) == 0 && exponent > 0; mask >>= 1) {
    --exponent;
  }
  int mantissa = (sample >> (exponent + 3)) & 0x0F;
  return static_cast<uint8_t>(~(sign | (exponent << 4) | mantissa));
}

Sample MulawDecode(uint8_t mulaw) {
  int value = ~mulaw & 0xFF;
  int sign = value & 0x80;
  int exponent = (value >> 4) & 0x07;
  int mantissa = value & 0x0F;
  int sample = ((mantissa << 3) + kBias) << exponent;
  sample -= kBias;
  return static_cast<Sample>(sign != 0 ? -sample : sample);
}

void MulawEncodeBlock(std::span<const Sample> in, std::span<uint8_t> out) {
  Kernels().mulaw_encode(out.data(), in.data(), in.size());
}

void MulawDecodeBlock(std::span<const uint8_t> in, std::span<Sample> out) {
  Kernels().mulaw_decode(out.data(), in.data(), in.size());
}

}  // namespace aud
