#include "src/dsp/adpcm.h"

#include <algorithm>

namespace aud {

namespace {

constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,    19,   21,    23,
    25,    28,    31,    34,    37,    41,    45,    50,    55,    60,    66,   73,    80,
    88,    97,    107,   118,   130,   143,   157,   173,   190,   209,   230,  253,   279,
    307,   337,   371,   408,   449,   494,   544,   598,   658,   724,   796,  876,   963,
    1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749, 3024,  3327,
    3660,  4026,  4428,  4871,  5358,  5894,  6484,  7132,  7845,  8630,  9493, 10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};

int Clamp(int v, int lo, int hi) { return std::min(std::max(v, lo), hi); }

}  // namespace

uint8_t AdpcmEncoder::EncodeOne(Sample s) {
  int step = kStepTable[step_index_];
  int diff = s - predictor_;

  uint8_t nibble = 0;
  if (diff < 0) {
    nibble = 8;
    diff = -diff;
  }
  // Quantize diff into 3 magnitude bits against step, accumulating the
  // reconstructed delta exactly as the decoder will.
  int delta = step >> 3;
  if (diff >= step) {
    nibble |= 4;
    diff -= step;
    delta += step;
  }
  if (diff >= step >> 1) {
    nibble |= 2;
    diff -= step >> 1;
    delta += step >> 1;
  }
  if (diff >= step >> 2) {
    nibble |= 1;
    delta += step >> 2;
  }

  predictor_ = Clamp((nibble & 8) != 0 ? predictor_ - delta : predictor_ + delta, -32768, 32767);
  step_index_ = Clamp(step_index_ + kIndexTable[nibble], 0, 88);
  return nibble;
}

void AdpcmEncoder::Encode(std::span<const Sample> in, std::vector<uint8_t>* out) {
  for (Sample s : in) {
    uint8_t nibble = EncodeOne(s);
    if (have_pending_) {
      out->push_back(static_cast<uint8_t>(pending_nibble_ | (nibble << 4)));
      have_pending_ = false;
    } else {
      pending_nibble_ = nibble;
      have_pending_ = true;
    }
  }
}

void AdpcmEncoder::Reset() {
  predictor_ = 0;
  step_index_ = 0;
  have_pending_ = false;
  pending_nibble_ = 0;
}

Sample AdpcmDecoder::DecodeOne(uint8_t nibble) {
  int step = kStepTable[step_index_];
  int delta = step >> 3;
  if ((nibble & 4) != 0) {
    delta += step;
  }
  if ((nibble & 2) != 0) {
    delta += step >> 1;
  }
  if ((nibble & 1) != 0) {
    delta += step >> 2;
  }
  predictor_ = Clamp((nibble & 8) != 0 ? predictor_ - delta : predictor_ + delta, -32768, 32767);
  step_index_ = Clamp(step_index_ + kIndexTable[nibble], 0, 88);
  return static_cast<Sample>(predictor_);
}

void AdpcmDecoder::Decode(std::span<const uint8_t> in, std::vector<Sample>* out) {
  for (uint8_t byte : in) {
    out->push_back(DecodeOne(byte & 0x0F));
    out->push_back(DecodeOne(byte >> 4));
  }
}

void AdpcmDecoder::Reset() {
  predictor_ = 0;
  step_index_ = 0;
}

}  // namespace aud
