// IMA ADPCM (DVI/IMA 4-bit) codec. The paper (footnote 5) cites ADPCM as
// the compression that "can reduce audio data rates by about one half"
// relative to 8-bit companded speech. The coder is stateful: a stream is
// decoded/encoded by one codec instance from its start.

#ifndef SRC_DSP_ADPCM_H_
#define SRC_DSP_ADPCM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sample.h"

namespace aud {

// Stateful IMA ADPCM encoder. Two samples pack into one byte (first sample
// in the low nibble).
class AdpcmEncoder {
 public:
  // Encodes samples, appending packed bytes to `out`. The sample count
  // should be even; a trailing odd sample is held until the next call.
  void Encode(std::span<const Sample> in, std::vector<uint8_t>* out);

  // Resets predictor state to stream start.
  void Reset();

 private:
  uint8_t EncodeOne(Sample s);

  int predictor_ = 0;
  int step_index_ = 0;
  bool have_pending_ = false;
  uint8_t pending_nibble_ = 0;
};

// Stateful IMA ADPCM decoder.
class AdpcmDecoder {
 public:
  // Decodes packed bytes, appending two samples per byte to `out`.
  void Decode(std::span<const uint8_t> in, std::vector<Sample>* out);

  // Resets predictor state to stream start.
  void Reset();

 private:
  Sample DecodeOne(uint8_t nibble);

  int predictor_ = 0;
  int step_index_ = 0;
};

}  // namespace aud

#endif  // SRC_DSP_ADPCM_H_
