#include "src/dsp/alaw.h"

#include "src/dsp/kernels.h"

namespace aud {

uint8_t AlawEncode(Sample linear) {
  int sample = linear;
  int sign = sample >= 0 ? 0x80 : 0;
  if (sample < 0) {
    sample = -sample - 1;
  }
  if (sample > 32767) {
    sample = 32767;
  }

  int compressed;
  if (sample < 256) {
    compressed = sample >> 4;
  } else {
    // Segment number: highest set bit above bit 7.
    int exponent = 7;
    for (int mask = 0x4000; (sample & mask) == 0 && exponent > 1; mask >>= 1) {
      --exponent;
    }
    int mantissa = (sample >> (exponent + 3)) & 0x0F;
    compressed = (exponent << 4) | mantissa;
  }
  return static_cast<uint8_t>((sign | compressed) ^ 0x55);
}

Sample AlawDecode(uint8_t alaw) {
  int value = alaw ^ 0x55;
  int sign = value & 0x80;
  int exponent = (value >> 4) & 0x07;
  int mantissa = value & 0x0F;

  int sample;
  if (exponent == 0) {
    sample = (mantissa << 4) + 8;
  } else {
    sample = ((mantissa << 4) + 0x108) << (exponent - 1);
  }
  return static_cast<Sample>(sign != 0 ? sample : -sample);
}

void AlawEncodeBlock(std::span<const Sample> in, std::span<uint8_t> out) {
  Kernels().alaw_encode(out.data(), in.data(), in.size());
}

void AlawDecodeBlock(std::span<const uint8_t> in, std::span<Sample> out) {
  Kernels().alaw_decode(out.data(), in.data(), in.size());
}

}  // namespace aud
