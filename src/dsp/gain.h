// Gain application. The protocol's ChangeGain command (section 5.1) adjusts
// device volume; mixer inputs carry per-input percentages (SetGain). Gains
// are expressed in centi-percent of unity (10000 == 1.0) and applied in
// fixed point with saturation.

#ifndef SRC_DSP_GAIN_H_
#define SRC_DSP_GAIN_H_

#include <cstdint>
#include <span>

#include "src/common/sample.h"

namespace aud {

// Unity gain constant: 100.00%.
inline constexpr int32_t kUnityGain = 10000;

// Saturating 16-bit clamp.
inline Sample SaturateSample(int32_t v) {
  if (v > 32767) {
    return 32767;
  }
  if (v < -32768) {
    return -32768;
  }
  return static_cast<Sample>(v);
}

// Applies `gain` (centi-percent) to samples in place.
void ApplyGain(std::span<Sample> samples, int32_t gain);

// Applies a linear ramp from `from_gain` to `to_gain` across the block
// (click-free gain changes while a device is running).
void ApplyGainRamp(std::span<Sample> samples, int32_t from_gain, int32_t to_gain);

// Converts decibels (as a float, e.g. -6.0) to a centi-percent gain.
int32_t DecibelsToGain(double db);

}  // namespace aud

#endif  // SRC_DSP_GAIN_H_
