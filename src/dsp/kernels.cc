#include "src/dsp/kernels.h"

#include <cstdlib>
#include <string_view>

#include "src/dsp/alaw.h"
#include "src/dsp/gain.h"
#include "src/dsp/mulaw.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace aud {

namespace {

// ---------------------------------------------------------------------------
// Companding tables, built once from the canonical per-sample functions so
// the table-driven path is bit-identical to the reference by construction.
// The encode direction maps every 16-bit sample value (64 KiB per law);
// the decode direction maps every byte (512 B per law).
// ---------------------------------------------------------------------------

struct CompandingTables {
  uint8_t mulaw_encode[65536];
  uint8_t alaw_encode[65536];
  Sample mulaw_decode[256];
  Sample alaw_decode[256];

  CompandingTables() {
    for (int i = 0; i < 65536; ++i) {
      Sample s = static_cast<Sample>(static_cast<uint16_t>(i));
      mulaw_encode[i] = MulawEncode(s);
      alaw_encode[i] = AlawEncode(s);
    }
    for (int i = 0; i < 256; ++i) {
      mulaw_decode[i] = MulawDecode(static_cast<uint8_t>(i));
      alaw_decode[i] = AlawDecode(static_cast<uint8_t>(i));
    }
  }
};

const CompandingTables& Tables() {
  static const CompandingTables tables;
  return tables;
}

// ---------------------------------------------------------------------------
// Scalar kernels. Tight index loops over __restrict pointers: the form the
// auto-vectorizer handles, and the reference every SIMD variant must match.
// ---------------------------------------------------------------------------

// Accumulator adds wrap like the SIMD paddd instruction does (the engine
// never gets near the rails -- 64k full-scale streams -- but the kernels
// must be UB-free and bit-identical for any input the tests throw).
inline int32_t WrapAdd(int32_t a, int32_t b) {
  return static_cast<int32_t>(static_cast<uint32_t>(a) +
                              static_cast<uint32_t>(b));
}

void ScalarMixAccumulate(int32_t* __restrict acc, const Sample* __restrict src,
                         size_t n, int32_t gain) {
  if (gain == kUnityGain) {
    for (size_t i = 0; i < n; ++i) {
      acc[i] = WrapAdd(acc[i], src[i]);
    }
    return;
  }
  const int64_t g = gain;
  for (size_t i = 0; i < n; ++i) {
    acc[i] = WrapAdd(acc[i], static_cast<int32_t>(src[i] * g / kUnityGain));
  }
}

void ScalarMixAdd(int32_t* __restrict acc, const int32_t* __restrict src, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] = WrapAdd(acc[i], src[i]);
  }
}

void ScalarMixResolve(Sample* __restrict out, const int32_t* __restrict acc, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = SaturateSample(acc[i]);
  }
}

void ScalarApplyGain(Sample* samples, size_t n, int32_t gain) {
  if (gain == kUnityGain) {
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    int64_t v = static_cast<int64_t>(samples[i]) * gain / kUnityGain;
    samples[i] = SaturateSample(static_cast<int32_t>(v));
  }
}

void ScalarMulawEncode(uint8_t* __restrict out, const Sample* __restrict in, size_t n) {
  const uint8_t* table = Tables().mulaw_encode;
  for (size_t i = 0; i < n; ++i) {
    out[i] = table[static_cast<uint16_t>(in[i])];
  }
}

void ScalarMulawDecode(Sample* __restrict out, const uint8_t* __restrict in, size_t n) {
  const Sample* table = Tables().mulaw_decode;
  for (size_t i = 0; i < n; ++i) {
    out[i] = table[in[i]];
  }
}

void ScalarAlawEncode(uint8_t* __restrict out, const Sample* __restrict in, size_t n) {
  const uint8_t* table = Tables().alaw_encode;
  for (size_t i = 0; i < n; ++i) {
    out[i] = table[static_cast<uint16_t>(in[i])];
  }
}

void ScalarAlawDecode(Sample* __restrict out, const uint8_t* __restrict in, size_t n) {
  const Sample* table = Tables().alaw_decode;
  for (size_t i = 0; i < n; ++i) {
    out[i] = table[in[i]];
  }
}

constexpr KernelOps kScalarOps = {
    "scalar",        ScalarMixAccumulate, ScalarMixAdd,     ScalarMixResolve,
    ScalarApplyGain, ScalarMulawEncode,   ScalarMulawDecode, ScalarAlawEncode,
    ScalarAlawDecode,
};

// ---------------------------------------------------------------------------
// SSE2 (x86-64 baseline). The widening add and the saturating narrow are
// the profitable ops: _mm_packs_epi32 is exactly SaturateSample on 8 lanes.
// The non-unity gain path divides a 48-bit product with C++ truncation
// semantics, which has no exact SSE2 counterpart, so it falls back to the
// scalar loop — bit-identity beats lane count there.
// ---------------------------------------------------------------------------

#if defined(__SSE2__)

void Sse2MixAccumulate(int32_t* acc, const Sample* src, size_t n, int32_t gain) {
  if (gain != kUnityGain) {
    ScalarMixAccumulate(acc, src, n, gain);
    return;
  }
  size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 8 <= n; i += 8) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i sign = _mm_cmpgt_epi16(zero, v);
    __m128i lo = _mm_unpacklo_epi16(v, sign);
    __m128i hi = _mm_unpackhi_epi16(v, sign);
    __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    __m128i a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i + 4));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i), _mm_add_epi32(a0, lo));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i + 4), _mm_add_epi32(a1, hi));
  }
  for (; i < n; ++i) {
    acc[i] = WrapAdd(acc[i], src[i]);
  }
}

void Sse2MixAdd(int32_t* acc, const int32_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i), _mm_add_epi32(a, b));
  }
  for (; i < n; ++i) {
    acc[i] = WrapAdd(acc[i], src[i]);
  }
}

void Sse2MixResolve(Sample* out, const int32_t* acc, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i + 4));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_packs_epi32(lo, hi));
  }
  for (; i < n; ++i) {
    out[i] = SaturateSample(acc[i]);
  }
}

constexpr KernelOps kSse2Ops = {
    "sse2",          Sse2MixAccumulate, Sse2MixAdd,        Sse2MixResolve,
    ScalarApplyGain, ScalarMulawEncode, ScalarMulawDecode, ScalarAlawEncode,
    ScalarAlawDecode,
};

#endif  // __SSE2__

#if defined(__ARM_NEON)

void NeonMixAccumulate(int32_t* acc, const Sample* src, size_t n, int32_t gain) {
  if (gain != kUnityGain) {
    ScalarMixAccumulate(acc, src, n, gain);
    return;
  }
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    int16x8_t v = vld1q_s16(src + i);
    int32x4_t lo = vmovl_s16(vget_low_s16(v));
    int32x4_t hi = vmovl_s16(vget_high_s16(v));
    vst1q_s32(acc + i, vaddq_s32(vld1q_s32(acc + i), lo));
    vst1q_s32(acc + i + 4, vaddq_s32(vld1q_s32(acc + i + 4), hi));
  }
  for (; i < n; ++i) {
    acc[i] = WrapAdd(acc[i], src[i]);
  }
}

void NeonMixAdd(int32_t* acc, const int32_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_s32(acc + i, vaddq_s32(vld1q_s32(acc + i), vld1q_s32(src + i)));
  }
  for (; i < n; ++i) {
    acc[i] = WrapAdd(acc[i], src[i]);
  }
}

void NeonMixResolve(Sample* out, const int32_t* acc, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // vqmovn saturates int32 -> int16 exactly like SaturateSample.
    int16x4_t lo = vqmovn_s32(vld1q_s32(acc + i));
    int16x4_t hi = vqmovn_s32(vld1q_s32(acc + i + 4));
    vst1q_s16(out + i, vcombine_s16(lo, hi));
  }
  for (; i < n; ++i) {
    out[i] = SaturateSample(acc[i]);
  }
}

constexpr KernelOps kNeonOps = {
    "neon",          NeonMixAccumulate, NeonMixAdd,        NeonMixResolve,
    ScalarApplyGain, ScalarMulawEncode, ScalarMulawDecode, ScalarAlawEncode,
    ScalarAlawDecode,
};

#endif  // __ARM_NEON

const KernelOps* DetectSimd() {
#if defined(__SSE2__)
#if defined(__GNUC__) || defined(__clang__)
  if (!__builtin_cpu_supports("sse2")) {
    return nullptr;
  }
#endif
  return &kSse2Ops;
#elif defined(__ARM_NEON)
  return &kNeonOps;
#else
  return nullptr;
#endif
}

const KernelOps& Choose() {
  const KernelOps* simd = SimdKernels();
  const char* force = std::getenv("AUD_KERNELS");
  if (force != nullptr) {
    std::string_view want(force);
    if (want == "scalar") {
      return ScalarKernels();
    }
    if (simd != nullptr && want == simd->name) {
      return *simd;
    }
    return ScalarKernels();
  }
  return simd != nullptr ? *simd : ScalarKernels();
}

}  // namespace

const KernelOps& ScalarKernels() { return kScalarOps; }

const KernelOps* SimdKernels() {
  static const KernelOps* simd = DetectSimd();
  return simd;
}

const KernelOps& Kernels() {
  static const KernelOps& chosen = Choose();
  return chosen;
}

}  // namespace aud
