// ITU-T G.711 A-law companding (the European telephone companding law).

#ifndef SRC_DSP_ALAW_H_
#define SRC_DSP_ALAW_H_

#include <cstdint>
#include <span>

#include "src/common/sample.h"

namespace aud {

// Encodes one 16-bit linear sample to A-law.
uint8_t AlawEncode(Sample linear);

// Decodes one A-law byte to a 16-bit linear sample.
Sample AlawDecode(uint8_t alaw);

// Bulk conversions. Output spans must be at least as long as inputs.
void AlawEncodeBlock(std::span<const Sample> in, std::span<uint8_t> out);
void AlawDecodeBlock(std::span<const uint8_t> in, std::span<Sample> out);

}  // namespace aud

#endif  // SRC_DSP_ALAW_H_
