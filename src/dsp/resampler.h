// Linear-interpolation sample-rate converter. Used at wire boundaries when
// two virtual devices run at different rates (e.g. a 44.1 kHz player wired
// to the 8 kHz telephone line).

#ifndef SRC_DSP_RESAMPLER_H_
#define SRC_DSP_RESAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sample.h"

namespace aud {

// Stateful streaming resampler: feed input blocks, receive output blocks at
// the target rate. Keeps one sample of history so block boundaries are
// seamless.
class Resampler {
 public:
  // Both rates must be positive.
  Resampler(uint32_t in_rate_hz, uint32_t out_rate_hz);

  uint32_t in_rate_hz() const { return in_rate_; }
  uint32_t out_rate_hz() const { return out_rate_; }

  // True when no conversion is needed (rates equal).
  bool is_identity() const { return in_rate_ == out_rate_; }

  // Converts `in` and appends output samples to `out`.
  void Process(std::span<const Sample> in, std::vector<Sample>* out);

  // Expected output count for `in_samples` more input (approximate, ±1).
  int64_t OutputSizeFor(int64_t in_samples) const;

  // Clears history (stream restart).
  void Reset();

 private:
  uint32_t in_rate_;
  uint32_t out_rate_;
  // Phase of the next output sample, in units of 1/out_rate of an input
  // sample period, expressed as a fraction: position = phase_num_/out_rate_.
  int64_t phase_num_ = 0;
  Sample history_ = 0;
  bool has_history_ = false;
};

}  // namespace aud

#endif  // SRC_DSP_RESAMPLER_H_
