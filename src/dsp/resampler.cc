#include "src/dsp/resampler.h"

namespace aud {

Resampler::Resampler(uint32_t in_rate_hz, uint32_t out_rate_hz)
    : in_rate_(in_rate_hz), out_rate_(out_rate_hz) {}

void Resampler::Process(std::span<const Sample> in, std::vector<Sample>* out) {
  if (is_identity()) {
    out->insert(out->end(), in.begin(), in.end());
    return;
  }
  if (in.empty()) {
    return;
  }

  size_t start = 0;
  if (!has_history_) {
    // The very first sample seeds the interpolation history; the first
    // output equals the first input (phase 0 of the first interval).
    history_ = in[0];
    has_history_ = true;
    start = 1;
  }

  // Walk the intervals [history_, in[i]]. `phase_num_` is the position of
  // the next output inside the current interval, in units of 1/out_rate_ of
  // one input sample period. Each output advances by in_rate_ units; each
  // interval is out_rate_ units long.
  for (size_t i = start; i < in.size(); ++i) {
    Sample cur = in[i];
    while (phase_num_ < out_rate_) {
      int64_t interp =
          history_ + (static_cast<int64_t>(cur) - history_) * phase_num_ / out_rate_;
      out->push_back(static_cast<Sample>(interp));
      phase_num_ += in_rate_;
    }
    phase_num_ -= out_rate_;
    history_ = cur;
  }
}

int64_t Resampler::OutputSizeFor(int64_t in_samples) const {
  return in_samples * out_rate_ / in_rate_;
}

void Resampler::Reset() {
  phase_num_ = 0;
  has_history_ = false;
  history_ = 0;
}

}  // namespace aud
