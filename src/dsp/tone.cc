#include "src/dsp/tone.h"

#include <cmath>
#include <numbers>

namespace aud {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

SineOscillator::SineOscillator(double frequency_hz, uint32_t sample_rate_hz, double amplitude)
    : phase_step_(kTwoPi * frequency_hz / sample_rate_hz), amplitude_(amplitude) {}

void SineOscillator::Generate(size_t n, std::vector<Sample>* out) {
  for (size_t i = 0; i < n; ++i) {
    out->push_back(static_cast<Sample>(amplitude_ * 32767.0 * std::sin(phase_)));
    phase_ += phase_step_;
    if (phase_ >= kTwoPi) {
      phase_ -= kTwoPi;
    }
  }
}

void SineOscillator::Fill(std::span<Sample> out) {
  for (Sample& s : out) {
    s = static_cast<Sample>(amplitude_ * 32767.0 * std::sin(phase_));
    phase_ += phase_step_;
    if (phase_ >= kTwoPi) {
      phase_ -= kTwoPi;
    }
  }
}

DualToneOscillator::DualToneOscillator(double f1_hz, double f2_hz, uint32_t sample_rate_hz,
                                       double amplitude)
    : osc1_(f1_hz, sample_rate_hz, amplitude), osc2_(f2_hz, sample_rate_hz, amplitude) {}

void DualToneOscillator::Generate(size_t n, std::vector<Sample>* out) {
  size_t base = out->size();
  osc1_.Generate(n, out);
  scratch_.assign(n, 0);
  osc2_.Fill(scratch_);
  for (size_t i = 0; i < n; ++i) {
    int32_t v = (*out)[base + i] + scratch_[i];
    (*out)[base + i] = static_cast<Sample>(v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
  }
}

void DualToneOscillator::Fill(std::span<Sample> out) {
  osc1_.Fill(out);
  scratch_.assign(out.size(), 0);
  osc2_.Fill(scratch_);
  for (size_t i = 0; i < out.size(); ++i) {
    int32_t v = out[i] + scratch_[i];
    out[i] = static_cast<Sample>(v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
  }
}

namespace {
struct ToneSpec {
  double f1;
  double f2;
  double on_s;
  double off_s;
};

ToneSpec SpecFor(ProgressTone tone) {
  switch (tone) {
    case ProgressTone::kDialTone:
      return {350.0, 440.0, 0.0, 0.0};
    case ProgressTone::kRingback:
      return {440.0, 480.0, 2.0, 4.0};
    case ProgressTone::kBusy:
      return {480.0, 620.0, 0.5, 0.5};
    case ProgressTone::kReorder:
      return {480.0, 620.0, 0.25, 0.25};
  }
  return {350.0, 440.0, 0.0, 0.0};
}
}  // namespace

ProgressToneGenerator::ProgressToneGenerator(ProgressTone tone, uint32_t sample_rate_hz)
    : osc_(SpecFor(tone).f1, SpecFor(tone).f2, sample_rate_hz),
      rate_(sample_rate_hz),
      on_samples_(static_cast<int64_t>(SpecFor(tone).on_s * sample_rate_hz)),
      off_samples_(static_cast<int64_t>(SpecFor(tone).off_s * sample_rate_hz)) {}

void ProgressToneGenerator::Generate(size_t n, std::vector<Sample>* out) {
  if (off_samples_ == 0) {
    osc_.Generate(n, out);
    return;
  }
  int64_t period = on_samples_ + off_samples_;
  for (size_t produced = 0; produced < n;) {
    int64_t in_period = position_ % period;
    if (in_period < on_samples_) {
      size_t chunk = static_cast<size_t>(
          std::min<int64_t>(on_samples_ - in_period, static_cast<int64_t>(n - produced)));
      osc_.Generate(chunk, out);
      produced += chunk;
      position_ += chunk;
    } else {
      size_t chunk = static_cast<size_t>(
          std::min<int64_t>(period - in_period, static_cast<int64_t>(n - produced)));
      out->insert(out->end(), chunk, 0);
      produced += chunk;
      position_ += chunk;
    }
  }
}

std::vector<Sample> MakeBeep(uint32_t sample_rate_hz, int duration_ms, double frequency_hz,
                             double amplitude) {
  size_t n = static_cast<size_t>(static_cast<int64_t>(sample_rate_hz) * duration_ms / 1000);
  std::vector<Sample> beep;
  beep.reserve(n);
  SineOscillator osc(frequency_hz, sample_rate_hz, amplitude);
  osc.Generate(n, &beep);
  // 5 ms attack/decay ramps.
  size_t ramp = std::min<size_t>(sample_rate_hz / 200, n / 2);
  for (size_t i = 0; i < ramp; ++i) {
    beep[i] = static_cast<Sample>(static_cast<int64_t>(beep[i]) * i / ramp);
    size_t j = n - 1 - i;
    beep[j] = static_cast<Sample>(static_cast<int64_t>(beep[j]) * i / ramp);
  }
  return beep;
}

}  // namespace aud
