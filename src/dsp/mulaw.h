// ITU-T G.711 mu-law companding. Telephone-quality coding: 8 bits/sample,
// 8000 bytes per second at 8 kHz (paper section 1.1).

#ifndef SRC_DSP_MULAW_H_
#define SRC_DSP_MULAW_H_

#include <cstdint>
#include <span>

#include "src/common/sample.h"

namespace aud {

// Encodes one 16-bit linear sample to mu-law.
uint8_t MulawEncode(Sample linear);

// Decodes one mu-law byte to a 16-bit linear sample.
Sample MulawDecode(uint8_t mulaw);

// Bulk conversions. Output spans must be at least as long as inputs.
void MulawEncodeBlock(std::span<const Sample> in, std::span<uint8_t> out);
void MulawDecodeBlock(std::span<const uint8_t> in, std::span<Sample> out);

}  // namespace aud

#endif  // SRC_DSP_MULAW_H_
