// Mixing kernels. The server mixes streams in two places: explicit Mixer
// virtual devices (section 5.1) and the transparent mixers it inserts when
// several applications play to one speaker (section 6.1). Both reduce to
// weighted saturating accumulation over 32-bit intermediates.

#ifndef SRC_DSP_MIXER_KERNEL_H_
#define SRC_DSP_MIXER_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sample.h"

namespace aud {

// A mix accumulator sized for one engine block. Accumulate inputs, then
// Resolve to saturated 16-bit output. Reset() re-sizes for a new block
// while reusing the underlying capacity, so a long-lived accumulator
// allocates at most once per period-size change.
class MixAccumulator {
 public:
  MixAccumulator() = default;
  explicit MixAccumulator(size_t block_size) : acc_(block_size, 0) {}

  size_t size() const { return acc_.size(); }

  // Zeroes the accumulator for a new block of the same size.
  void Clear();

  // Re-sizes to `block_size` and zeroes, reusing capacity.
  void Reset(size_t block_size);

  // Adds `in` scaled by `gain` (centi-percent; kUnityGain = 1.0). Inputs
  // shorter than the block contribute silence for the remainder.
  void Accumulate(std::span<const Sample> in, int32_t gain);

  // Adds another accumulator's running sum (merging per-worker partial
  // mixes). Only min(size, other.size) frames are added.
  void AddFrom(const MixAccumulator& other);

  // Writes the saturated mix into `out` (must be at least size()).
  void Resolve(std::span<Sample> out) const;

  // Number of Accumulate calls since the last Clear/Reset (AddFrom adds
  // the other accumulator's count).
  int input_count() const { return input_count_; }

 private:
  std::vector<int32_t> acc_;
  int input_count_ = 0;
};

// One-shot convenience: mixes equally weighted inputs into out. Uses a
// thread-local scratch accumulator, so repeated calls do not allocate.
void MixEqual(std::span<const std::span<const Sample>> inputs, std::span<Sample> out);

}  // namespace aud

#endif  // SRC_DSP_MIXER_KERNEL_H_
