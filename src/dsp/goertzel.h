// Goertzel algorithm: single-bin DFT power estimation, the classical cheap
// tone detector used for DTMF decoding on general-purpose processors.

#ifndef SRC_DSP_GOERTZEL_H_
#define SRC_DSP_GOERTZEL_H_

#include <cstdint>
#include <span>

#include "src/common/sample.h"

namespace aud {

// Computes the normalized power of `frequency_hz` in `frame` sampled at
// `sample_rate_hz`. The result is scaled so that a full-scale sine at the
// target frequency yields a value near 1.0.
double GoertzelPower(std::span<const Sample> frame, double frequency_hz,
                     uint32_t sample_rate_hz);

}  // namespace aud

#endif  // SRC_DSP_GOERTZEL_H_
