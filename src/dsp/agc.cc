#include "src/dsp/agc.h"

#include <cmath>

#include "src/dsp/gain.h"

namespace aud {

AutomaticGainControl::AutomaticGainControl() : AutomaticGainControl(Options{}) {}

AutomaticGainControl::AutomaticGainControl(Options options) : options_(options) {}

void AutomaticGainControl::Process(std::span<Sample> samples) {
  for (Sample& s : samples) {
    double x = std::abs(s) / 32768.0;
    // Asymmetric envelope follower.
    if (x > envelope_) {
      envelope_ = options_.attack * envelope_ + (1.0 - options_.attack) * x;
    } else {
      envelope_ = options_.release * envelope_ + (1.0 - options_.release) * x;
    }
    if (envelope_ > options_.silence_floor) {
      double desired = options_.target_level / envelope_;
      if (desired > options_.max_gain) {
        desired = options_.max_gain;
      }
      // Glide the applied gain toward the desired gain.
      gain_ += (desired - gain_) * 0.001;
    }
    double y = s * gain_;
    s = SaturateSample(static_cast<int32_t>(std::lround(y)));
  }
}

void AutomaticGainControl::Reset() {
  envelope_ = 0.0;
  gain_ = 1.0;
}

}  // namespace aud
