// Automatic gain control. The paper lists "whether the recorder supports
// automatic gain control (AGC) during recording" as a recorder device
// attribute (section 5.1); this is the software implementation backing
// that attribute in our simulated hardware.

#ifndef SRC_DSP_AGC_H_
#define SRC_DSP_AGC_H_

#include <cstdint>
#include <span>

#include "src/common/sample.h"

namespace aud {

// Feed-forward AGC: tracks a smoothed peak envelope and scales toward a
// target level, with asymmetric attack/release so onsets are tamed quickly
// but quiet passages are boosted gradually.
class AutomaticGainControl {
 public:
  struct Options {
    // Desired output peak, as a fraction of full scale.
    double target_level = 0.5;
    // Maximum boost applied to quiet signals.
    double max_gain = 8.0;
    // Envelope smoothing coefficients per sample (closer to 1 = slower).
    double attack = 0.9;
    double release = 0.9995;
    // Below this envelope the signal is treated as silence and gain is held
    // (don't amplify noise floors).
    double silence_floor = 0.005;
  };

  AutomaticGainControl();
  explicit AutomaticGainControl(Options options);

  // Processes a block in place.
  void Process(std::span<Sample> samples);

  // Current applied gain (for attribute queries / tests).
  double current_gain() const { return gain_; }

  void Reset();

 private:
  Options options_;
  double envelope_ = 0.0;
  double gain_ = 1.0;
};

}  // namespace aud

#endif  // SRC_DSP_AGC_H_
