// Runtime-dispatched DSP kernels: the hot inner loops of the data plane
// (mix accumulate/merge/resolve, gain, G.711 companding) behind one table
// of function pointers. The scalar implementations are table-driven and
// written so the compiler can auto-vectorize them; on x86-64 an SSE2
// variant of the mix kernels is selected at first use, and on ARM a NEON
// variant. Every variant is bit-identical to the scalar reference — the
// golden tests in tests/dsp_kernels_test.cc prove it exhaustively for the
// companding tables and over randomized blocks for the mix kernels, so
// PR 1's serial/parallel determinism guarantee survives vectorization.

#ifndef SRC_DSP_KERNELS_H_
#define SRC_DSP_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "src/common/sample.h"

namespace aud {

// One dispatchable kernel set. All pointers are non-null in every variant
// (a variant that has no specialized form of an op points at the scalar
// implementation).
struct KernelOps {
  // Human-readable variant name ("scalar", "sse2", "neon").
  const char* name;

  // acc[i] += src[i] scaled by gain (centi-percent; kUnityGain passes
  // samples through unscaled). Matches MixAccumulator semantics.
  void (*mix_accumulate)(int32_t* acc, const Sample* src, size_t n, int32_t gain);

  // acc[i] += src[i] (merging per-worker partial mixes).
  void (*mix_add)(int32_t* acc, const int32_t* src, size_t n);

  // out[i] = saturate16(acc[i]).
  void (*mix_resolve)(Sample* out, const int32_t* acc, size_t n);

  // samples[i] = saturate16(samples[i] * gain / kUnityGain) in place.
  void (*apply_gain)(Sample* samples, size_t n, int32_t gain);

  // G.711 companding, table-driven (bit-identical to the per-sample
  // MulawEncode/MulawDecode/AlawEncode/AlawDecode reference functions).
  void (*mulaw_encode)(uint8_t* out, const Sample* in, size_t n);
  void (*mulaw_decode)(Sample* out, const uint8_t* in, size_t n);
  void (*alaw_encode)(uint8_t* out, const Sample* in, size_t n);
  void (*alaw_decode)(Sample* out, const uint8_t* in, size_t n);
};

// The portable scalar reference set (table-driven companding, plain loops).
const KernelOps& ScalarKernels();

// The SIMD set compiled for this target, or nullptr when none is.
const KernelOps* SimdKernels();

// The preferred set for this process: the SIMD set when the CPU supports
// it, otherwise scalar. Selected once at first call; the environment
// variable AUD_KERNELS=scalar|sse2|neon forces a variant (benchmarks use
// this to measure the scalar baseline on the same binary).
const KernelOps& Kernels();

}  // namespace aud

#endif  // SRC_DSP_KERNELS_H_
