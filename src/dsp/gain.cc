#include "src/dsp/gain.h"

#include <cmath>

#include "src/dsp/kernels.h"

namespace aud {

void ApplyGain(std::span<Sample> samples, int32_t gain) {
  if (gain == kUnityGain) {
    return;
  }
  Kernels().apply_gain(samples.data(), samples.size(), gain);
}

void ApplyGainRamp(std::span<Sample> samples, int32_t from_gain, int32_t to_gain) {
  if (samples.empty()) {
    return;
  }
  if (from_gain == to_gain) {
    ApplyGain(samples, to_gain);
    return;
  }
  int64_t n = static_cast<int64_t>(samples.size());
  for (int64_t i = 0; i < n; ++i) {
    int64_t g = from_gain + (static_cast<int64_t>(to_gain) - from_gain) * i / (n - 1 == 0 ? 1 : n - 1);
    int64_t v = static_cast<int64_t>(samples[i]) * g / kUnityGain;
    samples[i] = SaturateSample(static_cast<int32_t>(v));
  }
}

int32_t DecibelsToGain(double db) {
  double linear = std::pow(10.0, db / 20.0);
  double gain = linear * kUnityGain;
  if (gain > INT32_MAX) {
    return INT32_MAX;
  }
  if (gain < 0) {
    return 0;
  }
  return static_cast<int32_t>(std::lround(gain));
}

}  // namespace aud
