#include "src/dsp/encoding.h"

#include "src/dsp/alaw.h"
#include "src/dsp/mulaw.h"

namespace aud {

void StreamDecoder::Decode(std::span<const uint8_t> in, std::vector<Sample>* out) {
  switch (encoding_) {
    case Encoding::kMulaw8:
      for (uint8_t b : in) {
        out->push_back(MulawDecode(b));
      }
      break;
    case Encoding::kAlaw8:
      for (uint8_t b : in) {
        out->push_back(AlawDecode(b));
      }
      break;
    case Encoding::kPcm8:
      for (uint8_t b : in) {
        out->push_back(static_cast<Sample>(static_cast<int8_t>(b) << 8));
      }
      break;
    case Encoding::kPcm16: {
      size_t pairs = in.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        uint16_t v = static_cast<uint16_t>(in[2 * i]) |
                     static_cast<uint16_t>(in[2 * i + 1]) << 8;
        out->push_back(static_cast<Sample>(v));
      }
      break;
    }
    case Encoding::kAdpcm4:
      adpcm_.Decode(in, out);
      break;
  }
}

void StreamDecoder::Reset() { adpcm_.Reset(); }

void StreamEncoder::Encode(std::span<const Sample> in, std::vector<uint8_t>* out) {
  switch (encoding_) {
    case Encoding::kMulaw8:
      for (Sample s : in) {
        out->push_back(MulawEncode(s));
      }
      break;
    case Encoding::kAlaw8:
      for (Sample s : in) {
        out->push_back(AlawEncode(s));
      }
      break;
    case Encoding::kPcm8:
      for (Sample s : in) {
        out->push_back(static_cast<uint8_t>(static_cast<int8_t>(s >> 8)));
      }
      break;
    case Encoding::kPcm16:
      for (Sample s : in) {
        uint16_t v = static_cast<uint16_t>(s);
        out->push_back(static_cast<uint8_t>(v));
        out->push_back(static_cast<uint8_t>(v >> 8));
      }
      break;
    case Encoding::kAdpcm4:
      adpcm_.Encode(in, out);
      break;
  }
}

void StreamEncoder::Reset() { adpcm_.Reset(); }

int64_t SamplesInBytes(Encoding encoding, int64_t bytes) {
  switch (encoding) {
    case Encoding::kMulaw8:
    case Encoding::kAlaw8:
    case Encoding::kPcm8:
      return bytes;
    case Encoding::kPcm16:
      return bytes / 2;
    case Encoding::kAdpcm4:
      return bytes * 2;
  }
  return bytes;
}

int64_t BytesForSamples(Encoding encoding, int64_t samples) {
  switch (encoding) {
    case Encoding::kMulaw8:
    case Encoding::kAlaw8:
    case Encoding::kPcm8:
      return samples;
    case Encoding::kPcm16:
      return samples * 2;
    case Encoding::kAdpcm4:
      return (samples + 1) / 2;
  }
  return samples;
}

}  // namespace aud
