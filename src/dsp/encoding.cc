#include "src/dsp/encoding.h"

#include "src/dsp/alaw.h"
#include "src/dsp/mulaw.h"

namespace aud {

void StreamDecoder::Decode(std::span<const uint8_t> in, std::vector<Sample>* out) {
  switch (encoding_) {
    case Encoding::kMulaw8: {
      size_t off = out->size();
      out->resize(off + in.size());
      MulawDecodeBlock(in, std::span<Sample>(*out).subspan(off));
      break;
    }
    case Encoding::kAlaw8: {
      size_t off = out->size();
      out->resize(off + in.size());
      AlawDecodeBlock(in, std::span<Sample>(*out).subspan(off));
      break;
    }
    case Encoding::kPcm8: {
      size_t off = out->size();
      out->resize(off + in.size());
      Sample* __restrict dst = out->data() + off;
      const uint8_t* __restrict src = in.data();
      for (size_t i = 0; i < in.size(); ++i) {
        dst[i] = static_cast<Sample>(static_cast<int8_t>(src[i]) << 8);
      }
      break;
    }
    case Encoding::kPcm16: {
      size_t i = 0;
      if (has_pending_byte_ && !in.empty()) {
        // Complete the sample split across the previous chunk boundary.
        uint16_t v = static_cast<uint16_t>(pending_byte_) |
                     static_cast<uint16_t>(in[0]) << 8;
        out->push_back(static_cast<Sample>(v));
        has_pending_byte_ = false;
        i = 1;
      }
      size_t pairs = (in.size() - i) / 2;
      size_t off = out->size();
      out->resize(off + pairs);
      Sample* __restrict dst = out->data() + off;
      const uint8_t* __restrict src = in.data() + i;
      for (size_t p = 0; p < pairs; ++p) {
        dst[p] = static_cast<Sample>(static_cast<uint16_t>(src[2 * p]) |
                                     static_cast<uint16_t>(src[2 * p + 1]) << 8);
      }
      i += pairs * 2;
      if (i < in.size()) {
        pending_byte_ = in[i];
        has_pending_byte_ = true;
      }
      break;
    }
    case Encoding::kAdpcm4:
      adpcm_.Decode(in, out);
      break;
  }
}

void StreamDecoder::Reset() {
  adpcm_.Reset();
  has_pending_byte_ = false;
  pending_byte_ = 0;
}

void StreamEncoder::Encode(std::span<const Sample> in, std::vector<uint8_t>* out) {
  switch (encoding_) {
    case Encoding::kMulaw8: {
      size_t off = out->size();
      out->resize(off + in.size());
      MulawEncodeBlock(in, std::span<uint8_t>(*out).subspan(off));
      break;
    }
    case Encoding::kAlaw8: {
      size_t off = out->size();
      out->resize(off + in.size());
      AlawEncodeBlock(in, std::span<uint8_t>(*out).subspan(off));
      break;
    }
    case Encoding::kPcm8: {
      size_t off = out->size();
      out->resize(off + in.size());
      uint8_t* __restrict dst = out->data() + off;
      const Sample* __restrict src = in.data();
      for (size_t i = 0; i < in.size(); ++i) {
        dst[i] = static_cast<uint8_t>(static_cast<int8_t>(src[i] >> 8));
      }
      break;
    }
    case Encoding::kPcm16: {
      size_t off = out->size();
      out->resize(off + in.size() * 2);
      uint8_t* __restrict dst = out->data() + off;
      const Sample* __restrict src = in.data();
      for (size_t i = 0; i < in.size(); ++i) {
        uint16_t v = static_cast<uint16_t>(src[i]);
        dst[2 * i] = static_cast<uint8_t>(v);
        dst[2 * i + 1] = static_cast<uint8_t>(v >> 8);
      }
      break;
    }
    case Encoding::kAdpcm4:
      adpcm_.Encode(in, out);
      break;
  }
}

void StreamEncoder::Reset() { adpcm_.Reset(); }

int64_t SamplesInBytes(Encoding encoding, int64_t bytes) {
  return WholeSamplesInBytes(encoding, bytes);
}

int64_t BytesForSamples(Encoding encoding, int64_t samples) {
  return EncodedBytesForSamples(encoding, samples);
}

}  // namespace aud
