// Tone generation: sine oscillators, dual-frequency tones, and the North
// American call-progress tones (dial tone, ringback, busy) used by the
// telephone-line simulation, plus the answering-machine "beep".

#ifndef SRC_DSP_TONE_H_
#define SRC_DSP_TONE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sample.h"

namespace aud {

// Streaming sine oscillator with continuous phase across blocks.
class SineOscillator {
 public:
  SineOscillator(double frequency_hz, uint32_t sample_rate_hz, double amplitude = 0.5);

  // Appends `n` samples to `out`.
  void Generate(size_t n, std::vector<Sample>* out);

  // Fills `out` in place (overwrites).
  void Fill(std::span<Sample> out);

  void set_amplitude(double amplitude) { amplitude_ = amplitude; }

 private:
  double phase_ = 0.0;
  double phase_step_;
  double amplitude_;
};

// Sum of two sines (call-progress and DTMF tones are all dual-frequency).
class DualToneOscillator {
 public:
  DualToneOscillator(double f1_hz, double f2_hz, uint32_t sample_rate_hz,
                     double amplitude = 0.35);

  void Generate(size_t n, std::vector<Sample>* out);
  void Fill(std::span<Sample> out);

 private:
  SineOscillator osc1_;
  SineOscillator osc2_;
  std::vector<Sample> scratch_;
};

// Call-progress tone kinds (Bell System precise tone plan).
enum class ProgressTone : uint8_t {
  kDialTone = 0,   // 350 + 440 Hz continuous
  kRingback = 1,   // 440 + 480 Hz, 2 s on / 4 s off
  kBusy = 2,       // 480 + 620 Hz, 0.5 s on / 0.5 s off
  kReorder = 3,    // 480 + 620 Hz, 0.25 s on / 0.25 s off
};

// Streaming generator for a cadenced call-progress tone.
class ProgressToneGenerator {
 public:
  ProgressToneGenerator(ProgressTone tone, uint32_t sample_rate_hz);

  // Appends `n` samples (tone or cadence silence) to `out`.
  void Generate(size_t n, std::vector<Sample>* out);

 private:
  DualToneOscillator osc_;
  uint32_t rate_;
  int64_t on_samples_;
  int64_t off_samples_;  // 0 => continuous
  int64_t position_ = 0;
};

// Generates a single beep (1 kHz by default) of `duration_ms`, with a short
// attack/decay ramp to avoid clicks. Returns the samples.
std::vector<Sample> MakeBeep(uint32_t sample_rate_hz, int duration_ms = 250,
                             double frequency_hz = 1000.0, double amplitude = 0.5);

}  // namespace aud

#endif  // SRC_DSP_TONE_H_
