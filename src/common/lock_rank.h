// Runtime lock-rank enforcement (DESIGN.md decision 9, "lock inventory &
// ordering"). Every production aud::Mutex declares its place in the global
// lock hierarchy at construction; when AUD_LOCK_RANK_CHECKS is on (the
// default — see the AUD_LOCK_RANK CMake option) a per-thread held-lock
// stack asserts that acquisition order is strictly ascending in rank and
// aborts, naming both locks and ranks, on any violation. This turns the
// DESIGN.md lock table from documentation into an invariant executed by
// every test in every lane (default, TSan, ASan+UBSan).
//
// Rules enforced on each acquisition, against the most recent still-held
// lock of the acquiring thread:
//   1. Recursion: re-acquiring a mutex already held by this thread aborts.
//   2. Ascending rank: the new lock's rank must be strictly greater than
//      the held lock's rank...
//   3. ...except the same-rank carve-out: ranks flagged by
//      LockRankAllowsSameRank (only kEngineRoot) may be acquired repeatedly
//      at the same rank in strictly ascending order-key order. This is the
//      IslandRootLocks shape: the epoch fan-out takes every root engine
//      lock of an island in ascending LOUD-id order (server_state.cc).
//      All other same-rank pairs abort — which is exactly the documented
//      "never held together" invariant for the rank-2 leaf group.
//
// The numeric ranks below ARE the DESIGN.md lock table; tools/audlint
// cross-references the two (CheckLockRanks) so the code and the doc cannot
// drift apart. Renumbering a rank means updating both, in one commit.

#ifndef SRC_COMMON_LOCK_RANK_H_
#define SRC_COMMON_LOCK_RANK_H_

#include <cstdint>

namespace aud {

// The global lock hierarchy, outermost first. A thread holding a lock of
// rank n may only acquire locks of strictly greater rank (see the same-rank
// carve-out above). Equal values are deliberate: they declare locks that
// must NEVER be held together (enforced at runtime), not interchangeable
// ones. audlint enforces that this enum and the DESIGN.md lock table agree.
enum class LockRank : int {
  kUnranked = -1,      // exempt from checking (test-local/ad-hoc mutexes)
  kServerState = 0,    // AudioServer::mu_ — the "big lock"
  kEngineRoot = 1,     // Loud::engine_mu_ — per-root engine shard (same-rank
                       // multi-acquire in ascending LOUD-id order)
  kEnginePool = 2,     // EnginePool::mu_ — tick worker pool
  kEgressQueue = 2,    // EgressQueue::mu_ — per-connection outbound queue
  kDecodedCache = 2,   // DecodedCache::mu_ — decoded-PCM LRU cache
  kTraceRegistry = 2,  // obs::TraceRegistry::mu_ — ring registration list
  kEventLoop = 2,      // EventLoop::mu_ — pending interest-change queue
  kTraceRing = 3,      // obs::TraceRing::mu_ — per-thread trace ring
  kAlibWrite = 4,      // AudioConnection::write_mu_ — client frame writes
  kAlibQueue = 4,      // AudioConnection::queue_mu_ — client reply queues
  kPipeChannel = 5,    // PipeChannel::mu_ — in-memory transport byte queue
  kClock = 6,          // VirtualClock::mu_ — test clock advance/sleep
  kLogging = 7,        // g_log_mu (logging.cc) — stderr serialization, leaf
};

// Human-readable enumerator name ("kEngineRoot") for abort diagnostics.
const char* LockRankName(LockRank rank);

// Ranks that may be acquired repeatedly at the same rank, in strictly
// ascending order-key order (the IslandRootLocks carve-out).
constexpr bool LockRankAllowsSameRank(LockRank rank) {
  return rank == LockRank::kEngineRoot;
}

namespace lockrank {

// Called by aud::Mutex before blocking on the underlying lock. Validates
// the acquisition against the calling thread's held-lock stack and pushes
// the new entry; aborts with both lock names and ranks on violation.
// `order` disambiguates same-rank acquisitions (LOUD id for kEngineRoot).
void OnAcquire(const void* mu, LockRank rank, uint64_t order, const char* name);

// Called by aud::Mutex after releasing. Removes the entry from the calling
// thread's stack (releases need not be LIFO; the stack stays rank-sorted
// because every push was validated against the then-top).
void OnRelease(const void* mu);

// Number of ranked locks the calling thread currently holds (tests).
int HeldCount();

}  // namespace lockrank
}  // namespace aud

#endif  // SRC_COMMON_LOCK_RANK_H_
