// Sample and audio-format vocabulary shared by the DSP, hardware and server
// layers. The engine's canonical in-memory representation is 16-bit signed
// linear PCM ("Sample"); encodings exist at sound-storage and wire-type
// boundaries (section 5.6: a sound's type is the tuple (encoding,
// samplesize, samplerate)).

#ifndef SRC_COMMON_SAMPLE_H_
#define SRC_COMMON_SAMPLE_H_

#include <cstdint>
#include <string_view>

namespace aud {

// Canonical in-engine sample: 16-bit signed linear PCM, mono.
using Sample = int16_t;

// Audio data encodings supported below the application (section 2:
// "multiple data representations at a level below the application").
// Values are wire-stable.
enum class Encoding : uint8_t {
  // 8-bit mu-law companded (telephone quality, 8000 bytes/sec at 8 kHz).
  kMulaw8 = 0,
  // 8-bit A-law companded.
  kAlaw8 = 1,
  // 8-bit signed linear PCM.
  kPcm8 = 2,
  // 16-bit signed linear PCM, native byte order in memory, little-endian on
  // the wire.
  kPcm16 = 3,
  // 4-bit IMA ADPCM ("can reduce audio data rates by about one half" --
  // paper footnote 5 describes 2:1 ADPCM relative to 8-bit companding).
  kAdpcm4 = 4,
};

// Human-readable encoding name.
std::string_view EncodingName(Encoding encoding);

// Exact bytes-per-sample ratio for an encoding: a sample occupies
// num/den bytes. ADPCM packs two samples per byte (num=1, den=2), so size
// math must stay rational — a floating 0.5 rounds the wrong way at odd
// sample counts and drifts in cumulative hot-path arithmetic.
struct ByteRatio {
  int64_t num = 1;
  int64_t den = 1;
};

inline constexpr ByteRatio BytesPerSampleRatio(Encoding encoding) {
  switch (encoding) {
    case Encoding::kMulaw8:
    case Encoding::kAlaw8:
    case Encoding::kPcm8:
      return {1, 1};
    case Encoding::kPcm16:
      return {2, 1};
    case Encoding::kAdpcm4:
      return {1, 2};
  }
  return {1, 1};
}

// Bytes needed to hold `samples` whole samples (rounded up at ADPCM
// half-byte boundaries: an odd trailing sample still occupies a byte).
inline constexpr int64_t EncodedBytesForSamples(Encoding encoding, int64_t samples) {
  ByteRatio r = BytesPerSampleRatio(encoding);
  return (samples * r.num + r.den - 1) / r.den;
}

// Whole samples fully contained in `bytes` bytes (rounded down: a trailing
// odd PCM16 byte holds no complete sample; an ADPCM byte holds two).
inline constexpr int64_t WholeSamplesInBytes(Encoding encoding, int64_t bytes) {
  ByteRatio r = BytesPerSampleRatio(encoding);
  return bytes * r.den / r.num;
}

// A sound/wire data type: the paper's (encoding, samplesize, samplerate)
// tuple. Sample size is implied by the encoding; we keep the rate explicit.
struct AudioFormat {
  Encoding encoding = Encoding::kMulaw8;
  uint32_t sample_rate_hz = 8000;

  bool operator==(const AudioFormat&) const = default;

  // Exact data rate as a rational: bytes/sec = num/den. For every supported
  // encoding the rate divides evenly except 4-bit ADPCM at odd rates.
  ByteRatio BytesPerSecondRatio() const {
    ByteRatio r = BytesPerSampleRatio(encoding);
    return {r.num * sample_rate_hz, r.den};
  }

  // Data rate in whole bytes per second, rounded up (a partial trailing
  // byte still has to move).
  int64_t BytesPerSecond() const {
    ByteRatio r = BytesPerSecondRatio();
    return (r.num + r.den - 1) / r.den;
  }

  // Exact byte count for `samples` samples in this format.
  int64_t BytesForSamples(int64_t samples) const {
    return EncodedBytesForSamples(encoding, samples);
  }
};

// Telephone-quality default: 8 kHz mu-law, 8000 bytes/second (section 1.1).
inline constexpr AudioFormat kTelephoneFormat{Encoding::kMulaw8, 8000};

// Common rates.
inline constexpr uint32_t kTelephoneRateHz = 8000;
inline constexpr uint32_t kCdRateHz = 44100;

}  // namespace aud

#endif  // SRC_COMMON_SAMPLE_H_
