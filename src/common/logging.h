// Minimal leveled logging. Quiet by default (warnings and errors only) so
// tests and benches stay readable; the server binary raises verbosity with
// --verbose.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <vector>

namespace aud {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr with a level tag. Thread-safe.
void LogMessage(LogLevel level, const std::string& message);

// The most recent emitted log lines (formatted exactly as printed), oldest
// first. Every emitted line enters the ring regardless of level filtering
// of future lines; capacity is fixed (see logging.cc). Feeds the flight
// recorder's post-mortem dump.
std::vector<std::string> RecentLogLines(size_t max_lines = 64);

// Stream-style helper: LogLine(LogLevel::kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace aud

#endif  // SRC_COMMON_LOGGING_H_
