// Error codes and a lightweight Status/Result vocabulary used across the
// netaudio libraries. The codes mirror the asynchronous protocol errors of
// the audio protocol (section 4.1 of the paper): a request may fail long
// after it was issued, so every code here is also wire-encodable.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace aud {

// Protocol-visible error codes. Values are part of the wire format; append
// only.
enum class ErrorCode : uint8_t {
  kOk = 0,
  // A request referenced an id that names no live object.
  kBadResource = 1,
  // Request arguments were malformed or out of range.
  kBadValue = 2,
  // A wire's endpoint types are incompatible (section 5.2).
  kBadMatch = 3,
  // No physical device satisfies the virtual device's attributes (5.3).
  kNoDevice = 4,
  // The device is held exclusively by another LOUD (5.8).
  kDeviceBusy = 5,
  // Operation is illegal in the object's current state (e.g. command to an
  // unmapped LOUD, wiring a mapped LOUD).
  kBadState = 6,
  // Attempt to wire across hard-wired physical constraints (5.2).
  kBadWiring = 7,
  // Resource-id allocation collided or exhausted.
  kBadIdChoice = 8,
  // Request opcode unknown to this server.
  kBadRequest = 9,
  // Named sound/catalogue entry does not exist.
  kBadName = 10,
  // Sound data access out of bounds.
  kBadAccess = 11,
  // Server resource exhaustion.
  kAlloc = 12,
  // Queue command illegal (e.g. CoEnd without CoBegin).
  kBadQueue = 13,
  // Transport-level failure (connection lost, framing violated).
  kConnection = 14,
  // Implementation limit reached (attribute list too long, etc.).
  kLimit = 15,
  // A blocking round-trip exceeded its client-side deadline (the request
  // may still execute on the server; only the wait was abandoned).
  kTimeout = 16,
  // The connection exceeded its token-bucket request or ingress-byte rate
  // and the request was dropped without dispatch (soft limit policy; the
  // hard policy disconnects instead of answering).
  kRateLimited = 17,
  // The connection hit one of its per-client resource quotas (live
  // devices, stored sound bytes, concurrent started queues).
  kQuotaExceeded = 18,
};

// Human-readable name for an ErrorCode, for logs and test failures.
std::string_view ErrorCodeName(ErrorCode code);

// A success-or-error result carrying an optional detail message. Cheap to
// copy on the success path (no allocation). Class-level [[nodiscard]]: a
// dropped Status is a swallowed protocol error, so every Status-returning
// API (Alib veneer, wire decode, server internals) warns on an ignored
// result and the -Werror=unused-result lanes refuse to build it.
class [[nodiscard]] Status {
 public:
  // Success.
  Status() = default;
  // Error with code and optional context message.
  explicit Status(ErrorCode code, std::string message = {})
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Formats "CODE: message" for diagnostics.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// A value-or-Status result. Holds exactly one of the two. [[nodiscard]]
// for the same reason as Status: discarding one drops an error code.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value: `return value;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  // Implicit from error status: `return Status(...)`. Must not be OK.
  Result(Status status) : data_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(data_);
  }

  // Precondition: ok().
  T& value() { return std::get<T>(data_); }
  const T& value() const { return std::get<T>(data_); }

  // Moves the value out. Precondition: ok().
  T take() { return std::move(std::get<T>(data_)); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace aud

#endif  // SRC_COMMON_STATUS_H_
