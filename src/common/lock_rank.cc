#include "src/common/lock_rank.h"

#include <cstdio>
#include <cstdlib>

namespace aud {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "kUnranked";
    case LockRank::kServerState:
      return "kServerState";
    case LockRank::kEngineRoot:
      return "kEngineRoot";
    case LockRank::kEnginePool:
      return "kEnginePool";
    // kEgressQueue/kDecodedCache/kTraceRegistry alias kEnginePool's value;
    // the switch can only name the first enumerator of the shared rank, so
    // diagnostics carry the per-mutex name string alongside the rank.
    case LockRank::kTraceRing:
      return "kTraceRing";
    case LockRank::kAlibWrite:
      return "kAlibWrite";
    case LockRank::kPipeChannel:
      return "kPipeChannel";
    case LockRank::kClock:
      return "kClock";
    case LockRank::kLogging:
      return "kLogging";
  }
  return "kUnknown";
}

namespace lockrank {

namespace {

// Per-thread stack of held ranked locks. A fixed array instead of a
// std::vector: OnAcquire runs on every Lock() in every lane, and a POD TLS
// array needs no guarded dynamic initialization or teardown ordering
// against static-destruction-time logging.
constexpr int kMaxHeld = 64;

struct HeldLock {
  const void* mu;
  int rank;
  uint64_t order;
  const char* name;
};

thread_local HeldLock tls_held[kMaxHeld];
thread_local int tls_held_count = 0;

[[noreturn]] void Abort(const char* what, const HeldLock& held, int new_rank,
                        uint64_t new_order, const char* new_name) {
  std::fprintf(stderr,
               "lock-rank violation (%s): acquiring %s (rank %d, order %llu) "
               "while holding %s (rank %d, order %llu)\n",
               what, new_name, new_rank,
               static_cast<unsigned long long>(new_order), held.name, held.rank,
               static_cast<unsigned long long>(held.order));
  std::abort();
}

}  // namespace

void OnAcquire(const void* mu, LockRank rank, uint64_t order, const char* name) {
  if (rank == LockRank::kUnranked) {
    return;
  }
  const int new_rank = static_cast<int>(rank);
  for (int i = 0; i < tls_held_count; ++i) {
    if (tls_held[i].mu == mu) {
      Abort("recursive acquisition", tls_held[i], new_rank, order, name);
    }
  }
  if (tls_held_count > 0) {
    // Every prior push was validated against the then-newest entry, so the
    // stack is non-decreasing in rank and the newest entry is the maximum.
    const HeldLock& top = tls_held[tls_held_count - 1];
    const bool ascending_rank = new_rank > top.rank;
    const bool same_rank_ok = new_rank == top.rank &&
                              LockRankAllowsSameRank(rank) && order > top.order;
    if (!ascending_rank && !same_rank_ok) {
      Abort("out-of-order acquisition", top, new_rank, order, name);
    }
  }
  if (tls_held_count >= kMaxHeld) {
    std::fprintf(stderr,
                 "lock-rank violation (held-lock stack overflow): acquiring %s "
                 "with %d locks already held\n",
                 name, tls_held_count);
    std::abort();
  }
  tls_held[tls_held_count++] = {mu, new_rank, order, name};
}

void OnRelease(const void* mu) {
  // Search newest-first: releases are usually LIFO, but IslandRootLocks
  // releases in reverse and MutexLock::Unlock may release mid-stack.
  for (int i = tls_held_count - 1; i >= 0; --i) {
    if (tls_held[i].mu == mu) {
      for (int j = i; j + 1 < tls_held_count; ++j) {
        tls_held[j] = tls_held[j + 1];
      }
      --tls_held_count;
      return;
    }
  }
  // Unranked mutexes never call in; a release without a matching acquire
  // means the entry was dropped, which cannot happen short of memory
  // corruption — ignore rather than abort so release paths stay noexcept.
}

int HeldCount() { return tls_held_count; }

}  // namespace lockrank
}  // namespace aud
