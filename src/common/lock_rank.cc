#include "src/common/lock_rank.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aud {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "kUnranked";
    case LockRank::kServerState:
      return "kServerState";
    case LockRank::kEngineRoot:
      return "kEngineRoot";
    case LockRank::kEnginePool:
      return "kEnginePool";
    // kEgressQueue/kDecodedCache/kTraceRegistry alias kEnginePool's value;
    // the switch can only name the first enumerator of the shared rank, so
    // diagnostics carry the per-mutex name string alongside the rank.
    case LockRank::kTraceRing:
      return "kTraceRing";
    case LockRank::kAlibWrite:
      return "kAlibWrite";
    case LockRank::kPipeChannel:
      return "kPipeChannel";
    case LockRank::kClock:
      return "kClock";
    case LockRank::kLogging:
      return "kLogging";
  }
  return "kUnknown";
}

namespace lockrank {

namespace {

// Per-thread stack of held ranked locks. The common path is a fixed POD
// TLS array (no guarded dynamic initialization, no teardown ordering
// against static-destruction-time logging); threads that legitimately hold
// more — the epoch fan-out takes one engine shard lock per island root, so
// the serial engine's held count scales with the number of active clients
// — grow into a malloc'd overflow block freed at thread exit.
constexpr int kInlineHeld = 64;

struct HeldLock {
  const void* mu;
  int rank;
  uint64_t order;
  const char* name;
};

thread_local HeldLock tls_inline[kInlineHeld];
thread_local HeldLock* tls_overflow = nullptr;  // nullptr = inline storage
thread_local int tls_overflow_capacity = 0;
thread_local int tls_held_count = 0;

HeldLock* Held() { return tls_overflow != nullptr ? tls_overflow : tls_inline; }

int Capacity() {
  return tls_overflow != nullptr ? tls_overflow_capacity : kInlineHeld;
}

// Frees the overflow block at thread exit. Only odr-used from Grow(), so
// threads that never exceed kInlineHeld stay on the pure-POD path.
struct OverflowGuard {
  ~OverflowGuard() {
    std::free(tls_overflow);
    tls_overflow = nullptr;
    tls_overflow_capacity = 0;
  }
};

void Grow(const char* name) {
  thread_local OverflowGuard guard;
  (void)guard;
  const int new_capacity = Capacity() * 2;
  auto* grown = static_cast<HeldLock*>(
      std::malloc(sizeof(HeldLock) * static_cast<size_t>(new_capacity)));
  if (grown == nullptr) {
    std::fprintf(stderr,
                 "lock-rank checker: out of memory growing the held-lock "
                 "stack past %d while acquiring %s\n",
                 tls_held_count, name);
    std::abort();
  }
  std::memcpy(grown, Held(), sizeof(HeldLock) * static_cast<size_t>(tls_held_count));
  std::free(tls_overflow);
  tls_overflow = grown;
  tls_overflow_capacity = new_capacity;
}

[[noreturn]] void Abort(const char* what, const HeldLock& held, int new_rank,
                        uint64_t new_order, const char* new_name) {
  std::fprintf(stderr,
               "lock-rank violation (%s): acquiring %s (rank %d, order %llu) "
               "while holding %s (rank %d, order %llu)\n",
               what, new_name, new_rank,
               static_cast<unsigned long long>(new_order), held.name, held.rank,
               static_cast<unsigned long long>(held.order));
  std::abort();
}

}  // namespace

void OnAcquire(const void* mu, LockRank rank, uint64_t order, const char* name) {
  if (rank == LockRank::kUnranked) {
    return;
  }
  const int new_rank = static_cast<int>(rank);
  HeldLock* held = Held();
  // The explicit recursion scan is O(held count); run it only while the
  // stack is small. Past the inline window the ordering check below still
  // rejects re-acquisition — a held mutex presents the same (rank, order)
  // again, which can satisfy neither strictly-ascending rank nor
  // strictly-ascending order against the stack top — just with the generic
  // "out-of-order" message instead of the targeted one.
  if (tls_held_count <= kInlineHeld) {
    for (int i = 0; i < tls_held_count; ++i) {
      if (held[i].mu == mu) {
        Abort("recursive acquisition", held[i], new_rank, order, name);
      }
    }
  }
  if (tls_held_count > 0) {
    // Every prior push was validated against the then-newest entry, so the
    // stack is non-decreasing in rank and the newest entry is the maximum.
    const HeldLock& top = held[tls_held_count - 1];
    const bool ascending_rank = new_rank > top.rank;
    const bool same_rank_ok = new_rank == top.rank &&
                              LockRankAllowsSameRank(rank) && order > top.order;
    if (!ascending_rank && !same_rank_ok) {
      Abort("out-of-order acquisition", top, new_rank, order, name);
    }
  }
  if (tls_held_count >= Capacity()) {
    Grow(name);
    held = Held();
  }
  held[tls_held_count++] = {mu, new_rank, order, name};
}

void OnRelease(const void* mu) {
  // Search newest-first: releases are usually LIFO, but IslandRootLocks
  // releases in reverse and MutexLock::Unlock may release mid-stack.
  HeldLock* held = Held();
  for (int i = tls_held_count - 1; i >= 0; --i) {
    if (held[i].mu == mu) {
      for (int j = i; j + 1 < tls_held_count; ++j) {
        held[j] = held[j + 1];
      }
      --tls_held_count;
      return;
    }
  }
  // Unranked mutexes never call in; a release without a matching acquire
  // means the entry was dropped, which cannot happen short of memory
  // corruption — ignore rather than abort so release paths stay noexcept.
}

int HeldCount() { return tls_held_count; }

}  // namespace lockrank
}  // namespace aud
