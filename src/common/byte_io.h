// Little-endian byte serialization primitives used by the wire protocol.
// The protocol is defined as a stream of 8-bit bytes (section 4.1); all
// multi-byte quantities are little-endian on the wire regardless of host
// order, so readers/writers go through these helpers.

#ifndef SRC_COMMON_BYTE_IO_H_
#define SRC_COMMON_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace aud {

// Appends little-endian encoded values to a byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  // Writes into an existing buffer (appended at the end).
  explicit ByteWriter(std::vector<uint8_t>* out) : external_(out) {}

  void WriteU8(uint8_t v) { buf().push_back(v); }
  void WriteU16(uint16_t v) {
    buf().push_back(static_cast<uint8_t>(v));
    buf().push_back(static_cast<uint8_t>(v >> 8));
  }
  void WriteU32(uint32_t v) {
    WriteU16(static_cast<uint16_t>(v));
    WriteU16(static_cast<uint16_t>(v >> 16));
  }
  void WriteU64(uint64_t v) {
    WriteU32(static_cast<uint32_t>(v));
    WriteU32(static_cast<uint32_t>(v >> 32));
  }
  void WriteI16(int16_t v) { WriteU16(static_cast<uint16_t>(v)); }
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

  // Length-prefixed (u32) string.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteBytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }

  // Raw bytes, no length prefix.
  void WriteBytes(std::span<const uint8_t> data) {
    buf().insert(buf().end(), data.begin(), data.end());
  }

  // Length-prefixed (u32) byte blob.
  void WriteBlob(std::span<const uint8_t> data) {
    WriteU32(static_cast<uint32_t>(data.size()));
    WriteBytes(data);
  }

  // Patches a previously written u32 at `offset` (for length back-fill).
  void PatchU32(size_t offset, uint32_t v) {
    buf()[offset] = static_cast<uint8_t>(v);
    buf()[offset + 1] = static_cast<uint8_t>(v >> 8);
    buf()[offset + 2] = static_cast<uint8_t>(v >> 16);
    buf()[offset + 3] = static_cast<uint8_t>(v >> 24);
  }

  size_t size() const { return external_ ? external_->size() : own_.size(); }
  const std::vector<uint8_t>& bytes() const { return external_ ? *external_ : own_; }
  std::vector<uint8_t> Take() { return std::move(own_); }

 private:
  std::vector<uint8_t>& buf() { return external_ ? *external_ : own_; }

  std::vector<uint8_t> own_;
  std::vector<uint8_t>* external_ = nullptr;
};

// Reads little-endian values from a byte span. Over-reads are reported via
// ok() turning false and zero values returned, so a malformed message can
// never read out of bounds; callers check ok() once at the end of parsing.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  uint8_t ReadU8() {
    if (!Require(1)) {
      return 0;
    }
    return data_[pos_++];
  }
  uint16_t ReadU16() {
    if (!Require(2)) {
      return 0;
    }
    uint16_t v = static_cast<uint16_t>(data_[pos_]) |
                 static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  uint32_t ReadU32() {
    uint32_t lo = ReadU16();
    uint32_t hi = ReadU16();
    return lo | hi << 16;
  }
  uint64_t ReadU64() {
    uint64_t lo = ReadU32();
    uint64_t hi = ReadU32();
    return lo | hi << 32;
  }
  int16_t ReadI16() { return static_cast<int16_t>(ReadU16()); }
  int32_t ReadI32() { return static_cast<int32_t>(ReadU32()); }
  int64_t ReadI64() { return static_cast<int64_t>(ReadU64()); }

  std::string ReadString() {
    uint32_t len = ReadU32();
    if (!Require(len)) {
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<uint8_t> ReadBlob() {
    uint32_t len = ReadU32();
    if (!Require(len)) {
      return {};
    }
    std::vector<uint8_t> out(data_.begin() + pos_, data_.begin() + pos_ + len);
    pos_ += len;
    return out;
  }

  // Returns a view of n raw bytes without copying.
  std::span<const uint8_t> ReadBytes(size_t n) {
    if (!Require(n)) {
      return {};
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  bool Require(size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return ok_;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace aud

#endif  // SRC_COMMON_BYTE_IO_H_
