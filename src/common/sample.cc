#include "src/common/sample.h"

namespace aud {

std::string_view EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kMulaw8:
      return "mulaw8";
    case Encoding::kAlaw8:
      return "alaw8";
    case Encoding::kPcm8:
      return "pcm8";
    case Encoding::kPcm16:
      return "pcm16";
    case Encoding::kAdpcm4:
      return "adpcm4";
  }
  return "unknown";
}

}  // namespace aud
