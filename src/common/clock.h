// Clock abstractions. The paper's footnote 8 observes that the server CPU
// and the CODEC may not share a time base ("clock skew is a problem"), so
// the engine never assumes a single clock: each hardware device carries its
// own Clock, and command queues ask devices for completion times instead of
// computing them.
//
// Two implementations: RealClock (wall time) for interactive/bench use and
// VirtualClock (manually advanced) for deterministic tests. VirtualClock can
// apply a rate skew to model a CODEC crystal that drifts from the host.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

#include "src/common/thread_annotations.h"

namespace aud {

// Time since an arbitrary epoch, in microseconds. All engine scheduling is
// done in Ticks.
using Ticks = int64_t;

inline constexpr Ticks kTicksPerSecond = 1'000'000;
inline constexpr Ticks kTicksPerMillisecond = 1'000;

// Converts a sample count at `rate_hz` to Ticks (rounding down).
inline constexpr Ticks SamplesToTicks(int64_t samples, uint32_t rate_hz) {
  return samples * kTicksPerSecond / rate_hz;
}

// Converts Ticks to a sample count at `rate_hz` (rounding down).
inline constexpr int64_t TicksToSamples(Ticks ticks, uint32_t rate_hz) {
  return ticks * rate_hz / kTicksPerSecond;
}

// Monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;

  // Current time on this clock.
  virtual Ticks Now() const = 0;

  // Blocks until Now() >= deadline (RealClock sleeps; VirtualClock waits for
  // another thread to advance time).
  virtual void SleepUntil(Ticks deadline) = 0;
};

// Wall-clock implementation over std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  RealClock();

  Ticks Now() const override;
  void SleepUntil(Ticks deadline) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

// Deterministic test clock. Time moves only when Advance()/AdvanceTo() is
// called. A skew factor (parts-per-million offset from nominal) models a
// device crystal running fast or slow relative to the host clock driving it.
class VirtualClock : public Clock {
 public:
  // `skew_ppm` > 0 runs this clock fast: advancing the nominal input by T
  // advances this clock by T * (1 + skew_ppm/1e6).
  explicit VirtualClock(int64_t skew_ppm = 0) : skew_ppm_(skew_ppm) {}

  Ticks Now() const override;
  void SleepUntil(Ticks deadline) override;

  // Advances this clock by `nominal` host ticks, applying skew, and wakes
  // sleepers.
  void Advance(Ticks nominal);

  // Advances so that Now() == t (no-op if t is in the past).
  void AdvanceTo(Ticks t);

 private:
  mutable Mutex mu_{LockRank::kClock, "VirtualClock::mu_"};
  CondVar cv_;
  Ticks now_ AUD_GUARDED_BY(mu_) = 0;
  int64_t skew_ppm_;
};

}  // namespace aud

#endif  // SRC_COMMON_CLOCK_H_
