// Clang Thread Safety Analysis shim: an annotated aud::Mutex / MutexLock /
// CondVar vocabulary that every locking subsystem uses instead of raw
// std::mutex, so `clang++ -Wthread-safety -Werror` (the AUD_THREAD_SAFETY
// CMake option / CI lane) statically proves the lock discipline that PRs 1-2
// could only check dynamically under TSan. Under GCC (which has no thread
// safety analysis) the attributes expand to nothing and the wrappers compile
// down to the std primitives they hold.
//
// The lock hierarchy these types participate in is documented in DESIGN.md
// decision 9 ("lock inventory & ordering"); the analysis checks acquisition
// and guarded-field access per translation unit, the hierarchy doc covers
// cross-object ordering that the analysis cannot see.

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/lock_rank.h"

#if defined(__clang__) && (!defined(SWIG))
#define AUD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AUD_THREAD_ANNOTATION(x)  // no-op under GCC/MSVC
#endif

// A type that acts as a lock (capability). Instances can be acquired and
// released and can guard data.
#define AUD_CAPABILITY(x) AUD_THREAD_ANNOTATION(capability(x))

// An RAII type whose constructor acquires and destructor releases.
#define AUD_SCOPED_CAPABILITY AUD_THREAD_ANNOTATION(scoped_lockable)

// Data member readable/writable only while holding the given capability.
#define AUD_GUARDED_BY(x) AUD_THREAD_ANNOTATION(guarded_by(x))

// Pointer member whose *pointee* is guarded by the given capability.
#define AUD_PT_GUARDED_BY(x) AUD_THREAD_ANNOTATION(pt_guarded_by(x))

// Function-level contracts: the caller must hold / must not hold.
#define AUD_REQUIRES(...) \
  AUD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define AUD_EXCLUDES(...) AUD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Function-level effects: acquires / releases / conditionally acquires.
#define AUD_ACQUIRE(...) \
  AUD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AUD_RELEASE(...) \
  AUD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define AUD_TRY_ACQUIRE(...) \
  AUD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Documented acquisition order between mutex members of one object.
#define AUD_ACQUIRED_BEFORE(...) \
  AUD_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define AUD_ACQUIRED_AFTER(...) \
  AUD_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// A function that returns a reference to a capability.
#define AUD_RETURN_CAPABILITY(x) AUD_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code whose synchronization the analysis cannot see
// (callback indirection through std::function, adopted locks). Every use
// carries a comment naming the invariant that makes it safe.
#define AUD_NO_THREAD_SAFETY_ANALYSIS \
  AUD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace aud {

class CondVar;

// Annotated exclusive mutex. Method names are capitalized so un-migrated
// std::mutex call sites fail to compile rather than silently bypassing the
// analysis.
//
// Every production mutex declares its LockRank (src/common/lock_rank.h) and
// a diagnostic name at construction; under AUD_LOCK_RANK_CHECKS (the
// default) each acquisition is validated against the calling thread's
// held-lock stack and a hierarchy violation aborts naming both locks. The
// default constructor leaves the mutex kUnranked — exempt from checking —
// for test-local and ad-hoc mutexes that are not part of the hierarchy.
class AUD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AUD_ACQUIRE() {
#if AUD_LOCK_RANK_CHECKS
    lockrank::OnAcquire(this, rank_, order_, name_);
#endif
    mu_.lock();
  }
  void Unlock() AUD_RELEASE() {
    mu_.unlock();
#if AUD_LOCK_RANK_CHECKS
    lockrank::OnRelease(this);
#endif
  }
  bool TryLock() AUD_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
#if AUD_LOCK_RANK_CHECKS
    // A successful try_lock is an acquisition like any other: taking it out
    // of rank order is the same latent deadlock, just one that happened to
    // win the race this time.
    lockrank::OnAcquire(this, rank_, order_, name_);
#endif
    return true;
  }

  // Disambiguates same-rank acquisitions (the IslandRootLocks carve-out):
  // kEngineRoot mutexes carry their root LOUD's id so ascending-id
  // acquisition validates. Set once, before the mutex is ever contended.
  void SetRankOrder(uint64_t order) { order_ = order; }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  // Kept unconditionally so the type's layout does not depend on the
  // checking flag (one TU built with a stale flag would otherwise corrupt
  // every mutex it touches).
  LockRank rank_ = LockRank::kUnranked;
  uint64_t order_ = 0;
  const char* name_ = "unranked";
};

// RAII lock for aud::Mutex. Supports temporary release (Unlock/Lock) for
// worker loops that drop the lock around job execution; the destructor
// releases only if currently held.
class AUD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) AUD_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() AUD_RELEASE() {
    if (held_) {
      mu_->Unlock();
    }
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Temporary release inside the scope (EnginePool::WorkerLoop pattern).
  void Unlock() AUD_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }
  void Lock() AUD_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_;
};

// Condition variable bound to aud::Mutex. Waits require the mutex held (the
// analysis enforces it); internally the wait adopts the already-held
// std::mutex, waits, and re-adopts ownership back to the caller, so the
// capability state on return matches the annotation. Predicates are explicit
// `while` loops at the call site — that form the analysis verifies directly,
// where an annotated lambda crossing a template boundary would not be.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(Mutex& mu) AUD_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  // Waits until notified or the deadline passes. Callers loop on their
  // predicate and re-derive remaining time; returns timeout/no_timeout as
  // std::condition_variable does.
  template <typename ClockT, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<ClockT, Duration>& deadline)
      AUD_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace aud

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
