// Fixed-capacity single-producer/single-consumer ring buffer.
//
// Used for the CODEC's "memory-mapped buffer" emulation and for wire data
// paths between devices inside the engine. The SPSC discipline matches the
// paper's data source/sink threads (section 6.1): exactly one thread feeds
// a wire and exactly one drains it.

#ifndef SRC_COMMON_RING_BUFFER_H_
#define SRC_COMMON_RING_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

namespace aud {

template <typename T>
class RingBuffer {
 public:
  // Capacity is rounded up to the next power of two; usable capacity is the
  // rounded value (full/empty disambiguated by counters, not a wasted slot).
  explicit RingBuffer(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  size_t capacity() const { return buffer_.size(); }

  // Elements currently readable.
  size_t size() const {
    return write_pos_.load(std::memory_order_acquire) -
           read_pos_.load(std::memory_order_acquire);
  }

  size_t free_space() const { return capacity() - size(); }
  bool empty() const { return size() == 0; }
  bool full() const { return size() == capacity(); }

  // Writes up to data.size() elements; returns the number written (may be
  // short when the buffer fills). Producer thread only.
  size_t Write(std::span<const T> data) {
    size_t w = write_pos_.load(std::memory_order_relaxed);
    size_t r = read_pos_.load(std::memory_order_acquire);
    size_t room = capacity() - (w - r);
    size_t n = data.size() < room ? data.size() : room;
    for (size_t i = 0; i < n; ++i) {
      buffer_[(w + i) & mask_] = data[i];
    }
    write_pos_.store(w + n, std::memory_order_release);
    return n;
  }

  // Reads up to out.size() elements; returns the number read. Consumer
  // thread only.
  size_t Read(std::span<T> out) {
    size_t r = read_pos_.load(std::memory_order_relaxed);
    size_t w = write_pos_.load(std::memory_order_acquire);
    size_t avail = w - r;
    size_t n = out.size() < avail ? out.size() : avail;
    for (size_t i = 0; i < n; ++i) {
      out[i] = buffer_[(r + i) & mask_];
    }
    read_pos_.store(r + n, std::memory_order_release);
    return n;
  }

  // Drops up to n readable elements; returns the number dropped.
  size_t Discard(size_t n) {
    size_t r = read_pos_.load(std::memory_order_relaxed);
    size_t w = write_pos_.load(std::memory_order_acquire);
    size_t avail = w - r;
    if (n > avail) {
      n = avail;
    }
    read_pos_.store(r + n, std::memory_order_release);
    return n;
  }

  // Removes everything. Safe only when producer and consumer are quiescent.
  void Clear() {
    read_pos_.store(write_pos_.load(std::memory_order_acquire), std::memory_order_release);
  }

  // Total elements ever written (monotonic); used for sample accounting.
  uint64_t total_written() const { return write_pos_.load(std::memory_order_acquire); }
  uint64_t total_read() const { return read_pos_.load(std::memory_order_acquire); }

 private:
  std::vector<T> buffer_;
  size_t mask_ = 0;
  std::atomic<uint64_t> write_pos_{0};
  std::atomic<uint64_t> read_pos_{0};
};

}  // namespace aud

#endif  // SRC_COMMON_RING_BUFFER_H_
