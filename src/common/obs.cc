#include "src/common/obs.h"

#include <algorithm>
#include <bit>

namespace aud {
namespace obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

size_t LatencyHistogram::BucketFor(uint64_t v) {
  size_t b = static_cast<size_t>(std::bit_width(v));
  return b < kBuckets ? b : kBuckets - 1;
}

void LatencyHistogram::Record(uint64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen && !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBuckets);
  for (size_t b = 0; b < kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == UINT64_MAX ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Continuous rank (1-based) of the target sample. Kept fractional so the
  // interpolation below does not truncate: with integer ranks a log2 bucket
  // at the high end quantized the answer by up to ~2x (the bucket spans
  // [2^(b-1), 2^b)), and a rank landing exactly on the bucket's last sample
  // returned the bucket's top instead of an interpolated position.
  double rank = p / 100.0 * static_cast<double>(count);
  if (rank < 1.0) {
    rank = 1.0;
  }
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      double low = static_cast<double>(LatencyHistogram::BucketLow(b));
      double high = static_cast<double>(LatencyHistogram::BucketHigh(b));
      // Midpoint rule: sample k of n in a bucket sits at fraction
      // (k - 0.5) / n of the bucket's width, assuming a uniform spread.
      double in_rank = rank - static_cast<double>(cumulative);
      double frac = (in_rank - 0.5) / static_cast<double>(in_bucket);
      double v = low + std::clamp(frac, 0.0, 1.0) * (high + 1.0 - low);
      v = std::clamp(v, low, high);
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

std::string_view TraceReasonName(TraceReason reason) {
  switch (reason) {
    case TraceReason::kNone:
      return "none";
    case TraceReason::kTickStart:
      return "tick-start";
    case TraceReason::kTickEnd:
      return "tick-end";
    case TraceReason::kTickOverrun:
      return "tick-overrun";
    case TraceReason::kDispatch:
      return "dispatch";
    case TraceReason::kDispatchError:
      return "dispatch-error";
    case TraceReason::kIslandRun:
      return "island-run";
    case TraceReason::kEventFlush:
      return "event-flush";
    case TraceReason::kConnectionOpen:
      return "conn-open";
    case TraceReason::kConnectionClose:
      return "conn-close";
    case TraceReason::kSpanRequest:
      return "span-request";
    case TraceReason::kSpanDispatch:
      return "span-dispatch";
    case TraceReason::kSpanEpoch:
      return "span-epoch";
    case TraceReason::kSpanEgress:
      return "span-egress";
    case TraceReason::kSpanWrite:
      return "span-write";
    case TraceReason::kMouthToEar:
      return "mouth-to-ear";
    case TraceReason::kTraceReasonCount:
      break;
  }
  return "?";
}

void TraceRing::Record(TraceReason reason, uint32_t arg0, uint32_t arg1, int64_t t_us,
                       uint64_t seq, uint64_t trace, uint64_t parent, uint32_t dur_us) {
  MutexLock lock(&mu_);
  TraceEvent& slot = events_[next_ % kCapacity];
  slot.t_us = t_us;
  slot.seq = seq;
  slot.tid = tid_;
  slot.reason = reason;
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  slot.trace = trace;
  slot.parent = parent;
  slot.dur_us = dur_us;
  ++next_;
}

void TraceRing::Collect(std::vector<TraceEvent>* out) const {
  MutexLock lock(&mu_);
  uint64_t retained = std::min<uint64_t>(next_, kCapacity);
  for (uint64_t i = next_ - retained; i < next_; ++i) {
    out->push_back(events_[i % kCapacity]);
  }
}

TraceRegistry& TraceRegistry::Instance() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

TraceRegistry::TraceRegistry() : epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRegistry::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRing* TraceRegistry::ThreadRing() {
  thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) {
    MutexLock lock(&mu_);
    auto owned = std::make_unique<TraceRing>(static_cast<uint32_t>(rings_.size()));
    ring = owned.get();
    rings_.push_back(std::move(owned));
  }
  return ring;
}

void TraceRegistry::Trace(TraceReason reason, uint32_t arg0, uint32_t arg1) {
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ThreadRing()->Record(reason, arg0, arg1, NowUs(), seq);
}

uint64_t TraceRegistry::Span(TraceReason reason, uint64_t trace, uint64_t parent,
                             int64_t t_start_us, uint32_t dur_us, uint32_t arg0,
                             uint32_t arg1) {
  uint64_t seq = ReserveSeq();
  SpanWithSeq(seq, reason, trace, parent, t_start_us, dur_us, arg0, arg1);
  return seq;
}

void TraceRegistry::SpanWithSeq(uint64_t seq, TraceReason reason, uint64_t trace,
                                uint64_t parent, int64_t t_start_us, uint32_t dur_us,
                                uint32_t arg0, uint32_t arg1) {
  ThreadRing()->Record(reason, arg0, arg1, t_start_us, seq, trace, parent, dur_us);
}

std::vector<TraceEvent> TraceRegistry::Snapshot(size_t max_events) const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(&mu_);
    for (const auto& ring : rings_) {
      ring->Collect(&events);
    }
  }
  // One timeline: order by timestamp so interleaved threads read as they
  // happened; seq breaks timestamp ties, making the order total and stable
  // (spans backdate t_us to their start, so seq order alone would zig-zag).
  std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.t_us != b.t_us ? a.t_us < b.t_us : a.seq < b.seq;
  });
  if (max_events != 0 && events.size() > max_events) {
    events.erase(events.begin(), events.end() - static_cast<ptrdiff_t>(max_events));
  }
  return events;
}

}  // namespace obs
}  // namespace aud
