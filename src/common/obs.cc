#include "src/common/obs.h"

#include <algorithm>
#include <bit>

namespace aud {
namespace obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

size_t LatencyHistogram::BucketFor(uint64_t v) {
  size_t b = static_cast<size_t>(std::bit_width(v));
  return b < kBuckets ? b : kBuckets - 1;
}

void LatencyHistogram::Record(uint64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen && !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBuckets);
  for (size_t b = 0; b < kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = min == UINT64_MAX ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based.
  uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (target == 0) {
    target = 1;
  }
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) {
      continue;
    }
    if (cumulative + in_bucket >= target) {
      double low = static_cast<double>(LatencyHistogram::BucketLow(b));
      double high = static_cast<double>(LatencyHistogram::BucketHigh(b));
      double frac =
          static_cast<double>(target - cumulative) / static_cast<double>(in_bucket);
      double v = low + frac * (high - low);
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

std::string_view TraceReasonName(TraceReason reason) {
  switch (reason) {
    case TraceReason::kNone:
      return "none";
    case TraceReason::kTickStart:
      return "tick-start";
    case TraceReason::kTickEnd:
      return "tick-end";
    case TraceReason::kTickOverrun:
      return "tick-overrun";
    case TraceReason::kDispatch:
      return "dispatch";
    case TraceReason::kDispatchError:
      return "dispatch-error";
    case TraceReason::kIslandRun:
      return "island-run";
    case TraceReason::kEventFlush:
      return "event-flush";
    case TraceReason::kConnectionOpen:
      return "conn-open";
    case TraceReason::kConnectionClose:
      return "conn-close";
    case TraceReason::kTraceReasonCount:
      break;
  }
  return "?";
}

void TraceRing::Record(TraceReason reason, uint32_t arg0, uint32_t arg1, int64_t t_us,
                       uint64_t seq) {
  MutexLock lock(&mu_);
  TraceEvent& slot = events_[next_ % kCapacity];
  slot.t_us = t_us;
  slot.seq = seq;
  slot.tid = tid_;
  slot.reason = reason;
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  ++next_;
}

void TraceRing::Collect(std::vector<TraceEvent>* out) const {
  MutexLock lock(&mu_);
  uint64_t retained = std::min<uint64_t>(next_, kCapacity);
  for (uint64_t i = next_ - retained; i < next_; ++i) {
    out->push_back(events_[i % kCapacity]);
  }
}

TraceRegistry& TraceRegistry::Instance() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

TraceRegistry::TraceRegistry() : epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRegistry::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRing* TraceRegistry::ThreadRing() {
  thread_local TraceRing* ring = nullptr;
  if (ring == nullptr) {
    MutexLock lock(&mu_);
    auto owned = std::make_unique<TraceRing>(static_cast<uint32_t>(rings_.size()));
    ring = owned.get();
    rings_.push_back(std::move(owned));
  }
  return ring;
}

void TraceRegistry::Trace(TraceReason reason, uint32_t arg0, uint32_t arg1) {
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ThreadRing()->Record(reason, arg0, arg1, NowUs(), seq);
}

std::vector<TraceEvent> TraceRegistry::Snapshot(size_t max_events) const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(&mu_);
    for (const auto& ring : rings_) {
      ring->Collect(&events);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  if (max_events != 0 && events.size() > max_events) {
    events.erase(events.begin(), events.end() - static_cast<ptrdiff_t>(max_events));
  }
  return events;
}

}  // namespace obs
}  // namespace aud
