#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace aud {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mu;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[aud %s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace aud
