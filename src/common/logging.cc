#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/thread_annotations.h"

namespace aud {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
// Serializes the fprintf so concurrent log lines never interleave; stderr
// itself is the guarded resource, so no AUD_GUARDED_BY field exists.
Mutex g_log_mu{LockRank::kLogging, "g_log_mu"};

// Ring of the most recent formatted lines (flight-recorder log tail).
constexpr size_t kLogRingCapacity = 64;
std::string g_log_ring[kLogRingCapacity] AUD_GUARDED_BY(g_log_mu);
uint64_t g_log_ring_next AUD_GUARDED_BY(g_log_mu) = 0;

// Monotonic time base shared by every log line (ms since first log call),
// so tick-thread / worker / dispatcher interleavings are attributable on a
// single axis.
std::chrono::steady_clock::time_point LogEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Dense per-thread id (0 = first thread that logged). Stable for the
// thread's lifetime; cheaper and shorter than OS thread ids.
uint32_t ThreadLogId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - LogEpoch())
                     .count();
  MutexLock lock(&g_log_mu);
  // Format contract (tests grep this): "[aud LEVEL +<ms>ms t<tid>] message".
  std::fprintf(stderr, "[aud %s +%lldms t%u] %s\n", LevelTag(level),
               static_cast<long long>(elapsed), ThreadLogId(), message.c_str());
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[aud %s +%lldms t%u] ", LevelTag(level),
                static_cast<long long>(elapsed), ThreadLogId());
  g_log_ring[g_log_ring_next % kLogRingCapacity] = std::string(prefix) + message;
  ++g_log_ring_next;
}

std::vector<std::string> RecentLogLines(size_t max_lines) {
  MutexLock lock(&g_log_mu);
  const uint64_t stored =
      g_log_ring_next < kLogRingCapacity ? g_log_ring_next : kLogRingCapacity;
  const uint64_t want = max_lines < stored ? max_lines : stored;
  std::vector<std::string> lines;
  lines.reserve(want);
  for (uint64_t i = g_log_ring_next - want; i < g_log_ring_next; ++i) {
    lines.push_back(g_log_ring[i % kLogRingCapacity]);
  }
  return lines;
}

}  // namespace aud
