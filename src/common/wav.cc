#include "src/common/wav.h"

#include <cstdio>
#include <memory>

#include "src/common/byte_io.h"

namespace aud {

namespace {
constexpr uint16_t kFormatPcm = 1;
constexpr uint16_t kFormatMulaw = 7;

// mu-law decode duplicated here to keep common/ free of dsp/ dependencies.
Sample WavMulawDecode(uint8_t mulaw) {
  int value = ~mulaw & 0xFF;
  int sign = value & 0x80;
  int exponent = (value >> 4) & 0x07;
  int mantissa = value & 0x0F;
  int sample = ((mantissa << 3) + 0x84) << exponent;
  sample -= 0x84;
  return static_cast<Sample>(sign != 0 ? -sample : sample);
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

bool WriteWavFile(const std::string& path, std::span<const Sample> samples,
                  uint32_t sample_rate_hz) {
  ByteWriter w;
  uint32_t data_bytes = static_cast<uint32_t>(samples.size() * 2);
  w.WriteU32(0x46464952);  // "RIFF"
  w.WriteU32(36 + data_bytes);
  w.WriteU32(0x45564157);  // "WAVE"
  w.WriteU32(0x20746D66);  // "fmt "
  w.WriteU32(16);
  w.WriteU16(kFormatPcm);
  w.WriteU16(1);  // mono
  w.WriteU32(sample_rate_hz);
  w.WriteU32(sample_rate_hz * 2);  // byte rate
  w.WriteU16(2);                   // block align
  w.WriteU16(16);                  // bits per sample
  w.WriteU32(0x61746164);          // "data"
  w.WriteU32(data_bytes);
  for (Sample s : samples) {
    w.WriteI16(s);
  }

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return false;
  }
  return std::fwrite(w.bytes().data(), 1, w.bytes().size(), f.get()) == w.bytes().size();
}

Result<WavData> ReadWavFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status(ErrorCode::kBadName, "cannot open " + path);
  }
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 44) {
    return Status(ErrorCode::kBadValue, "not a WAV file");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return Status(ErrorCode::kBadValue, "short read");
  }

  ByteReader r(bytes);
  if (r.ReadU32() != 0x46464952) {
    return Status(ErrorCode::kBadValue, "missing RIFF header");
  }
  r.ReadU32();  // riff size
  if (r.ReadU32() != 0x45564157) {
    return Status(ErrorCode::kBadValue, "not WAVE");
  }

  WavData out;
  uint16_t format = 0;
  uint16_t channels = 1;
  uint16_t bits = 16;
  bool have_fmt = false;

  while (r.ok() && r.remaining() >= 8) {
    uint32_t chunk_id = r.ReadU32();
    uint32_t chunk_len = r.ReadU32();
    if (chunk_id == 0x20746D66) {  // "fmt "
      format = r.ReadU16();
      channels = r.ReadU16();
      out.sample_rate_hz = r.ReadU32();
      r.ReadU32();  // byte rate
      r.ReadU16();  // block align
      bits = r.ReadU16();
      if (chunk_len > 16) {
        r.ReadBytes(chunk_len - 16);
      }
      have_fmt = true;
    } else if (chunk_id == 0x61746164) {  // "data"
      if (!have_fmt) {
        return Status(ErrorCode::kBadValue, "data before fmt");
      }
      auto data = r.ReadBytes(chunk_len);
      if (!r.ok()) {
        return Status(ErrorCode::kBadValue, "truncated data chunk");
      }
      if (channels == 0) {
        channels = 1;
      }
      if (format == kFormatPcm && bits == 16) {
        size_t frames = data.size() / 2 / channels;
        out.samples.reserve(frames);
        for (size_t i = 0; i < frames; ++i) {
          size_t off = i * channels * 2;
          out.samples.push_back(static_cast<Sample>(
              static_cast<uint16_t>(data[off]) | static_cast<uint16_t>(data[off + 1]) << 8));
        }
      } else if (format == kFormatPcm && bits == 8) {
        size_t frames = data.size() / channels;
        for (size_t i = 0; i < frames; ++i) {
          // 8-bit WAV is unsigned.
          out.samples.push_back(
              static_cast<Sample>((static_cast<int>(data[i * channels]) - 128) << 8));
        }
      } else if (format == kFormatMulaw && bits == 8) {
        size_t frames = data.size() / channels;
        for (size_t i = 0; i < frames; ++i) {
          out.samples.push_back(WavMulawDecode(data[i * channels]));
        }
      } else {
        return Status(ErrorCode::kBadValue, "unsupported WAV format");
      }
      return out;
    } else {
      r.ReadBytes(chunk_len + (chunk_len & 1));  // skip (chunks are padded)
    }
  }
  return Status(ErrorCode::kBadValue, "no data chunk");
}

}  // namespace aud
