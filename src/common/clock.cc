#include "src/common/clock.h"

#include <thread>

namespace aud {

RealClock::RealClock() : epoch_(std::chrono::steady_clock::now()) {}

Ticks RealClock::Now() const {
  auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
}

void RealClock::SleepUntil(Ticks deadline) {
  std::this_thread::sleep_until(epoch_ + std::chrono::microseconds(deadline));
}

Ticks VirtualClock::Now() const {
  MutexLock lock(&mu_);
  return now_;
}

void VirtualClock::SleepUntil(Ticks deadline) {
  MutexLock lock(&mu_);
  while (now_ < deadline) {
    cv_.Wait(mu_);
  }
}

void VirtualClock::Advance(Ticks nominal) {
  MutexLock lock(&mu_);
  Ticks skewed = nominal + nominal * skew_ppm_ / 1'000'000;
  now_ += skewed;
  cv_.NotifyAll();
}

void VirtualClock::AdvanceTo(Ticks t) {
  MutexLock lock(&mu_);
  if (t > now_) {
    now_ = t;
    cv_.NotifyAll();
  }
}

}  // namespace aud
