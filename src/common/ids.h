// Resource identifiers. Following the X model the paper borrows from, every
// protocol object (LOUD, virtual device, wire, sound, queue) is named by a
// 32-bit id. Clients allocate ids out of a per-connection range handed out
// in the connection setup reply; server-created objects (the device LOUD and
// its contents) come from a reserved server range.

#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>

namespace aud {

using ResourceId = uint32_t;

// Id 0 never names an object; it is "None" in requests that take an optional
// resource.
inline constexpr ResourceId kNoResource = 0;

// Server-owned ids (the device LOUD tree, implicit mixers) live in the top
// range so they can never collide with a client allocation.
inline constexpr ResourceId kServerIdBase = 0xF0000000u;

// Each client connection is granted a contiguous id block of this size.
inline constexpr uint32_t kClientIdBlockSize = 1u << 20;

// First block handed to client connection #0.
inline constexpr ResourceId kClientIdBase = 0x00100000u;

// Returns the id base for the Nth accepted connection.
inline constexpr ResourceId ClientIdBaseFor(uint32_t connection_index) {
  return kClientIdBase + connection_index * kClientIdBlockSize;
}

// True if `id` falls inside the server-reserved range.
inline constexpr bool IsServerId(ResourceId id) { return id >= kServerIdBase; }

}  // namespace aud

#endif  // SRC_COMMON_IDS_H_
