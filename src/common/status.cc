#include "src/common/status.h"

namespace aud {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kBadResource:
      return "BadResource";
    case ErrorCode::kBadValue:
      return "BadValue";
    case ErrorCode::kBadMatch:
      return "BadMatch";
    case ErrorCode::kNoDevice:
      return "NoDevice";
    case ErrorCode::kDeviceBusy:
      return "DeviceBusy";
    case ErrorCode::kBadState:
      return "BadState";
    case ErrorCode::kBadWiring:
      return "BadWiring";
    case ErrorCode::kBadIdChoice:
      return "BadIdChoice";
    case ErrorCode::kBadRequest:
      return "BadRequest";
    case ErrorCode::kBadName:
      return "BadName";
    case ErrorCode::kBadAccess:
      return "BadAccess";
    case ErrorCode::kAlloc:
      return "Alloc";
    case ErrorCode::kBadQueue:
      return "BadQueue";
    case ErrorCode::kConnection:
      return "Connection";
    case ErrorCode::kLimit:
      return "Limit";
    case ErrorCode::kTimeout:
      return "Timeout";
    case ErrorCode::kRateLimited:
      return "RateLimited";
    case ErrorCode::kQuotaExceeded:
      return "QuotaExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aud
