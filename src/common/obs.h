// aud::obs — the server-wide observability core. Lock-cheap primitives the
// engine and dispatcher can touch on every request and every tick without
// measurably perturbing what they measure:
//
//   * Counter / Gauge: relaxed-atomic integers. Any thread may write; a
//     snapshot read is a single relaxed load. Relaxed ordering is enough
//     because each counter is an independent statistic — nothing is ever
//     inferred from the relative order of two counters.
//   * LatencyHistogram: fixed power-of-two buckets over uint64 values
//     (microseconds in practice). Bucket counts are relaxed atomics, so a
//     Snapshot taken while another thread records never tears a bucket;
//     percentiles come from the snapshot, never the live histogram.
//   * TraceRing: a bounded per-thread ring of fixed-size trace events with
//     reason codes. Writers are always single-threaded per ring (each
//     thread records only into its own ring); a per-ring mutex serializes
//     the writer against snapshot readers, so a trace snapshot can be
//     taken from any thread at any time — in particular while engine
//     workers are tracing mid-fan-out without the server's state lock.
//
// The primitives are deliberately independent of the server so tests,
// benches and tools can use them stand-alone.

#ifndef SRC_COMMON_OBS_H_
#define SRC_COMMON_OBS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/common/thread_annotations.h"

namespace aud {
namespace obs {

// Monotonic event count. All operations are relaxed-atomic.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (connections open, queue depth, ...). Signed so
// transient Add/Sub imbalance during teardown can never wrap.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time copy of a histogram, with derived statistics. This is also
// the wire-level shape of a histogram in GetServerStats replies.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // bucket b >= 1 covers [2^(b-1), 2^b - 1]

  bool empty() const { return count == 0; }
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }

  // Approximate p-th percentile (0 < p <= 100) by linear interpolation
  // inside the owning bucket, clamped to the observed [min, max].
  double Percentile(double p) const;
};

// Fixed-bucket log-scale histogram. Value v lands in bucket bit_width(v)
// (0 stays in bucket 0), so bucket 1 holds {1}, bucket 2 holds {2,3},
// bucket 3 holds {4..7}, ... Recording is a handful of relaxed atomic
// operations; there is no lock on any path.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // covers > 12 days in microseconds

  static size_t BucketFor(uint64_t v);
  // Lower/upper value bound of bucket `b` (inclusive).
  static uint64_t BucketLow(size_t b) { return b == 0 ? 0 : uint64_t{1} << (b - 1); }
  static uint64_t BucketHigh(size_t b) { return b == 0 ? 0 : (uint64_t{1} << b) - 1; }

  void Record(uint64_t v);
  HistogramSnapshot Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// Why a trace event was recorded. Values are wire-visible (GetServerTrace);
// append only.
enum class TraceReason : uint16_t {
  kNone = 0,
  kTickStart = 1,      // arg0 = frames
  kTickEnd = 2,        // arg0 = duration us, arg1 = islands ticked
  kTickOverrun = 3,    // arg0 = duration us, arg1 = period us
  kDispatch = 4,       // arg0 = opcode, arg1 = duration us
  kDispatchError = 5,  // arg0 = opcode, arg1 = error code
  kIslandRun = 6,      // arg0 = island index, arg1 = device count
  kEventFlush = 7,     // arg0 = deferred events flushed after a parallel tick
  kConnectionOpen = 8, // arg0 = connection index
  kConnectionClose = 9,// arg0 = connection index
  // Request-scoped spans (trace/parent/dur_us are meaningful from here on).
  kSpanRequest = 10,   // root span: whole request residency; arg0 = opcode
  kSpanDispatch = 11,  // lock wait + handler; arg0 = opcode, arg1 = duration us
  kSpanEpoch = 12,     // first engine epoch that mixed a traced play; arg0 = tick
  kSpanEgress = 13,    // reply/event enqueued on the egress queue; arg0 = code
  kSpanWrite = 14,     // socket write of a traced frame; arg0 = bytes
  kMouthToEar = 15,    // play accept -> first mixed frame; arg0 = latency us
  kTraceReasonCount = 16,
};

std::string_view TraceReasonName(TraceReason reason);

// One fixed-size trace record. `seq` is a process-global ordering stamp;
// `t_us` is microseconds on the shared trace clock (process start epoch).
// Span records additionally carry a request-scoped correlation id (`trace`),
// the seq of their parent span (`parent`, 0 = root) and a duration, turning
// the flat ring into a per-request span tree (DESIGN.md decision 13).
struct TraceEvent {
  int64_t t_us = 0;
  uint64_t seq = 0;
  uint32_t tid = 0;  // dense per-thread id assigned at first trace
  TraceReason reason = TraceReason::kNone;
  uint32_t arg0 = 0;
  uint32_t arg1 = 0;
  uint64_t trace = 0;   // correlation id; 0 = not request-scoped
  uint64_t parent = 0;  // seq of the parent span; 0 = root
  uint32_t dur_us = 0;  // span duration (0 for point events)
};

// Bounded single-writer ring of trace events. The owning thread records;
// snapshot readers may run concurrently from any thread (GetServerTrace no
// longer shares a lock with every recording path since the engine tick
// dropped the big lock for its fan-out), so each ring carries its own tiny
// mutex. The lock is per-ring and per-thread, hence uncontended on the
// record path except during the rare snapshot.
class TraceRing {
 public:
  static constexpr size_t kCapacity = 256;

  explicit TraceRing(uint32_t tid) : tid_(tid) {}

  uint32_t tid() const { return tid_; }

  void Record(TraceReason reason, uint32_t arg0, uint32_t arg1, int64_t t_us, uint64_t seq,
              uint64_t trace = 0, uint64_t parent = 0, uint32_t dur_us = 0);

  // Appends the retained events (oldest first) to `out`.
  void Collect(std::vector<TraceEvent>* out) const;

 private:
  const uint32_t tid_;
  mutable Mutex mu_{LockRank::kTraceRing, "TraceRing::mu_"};
  TraceEvent events_[kCapacity] AUD_GUARDED_BY(mu_);
  uint64_t next_ AUD_GUARDED_BY(mu_) = 0;  // total records ever; slot = next_ % kCapacity
};

// Process-wide registry of per-thread trace rings. Threads get their ring
// lazily on first Trace() call; rings outlive their threads so the last
// events of a dead worker remain inspectable.
class TraceRegistry {
 public:
  static TraceRegistry& Instance();

  // Records into the calling thread's ring (created on first use).
  void Trace(TraceReason reason, uint32_t arg0 = 0, uint32_t arg1 = 0);

  // Reserves a global seq without recording, so a parent span's seq can be
  // handed to children before the parent itself (whose duration is only
  // known at the end) is written with SpanWithSeq.
  uint64_t ReserveSeq() { return next_seq_.fetch_add(1, std::memory_order_relaxed); }

  // Records a request-scoped span on the calling thread's ring and returns
  // its seq. `t_start_us` is the span's start on the trace clock (NowUs);
  // `parent` links to the enclosing span's seq (0 = root).
  uint64_t Span(TraceReason reason, uint64_t trace, uint64_t parent, int64_t t_start_us,
                uint32_t dur_us, uint32_t arg0 = 0, uint32_t arg1 = 0);

  // Same, with a pre-reserved seq (ReserveSeq).
  void SpanWithSeq(uint64_t seq, TraceReason reason, uint64_t trace, uint64_t parent,
                   int64_t t_start_us, uint32_t dur_us, uint32_t arg0 = 0,
                   uint32_t arg1 = 0);

  // Merged snapshot across every ring as one timeline: globally ordered by
  // timestamp (ties broken by seq, so the order is total and stable across
  // threads), truncated to the newest `max_events` (0 = no limit).
  std::vector<TraceEvent> Snapshot(size_t max_events) const;

  // Microseconds since the trace epoch (process start of tracing).
  int64_t NowUs() const;

 private:
  TraceRegistry();

  TraceRing* ThreadRing();

  mutable Mutex mu_{LockRank::kTraceRegistry, "TraceRegistry::mu_"};
  std::vector<std::unique_ptr<TraceRing>> rings_ AUD_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_seq_{0};
  std::chrono::steady_clock::time_point epoch_;
};

// Convenience: record one trace event on the calling thread's ring.
inline void Trace(TraceReason reason, uint32_t arg0 = 0, uint32_t arg1 = 0) {
  TraceRegistry::Instance().Trace(reason, arg0, arg1);
}

}  // namespace obs
}  // namespace aud

#endif  // SRC_COMMON_OBS_H_
