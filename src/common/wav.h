// Minimal RIFF/WAVE reader and writer (PCM16 and G.711 mu-law), so sounds
// can move between netaudio and ordinary audio tooling. Used by the
// examples, the audioctl tool and the speaker file sink.

#ifndef SRC_COMMON_WAV_H_
#define SRC_COMMON_WAV_H_

#include <span>
#include <string>
#include <vector>

#include "src/common/sample.h"
#include "src/common/status.h"

namespace aud {

// Writes mono PCM16 samples as a WAV file. Returns false on I/O failure.
bool WriteWavFile(const std::string& path, std::span<const Sample> samples,
                  uint32_t sample_rate_hz);

struct WavData {
  uint32_t sample_rate_hz = 8000;
  std::vector<Sample> samples;  // decoded to linear, first channel only
};

// Reads a WAV file (PCM16, PCM8 or mu-law; multi-channel files keep the
// first channel).
Result<WavData> ReadWavFile(const std::string& path);

}  // namespace aud

#endif  // SRC_COMMON_WAV_H_
