#include "src/music/envelope.h"

namespace aud {

AdsrEnvelope::AdsrEnvelope(const EnvelopeParams& params, uint32_t sample_rate_hz)
    : params_(params), rate_(sample_rate_hz) {}

void AdsrEnvelope::NoteOn() {
  stage_ = Stage::kAttack;
}

void AdsrEnvelope::NoteOff() {
  if (stage_ != Stage::kIdle) {
    stage_ = Stage::kRelease;
  }
}

double AdsrEnvelope::Next() {
  auto per_sample = [this](uint16_t ms) {
    double samples = static_cast<double>(rate_) * ms / 1000.0;
    return samples < 1.0 ? 1.0 : 1.0 / samples;
  };
  double sustain = params_.sustain_centi / 10000.0;

  switch (stage_) {
    case Stage::kIdle:
      level_ = 0.0;
      break;
    case Stage::kAttack:
      level_ += per_sample(params_.attack_ms);
      if (level_ >= 1.0) {
        level_ = 1.0;
        stage_ = Stage::kDecay;
      }
      break;
    case Stage::kDecay:
      level_ -= per_sample(params_.decay_ms) * (1.0 - sustain);
      if (level_ <= sustain) {
        level_ = sustain;
        stage_ = Stage::kSustain;
      }
      break;
    case Stage::kSustain:
      level_ = sustain;
      break;
    case Stage::kRelease:
      level_ -= per_sample(params_.release_ms) * sustain;
      if (level_ <= 0.0) {
        level_ = 0.0;
        stage_ = Stage::kIdle;
      }
      break;
  }
  return level_;
}

}  // namespace aud
