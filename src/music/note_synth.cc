#include "src/music/note_synth.h"

#include <cmath>
#include <numbers>

namespace aud {

double MidiNoteFrequency(int midi_note) {
  return 440.0 * std::pow(2.0, (midi_note - 69) / 12.0);
}

NoteSynthesizer::NoteSynthesizer(uint32_t sample_rate_hz) : rate_(sample_rate_hz) {}

void NoteSynthesizer::NoteOn(uint8_t midi_note, uint8_t velocity, uint32_t duration_ms) {
  ActiveNote note{.phase = 0.0,
                  .phase_step = MidiNoteFrequency(midi_note) / rate_,
                  .amplitude = velocity / 127.0,
                  .sustain_remaining =
                      static_cast<int64_t>(rate_) * duration_ms / 1000,
                  .waveform = voice_.waveform,
                  .envelope = AdsrEnvelope(voice_.envelope, rate_)};
  note.envelope.NoteOn();
  notes_.push_back(std::move(note));
}

namespace {
double Oscillate(Waveform waveform, double phase) {
  switch (waveform) {
    case Waveform::kSine:
      return std::sin(2.0 * std::numbers::pi * phase);
    case Waveform::kSquare:
      return phase < 0.5 ? 1.0 : -1.0;
    case Waveform::kSawtooth:
      return 2.0 * phase - 1.0;
    case Waveform::kTriangle:
      return phase < 0.5 ? 4.0 * phase - 1.0 : 3.0 - 4.0 * phase;
  }
  return 0.0;
}
}  // namespace

void NoteSynthesizer::Generate(size_t n, std::vector<Sample>* out) {
  for (size_t i = 0; i < n; ++i) {
    double mix = 0.0;
    for (auto it = notes_.begin(); it != notes_.end();) {
      ActiveNote& note = *it;
      if (note.sustain_remaining > 0 && --note.sustain_remaining == 0) {
        note.envelope.NoteOff();
      }
      double env = note.envelope.Next();
      mix += Oscillate(note.waveform, note.phase) * env * note.amplitude * 0.35;
      note.phase += note.phase_step;
      if (note.phase >= 1.0) {
        note.phase -= 1.0;
      }
      if (!note.envelope.active()) {
        it = notes_.erase(it);
      } else {
        ++it;
      }
    }
    double v = mix * 32767.0;
    if (v > 32767.0) {
      v = 32767.0;
    }
    if (v < -32768.0) {
      v = -32768.0;
    }
    out->push_back(static_cast<Sample>(v));
  }
}

std::vector<Sample> NoteSynthesizer::RenderNote(uint8_t midi_note, uint8_t velocity,
                                                uint32_t duration_ms) {
  NoteSynthesizer scratch(rate_);
  scratch.SetVoice(voice_);
  scratch.NoteOn(midi_note, velocity, duration_ms);
  std::vector<Sample> out;
  size_t block = rate_ / 50;
  while (!scratch.idle()) {
    scratch.Generate(block, &out);
  }
  return out;
}

}  // namespace aud
