// Note-based music synthesis: the protocol's music-synthesizer device
// class ("process note-based audio ... Note makes a sound", section 5.1).
// Polyphonic: concurrent notes mix; voices carry waveform + ADSR settings
// controlled by SetVoice.

#ifndef SRC_MUSIC_NOTE_SYNTH_H_
#define SRC_MUSIC_NOTE_SYNTH_H_

#include <cstdint>
#include <list>
#include <vector>

#include "src/common/sample.h"
#include "src/music/envelope.h"

namespace aud {

enum class Waveform : uint8_t {
  kSine = 0,
  kSquare = 1,
  kSawtooth = 2,
  kTriangle = 3,
};

struct VoiceSettings {
  Waveform waveform = Waveform::kSine;
  EnvelopeParams envelope;
};

// Frequency of a MIDI note number (A4 = 69 = 440 Hz).
double MidiNoteFrequency(int midi_note);

class NoteSynthesizer {
 public:
  explicit NoteSynthesizer(uint32_t sample_rate_hz);

  // Replaces the voice used by subsequently started notes.
  void SetVoice(const VoiceSettings& settings) { voice_ = settings; }
  const VoiceSettings& voice() const { return voice_; }

  // Starts a note that sustains for duration_ms then releases. Velocity
  // 0..127 scales amplitude.
  void NoteOn(uint8_t midi_note, uint8_t velocity, uint32_t duration_ms);

  // Renders the next `n` samples of all live notes (appends to out).
  void Generate(size_t n, std::vector<Sample>* out);

  // One-shot: renders a complete note (sustain + release tail) to PCM.
  std::vector<Sample> RenderNote(uint8_t midi_note, uint8_t velocity, uint32_t duration_ms);

  size_t active_notes() const { return notes_.size(); }
  bool idle() const { return notes_.empty(); }

 private:
  struct ActiveNote {
    double phase = 0.0;
    double phase_step = 0.0;
    double amplitude = 1.0;
    int64_t sustain_remaining = 0;  // samples until NoteOff
    Waveform waveform = Waveform::kSine;
    AdsrEnvelope envelope;
  };

  uint32_t rate_;
  VoiceSettings voice_;
  std::list<ActiveNote> notes_;
};

}  // namespace aud

#endif  // SRC_MUSIC_NOTE_SYNTH_H_
