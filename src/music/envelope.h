// ADSR amplitude envelope for the music synthesizer device class.

#ifndef SRC_MUSIC_ENVELOPE_H_
#define SRC_MUSIC_ENVELOPE_H_

#include <cstdint>

namespace aud {

struct EnvelopeParams {
  uint16_t attack_ms = 10;
  uint16_t decay_ms = 50;
  // Sustain level in centi-percent of peak (7000 = 0.70).
  uint16_t sustain_centi = 7000;
  uint16_t release_ms = 100;
};

// Sample-stepped ADSR. NoteOn starts attack; NoteOff enters release.
class AdsrEnvelope {
 public:
  AdsrEnvelope(const EnvelopeParams& params, uint32_t sample_rate_hz);

  void NoteOn();
  void NoteOff();

  // Current amplitude in [0,1]; advances one sample per call.
  double Next();

  bool active() const { return stage_ != Stage::kIdle; }

 private:
  enum class Stage : uint8_t { kIdle, kAttack, kDecay, kSustain, kRelease };

  EnvelopeParams params_;
  uint32_t rate_;
  Stage stage_ = Stage::kIdle;
  double level_ = 0.0;
};

}  // namespace aud

#endif  // SRC_MUSIC_ENVELOPE_H_
