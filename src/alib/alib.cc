#include "src/alib/alib.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/logging.h"
#include "src/transport/fault_stream.h"
#include "src/transport/socket_stream.h"

namespace aud {

AudioConnection::AudioConnection(std::unique_ptr<ByteStream> stream, const SetupReply& setup)
    : stream_(std::move(stream)),
      server_name_(setup.server_name),
      device_loud_(setup.device_loud),
      id_base_(setup.id_base),
      id_next_(setup.id_base),
      id_end_(setup.id_base + setup.id_count) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

AudioConnection::~AudioConnection() { Close(); }

std::unique_ptr<AudioConnection> AudioConnection::Open(std::unique_ptr<ByteStream> stream,
                                                       const std::string& client_name) {
  SetupRequest request;
  request.client_name = client_name;
  ByteWriter w;
  request.Encode(&w);
  if (!WriteMessage(stream.get(), MessageType::kRequest, kSetupOpcode, 0, w.bytes())) {
    return nullptr;
  }
  std::optional<FramedMessage> reply = ReadMessage(stream.get());
  if (!reply || reply->header.code != kSetupOpcode) {
    return nullptr;
  }
  ByteReader r(reply->payload);
  SetupReply setup = SetupReply::Decode(&r);
  if (!r.ok() || setup.success == 0) {
    LogLine(LogLevel::kWarning) << "connection setup refused: " << setup.reason;
    return nullptr;
  }
  return std::unique_ptr<AudioConnection>(new AudioConnection(std::move(stream), setup));
}

std::unique_ptr<AudioConnection> AudioConnection::OpenTcp(const std::string& host,
                                                          uint16_t port,
                                                          const std::string& client_name) {
  std::unique_ptr<ByteStream> stream = ConnectTcp(host, port);
  if (stream == nullptr) {
    return nullptr;
  }
  // Client-side chaos hook: zero cost when the env spec is unset.
  static const FaultOptions fault = FaultOptionsFromEnv("AUD_ALIB_FAULT");
  if (fault.enabled) {
    stream = MaybeWrapFault(std::move(stream), fault);
  }
  return Open(std::move(stream), client_name);
}

std::unique_ptr<AudioConnection> AudioConnection::OpenTcpRetry(
    const std::string& host, uint16_t port, const std::string& client_name,
    const ConnectRetryOptions& retry) {
  uint64_t rng = retry.jitter_seed != 0 ? retry.jitter_seed : 1;
  uint32_t backoff = std::max<uint32_t>(retry.backoff_ms, 1);
  for (int attempt = 1; ; ++attempt) {
    std::unique_ptr<AudioConnection> conn = OpenTcp(host, port, client_name);
    if (conn != nullptr) {
      return conn;
    }
    if (attempt >= retry.attempts) {
      LogLine(LogLevel::kWarning) << "connect to " << host << ":" << port
                                  << " gave up after " << attempt << " attempts";
      return nullptr;
    }
    // xorshift64 full jitter: sleep in [backoff/2, backoff].
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    const uint32_t sleep_ms = backoff / 2 + static_cast<uint32_t>(rng % (backoff / 2 + 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff = std::min(backoff * 2, std::max<uint32_t>(retry.max_backoff_ms, 1));
  }
}

ResourceId AudioConnection::AllocId() {
  MutexLock lock(&write_mu_);
  if (id_next_ >= id_end_) {
    return kNoResource;
  }
  return id_next_++;
}

void AudioConnection::ReaderLoop() {
  while (!closed_.load()) {
    std::optional<FramedMessage> message = ReadMessage(stream_.get());
    if (!message) {
      break;
    }
    MutexLock lock(&queue_mu_);
    switch (message->header.type) {
      case MessageType::kReply:
        replies_[message->header.sequence] = std::move(*message);
        break;
      case MessageType::kEvent: {
        ByteReader r(message->payload);
        events_.push_back(EventMessage::Decode(&r));
        break;
      }
      case MessageType::kError: {
        ByteReader r(message->payload);
        AsyncError error;
        error.sequence = message->header.sequence;
        error.error = ErrorMessage::Decode(&r);
        // Errors are visible both to WaitReply (keyed) and NextError.
        reply_errors_[error.sequence] = error;
        errors_.push_back(std::move(error));
        break;
      }
      case MessageType::kRequest:
        break;  // Servers do not send requests.
    }
    queue_cv_.NotifyAll();
  }
  closed_.store(true);
  MutexLock lock(&queue_mu_);
  queue_cv_.NotifyAll();
}

uint32_t AudioConnection::SendRequest(Opcode opcode, std::span<const uint8_t> payload) {
  uint32_t seq;
  bool failed = false;
  {
    MutexLock lock(&write_mu_);
    seq = next_sequence_++;
    if (!WriteMessage(stream_.get(), MessageType::kRequest, static_cast<uint16_t>(opcode), seq,
                      payload)) {
      closed_.store(true);
      failed = true;
    }
  }
  if (failed) {
    // Server died mid-call: wake any blocked WaitReply so it surfaces
    // kConnection instead of waiting on a reply that will never come.
    // (write_mu_ and queue_mu_ are never held together.)
    MutexLock q(&queue_mu_);
    queue_cv_.NotifyAll();
  }
  return seq;
}

Result<std::vector<uint8_t>> AudioConnection::WaitReply(uint32_t sequence) {
  const int deadline_ms = rpc_deadline_ms_.load();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  MutexLock lock(&queue_mu_);
  while (replies_.count(sequence) == 0 && reply_errors_.count(sequence) == 0 &&
         !closed_.load()) {
    if (deadline_ms <= 0) {
      queue_cv_.Wait(queue_mu_);
    } else if (queue_cv_.WaitUntil(queue_mu_, deadline) == std::cv_status::timeout &&
               replies_.count(sequence) == 0 && reply_errors_.count(sequence) == 0 &&
               !closed_.load()) {
      return Status(ErrorCode::kTimeout, "reply deadline exceeded");
    }
  }
  auto reply_it = replies_.find(sequence);
  if (reply_it != replies_.end()) {
    std::vector<uint8_t> payload = std::move(reply_it->second.payload);
    replies_.erase(reply_it);
    return payload;
  }
  auto error_it = reply_errors_.find(sequence);
  if (error_it != reply_errors_.end()) {
    Status status(error_it->second.error.code, error_it->second.error.detail);
    reply_errors_.erase(error_it);
    return status;
  }
  return Status(ErrorCode::kConnection, "connection closed");
}

Result<std::vector<uint8_t>> AudioConnection::RoundTrip(Opcode opcode,
                                                        std::span<const uint8_t> payload) {
  return WaitReply(SendRequest(opcode, payload));
}

bool AudioConnection::PollEvent(EventMessage* event) {
  MutexLock lock(&queue_mu_);
  if (events_.empty()) {
    return false;
  }
  *event = std::move(events_.front());
  events_.pop_front();
  return true;
}

bool AudioConnection::WaitEvent(EventMessage* event, int timeout_ms) {
  MutexLock lock(&queue_mu_);
  if (timeout_ms < 0) {
    while (events_.empty() && !closed_.load()) {
      queue_cv_.Wait(queue_mu_);
    }
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (events_.empty() && !closed_.load()) {
      if (queue_cv_.WaitUntil(queue_mu_, deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }
  if (events_.empty()) {
    return false;
  }
  *event = std::move(events_.front());
  events_.pop_front();
  return true;
}

bool AudioConnection::NextError(AsyncError* error) {
  MutexLock lock(&queue_mu_);
  if (errors_.empty()) {
    return false;
  }
  *error = std::move(errors_.front());
  errors_.pop_front();
  return true;
}

size_t AudioConnection::pending_errors() {
  MutexLock lock(&queue_mu_);
  return errors_.size();
}

Status AudioConnection::Sync() {
  auto result = RoundTrip(Opcode::kSync, {});
  return result.status();
}

void AudioConnection::Close() {
  if (closed_.exchange(true)) {
    if (reader_.joinable()) {
      reader_.join();
    }
    return;
  }
  stream_->Close();
  {
    MutexLock lock(&queue_mu_);
    queue_cv_.NotifyAll();
  }
  if (reader_.joinable()) {
    reader_.join();
  }
}

}  // namespace aud
