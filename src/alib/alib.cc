#include "src/alib/alib.h"

#include "src/common/logging.h"
#include "src/transport/socket_stream.h"

namespace aud {

AudioConnection::AudioConnection(std::unique_ptr<ByteStream> stream, const SetupReply& setup)
    : stream_(std::move(stream)),
      server_name_(setup.server_name),
      device_loud_(setup.device_loud),
      id_next_(setup.id_base),
      id_end_(setup.id_base + setup.id_count) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

AudioConnection::~AudioConnection() { Close(); }

std::unique_ptr<AudioConnection> AudioConnection::Open(std::unique_ptr<ByteStream> stream,
                                                       const std::string& client_name) {
  SetupRequest request;
  request.client_name = client_name;
  ByteWriter w;
  request.Encode(&w);
  if (!WriteMessage(stream.get(), MessageType::kRequest, kSetupOpcode, 0, w.bytes())) {
    return nullptr;
  }
  std::optional<FramedMessage> reply = ReadMessage(stream.get());
  if (!reply || reply->header.code != kSetupOpcode) {
    return nullptr;
  }
  ByteReader r(reply->payload);
  SetupReply setup = SetupReply::Decode(&r);
  if (!r.ok() || setup.success == 0) {
    LogLine(LogLevel::kWarning) << "connection setup refused: " << setup.reason;
    return nullptr;
  }
  return std::unique_ptr<AudioConnection>(new AudioConnection(std::move(stream), setup));
}

std::unique_ptr<AudioConnection> AudioConnection::OpenTcp(const std::string& host,
                                                          uint16_t port,
                                                          const std::string& client_name) {
  std::unique_ptr<ByteStream> stream = ConnectTcp(host, port);
  if (stream == nullptr) {
    return nullptr;
  }
  return Open(std::move(stream), client_name);
}

ResourceId AudioConnection::AllocId() {
  MutexLock lock(&write_mu_);
  if (id_next_ >= id_end_) {
    return kNoResource;
  }
  return id_next_++;
}

void AudioConnection::ReaderLoop() {
  while (!closed_.load()) {
    std::optional<FramedMessage> message = ReadMessage(stream_.get());
    if (!message) {
      break;
    }
    MutexLock lock(&queue_mu_);
    switch (message->header.type) {
      case MessageType::kReply:
        replies_[message->header.sequence] = std::move(*message);
        break;
      case MessageType::kEvent: {
        ByteReader r(message->payload);
        events_.push_back(EventMessage::Decode(&r));
        break;
      }
      case MessageType::kError: {
        ByteReader r(message->payload);
        AsyncError error;
        error.sequence = message->header.sequence;
        error.error = ErrorMessage::Decode(&r);
        // Errors are visible both to WaitReply (keyed) and NextError.
        reply_errors_[error.sequence] = error;
        errors_.push_back(std::move(error));
        break;
      }
      case MessageType::kRequest:
        break;  // Servers do not send requests.
    }
    queue_cv_.NotifyAll();
  }
  closed_.store(true);
  MutexLock lock(&queue_mu_);
  queue_cv_.NotifyAll();
}

uint32_t AudioConnection::SendRequest(Opcode opcode, std::span<const uint8_t> payload) {
  MutexLock lock(&write_mu_);
  uint32_t seq = next_sequence_++;
  if (!WriteMessage(stream_.get(), MessageType::kRequest, static_cast<uint16_t>(opcode), seq,
                    payload)) {
    closed_.store(true);
  }
  return seq;
}

Result<std::vector<uint8_t>> AudioConnection::WaitReply(uint32_t sequence) {
  MutexLock lock(&queue_mu_);
  while (replies_.count(sequence) == 0 && reply_errors_.count(sequence) == 0 &&
         !closed_.load()) {
    queue_cv_.Wait(queue_mu_);
  }
  auto reply_it = replies_.find(sequence);
  if (reply_it != replies_.end()) {
    std::vector<uint8_t> payload = std::move(reply_it->second.payload);
    replies_.erase(reply_it);
    return payload;
  }
  auto error_it = reply_errors_.find(sequence);
  if (error_it != reply_errors_.end()) {
    Status status(error_it->second.error.code, error_it->second.error.detail);
    reply_errors_.erase(error_it);
    return status;
  }
  return Status(ErrorCode::kConnection, "connection closed");
}

Result<std::vector<uint8_t>> AudioConnection::RoundTrip(Opcode opcode,
                                                        std::span<const uint8_t> payload) {
  return WaitReply(SendRequest(opcode, payload));
}

bool AudioConnection::PollEvent(EventMessage* event) {
  MutexLock lock(&queue_mu_);
  if (events_.empty()) {
    return false;
  }
  *event = std::move(events_.front());
  events_.pop_front();
  return true;
}

bool AudioConnection::WaitEvent(EventMessage* event, int timeout_ms) {
  MutexLock lock(&queue_mu_);
  if (timeout_ms < 0) {
    while (events_.empty() && !closed_.load()) {
      queue_cv_.Wait(queue_mu_);
    }
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (events_.empty() && !closed_.load()) {
      if (queue_cv_.WaitUntil(queue_mu_, deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }
  if (events_.empty()) {
    return false;
  }
  *event = std::move(events_.front());
  events_.pop_front();
  return true;
}

bool AudioConnection::NextError(AsyncError* error) {
  MutexLock lock(&queue_mu_);
  if (errors_.empty()) {
    return false;
  }
  *error = std::move(errors_.front());
  errors_.pop_front();
  return true;
}

size_t AudioConnection::pending_errors() {
  MutexLock lock(&queue_mu_);
  return errors_.size();
}

Status AudioConnection::Sync() {
  auto result = RoundTrip(Opcode::kSync, {});
  return result.status();
}

void AudioConnection::Close() {
  if (closed_.exchange(true)) {
    if (reader_.joinable()) {
      reader_.join();
    }
    return;
  }
  stream_->Close();
  {
    MutexLock lock(&queue_mu_);
    queue_cv_.NotifyAll();
  }
  if (reader_.joinable()) {
    reader_.join();
  }
}

}  // namespace aud
