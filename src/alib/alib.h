// Alib: the procedural client-side interface to the audio protocol
// (section 4.2) — "a veneer over the protocol and the lowest level
// interface that applications will expect to use."
//
// AudioConnection is the Display-equivalent: it owns the byte stream, the
// client's resource-id range, the reply/event/error queues and a reader
// thread. Requests are asynchronous (SendRequest returns immediately);
// queries block for their reply; protocol errors arrive asynchronously and
// are drained with NextError (section 4.1).

#ifndef SRC_ALIB_ALIB_H_
#define SRC_ALIB_ALIB_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/transport/framer.h"
#include "src/transport/stream.h"
#include "src/wire/messages.h"

namespace aud {

// An asynchronous protocol error, tagged with the failing request.
struct AsyncError {
  uint32_t sequence = 0;
  ErrorMessage error;
};

// Retry schedule for OpenTcpRetry: exponential backoff with seeded full
// jitter, so a herd of restarting clients spreads out instead of hammering
// a recovering server in lockstep — and a test replays the exact schedule
// from the seed.
struct ConnectRetryOptions {
  int attempts = 5;               // total connect attempts (>= 1)
  uint32_t backoff_ms = 10;       // delay before the first retry
  uint32_t max_backoff_ms = 500;  // exponential growth cap
  uint64_t jitter_seed = 1;
};

class AudioConnection {
 public:
  ~AudioConnection();

  AudioConnection(const AudioConnection&) = delete;
  AudioConnection& operator=(const AudioConnection&) = delete;

  // Performs connection setup over an established stream. Returns nullptr
  // (and closes the stream) if the server refuses.
  static std::unique_ptr<AudioConnection> Open(std::unique_ptr<ByteStream> stream,
                                               const std::string& client_name);

  // Connects to host:port over TCP and performs setup. The AUD_ALIB_FAULT
  // env spec (see fault_stream.h) wraps the client side of the transport
  // for chaos tests.
  static std::unique_ptr<AudioConnection> OpenTcp(const std::string& host, uint16_t port,
                                                  const std::string& client_name);

  // OpenTcp with retries: exponential backoff + jitter between attempts.
  // Returns nullptr only after `retry.attempts` failures.
  static std::unique_ptr<AudioConnection> OpenTcpRetry(
      const std::string& host, uint16_t port, const std::string& client_name,
      const ConnectRetryOptions& retry = {});

  bool connected() const { return !closed_; }
  const std::string& server_name() const { return server_name_; }
  ResourceId device_loud() const { return device_loud_; }

  // Base of this connection's resource-id block (from the setup reply).
  ResourceId id_base() const { return id_base_; }

  // The trace id the server assigns to the request with `sequence` on this
  // connection: (id-block base << 32) | sequence. The client can therefore
  // stamp/predict ids without a server round trip — send a request, note
  // its sequence, and ask GetRequestTrace for exactly that request.
  uint64_t TraceIdFor(uint32_t sequence) const {
    return (static_cast<uint64_t>(id_base_) << 32) | sequence;
  }

  // Allocates a fresh resource id from this connection's block.
  ResourceId AllocId();

  // -- Raw protocol ---------------------------------------------------------------

  // Sends one request; returns its sequence number without waiting.
  uint32_t SendRequest(Opcode opcode, std::span<const uint8_t> payload);

  // Blocks until the reply for `sequence` arrives. An error for that
  // sequence surfaces as a non-OK status; if the connection dies mid-wait
  // the status is kConnection, and if an rpc deadline is set and passes
  // first it is kTimeout (the request may still execute server-side).
  Result<std::vector<uint8_t>> WaitReply(uint32_t sequence);

  // Deadline applied to every blocking round-trip; <= 0 (default) waits
  // forever. Takes effect from the next WaitReply.
  void set_rpc_deadline_ms(int ms) { rpc_deadline_ms_.store(ms); }
  int rpc_deadline_ms() const { return rpc_deadline_ms_.load(); }

  // Round trip: send + wait, like the many small query wrappers below.
  Result<std::vector<uint8_t>> RoundTrip(Opcode opcode, std::span<const uint8_t> payload);

  // -- Events and errors -----------------------------------------------------------

  // Non-blocking; returns false when the queue is empty.
  bool PollEvent(EventMessage* event);

  // Blocks up to timeout_ms (-1 = forever) for the next event.
  bool WaitEvent(EventMessage* event, int timeout_ms = -1);

  // Drains one queued asynchronous error.
  bool NextError(AsyncError* error);
  size_t pending_errors();

  // Flushes the pipeline: a Sync round trip guarantees every prior request
  // has been processed and its errors (if any) queued locally.
  Status Sync();

  // Sends a NoOp request (a pipeline filler; the server does nothing).
  void NoOp();

  // -- Typed request wrappers (requests.cc) ------------------------------------------

  ResourceId CreateLoud(ResourceId parent, const AttrList& attrs);
  void DestroyLoud(ResourceId loud);
  ResourceId CreateDevice(ResourceId loud, DeviceClass device_class, const AttrList& attrs);
  void DestroyDevice(ResourceId device);
  void AugmentDevice(ResourceId device, const AttrList& attrs);
  Result<VirtualDeviceReply> QueryDevice(ResourceId device);

  ResourceId CreateWire(ResourceId src_device, uint16_t src_port, ResourceId dst_device,
                        uint16_t dst_port);
  ResourceId CreateTypedWire(ResourceId src_device, uint16_t src_port, ResourceId dst_device,
                             uint16_t dst_port, AudioFormat format);
  void DestroyWire(ResourceId wire);
  Result<WiresReply> QueryWires(ResourceId device);

  void MapLoud(ResourceId loud, bool override_redirect = false);
  void UnmapLoud(ResourceId loud);
  void RaiseLoud(ResourceId loud, bool override_redirect = false);
  void LowerLoud(ResourceId loud, bool override_redirect = false);
  Result<LoudStateReply> QueryLoud(ResourceId loud);

  ResourceId CreateSound(AudioFormat format);
  void DestroySound(ResourceId sound);
  void WriteSound(ResourceId sound, uint64_t offset, std::span<const uint8_t> data);
  Result<std::vector<uint8_t>> ReadSound(ResourceId sound, uint64_t offset, uint32_t length);
  Result<SoundInfoReply> QuerySound(ResourceId sound);
  ResourceId LoadCatalogueSound(const std::string& name);
  void SaveCatalogueSound(ResourceId sound, const std::string& name);
  Result<CatalogueReply> ListCatalogue();

  void Enqueue(ResourceId loud, const std::vector<CommandSpec>& commands);
  void Immediate(ResourceId loud, const CommandSpec& command);
  void StartQueue(ResourceId loud);
  void StopQueue(ResourceId loud);
  void PauseQueue(ResourceId loud);
  void ResumeQueue(ResourceId loud);
  void FlushQueue(ResourceId loud);
  Result<QueueStateReply> QueryQueue(ResourceId loud);

  void SelectEvents(ResourceId resource, uint32_t mask);
  void SetSyncMarks(ResourceId loud, uint32_t interval_ms);

  void ChangeProperty(ResourceId resource, const std::string& name, const std::string& type,
                      std::span<const uint8_t> value);
  void DeleteProperty(ResourceId resource, const std::string& name);
  Result<PropertyReply> GetProperty(ResourceId resource, const std::string& name);
  Result<PropertyListReply> ListProperties(ResourceId resource);
  void SetRedirect(bool enable);

  Result<DeviceLoudReply> QueryDeviceLoud();
  Result<ActiveStackReply> QueryActiveStack();
  Result<int64_t> GetServerTime();

  // Server introspection (protocol minor 1).
  Result<ServerStatsReply> GetServerStats(bool include_opcodes = true);
  Result<ServerTraceReply> GetServerTrace(uint32_t max_events = 0);

  // Request tracing and per-entity statistics (protocol minor 2).
  // trace_id 0 fetches the most recently sampled request's spans.
  Result<RequestTraceReply> GetRequestTrace(uint64_t trace_id = 0,
                                            uint32_t max_spans = 0);
  Result<EntityStatsReply> GetEntityStats(bool include_devices = true);

  void Close();

 private:
  AudioConnection(std::unique_ptr<ByteStream> stream, const SetupReply& setup);

  void ReaderLoop();

  // The stream object is not guarded: the reader thread calls
  // stream_->Read() concurrently with writers (ByteStream impls are
  // duplex-safe); write_mu_ serializes the writers.
  std::unique_ptr<ByteStream> stream_;
  std::string server_name_;
  ResourceId device_loud_ = kNoResource;
  // Immutable after setup; read without a lock by TraceIdFor.
  ResourceId id_base_ = kNoResource;

  // Serializes outbound frames, sequence allocation and id allocation.
  // Leaf lock; never held together with queue_mu_ (DESIGN.md decision 9).
  Mutex write_mu_{LockRank::kAlibWrite, "AudioConnection::write_mu_"};
  ResourceId id_next_ AUD_GUARDED_BY(write_mu_) = kNoResource;
  ResourceId id_end_ AUD_GUARDED_BY(write_mu_) = kNoResource;
  uint32_t next_sequence_ AUD_GUARDED_BY(write_mu_) = 1;

  // Guards everything the reader thread hands to waiting callers.
  Mutex queue_mu_{LockRank::kAlibQueue, "AudioConnection::queue_mu_"};
  CondVar queue_cv_;
  std::deque<EventMessage> events_ AUD_GUARDED_BY(queue_mu_);
  std::deque<AsyncError> errors_ AUD_GUARDED_BY(queue_mu_);
  std::map<uint32_t, FramedMessage> replies_ AUD_GUARDED_BY(queue_mu_);
  std::map<uint32_t, AsyncError> reply_errors_ AUD_GUARDED_BY(queue_mu_);

  std::thread reader_;
  std::atomic<bool> closed_{false};
  std::atomic<int> rpc_deadline_ms_{0};
};

// -- Introspection conveniences -----------------------------------------------------

// Free-function spellings of the stats/trace queries, matching the Aud*
// naming of the original library veneer.
inline Result<ServerStatsReply> AudGetServerStats(AudioConnection& conn,
                                                  bool include_opcodes = true) {
  return conn.GetServerStats(include_opcodes);
}

inline Result<ServerTraceReply> AudGetServerTrace(AudioConnection& conn,
                                                  uint32_t max_events = 0) {
  return conn.GetServerTrace(max_events);
}

inline Result<RequestTraceReply> AudGetRequestTrace(AudioConnection& conn,
                                                    uint64_t trace_id = 0,
                                                    uint32_t max_spans = 0) {
  return conn.GetRequestTrace(trace_id, max_spans);
}

inline Result<EntityStatsReply> AudGetEntityStats(AudioConnection& conn,
                                                  bool include_devices = true) {
  return conn.GetEntityStats(include_devices);
}

// -- Command builders (the queue vocabulary of section 5.5) -----------------------

CommandSpec PlayCommand(ResourceId device, ResourceId sound, uint32_t tag = 0,
                        int64_t start_sample = 0, int64_t end_sample = -1);
CommandSpec RecordCommand(ResourceId device, ResourceId sound, uint8_t termination,
                          uint32_t max_ms = 0, uint32_t tag = 0);
CommandSpec StopCommand(ResourceId device, uint32_t tag = 0);
CommandSpec PauseCommand(ResourceId device, uint32_t tag = 0);
CommandSpec ResumeCommand(ResourceId device, uint32_t tag = 0);
CommandSpec ChangeGainCommand(ResourceId device, int32_t gain, uint32_t tag = 0);
CommandSpec DialCommand(ResourceId device, const std::string& number, uint32_t tag = 0);
CommandSpec AnswerCommand(ResourceId device, uint32_t tag = 0);
CommandSpec HangUpCommand(ResourceId device, uint32_t tag = 0);
CommandSpec SendDtmfCommand(ResourceId device, const std::string& digits, uint32_t tag = 0);
CommandSpec SetInputGainCommand(ResourceId device, uint16_t input, int32_t gain,
                                uint32_t tag = 0);
CommandSpec SpeakTextCommand(ResourceId device, const std::string& text, uint32_t tag = 0);
CommandSpec SetTextLanguageCommand(ResourceId device, const std::string& language,
                                   uint32_t tag = 0);
CommandSpec SetValuesCommand(ResourceId device, const AttrList& values, uint32_t tag = 0);
CommandSpec SetExceptionListCommand(
    ResourceId device, const std::vector<std::pair<std::string, std::string>>& entries,
    uint32_t tag = 0);
CommandSpec TrainCommand(ResourceId device, const std::string& word, ResourceId sound,
                         uint32_t tag = 0);
CommandSpec SetVocabularyCommand(ResourceId device, const std::vector<std::string>& words,
                                 uint32_t tag = 0);
CommandSpec AdjustContextCommand(ResourceId device, const std::vector<std::string>& words,
                                 uint32_t tag = 0);
CommandSpec SaveVocabularyCommand(ResourceId device, const std::string& name,
                                  uint32_t tag = 0);
CommandSpec NoteCommand(ResourceId device, uint8_t midi_note, uint8_t velocity,
                        uint32_t duration_ms, uint32_t tag = 0);
CommandSpec SetVoiceCommand(ResourceId device, const VoiceArgs& voice, uint32_t tag = 0);
CommandSpec SetCrossbarStateCommand(ResourceId device, const CrossbarStateArgs& state,
                                    uint32_t tag = 0);
CommandSpec CoBeginCommand();
CommandSpec CoEndCommand();
CommandSpec DelayCommand(uint32_t milliseconds);
CommandSpec DelayEndCommand();

}  // namespace aud

#endif  // SRC_ALIB_ALIB_H_
