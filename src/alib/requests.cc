// Typed request wrappers and command builders: the bulk of the Alib
// procedural surface.

#include "src/alib/alib.h"

namespace aud {

namespace {

template <typename Req>
std::vector<uint8_t> EncodeReq(const Req& req) {
  ByteWriter w;
  req.Encode(&w);
  return w.Take();
}

// Decodes a reply payload with the given struct's Decode.
template <typename Reply>
Result<Reply> DecodeReply(Result<std::vector<uint8_t>> raw) {
  if (!raw.ok()) {
    return raw.status();
  }
  ByteReader r(raw.value());
  Reply reply = Reply::Decode(&r);
  if (!r.ok()) {
    return Status(ErrorCode::kConnection, "malformed reply");
  }
  return reply;
}

}  // namespace

void AudioConnection::NoOp() { SendRequest(Opcode::kNoOp, {}); }

// -- LOUD tree ---------------------------------------------------------------

ResourceId AudioConnection::CreateLoud(ResourceId parent, const AttrList& attrs) {
  CreateLoudReq req;
  req.id = AllocId();
  req.parent = parent;
  req.attrs = attrs;
  SendRequest(Opcode::kCreateLoud, EncodeReq(req));
  return req.id;
}

void AudioConnection::DestroyLoud(ResourceId loud) {
  SendRequest(Opcode::kDestroyLoud, EncodeReq(ResourceReq{loud}));
}

ResourceId AudioConnection::CreateDevice(ResourceId loud, DeviceClass device_class,
                                         const AttrList& attrs) {
  CreateVirtualDeviceReq req;
  req.id = AllocId();
  req.loud = loud;
  req.device_class = device_class;
  req.attrs = attrs;
  SendRequest(Opcode::kCreateVirtualDevice, EncodeReq(req));
  return req.id;
}

void AudioConnection::DestroyDevice(ResourceId device) {
  SendRequest(Opcode::kDestroyVirtualDevice, EncodeReq(ResourceReq{device}));
}

void AudioConnection::AugmentDevice(ResourceId device, const AttrList& attrs) {
  AugmentVirtualDeviceReq req;
  req.id = device;
  req.attrs = attrs;
  SendRequest(Opcode::kAugmentVirtualDevice, EncodeReq(req));
}

Result<VirtualDeviceReply> AudioConnection::QueryDevice(ResourceId device) {
  return DecodeReply<VirtualDeviceReply>(
      RoundTrip(Opcode::kQueryVirtualDevice, EncodeReq(ResourceReq{device})));
}

// -- Wires ----------------------------------------------------------------------

ResourceId AudioConnection::CreateWire(ResourceId src_device, uint16_t src_port,
                                       ResourceId dst_device, uint16_t dst_port) {
  CreateWireReq req;
  req.id = AllocId();
  req.src_device = src_device;
  req.src_port = src_port;
  req.dst_device = dst_device;
  req.dst_port = dst_port;
  req.has_format = 0;
  SendRequest(Opcode::kCreateWire, EncodeReq(req));
  return req.id;
}

ResourceId AudioConnection::CreateTypedWire(ResourceId src_device, uint16_t src_port,
                                            ResourceId dst_device, uint16_t dst_port,
                                            AudioFormat format) {
  CreateWireReq req;
  req.id = AllocId();
  req.src_device = src_device;
  req.src_port = src_port;
  req.dst_device = dst_device;
  req.dst_port = dst_port;
  req.has_format = 1;
  req.format = format;
  SendRequest(Opcode::kCreateWire, EncodeReq(req));
  return req.id;
}

void AudioConnection::DestroyWire(ResourceId wire) {
  SendRequest(Opcode::kDestroyWire, EncodeReq(ResourceReq{wire}));
}

Result<WiresReply> AudioConnection::QueryWires(ResourceId device) {
  return DecodeReply<WiresReply>(
      RoundTrip(Opcode::kQueryWires, EncodeReq(ResourceReq{device})));
}

// -- Mapping ------------------------------------------------------------------------

void AudioConnection::MapLoud(ResourceId loud, bool override_redirect) {
  MapLoudReq req;
  req.loud = loud;
  req.override_redirect = override_redirect ? 1 : 0;
  SendRequest(Opcode::kMapLoud, EncodeReq(req));
}

void AudioConnection::UnmapLoud(ResourceId loud) {
  SendRequest(Opcode::kUnmapLoud, EncodeReq(ResourceReq{loud}));
}

void AudioConnection::RaiseLoud(ResourceId loud, bool override_redirect) {
  MapLoudReq req;
  req.loud = loud;
  req.override_redirect = override_redirect ? 1 : 0;
  SendRequest(Opcode::kRaiseLoud, EncodeReq(req));
}

void AudioConnection::LowerLoud(ResourceId loud, bool override_redirect) {
  MapLoudReq req;
  req.loud = loud;
  req.override_redirect = override_redirect ? 1 : 0;
  SendRequest(Opcode::kLowerLoud, EncodeReq(req));
}

Result<LoudStateReply> AudioConnection::QueryLoud(ResourceId loud) {
  return DecodeReply<LoudStateReply>(
      RoundTrip(Opcode::kQueryLoud, EncodeReq(ResourceReq{loud})));
}

// -- Sounds --------------------------------------------------------------------------

ResourceId AudioConnection::CreateSound(AudioFormat format) {
  CreateSoundReq req;
  req.id = AllocId();
  req.format = format;
  SendRequest(Opcode::kCreateSound, EncodeReq(req));
  return req.id;
}

void AudioConnection::DestroySound(ResourceId sound) {
  SendRequest(Opcode::kDestroySound, EncodeReq(ResourceReq{sound}));
}

void AudioConnection::WriteSound(ResourceId sound, uint64_t offset,
                                 std::span<const uint8_t> data) {
  WriteSoundDataReq req;
  req.id = sound;
  req.offset = offset;
  req.data.assign(data.begin(), data.end());
  SendRequest(Opcode::kWriteSoundData, EncodeReq(req));
}

Result<std::vector<uint8_t>> AudioConnection::ReadSound(ResourceId sound, uint64_t offset,
                                                        uint32_t length) {
  ReadSoundDataReq req;
  req.id = sound;
  req.offset = offset;
  req.length = length;
  auto reply = DecodeReply<SoundDataReply>(RoundTrip(Opcode::kReadSoundData, EncodeReq(req)));
  if (!reply.ok()) {
    return reply.status();
  }
  return std::move(reply.value().data);
}

Result<SoundInfoReply> AudioConnection::QuerySound(ResourceId sound) {
  return DecodeReply<SoundInfoReply>(
      RoundTrip(Opcode::kQuerySound, EncodeReq(ResourceReq{sound})));
}

ResourceId AudioConnection::LoadCatalogueSound(const std::string& name) {
  NamedSoundReq req;
  req.id = AllocId();
  req.name = name;
  SendRequest(Opcode::kLoadCatalogueSound, EncodeReq(req));
  return req.id;
}

void AudioConnection::SaveCatalogueSound(ResourceId sound, const std::string& name) {
  NamedSoundReq req;
  req.id = sound;
  req.name = name;
  SendRequest(Opcode::kSaveCatalogueSound, EncodeReq(req));
}

Result<CatalogueReply> AudioConnection::ListCatalogue() {
  return DecodeReply<CatalogueReply>(RoundTrip(Opcode::kListCatalogue, {}));
}

// -- Queues ------------------------------------------------------------------------------

void AudioConnection::Enqueue(ResourceId loud, const std::vector<CommandSpec>& commands) {
  EnqueueCommandsReq req;
  req.loud = loud;
  req.commands = commands;
  SendRequest(Opcode::kEnqueueCommands, EncodeReq(req));
}

void AudioConnection::Immediate(ResourceId loud, const CommandSpec& command) {
  ImmediateCommandReq req;
  req.loud = loud;
  req.command = command;
  SendRequest(Opcode::kImmediateCommand, EncodeReq(req));
}

void AudioConnection::StartQueue(ResourceId loud) {
  SendRequest(Opcode::kStartQueue, EncodeReq(ResourceReq{loud}));
}

void AudioConnection::StopQueue(ResourceId loud) {
  SendRequest(Opcode::kStopQueue, EncodeReq(ResourceReq{loud}));
}

void AudioConnection::PauseQueue(ResourceId loud) {
  SendRequest(Opcode::kPauseQueue, EncodeReq(ResourceReq{loud}));
}

void AudioConnection::ResumeQueue(ResourceId loud) {
  SendRequest(Opcode::kResumeQueue, EncodeReq(ResourceReq{loud}));
}

void AudioConnection::FlushQueue(ResourceId loud) {
  SendRequest(Opcode::kFlushQueue, EncodeReq(ResourceReq{loud}));
}

Result<QueueStateReply> AudioConnection::QueryQueue(ResourceId loud) {
  return DecodeReply<QueueStateReply>(
      RoundTrip(Opcode::kQueryQueue, EncodeReq(ResourceReq{loud})));
}

// -- Events / properties / manager ---------------------------------------------------------

void AudioConnection::SelectEvents(ResourceId resource, uint32_t mask) {
  SelectEventsReq req;
  req.resource = resource;
  req.mask = mask;
  SendRequest(Opcode::kSelectEvents, EncodeReq(req));
}

void AudioConnection::SetSyncMarks(ResourceId loud, uint32_t interval_ms) {
  SetSyncMarksReq req;
  req.loud = loud;
  req.interval_ms = interval_ms;
  SendRequest(Opcode::kSetSyncMarks, EncodeReq(req));
}

void AudioConnection::ChangeProperty(ResourceId resource, const std::string& name,
                                     const std::string& type,
                                     std::span<const uint8_t> value) {
  ChangePropertyReq req;
  req.resource = resource;
  req.name = name;
  req.type = type;
  req.value.assign(value.begin(), value.end());
  SendRequest(Opcode::kChangeProperty, EncodeReq(req));
}

void AudioConnection::DeleteProperty(ResourceId resource, const std::string& name) {
  NamedPropertyReq req;
  req.resource = resource;
  req.name = name;
  SendRequest(Opcode::kDeleteProperty, EncodeReq(req));
}

Result<PropertyReply> AudioConnection::GetProperty(ResourceId resource,
                                                   const std::string& name) {
  NamedPropertyReq req;
  req.resource = resource;
  req.name = name;
  return DecodeReply<PropertyReply>(RoundTrip(Opcode::kGetProperty, EncodeReq(req)));
}

Result<PropertyListReply> AudioConnection::ListProperties(ResourceId resource) {
  return DecodeReply<PropertyListReply>(
      RoundTrip(Opcode::kListProperties, EncodeReq(ResourceReq{resource})));
}

void AudioConnection::SetRedirect(bool enable) {
  SetRedirectReq req;
  req.enable = enable ? 1 : 0;
  SendRequest(Opcode::kSetRedirect, EncodeReq(req));
}

Result<DeviceLoudReply> AudioConnection::QueryDeviceLoud() {
  return DecodeReply<DeviceLoudReply>(RoundTrip(Opcode::kQueryDeviceLoud, {}));
}

Result<ActiveStackReply> AudioConnection::QueryActiveStack() {
  return DecodeReply<ActiveStackReply>(RoundTrip(Opcode::kQueryActiveStack, {}));
}

Result<int64_t> AudioConnection::GetServerTime() {
  auto reply = DecodeReply<ServerTimeReply>(RoundTrip(Opcode::kGetServerTime, {}));
  if (!reply.ok()) {
    return reply.status();
  }
  return reply.value().server_time;
}

Result<ServerStatsReply> AudioConnection::GetServerStats(bool include_opcodes) {
  GetServerStatsReq req;
  req.include_opcodes = include_opcodes ? 1 : 0;
  return DecodeReply<ServerStatsReply>(RoundTrip(Opcode::kGetServerStats, EncodeReq(req)));
}

Result<ServerTraceReply> AudioConnection::GetServerTrace(uint32_t max_events) {
  GetServerTraceReq req;
  req.max_events = max_events;
  return DecodeReply<ServerTraceReply>(RoundTrip(Opcode::kGetServerTrace, EncodeReq(req)));
}

Result<RequestTraceReply> AudioConnection::GetRequestTrace(uint64_t trace_id,
                                                           uint32_t max_spans) {
  GetRequestTraceReq req;
  req.trace_id = trace_id;
  req.max_spans = max_spans;
  return DecodeReply<RequestTraceReply>(
      RoundTrip(Opcode::kGetRequestTrace, EncodeReq(req)));
}

Result<EntityStatsReply> AudioConnection::GetEntityStats(bool include_devices) {
  GetEntityStatsReq req;
  req.include_devices = include_devices ? 1 : 0;
  return DecodeReply<EntityStatsReply>(
      RoundTrip(Opcode::kGetEntityStats, EncodeReq(req)));
}

// -- Command builders ---------------------------------------------------------------------

namespace {
CommandSpec MakeCommand(ResourceId device, DeviceCommand command, uint32_t tag,
                        std::vector<uint8_t> args = {}) {
  CommandSpec spec;
  spec.device = device;
  spec.command = command;
  spec.tag = tag;
  spec.args = std::move(args);
  return spec;
}
}  // namespace

CommandSpec PlayCommand(ResourceId device, ResourceId sound, uint32_t tag,
                        int64_t start_sample, int64_t end_sample) {
  PlayArgs args{sound, start_sample, end_sample};
  return MakeCommand(device, DeviceCommand::kPlay, tag, args.Encode());
}

CommandSpec RecordCommand(ResourceId device, ResourceId sound, uint8_t termination,
                          uint32_t max_ms, uint32_t tag) {
  RecordArgs args{sound, termination, max_ms};
  return MakeCommand(device, DeviceCommand::kRecord, tag, args.Encode());
}

CommandSpec StopCommand(ResourceId device, uint32_t tag) {
  return MakeCommand(device, DeviceCommand::kStop, tag);
}

CommandSpec PauseCommand(ResourceId device, uint32_t tag) {
  return MakeCommand(device, DeviceCommand::kPause, tag);
}

CommandSpec ResumeCommand(ResourceId device, uint32_t tag) {
  return MakeCommand(device, DeviceCommand::kResume, tag);
}

CommandSpec ChangeGainCommand(ResourceId device, int32_t gain, uint32_t tag) {
  GainArgs args{gain};
  return MakeCommand(device, DeviceCommand::kChangeGain, tag, args.Encode());
}

CommandSpec DialCommand(ResourceId device, const std::string& number, uint32_t tag) {
  StringArg args{number};
  return MakeCommand(device, DeviceCommand::kDial, tag, args.Encode());
}

CommandSpec AnswerCommand(ResourceId device, uint32_t tag) {
  return MakeCommand(device, DeviceCommand::kAnswer, tag);
}

CommandSpec HangUpCommand(ResourceId device, uint32_t tag) {
  return MakeCommand(device, DeviceCommand::kHangUp, tag);
}

CommandSpec SendDtmfCommand(ResourceId device, const std::string& digits, uint32_t tag) {
  StringArg args{digits};
  return MakeCommand(device, DeviceCommand::kSendDtmf, tag, args.Encode());
}

CommandSpec SetInputGainCommand(ResourceId device, uint16_t input, int32_t gain,
                                uint32_t tag) {
  InputGainArgs args{input, gain};
  return MakeCommand(device, DeviceCommand::kSetInputGain, tag, args.Encode());
}

CommandSpec SpeakTextCommand(ResourceId device, const std::string& text, uint32_t tag) {
  StringArg args{text};
  return MakeCommand(device, DeviceCommand::kSpeakText, tag, args.Encode());
}

CommandSpec SetTextLanguageCommand(ResourceId device, const std::string& language,
                                   uint32_t tag) {
  StringArg args{language};
  return MakeCommand(device, DeviceCommand::kSetTextLanguage, tag, args.Encode());
}

CommandSpec SetValuesCommand(ResourceId device, const AttrList& values, uint32_t tag) {
  ValuesArgs args{values};
  return MakeCommand(device, DeviceCommand::kSetValues, tag, args.Encode());
}

CommandSpec SetExceptionListCommand(
    ResourceId device, const std::vector<std::pair<std::string, std::string>>& entries,
    uint32_t tag) {
  ExceptionListArgs args{entries};
  return MakeCommand(device, DeviceCommand::kSetExceptionList, tag, args.Encode());
}

CommandSpec TrainCommand(ResourceId device, const std::string& word, ResourceId sound,
                         uint32_t tag) {
  TrainArgs args{word, sound};
  return MakeCommand(device, DeviceCommand::kTrain, tag, args.Encode());
}

CommandSpec SetVocabularyCommand(ResourceId device, const std::vector<std::string>& words,
                                 uint32_t tag) {
  WordListArgs args{words};
  return MakeCommand(device, DeviceCommand::kSetVocabulary, tag, args.Encode());
}

CommandSpec AdjustContextCommand(ResourceId device, const std::vector<std::string>& words,
                                 uint32_t tag) {
  WordListArgs args{words};
  return MakeCommand(device, DeviceCommand::kAdjustContext, tag, args.Encode());
}

CommandSpec SaveVocabularyCommand(ResourceId device, const std::string& name, uint32_t tag) {
  StringArg args{name};
  return MakeCommand(device, DeviceCommand::kSaveVocabulary, tag, args.Encode());
}

CommandSpec NoteCommand(ResourceId device, uint8_t midi_note, uint8_t velocity,
                        uint32_t duration_ms, uint32_t tag) {
  NoteArgs args{midi_note, velocity, duration_ms};
  return MakeCommand(device, DeviceCommand::kNote, tag, args.Encode());
}

CommandSpec SetVoiceCommand(ResourceId device, const VoiceArgs& voice, uint32_t tag) {
  return MakeCommand(device, DeviceCommand::kSetVoice, tag, voice.Encode());
}

CommandSpec SetCrossbarStateCommand(ResourceId device, const CrossbarStateArgs& state,
                                    uint32_t tag) {
  return MakeCommand(device, DeviceCommand::kSetState, tag, state.Encode());
}

CommandSpec CoBeginCommand() {
  return MakeCommand(kNoResource, DeviceCommand::kCoBegin, 0);
}

CommandSpec CoEndCommand() { return MakeCommand(kNoResource, DeviceCommand::kCoEnd, 0); }

CommandSpec DelayCommand(uint32_t milliseconds) {
  DelayArgs args{milliseconds};
  return MakeCommand(kNoResource, DeviceCommand::kDelay, 0, args.Encode());
}

CommandSpec DelayEndCommand() {
  return MakeCommand(kNoResource, DeviceCommand::kDelayEnd, 0);
}

}  // namespace aud
