// Concrete virtual-device classes (section 5.1). Each subclass implements
// the class's command set and its role in the engine's produce/transform/
// consume tick.

#ifndef SRC_SERVER_DEVICES_H_
#define SRC_SERVER_DEVICES_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dsp/agc.h"
#include "src/dsp/encoding.h"
#include "src/dsp/pause_detector.h"
#include "src/dsp/resampler.h"
#include "src/hw/microphone.h"
#include "src/hw/phone_line.h"
#include "src/hw/speaker.h"
#include "src/music/note_synth.h"
#include "src/recognize/recognizer.h"
#include "src/server/decoded_cache.h"
#include "src/server/virtual_device.h"
#include "src/synth/synthesizer.h"

namespace aud {

// ---------------------------------------------------------------------------
// Inputs and outputs: connections to external devices (speakers, mics).
// ---------------------------------------------------------------------------

class InputDevice : public VirtualDevice {
 public:
  InputDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int source_port_count() const override { return 1; }
  bool NeedsPhysicalDevice() const override { return true; }

  size_t Produce(EngineTick* tick, size_t frames) override;

 private:
  std::vector<Sample> scratch_;
};

class OutputDevice : public VirtualDevice {
 public:
  OutputDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int sink_port_count() const override { return 1; }
  bool NeedsPhysicalDevice() const override { return true; }

  void Consume(EngineTick* tick) override;

 private:
  std::vector<Sample> scratch_;
};

// ---------------------------------------------------------------------------
// Player: sound data -> output port (Play, Stop, Pause, Restart).
// ---------------------------------------------------------------------------

class PlayerDevice : public VirtualDevice {
 public:
  PlayerDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int source_port_count() const override { return 1; }

  Status StartCommand(const CommandSpec& spec, EngineTick* tick) override;
  void AbortCommand() override;
  size_t Produce(EngineTick* tick, size_t frames) override;

  // Playback position in samples of the current/last sound (for sync).
  int64_t position_samples() const { return position_; }
  int64_t total_samples() const { return total_; }
  bool playing() const { return CommandRunning(); }

  void CollectTickSounds(std::vector<ResourceId>* out) const override {
    if (sound_id_ != kNoResource) {
      out->push_back(sound_id_);
    }
  }

 private:
  // Rebuilds the incremental decode machinery, discarding the first
  // `consumed` engine-rate samples (used when a cached play must fall back
  // to streaming decode after the sound mutated mid-play).
  void SwitchToIncremental(SoundObject* sound, EngineTick* tick, size_t consumed);

  ResourceId sound_id_ = kNoResource;
  int64_t position_ = 0;   // next sample index to decode
  int64_t end_sample_ = -1;
  int64_t total_ = 0;
  int64_t skip_samples_ = 0;  // start-offset samples still to discard
  std::unique_ptr<StreamDecoder> decoder_;
  std::unique_ptr<Resampler> resampler_;
  int64_t decode_byte_pos_ = 0;
  std::vector<Sample> decoded_;
  // Cache fast path (whole-sound plays only): engine-rate PCM shared with
  // the server's decoded-sound cache, plus the generation it was decoded
  // from. A generation mismatch mid-play falls back to the incremental
  // decoder; bit-exactness is preserved because the cached stream is a
  // prefix of the re-decoded one.
  DecodedSoundCache::Entry cached_;
  size_t cache_pos_ = 0;
  uint64_t cache_generation_ = 0;
  std::vector<Sample> gain_scratch_;
};

// ---------------------------------------------------------------------------
// Recorder: input port -> sound data (Record, Stop, Pause, Restart).
// ---------------------------------------------------------------------------

class RecorderDevice : public VirtualDevice {
 public:
  RecorderDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int sink_port_count() const override { return 1; }

  Status StartCommand(const CommandSpec& spec, EngineTick* tick) override;
  void AbortCommand() override;
  void Consume(EngineTick* tick) override;

  uint64_t samples_recorded() const { return samples_recorded_; }

  void CollectTickSounds(std::vector<ResourceId>* out) const override {
    if (sound_id_ != kNoResource) {
      out->push_back(sound_id_);
    }
  }

 private:
  void FinishRecording(EngineTick* tick, RecordStopReason reason);

  ResourceId sound_id_ = kNoResource;
  uint8_t termination_ = kTerminateOnStop;
  int64_t max_samples_ = 0;  // 0 = unlimited
  uint64_t samples_recorded_ = 0;
  std::unique_ptr<StreamEncoder> encoder_;
  std::unique_ptr<Resampler> out_resampler_;
  std::unique_ptr<PauseDetector> pause_detector_;
  std::unique_ptr<AutomaticGainControl> agc_;
  bool agc_enabled_ = false;
  std::vector<Sample> scratch_;
  // Pause compression keeps the pristine linear take (at the sound's rate)
  // so FinishRecording compresses directly instead of re-decoding the whole
  // encoded sound.
  bool keep_linear_history_ = false;
  std::vector<Sample> linear_history_;
  // Per-tick scratch, members so steady-state recording is allocation-free.
  std::vector<Sample> resample_scratch_;
  std::vector<uint8_t> encode_scratch_;
};

// ---------------------------------------------------------------------------
// Telephone: combined input/output with call control (Dial, Answer,
// SendDTMF, HangUp...).
// ---------------------------------------------------------------------------

class TelephoneDevice : public VirtualDevice {
 public:
  TelephoneDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int source_port_count() const override { return 1; }  // audio from the line
  int sink_port_count() const override { return 1; }    // audio to the line
  bool NeedsPhysicalDevice() const override { return true; }

  void Bind(PhysicalDevice* device, ResourceId device_loud_id) override;
  void Unbind() override;

  Status StartCommand(const CommandSpec& spec, EngineTick* tick) override;
  Status ImmediateCommand(const CommandSpec& spec) override;
  void AbortCommand() override;

  size_t Produce(EngineTick* tick, size_t frames) override;
  void Consume(EngineTick* tick) override;

  PhoneLineUnit* line_unit() const { return phone_; }
  CallState call_state() const { return call_state_; }

  // Routed from the bound line by the server (also when unmapped monitors
  // watch via the device LOUD).
  void OnLineEvent(const ExchangeLine::Event& event, EngineTick* tick);

 private:
  PhoneLineUnit* phone_ = nullptr;
  CallState call_state_ = CallState::kIdle;
  // Which command is awaiting an event (Dial waits for connect/busy/fail).
  DeviceCommand pending_ = DeviceCommand::kStop;
  std::vector<Sample> scratch_;
};

// ---------------------------------------------------------------------------
// Mixer: N inputs -> combined outputs, per-input percentages (SetGain).
// ---------------------------------------------------------------------------

class MixerDevice : public VirtualDevice {
 public:
  MixerDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int source_port_count() const override { return outputs_; }
  int sink_port_count() const override { return inputs_; }

  Status StartCommand(const CommandSpec& spec, EngineTick* tick) override;
  Status ImmediateCommand(const CommandSpec& spec) override;

  // Transform step: pulls sink wires, mixes by per-input gain, pushes the
  // mix to every source wire.
  size_t Produce(EngineTick* tick, size_t frames) override;

  int32_t input_gain(uint16_t input) const;

 private:
  Status SetInputGain(const CommandSpec& spec);

  int inputs_;
  int outputs_;
  std::vector<int32_t> gains_;
  std::vector<Sample> pulled_;
  std::vector<int32_t> acc_;
  std::vector<Sample> mixed_;
};

// ---------------------------------------------------------------------------
// Crossbar: routing switch (SetState).
// ---------------------------------------------------------------------------

class CrossbarDevice : public VirtualDevice {
 public:
  CrossbarDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int source_port_count() const override { return outputs_; }
  int sink_port_count() const override { return inputs_; }

  Status StartCommand(const CommandSpec& spec, EngineTick* tick) override;
  Status ImmediateCommand(const CommandSpec& spec) override;

  size_t Produce(EngineTick* tick, size_t frames) override;

  bool route_enabled(uint16_t input, uint16_t output) const;

 private:
  Status SetState(const CommandSpec& spec);

  int inputs_;
  int outputs_;
  std::vector<uint8_t> matrix_;  // inputs_ x outputs_
  std::vector<std::vector<Sample>> pulled_;
  std::vector<int32_t> acc_;
  std::vector<Sample> out_;
};

// ---------------------------------------------------------------------------
// DSP: software stream manipulation (pass-through with gain; the protocol
// leaves DSP commands unspecified).
// ---------------------------------------------------------------------------

class DspDevice : public VirtualDevice {
 public:
  DspDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int source_port_count() const override { return 1; }
  int sink_port_count() const override { return 1; }

  size_t Produce(EngineTick* tick, size_t frames) override;

 private:
  std::vector<Sample> pulled_;
};

// ---------------------------------------------------------------------------
// Speech synthesizer: SpeakText and vocal-tract controls.
// ---------------------------------------------------------------------------

class SynthesizerDevice : public VirtualDevice {
 public:
  SynthesizerDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int source_port_count() const override { return 1; }

  Status StartCommand(const CommandSpec& spec, EngineTick* tick) override;
  Status ImmediateCommand(const CommandSpec& spec) override;
  void AbortCommand() override;

  size_t Produce(EngineTick* tick, size_t frames) override;

  TextToSpeech* tts() { return tts_.get(); }

 private:
  Status ApplyControl(const CommandSpec& spec);

  std::unique_ptr<TextToSpeech> tts_;
  std::vector<Sample> pending_;
  size_t pending_offset_ = 0;
};

// ---------------------------------------------------------------------------
// Speech recognizer: Train/SetVocabulary/AdjustContext/SaveVocabulary,
// recognition events.
// ---------------------------------------------------------------------------

class RecognizerDevice : public VirtualDevice {
 public:
  RecognizerDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int sink_port_count() const override { return 1; }

  Status StartCommand(const CommandSpec& spec, EngineTick* tick) override;
  Status ImmediateCommand(const CommandSpec& spec) override;

  void Consume(EngineTick* tick) override;

  WordRecognizer* recognizer() { return recognizer_.get(); }

 private:
  Status ApplyControl(const CommandSpec& spec, EngineTick* tick);

  std::unique_ptr<WordRecognizer> recognizer_;
  std::vector<Sample> pulled_;
};

// ---------------------------------------------------------------------------
// Music synthesizer: Note / SetVoice.
// ---------------------------------------------------------------------------

class MusicDevice : public VirtualDevice {
 public:
  MusicDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs);

  int source_port_count() const override { return 1; }

  Status StartCommand(const CommandSpec& spec, EngineTick* tick) override;
  Status ImmediateCommand(const CommandSpec& spec) override;
  void AbortCommand() override;

  size_t Produce(EngineTick* tick, size_t frames) override;

  NoteSynthesizer* synth() { return synth_.get(); }

 private:
  std::unique_ptr<NoteSynthesizer> synth_;
  int64_t note_frames_left_ = 0;
  std::vector<Sample> block_;
};

}  // namespace aud

#endif  // SRC_SERVER_DEVICES_H_
