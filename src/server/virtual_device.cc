#include "src/server/virtual_device.h"

#include "src/server/devices.h"
#include "src/server/loud.h"

namespace aud {

VirtualDevice::VirtualDevice(ResourceId id, uint32_t owner, DeviceClass device_class,
                             Loud* loud, AttrList attrs)
    : ServerObject(id, ObjectKind::kVirtualDevice, owner),
      class_(device_class),
      loud_(loud),
      attrs_(std::move(attrs)) {}

VirtualDevice::~VirtualDevice() = default;

AudioFormat VirtualDevice::PortFormat(bool is_source, uint16_t port) const {
  (void)is_source;
  (void)port;
  AudioFormat format = kTelephoneFormat;
  if (auto enc = attrs_.GetU32(AttrTag::kEncoding)) {
    format.encoding = static_cast<Encoding>(*enc);
  }
  if (auto rate = attrs_.GetU32(AttrTag::kSampleRate)) {
    format.sample_rate_hz = *rate;
  }
  return format;
}

void VirtualDevice::AttachWire(WireObject* wire, bool as_source) {
  if (as_source) {
    source_wires_.push_back(wire);
  } else {
    sink_wires_.push_back(wire);
  }
}

void VirtualDevice::DetachWire(WireObject* wire) {
  std::erase(source_wires_, wire);
  std::erase(sink_wires_, wire);
}

void VirtualDevice::Bind(PhysicalDevice* device, ResourceId device_loud_id) {
  bound_ = device;
  bound_device_id_ = device_loud_id;
}

void VirtualDevice::Unbind() {
  bound_ = nullptr;
  // bound_device_id_ is retained so reactivation can rebind the same
  // hardware when the application augmented its attributes (section 5.3).
}

Status VirtualDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  (void)tick;
  // Generic queued forms of the immediate commands complete instantly.
  switch (spec.command) {
    case DeviceCommand::kChangeGain: {
      GainArgs args = GainArgs::Decode(spec.args);
      gain_ = args.gain;
      return Status::Ok();
    }
    case DeviceCommand::kStop:
      AbortCommand();
      return Status::Ok();
    case DeviceCommand::kPause:
      PauseDevice();
      return Status::Ok();
    case DeviceCommand::kResume:
      ResumeDevice();
      return Status::Ok();
    default:
      return Status(ErrorCode::kBadValue, "command not supported by this device class");
  }
}

Status VirtualDevice::ImmediateCommand(const CommandSpec& spec) {
  switch (spec.command) {
    case DeviceCommand::kChangeGain: {
      GainArgs args = GainArgs::Decode(spec.args);
      gain_ = args.gain;
      return Status::Ok();
    }
    case DeviceCommand::kStop:
      AbortCommand();
      return Status::Ok();
    case DeviceCommand::kPause:
      PauseDevice();
      return Status::Ok();
    case DeviceCommand::kResume:
      ResumeDevice();
      return Status::Ok();
    default:
      return Status(ErrorCode::kBadValue, "command not valid in immediate mode");
  }
}

bool VirtualDevice::PauseDevice() {
  paused_ = true;
  return true;
}

void VirtualDevice::ResumeDevice() { paused_ = false; }

void VirtualDevice::AbortCommand() {
  if (command_running_) {
    abort_latch_ = true;
  }
  command_running_ = false;
}

size_t VirtualDevice::Produce(EngineTick* tick, size_t frames) {
  (void)tick;
  (void)frames;
  return 0;
}

void VirtualDevice::Consume(EngineTick* tick) { (void)tick; }

std::unique_ptr<VirtualDevice> CreateVirtualDevice(ResourceId id, uint32_t owner,
                                                   DeviceClass device_class, Loud* loud,
                                                   AttrList attrs) {
  switch (device_class) {
    case DeviceClass::kInput:
      return std::make_unique<InputDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kOutput:
      return std::make_unique<OutputDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kPlayer:
      return std::make_unique<PlayerDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kRecorder:
      return std::make_unique<RecorderDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kTelephone:
      return std::make_unique<TelephoneDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kMixer:
      return std::make_unique<MixerDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kSpeechSynthesizer:
      return std::make_unique<SynthesizerDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kSpeechRecognizer:
      return std::make_unique<RecognizerDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kMusicSynthesizer:
      return std::make_unique<MusicDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kCrossbar:
      return std::make_unique<CrossbarDevice>(id, owner, loud, std::move(attrs));
    case DeviceClass::kDsp:
      return std::make_unique<DspDevice>(id, owner, loud, std::move(attrs));
  }
  return nullptr;
}

// Out of line from core.h: needs VirtualDevice complete.
WireInfo CompleteWireInfo(const WireObject& wire) {
  WireInfo info;
  info.id = wire.id();
  info.src_device = wire.src() != nullptr ? wire.src()->id() : kNoResource;
  info.src_port = wire.src_port();
  info.dst_device = wire.dst() != nullptr ? wire.dst()->id() : kNoResource;
  info.dst_port = wire.dst_port();
  info.format = wire.format();
  return info;
}

}  // namespace aud
