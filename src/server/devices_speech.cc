// Speech synthesizer, speech recognizer and music synthesizer device
// classes (section 5.1).

#include <algorithm>

#include "src/dsp/gain.h"
#include "src/server/devices.h"
#include "src/server/loud.h"
#include "src/server/server_state.h"

namespace aud {

// ---------------------------------------------------------------------------
// SynthesizerDevice
// ---------------------------------------------------------------------------

SynthesizerDevice::SynthesizerDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kSpeechSynthesizer, loud, std::move(attrs)) {
  tts_ = std::make_unique<TextToSpeech>(loud->server()->engine_rate());
  if (auto language = this->attrs().GetString(AttrTag::kLanguage)) {
    tts_->SetLanguage(*language);
  }
}

Status SynthesizerDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  switch (spec.command) {
    case DeviceCommand::kSpeakText: {
      StringArg args = StringArg::Decode(spec.args);
      pending_ = tts_->Synthesize(args.value);
      pending_offset_ = 0;
      set_command_running(true);
      return Status::Ok();
    }
    case DeviceCommand::kSetTextLanguage:
    case DeviceCommand::kSetValues:
    case DeviceCommand::kSetExceptionList:
      return ApplyControl(spec);
    default:
      return VirtualDevice::StartCommand(spec, tick);
  }
}

Status SynthesizerDevice::ImmediateCommand(const CommandSpec& spec) {
  switch (spec.command) {
    case DeviceCommand::kSetTextLanguage:
    case DeviceCommand::kSetValues:
    case DeviceCommand::kSetExceptionList:
      return ApplyControl(spec);
    default:
      return VirtualDevice::ImmediateCommand(spec);
  }
}

Status SynthesizerDevice::ApplyControl(const CommandSpec& spec) {
  switch (spec.command) {
    case DeviceCommand::kSetTextLanguage: {
      StringArg args = StringArg::Decode(spec.args);
      if (!tts_->SetLanguage(args.value)) {
        return Status(ErrorCode::kBadValue, "unsupported language: " + args.value);
      }
      return Status::Ok();
    }
    case DeviceCommand::kSetValues: {
      ValuesArgs args = ValuesArgs::Decode(spec.args);
      VoiceParameters& params = tts_->parameters();
      if (auto pitch = args.values.GetU32(AttrTag::kPitch)) {
        params.pitch_hz = static_cast<double>(*pitch);
      }
      if (auto rate = args.values.GetU32(AttrTag::kSpeakingRate)) {
        params.speaking_rate = *rate / 100.0;
      }
      if (auto volume = args.values.GetU32(AttrTag::kVolume)) {
        params.volume = *volume / 100.0;
      }
      if (auto shift = args.values.GetU32(AttrTag::kFormantShift)) {
        params.formant_shift = *shift / 100.0;
      }
      return Status::Ok();
    }
    case DeviceCommand::kSetExceptionList: {
      ExceptionListArgs args = ExceptionListArgs::Decode(spec.args);
      for (const auto& [word, phonemes] : args.entries) {
        tts_->AddException(word, phonemes);
      }
      return Status::Ok();
    }
    default:
      return Status(ErrorCode::kBadValue, "not a synthesizer control");
  }
}

void SynthesizerDevice::AbortCommand() {
  pending_.clear();
  pending_offset_ = 0;
  VirtualDevice::AbortCommand();
}

size_t SynthesizerDevice::Produce(EngineTick* tick, size_t frames) {
  if (!CommandRunning() || paused()) {
    return 0;
  }
  size_t available = pending_.size() - pending_offset_;
  size_t n = std::min(frames, available);
  if (n > 0) {
    std::span<const Sample> block(pending_.data() + pending_offset_, n);
    if (gain() != kUnityGain) {
      std::vector<Sample> scaled(block.begin(), block.end());
      ApplyGain(scaled, gain());
      for (WireObject* wire : source_wires()) {
        wire->PushAt(tick->start_frame, tick->branch_offset, scaled);
      }
    } else {
      for (WireObject* wire : source_wires()) {
        wire->PushAt(tick->start_frame, tick->branch_offset, block);
      }
    }
    pending_offset_ += n;
  }
  if (pending_offset_ >= pending_.size()) {
    pending_.clear();
    pending_offset_ = 0;
    set_command_running(false);
  }
  return n;
}

// ---------------------------------------------------------------------------
// RecognizerDevice
// ---------------------------------------------------------------------------

RecognizerDevice::RecognizerDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kSpeechRecognizer, loud, std::move(attrs)) {
  recognizer_ = std::make_unique<WordRecognizer>(loud->server()->engine_rate());
  if (auto name = this->attrs().GetString(AttrTag::kVocabularyName)) {
    auto& store = loud->server()->vocabularies();
    auto it = store.find(*name);
    if (it != store.end()) {
      recognizer_->LoadTemplates(it->second);
    }
  }
}

Status RecognizerDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  switch (spec.command) {
    case DeviceCommand::kTrain:
    case DeviceCommand::kSetVocabulary:
    case DeviceCommand::kAdjustContext:
    case DeviceCommand::kSaveVocabulary:
      return ApplyControl(spec, tick);
    default:
      return VirtualDevice::StartCommand(spec, tick);
  }
}

Status RecognizerDevice::ImmediateCommand(const CommandSpec& spec) {
  switch (spec.command) {
    case DeviceCommand::kTrain:
    case DeviceCommand::kSetVocabulary:
    case DeviceCommand::kAdjustContext:
    case DeviceCommand::kSaveVocabulary:
      return ApplyControl(spec, nullptr);
    default:
      return VirtualDevice::ImmediateCommand(spec);
  }
}

Status RecognizerDevice::ApplyControl(const CommandSpec& spec, EngineTick* tick) {
  ServerState* server = loud()->server();
  switch (spec.command) {
    case DeviceCommand::kTrain: {
      TrainArgs args = TrainArgs::Decode(spec.args);
      SoundObject* sound =
          tick != nullptr ? tick->server->FindSound(args.sound) : server->FindSound(args.sound);
      if (sound == nullptr) {
        return Status(ErrorCode::kBadResource, "Train: no such sound");
      }
      // Decode the template audio to engine-rate linear.
      StreamDecoder decoder(sound->format().encoding);
      std::vector<Sample> linear;
      decoder.Decode(sound->data(), &linear);
      if (sound->format().sample_rate_hz != server->engine_rate()) {
        Resampler resampler(sound->format().sample_rate_hz, server->engine_rate());
        std::vector<Sample> resampled;
        resampler.Process(linear, &resampled);
        linear = std::move(resampled);
      }
      recognizer_->Train(args.word, linear);
      return Status::Ok();
    }
    case DeviceCommand::kSetVocabulary: {
      WordListArgs args = WordListArgs::Decode(spec.args);
      recognizer_->SetVocabulary(args.words);
      return Status::Ok();
    }
    case DeviceCommand::kAdjustContext: {
      WordListArgs args = WordListArgs::Decode(spec.args);
      recognizer_->AdjustContext(args.words);
      return Status::Ok();
    }
    case DeviceCommand::kSaveVocabulary: {
      StringArg args = StringArg::Decode(spec.args);
      if (args.value.empty()) {
        return Status(ErrorCode::kBadName, "SaveVocabulary: empty name");
      }
      server->vocabularies()[args.value] = recognizer_->SaveTemplates();
      return Status::Ok();
    }
    default:
      return Status(ErrorCode::kBadValue, "not a recognizer control");
  }
}

void RecognizerDevice::Consume(EngineTick* tick) {
  for (WireObject* wire : sink_wires()) {
    pulled_.clear();
    wire->Pull(tick->frames, &pulled_);
    if (pulled_.empty()) {
      continue;
    }
    recognizer_->ProcessStream(pulled_, [&](const RecognitionResult& result) {
      RecognitionArgs args;
      args.word = result.word;
      args.score = result.score;
      tick->server->EmitEvent(loud()->Root(), EventType::kRecognition, id(), args.Encode());
    });
  }
}

// ---------------------------------------------------------------------------
// MusicDevice
// ---------------------------------------------------------------------------

MusicDevice::MusicDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kMusicSynthesizer, loud, std::move(attrs)) {
  synth_ = std::make_unique<NoteSynthesizer>(loud->server()->engine_rate());
}

Status MusicDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  switch (spec.command) {
    case DeviceCommand::kNote: {
      NoteArgs args = NoteArgs::Decode(spec.args);
      synth_->NoteOn(args.midi_note, args.velocity, args.duration_ms);
      set_command_running(true);
      return Status::Ok();
    }
    case DeviceCommand::kSetVoice: {
      VoiceArgs args = VoiceArgs::Decode(spec.args);
      VoiceSettings settings;
      settings.waveform = static_cast<Waveform>(args.waveform);
      settings.envelope.attack_ms = args.attack_ms;
      settings.envelope.decay_ms = args.decay_ms;
      settings.envelope.sustain_centi = args.sustain_centi;
      settings.envelope.release_ms = args.release_ms;
      synth_->SetVoice(settings);
      return Status::Ok();
    }
    default:
      return VirtualDevice::StartCommand(spec, tick);
  }
}

Status MusicDevice::ImmediateCommand(const CommandSpec& spec) {
  if (spec.command == DeviceCommand::kSetVoice) {
    return StartCommand(spec, nullptr);
  }
  return VirtualDevice::ImmediateCommand(spec);
}

void MusicDevice::AbortCommand() {
  // Drop all live notes but keep the configured voice.
  VoiceSettings voice = synth_->voice();
  synth_ = std::make_unique<NoteSynthesizer>(loud()->server()->engine_rate());
  synth_->SetVoice(voice);
  VirtualDevice::AbortCommand();
}

size_t MusicDevice::Produce(EngineTick* tick, size_t frames) {
  if (!CommandRunning() || paused()) {
    return 0;
  }
  block_.clear();
  synth_->Generate(frames, &block_);
  if (gain() != kUnityGain) {
    ApplyGain(block_, gain());
  }
  for (WireObject* wire : source_wires()) {
    wire->PushAt(tick->start_frame, tick->branch_offset, block_);
  }
  if (synth_->idle()) {
    set_command_running(false);
  }
  return frames;
}

}  // namespace aud
