#include "src/server/egress_queue.h"

namespace aud {

namespace {

size_t FrameBytes(const EgressFrame& frame) {
  return kHeaderSize + frame.payload.size();
}

}  // namespace

EgressPushResult EgressQueue::Push(EgressFrame frame) {
  const size_t bytes = FrameBytes(frame);
  EgressPushResult result{EgressPushStatus::kQueued, 0};
  {
    MutexLock lock(&mu_);
    if (closed_ || draining_) {
      return {EgressPushStatus::kClosed, 0};
    }
    if (queued_bytes_ + bytes > budget_bytes_) {
      if (policy_ == EgressOverflowPolicy::kDisconnect) {
        return {EgressPushStatus::kOverflow, 0};
      }
      // Shed oldest events until the new frame fits. Replies and errors
      // stay: a client blocked in a round-trip is owed its answer.
      for (auto it = frames_.begin();
           it != frames_.end() && queued_bytes_ + bytes > budget_bytes_;) {
        if (it->type == MessageType::kEvent) {
          queued_bytes_ -= FrameBytes(*it);
          if (bytes_gauge_ != nullptr) {
            bytes_gauge_->Sub(static_cast<int64_t>(FrameBytes(*it)));
          }
          it = frames_.erase(it);
          ++result.dropped_events;
        } else {
          ++it;
        }
      }
      if (queued_bytes_ + bytes > budget_bytes_) {
        // Undroppable backlog still over budget. An incoming event is
        // itself sheddable; anything else means the client has stopped
        // reading replies — overflow, let the caller disconnect it.
        if (frame.type == MessageType::kEvent) {
          ++result.dropped_events;
          dropped_events_.fetch_add(result.dropped_events,
                                    std::memory_order_relaxed);
          return result;
        }
        if (result.dropped_events > 0) {
          dropped_events_.fetch_add(result.dropped_events,
                                    std::memory_order_relaxed);
        }
        result.status = EgressPushStatus::kOverflow;
        return result;
      }
    }
    queued_bytes_ += bytes;
    if (bytes_gauge_ != nullptr) {
      bytes_gauge_->Add(static_cast<int64_t>(bytes));
    }
    frames_.push_back(std::move(frame));
  }
  if (result.dropped_events > 0) {
    dropped_events_.fetch_add(result.dropped_events, std::memory_order_relaxed);
  }
  cv_.NotifyOne();
  return result;
}

bool EgressQueue::Pop(EgressFrame* out) {
  MutexLock lock(&mu_);
  while (true) {
    if (closed_) {
      return false;
    }
    if (!frames_.empty()) {
      *out = std::move(frames_.front());
      frames_.pop_front();
      const size_t bytes = FrameBytes(*out);
      queued_bytes_ -= bytes;
      if (bytes_gauge_ != nullptr) {
        bytes_gauge_->Sub(static_cast<int64_t>(bytes));
      }
      return true;
    }
    if (draining_) {
      return false;
    }
    cv_.Wait(mu_);
  }
}

bool EgressQueue::TryPop(EgressFrame* out) {
  MutexLock lock(&mu_);
  if (closed_ || frames_.empty()) {
    return false;
  }
  *out = std::move(frames_.front());
  frames_.pop_front();
  const size_t bytes = FrameBytes(*out);
  queued_bytes_ -= bytes;
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Sub(static_cast<int64_t>(bytes));
  }
  return true;
}

bool EgressQueue::finished_draining() const {
  MutexLock lock(&mu_);
  return closed_ || (draining_ && frames_.empty());
}

void EgressQueue::BeginDrain() {
  {
    MutexLock lock(&mu_);
    draining_ = true;
  }
  cv_.NotifyAll();
}

void EgressQueue::CloseNow() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
    if (bytes_gauge_ != nullptr && queued_bytes_ > 0) {
      bytes_gauge_->Sub(static_cast<int64_t>(queued_bytes_));
    }
    queued_bytes_ = 0;
    frames_.clear();
  }
  cv_.NotifyAll();
}

void EgressQueue::MarkWriterExited() {
  {
    MutexLock lock(&mu_);
    writer_exited_ = true;
  }
  cv_.NotifyAll();
}

bool EgressQueue::WaitWriterExitedFor(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&mu_);
  while (!writer_exited_) {
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
        !writer_exited_) {
      return false;
    }
  }
  return true;
}

size_t EgressQueue::queued_bytes() const {
  MutexLock lock(&mu_);
  return queued_bytes_;
}

}  // namespace aud
