#include "src/server/stats_render.h"

#include <sstream>

#include "src/common/obs.h"
#include "src/wire/protocol.h"

namespace aud {

namespace {

void EmitCounter(std::ostringstream& out, const char* name, uint64_t value,
                 const char* help) {
  out << "# HELP " << name << " " << help << "\n";
  out << "# TYPE " << name << " counter\n";
  out << name << " " << value << "\n";
}

void EmitGauge(std::ostringstream& out, const char* name, int64_t value,
               const char* help) {
  out << "# HELP " << name << " " << help << "\n";
  out << "# TYPE " << name << " gauge\n";
  out << name << " " << value << "\n";
}

void EmitHistogram(std::ostringstream& out, const char* name,
                   const obs::HistogramSnapshot& h, const char* help) {
  out << "# HELP " << name << " " << help << "\n";
  out << "# TYPE " << name << " summary\n";
  out << name << "{quantile=\"0.5\"} " << h.Percentile(50) << "\n";
  out << name << "{quantile=\"0.9\"} " << h.Percentile(90) << "\n";
  out << name << "{quantile=\"0.99\"} " << h.Percentile(99) << "\n";
  out << name << "_sum " << h.sum << "\n";
  out << name << "_count " << h.count << "\n";
}

void SummarizeHistogram(std::ostringstream& out, const char* label,
                        const obs::HistogramSnapshot& h) {
  out << "  " << label << ": count=" << h.count << " mean=" << h.Mean()
      << " p50=" << h.Percentile(50) << " p99=" << h.Percentile(99)
      << " max=" << h.max << "\n";
}

}  // namespace

std::string RenderPrometheusText(const ServerStatsReply& stats) {
  std::ostringstream out;
  EmitGauge(out, "aud_uptime_ms", static_cast<int64_t>(stats.uptime_ms),
            "Wall time since server start");
  EmitGauge(out, "aud_engine_threads", stats.engine_threads,
            "Engine tick parallelism");
  EmitCounter(out, "aud_ticks_run_total", stats.ticks_run, "Engine ticks run");
  EmitCounter(out, "aud_tick_overruns_total", stats.tick_overruns,
              "Ticks whose cost exceeded their period");
  EmitCounter(out, "aud_epoch_commits_total", stats.epoch_commits,
              "Engine epochs committed");
  EmitCounter(out, "aud_requests_total", stats.requests_total,
              "Protocol requests dispatched");
  EmitCounter(out, "aud_request_errors_total", stats.request_errors_total,
              "Requests answered with an error");
  EmitCounter(out, "aud_connections_total", stats.connections_total,
              "Client connections accepted");
  EmitGauge(out, "aud_connections_open", stats.connections_open,
            "Client connections currently open");
  EmitCounter(out, "aud_bytes_in_total", stats.bytes_in, "Request bytes read");
  EmitCounter(out, "aud_bytes_out_total", stats.bytes_out,
              "Reply/event bytes written");
  EmitCounter(out, "aud_events_sent_total", stats.events_sent,
              "Events delivered to clients");
  EmitCounter(out, "aud_events_dropped_total", stats.events_dropped,
              "Events shed by the egress overflow policy");
  EmitCounter(out, "aud_egress_disconnects_total", stats.egress_disconnects,
              "Slow clients disconnected on egress overflow");
  EmitGauge(out, "aud_egress_queued_bytes", stats.egress_queued_bytes,
            "Current total egress backlog");
  EmitCounter(out, "aud_dispatch_shard_contention_total",
              stats.dispatch_shard_contention,
              "Dispatch waits on a root the tick was holding");
  EmitCounter(out, "aud_commands_enqueued_total", stats.commands_enqueued,
              "Queue commands accepted");
  EmitCounter(out, "aud_commands_done_total", stats.commands_done,
              "Queue commands completed");
  EmitGauge(out, "aud_objects", stats.objects, "Live registry entries");
  EmitCounter(out, "aud_trace_spans_total", stats.trace_spans,
              "Request-scoped trace spans recorded");
  EmitCounter(out, "aud_trace_requests_sampled_total",
              stats.trace_requests_sampled, "Requests that got a root span");
  EmitGauge(out, "aud_trace_sample_every", stats.trace_sample_every,
            "Trace sampling period (0 = tracing off)");
  EmitGauge(out, "aud_connection_loops", stats.loops,
            "Event-loop threads serving connections (0 = thread-per-connection)");
  EmitGauge(out, "aud_fds_watched", stats.fds_watched,
            "Connection fds currently registered with event loops");
  EmitCounter(out, "aud_epoll_waits_total", stats.epoll_waits,
              "Readiness wait syscalls across all loops");
  EmitCounter(out, "aud_loop_wakeups_total", stats.wakeups,
              "Self-pipe wakeups consumed by event loops");
  EmitCounter(out, "aud_readiness_spurious_total", stats.readiness_spurious,
              "Readiness events that yielded no work");
  EmitCounter(out, "aud_admission_rejects_total", stats.admission_rejects,
              "Connections closed at accept time by admission control");
  EmitCounter(out, "aud_rate_limited_total", stats.rate_limited,
              "Requests refused by a per-connection token bucket");
  EmitCounter(out, "aud_rate_limit_disconnects_total",
              stats.rate_limit_disconnects,
              "Flooders disconnected by the hard rate-limit policy");
  EmitCounter(out, "aud_quota_denials_total", stats.quota_denials,
              "Requests refused by a per-client resource quota");
  EmitGauge(out, "aud_draining", stats.draining,
            "1 while a graceful drain is running");
  EmitCounter(out, "aud_drain_forced_closes_total", stats.drain_forced_closes,
              "Connections with unflushed egress cut at the drain deadline");
  EmitGauge(out, "aud_drain_duration_ms",
            static_cast<int64_t>(stats.drain_duration_ms),
            "Wall time of the last graceful drain");
  EmitHistogram(out, "aud_dispatch_us", stats.dispatch_us,
                "Dispatch latency (lock wait + handling), microseconds");
  EmitHistogram(out, "aud_tick_us", stats.tick_us,
                "Engine tick duration, microseconds");
  EmitHistogram(out, "aud_tick_jitter_us", stats.tick_jitter_us,
                "Realtime wakeup lateness, microseconds");
  EmitHistogram(out, "aud_lock_wait_us", stats.lock_wait_us,
                "State/shard lock waits, microseconds");
  EmitHistogram(out, "aud_epoch_commit_us", stats.epoch_commit_us,
                "Epoch commit critical section, microseconds");
  EmitHistogram(out, "aud_mouth_to_ear_us", stats.mouth_to_ear_us,
                "Play accept to first mixed frame, microseconds");
  EmitHistogram(out, "aud_loop_dispatch_us", stats.loop_dispatch_us,
                "One readiness handler run on an event loop, microseconds");
  return out.str();
}

std::string RenderFlightDumpText(const std::string& reason,
                                 const ServerStatsReply& stats,
                                 const std::vector<TraceEventWire>& trace,
                                 const std::vector<std::string>& log_tail) {
  std::ostringstream out;
  out << "=== aud flight recorder dump (" << reason << ") ===\n";
  out << "proto " << stats.proto_major << "." << stats.proto_minor
      << " uptime_ms=" << stats.uptime_ms << " server_time=" << stats.server_time
      << " engine_threads=" << stats.engine_threads << "\n";
  out << "\n--- counters ---\n";
  out << "  ticks_run=" << stats.ticks_run << " tick_overruns=" << stats.tick_overruns
      << " epoch_commits=" << stats.epoch_commits << "\n";
  out << "  requests_total=" << stats.requests_total
      << " request_errors_total=" << stats.request_errors_total << "\n";
  out << "  connections_open=" << stats.connections_open
      << " connections_total=" << stats.connections_total << "\n";
  out << "  bytes_in=" << stats.bytes_in << " bytes_out=" << stats.bytes_out
      << " events_sent=" << stats.events_sent
      << " events_dropped=" << stats.events_dropped << "\n";
  out << "  objects=" << stats.objects << " active_louds=" << stats.active_louds
      << " commands_enqueued=" << stats.commands_enqueued
      << " commands_done=" << stats.commands_done << "\n";
  out << "  trace_spans=" << stats.trace_spans
      << " trace_requests_sampled=" << stats.trace_requests_sampled
      << " trace_sample_every=" << stats.trace_sample_every << "\n";
  out << "  loops=" << stats.loops << " fds_watched=" << stats.fds_watched
      << " epoll_waits=" << stats.epoll_waits
      << " loop_wakeups=" << stats.wakeups
      << " readiness_spurious=" << stats.readiness_spurious << "\n";
  out << "  admission_rejects=" << stats.admission_rejects
      << " rate_limited=" << stats.rate_limited
      << " rate_limit_disconnects=" << stats.rate_limit_disconnects
      << " quota_denials=" << stats.quota_denials << "\n";
  out << "  draining=" << stats.draining
      << " drain_forced_closes=" << stats.drain_forced_closes
      << " drain_duration_ms=" << stats.drain_duration_ms << "\n";
  out << "\n--- latencies (us) ---\n";
  SummarizeHistogram(out, "dispatch", stats.dispatch_us);
  SummarizeHistogram(out, "tick", stats.tick_us);
  SummarizeHistogram(out, "tick_jitter", stats.tick_jitter_us);
  SummarizeHistogram(out, "lock_wait", stats.lock_wait_us);
  SummarizeHistogram(out, "epoch_commit", stats.epoch_commit_us);
  SummarizeHistogram(out, "mouth_to_ear", stats.mouth_to_ear_us);
  SummarizeHistogram(out, "loop_dispatch", stats.loop_dispatch_us);
  out << "\n--- trace ring (" << trace.size() << " events, oldest first) ---\n";
  for (const TraceEventWire& e : trace) {
    out << "  t=" << e.t_us << " seq=" << e.seq << " tid=" << e.tid << " "
        << obs::TraceReasonName(static_cast<obs::TraceReason>(e.reason));
    if (e.trace != 0) {
      out << " trace=" << e.trace << " parent=" << e.parent << " dur_us=" << e.dur_us;
    }
    out << " arg0=" << e.arg0 << " arg1=" << e.arg1 << "\n";
  }
  out << "\n--- log tail (" << log_tail.size() << " lines) ---\n";
  for (const std::string& line : log_tail) {
    out << "  " << line << "\n";
  }
  out << "=== end of dump ===\n";
  return out.str();
}

}  // namespace aud
