#include "src/server/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>

namespace aud {

namespace {

// Async-signal-safe: only re-raises after dumping, so the default action
// (core dump / termination with the original signal) still happens.
void FatalSignalHandler(int signo) {
  FlightRecorder::Instance().WriteDump();
  struct sigaction dfl;
  memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  sigaction(signo, &dfl, nullptr);
  raise(signo);
}

}  // namespace

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::set_dump_path(const std::string& path) { dump_path_ = path; }

void FlightRecorder::SetSnapshot(const std::string& text) {
  const size_t n = std::min(text.size(), kBufferBytes);
  memcpy(buffer_, text.data(), n);
  length_.store(n, std::memory_order_release);
}

bool FlightRecorder::WriteDump() {
  const size_t n = length_.load(std::memory_order_acquire);
  if (n == 0) {
    return false;
  }
  const int fd =
      open(dump_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  size_t written = 0;
  while (written < n) {
    const ssize_t rc = write(fd, buffer_ + written, n - written);
    if (rc <= 0) {
      close(fd);
      return false;
    }
    written += static_cast<size_t>(rc);
  }
  close(fd);
  return true;
}

void FlightRecorder::InstallFatalHandlers() {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = FatalSignalHandler;
  sigemptyset(&sa.sa_mask);
  for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    sigaction(signo, &sa, nullptr);
  }
}

}  // namespace aud
