// Decoded-PCM cache: the decode-once/serve-many half of the data-plane
// fast path. The answering-machine and voice-mail workloads (paper §1, §7)
// replay the same catalogued sounds over and over; instead of running
// StreamDecoder + Resampler inside every Play, the server keeps the linear
// PCM — already resampled to the engine rate — in an LRU cache keyed by
// (sound id, sound generation, target rate). SoundObject::Write bumps the
// generation, so a stale entry can never be served: a mutated sound simply
// misses and re-decodes under its new generation.
//
// Thread safety: PlayerDevice::Produce runs on engine workers during a
// parallel tick, so lookups/inserts take a cache-local mutex (a leaf below
// the big lock — nothing is called while holding it). Entries are
// shared_ptr, so an entry evicted mid-play stays alive for the player that
// is draining it. Cache state affects only *where* samples come from, never
// their values, so the serial/parallel bit-identity guarantee is untouched.

#ifndef SRC_SERVER_DECODED_CACHE_H_
#define SRC_SERVER_DECODED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/sample.h"
#include "src/common/thread_annotations.h"

namespace aud {

class DecodedSoundCache {
 public:
  // Immutable decoded+resampled PCM, shared with in-flight players.
  using Entry = std::shared_ptr<const std::vector<Sample>>;

  struct Key {
    ResourceId sound = kNoResource;
    uint64_t generation = 0;
    uint32_t rate_hz = 0;

    bool operator==(const Key&) const = default;
  };

  DecodedSoundCache() = default;

  // Byte budget (2 bytes per cached sample). 0 disables the cache: Lookup
  // always misses and Insert declines. Shrinking evicts immediately.
  void SetMaxBytes(size_t max_bytes);
  size_t max_bytes() const { return max_bytes_.load(std::memory_order_relaxed); }
  bool enabled() const { return max_bytes() > 0; }

  // Returns the cached entry (promoting it to most-recently-used) or null.
  Entry Lookup(const Key& key);

  // Stores `entry`, evicting least-recently-used entries to fit the budget.
  // Entries larger than the whole budget are not stored (the caller still
  // owns its shared_ptr and can serve from it). Returns how many entries
  // were evicted.
  size_t Insert(const Key& key, Entry entry);

  // Drops every generation/rate entry of `sound` (sound destroyed).
  void EraseSound(ResourceId sound);

  // Current cached payload bytes / entry count.
  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t entry_count() const;

 private:
  struct Slot {
    Key key;
    Entry entry;
    size_t bytes = 0;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.sound;
      h = h * 0x9E3779B97F4A7C15ull + k.generation;
      h = h * 0x9E3779B97F4A7C15ull + k.rate_hz;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  // Evicts LRU entries until the payload fits `budget`. Returns evictions.
  size_t EvictToFit(size_t budget) AUD_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kDecodedCache, "DecodedCache::mu_"};
  // Front = most recently used.
  std::list<Slot> lru_ AUD_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Slot>::iterator, KeyHash> index_ AUD_GUARDED_BY(mu_);
  std::atomic<size_t> max_bytes_{0};
  std::atomic<size_t> bytes_{0};
};

}  // namespace aud

#endif  // SRC_SERVER_DECODED_CACHE_H_
