// VirtualDevice: the device-independent building block of audio structures
// (section 5.1). Each class of device is a subclass of this common object
// class (mirroring the prototype's design, section 6.1). A virtual device
// lives in a LOUD, exposes typed source/sink ports that wires connect, may
// bind to a physical device when its LOUD is activated, and executes the
// class-specific commands of section 5.1.

#ifndef SRC_SERVER_VIRTUAL_DEVICE_H_
#define SRC_SERVER_VIRTUAL_DEVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/physical_device.h"
#include "src/server/core.h"

namespace aud {

class Loud;
class ServerState;

// Context handed to devices during an engine tick.
struct EngineTick {
  ServerState* server = nullptr;
  // Frames in this tick (at the engine's base rate).
  size_t frames = 0;
  // Engine frame count at tick start (the server-side time base).
  int64_t start_frame = 0;
  // Frames of this tick already consumed by the current queue branch
  // before the running command's Produce call (a Delay that expires
  // mid-tick leaves a nonzero offset). Producers align their wire pushes
  // to this offset so mid-tick starts are sample-accurate.
  size_t branch_offset = 0;
};

// How a queued command finished (for CommandDone events).
enum class CommandOutcome : uint8_t {
  kCompleted = 0,
  kAborted = 1,
};

class VirtualDevice : public ServerObject {
 public:
  VirtualDevice(ResourceId id, uint32_t owner, DeviceClass device_class, Loud* loud,
                AttrList attrs);
  ~VirtualDevice() override;

  DeviceClass device_class() const { return class_; }
  Loud* loud() const { return loud_; }

  const AttrList& attrs() const { return attrs_; }
  AttrList& mutable_attrs() { return attrs_; }

  // Port shape. Source ports emit audio; sink ports accept it.
  virtual int source_port_count() const { return 0; }
  virtual int sink_port_count() const { return 0; }

  // Declared format of a port (wire type checking, section 5.2). Defaults
  // to the device's kEncoding/kSampleRate attributes or telephone quality.
  virtual AudioFormat PortFormat(bool is_source, uint16_t port) const;

  // Wires attached to this device.
  const std::vector<WireObject*>& source_wires() const { return source_wires_; }
  const std::vector<WireObject*>& sink_wires() const { return sink_wires_; }
  void AttachWire(WireObject* wire, bool as_source);
  void DetachWire(WireObject* wire);

  // -- Binding (section 5.3) -------------------------------------------------

  // True classes that require physical hardware return a non-null match
  // requirement; software devices bind trivially.
  virtual bool NeedsPhysicalDevice() const { return false; }

  PhysicalDevice* bound_device() const { return bound_; }
  ResourceId bound_device_id() const { return bound_device_id_; }

  // Called by activation once a physical device has been matched (software
  // devices get nullptr). Override to hook hardware event sinks etc.
  virtual void Bind(PhysicalDevice* device, ResourceId device_loud_id);
  virtual void Unbind();

  bool active() const { return active_; }
  void set_active(bool active) { active_ = active; }

  // -- Commands ---------------------------------------------------------------

  // Starts a queued command on this device. On success the command runs
  // until Done() or Abort(). `tag` is echoed in the CommandDone event.
  virtual Status StartCommand(const CommandSpec& spec, EngineTick* tick);

  // True while a started command is still running.
  virtual bool CommandRunning() const { return command_running_; }

  // Executes an immediate-mode command (Stop/Pause/Resume/ChangeGain...).
  // An immediate Stop aborts the running queued command (section 5.1).
  virtual Status ImmediateCommand(const CommandSpec& spec);

  // Pauses/resumes the device as part of queue pause propagation (5.5).
  // Returns false if this device cannot pause (the queue then stops).
  virtual bool PauseDevice();
  virtual void ResumeDevice();
  bool paused() const { return paused_; }

  // Aborts any running command (queue stop / immediate stop / unmap).
  virtual void AbortCommand();

  // True once, if the last command ended by abort rather than completion
  // (consumed by the queue when it emits CommandDone).
  bool ConsumeAbortLatch() {
    bool latched = abort_latch_;
    abort_latch_ = false;
    return latched;
  }

  // -- Engine tick -------------------------------------------------------------

  // Produce phase: push up to tick->frames samples into source wires.
  // Returns frames produced (players return fewer at end-of-sound so the
  // queue can pre-issue the next command inside the same tick).
  virtual size_t Produce(EngineTick* tick, size_t frames);

  // Consume phase: drain sink wires (into hardware, sound data, or the
  // recognizer).
  virtual void Consume(EngineTick* tick);

  // Island partitioning support: appends the ids of sounds this device may
  // read or write during a tick (players decode, recorders append). LOUDs
  // that can touch the same sound must land in the same engine island so
  // the parallel tick never races on sound data.
  virtual void CollectTickSounds(std::vector<ResourceId>* out) const { (void)out; }

  // Gain applied to this device's stream (ChangeGain).
  int32_t gain() const { return gain_; }
  void set_gain(int32_t gain) { gain_ = gain; }

 protected:
  void set_command_running(bool running) {
    command_running_ = running;
    if (running) {
      abort_latch_ = false;
    }
  }

 private:
  DeviceClass class_;
  Loud* loud_;
  AttrList attrs_;
  std::vector<WireObject*> source_wires_;
  std::vector<WireObject*> sink_wires_;
  PhysicalDevice* bound_ = nullptr;
  ResourceId bound_device_id_ = kNoResource;
  bool active_ = false;
  bool command_running_ = false;
  bool abort_latch_ = false;
  bool paused_ = false;
  int32_t gain_ = 10000;
};

// Factory: builds the subclass for `device_class`.
std::unique_ptr<VirtualDevice> CreateVirtualDevice(ResourceId id, uint32_t owner,
                                                   DeviceClass device_class, Loud* loud,
                                                   AttrList attrs);

// Wire description with both endpoint device ids resolved.
WireInfo CompleteWireInfo(const WireObject& wire);

}  // namespace aud

#endif  // SRC_SERVER_VIRTUAL_DEVICE_H_
