#include "src/server/core.h"

#include <algorithm>

#include "src/dsp/encoding.h"

namespace aud {

int64_t SoundObject::sample_count() const {
  return SamplesInBytes(format_.encoding, static_cast<int64_t>(data_.size()));
}

void SoundObject::Write(uint64_t offset, std::span<const uint8_t> bytes) {
  ++generation_;
  uint64_t end = offset + bytes.size();
  if (end > data_.size()) {
    data_.resize(end, 0);
  }
  std::copy(bytes.begin(), bytes.end(), data_.begin() + static_cast<ptrdiff_t>(offset));
}

std::vector<uint8_t> SoundObject::Read(uint64_t offset, uint32_t length) const {
  if (offset >= data_.size()) {
    return {};
  }
  uint64_t end = std::min<uint64_t>(offset + length, data_.size());
  return std::vector<uint8_t>(data_.begin() + static_cast<ptrdiff_t>(offset),
                              data_.begin() + static_cast<ptrdiff_t>(end));
}

size_t WireObject::Pull(size_t n, std::vector<Sample>* out) {
  size_t take = std::min(n, buffer_.size());
  out->insert(out->end(), buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(take));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(take));
  return take;
}

}  // namespace aud
