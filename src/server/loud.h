// LOUD: Logical aUdio Device (section 5.1). A container organizing virtual
// devices into a tree; the root of each tree owns a command queue and is
// the unit of mapping, activation and event selection.

#ifndef SRC_SERVER_LOUD_H_
#define SRC_SERVER_LOUD_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/server/core.h"
#include "src/server/virtual_device.h"

namespace aud {

class CommandQueue;
class ServerState;

class Loud : public ServerObject {
 public:
  Loud(ResourceId id, uint32_t owner, ServerState* server, Loud* parent, AttrList attrs);
  ~Loud() override;

  ServerState* server() const { return server_; }
  Loud* parent() const { return parent_; }
  const std::vector<Loud*>& children() const { return children_; }
  const std::vector<VirtualDevice*>& devices() const { return devices_; }

  const AttrList& attrs() const { return attrs_; }
  AttrList& mutable_attrs() { return attrs_; }

  bool IsRoot() const { return parent_ == nullptr; }
  Loud* Root();

  // Only root LOUDs have a queue (section 5.5: "a command queue is provided
  // for each root LOUD"); non-roots return the root's queue.
  CommandQueue* queue();

  // Per-root engine shard lock (DESIGN.md decision 12). The engine fan-out
  // holds the locks of every root in the island it is ticking; the
  // dispatcher takes exactly one of them (after the state lock, see the
  // documented rank order) for engine-plane requests, so requests against a
  // root the tick is not touching never wait on the tick. Non-roots forward
  // to the root, mirroring queue().
  Mutex* engine_mutex() { return &Root()->engine_mu_; }

  bool mapped() const { return mapped_; }
  void set_mapped(bool mapped) { mapped_ = mapped; }
  bool active() const { return active_; }
  void set_active(bool active) { active_ = active; }

  // Tree maintenance (called by the dispatcher).
  void AddChild(Loud* child) { children_.push_back(child); }
  void RemoveChild(Loud* child);
  void AddDevice(VirtualDevice* dev) { devices_.push_back(dev); }
  void RemoveDevice(VirtualDevice* dev);

  // All devices in this subtree, depth-first.
  void CollectDevices(std::vector<VirtualDevice*>* out) const;
  void CollectLouds(std::vector<Loud*>* out);

  // Properties (section 5.8).
  std::map<std::string, Property>& properties() { return properties_; }

  // Event selection: per-connection masks.
  std::map<uint32_t, uint32_t>& event_masks() { return event_masks_; }
  uint32_t MaskFor(uint32_t conn) const;

  // Sync marks (section 5.7). Interval 0 disables.
  uint32_t sync_interval_ms() const { return sync_interval_ms_; }
  void set_sync_interval_ms(uint32_t ms) {
    sync_interval_ms_ = ms;
    last_sync_position_ = -1;
  }
  // Called by a playing player after producing; emits kSyncMark events on
  // interval boundaries.
  void NoteSyncProgress(int64_t position_samples, int64_t total_samples, int64_t device_time);

  // Per-root frame accounting (GetEntityStats). Counted by the engine tick
  // on the root — relaxed atomics, so a stats snapshot from the dispatcher
  // is safe against a concurrent fan-out. Like queue(), these resolve
  // through Root() so device-phase code can charge the frames through any
  // LOUD of the tree.
  void CountFramesProduced(uint64_t n) {
    Root()->frames_produced_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountFramesConsumed(uint64_t n) {
    Root()->frames_consumed_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t frames_produced() const {
    return frames_produced_.load(std::memory_order_relaxed);
  }
  uint64_t frames_consumed() const {
    return frames_consumed_.load(std::memory_order_relaxed);
  }

 private:
  ServerState* server_;
  Loud* parent_;
  AttrList attrs_;
  std::vector<Loud*> children_;
  std::vector<VirtualDevice*> devices_;
  std::unique_ptr<CommandQueue> queue_;
  bool mapped_ = false;
  bool active_ = false;
  std::map<std::string, Property> properties_;
  std::map<uint32_t, uint32_t> event_masks_;
  uint32_t sync_interval_ms_ = 0;
  int64_t last_sync_position_ = -1;
  // Meaningful on roots only (engine_mutex() resolves through Root()).
  // Rank order key = this LOUD's id (set in the constructor), so the epoch
  // fan-out's ascending-id multi-acquisition validates (lock_rank.h).
  Mutex engine_mu_{LockRank::kEngineRoot, "Loud::engine_mu_"};
  // Meaningful on roots only (Count* resolve through Root()).
  std::atomic<uint64_t> frames_produced_{0};
  std::atomic<uint64_t> frames_consumed_{0};
};

}  // namespace aud

#endif  // SRC_SERVER_LOUD_H_
