#include "src/server/decoded_cache.h"

#include <utility>

namespace aud {

void DecodedSoundCache::SetMaxBytes(size_t max_bytes) {
  MutexLock lock(&mu_);
  max_bytes_.store(max_bytes, std::memory_order_relaxed);
  EvictToFit(max_bytes);
}

DecodedSoundCache::Entry DecodedSoundCache::Lookup(const Key& key) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->entry;
}

size_t DecodedSoundCache::Insert(const Key& key, Entry entry) {
  if (entry == nullptr) {
    return 0;
  }
  const size_t entry_bytes = entry->size() * sizeof(Sample);
  MutexLock lock(&mu_);
  const size_t budget = max_bytes_.load(std::memory_order_relaxed);
  if (entry_bytes > budget) {
    return 0;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Same (sound, generation, rate) decodes to the same PCM; keep the
    // resident entry and just refresh its recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.push_front(Slot{key, std::move(entry), entry_bytes});
  index_[key] = lru_.begin();
  bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
  return EvictToFit(budget);
}

void DecodedSoundCache::EraseSound(ResourceId sound) {
  MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.sound == sound) {
      bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t DecodedSoundCache::entry_count() const {
  MutexLock lock(&mu_);
  return index_.size();
}

size_t DecodedSoundCache::EvictToFit(size_t budget) {
  size_t evicted = 0;
  while (bytes_.load(std::memory_order_relaxed) > budget && !lru_.empty()) {
    const Slot& victim = lru_.back();
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    index_.erase(victim.key);
    lru_.pop_back();
    ++evicted;
  }
  return evicted;
}

}  // namespace aud
