// Text renderers over the stats/trace wire structs, shared by the
// --metrics-port HTTP endpoint and the flight recorder: both views must
// show the same numbers, so both are derived from the same
// ServerStatsReply snapshot rather than reading counters twice.

#ifndef SRC_SERVER_STATS_RENDER_H_
#define SRC_SERVER_STATS_RENDER_H_

#include <string>
#include <vector>

#include "src/wire/messages.h"

namespace aud {

// Prometheus text exposition (version 0.0.4): counters and gauges named
// aud_*, histograms as _count/_sum plus p50/p90/p99 quantile gauges.
std::string RenderPrometheusText(const ServerStatsReply& stats);

// Human-oriented post-mortem dump: the counter snapshot, the merged trace
// ring (timestamp order) and the recent log tail. `reason` names what
// triggered the dump (e.g. "SIGUSR2", "SIGSEGV").
std::string RenderFlightDumpText(const std::string& reason,
                                 const ServerStatsReply& stats,
                                 const std::vector<TraceEventWire>& trace,
                                 const std::vector<std::string>& log_tail);

}  // namespace aud

#endif  // SRC_SERVER_STATS_RENDER_H_
