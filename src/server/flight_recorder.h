// Flight recorder: a pre-rendered post-mortem snapshot that can be written
// from a signal handler. The server re-renders the snapshot periodically
// (and on SIGUSR2); fatal-signal handlers only open/write/close the last
// rendered buffer — the only operations that are async-signal-safe — so a
// crash dump never allocates, locks or formats.

#ifndef SRC_SERVER_FLIGHT_RECORDER_H_
#define SRC_SERVER_FLIGHT_RECORDER_H_

#include <atomic>
#include <string>

namespace aud {

class FlightRecorder {
 public:
  // The process-wide instance (the signal handlers need a global).
  static FlightRecorder& Instance();

  // Where dumps land. Set once at startup, before InstallFatalHandlers.
  void set_dump_path(const std::string& path);
  const std::string& dump_path() const { return dump_path_; }

  // Replaces the pre-rendered snapshot (copy into the fixed buffer;
  // truncates if the text outgrows it). Called from normal threads; the
  // length is published with a release store so a handler that fires
  // mid-copy sees either the old or the new length, and at worst reads a
  // mix of old/new text — acceptable for a crash dump, and the price of
  // staying lock-free on the handler side.
  void SetSnapshot(const std::string& text);

  // Writes the last snapshot to dump_path() using only async-signal-safe
  // calls (open/write/close). Returns false if no snapshot was ever set or
  // the file could not be written. Safe from signal handlers.
  bool WriteDump();

  // Installs handlers for SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT that write
  // the last snapshot and then re-raise with default disposition, so the
  // process still dies with the original signal.
  void InstallFatalHandlers();

 private:
  FlightRecorder() = default;

  static constexpr size_t kBufferBytes = 256 * 1024;

  std::string dump_path_ = "audiond.flight";
  char buffer_[kBufferBytes];
  std::atomic<size_t> length_{0};
};

}  // namespace aud

#endif  // SRC_SERVER_FLIGHT_RECORDER_H_
