// Transform device classes: mixer, crossbar, DSP. These run between the
// produce and consume phases of the engine tick, pulling from their sink
// wires and pushing onto their source wires.

#include <algorithm>

#include "src/dsp/gain.h"
#include "src/server/devices.h"
#include "src/server/loud.h"
#include "src/server/server_state.h"

namespace aud {

// ---------------------------------------------------------------------------
// MixerDevice
// ---------------------------------------------------------------------------

MixerDevice::MixerDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kMixer, loud, std::move(attrs)) {
  inputs_ = static_cast<int>(this->attrs().GetU32(AttrTag::kInputPorts).value_or(2));
  outputs_ = static_cast<int>(this->attrs().GetU32(AttrTag::kOutputPorts).value_or(1));
  if (inputs_ < 1) {
    inputs_ = 1;
  }
  if (outputs_ < 1) {
    outputs_ = 1;
  }
  gains_.assign(static_cast<size_t>(inputs_), kUnityGain);
}

Status MixerDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  if (spec.command == DeviceCommand::kSetInputGain) {
    return SetInputGain(spec);
  }
  return VirtualDevice::StartCommand(spec, tick);
}

Status MixerDevice::ImmediateCommand(const CommandSpec& spec) {
  if (spec.command == DeviceCommand::kSetInputGain) {
    return SetInputGain(spec);
  }
  return VirtualDevice::ImmediateCommand(spec);
}

Status MixerDevice::SetInputGain(const CommandSpec& spec) {
  InputGainArgs args = InputGainArgs::Decode(spec.args);
  if (args.input >= gains_.size()) {
    return Status(ErrorCode::kBadValue, "SetGain: no such mixer input");
  }
  gains_[args.input] = args.gain;
  return Status::Ok();
}

int32_t MixerDevice::input_gain(uint16_t input) const {
  return input < gains_.size() ? gains_[input] : kUnityGain;
}

size_t MixerDevice::Produce(EngineTick* tick, size_t frames) {
  (void)tick;
  if (source_wires().empty()) {
    // Still drain inputs to keep wires bounded.
    for (WireObject* wire : sink_wires()) {
      pulled_.clear();
      wire->Pull(frames, &pulled_);
    }
    return 0;
  }
  acc_.assign(frames, 0);
  bool any = false;
  for (WireObject* wire : sink_wires()) {
    pulled_.clear();
    wire->Pull(frames, &pulled_);
    if (pulled_.empty()) {
      continue;
    }
    any = true;
    int32_t g = input_gain(wire->dst_port());
    size_t n = std::min(pulled_.size(), acc_.size());
    for (size_t i = 0; i < n; ++i) {
      acc_[i] += static_cast<int32_t>(static_cast<int64_t>(pulled_[i]) * g / kUnityGain);
    }
  }
  if (!any) {
    return 0;
  }
  mixed_.resize(frames);
  for (size_t i = 0; i < frames; ++i) {
    mixed_[i] = SaturateSample(acc_[i]);
  }
  if (gain() != kUnityGain) {
    ApplyGain(mixed_, gain());
  }
  for (WireObject* wire : source_wires()) {
    wire->Push(mixed_);
  }
  return frames;
}

// ---------------------------------------------------------------------------
// CrossbarDevice
// ---------------------------------------------------------------------------

CrossbarDevice::CrossbarDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kCrossbar, loud, std::move(attrs)) {
  inputs_ = static_cast<int>(this->attrs().GetU32(AttrTag::kInputPorts).value_or(2));
  outputs_ = static_cast<int>(this->attrs().GetU32(AttrTag::kOutputPorts).value_or(2));
  if (inputs_ < 1) {
    inputs_ = 1;
  }
  if (outputs_ < 1) {
    outputs_ = 1;
  }
  matrix_.assign(static_cast<size_t>(inputs_ * outputs_), 0);
}

Status CrossbarDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  if (spec.command == DeviceCommand::kSetState) {
    return SetState(spec);
  }
  return VirtualDevice::StartCommand(spec, tick);
}

Status CrossbarDevice::ImmediateCommand(const CommandSpec& spec) {
  if (spec.command == DeviceCommand::kSetState) {
    return SetState(spec);
  }
  return VirtualDevice::ImmediateCommand(spec);
}

Status CrossbarDevice::SetState(const CommandSpec& spec) {
  CrossbarStateArgs args = CrossbarStateArgs::Decode(spec.args);
  for (const auto& route : args.routes) {
    if (route.input >= static_cast<uint16_t>(inputs_) ||
        route.output >= static_cast<uint16_t>(outputs_)) {
      return Status(ErrorCode::kBadValue, "SetState: route out of range");
    }
    matrix_[static_cast<size_t>(route.input) * static_cast<size_t>(outputs_) + route.output] =
        route.enabled;
  }
  return Status::Ok();
}

bool CrossbarDevice::route_enabled(uint16_t input, uint16_t output) const {
  if (input >= static_cast<uint16_t>(inputs_) || output >= static_cast<uint16_t>(outputs_)) {
    return false;
  }
  return matrix_[static_cast<size_t>(input) * static_cast<size_t>(outputs_) + output] != 0;
}

size_t CrossbarDevice::Produce(EngineTick* tick, size_t frames) {
  (void)tick;
  // Pull every input once.
  pulled_.assign(static_cast<size_t>(inputs_), {});
  for (WireObject* wire : sink_wires()) {
    uint16_t port = wire->dst_port();
    if (port < pulled_.size()) {
      wire->Pull(frames, &pulled_[port]);
    } else {
      std::vector<Sample> discard;
      wire->Pull(frames, &discard);
    }
  }
  // Route to each output.
  for (WireObject* wire : source_wires()) {
    uint16_t out_port = wire->src_port();
    acc_.assign(frames, 0);
    bool any = false;
    for (int in = 0; in < inputs_; ++in) {
      if (!route_enabled(static_cast<uint16_t>(in), out_port)) {
        continue;
      }
      const std::vector<Sample>& src = pulled_[static_cast<size_t>(in)];
      if (src.empty()) {
        continue;
      }
      any = true;
      size_t n = std::min(src.size(), acc_.size());
      for (size_t i = 0; i < n; ++i) {
        acc_[i] += src[i];
      }
    }
    if (!any) {
      continue;
    }
    out_.resize(frames);
    for (size_t i = 0; i < frames; ++i) {
      out_[i] = SaturateSample(acc_[i]);
    }
    wire->Push(out_);
  }
  return frames;
}

// ---------------------------------------------------------------------------
// DspDevice
// ---------------------------------------------------------------------------

DspDevice::DspDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kDsp, loud, std::move(attrs)) {}

size_t DspDevice::Produce(EngineTick* tick, size_t frames) {
  (void)tick;
  size_t produced = 0;
  for (WireObject* wire : sink_wires()) {
    pulled_.clear();
    wire->Pull(frames, &pulled_);
    if (pulled_.empty()) {
      continue;
    }
    if (gain() != kUnityGain) {
      ApplyGain(pulled_, gain());
    }
    for (WireObject* out : source_wires()) {
      out->Push(pulled_);
    }
    produced = std::max(produced, pulled_.size());
  }
  return produced;
}

}  // namespace aud
