// One client connection: the transport endpoint plus per-client protocol
// state. The connection manager creates one of these per accepted stream
// and keeps "a container object for each client connection" (section 6.1);
// the object registry tags every resource with its owning connection so
// disconnect cleanup is exact.
//
// Each connection owns two threads: the reader (loop body supplied by the
// server — parses requests, dispatches under the big lock) and the writer,
// which drains the bounded egress queue. Send* enqueue and never perform
// transport I/O, so they are safe to call with the big lock held
// (DESIGN.md decision 11); all blocking writes happen on the writer.

#ifndef SRC_SERVER_CONNECTION_H_
#define SRC_SERVER_CONNECTION_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/server/egress_queue.h"
#include "src/server/metrics.h"
#include "src/server/token_bucket.h"
#include "src/transport/framer.h"
#include "src/transport/stream.h"

namespace aud {

// Default per-connection egress budget. Generous enough that only a client
// that has genuinely stopped reading ever hits the overflow policy.
inline constexpr size_t kDefaultEgressBudgetBytes = 1u << 20;  // 1 MiB

// Per-connection statistics (GetEntityStats). Same contract as the global
// ServerMetrics: every member is relaxed-atomic, so the reader thread, the
// writer thread and the engine may all bump them lock-free, and a snapshot
// taken from any thread never tears.
struct ConnectionStats {
  obs::Counter requests;
  obs::Counter errors;
  obs::Counter bytes_in;
  obs::Counter bytes_out;
  obs::Counter events_sent;
  obs::LatencyHistogram dispatch_us;
  // events_dropped lives on the egress queue (dropped_events_total()).
};

class ClientConnection {
 public:
  ClientConnection(uint32_t index, std::unique_ptr<ByteStream> stream,
                   size_t egress_budget_bytes = kDefaultEgressBudgetBytes,
                   EgressOverflowPolicy overflow_policy =
                       EgressOverflowPolicy::kDropEvents)
      : index_(index),
        stream_(std::move(stream)),
        egress_(egress_budget_bytes, overflow_policy) {}

  // Joins both threads. The server must have unblocked them first
  // (HardClose, or natural reader exit + drain).
  ~ClientConnection();

  uint32_t index() const { return index_; }
  ByteStream* stream() { return stream_.get(); }

  // Optional byte/event accounting sink (the server's metrics aggregate;
  // counters are atomic, so writes need no lock). Set before StartWriter.
  void set_metrics(ServerMetrics* metrics);
  ServerMetrics* metrics() { return metrics_; }

  const std::string& client_name() const { return client_name_; }
  void set_client_name(std::string name) { client_name_ = std::move(name); }

  bool closed() const { return closed_.load(); }
  void MarkClosed() { closed_.store(true); }

  // Sequence of the last request processed (stamped onto events, as in X).
  uint32_t last_sequence() const { return last_sequence_.load(); }
  void set_last_sequence(uint32_t seq) { last_sequence_.store(seq); }

  // Spawns the writer thread draining the egress queue.
  void StartWriter();
  // Spawns the reader thread running `body` (the server's ReaderLoop).
  void StartReader(std::function<void()> body);

  // Reader-exit teardown: stop accepting new frames, let the writer flush
  // what is already queued (a final error/refusal still reaches the
  // client), then close the stream. Called from the reader thread.
  void BeginDrain();

  // Immediate teardown: mark closed, discard the egress backlog, shut the
  // stream down so a blocked reader/writer wakes. Safe from any thread and
  // idempotent; used for slow-client disconnect and server shutdown.
  void HardClose();

  // True once the reader thread has finished its teardown and is about to
  // exit — the connection can be joined and destroyed without touching
  // server state. Set by the reader as its last action.
  bool finished() const { return finished_.load(std::memory_order_acquire); }
  void MarkFinished() { finished_.store(true, std::memory_order_release); }

  // Enqueues one framed message; never blocks on transport I/O. Returns
  // false once the connection is closed or the client was disconnected by
  // the overflow policy. Event frames may be shed under pressure (counted
  // in events_dropped) without failing the call. A nonzero `trace` marks
  // the frame request-scoped: enqueue records a kSpanEgress span parented
  // on `parent`, and the writer records a kSpanWrite span for the socket
  // write itself.
  bool Send(MessageType type, uint16_t code, uint32_t sequence,
            std::span<const uint8_t> payload, uint64_t trace = 0, uint64_t parent = 0);

  // Convenience senders.
  bool SendReply(uint16_t opcode, uint32_t sequence, std::span<const uint8_t> payload,
                 uint64_t trace = 0, uint64_t parent = 0);
  bool SendError(uint32_t sequence, const ErrorMessage& error, uint64_t trace = 0,
                 uint64_t parent = 0);
  bool SendEvent(const EventMessage& event);

  uint64_t events_dropped() const { return egress_.dropped_events_total(); }
  size_t egress_queued_bytes() const { return egress_.queued_bytes(); }

  // Per-connection statistic block (lock-free; see ConnectionStats).
  ConnectionStats& stats() { return stats_; }
  const ConnectionStats& stats() const { return stats_; }

  // Per-connection trace-sampling state, owned by the reader thread (only
  // the reader touches it, so a plain field suffices).
  uint64_t& trace_sample_counter() { return trace_sample_counter_; }

  // Rate-limit buckets (DESIGN.md decision 15), owned by the same thread
  // that reads this connection — plain fields like the sample counter.
  // Configure (from AddConnection, before the first read) via
  // ConfigureRateLimits; check via CheckRateLimit on the server.
  void ConfigureRateLimits(double rps, double rps_burst, double bps,
                           double bps_burst) {
    rps_bucket_.Configure(rps, rps_burst);
    bps_bucket_.Configure(bps, bps_burst);
  }
  TokenBucket& rps_bucket() { return rps_bucket_; }
  TokenBucket& bps_bucket() { return bps_bucket_; }

  // ---- Event-loop mode (DESIGN.md decision 14) ----
  // In loop mode the connection owns no threads: the loop that the fd
  // hashes to drives TryReadFrame/DrainEgress from its one thread, and
  // Send arms write interest via `arm_write` instead of waking a writer.

  // Switches to loop-driven I/O. Call before the fd is registered (and
  // before any Send can happen).
  void ConfigureLoopMode(uint32_t loop_index, std::function<void()> arm_write) {
    loop_mode_ = true;
    loop_index_ = loop_index;
    arm_write_ = std::move(arm_write);
  }
  bool loop_mode() const { return loop_mode_; }
  uint32_t loop_index() const { return loop_index_; }
  int pollable_fd() const { return stream_->pollable_fd(); }

  // Incremental frame reassembly (loop thread only): resumes the partial
  // frame across readiness events, returning kWouldBlock mid-frame.
  FrameStatus TryReadFrame(FramedMessage* out) {
    return framer_.TryReadMessage(stream_.get(), out);
  }

  // Non-blocking egress drain (loop thread only). kIdle: nothing queued
  // (write interest can be disarmed); kBlocked: the socket buffer filled
  // mid-frame (arm write interest); kError: transport dead.
  enum class DrainStatus : uint8_t { kIdle, kBlocked, kError };
  DrainStatus DrainEgress();

  // Loop-path drain: stop accepting frames, let the owning loop flush the
  // backlog (bounded by the server's drain deadline). The legacy
  // BeginDrain blocks on the writer thread, which does not exist here.
  void BeginLoopDrain() {
    MarkClosed();
    egress_.BeginDrain();
  }

  // Connection-plane driver state, touched only by the owning loop thread
  // (the sweep also runs there), so plain fields suffice.
  struct LoopState {
    bool awaiting_setup = true;
    bool draining = false;
    bool torn_down = false;
    std::chrono::steady_clock::time_point drain_deadline{};
  };
  LoopState& loop_state() { return loop_state_; }

 private:
  void WriterLoop();

  uint32_t index_;
  // Not guarded: the reader thread calls stream_->Read() concurrently with
  // the writer thread's stream_->Write(). ByteStream impls are duplex-safe
  // (one reader + one writer); the egress queue serializes all writers.
  std::unique_ptr<ByteStream> stream_;
  ServerMetrics* metrics_ = nullptr;
  std::string client_name_;
  ConnectionStats stats_;
  uint64_t trace_sample_counter_ = 0;
  TokenBucket rps_bucket_;
  TokenBucket bps_bucket_;
  EgressQueue egress_;
  // Loop-mode I/O state (loop thread only): the resumable framer and the
  // partially written wire frame carried across EPOLLOUT rounds.
  Framer framer_;
  std::vector<uint8_t> wire_buf_;
  size_t wire_off_ = 0;
  uint64_t wire_trace_ = 0;
  uint64_t wire_parent_ = 0;
  int64_t wire_t0_ = 0;
  LoopState loop_state_;
  bool loop_mode_ = false;
  uint32_t loop_index_ = 0;
  std::function<void()> arm_write_;
  std::thread writer_thread_;
  std::thread reader_thread_;
  std::atomic<bool> writer_started_{false};
  std::atomic<bool> closed_{false};
  std::atomic<bool> finished_{false};
  std::atomic<uint32_t> last_sequence_{0};
};

}  // namespace aud

#endif  // SRC_SERVER_CONNECTION_H_
