// One client connection: the transport endpoint plus per-client protocol
// state. The connection manager creates one of these per accepted stream
// and keeps "a container object for each client connection" (section 6.1);
// the object registry tags every resource with its owning connection so
// disconnect cleanup is exact.

#ifndef SRC_SERVER_CONNECTION_H_
#define SRC_SERVER_CONNECTION_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/common/thread_annotations.h"
#include "src/server/metrics.h"
#include "src/transport/framer.h"
#include "src/transport/stream.h"

namespace aud {

class ClientConnection {
 public:
  ClientConnection(uint32_t index, std::unique_ptr<ByteStream> stream)
      : index_(index), stream_(std::move(stream)) {}

  uint32_t index() const { return index_; }
  ByteStream* stream() { return stream_.get(); }

  // Optional byte/event accounting sink (the server's metrics aggregate;
  // counters are atomic, so writes need no lock).
  void set_metrics(ServerMetrics* metrics) { metrics_ = metrics; }
  ServerMetrics* metrics() { return metrics_; }

  const std::string& client_name() const { return client_name_; }
  void set_client_name(std::string name) { client_name_ = std::move(name); }

  bool closed() const { return closed_.load(); }
  void MarkClosed() { closed_.store(true); }

  // Sequence of the last request processed (stamped onto events, as in X).
  uint32_t last_sequence() const { return last_sequence_.load(); }
  void set_last_sequence(uint32_t seq) { last_sequence_.store(seq); }

  // Writes one framed message. Serialized: requests processed on the
  // reader thread and events emitted from the engine thread interleave
  // safely. Returns false once the stream has failed.
  bool Send(MessageType type, uint16_t code, uint32_t sequence,
            std::span<const uint8_t> payload);

  // Convenience senders.
  bool SendReply(uint16_t opcode, uint32_t sequence, std::span<const uint8_t> payload);
  bool SendError(uint32_t sequence, const ErrorMessage& error);
  bool SendEvent(const EventMessage& event);

 private:
  uint32_t index_;
  // The stream object itself is not guarded by write_mu_: the reader thread
  // calls stream_->Read() concurrently with writers. ByteStream impls are
  // duplex-safe (one reader + serialized writers); write_mu_ serializes the
  // writers.
  std::unique_ptr<ByteStream> stream_;
  ServerMetrics* metrics_ = nullptr;
  std::string client_name_;
  // Leaf lock: nothing else is acquired while held (DESIGN.md decision 9).
  Mutex write_mu_;
  std::atomic<bool> closed_{false};
  std::atomic<uint32_t> last_sequence_{0};
};

}  // namespace aud

#endif  // SRC_SERVER_CONNECTION_H_
