// EnginePool: a persistent worker pool for the parallel engine tick. The
// tick thread partitions the active device graph into independent islands
// (ServerState::PartitionIslands) and hands them here; the pool runs one
// job per island across its threads *and* the calling thread, returning
// only when every job has finished.
//
// The pool exists for the lifetime of the server (threads are created
// once, not per tick) so a 20 ms engine period never pays thread-creation
// latency. Jobs receive a dense worker index in [0, worker_slots()); the
// caller always runs as worker 0, pool threads as 1..N. ServerState keys
// its per-worker mix accumulators off that index.

#ifndef SRC_SERVER_ENGINE_POOL_H_
#define SRC_SERVER_ENGINE_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace aud {

class EnginePool {
 public:
  // A job receives its job index and the worker slot executing it.
  using Job = std::function<void(size_t job, int worker)>;

  // `workers` is the total parallelism including the calling thread, so
  // the pool spawns workers-1 threads. workers < 2 spawns none (Run then
  // degenerates to a serial loop on the caller).
  explicit EnginePool(int workers);
  ~EnginePool();

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  // Total worker slots: pool threads + the calling thread.
  int worker_slots() const { return static_cast<int>(threads_.size()) + 1; }

  // Runs fn(0..count-1, worker) across the pool and the calling thread;
  // returns when all `count` jobs have completed. Job order across
  // workers is unspecified — callers needing deterministic merge order
  // must key results by job index, not completion order.
  void Run(size_t count, const Job& fn);

  // Jobs each worker slot claimed during the most recent Run. Valid only
  // between Run calls on the calling thread (the same thread that runs).
  // Safe without mu_: Run() has returned, so no worker mutates run_jobs_
  // until the caller itself starts the next batch.
  const std::vector<uint32_t>& last_run_jobs() const
      AUD_NO_THREAD_SAFETY_ANALYSIS {
    return run_jobs_;
  }

 private:
  void WorkerLoop(int worker);

  Mutex mu_{LockRank::kEnginePool, "EnginePool::mu_"};
  CondVar work_cv_;  // workers wait for jobs
  CondVar done_cv_;  // Run waits for completion
  // Non-null while a batch is live.
  const Job* job_fn_ AUD_GUARDED_BY(mu_) = nullptr;
  size_t job_count_ AUD_GUARDED_BY(mu_) = 0;
  size_t next_job_ AUD_GUARDED_BY(mu_) = 0;
  size_t done_jobs_ AUD_GUARDED_BY(mu_) = 0;
  bool stop_ AUD_GUARDED_BY(mu_) = false;
  // Per-slot job counts for the live batch; both increment sites run with
  // mu_ held (job assignment is the pool's serialization point anyway).
  std::vector<uint32_t> run_jobs_ AUD_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;
};

}  // namespace aud

#endif  // SRC_SERVER_ENGINE_POOL_H_
