#include "src/server/engine_pool.h"

namespace aud {

EnginePool::EnginePool(int workers) {
  int extra = workers - 1;
  threads_.reserve(extra > 0 ? static_cast<size_t>(extra) : 0);
  for (int i = 0; i < extra; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

EnginePool::~EnginePool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void EnginePool::Run(size_t count, const Job& fn) {
  if (count == 0) {
    return;
  }
  MutexLock lock(&mu_);
  job_fn_ = &fn;
  job_count_ = count;
  next_job_ = 0;
  done_jobs_ = 0;
  run_jobs_.assign(static_cast<size_t>(worker_slots()), 0);
  work_cv_.NotifyAll();

  // The calling thread participates as worker 0.
  while (next_job_ < job_count_) {
    size_t i = next_job_++;
    ++run_jobs_[0];
    lock.Unlock();
    fn(i, 0);
    lock.Lock();
    ++done_jobs_;
  }
  while (done_jobs_ != job_count_) {
    done_cv_.Wait(mu_);
  }
  // Clear the batch before returning: `fn` lives on the caller's stack,
  // and done_jobs_ == job_count_ guarantees no worker still holds it.
  job_fn_ = nullptr;
}

void EnginePool::WorkerLoop(int worker) {
  MutexLock lock(&mu_);
  while (true) {
    while (!stop_ && (job_fn_ == nullptr || next_job_ >= job_count_)) {
      work_cv_.Wait(mu_);
    }
    if (stop_) {
      return;
    }
    size_t i = next_job_++;
    ++run_jobs_[static_cast<size_t>(worker)];
    const Job* fn = job_fn_;
    lock.Unlock();
    (*fn)(i, worker);
    lock.Lock();
    if (++done_jobs_ == job_count_) {
      done_cv_.NotifyAll();
    }
  }
}

}  // namespace aud
