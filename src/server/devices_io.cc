// Input, Output, Player and Recorder device classes.

#include <algorithm>

#include "src/dsp/gain.h"
#include "src/server/devices.h"
#include "src/server/loud.h"
#include "src/server/server_state.h"

namespace aud {

namespace {

// Pushes `samples` (with device gain applied) into every wire in `wires`,
// aligned to `offset` frames into tick `tick_id` (see WireObject::PushAt).
void PushToWires(const std::vector<WireObject*>& wires, std::span<const Sample> samples,
                 int32_t gain, std::vector<Sample>* scratch, int64_t tick_id,
                 size_t offset) {
  if (wires.empty() || samples.empty()) {
    return;
  }
  if (gain != kUnityGain) {
    scratch->assign(samples.begin(), samples.end());
    ApplyGain(*scratch, gain);
    samples = *scratch;
  }
  for (WireObject* wire : wires) {
    wire->PushAt(tick_id, offset, samples);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// InputDevice
// ---------------------------------------------------------------------------

InputDevice::InputDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kInput, loud, std::move(attrs)) {}

size_t InputDevice::Produce(EngineTick* tick, size_t frames) {
  auto* mic = dynamic_cast<MicrophoneUnit*>(bound_device());
  if (mic == nullptr || source_wires().empty()) {
    return 0;
  }
  scratch_.assign(frames, 0);
  mic->codec().ReadCapture(scratch_);  // short reads leave trailing silence
  std::vector<Sample> gain_scratch;
  PushToWires(source_wires(), scratch_, gain(), &gain_scratch, tick->start_frame, 0);
  return frames;
}

// ---------------------------------------------------------------------------
// OutputDevice
// ---------------------------------------------------------------------------

OutputDevice::OutputDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kOutput, loud, std::move(attrs)) {}

void OutputDevice::Consume(EngineTick* tick) {
  if (bound_device() == nullptr) {
    return;
  }
  for (WireObject* wire : sink_wires()) {
    scratch_.clear();
    wire->Pull(tick->frames, &scratch_);
    if (!scratch_.empty()) {
      tick->server->AccumulateOutput(bound_device(), scratch_, gain());
    }
  }
}

// ---------------------------------------------------------------------------
// PlayerDevice
// ---------------------------------------------------------------------------

PlayerDevice::PlayerDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kPlayer, loud, std::move(attrs)) {}

Status PlayerDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  if (spec.command != DeviceCommand::kPlay) {
    return VirtualDevice::StartCommand(spec, tick);
  }
  PlayArgs args = PlayArgs::Decode(spec.args);
  SoundObject* sound = tick->server->FindSound(args.sound);
  if (sound == nullptr) {
    return Status(ErrorCode::kBadResource, "Play: no such sound");
  }
  sound_id_ = args.sound;
  position_ = 0;
  end_sample_ = args.end_sample;
  decode_byte_pos_ = 0;
  decoded_.clear();
  total_ = sound->sample_count();
  // A nonzero start plays from mid-sound; stateful codecs (ADPCM) must
  // decode from the beginning, so we decode-and-discard up to the start.
  skip_samples_ = args.start_sample > 0 ? args.start_sample : 0;
  cached_.reset();
  cache_pos_ = 0;
  // Fast path: a whole-sound play (no start offset, no end bound) serves
  // straight from the decoded-PCM cache. Bounded plays keep the incremental
  // decoder so the end-sample trim stays in sound-sample space.
  const bool whole_sound = skip_samples_ == 0 && (end_sample_ < 0 || end_sample_ >= total_);
  if (whole_sound && tick->server->decoded_cache().enabled()) {
    cache_generation_ = sound->generation();
    cached_ = tick->server->GetDecodedSound(sound);
  }
  if (cached_ == nullptr) {
    decoder_ = std::make_unique<StreamDecoder>(sound->format().encoding);
    resampler_ = std::make_unique<Resampler>(sound->format().sample_rate_hz,
                                             tick->server->engine_rate());
  } else {
    decoder_.reset();
    resampler_.reset();
  }
  set_command_running(true);
  return Status::Ok();
}

void PlayerDevice::AbortCommand() {
  VirtualDevice::AbortCommand();
  decoded_.clear();
  cached_.reset();
  cache_pos_ = 0;
}

void PlayerDevice::SwitchToIncremental(SoundObject* sound, EngineTick* tick,
                                       size_t consumed) {
  decoder_ = std::make_unique<StreamDecoder>(sound->format().encoding);
  resampler_ = std::make_unique<Resampler>(sound->format().sample_rate_hz,
                                           tick->server->engine_rate());
  decode_byte_pos_ = 0;
  position_ = 0;
  decoded_.clear();
  // The cached stream is a prefix of the re-decode (appends only extend
  // the sound; a rewrite re-keys and we restart the decode anyway), so
  // discarding the engine-rate samples already served resumes seamlessly.
  skip_samples_ = static_cast<int64_t>(consumed);
  cached_.reset();
  cache_pos_ = 0;
}

size_t PlayerDevice::Produce(EngineTick* tick, size_t frames) {
  if (!CommandRunning() || paused()) {
    return 0;
  }
  SoundObject* sound = tick->server->FindSound(sound_id_);
  if (sound == nullptr) {
    // Sound destroyed mid-play: abort.
    set_command_running(false);
    cached_.reset();
    return 0;
  }

  if (cached_ != nullptr) {
    if (sound->generation() != cache_generation_) {
      // Sound mutated mid-play (real-time data supply, overwrite): the
      // cached decode is stale. Fall back to the streaming decoder for the
      // rest of this play, resuming after the samples already served.
      SwitchToIncremental(sound, tick, cache_pos_);
    } else {
      const std::vector<Sample>& pcm = *cached_;
      size_t avail = pcm.size() > cache_pos_ ? pcm.size() - cache_pos_ : 0;
      size_t n = std::min(frames, avail);
      if (n > 0) {
        PushToWires(source_wires(), std::span<const Sample>(pcm).subspan(cache_pos_, n),
                    gain(), &gain_scratch_, tick->start_frame, tick->branch_offset);
        cache_pos_ += n;
      }
      // Track position in sound-sample space for sync marks: cache_pos_ is
      // engine-rate samples served, mapped back through the rate ratio.
      const uint32_t out_rate = tick->server->engine_rate();
      const uint32_t in_rate = sound->format().sample_rate_hz;
      if (cache_pos_ >= pcm.size()) {
        position_ = total_;
        set_command_running(false);
      } else {
        position_ = std::min<int64_t>(
            total_, static_cast<int64_t>(cache_pos_) * in_rate / out_rate);
      }
      loud()->Root()->NoteSyncProgress(position_, total_, tick->server->server_time());
      return n;
    }
  }

  // Fill decoded_ (engine-rate linear samples) until we can cover `frames`
  // or the sound is exhausted.
  const std::vector<uint8_t>& data = sound->data();
  bool exhausted = false;
  while (decoded_.size() < frames + static_cast<size_t>(skip_samples_)) {
    if (decode_byte_pos_ >= static_cast<int64_t>(data.size())) {
      exhausted = true;
      break;
    }
    if (end_sample_ >= 0 && position_ >= end_sample_) {
      exhausted = true;
      break;
    }
    size_t chunk_bytes = std::min<size_t>(1024, data.size() - decode_byte_pos_);
    std::vector<Sample> linear;
    decoder_->Decode(std::span<const uint8_t>(data).subspan(
                         static_cast<size_t>(decode_byte_pos_), chunk_bytes),
                     &linear);
    decode_byte_pos_ += static_cast<int64_t>(chunk_bytes);
    // Honor the end-sample bound in sound-sample space.
    int64_t sound_samples = static_cast<int64_t>(linear.size());
    if (end_sample_ >= 0 && position_ + sound_samples > end_sample_) {
      sound_samples = end_sample_ - position_;
      linear.resize(static_cast<size_t>(std::max<int64_t>(sound_samples, 0)));
    }
    position_ += sound_samples;
    resampler_->Process(linear, &decoded_);
  }

  // Discard start-offset samples.
  if (skip_samples_ > 0) {
    size_t drop = std::min<size_t>(static_cast<size_t>(skip_samples_), decoded_.size());
    decoded_.erase(decoded_.begin(), decoded_.begin() + static_cast<ptrdiff_t>(drop));
    skip_samples_ -= static_cast<int64_t>(drop);
  }

  size_t n = std::min(frames, decoded_.size());
  if (n > 0) {
    PushToWires(source_wires(), std::span<const Sample>(decoded_).first(n), gain(),
                &gain_scratch_, tick->start_frame, tick->branch_offset);
    decoded_.erase(decoded_.begin(), decoded_.begin() + static_cast<ptrdiff_t>(n));
  }

  if (exhausted && decoded_.empty() && skip_samples_ == 0) {
    set_command_running(false);
  }

  loud()->Root()->NoteSyncProgress(position_, total_, tick->server->server_time());
  return n;
}

// ---------------------------------------------------------------------------
// RecorderDevice
// ---------------------------------------------------------------------------

RecorderDevice::RecorderDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kRecorder, loud, std::move(attrs)) {
  agc_enabled_ = this->attrs().GetBool(AttrTag::kAgc);
}

Status RecorderDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  if (spec.command != DeviceCommand::kRecord) {
    return VirtualDevice::StartCommand(spec, tick);
  }
  RecordArgs args = RecordArgs::Decode(spec.args);
  SoundObject* sound = tick->server->FindSound(args.sound);
  if (sound == nullptr) {
    return Status(ErrorCode::kBadResource, "Record: no such sound");
  }
  sound_id_ = args.sound;
  termination_ = args.termination;
  max_samples_ = args.max_ms == 0
                     ? 0
                     : static_cast<int64_t>(tick->server->engine_rate()) * args.max_ms / 1000;
  samples_recorded_ = 0;
  encoder_ = std::make_unique<StreamEncoder>(sound->format().encoding);
  out_resampler_ = sound->format().sample_rate_hz != tick->server->engine_rate()
                       ? std::make_unique<Resampler>(tick->server->engine_rate(),
                                                     sound->format().sample_rate_hz)
                       : nullptr;
  if ((termination_ & kTerminateOnPause) != 0) {
    pause_detector_ = std::make_unique<PauseDetector>(tick->server->engine_rate());
  } else {
    pause_detector_.reset();
  }
  agc_ = agc_enabled_ ? std::make_unique<AutomaticGainControl>() : nullptr;
  keep_linear_history_ = attrs().GetBool(AttrTag::kPauseCompression);
  linear_history_.clear();
  set_command_running(true);
  tick->server->EmitEvent(loud()->Root(), EventType::kRecorderStarted, id(), {});
  return Status::Ok();
}

void RecorderDevice::AbortCommand() {
  VirtualDevice::AbortCommand();
  linear_history_.clear();
}

void RecorderDevice::FinishRecording(EngineTick* tick, RecordStopReason reason) {
  set_command_running(false);

  // Recorder attribute: compress the recording "by removing pauses"
  // (section 5.1). Applied once at completion, from the pristine linear
  // take kept during Consume — the encoded sound is never round-tripped
  // back through the codec, so finishing costs one pass over the take
  // instead of a whole-sound decode + re-encode.
  if (keep_linear_history_) {
    SoundObject* sound = tick->server->FindSound(sound_id_);
    if (sound != nullptr) {
      auto compressed = CompressPauses(linear_history_, sound->format().sample_rate_hz);
      StreamEncoder re_encoder(sound->format().encoding);
      std::vector<uint8_t> bytes;
      re_encoder.Encode(compressed, &bytes);
      sound->mutable_data() = std::move(bytes);
      samples_recorded_ = static_cast<uint64_t>(compressed.size());
    }
    linear_history_.clear();
  }

  RecorderStoppedArgs args;
  args.reason = static_cast<uint8_t>(reason);
  args.samples = samples_recorded_;
  tick->server->EmitEvent(loud()->Root(), EventType::kRecorderStopped, id(), args.Encode());
}

void RecorderDevice::Consume(EngineTick* tick) {
  // Always drain the wires so idle recorders don't back audio up.
  scratch_.clear();
  for (WireObject* wire : sink_wires()) {
    wire->Pull(tick->frames, &scratch_);
  }
  if (!CommandRunning() || paused()) {
    return;
  }
  SoundObject* sound = tick->server->FindSound(sound_id_);
  if (sound == nullptr) {
    set_command_running(false);
    return;
  }

  // A live recorder records the line continuously: missing wire data is
  // silence, so max-duration and pause-detect termination track real time.
  if (scratch_.size() < tick->frames) {
    scratch_.resize(tick->frames, 0);
  }

  if (!scratch_.empty()) {
    if (gain() != kUnityGain) {
      ApplyGain(scratch_, gain());
    }
    if (agc_ != nullptr) {
      agc_->Process(scratch_);
    }
    // Resample engine rate -> sound rate if they differ.
    std::span<const Sample> to_encode = scratch_;
    if (out_resampler_ != nullptr) {
      resample_scratch_.clear();
      out_resampler_->Process(scratch_, &resample_scratch_);
      to_encode = resample_scratch_;
    }
    if (keep_linear_history_) {
      linear_history_.insert(linear_history_.end(), to_encode.begin(), to_encode.end());
    }
    encode_scratch_.clear();
    encoder_->Encode(to_encode, &encode_scratch_);
    sound->Write(sound->size_bytes(), encode_scratch_);
    samples_recorded_ += scratch_.size();

    if (pause_detector_ != nullptr && pause_detector_->Process(scratch_)) {
      FinishRecording(tick, RecordStopReason::kPauseDetected);
      return;
    }
  }

  if (max_samples_ > 0 && static_cast<int64_t>(samples_recorded_) >= max_samples_) {
    FinishRecording(tick, RecordStopReason::kMaxDuration);
    return;
  }

  if ((termination_ & kTerminateOnHangup) != 0) {
    // If any wire feeding us comes from a telephone whose call ended, stop.
    for (WireObject* wire : sink_wires()) {
      auto* phone = dynamic_cast<TelephoneDevice*>(wire->src());
      if (phone != nullptr && (phone->call_state() == CallState::kHungUp ||
                               phone->call_state() == CallState::kIdle)) {
        FinishRecording(tick, RecordStopReason::kSourceEnded);
        return;
      }
    }
  }
}

}  // namespace aud
