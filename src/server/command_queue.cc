#include "src/server/command_queue.h"

#include <algorithm>

#include "src/server/loud.h"
#include "src/server/server_state.h"

namespace aud {

// ---------------------------------------------------------------------------
// Parsing (incremental CoBegin/CoEnd/Delay/DelayEnd nesting)
// ---------------------------------------------------------------------------

Status CommandQueue::Enqueue(const std::vector<CommandSpec>& commands) {
  for (const CommandSpec& spec : commands) {
    switch (spec.command) {
      case DeviceCommand::kCoBegin: {
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::kCo;
        Node* raw = node.get();
        if (parse_stack_.empty()) {
          program_.push_back(std::move(node));
        } else {
          parse_stack_.back()->children.push_back(std::move(node));
        }
        parse_stack_.push_back(raw);
        break;
      }
      case DeviceCommand::kDelay: {
        DelayArgs args = DelayArgs::Decode(spec.args);
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::kDelay;
        node->delay_ms = args.milliseconds;
        Node* raw = node.get();
        if (parse_stack_.empty()) {
          program_.push_back(std::move(node));
        } else {
          parse_stack_.back()->children.push_back(std::move(node));
        }
        parse_stack_.push_back(raw);
        break;
      }
      case DeviceCommand::kCoEnd:
        if (parse_stack_.empty() || parse_stack_.back()->kind != Node::Kind::kCo) {
          return Status(ErrorCode::kBadQueue, "CoEnd without matching CoBegin");
        }
        parse_stack_.pop_back();
        break;
      case DeviceCommand::kDelayEnd:
        if (parse_stack_.empty() || parse_stack_.back()->kind != Node::Kind::kDelay) {
          return Status(ErrorCode::kBadQueue, "DelayEnd without matching Delay");
        }
        parse_stack_.pop_back();
        break;
      default: {
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::kCommand;
        node->spec = spec;
        if (parse_stack_.empty()) {
          program_.push_back(std::move(node));
        } else {
          parse_stack_.back()->children.push_back(std::move(node));
        }
        loud_->server()->metrics().commands_enqueued.Increment();
        break;
      }
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------------

void CommandQueue::SetState(QueueState state, EngineTick* tick, bool server_initiated) {
  if (state_ == state) {
    return;
  }
  QueueState old = state_;
  state_ = state;
  ServerState* server = loud_->server();
  switch (state) {
    case QueueState::kStarted:
      if (old == QueueState::kStopped) {
        server->EmitEvent(loud_, EventType::kQueueStarted, loud_->id(), {});
      } else {
        server->EmitEvent(loud_, EventType::kQueueResumed, loud_->id(), {});
      }
      break;
    case QueueState::kStopped:
      server->EmitEvent(loud_, EventType::kQueueStopped, loud_->id(), {});
      break;
    case QueueState::kClientPaused:
    case QueueState::kServerPaused: {
      QueuePausedArgs args;
      args.server_paused = server_initiated ? 1 : 0;
      server->EmitEvent(loud_, EventType::kQueuePaused, loud_->id(), args.Encode());
      break;
    }
  }
  (void)tick;
}

Status CommandQueue::Start(EngineTick* tick) {
  if (state_ == QueueState::kStarted) {
    return Status::Ok();
  }
  if (state_ == QueueState::kClientPaused || state_ == QueueState::kServerPaused) {
    return Resume(tick);
  }
  SetState(QueueState::kStarted, tick, false);
  return Status::Ok();
}

Status CommandQueue::Stop(EngineTick* tick) {
  if (state_ == QueueState::kStopped) {
    return Status::Ok();
  }
  if (!program_.empty()) {
    AbortNode(program_.front().get(), tick);
    program_.pop_front();
  }
  SetState(QueueState::kStopped, tick, false);
  return Status::Ok();
}

Status CommandQueue::ClientPause(EngineTick* tick) {
  if (state_ != QueueState::kStarted) {
    return Status(ErrorCode::kBadState, "queue not started");
  }
  // Pausing propagates to the devices the current command operates on; if
  // one cannot pause, the queue is stopped instead (section 5.5).
  bool pausable = true;
  if (!program_.empty()) {
    PausePropagate(program_.front().get(), &pausable);
  }
  if (!pausable) {
    return Stop(tick);
  }
  SetState(QueueState::kClientPaused, tick, false);
  return Status::Ok();
}

Status CommandQueue::Resume(EngineTick* tick) {
  if (state_ != QueueState::kClientPaused && state_ != QueueState::kServerPaused) {
    return Status(ErrorCode::kBadState, "queue not paused");
  }
  if (!program_.empty()) {
    ResumePropagate(program_.front().get());
  }
  SetState(QueueState::kStarted, tick, false);
  return Status::Ok();
}

void CommandQueue::Flush() {
  program_.clear();
  parse_stack_.clear();
}

void CommandQueue::ServerPause(EngineTick* tick) {
  if (state_ != QueueState::kStarted) {
    return;
  }
  bool pausable = true;
  if (!program_.empty()) {
    PausePropagate(program_.front().get(), &pausable);
  }
  if (!pausable) {
    // Stop never fails on a started queue; it returns Status only so the
    // wire dispatch path can reuse it.
    (void)Stop(tick);
    return;
  }
  SetState(QueueState::kServerPaused, tick, true);
}

void CommandQueue::ServerResume(EngineTick* tick) {
  // Only a *server*-paused queue auto-resumes on activation; an explicit
  // client pause survives preemption (section 5.5).
  if (state_ != QueueState::kServerPaused) {
    return;
  }
  if (!program_.empty()) {
    ResumePropagate(program_.front().get());
  }
  SetState(QueueState::kStarted, tick, false);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void CommandQueue::Tick(EngineTick* tick, size_t frames) {
  if (state_ != QueueState::kStarted) {
    return;
  }
  size_t budget = frames;
  // Sequential top level: run nodes back to back within the tick so
  // transitions are sample-accurate.
  while (!program_.empty()) {
    Node* node = program_.front().get();
    size_t used = TickNode(node, tick, budget);
    if (!node->done) {
      break;
    }
    program_.pop_front();
    if (used >= budget) {
      budget = 0;
      break;
    }
    budget -= used;
  }
}

size_t CommandQueue::TickNode(Node* node, EngineTick* tick, size_t frames) {
  switch (node->kind) {
    case Node::Kind::kCommand:
      return TickCommand(node, tick, frames);

    case Node::Kind::kCo: {
      // All branches advance in parallel over the same wall frames.
      size_t max_used = 0;
      bool all_done = true;
      for (auto& child : node->children) {
        if (child->done) {
          continue;
        }
        size_t used = TickNode(child.get(), tick, frames);
        max_used = std::max(max_used, used);
        if (!child->done) {
          all_done = false;
        }
      }
      node->started = true;
      if (all_done) {
        node->done = true;
        return max_used;
      }
      return frames;
    }

    case Node::Kind::kDelay: {
      if (node->delay_frames_left < 0) {
        node->delay_frames_left =
            static_cast<int64_t>(loud_->server()->engine_rate()) * node->delay_ms / 1000;
        node->started = true;
      }
      size_t used = 0;
      if (node->delay_frames_left > 0) {
        size_t wait = static_cast<size_t>(
            std::min<int64_t>(node->delay_frames_left, static_cast<int64_t>(frames)));
        node->delay_frames_left -= static_cast<int64_t>(wait);
        used = wait;
        if (node->delay_frames_left > 0) {
          return frames;
        }
      }
      // Delay elapsed: run the body sequentially with whatever budget is
      // left in this tick.
      size_t budget = frames - used;
      while (node->child_index < node->children.size()) {
        Node* child = node->children[node->child_index].get();
        size_t child_used = TickNode(child, tick, budget);
        used += child_used;
        if (!child->done) {
          return frames;
        }
        ++node->child_index;
        budget = child_used >= budget ? 0 : budget - child_used;
      }
      node->done = true;
      return used;
    }
  }
  node->done = true;
  return 0;
}

size_t CommandQueue::TickCommand(Node* node, EngineTick* tick, size_t frames) {
  if (!node->started) {
    StartCommandNode(node, tick);
    if (node->done) {
      return 0;  // Failed to start; error already reported.
    }
  }
  if (node->device == nullptr) {
    node->done = true;
    return 0;
  }

  size_t used = 0;
  if (node->device->CommandRunning()) {
    // Give producing commands their frame budget; non-producing commands
    // return 0 and simply wait for their completion event. The branch
    // offset tells producers how far into the tick this branch already is,
    // so a command starting mid-tick (after a Delay or a predecessor on
    // another device) lands at the exact sample position.
    tick->branch_offset = tick->frames - frames;
    used = node->device->Produce(tick, frames);
    tick->branch_offset = 0;
  }
  if (!node->device->CommandRunning()) {
    FinishCommandNode(node, tick);
  }
  return used;
}

void CommandQueue::StartCommandNode(Node* node, EngineTick* tick) {
  node->started = true;
  ServerState* server = loud_->server();
  VirtualDevice* device = server->FindDevice(node->spec.device);
  if (device == nullptr || device->loud()->Root() != loud_) {
    node->done = true;
    node->aborted = true;
    server->metrics().commands_aborted.Increment();
    // Report asynchronously as a CommandDone(aborted).
    CommandDoneArgs args;
    args.tag = node->spec.tag;
    args.command = static_cast<uint16_t>(node->spec.command);
    args.aborted = 1;
    server->EmitEvent(loud_, EventType::kCommandDone, node->spec.device, args.Encode());
    return;
  }
  node->device = device;
  Status status = device->StartCommand(node->spec, tick);
  if (!status.ok()) {
    node->done = true;
    node->aborted = true;
    server->metrics().commands_aborted.Increment();
    CommandDoneArgs args;
    args.tag = node->spec.tag;
    args.command = static_cast<uint16_t>(node->spec.command);
    args.aborted = 1;
    server->EmitEvent(loud_, EventType::kCommandDone, device->id(), args.Encode());
    return;
  }
  // Instantaneous commands (ChangeGain, Answer, SendDTMF...) may already be
  // complete; TickCommand notices via CommandRunning().
}

void CommandQueue::FinishCommandNode(Node* node, EngineTick* tick) {
  node->done = true;
  if (node->device != nullptr && node->device->ConsumeAbortLatch()) {
    node->aborted = true;
  }
  ServerMetrics& metrics = loud_->server()->metrics();
  (node->aborted ? metrics.commands_aborted : metrics.commands_done).Increment();
  CommandDoneArgs args;
  args.tag = node->spec.tag;
  args.command = static_cast<uint16_t>(node->spec.command);
  args.aborted = node->aborted ? 1 : 0;
  loud_->server()->EmitEvent(loud_, EventType::kCommandDone,
                             node->device != nullptr ? node->device->id() : kNoResource,
                             args.Encode());
  (void)tick;
}

void CommandQueue::AbortNode(Node* node, EngineTick* tick) {
  switch (node->kind) {
    case Node::Kind::kCommand:
      if (node->started && !node->done && node->device != nullptr) {
        node->aborted = true;
        node->device->AbortCommand();
        FinishCommandNode(node, tick);
      } else if (!node->started) {
        node->done = true;
      }
      break;
    case Node::Kind::kCo:
    case Node::Kind::kDelay:
      for (auto& child : node->children) {
        if (!child->done) {
          AbortNode(child.get(), tick);
        }
      }
      node->done = true;
      break;
  }
}

void CommandQueue::PausePropagate(Node* node, bool* pausable) {
  switch (node->kind) {
    case Node::Kind::kCommand:
      if (node->started && !node->done && node->device != nullptr &&
          node->device->CommandRunning()) {
        if (!node->device->PauseDevice()) {
          *pausable = false;
        }
      }
      break;
    case Node::Kind::kCo:
      for (auto& child : node->children) {
        if (!child->done) {
          PausePropagate(child.get(), pausable);
        }
      }
      break;
    case Node::Kind::kDelay:
      if (node->child_index < node->children.size()) {
        PausePropagate(node->children[node->child_index].get(), pausable);
      }
      break;
  }
}

void CommandQueue::ResumePropagate(Node* node) {
  switch (node->kind) {
    case Node::Kind::kCommand:
      if (node->started && !node->done && node->device != nullptr) {
        node->device->ResumeDevice();
      }
      break;
    case Node::Kind::kCo:
      for (auto& child : node->children) {
        if (!child->done) {
          ResumePropagate(child.get());
        }
      }
      break;
    case Node::Kind::kDelay:
      if (node->child_index < node->children.size()) {
        ResumePropagate(node->children[node->child_index].get());
      }
      break;
  }
}

uint32_t CommandQueue::CountNodes(const Node& node) {
  if (node.kind == Node::Kind::kCommand) {
    return node.done ? 0 : 1;
  }
  uint32_t n = 0;
  for (const auto& child : node.children) {
    n += CountNodes(*child);
  }
  return n;
}

uint32_t CommandQueue::FirstTag(const Node& node) {
  if (node.kind == Node::Kind::kCommand) {
    return node.started && !node.done ? node.spec.tag : 0;
  }
  for (const auto& child : node.children) {
    uint32_t tag = FirstTag(*child);
    if (tag != 0) {
      return tag;
    }
  }
  return 0;
}

void CommandQueue::CollectSoundIds(std::vector<ResourceId>* out) const {
  for (const auto& node : program_) {
    CollectNodeSounds(*node, out);
  }
}

void CommandQueue::CollectNodeSounds(const Node& node, std::vector<ResourceId>* out) {
  if (node.kind == Node::Kind::kCommand && !node.done) {
    switch (node.spec.command) {
      case DeviceCommand::kPlay:
        out->push_back(PlayArgs::Decode(node.spec.args).sound);
        break;
      case DeviceCommand::kRecord:
        out->push_back(RecordArgs::Decode(node.spec.args).sound);
        break;
      case DeviceCommand::kTrain:
        out->push_back(TrainArgs::Decode(node.spec.args).sound);
        break;
      default:
        break;
    }
  }
  for (const auto& child : node.children) {
    CollectNodeSounds(*child, out);
  }
}

void CommandQueue::ForgetDevice(const VirtualDevice* device) {
  for (auto& node : program_) {
    ForgetNodeDevice(node.get(), device);
  }
}

void CommandQueue::ForgetNodeDevice(Node* node, const VirtualDevice* device) {
  if (node->kind == Node::Kind::kCommand && node->device == device) {
    node->device = nullptr;
    if (node->started && !node->done) {
      // The device died under a running command; there is nothing left to
      // finish, so the queue skips past it on the next tick.
      node->aborted = true;
      node->done = true;
    }
  }
  for (auto& child : node->children) {
    ForgetNodeDevice(child.get(), device);
  }
}

uint32_t CommandQueue::Depth() const {
  uint32_t n = 0;
  for (const auto& node : program_) {
    n += CountNodes(*node);
  }
  return n;
}

uint32_t CommandQueue::CurrentTag() const {
  if (program_.empty()) {
    return 0;
  }
  return FirstTag(*program_.front());
}

}  // namespace aud
