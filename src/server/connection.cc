#include "src/server/connection.h"

#include "src/common/logging.h"

namespace aud {

ClientConnection::~ClientConnection() {
  // Whoever destroys the connection must already have ensured both loops
  // can exit (HardClose, or reader exit + BeginDrain).
  if (writer_thread_.joinable()) {
    writer_thread_.join();
  }
  if (reader_thread_.joinable()) {
    reader_thread_.join();
  }
}

void ClientConnection::set_metrics(ServerMetrics* metrics) {
  metrics_ = metrics;
  egress_.set_bytes_gauge(metrics != nullptr ? &metrics->egress_queued_bytes
                                             : nullptr);
}

void ClientConnection::StartWriter() {
  writer_started_.store(true);
  writer_thread_ = std::thread([this] { WriterLoop(); });
}

void ClientConnection::StartReader(std::function<void()> body) {
  reader_thread_ = std::thread(std::move(body));
}

void ClientConnection::WriterLoop() {
  auto& tracer = obs::TraceRegistry::Instance();
  EgressFrame frame;
  while (egress_.Pop(&frame)) {
    const int64_t write_t0 = frame.trace != 0 ? tracer.NowUs() : 0;
    if (!WriteMessage(stream_.get(), frame.type, frame.code, frame.sequence,
                      frame.payload)) {
      // Transport dead: the reader will see EOF and run reclamation.
      MarkClosed();
      egress_.CloseNow();
      break;
    }
    const size_t frame_bytes = kHeaderSize + frame.payload.size();
    if (frame.trace != 0) {
      tracer.Span(obs::TraceReason::kSpanWrite, frame.trace, frame.parent, write_t0,
                  static_cast<uint32_t>(tracer.NowUs() - write_t0),
                  static_cast<uint32_t>(frame_bytes));
      if (metrics_ != nullptr) {
        metrics_->trace_spans.Increment();
      }
    }
    stats_.bytes_out.Increment(frame_bytes);
    if (metrics_ != nullptr) {
      metrics_->bytes_out.Increment(frame_bytes);
    }
  }
  egress_.MarkWriterExited();
}

ClientConnection::DrainStatus ClientConnection::DrainEgress() {
  auto& tracer = obs::TraceRegistry::Instance();
  while (true) {
    if (wire_off_ >= wire_buf_.size()) {
      EgressFrame frame;
      if (!egress_.TryPop(&frame)) {
        return DrainStatus::kIdle;
      }
      wire_buf_ = FrameMessage(frame.type, frame.code, frame.sequence, frame.payload);
      wire_off_ = 0;
      wire_trace_ = frame.trace;
      wire_parent_ = frame.parent;
      wire_t0_ = frame.trace != 0 ? tracer.NowUs() : 0;
    }
    while (wire_off_ < wire_buf_.size()) {
      IoResult r = stream_->WriteSome(
          std::span<const uint8_t>(wire_buf_).subspan(wire_off_));
      if (r.status == IoStatus::kWouldBlock) {
        return DrainStatus::kBlocked;
      }
      if (r.status != IoStatus::kOk) {
        // Transport dead: same reaction as the writer thread.
        MarkClosed();
        egress_.CloseNow();
        return DrainStatus::kError;
      }
      wire_off_ += r.bytes;
    }
    const size_t frame_bytes = wire_buf_.size();
    if (wire_trace_ != 0) {
      tracer.Span(obs::TraceReason::kSpanWrite, wire_trace_, wire_parent_, wire_t0_,
                  static_cast<uint32_t>(tracer.NowUs() - wire_t0_),
                  static_cast<uint32_t>(frame_bytes));
      if (metrics_ != nullptr) {
        metrics_->trace_spans.Increment();
      }
    }
    stats_.bytes_out.Increment(frame_bytes);
    if (metrics_ != nullptr) {
      metrics_->bytes_out.Increment(frame_bytes);
    }
    wire_buf_.clear();
    wire_off_ = 0;
  }
}

void ClientConnection::BeginDrain() {
  MarkClosed();
  egress_.BeginDrain();
  // Bounded flush so a peer that stops reading mid-drain cannot pin the
  // reader thread. Never join here — BeginDrain runs on the reader thread
  // while the destructor (pruner/shutdown) may be joining concurrently;
  // the destructor is the single owner of both joins.
  if (writer_started_.load()) {
    egress_.WaitWriterExitedFor(std::chrono::milliseconds(2000));
  }
  stream_->Close();
}

void ClientConnection::HardClose() {
  MarkClosed();
  egress_.CloseNow();
  stream_->Close();
}

bool ClientConnection::Send(MessageType type, uint16_t code, uint32_t sequence,
                            std::span<const uint8_t> payload, uint64_t trace,
                            uint64_t parent) {
  if (closed_.load()) {
    return false;
  }
  EgressFrame frame{type, code, sequence,
                    std::vector<uint8_t>(payload.begin(), payload.end())};
  if (trace != 0) {
    // Point span marking the enqueue; the writer's kSpanWrite links to it.
    auto& tracer = obs::TraceRegistry::Instance();
    frame.trace = trace;
    frame.parent = tracer.Span(obs::TraceReason::kSpanEgress, trace, parent,
                               tracer.NowUs(), 0, code);
    if (metrics_ != nullptr) {
      metrics_->trace_spans.Increment();
    }
  }
  EgressPushResult result = egress_.Push(std::move(frame));
  if (result.dropped_events > 0 && metrics_ != nullptr) {
    metrics_->events_dropped.Increment(result.dropped_events);
  }
  switch (result.status) {
    case EgressPushStatus::kQueued:
      // Loop mode: make sure the owning loop flushes this frame. (From the
      // loop thread itself the post-dispatch flush covers it; the notifier
      // filters that case to avoid per-send interest churn.)
      if (loop_mode_ && arm_write_) {
        arm_write_();
      }
      return true;
    case EgressPushStatus::kClosed:
      return false;
    case EgressPushStatus::kOverflow:
      // Slow client: it stopped reading even its replies. Cut it off; the
      // reader observes the closed stream and reclaims its resources.
      LogLine(LogLevel::kWarning)
          << "egress overflow, disconnecting slow client #" << index_
          << (client_name_.empty() ? "" : " (" + client_name_ + ")");
      if (metrics_ != nullptr) {
        metrics_->egress_disconnects.Increment();
      }
      HardClose();
      return false;
  }
  return false;
}

bool ClientConnection::SendReply(uint16_t opcode, uint32_t sequence,
                                 std::span<const uint8_t> payload, uint64_t trace,
                                 uint64_t parent) {
  return Send(MessageType::kReply, opcode, sequence, payload, trace, parent);
}

bool ClientConnection::SendError(uint32_t sequence, const ErrorMessage& error,
                                 uint64_t trace, uint64_t parent) {
  ByteWriter w;
  error.Encode(&w);
  return Send(MessageType::kError, static_cast<uint16_t>(error.code), sequence,
              w.bytes(), trace, parent);
}

bool ClientConnection::SendEvent(const EventMessage& event) {
  ByteWriter w;
  event.Encode(&w);
  bool sent = Send(MessageType::kEvent, static_cast<uint16_t>(event.type),
                   last_sequence_.load(), w.bytes());
  if (sent) {
    stats_.events_sent.Increment();
    if (metrics_ != nullptr) {
      metrics_->events_sent.Increment();
    }
  }
  return sent;
}

}  // namespace aud
