#include "src/server/connection.h"

namespace aud {

bool ClientConnection::Send(MessageType type, uint16_t code, uint32_t sequence,
                            std::span<const uint8_t> payload) {
  if (closed_.load()) {
    return false;
  }
  MutexLock lock(&write_mu_);
  if (!WriteMessage(stream_.get(), type, code, sequence, payload)) {
    closed_.store(true);
    return false;
  }
  if (metrics_ != nullptr) {
    metrics_->bytes_out.Increment(kHeaderSize + payload.size());
  }
  return true;
}

bool ClientConnection::SendReply(uint16_t opcode, uint32_t sequence,
                                 std::span<const uint8_t> payload) {
  return Send(MessageType::kReply, opcode, sequence, payload);
}

bool ClientConnection::SendError(uint32_t sequence, const ErrorMessage& error) {
  ByteWriter w;
  error.Encode(&w);
  return Send(MessageType::kError, static_cast<uint16_t>(error.code), sequence, w.bytes());
}

bool ClientConnection::SendEvent(const EventMessage& event) {
  ByteWriter w;
  event.Encode(&w);
  bool sent = Send(MessageType::kEvent, static_cast<uint16_t>(event.type),
                   last_sequence_.load(), w.bytes());
  if (sent && metrics_ != nullptr) {
    metrics_->events_sent.Increment();
  }
  return sent;
}

}  // namespace aud
