// Telephone device class: call control plus duplex audio to/from the bound
// phone line (sections 5.1 and 5.9).

#include "src/dsp/gain.h"
#include "src/server/devices.h"
#include "src/server/loud.h"
#include "src/server/server_state.h"

namespace aud {

TelephoneDevice::TelephoneDevice(ResourceId id, uint32_t owner, Loud* loud, AttrList attrs)
    : VirtualDevice(id, owner, DeviceClass::kTelephone, loud, std::move(attrs)) {}

void TelephoneDevice::Bind(PhysicalDevice* device, ResourceId device_loud_id) {
  VirtualDevice::Bind(device, device_loud_id);
  phone_ = dynamic_cast<PhoneLineUnit*>(device);
  if (phone_ != nullptr) {
    loud()->server()->BindTelephone(phone_, this);
    switch (phone_->line_state()) {
      case LineState::kConnected:
        call_state_ = CallState::kConnected;
        break;
      case LineState::kRingingIn:
      case LineState::kRingingOut:
        call_state_ = CallState::kRinging;
        break;
      default:
        call_state_ = CallState::kIdle;
        break;
    }
  }
}

void TelephoneDevice::Unbind() {
  if (phone_ != nullptr) {
    loud()->server()->UnbindTelephone(phone_, this);
  }
  phone_ = nullptr;
  VirtualDevice::Unbind();
}

Status TelephoneDevice::StartCommand(const CommandSpec& spec, EngineTick* tick) {
  if (phone_ == nullptr &&
      (spec.command == DeviceCommand::kDial || spec.command == DeviceCommand::kAnswer ||
       spec.command == DeviceCommand::kHangUp || spec.command == DeviceCommand::kSendDtmf)) {
    return Status(ErrorCode::kBadState, "telephone not bound to a line");
  }
  switch (spec.command) {
    case DeviceCommand::kDial: {
      StringArg args = StringArg::Decode(spec.args);
      // Arm completion state first: busy/failed progress can be emitted
      // synchronously from inside Dial.
      pending_ = DeviceCommand::kDial;
      call_state_ = CallState::kDialing;
      set_command_running(true);
      Status status = phone_->Dial(args.value);
      if (!status.ok()) {
        pending_ = DeviceCommand::kStop;
        set_command_running(false);
        return status;
      }
      return Status::Ok();
    }
    case DeviceCommand::kAnswer: {
      Status status = phone_->Answer();
      if (!status.ok()) {
        return status;
      }
      // The kAnswered line event (synchronous inside Answer's exchange
      // call? no: emitted by exchange immediately) updates call_state_.
      call_state_ = CallState::kConnected;
      return Status::Ok();
    }
    case DeviceCommand::kHangUp:
      phone_->HangUp();
      call_state_ = CallState::kIdle;
      return Status::Ok();
    case DeviceCommand::kSendDtmf: {
      StringArg args = StringArg::Decode(spec.args);
      phone_->SendDtmf(args.value);
      return Status::Ok();
    }
    default:
      return VirtualDevice::StartCommand(spec, tick);
  }
}

Status TelephoneDevice::ImmediateCommand(const CommandSpec& spec) {
  switch (spec.command) {
    case DeviceCommand::kHangUp:
      if (phone_ != nullptr) {
        phone_->HangUp();
        call_state_ = CallState::kIdle;
      }
      return Status::Ok();
    default:
      return VirtualDevice::ImmediateCommand(spec);
  }
}

void TelephoneDevice::AbortCommand() {
  pending_ = DeviceCommand::kStop;
  VirtualDevice::AbortCommand();
}

size_t TelephoneDevice::Produce(EngineTick* tick, size_t frames) {
  if (phone_ == nullptr || source_wires().empty()) {
    return 0;
  }
  scratch_.assign(frames, 0);
  phone_->rx_codec().ReadCapture(scratch_);
  if (gain() != kUnityGain) {
    ApplyGain(scratch_, gain());
  }
  for (WireObject* wire : source_wires()) {
    wire->Push(scratch_);
  }
  (void)tick;
  return frames;
}

void TelephoneDevice::Consume(EngineTick* tick) {
  if (phone_ == nullptr) {
    return;
  }
  for (WireObject* wire : sink_wires()) {
    scratch_.clear();
    wire->Pull(tick->frames, &scratch_);
    if (!scratch_.empty()) {
      tick->server->AccumulateOutput(phone_, scratch_, gain());
    }
  }
}

void TelephoneDevice::OnLineEvent(const ExchangeLine::Event& event, EngineTick* tick) {
  (void)tick;
  ServerState* server = loud()->server();
  Loud* root = loud()->Root();

  switch (event.type) {
    case ExchangeLine::Event::Type::kRing: {
      call_state_ = CallState::kRinging;
      TelephoneRingArgs args;
      args.caller_id = event.caller_id;
      args.line = 0;
      server->EmitEvent(root, EventType::kTelephoneRing, id(), args.Encode());
      break;
    }
    case ExchangeLine::Event::Type::kAnswered: {
      call_state_ = CallState::kConnected;
      if (pending_ == DeviceCommand::kDial && CommandRunning()) {
        pending_ = DeviceCommand::kStop;
        set_command_running(false);
        CallProgressArgs done;
        done.state = CallState::kConnected;
        server->EmitEvent(root, EventType::kTelephoneDialDone, id(), done.Encode());
      } else {
        server->EmitEvent(root, EventType::kTelephoneAnswered, id(), {});
      }
      CallProgressArgs progress;
      progress.state = CallState::kConnected;
      server->EmitEvent(root, EventType::kCallProgress, id(), progress.Encode());
      break;
    }
    case ExchangeLine::Event::Type::kProgress: {
      call_state_ = event.state;
      CallProgressArgs progress;
      progress.state = event.state;
      server->EmitEvent(root, EventType::kCallProgress, id(), progress.Encode());
      if (pending_ == DeviceCommand::kDial && CommandRunning() &&
          (event.state == CallState::kBusy || event.state == CallState::kFailed)) {
        pending_ = DeviceCommand::kStop;
        set_command_running(false);
        CallProgressArgs done;
        done.state = event.state;
        server->EmitEvent(root, EventType::kTelephoneDialDone, id(), done.Encode());
      }
      break;
    }
    case ExchangeLine::Event::Type::kDtmf: {
      DtmfReceivedArgs args;
      args.digit = event.digit;
      server->EmitEvent(root, EventType::kDtmfReceived, id(), args.Encode());
      break;
    }
  }
}

}  // namespace aud
