// Token bucket for per-connection rate limiting (DESIGN.md decision 15).
// Plain non-atomic state: each bucket is owned by the single thread that
// reads its connection (the legacy reader thread or the event-loop thread
// that owns the fd), exactly like ClientConnection's trace sample counter,
// so no locking or atomics are needed on the per-request path.

#ifndef SRC_SERVER_TOKEN_BUCKET_H_
#define SRC_SERVER_TOKEN_BUCKET_H_

#include <algorithm>
#include <chrono>

namespace aud {

class TokenBucket {
 public:
  // rate_per_sec = sustained refill rate; burst = bucket capacity (the
  // largest debt a momentarily idle connection can spend at once). A zero
  // rate disables the bucket entirely. Configure before the owning thread
  // starts reading; the bucket opens full.
  void Configure(double rate_per_sec, double burst) {
    rate_per_sec_ = rate_per_sec;
    burst_ = std::max(burst, 1.0);
    tokens_ = burst_;
    last_ = {};
  }

  bool enabled() const { return rate_per_sec_ > 0.0; }

  // Refills for the elapsed time, then tries to spend `cost` tokens.
  // Returns false (and spends nothing) when the bucket cannot cover the
  // cost — the caller throttles or disconnects per its policy.
  bool TryAcquire(double cost, std::chrono::steady_clock::time_point now) {
    if (!enabled()) {
      return true;
    }
    if (last_.time_since_epoch().count() != 0 && now > last_) {
      const double elapsed = std::chrono::duration<double>(now - last_).count();
      tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_sec_);
    }
    last_ = now;
    if (tokens_ < cost) {
      return false;
    }
    tokens_ -= cost;
    return true;
  }

 private:
  double rate_per_sec_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point last_{};
};

}  // namespace aud

#endif  // SRC_SERVER_TOKEN_BUCKET_H_
