#include "src/server/server.h"

#include <algorithm>

#include "src/common/logging.h"

namespace aud {

AudioServer::AudioServer(Board* board) : AudioServer(board, ServerOptions{}) {}

AudioServer::AudioServer(Board* board, ServerOptions options)
    : board_(board), options_(options), state_(board, options.name) {
  state_.AttachStateLock(&mu_);
  state_.ConfigureEngine(options.engine_threads);
  state_.ConfigureDecodedCache(options.decoded_cache_bytes);
  state_.set_trace_sample_every(options.trace_sample_every);
  metrics_ = &state_.metrics();
  state_.set_event_sender([this](uint32_t conn_index, const EventMessage& event) {
    DeliverEvent(conn_index, event);
  });
  fault_options_ = options_.fault;
  if (!fault_options_.enabled) {
    fault_options_ = FaultOptionsFromEnv("AUD_FAULT");
  }
  StartLoops();
  state_.set_connection_loops(static_cast<uint32_t>(loops_.size()));
}

void AudioServer::StartLoops() {
  if (options_.connection_threads == 0) {
    return;
  }
  EventLoopOptions lo;
  lo.backend = options_.loop_use_poll ? EventLoopOptions::Backend::kPoll
                                      : EventLoopOptions::Backend::kAuto;
  lo.edge_triggered = options_.loop_edge_triggered;
  lo.metrics.epoll_waits = &metrics_->epoll_waits;
  lo.metrics.wakeups = &metrics_->loop_wakeups;
  lo.metrics.readiness_spurious = &metrics_->readiness_spurious;
  lo.metrics.fds_watched = &metrics_->fds_watched;
  lo.metrics.dispatch_us = &metrics_->loop_dispatch_us;
  for (uint32_t i = 0; i < options_.connection_threads; ++i) {
    auto loop = std::make_unique<EventLoop>(lo);
    loop->set_sweep([this, i] { LoopSweep(i); });
    if (!loop->Start()) {
      LogLine(LogLevel::kWarning)
          << "event loop " << i << " failed to start; "
          << "falling back to thread-per-connection";
      loops_.clear();
      return;
    }
    loops_.push_back(std::move(loop));
  }
}

// Called with mu_ held (from dispatch or engine tick) — see the declaration
// for why the analysis is opted out here.
void AudioServer::DeliverEvent(uint32_t conn_index, const EventMessage& event) {
  for (auto& conn : connections_) {
    if (conn->index() == conn_index && !conn->closed()) {
      conn->SendEvent(event);
      return;
    }
  }
}

AudioServer::~AudioServer() { Shutdown(); }

void AudioServer::AddConnection(std::unique_ptr<ByteStream> stream) {
  // Declared before the lock so the joins in ~ClientConnection run after
  // the lock is released (their readers take mu_ during teardown).
  std::vector<std::unique_ptr<ClientConnection>> finished;
  MutexLock lock(&mu_);
  // Prune connections whose reader completed teardown: each accepted
  // stream pays the (tiny) cleanup cost for its predecessors, so a
  // long-lived server does not accumulate dead connection objects.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished()) {
      finished.push_back(std::move(*it));
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  // Admission control (decision 15): over capacity — or draining toward
  // shutdown — the connection is politely closed before it gets a reader
  // or an fd registration, and the accept loop keeps running. connections_
  // holds only live connections here (the finished were just pruned).
  if ((options_.max_connections != 0 &&
       connections_.size() >= options_.max_connections) ||
      draining_.load()) {
    metrics_->admission_rejects.Increment();
    stream->Close();
    return;
  }
  const uint32_t index = next_connection_index_++;
  if (fault_options_.enabled) {
    stream = MaybeWrapFault(std::move(stream), fault_options_.ForInstance(index));
  }
  auto conn = std::make_unique<ClientConnection>(
      index, std::move(stream), options_.egress_buffer_bytes, options_.egress_overflow);
  ClientConnection* raw = conn.get();
  raw->set_metrics(metrics_);
  // Burst defaults to one second's worth of the rate (decision 15).
  raw->ConfigureRateLimits(
      static_cast<double>(options_.limit_rps),
      static_cast<double>(options_.limit_rps_burst != 0 ? options_.limit_rps_burst
                                                        : options_.limit_rps),
      static_cast<double>(options_.limit_bps),
      static_cast<double>(options_.limit_bps_burst != 0 ? options_.limit_bps_burst
                                                        : options_.limit_bps));
  metrics_->connections_total.Increment();
  metrics_->connections_open.Add(1);
  obs::Trace(obs::TraceReason::kConnectionOpen, raw->index());
  const int fd = raw->pollable_fd();
  if (!loops_.empty() && fd >= 0) {
    // Loop plane: shard by fd hash, no per-connection threads. The fd is
    // registered after the connection is published (still under mu_, so
    // the first readiness dispatch — which takes mu_ — cannot overtake us).
    const uint32_t loop_index = static_cast<uint32_t>(fd) % loops_.size();
    EventLoop* loop = loops_[loop_index].get();
    raw->ConfigureLoopMode(loop_index, [loop, fd] {
      // The owning loop flushes after every dispatch round itself; only
      // foreign threads (engine events) need to arm write interest.
      if (!loop->OnLoopThread()) {
        loop->SetWantWrite(fd, true);
      }
    });
    connections_.push_back(std::move(conn));
    loop->Add(fd, [this, raw, loop_index](uint32_t events) {
      LoopHandleReady(raw, loop_index, events);
    });
    return;
  }
  raw->StartWriter();
  raw->StartReader([this, raw] { ReaderLoop(raw); });
  connections_.push_back(std::move(conn));
}

bool AudioServer::ListenTcp(uint16_t port) {
  if (!listener_.Listen(port)) {
    return false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

size_t AudioServer::connection_count() {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& conn : connections_) {
    if (!conn->closed()) {
      ++n;
    }
  }
  return n;
}

void AudioServer::AcceptLoop() {
  uint64_t retries_seen = 0;
  while (!shutting_down_.load()) {
    // Transient accept failures (EINTR, ECONNABORTED, fd exhaustion) are
    // retried inside Accept with bounded backoff; nullptr means the
    // listener itself was closed.
    // Loop-plane fds are accepted non-blocking (atomically, via accept4);
    // legacy-mode fds stay blocking for the reader/writer threads.
    std::unique_ptr<ByteStream> stream = listener_.Accept(!loops_.empty());
    const uint64_t retries = listener_.accept_retries();
    if (retries > retries_seen) {
      metrics_->accept_retries.Increment(retries - retries_seen);
      retries_seen = retries;
    }
    if (stream == nullptr) {
      return;
    }
    AddConnection(std::move(stream));
  }
}

void AudioServer::ReaderLoop(ClientConnection* conn) {
  ServerMetrics& metrics = *metrics_;
  // First message must be the connection setup.
  std::optional<FramedMessage> setup = ReadMessage(conn->stream());
  if (setup) {
    metrics.bytes_in.Increment(kHeaderSize + setup->payload.size());
    conn->stats().bytes_in.Increment(kHeaderSize + setup->payload.size());
  }
  if (!setup || !HandleSetup(conn, *setup)) {
    // Drain first: the refusal reply queued by HandleSetup still flushes.
    conn->BeginDrain();
    metrics.connections_open.Sub(1);
    conn->MarkFinished();
    return;
  }

  while (!conn->closed() && !shutting_down_.load()) {
    std::optional<FramedMessage> message = ReadMessage(conn->stream());
    if (!message) {
      break;
    }
    metrics.bytes_in.Increment(kHeaderSize + message->payload.size());
    conn->stats().bytes_in.Increment(kHeaderSize + message->payload.size());
    const RateGate gate = CheckRateLimit(conn, *message);
    if (gate == RateGate::kCut) {
      break;  // hard policy: fall through to the normal teardown below
    }
    if (gate == RateGate::kThrottled) {
      continue;  // soft policy: kRateLimited queued, request dropped
    }
    DispatchRequest(conn, *message);
  }

  // Flush queued replies/events (bounded), then close the transport.
  conn->BeginDrain();
  // Free every resource the client owned (the paper's per-connection
  // container teardown).
  {
    MutexLock lock(&mu_);
    // Structural teardown: wait out any in-flight epoch so no engine worker
    // holds pointers into the objects about to be destroyed.
    state_.WaitEngineIdle();
    state_.DestroyConnectionObjects(conn->index());
    state_.RecomputeActivation();
    metrics.connections_open.Sub(1);
    obs::Trace(obs::TraceReason::kConnectionClose, conn->index());
  }
  // Last action: the connection may now be joined and destroyed by the
  // next AddConnection prune or by Shutdown.
  conn->MarkFinished();
}

void AudioServer::DispatchRequest(ClientConnection* conn, const FramedMessage& message) {
  ServerMetrics& metrics = *metrics_;
  auto& tracer = obs::TraceRegistry::Instance();
  const uint32_t sample_every = options_.trace_sample_every;
  // Sampling decision (dispatching-thread-local counter, so no atomics).
  // The root span's seq is reserved up front: children recorded during
  // dispatch parent on it, and the root itself is written last with its
  // start backdated to arrival so the sort-by-time merge nests correctly.
  TraceContext ctx;
  int64_t arrival_us = 0;
  if (sample_every != 0 &&
      (conn->trace_sample_counter()++ % sample_every) == 0) {
    ctx.trace_id = (static_cast<uint64_t>(ClientIdBaseFor(conn->index())) << 32) |
                   message.header.sequence;
    ctx.root_seq = tracer.ReserveSeq();
    arrival_us = tracer.NowUs();
  }
  const auto wait_t0 = std::chrono::steady_clock::now();
  MutexLock lock(&mu_);
  metrics.lock_wait_us.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wait_t0)
          .count()));
  conn->set_last_sequence(message.header.sequence);
  HandleRequest(conn, message, wait_t0, ctx);
  if (ctx.trace_id != 0) {
    tracer.SpanWithSeq(ctx.root_seq, obs::TraceReason::kSpanRequest, ctx.trace_id,
                       0, arrival_us,
                       static_cast<uint32_t>(tracer.NowUs() - arrival_us),
                       message.header.code);
    metrics.trace_spans.Increment();
    metrics.trace_requests_sampled.Increment();
    metrics.last_trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  }
}

AudioServer::RateGate AudioServer::CheckRateLimit(ClientConnection* conn,
                                                  const FramedMessage& message) {
  TokenBucket& rps = conn->rps_bucket();
  TokenBucket& bps = conn->bps_bucket();
  if (!rps.enabled() && !bps.enabled()) {
    return RateGate::kDispatch;
  }
  const auto now = std::chrono::steady_clock::now();
  // Both buckets are charged even when one refuses, so a client that is
  // over on requests still pays for the bytes it made the server read.
  const bool rps_ok = rps.TryAcquire(1.0, now);
  const bool bps_ok = bps.TryAcquire(
      static_cast<double>(kHeaderSize + message.payload.size()), now);
  if (rps_ok && bps_ok) {
    return RateGate::kDispatch;
  }
  metrics_->rate_limited.Increment();
  if (options_.limit_policy == RateLimitPolicy::kHard) {
    metrics_->rate_limit_disconnects.Increment();
    return RateGate::kCut;
  }
  // Soft policy: the request is dropped without dispatch and answered with
  // kRateLimited on its own sequence. Not counted in requests_total — the
  // dispatcher never saw it.
  ErrorMessage error;
  error.code = ErrorCode::kRateLimited;
  error.resource = kNoResource;
  error.opcode = message.header.code;
  error.detail = rps_ok ? "ingress byte rate exceeded" : "request rate exceeded";
  conn->SendError(message.header.sequence, error);
  return RateGate::kThrottled;
}

// ---- Event-loop connection plane (DESIGN.md decision 14) -------------------
//
// Every function below runs on the loop thread owning the connection's fd
// (handlers and the sweep are dispatched there, and teardown removes the fd
// before finishing), so the per-connection LoopState needs no lock.

void AudioServer::LoopHandleReady(ClientConnection* conn, uint32_t loop_index,
                                  uint32_t events) {
  // Once LoopTeardown runs it ends in MarkFinished, after which the pruner
  // (AddConnection) or Shutdown may destroy the object — so every helper
  // below returns false the moment the connection was torn down, and no
  // code path touches `conn` after a false return.
  auto& ls = conn->loop_state();
  if (ls.torn_down) {
    return;
  }
  if ((events & kLoopError) != 0) {
    // EPOLLERR/EPOLLHUP: the transport is gone both ways — nothing queued
    // can be flushed, so skip draining and reclaim immediately.
    LoopTeardown(conn, loop_index);
    return;
  }
  if (conn->closed() && !ls.draining) {
    // A foreign thread hard-closed this connection (egress overflow cut a
    // slow client off); the stream shutdown made the fd readable. The
    // backlog was already discarded, so there is nothing to drain.
    LoopTeardown(conn, loop_index);
    return;
  }
  if ((events & kLoopReadable) != 0 && !ls.draining && !conn->closed()) {
    if (!LoopReadAndDispatch(conn, loop_index)) {
      return;
    }
  }
  // Flush whatever dispatch queued; also services write readiness.
  LoopFlush(conn, loop_index);
}

bool AudioServer::LoopReadAndDispatch(ClientConnection* conn, uint32_t loop_index) {
  auto& ls = conn->loop_state();
  // Level-triggered readiness re-reports leftover input, so cap one round
  // to keep a flooding client from starving its loop siblings. Under
  // edge-triggering the kernel only reports state *changes*, so the drain
  // must run all the way to kWouldBlock.
  const bool edge = loops_[loop_index]->edge_triggered();
  int budget = edge ? INT32_MAX : 256;
  bool progressed = false;
  while (!conn->closed() && !shutting_down_.load() && budget-- > 0) {
    FramedMessage message;
    FrameStatus status = conn->TryReadFrame(&message);
    if (status == FrameStatus::kWouldBlock) {
      if (!progressed) {
        // Woken readable but not even one byte to show for it.
        metrics_->readiness_spurious.Increment();
      }
      return true;
    }
    if (status != FrameStatus::kMessage) {
      // kEof (peer died, possibly mid-frame) or kMalformed (poisoned
      // framing): stop reading, flush what the client is still owed.
      return LoopBeginDrain(conn, loop_index);
    }
    progressed = true;
    metrics_->bytes_in.Increment(kHeaderSize + message.payload.size());
    conn->stats().bytes_in.Increment(kHeaderSize + message.payload.size());
    if (ls.awaiting_setup) {
      ls.awaiting_setup = false;
      if (!HandleSetup(conn, message)) {
        // The refusal reply still flushes through the drain.
        return LoopBeginDrain(conn, loop_index);
      }
      continue;
    }
    switch (CheckRateLimit(conn, message)) {
      case RateGate::kCut:
        // Hard policy: stop reading; the drain still flushes queued
        // replies before the teardown reclaims the connection.
        return LoopBeginDrain(conn, loop_index);
      case RateGate::kThrottled:
        continue;
      case RateGate::kDispatch:
        break;
    }
    DispatchRequest(conn, message);
  }
  return true;
}

bool AudioServer::LoopFlush(ClientConnection* conn, uint32_t loop_index) {
  auto& ls = conn->loop_state();
  if (ls.torn_down) {
    return false;
  }
  const int fd = conn->pollable_fd();
  switch (conn->DrainEgress()) {
    case ClientConnection::DrainStatus::kBlocked:
      loops_[loop_index]->SetWantWrite(fd, true);
      return true;
    case ClientConnection::DrainStatus::kError:
      LoopTeardown(conn, loop_index);
      return false;
    case ClientConnection::DrainStatus::kIdle:
      if (ls.draining || conn->closed()) {
        // Drain-to-completion (the backlog has fully flushed), or an
        // overflow disconnect during dispatch discarded it; reclaim.
        LoopTeardown(conn, loop_index);
        return false;
      }
      loops_[loop_index]->SetWantWrite(fd, false);
      return true;
  }
  return true;
}

bool AudioServer::LoopBeginDrain(ClientConnection* conn, uint32_t loop_index) {
  auto& ls = conn->loop_state();
  if (ls.torn_down) {
    return false;
  }
  if (ls.draining) {
    return true;
  }
  ls.draining = true;
  // Same bound as the legacy writer drain: a peer that stops reading
  // mid-flush cannot pin the loop — the sweep forces teardown at deadline.
  ls.drain_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  conn->BeginLoopDrain();
  return LoopFlush(conn, loop_index);
}

void AudioServer::LoopTeardown(ClientConnection* conn, uint32_t loop_index) {
  auto& ls = conn->loop_state();
  if (ls.torn_down) {
    return;
  }
  ls.torn_down = true;
  loops_[loop_index]->Remove(conn->pollable_fd());
  conn->HardClose();
  // Free every resource the client owned — identical to the legacy
  // reader-thread teardown in ReaderLoop.
  {
    MutexLock lock(&mu_);
    state_.WaitEngineIdle();
    state_.DestroyConnectionObjects(conn->index());
    state_.RecomputeActivation();
    metrics_->connections_open.Sub(1);
    obs::Trace(obs::TraceReason::kConnectionClose, conn->index());
  }
  // Last action: the connection may now be pruned by AddConnection or
  // destroyed by Shutdown.
  conn->MarkFinished();
}

void AudioServer::LoopSweep(uint32_t loop_index) {
  if (shutting_down_.load()) {
    return;
  }
  // Collect under mu_, tear down outside it (LoopTeardown takes mu_
  // itself). All state read here belongs to this loop thread.
  std::vector<ClientConnection*> expired;
  const auto now = std::chrono::steady_clock::now();
  {
    MutexLock lock(&mu_);
    for (auto& conn : connections_) {
      if (!conn->loop_mode() || conn->loop_index() != loop_index ||
          conn->finished()) {
        continue;
      }
      auto& ls = conn->loop_state();
      if (ls.draining && !ls.torn_down && now >= ls.drain_deadline) {
        expired.push_back(conn.get());
      }
    }
  }
  for (ClientConnection* conn : expired) {
    LoopTeardown(conn, loop_index);
  }
}

bool AudioServer::HandleSetup(ClientConnection* conn, const FramedMessage& message) {
  ByteReader r(message.payload);
  SetupRequest request = SetupRequest::Decode(&r);

  SetupReply reply;
  if (message.header.code != kSetupOpcode || request.magic != kSetupMagic || !r.ok()) {
    reply.success = 0;
    reply.reason = "bad setup message";
  } else if (request.major != kProtocolMajor) {
    reply.success = 0;
    reply.reason = "protocol version mismatch";
  } else {
    reply.success = 1;
    MutexLock lock(&mu_);
    reply.id_base = ClientIdBaseFor(conn->index());
    reply.id_count = kClientIdBlockSize;
    reply.device_loud = state_.device_loud_root();
    reply.server_name = state_.server_name();
    conn->set_client_name(request.client_name);
  }

  ByteWriter w;
  reply.Encode(&w);
  conn->SendReply(kSetupOpcode, message.header.sequence, w.bytes());
  return reply.success != 0;
}

void AudioServer::StepFrames(int64_t frames) {
  while (frames > 0) {
    size_t step = std::min<int64_t>(frames, static_cast<int64_t>(options_.period_frames));
    // Tick manages the state lock itself (epoch open/commit).
    tick_state().Tick(step);
    frames -= static_cast<int64_t>(step);
  }
}

void AudioServer::StartRealtime() {
  if (engine_running_.exchange(true)) {
    return;
  }
  engine_thread_ = std::thread([this] { EngineLoop(); });
}

void AudioServer::StopRealtime() {
  if (!engine_running_.exchange(false)) {
    return;
  }
  if (engine_thread_.joinable()) {
    engine_thread_.join();
  }
}

void AudioServer::EngineLoop() {
  RealClock clock;
  Ticks period =
      SamplesToTicks(static_cast<int64_t>(options_.period_frames), board_->sample_rate_hz());
  Ticks next = clock.Now() + period;
  // Reap finished connections about once a second of engine time.
  const uint64_t reap_every = std::max<uint64_t>(
      1, board_->sample_rate_hz() / std::max<size_t>(1, options_.period_frames));
  uint64_t periods = 0;
  while (engine_running_.load() && !shutting_down_.load()) {
    // Tick manages the state lock itself; the fan-out runs without it, so
    // dispatch on untouched roots overlaps the engine freely.
    tick_state().Tick(options_.period_frames);
    if (++periods % reap_every == 0) {
      ReapFinishedConnections();
    }
    clock.SleepUntil(next);
    // Wakeup lateness: how far past the deadline the engine resumed
    // (Ticks are microseconds). 0 when the tick finished inside the period.
    Ticks late = clock.Now() - next;
    metrics_->tick_jitter_us.Record(late > 0 ? static_cast<uint64_t>(late) : 0);
    next += period;
  }
}

bool AudioServer::Drain(std::chrono::milliseconds deadline) {
  if (shutting_down_.load()) {
    return true;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto cutoff = t0 + deadline;
  if (!draining_.exchange(true)) {
    metrics_->draining.Set(1);
  }
  // Stop accepting: close the listener and join the accept thread. Late
  // in-process AddConnection calls are refused by the admission check.
  listener_.Close();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // In-flight requests keep dispatching and their replies keep flushing
  // (readers, writers, loops, and the engine all stay up); wait for every
  // connection's egress backlog to empty, bounded by the deadline.
  while (std::chrono::steady_clock::now() < cutoff &&
         metrics_->egress_queued_bytes.value() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  bool flushed = true;
  {
    MutexLock lock(&mu_);
    // Connections the deadline is about to force closed with unflushed
    // egress — the price of a slow client meeting a finite drain window.
    for (auto& conn : connections_) {
      if (!conn->finished() && conn->egress_queued_bytes() != 0) {
        metrics_->drain_forced_closes.Increment();
        flushed = false;
      }
    }
    // Hang up every off-hook telephone line: a terminating server must
    // leave the building's lines on-hook, exactly as it does when a single
    // owning client dies (DestroyConnectionObjects).
    state_.WaitEngineIdle();
    state_.HangUpAllLines();
  }
  metrics_->drain_duration_ms.Set(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  Shutdown();
  return flushed;
}

void AudioServer::ReapFinishedConnections() {
  // Same discipline as the AddConnection prune: collect under the lock,
  // join/destroy outside it (legacy readers take mu_ during teardown).
  std::vector<std::unique_ptr<ClientConnection>> finished;
  {
    MutexLock lock(&mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->finished()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  finished.clear();  // ~ClientConnection joins the (already exited) threads
}

size_t AudioServer::connection_objects_for_test() {
  MutexLock lock(&mu_);
  return connections_.size();
}

void AudioServer::Shutdown() {
  if (shutting_down_.exchange(true)) {
    return;
  }
  StopRealtime();
  listener_.Close();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Hard-close everything first (under the lock), then stop the event
  // loops: in-flight loop handlers finish their teardown against live
  // connection objects before any destruction below.
  {
    MutexLock lock(&mu_);
    for (auto& conn : connections_) {
      conn->HardClose();
    }
  }
  for (auto& loop : loops_) {
    loop->Stop();
  }
  // Swap the connections out under the lock, then join/destroy outside it
  // (legacy readers take mu_ during teardown). No new connections can
  // appear: the accept thread has already been joined above.
  std::vector<std::unique_ptr<ClientConnection>> conns;
  {
    MutexLock lock(&mu_);
    conns.swap(connections_);
  }
  // Loop-plane connections whose teardown never ran (their loop stopped
  // first) get the same reclamation the legacy reader exit performs, so
  // gauges and the registry end balanced either way.
  for (auto& conn : conns) {
    if (conn->loop_mode() && !conn->finished()) {
      MutexLock lock(&mu_);
      state_.WaitEngineIdle();
      state_.DestroyConnectionObjects(conn->index());
      state_.RecomputeActivation();
      metrics_->connections_open.Sub(1);
      obs::Trace(obs::TraceReason::kConnectionClose, conn->index());
      conn->MarkFinished();
    }
  }
  conns.clear();  // ~ClientConnection joins each legacy reader + writer
}

}  // namespace aud
