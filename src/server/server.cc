#include "src/server/server.h"

#include <algorithm>

#include "src/common/logging.h"

namespace aud {

AudioServer::AudioServer(Board* board) : AudioServer(board, ServerOptions{}) {}

AudioServer::AudioServer(Board* board, ServerOptions options)
    : board_(board), options_(options), state_(board, options.name) {
  state_.AttachStateLock(&mu_);
  state_.ConfigureEngine(options.engine_threads);
  state_.ConfigureDecodedCache(options.decoded_cache_bytes);
  state_.set_trace_sample_every(options.trace_sample_every);
  metrics_ = &state_.metrics();
  state_.set_event_sender([this](uint32_t conn_index, const EventMessage& event) {
    DeliverEvent(conn_index, event);
  });
  fault_options_ = options_.fault;
  if (!fault_options_.enabled) {
    fault_options_ = FaultOptionsFromEnv("AUD_FAULT");
  }
}

// Called with mu_ held (from dispatch or engine tick) — see the declaration
// for why the analysis is opted out here.
void AudioServer::DeliverEvent(uint32_t conn_index, const EventMessage& event) {
  for (auto& conn : connections_) {
    if (conn->index() == conn_index && !conn->closed()) {
      conn->SendEvent(event);
      return;
    }
  }
}

AudioServer::~AudioServer() { Shutdown(); }

void AudioServer::AddConnection(std::unique_ptr<ByteStream> stream) {
  // Declared before the lock so the joins in ~ClientConnection run after
  // the lock is released (their readers take mu_ during teardown).
  std::vector<std::unique_ptr<ClientConnection>> finished;
  MutexLock lock(&mu_);
  // Prune connections whose reader completed teardown: each accepted
  // stream pays the (tiny) cleanup cost for its predecessors, so a
  // long-lived server does not accumulate dead connection objects.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished()) {
      finished.push_back(std::move(*it));
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  const uint32_t index = next_connection_index_++;
  if (fault_options_.enabled) {
    stream = MaybeWrapFault(std::move(stream), fault_options_.ForInstance(index));
  }
  auto conn = std::make_unique<ClientConnection>(
      index, std::move(stream), options_.egress_buffer_bytes, options_.egress_overflow);
  ClientConnection* raw = conn.get();
  raw->set_metrics(metrics_);
  metrics_->connections_total.Increment();
  metrics_->connections_open.Add(1);
  obs::Trace(obs::TraceReason::kConnectionOpen, raw->index());
  raw->StartWriter();
  raw->StartReader([this, raw] { ReaderLoop(raw); });
  connections_.push_back(std::move(conn));
}

bool AudioServer::ListenTcp(uint16_t port) {
  if (!listener_.Listen(port)) {
    return false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

size_t AudioServer::connection_count() {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& conn : connections_) {
    if (!conn->closed()) {
      ++n;
    }
  }
  return n;
}

void AudioServer::AcceptLoop() {
  uint64_t retries_seen = 0;
  while (!shutting_down_.load()) {
    // Transient accept failures (EINTR, ECONNABORTED, fd exhaustion) are
    // retried inside Accept with bounded backoff; nullptr means the
    // listener itself was closed.
    std::unique_ptr<ByteStream> stream = listener_.Accept();
    const uint64_t retries = listener_.accept_retries();
    if (retries > retries_seen) {
      metrics_->accept_retries.Increment(retries - retries_seen);
      retries_seen = retries;
    }
    if (stream == nullptr) {
      return;
    }
    AddConnection(std::move(stream));
  }
}

void AudioServer::ReaderLoop(ClientConnection* conn) {
  ServerMetrics& metrics = *metrics_;
  // First message must be the connection setup.
  std::optional<FramedMessage> setup = ReadMessage(conn->stream());
  if (setup) {
    metrics.bytes_in.Increment(kHeaderSize + setup->payload.size());
    conn->stats().bytes_in.Increment(kHeaderSize + setup->payload.size());
  }
  if (!setup || !HandleSetup(conn, *setup)) {
    // Drain first: the refusal reply queued by HandleSetup still flushes.
    conn->BeginDrain();
    metrics.connections_open.Sub(1);
    conn->MarkFinished();
    return;
  }

  auto& tracer = obs::TraceRegistry::Instance();
  const uint32_t sample_every = options_.trace_sample_every;
  while (!conn->closed() && !shutting_down_.load()) {
    std::optional<FramedMessage> message = ReadMessage(conn->stream());
    if (!message) {
      break;
    }
    metrics.bytes_in.Increment(kHeaderSize + message->payload.size());
    conn->stats().bytes_in.Increment(kHeaderSize + message->payload.size());
    // Sampling decision (reader-thread-local counter, so no atomics). The
    // root span's seq is reserved up front: children recorded during
    // dispatch parent on it, and the root itself is written last with its
    // start backdated to arrival so the sort-by-time merge nests correctly.
    TraceContext ctx;
    int64_t arrival_us = 0;
    if (sample_every != 0 &&
        (conn->trace_sample_counter()++ % sample_every) == 0) {
      ctx.trace_id = (static_cast<uint64_t>(ClientIdBaseFor(conn->index())) << 32) |
                     message->header.sequence;
      ctx.root_seq = tracer.ReserveSeq();
      arrival_us = tracer.NowUs();
    }
    const auto wait_t0 = std::chrono::steady_clock::now();
    MutexLock lock(&mu_);
    metrics.lock_wait_us.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_t0)
            .count()));
    conn->set_last_sequence(message->header.sequence);
    HandleRequest(conn, *message, wait_t0, ctx);
    if (ctx.trace_id != 0) {
      tracer.SpanWithSeq(ctx.root_seq, obs::TraceReason::kSpanRequest, ctx.trace_id,
                         0, arrival_us,
                         static_cast<uint32_t>(tracer.NowUs() - arrival_us),
                         message->header.code);
      metrics.trace_spans.Increment();
      metrics.trace_requests_sampled.Increment();
      metrics.last_trace_id.store(ctx.trace_id, std::memory_order_relaxed);
    }
  }

  // Flush queued replies/events (bounded), then close the transport.
  conn->BeginDrain();
  // Free every resource the client owned (the paper's per-connection
  // container teardown).
  {
    MutexLock lock(&mu_);
    // Structural teardown: wait out any in-flight epoch so no engine worker
    // holds pointers into the objects about to be destroyed.
    state_.WaitEngineIdle();
    state_.DestroyConnectionObjects(conn->index());
    state_.RecomputeActivation();
    metrics.connections_open.Sub(1);
    obs::Trace(obs::TraceReason::kConnectionClose, conn->index());
  }
  // Last action: the connection may now be joined and destroyed by the
  // next AddConnection prune or by Shutdown.
  conn->MarkFinished();
}

bool AudioServer::HandleSetup(ClientConnection* conn, const FramedMessage& message) {
  ByteReader r(message.payload);
  SetupRequest request = SetupRequest::Decode(&r);

  SetupReply reply;
  if (message.header.code != kSetupOpcode || request.magic != kSetupMagic || !r.ok()) {
    reply.success = 0;
    reply.reason = "bad setup message";
  } else if (request.major != kProtocolMajor) {
    reply.success = 0;
    reply.reason = "protocol version mismatch";
  } else {
    reply.success = 1;
    MutexLock lock(&mu_);
    reply.id_base = ClientIdBaseFor(conn->index());
    reply.id_count = kClientIdBlockSize;
    reply.device_loud = state_.device_loud_root();
    reply.server_name = state_.server_name();
    conn->set_client_name(request.client_name);
  }

  ByteWriter w;
  reply.Encode(&w);
  conn->SendReply(kSetupOpcode, message.header.sequence, w.bytes());
  return reply.success != 0;
}

void AudioServer::StepFrames(int64_t frames) {
  while (frames > 0) {
    size_t step = std::min<int64_t>(frames, static_cast<int64_t>(options_.period_frames));
    // Tick manages the state lock itself (epoch open/commit).
    tick_state().Tick(step);
    frames -= static_cast<int64_t>(step);
  }
}

void AudioServer::StartRealtime() {
  if (engine_running_.exchange(true)) {
    return;
  }
  engine_thread_ = std::thread([this] { EngineLoop(); });
}

void AudioServer::StopRealtime() {
  if (!engine_running_.exchange(false)) {
    return;
  }
  if (engine_thread_.joinable()) {
    engine_thread_.join();
  }
}

void AudioServer::EngineLoop() {
  RealClock clock;
  Ticks period =
      SamplesToTicks(static_cast<int64_t>(options_.period_frames), board_->sample_rate_hz());
  Ticks next = clock.Now() + period;
  while (engine_running_.load() && !shutting_down_.load()) {
    // Tick manages the state lock itself; the fan-out runs without it, so
    // dispatch on untouched roots overlaps the engine freely.
    tick_state().Tick(options_.period_frames);
    clock.SleepUntil(next);
    // Wakeup lateness: how far past the deadline the engine resumed
    // (Ticks are microseconds). 0 when the tick finished inside the period.
    Ticks late = clock.Now() - next;
    metrics_->tick_jitter_us.Record(late > 0 ? static_cast<uint64_t>(late) : 0);
    next += period;
  }
}

void AudioServer::Shutdown() {
  if (shutting_down_.exchange(true)) {
    return;
  }
  StopRealtime();
  listener_.Close();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Swap the connections out under the lock, then join/destroy outside it
  // (the readers themselves take mu_ during teardown). No new connections
  // can appear: the accept thread has already been joined above.
  std::vector<std::unique_ptr<ClientConnection>> conns;
  {
    MutexLock lock(&mu_);
    for (auto& conn : connections_) {
      conn->HardClose();
    }
    conns.swap(connections_);
  }
  conns.clear();  // ~ClientConnection joins each reader + writer
}

}  // namespace aud
