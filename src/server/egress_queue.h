// Bounded, byte-budgeted outbound frame queue — the mechanism behind
// DESIGN.md decision 11 ("no socket I/O under mu_"). The dispatcher and
// engine enqueue replies/errors/events here without ever touching the
// transport; a per-connection writer thread drains the queue and performs
// the (possibly blocking) writes outside every server lock. A stalled
// client therefore backs up only its own queue, never the big lock.
//
// On overflow the queue applies an X-server-style policy: drop the oldest
// events (replies and errors are never dropped — the protocol is
// request/response and clients wait on them), or report overflow so the
// caller can disconnect the slow client. If the non-droppable backlog
// alone exceeds the budget the client is not reading replies at all, and
// the queue reports overflow regardless of policy.
//
// Lock rank: EgressQueue::mu_ is a leaf (rank 2 in DESIGN.md's inventory,
// below the big lock and the per-root engine locks; same tier as the old
// ClientConnection::write_mu_ it replaces). Pop copies one frame out under
// the lock; the actual transport write happens with no queue lock held.

#ifndef SRC_SERVER_EGRESS_QUEUE_H_
#define SRC_SERVER_EGRESS_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/obs.h"
#include "src/common/thread_annotations.h"
#include "src/transport/framer.h"

namespace aud {

enum class EgressOverflowPolicy : uint8_t {
  kDropEvents,  // shed oldest events first; disconnect only on reply backlog
  kDisconnect,  // any overflow disconnects the slow client
};

// One framed message, owned. `bytes` below means kHeaderSize + payload.
struct EgressFrame {
  MessageType type;
  uint16_t code = 0;
  uint32_t sequence = 0;
  std::vector<uint8_t> payload;
  // Request-trace propagation (DESIGN.md decision 13): when trace != 0 the
  // writer records a kSpanWrite span for this frame, parented on `parent`
  // (the enqueue-side kSpanEgress span's seq).
  uint64_t trace = 0;
  uint64_t parent = 0;
};

enum class EgressPushStatus : uint8_t {
  kQueued,    // frame accepted (possibly after shedding older events)
  kOverflow,  // budget exhausted by undroppable frames: disconnect client
  kClosed,    // queue already draining/closed; frame discarded
};

struct EgressPushResult {
  EgressPushStatus status;
  // Events shed to make room (includes the pushed frame itself when an
  // incoming event is dropped because even shedding could not fit it).
  uint32_t dropped_events = 0;
};

class EgressQueue {
 public:
  EgressQueue(size_t budget_bytes, EgressOverflowPolicy policy)
      : budget_bytes_(budget_bytes), policy_(policy) {}

  // Optional server-wide gauge mirroring this queue's backlog; adjusted on
  // every enqueue/dequeue/shed. Set before the first Push.
  void set_bytes_gauge(obs::Gauge* gauge) { bytes_gauge_ = gauge; }

  // Never blocks. Applies the overflow policy when the frame would push
  // the backlog past the byte budget.
  EgressPushResult Push(EgressFrame frame);

  // Blocks until a frame is available (true) or the queue is finished
  // (false): finished means closed, or draining with nothing left.
  bool Pop(EgressFrame* out);

  // Non-blocking Pop for the event-loop drain path: takes the next frame
  // if one is queued, returns false immediately otherwise (whether empty,
  // draining-and-empty, or closed).
  bool TryPop(EgressFrame* out);

  // True once CloseNow ran, or BeginDrain ran and the backlog is empty —
  // i.e. a drain-to-completion has nothing left to flush.
  bool finished_draining() const;

  // No further pushes; Pop hands out the remaining backlog then returns
  // false. Used on clean reader exit so a final reply/error still flushes.
  void BeginDrain();

  // Discard the backlog and wake the writer immediately (slow-client
  // disconnect, server shutdown).
  void CloseNow();

  // The writer loop announces its exit (last statement, every path), so a
  // drain can wait for the flush with a bound instead of an unbounded
  // join — a peer that stops reading mid-flush cannot pin the reader.
  void MarkWriterExited();
  bool WaitWriterExitedFor(std::chrono::milliseconds timeout);

  size_t queued_bytes() const;
  uint64_t dropped_events_total() const {
    return dropped_events_.load(std::memory_order_relaxed);
  }

 private:
  size_t budget_bytes_;
  EgressOverflowPolicy policy_;
  obs::Gauge* bytes_gauge_ = nullptr;

  mutable Mutex mu_{LockRank::kEgressQueue, "EgressQueue::mu_"};
  CondVar cv_;
  std::deque<EgressFrame> frames_ AUD_GUARDED_BY(mu_);
  size_t queued_bytes_ AUD_GUARDED_BY(mu_) = 0;
  bool draining_ AUD_GUARDED_BY(mu_) = false;
  bool closed_ AUD_GUARDED_BY(mu_) = false;
  bool writer_exited_ AUD_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> dropped_events_{0};
};

}  // namespace aud

#endif  // SRC_SERVER_EGRESS_QUEUE_H_
