#include "src/server/loud.h"

#include <algorithm>

#include "src/server/command_queue.h"
#include "src/server/server_state.h"

namespace aud {

Loud::Loud(ResourceId id, uint32_t owner, ServerState* server, Loud* parent, AttrList attrs)
    : ServerObject(id, ObjectKind::kLoud, owner),
      server_(server),
      parent_(parent),
      attrs_(std::move(attrs)) {
  if (parent_ == nullptr) {
    queue_ = std::make_unique<CommandQueue>(this);
  }
  // The epoch fan-out acquires island root locks at the same rank in
  // ascending id order; the order key is what the rank checker validates.
  engine_mu_.SetRankOrder(static_cast<uint64_t>(id));
}

Loud::~Loud() = default;

Loud* Loud::Root() {
  Loud* loud = this;
  while (loud->parent_ != nullptr) {
    loud = loud->parent_;
  }
  return loud;
}

CommandQueue* Loud::queue() { return Root()->queue_.get(); }

void Loud::RemoveChild(Loud* child) { std::erase(children_, child); }

void Loud::RemoveDevice(VirtualDevice* dev) { std::erase(devices_, dev); }

void Loud::CollectDevices(std::vector<VirtualDevice*>* out) const {
  out->insert(out->end(), devices_.begin(), devices_.end());
  for (const Loud* child : children_) {
    child->CollectDevices(out);
  }
}

void Loud::CollectLouds(std::vector<Loud*>* out) {
  out->push_back(this);
  for (Loud* child : children_) {
    child->CollectLouds(out);
  }
}

uint32_t Loud::MaskFor(uint32_t conn) const {
  auto it = event_masks_.find(conn);
  return it == event_masks_.end() ? 0 : it->second;
}

void Loud::NoteSyncProgress(int64_t position_samples, int64_t total_samples,
                            int64_t device_time) {
  if (sync_interval_ms_ == 0) {
    return;
  }
  int64_t interval_samples =
      static_cast<int64_t>(server_->engine_rate()) * sync_interval_ms_ / 1000;
  if (interval_samples <= 0) {
    return;
  }
  int64_t mark = position_samples / interval_samples;
  if (mark != last_sync_position_) {
    last_sync_position_ = mark;
    SyncMarkArgs args;
    args.position_samples = static_cast<uint64_t>(position_samples);
    args.device_time = device_time;
    args.total_samples = static_cast<uint64_t>(total_samples);
    server_->EmitEvent(Root(), EventType::kSyncMark, id(), args.Encode());
  }
}

}  // namespace aud
