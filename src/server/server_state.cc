#include "src/server/server_state.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/dsp/encoding.h"
#include "src/dsp/resampler.h"
#include "src/dsp/tone.h"

namespace aud {

namespace {

// Worker-thread routing for the tick fan-out: while an island runs on a
// pool worker, its output mixing is redirected here instead of touching
// shared state, and event emission is buffered (the fan-out holds no state
// lock, so the transport must not be written from it — the serial path
// buffers too). Null on dispatcher threads, which go straight through.
thread_local TickOutputs* tls_tick_outputs = nullptr;
thread_local std::vector<std::pair<uint32_t, EventMessage>>* tls_island_events = nullptr;

// Cascade teardown and server-side registration operate on ids the caller
// just enumerated from live registry state, so a failure means the registry
// is inconsistent with itself — worth a warning, never worth aborting the
// cascade half-way.
void WarnIfError(const Status& status, const char* what) {
  if (!status.ok()) {
    LogLine(LogLevel::kWarning) << what << ": " << status.ToString();
  }
}

// Holds the engine shard locks of every root LOUD in one island, in id
// order. Islands partition the active roots, so two concurrent island jobs
// never share a lock; the id order only matters against the dispatcher,
// which takes a single root lock after the state lock (the documented rank
// order: state lock -> root engine locks -> leaf locks). Opted out of the
// analysis: the lock set is computed at runtime.
class IslandRootLocks {
 public:
  explicit IslandRootLocks(const EngineIsland& island) AUD_NO_THREAD_SAFETY_ANALYSIS {
    roots_.assign(island.louds.begin(), island.louds.end());
    std::sort(roots_.begin(), roots_.end(),
              [](const Loud* a, const Loud* b) { return a->id() < b->id(); });
    for (Loud* root : roots_) {
      root->engine_mutex()->Lock();
    }
  }
  ~IslandRootLocks() AUD_NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = roots_.rbegin(); it != roots_.rend(); ++it) {
      (*it)->engine_mutex()->Unlock();
    }
  }

  IslandRootLocks(const IslandRootLocks&) = delete;
  IslandRootLocks& operator=(const IslandRootLocks&) = delete;

 private:
  std::vector<Loud*> roots_;
};

}  // namespace

namespace {

// Maps an event type to its selection-mask category (section 5.7's three
// categories, subdivided for finer control).
uint32_t CategoryFor(EventType type) {
  switch (type) {
    case EventType::kQueueStarted:
    case EventType::kQueueStopped:
    case EventType::kQueuePaused:
    case EventType::kQueueResumed:
    case EventType::kCommandDone:
      return kQueueEvents;
    case EventType::kMapNotify:
    case EventType::kUnmapNotify:
    case EventType::kActivateNotify:
    case EventType::kDeactivateNotify:
      return kLifecycleEvents;
    case EventType::kMapRequest:
    case EventType::kRestackRequest:
      return kRedirectEvents;
    case EventType::kTelephoneRing:
    case EventType::kTelephoneAnswered:
    case EventType::kTelephoneDialDone:
    case EventType::kCallProgress:
    case EventType::kDtmfReceived:
      return kTelephoneEvents;
    case EventType::kRecorderStarted:
    case EventType::kRecorderStopped:
      return kRecorderEvents;
    case EventType::kRecognition:
      return kRecognitionEvents;
    case EventType::kSyncMark:
      return kSyncEvents;
    case EventType::kPropertyNotify:
      return kPropertyEvents;
    case EventType::kEventTypeCount:
      break;
  }
  return 0;
}

}  // namespace

ServerState::ServerState(Board* board, std::string server_name)
    : board_(board), server_name_(std::move(server_name)) {
  BuildDeviceLoud();
  SeedCatalogue();
  // Route every phone line's events into the server.
  for (PhoneLineUnit* unit : board_->phone_lines()) {
    unit->SetEventSink(
        [this, unit](const ExchangeLine::Event& event) { OnPhoneEvent(unit, event); });
  }
  // Every output-capable physical device gets a (lazily sized) accumulator.
}

ServerState::~ServerState() = default;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Status ServerState::Register(std::unique_ptr<ServerObject> object) {
  ResourceId id = object->id();
  if (id == kNoResource || objects_.count(id) != 0) {
    return Status(ErrorCode::kBadIdChoice, "resource id in use");
  }
  objects_[id] = std::move(object);
  return Status::Ok();
}

ServerObject* ServerState::Find(ResourceId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second.get();
}

Loud* ServerState::FindLoud(ResourceId id) {
  ServerObject* obj = Find(id);
  return obj != nullptr && obj->kind() == ObjectKind::kLoud ? static_cast<Loud*>(obj) : nullptr;
}

VirtualDevice* ServerState::FindDevice(ResourceId id) {
  ServerObject* obj = Find(id);
  return obj != nullptr && obj->kind() == ObjectKind::kVirtualDevice
             ? static_cast<VirtualDevice*>(obj)
             : nullptr;
}

WireObject* ServerState::FindWire(ResourceId id) {
  ServerObject* obj = Find(id);
  return obj != nullptr && obj->kind() == ObjectKind::kWire ? static_cast<WireObject*>(obj)
                                                            : nullptr;
}

SoundObject* ServerState::FindSound(ResourceId id) {
  ServerObject* obj = Find(id);
  return obj != nullptr && obj->kind() == ObjectKind::kSound ? static_cast<SoundObject*>(obj)
                                                             : nullptr;
}

Status ServerState::Destroy(ResourceId id) {
  ServerObject* obj = Find(id);
  if (obj == nullptr) {
    return Status(ErrorCode::kBadResource, "destroy: no such resource");
  }
  switch (obj->kind()) {
    case ObjectKind::kLoud: {
      Loud* loud = static_cast<Loud*>(obj);
      if (loud->IsRoot() && loud->mapped()) {
        WarnIfError(UnmapLoud(loud), "destroy: unmap of root loud");
      }
      // Children and devices first (copy lists: destruction mutates them).
      std::vector<Loud*> children = loud->children();
      for (Loud* child : children) {
        WarnIfError(Destroy(child->id()), "destroy: child loud cascade");
      }
      std::vector<VirtualDevice*> devices = loud->devices();
      for (VirtualDevice* dev : devices) {
        WarnIfError(Destroy(dev->id()), "destroy: device cascade");
      }
      if (loud->parent() != nullptr) {
        loud->parent()->RemoveChild(loud);
      }
      break;
    }
    case ObjectKind::kVirtualDevice: {
      VirtualDevice* dev = static_cast<VirtualDevice*>(obj);
      // Destroy attached wires. Collect ids first and deduplicate: a
      // self-wire appears in both the source and sink lists.
      std::set<ResourceId> wire_ids;
      for (WireObject* wire : dev->source_wires()) {
        wire_ids.insert(wire->id());
      }
      for (WireObject* wire : dev->sink_wires()) {
        wire_ids.insert(wire->id());
      }
      for (ResourceId wire_id : wire_ids) {
        WarnIfError(Destroy(wire_id), "destroy: wire cascade");
      }
      if (dev->active()) {
        dev->AbortCommand();
        // A dying owner must not leave the phone line off-hook (the
        // paper's answering-machine crash case): hang up before the line
        // unit is released back to the exchange.
        if (auto* telephone = dynamic_cast<TelephoneDevice*>(dev);
            telephone != nullptr && telephone->line_unit() != nullptr &&
            telephone->line_unit()->line_state() != LineState::kOnHook) {
          telephone->line_unit()->HangUp();
        }
        dev->Unbind();
      }
      // The root queue's program may still reference this device (a child
      // LOUD can be destroyed before its root on connection teardown);
      // drop those references before the pointer dangles.
      dev->loud()->queue()->ForgetDevice(dev);
      dev->loud()->RemoveDevice(dev);
      break;
    }
    case ObjectKind::kWire: {
      WireObject* wire = static_cast<WireObject*>(obj);
      wire->src()->DetachWire(wire);
      wire->dst()->DetachWire(wire);
      break;
    }
    case ObjectKind::kSound:
      decoded_cache_.EraseSound(id);
      metrics_.decoded_cache_bytes.Set(static_cast<int64_t>(decoded_cache_.bytes()));
      break;
  }
  objects_.erase(id);
  return Status::Ok();
}

void ServerState::DestroyConnectionObjects(uint32_t conn) {
  // A dying owner must not leave a phone line off-hook (the paper's
  // answering-machine crash case). Hang up every line the connection's
  // telephone devices still hold before the teardown below unbinds them —
  // Destroy on a mapped root runs UnmapLoud first, which clears the
  // device/line binding and would lose the line pointer.
  for (const auto& [id, obj] : objects_) {
    if (obj->owner() != conn || obj->kind() != ObjectKind::kVirtualDevice) {
      continue;
    }
    if (auto* telephone = dynamic_cast<TelephoneDevice*>(obj.get());
        telephone != nullptr && telephone->line_unit() != nullptr &&
        telephone->line_unit()->line_state() != LineState::kOnHook) {
      telephone->line_unit()->HangUp();
    }
  }
  // Louds first (they cascade), then stray devices/wires/sounds.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<ResourceId> ids;
    for (const auto& [id, obj] : objects_) {
      if (obj->owner() != conn) {
        continue;
      }
      bool is_loud = obj->kind() == ObjectKind::kLoud;
      if ((pass == 0) == is_loud) {
        ids.push_back(id);
      }
    }
    for (ResourceId id : ids) {
      if (Find(id) != nullptr) {
        WarnIfError(Destroy(id), "owner death: cascade");
      }
    }
  }
  // Drop event selections the connection held on surviving objects (the
  // device LOUD tree).
  for (auto& [id, obj] : objects_) {
    if (obj->kind() == ObjectKind::kLoud) {
      static_cast<Loud*>(obj.get())->event_masks().erase(conn);
    }
  }
  if (redirect_conn_ == conn) {
    redirect_conn_.reset();
  }
}

// ---------------------------------------------------------------------------
// Device LOUD
// ---------------------------------------------------------------------------

void ServerState::BuildDeviceLoud() {
  auto root = std::make_unique<Loud>(next_server_id_++, kServerOwner, this, nullptr, AttrList{});
  device_loud_root_ = root->id();
  Loud* root_ptr = root.get();
  WarnIfError(Register(std::move(root)), "device loud: register root");

  for (PhysicalDevice* device : board_->devices()) {
    auto entry = std::make_unique<Loud>(next_server_id_++, kServerOwner, this, root_ptr,
                                        device->Attributes());
    root_ptr->AddChild(entry.get());
    device_loud_entries_[entry->id()] = device;
    physical_ids_[device] = entry->id();
    WarnIfError(Register(std::move(entry)), "device loud: register entry");
  }
}

PhysicalDevice* ServerState::PhysicalForId(ResourceId id) {
  auto it = device_loud_entries_.find(id);
  return it == device_loud_entries_.end() ? nullptr : it->second;
}

ResourceId ServerState::IdForPhysical(PhysicalDevice* device) {
  auto it = physical_ids_.find(device);
  return it == physical_ids_.end() ? kNoResource : it->second;
}

DeviceLoudReply ServerState::DescribeDeviceLoud() {
  DeviceLoudReply reply;
  reply.root = device_loud_root_;
  for (const auto& [id, device] : device_loud_entries_) {
    DeviceInfo info;
    info.id = id;
    info.parent = device_loud_root_;
    info.device_class = device->device_class();
    info.attrs = device->Attributes();
    reply.devices.push_back(std::move(info));
  }
  // Permanent physical connections appear as wires of the device LOUD
  // (section 5.2: "the existence of a wire between two virtual devices [in
  // the device LOUD] indicates a permanent connection").
  for (const auto& [src, dst] : board_->hard_wires()) {
    WireInfo wire;
    wire.id = kNoResource;  // hard wires are not client-destroyable objects
    wire.src_device = IdForPhysical(src);
    wire.dst_device = IdForPhysical(dst);
    wire.format = {Encoding::kMulaw8, src->sample_rate_hz()};
    reply.hard_wires.push_back(wire);
  }
  return reply;
}

bool ServerState::HardWireCompatible(PhysicalDevice* a, PhysicalDevice* b) {
  auto check = [this](PhysicalDevice* from, PhysicalDevice* to) {
    auto partners = board_->HardWirePartners(from);
    if (partners.empty()) {
      return true;  // not part of a hard-wired group: wire anywhere
    }
    return std::find(partners.begin(), partners.end(), to) != partners.end();
  };
  return check(a, b) && check(b, a);
}

// ---------------------------------------------------------------------------
// Active stack & activation
// ---------------------------------------------------------------------------

Status ServerState::MapLoud(Loud* loud) {
  if (!loud->IsRoot()) {
    return Status(ErrorCode::kBadValue, "only root LOUDs are mapped");
  }
  if (loud->mapped()) {
    return Status::Ok();
  }
  loud->set_mapped(true);
  active_stack_.insert(active_stack_.begin(), loud);  // mapped on top
  EmitEvent(loud, EventType::kMapNotify, loud->id(), {});
  RecomputeActivation();
  return Status::Ok();
}

Status ServerState::UnmapLoud(Loud* loud) {
  if (!loud->mapped()) {
    return Status::Ok();
  }
  loud->set_mapped(false);
  std::erase(active_stack_, loud);
  if (loud->active()) {
    Deactivate(loud);
  }
  EmitEvent(loud, EventType::kUnmapNotify, loud->id(), {});
  RecomputeActivation();
  return Status::Ok();
}

Status ServerState::RaiseLoud(Loud* loud) {
  auto it = std::find(active_stack_.begin(), active_stack_.end(), loud);
  if (it == active_stack_.end()) {
    return Status(ErrorCode::kBadState, "raise: LOUD not mapped");
  }
  active_stack_.erase(it);
  active_stack_.insert(active_stack_.begin(), loud);
  RecomputeActivation();
  return Status::Ok();
}

Status ServerState::LowerLoud(Loud* loud) {
  auto it = std::find(active_stack_.begin(), active_stack_.end(), loud);
  if (it == active_stack_.end()) {
    return Status(ErrorCode::kBadState, "lower: LOUD not mapped");
  }
  active_stack_.erase(it);
  active_stack_.push_back(loud);
  RecomputeActivation();
  return Status::Ok();
}

PhysicalDevice* ServerState::MatchPhysical(const VirtualDevice& vdev,
                                           const std::set<PhysicalDevice*>& claimed_phones) {
  const AttrList& want = vdev.attrs();
  for (PhysicalDevice* device : board_->devices()) {
    // Class compatibility.
    if (device->device_class() != vdev.device_class()) {
      continue;
    }
    if (vdev.device_class() == DeviceClass::kTelephone && claimed_phones.count(device) != 0) {
      continue;
    }
    if (auto id = want.GetU32(AttrTag::kDeviceId)) {
      if (IdForPhysical(device) != *id) {
        continue;
      }
    }
    if (auto name = want.GetString(AttrTag::kName)) {
      if (device->name() != *name) {
        continue;
      }
    }
    if (auto domain = want.GetU32(AttrTag::kAmbientDomain)) {
      if (device->ambient_domain() != *domain) {
        continue;
      }
    }
    if (auto rate = want.GetU32(AttrTag::kSampleRate)) {
      if (device->sample_rate_hz() != *rate) {
        continue;
      }
    }
    if (auto position = want.GetString(AttrTag::kPosition)) {
      auto attrs = device->Attributes();
      if (attrs.GetString(AttrTag::kPosition).value_or("") != *position) {
        continue;
      }
    }
    if (auto number = want.GetString(AttrTag::kPhoneNumber)) {
      auto attrs = device->Attributes();
      if (attrs.GetString(AttrTag::kPhoneNumber).value_or("") != *number) {
        continue;
      }
    }
    return device;
  }
  return nullptr;
}

bool ServerState::TryActivate(Loud* loud, const std::set<uint32_t>& exclusive_in,
                              const std::set<uint32_t>& exclusive_out,
                              const std::set<PhysicalDevice*>& claimed_phones,
                              std::vector<std::pair<VirtualDevice*, PhysicalDevice*>>* bindings) {
  std::vector<VirtualDevice*> devices;
  loud->CollectDevices(&devices);
  for (VirtualDevice* vdev : devices) {
    if (!vdev->NeedsPhysicalDevice()) {
      bindings->push_back({vdev, nullptr});
      continue;
    }
    PhysicalDevice* match = MatchPhysical(*vdev, claimed_phones);
    if (match == nullptr) {
      return false;
    }
    // Exclusive-domain preemption (section 5.8): a higher LOUD holding
    // exclusive input/output in this ambient domain blocks us.
    if (vdev->device_class() == DeviceClass::kInput &&
        exclusive_in.count(match->ambient_domain()) != 0) {
      return false;
    }
    if (vdev->device_class() == DeviceClass::kOutput &&
        exclusive_out.count(match->ambient_domain()) != 0) {
      return false;
    }
    bindings->push_back({vdev, match});
  }
  return true;
}

void ServerState::Activate(Loud* loud,
                           const std::vector<std::pair<VirtualDevice*, PhysicalDevice*>>& bindings) {
  for (const auto& [vdev, device] : bindings) {
    if (device != nullptr) {
      vdev->Bind(device, IdForPhysical(device));
    }
    vdev->set_active(true);
  }
  std::vector<Loud*> louds;
  loud->CollectLouds(&louds);
  for (Loud* entry : louds) {
    entry->set_active(true);
  }
  EmitEvent(loud, EventType::kActivateNotify, loud->id(), {});
  loud->queue()->ServerResume(nullptr);
}

void ServerState::Deactivate(Loud* loud) {
  loud->queue()->ServerPause(nullptr);
  std::vector<VirtualDevice*> devices;
  loud->CollectDevices(&devices);
  for (VirtualDevice* vdev : devices) {
    if (vdev->bound_device() != nullptr) {
      vdev->Unbind();
    }
    vdev->set_active(false);
  }
  std::vector<Loud*> louds;
  loud->CollectLouds(&louds);
  for (Loud* entry : louds) {
    entry->set_active(false);
  }
  EmitEvent(loud, EventType::kDeactivateNotify, loud->id(), {});
}

void ServerState::RecomputeActivation() {
  std::set<uint32_t> exclusive_in;
  std::set<uint32_t> exclusive_out;
  std::set<PhysicalDevice*> claimed_phones;

  for (Loud* loud : active_stack_) {
    std::vector<std::pair<VirtualDevice*, PhysicalDevice*>> bindings;
    bool can = TryActivate(loud, exclusive_in, exclusive_out, claimed_phones, &bindings);
    if (can) {
      if (!loud->active()) {
        Activate(loud, bindings);
      }
      // Record this LOUD's claims for everything below it.
      for (const auto& [vdev, device] : bindings) {
        if (device == nullptr) {
          continue;
        }
        if (device->device_class() == DeviceClass::kTelephone) {
          claimed_phones.insert(device);
        }
        if (vdev->attrs().GetBool(AttrTag::kExclusiveInput)) {
          exclusive_in.insert(device->ambient_domain());
        }
        if (vdev->attrs().GetBool(AttrTag::kExclusiveOutput)) {
          exclusive_out.insert(device->ambient_domain());
        }
      }
    } else if (loud->active()) {
      Deactivate(loud);
    }
  }
}

// ---------------------------------------------------------------------------
// Engine tick
// ---------------------------------------------------------------------------

void ServerState::ConfigureEngine(int threads) {
  engine_threads_ = threads < 1 ? 1 : threads;
  if (engine_threads_ > 1) {
    engine_pool_ = std::make_unique<EnginePool>(engine_threads_);
    worker_outputs_.resize(static_cast<size_t>(engine_pool_->worker_slots()));
  } else {
    engine_pool_.reset();
    worker_outputs_.clear();
  }
}

void ServerState::AccumulateOutput(PhysicalDevice* device, std::span<const Sample> samples,
                                   int32_t gain) {
  if (tls_tick_outputs != nullptr) {
    tls_tick_outputs->Accumulate(device, samples, gain);
    return;
  }
  auto it = output_acc_.find(device);
  if (it == output_acc_.end()) {
    it = output_acc_.emplace(device, MixAccumulator(current_tick_frames_)).first;
  }
  it->second.Accumulate(samples, gain);
}

void ServerState::PrepareOutputAccumulator(PhysicalDevice* device, size_t frames) {
  MixAccumulator& acc = output_acc_[device];
  if (acc.size() != frames) {
    acc.Reset(frames);  // re-sizes in place (period change / first tick)
  } else {
    acc.Clear();
  }
}

const std::vector<EngineIsland>& ServerState::PartitionIslands() {
  partition_louds_.clear();
  partition_index_.clear();
  for (Loud* loud : active_stack_) {
    if (loud->active()) {
      partition_index_[loud] = static_cast<int>(partition_louds_.size());
      partition_louds_.push_back(loud);
    }
  }
  int n = static_cast<int>(partition_louds_.size());
  partition_parent_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    partition_parent_[static_cast<size_t>(i)] = i;
  }
  auto find = [this](int x) {
    while (partition_parent_[static_cast<size_t>(x)] != x) {
      partition_parent_[static_cast<size_t>(x)] =
          partition_parent_[static_cast<size_t>(partition_parent_[static_cast<size_t>(x)])];
      x = partition_parent_[static_cast<size_t>(x)];
    }
    return x;
  };
  // Union keeps the lower (higher-in-stack) index as representative, so
  // island numbering follows the active stack.
  auto unite = [this, &find](int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) {
      partition_parent_[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
    }
  };

  partition_phys_.clear();
  partition_sound_rep_.clear();
  int exchange_rep = -1;    // all telephone users share the exchange
  int vocabulary_rep = -1;  // all recognizers share the vocabulary store

  for (int i = 0; i < n; ++i) {
    Loud* loud = partition_louds_[static_cast<size_t>(i)];
    partition_sounds_.clear();
    loud->queue()->CollectSoundIds(&partition_sounds_);

    partition_devices_.clear();
    loud->CollectDevices(&partition_devices_);
    for (VirtualDevice* dev : partition_devices_) {
      // Wires merge the two endpoint LOUD trees.
      for (WireObject* wire : dev->source_wires()) {
        auto it = partition_index_.find(wire->dst()->loud()->Root());
        if (it != partition_index_.end()) {
          unite(i, it->second);
        }
      }
      for (WireObject* wire : dev->sink_wires()) {
        auto it = partition_index_.find(wire->src()->loud()->Root());
        if (it != partition_index_.end()) {
          unite(i, it->second);
        }
      }
      // Non-speaker hardware is read destructively (microphone/phone-line
      // capture rings), so sharing one merges. Speakers are written only
      // through the commutative output accumulators and stay parallel.
      PhysicalDevice* bound = dev->bound_device();
      if (bound != nullptr && dynamic_cast<SpeakerUnit*>(bound) == nullptr) {
        auto [it, inserted] = partition_phys_.try_emplace(bound, i);
        if (!inserted) {
          unite(i, it->second);
        }
      }
      // Telephone commands (Dial/Answer/SendDTMF) mutate the shared
      // exchange; recognizer commands can touch the shared vocabulary
      // store (SaveVocabulary) and Train reads sounds (collected below).
      if (dev->device_class() == DeviceClass::kTelephone) {
        if (exchange_rep < 0) {
          exchange_rep = i;
        } else {
          unite(i, exchange_rep);
        }
      }
      if (dev->device_class() == DeviceClass::kSpeechRecognizer) {
        if (vocabulary_rep < 0) {
          vocabulary_rep = i;
        } else {
          unite(i, vocabulary_rep);
        }
      }
      dev->CollectTickSounds(&partition_sounds_);
    }

    for (ResourceId sound : partition_sounds_) {
      if (sound == kNoResource) {
        continue;
      }
      auto [it, inserted] = partition_sound_rep_.try_emplace(sound, i);
      if (!inserted) {
        unite(i, it->second);
      }
    }
  }

  // Materialize islands in stack order of their representatives.
  for (EngineIsland& island : islands_) {
    island.louds.clear();
    island.devices.clear();
  }
  size_t used = 0;
  // parent_ reused as rep -> island index map (reps are self-parented).
  std::vector<int>& island_of = partition_parent_;
  std::vector<int>& reps = partition_reps_;
  reps.clear();
  for (int i = 0; i < n; ++i) {
    reps.push_back(find(i));
  }
  for (int i = 0; i < n; ++i) {
    int rep = reps[static_cast<size_t>(i)];
    if (rep == i) {
      if (islands_.size() <= used) {
        islands_.emplace_back();
      }
      island_of[static_cast<size_t>(i)] = static_cast<int>(used);
      ++used;
    }
  }
  islands_.resize(used);
  for (int i = 0; i < n; ++i) {
    EngineIsland& island = islands_[static_cast<size_t>(
        island_of[static_cast<size_t>(reps[static_cast<size_t>(i)])])];
    Loud* loud = partition_louds_[static_cast<size_t>(i)];
    island.louds.push_back(loud);
    loud->CollectDevices(&island.devices);
  }
  return islands_;
}

void ServerState::RunIslandPhases(const EngineIsland& island, EngineTick* tick, size_t frames) {
  // 1. Command queues: players/synths produce, commands advance (gapless
  //    transitions happen inside this call).
  for (Loud* loud : island.louds) {
    loud->queue()->Tick(tick, frames);
    if (loud->queue()->state() == QueueState::kStarted) {
      loud->CountFramesProduced(frames);
    }
  }

  // 2. Free-running sources: inputs and telephones stream regardless of
  //    queue state.
  for (VirtualDevice* dev : island.devices) {
    if (dev->device_class() == DeviceClass::kInput ||
        dev->device_class() == DeviceClass::kTelephone) {
      dev->Produce(tick, frames);
      dev->loud()->CountFramesProduced(frames);
    }
  }

  // 3. Transforms, in creation order (covers transform chains built in
  //    order).
  for (VirtualDevice* dev : island.devices) {
    switch (dev->device_class()) {
      case DeviceClass::kMixer:
      case DeviceClass::kCrossbar:
      case DeviceClass::kDsp:
        dev->Produce(tick, frames);
        dev->loud()->CountFramesProduced(frames);
        break;
      default:
        break;
    }
  }

  // 4. Sinks.
  for (VirtualDevice* dev : island.devices) {
    switch (dev->device_class()) {
      case DeviceClass::kOutput:
      case DeviceClass::kRecorder:
      case DeviceClass::kTelephone:
      case DeviceClass::kSpeechRecognizer:
        dev->Consume(tick);
        dev->loud()->CountFramesConsumed(frames);
        break;
      default:
        break;
    }
  }
}

void ServerState::WaitEngineIdle() {
  if (state_mu_ == nullptr || !epoch_in_flight_) {
    return;
  }
  ++drain_waiters_;
  while (epoch_in_flight_) {
    epoch_cv_.Wait(*state_mu_);
  }
  --drain_waiters_;
  if (drain_waiters_ == 0) {
    epoch_cv_.NotifyAll();  // a deferred epoch open may now proceed
  }
}

bool ServerState::EpochOpen(size_t frames) {
  if (state_mu_ != nullptr) {
    state_mu_->Lock();
    // Two rules keep the boundary fair and exclusive: a second tick driver
    // waits out the in-flight epoch (epochs never overlap), and structural
    // mutators already queued behind the previous epoch go first — a
    // back-to-back tick storm must not starve create/destroy/activation.
    while (epoch_in_flight_ || drain_waiters_ > 0) {
      epoch_cv_.Wait(*state_mu_);
    }
  }
  in_tick_ = true;
  current_tick_frames_ = frames;
  obs::Trace(obs::TraceReason::kTickStart, static_cast<uint32_t>(frames));

  // Prepare output accumulators (one per output-capable physical device,
  // reused across ticks).
  for (SpeakerUnit* speaker : board_->speakers()) {
    PrepareOutputAccumulator(speaker, frames);
  }
  for (PhoneLineUnit* phone : board_->phone_lines()) {
    PrepareOutputAccumulator(phone, frames);
  }

  bool parallel = false;
  if (engine_pool_ != nullptr) {
    PartitionIslands();
    metrics_.islands_per_tick.Record(islands_.size());
    parallel = islands_.size() > 1;
  }
  if (parallel) {
    if (island_events_.size() < islands_.size()) {
      island_events_.resize(islands_.size());
    }
    for (size_t i = 0; i < islands_.size(); ++i) {
      island_events_[i].clear();
    }
    for (TickOutputs& outputs : worker_outputs_) {
      outputs.BeginTick(frames);
    }
  } else {
    // The whole active graph as one pseudo-island, in stack order — the
    // phase structure is byte-for-byte the pre-parallel engine.
    serial_island_.louds.clear();
    serial_island_.devices.clear();
    for (Loud* loud : active_stack_) {
      if (loud->active()) {
        serial_island_.louds.push_back(loud);
        loud->CollectDevices(&serial_island_.devices);
      }
    }
  }
  serial_events_.clear();
  epoch_in_flight_ = true;
  if (state_mu_ != nullptr) {
    state_mu_->Unlock();
  }
  return parallel;
}

void ServerState::EpochFanOut(EngineTick* tick, size_t frames, bool parallel) {
  if (!parallel) {
    // One pseudo-island on the tick thread, under its roots' shard locks.
    // Events still buffer: with the state lock dropped, the connection list
    // must not be walked from here.
    IslandRootLocks locks(serial_island_);
    tls_island_events = &serial_events_;
    RunIslandPhases(serial_island_, tick, frames);
    tls_island_events = nullptr;
    return;
  }
  engine_pool_->Run(islands_.size(), [&](size_t job, int worker) {
    obs::Trace(obs::TraceReason::kIslandRun, static_cast<uint32_t>(job),
               static_cast<uint32_t>(islands_[job].devices.size()));
    EngineTick island_tick{this, frames, tick->start_frame};
    IslandRootLocks locks(islands_[job]);
    tls_tick_outputs = &worker_outputs_[static_cast<size_t>(worker)];
    tls_island_events = &island_events_[job];
    RunIslandPhases(islands_[job], &island_tick, frames);
    tls_tick_outputs = nullptr;
    tls_island_events = nullptr;
  });
}

void ServerState::EpochCommit(size_t frames, bool parallel) {
  const auto commit_t0 = std::chrono::steady_clock::now();
  if (state_mu_ != nullptr) {
    state_mu_->Lock();
  }

  if (parallel) {
    // Worker imbalance: spread between the busiest and idlest worker slot
    // in islands run this tick (0 = perfectly even).
    const std::vector<uint32_t>& jobs = engine_pool_->last_run_jobs();
    if (!jobs.empty()) {
      auto [lo, hi] = std::minmax_element(jobs.begin(), jobs.end());
      metrics_.worker_imbalance.Record(*hi - *lo);
    }

    // Merge per-worker partial mixes into the global accumulators. The
    // integer sums commute, so worker order cannot change the result; the
    // serial path would have produced the identical totals.
    for (TickOutputs& outputs : worker_outputs_) {
      for (PhysicalDevice* device : outputs.touched()) {
        auto it = output_acc_.find(device);
        if (it == output_acc_.end()) {
          it = output_acc_.emplace(device, MixAccumulator(frames)).first;
        }
        it->second.AddFrom(outputs.accumulator(device));
      }
    }
  }

  // Flush deferred events in island (stack) order; the serial fan-out
  // buffered into one pseudo-island. Emission order within an island is
  // preserved, so the client-visible sequence matches the pre-epoch engine.
  if (event_sender_) {
    uint32_t flushed = 0;
    if (parallel) {
      for (size_t i = 0; i < islands_.size(); ++i) {
        for (const auto& [conn, event] : island_events_[i]) {
          event_sender_(conn, event);
          ++flushed;
        }
      }
    } else {
      for (const auto& [conn, event] : serial_events_) {
        event_sender_(conn, event);
        ++flushed;
      }
    }
    if (flushed > 0) {
      obs::Trace(obs::TraceReason::kEventFlush, flushed);
    }
  }

  // Resolve the transparent mixers into the codecs. The server keeps every
  // output codec fed (silence when idle) so the device clock runs
  // continuously.
  resolved_.resize(frames);
  for (auto& [device, acc] : output_acc_) {
    acc.Resolve(resolved_);
    if (auto* speaker = dynamic_cast<SpeakerUnit*>(device)) {
      speaker->codec().WritePlayback(resolved_);
    } else if (auto* phone = dynamic_cast<PhoneLineUnit*>(device)) {
      phone->tx_codec().WritePlayback(resolved_);
    }
  }

  // Hardware time advances; phone/exchange events fire here (delivered
  // directly — the state lock is held).
  board_->Advance(frames);

  engine_frame_.fetch_add(static_cast<int64_t>(frames), std::memory_order_relaxed);
  ++ticks_run_;

  // Mouth-to-ear: traced plays whose first possible mix epoch has now
  // committed. Record the accept->mix latency and close the loop in the
  // trace: kSpanEpoch marks the epoch that mixed, kMouthToEar spans the
  // whole accept->mix interval (both parented on the request's root span).
  if (!m2e_pending_.empty()) {
    auto& tracer = obs::TraceRegistry::Instance();
    const int64_t now_us = tracer.NowUs();
    for (auto it = m2e_pending_.begin(); it != m2e_pending_.end();) {
      if (it->required_epoch > ticks_run_) {
        ++it;
        continue;
      }
      const uint64_t latency_us =
          now_us > it->t_accept_us ? static_cast<uint64_t>(now_us - it->t_accept_us) : 0;
      metrics_.mouth_to_ear_us.Record(latency_us);
      tracer.Span(obs::TraceReason::kSpanEpoch, it->trace, it->root_seq, now_us, 0,
                  static_cast<uint32_t>(ticks_run_));
      tracer.Span(obs::TraceReason::kMouthToEar, it->trace, it->root_seq, it->t_accept_us,
                  static_cast<uint32_t>(latency_us), static_cast<uint32_t>(latency_us));
      metrics_.trace_spans.Increment(2);
      it = m2e_pending_.erase(it);
    }
  }

  // Publish the epoch boundary: wake structural mutators queued on it and
  // account the commit critical section.
  in_tick_ = false;
  epoch_in_flight_ = false;
  epoch_cv_.NotifyAll();
  metrics_.epoch_commits.Increment();
  metrics_.epoch_commit_us.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - commit_t0)
          .count()));
  if (state_mu_ != nullptr) {
    state_mu_->Unlock();
  }
}

void ServerState::Tick(size_t frames) {
  const auto tick_t0 = std::chrono::steady_clock::now();

  // Epoch open: snapshot the island partition under the state lock.
  const bool parallel = EpochOpen(frames);
  const size_t islands_ticked = parallel ? islands_.size() : 1;
  EngineTick tick{this, frames, engine_frame()};

  // Phases 1-4: queues, sources, transforms, sinks — with the state lock
  // dropped, island-parallel when an engine pool is configured.
  EpochFanOut(&tick, frames, parallel);

  // Phases 5-6 + publication, in the commit critical section.
  EpochCommit(frames, parallel);

  const uint64_t tick_dur_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - tick_t0)
          .count());
  metrics_.tick_us.Record(tick_dur_us);
  const uint64_t period_us =
      static_cast<uint64_t>(frames) * 1'000'000 / engine_rate();
  if (tick_dur_us > period_us) {
    // The tick body took longer than the audio it produced: in realtime
    // mode the codec would have underrun.
    metrics_.tick_overruns.Increment();
    obs::Trace(obs::TraceReason::kTickOverrun, static_cast<uint32_t>(tick_dur_us),
               static_cast<uint32_t>(period_us));
  }
  obs::Trace(obs::TraceReason::kTickEnd, static_cast<uint32_t>(tick_dur_us),
             static_cast<uint32_t>(islands_ticked));
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

void ServerState::DeliverEvent(uint32_t conn, const EventMessage& event) {
  // Workers running a parallel-tick island buffer deliveries; the tick
  // thread flushes them in island order after the join (the transport is
  // not safe to write from two workers at once).
  if (tls_island_events != nullptr) {
    tls_island_events->emplace_back(conn, event);
    return;
  }
  event_sender_(conn, event);
}

void ServerState::EmitEvent(Loud* loud, EventType type, ResourceId resource,
                            std::vector<uint8_t> args) {
  if (!event_sender_) {
    return;
  }
  uint32_t category = CategoryFor(type);
  if (category == kQueueEvents) {
    metrics_.queue_events.Increment();
  }
  EventMessage event;
  event.type = type;
  event.resource = resource;
  event.server_time = server_time();
  event.args = std::move(args);
  for (const auto& [conn, mask] : loud->event_masks()) {
    if ((mask & category) != 0) {
      DeliverEvent(conn, event);
    }
  }
}

void ServerState::EmitDeviceLoudEvent(ResourceId device_loud_id, EventType type,
                                      std::vector<uint8_t> args) {
  Loud* entry = FindLoud(device_loud_id);
  if (entry == nullptr) {
    return;
  }
  EventMessage event;
  event.type = type;
  event.resource = device_loud_id;
  event.server_time = server_time();
  event.args = std::move(args);
  uint32_t category = CategoryFor(type);
  for (const auto& [conn, mask] : entry->event_masks()) {
    if ((mask & category) != 0 && event_sender_) {
      DeliverEvent(conn, event);
    }
  }
}

void ServerState::OnPhoneEvent(PhoneLineUnit* unit, const ExchangeLine::Event& event) {
  // Forward to the bound telephone virtual device, if any.
  auto it = telephone_bindings_.find(unit);
  if (it != telephone_bindings_.end() && it->second != nullptr) {
    it->second->OnLineEvent(event, nullptr);
  }

  // Deliver to device-LOUD monitors (the unmapped answering machine
  // watching for rings, section 5.9).
  ResourceId device_id = IdForPhysical(unit);
  if (device_id == kNoResource) {
    return;
  }
  switch (event.type) {
    case ExchangeLine::Event::Type::kRing: {
      TelephoneRingArgs args;
      args.caller_id = event.caller_id;
      args.line = 0;
      EmitDeviceLoudEvent(device_id, EventType::kTelephoneRing, args.Encode());
      break;
    }
    case ExchangeLine::Event::Type::kAnswered:
      EmitDeviceLoudEvent(device_id, EventType::kTelephoneAnswered, {});
      break;
    case ExchangeLine::Event::Type::kProgress: {
      CallProgressArgs args;
      args.state = event.state;
      EmitDeviceLoudEvent(device_id, EventType::kCallProgress, args.Encode());
      break;
    }
    case ExchangeLine::Event::Type::kDtmf: {
      DtmfReceivedArgs args;
      args.digit = event.digit;
      EmitDeviceLoudEvent(device_id, EventType::kDtmfReceived, args.Encode());
      break;
    }
  }
}

void ServerState::BindTelephone(PhoneLineUnit* unit, TelephoneDevice* device) {
  telephone_bindings_[unit] = device;
}

void ServerState::UnbindTelephone(PhoneLineUnit* unit, TelephoneDevice* device) {
  auto it = telephone_bindings_.find(unit);
  if (it != telephone_bindings_.end() && it->second == device) {
    telephone_bindings_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Catalogue
// ---------------------------------------------------------------------------

void ServerState::SeedCatalogue() {
  uint32_t rate = engine_rate();
  // The answering machine's "beep".
  {
    std::vector<Sample> beep = MakeBeep(rate, 250, 1000.0, 0.5);
    StreamEncoder encoder(Encoding::kMulaw8);
    CatalogueSound sound;
    sound.format = {Encoding::kMulaw8, rate};
    encoder.Encode(beep, &sound.data);
    catalogue_["beep"] = std::move(sound);
  }
  // A gentle alert tone (two short 440 Hz bursts).
  {
    std::vector<Sample> tone = MakeBeep(rate, 120, 440.0, 0.4);
    std::vector<Sample> alert = tone;
    alert.insert(alert.end(), rate / 20, 0);
    alert.insert(alert.end(), tone.begin(), tone.end());
    StreamEncoder encoder(Encoding::kMulaw8);
    CatalogueSound sound;
    sound.format = {Encoding::kMulaw8, rate};
    encoder.Encode(alert, &sound.data);
    catalogue_["alert"] = std::move(sound);
  }
  // A long spoken-prompt stand-in: ~2 s of varied tones stored as 4-bit
  // ADPCM at 16 kHz. Playing it costs an ADPCM decode plus a 16 kHz →
  // engine-rate resample, which is exactly the repeated-catalogue-play work
  // the decoded-PCM cache amortizes (answering-machine greeting, section 7).
  {
    constexpr uint32_t kPromptRate = 16000;
    std::vector<Sample> prompt;
    constexpr double kNotes[] = {392.0, 523.25, 659.25, 523.25,
                                 440.0, 587.33, 493.88, 392.0};
    for (double freq : kNotes) {
      std::vector<Sample> note = MakeBeep(kPromptRate, 230, freq, 0.45);
      prompt.insert(prompt.end(), note.begin(), note.end());
      prompt.insert(prompt.end(), kPromptRate / 50, 0);
    }
    StreamEncoder encoder(Encoding::kAdpcm4);
    CatalogueSound sound;
    sound.format = {Encoding::kAdpcm4, kPromptRate};
    encoder.Encode(prompt, &sound.data);
    catalogue_["prompt"] = std::move(sound);
  }
}

const CatalogueSound* ServerState::FindCatalogueSound(const std::string& name) const {
  auto it = catalogue_.find(name);
  return it == catalogue_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

ServerStatsReply ServerState::BuildServerStats(bool include_opcodes) {
  ServerStatsReply reply;
  reply.stats_version = kServerStatsVersion;
  reply.proto_major = kProtocolMajor;
  reply.proto_minor = kProtocolMinor;
  reply.uptime_ms = metrics_.uptime_ms();
  reply.server_time = server_time();
  reply.engine_threads = static_cast<uint32_t>(engine_threads_);
  reply.engine_rate_hz = engine_rate();
  reply.ticks_run = static_cast<uint64_t>(ticks_run_);
  reply.tick_overruns = metrics_.tick_overruns.value();
  reply.tick_us = metrics_.tick_us.Snapshot();
  reply.tick_jitter_us = metrics_.tick_jitter_us.Snapshot();
  reply.islands_per_tick = metrics_.islands_per_tick.Snapshot();
  reply.worker_imbalance = metrics_.worker_imbalance.Snapshot();
  reply.requests_total = metrics_.requests_total.value();
  reply.request_errors_total = metrics_.request_errors_total.value();
  reply.dispatch_us = metrics_.dispatch_us.Snapshot();
  if (include_opcodes) {
    for (size_t op = 0; op < ServerMetrics::kOpcodes; ++op) {
      uint64_t count = metrics_.requests[op].value();
      uint64_t errors = metrics_.request_errors[op].value();
      if (count == 0 && errors == 0) {
        continue;  // only opcodes actually seen go on the wire
      }
      OpcodeStats stats;
      stats.opcode = static_cast<uint16_t>(op);
      stats.count = count;
      stats.errors = errors;
      stats.total_us = metrics_.opcode_us[op].value();
      reply.opcodes.push_back(stats);
    }
  }
  reply.connections_open = metrics_.connections_open.value();
  reply.connections_total = metrics_.connections_total.value();
  reply.bytes_in = metrics_.bytes_in.value();
  reply.bytes_out = metrics_.bytes_out.value();
  reply.events_sent = metrics_.events_sent.value();
  reply.objects = static_cast<uint32_t>(objects_.size());
  uint32_t active = 0;
  for (Loud* loud : active_stack_) {
    if (loud->active()) {
      ++active;
    }
  }
  reply.active_louds = active;
  reply.commands_enqueued = metrics_.commands_enqueued.value();
  reply.commands_done = metrics_.commands_done.value();
  reply.commands_aborted = metrics_.commands_aborted.value();
  reply.queue_events = metrics_.queue_events.value();
  reply.decoded_cache_hits = metrics_.decoded_cache_hits.value();
  reply.decoded_cache_misses = metrics_.decoded_cache_misses.value();
  reply.decoded_cache_bytes = static_cast<uint64_t>(metrics_.decoded_cache_bytes.value());
  reply.decoded_cache_evictions = metrics_.decoded_cache_evictions.value();
  reply.events_dropped = metrics_.events_dropped.value();
  reply.egress_disconnects = metrics_.egress_disconnects.value();
  reply.egress_queued_bytes = metrics_.egress_queued_bytes.value();
  reply.accept_retries = metrics_.accept_retries.value();
  reply.epoch_commits = metrics_.epoch_commits.value();
  reply.dispatch_shard_contention = metrics_.dispatch_shard_contention.value();
  reply.lock_wait_us = metrics_.lock_wait_us.Snapshot();
  reply.epoch_commit_us = metrics_.epoch_commit_us.Snapshot();
  reply.mouth_to_ear_us = metrics_.mouth_to_ear_us.Snapshot();
  reply.trace_spans = metrics_.trace_spans.value();
  reply.trace_requests_sampled = metrics_.trace_requests_sampled.value();
  reply.trace_sample_every = trace_sample_every_;
  reply.loops = connection_loops_;
  reply.fds_watched = metrics_.fds_watched.value();
  reply.epoll_waits = metrics_.epoll_waits.value();
  reply.wakeups = metrics_.loop_wakeups.value();
  reply.readiness_spurious = metrics_.readiness_spurious.value();
  reply.loop_dispatch_us = metrics_.loop_dispatch_us.Snapshot();
  reply.admission_rejects = metrics_.admission_rejects.value();
  reply.rate_limited = metrics_.rate_limited.value();
  reply.rate_limit_disconnects = metrics_.rate_limit_disconnects.value();
  reply.quota_denials = metrics_.quota_denials.value();
  reply.draining = static_cast<uint32_t>(metrics_.draining.value());
  reply.drain_forced_closes = metrics_.drain_forced_closes.value();
  reply.drain_duration_ms = static_cast<uint64_t>(metrics_.drain_duration_ms.value());
  return reply;
}

// ---------------------------------------------------------------------------
// Overload protection (DESIGN.md decision 15)
// ---------------------------------------------------------------------------

void ServerState::HangUpAllLines() {
  // Same contract as the owner-death path in DestroyConnectionObjects: a
  // terminating server must leave every building line on-hook, whoever's
  // telephone device held it. Bound devices first (the binding registry is
  // exact), then any off-hook line unit with no binding at all.
  for (const auto& [unit, device] : telephone_bindings_) {
    if (unit->line_state() != LineState::kOnHook) {
      unit->HangUp();
    }
  }
  for (PhoneLineUnit* unit : board_->phone_lines()) {
    if (unit->line_state() != LineState::kOnHook) {
      unit->HangUp();
    }
  }
}

uint32_t ServerState::CountOwnedDevices(uint32_t conn) const {
  uint32_t n = 0;
  for (const auto& [id, obj] : objects_) {
    if (obj->owner() == conn && obj->kind() == ObjectKind::kVirtualDevice) {
      ++n;
    }
  }
  return n;
}

uint64_t ServerState::CountOwnedSoundBytes(uint32_t conn) const {
  uint64_t bytes = 0;
  for (const auto& [id, obj] : objects_) {
    if (obj->owner() == conn && obj->kind() == ObjectKind::kSound) {
      bytes += static_cast<const SoundObject*>(obj.get())->size_bytes();
    }
  }
  return bytes;
}

uint32_t ServerState::CountRunningQueues(uint32_t conn) const {
  uint32_t n = 0;
  for (const auto& [id, obj] : objects_) {
    if (obj->owner() != conn || obj->kind() != ObjectKind::kLoud) {
      continue;
    }
    CommandQueue* queue = static_cast<Loud*>(obj.get())->queue();
    if (queue != nullptr && queue->state() != QueueState::kStopped) {
      ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Request tracing (DESIGN.md decision 13)
// ---------------------------------------------------------------------------

void ServerState::NotePlayAccepted(uint64_t trace, uint64_t root_seq) {
  PendingMouthToEar pending;
  pending.trace = trace;
  pending.root_seq = root_seq;
  pending.t_accept_us = obs::TraceRegistry::Instance().NowUs();
  // The first epoch whose fan-out can see this play: the next one — or the
  // one after, when a fan-out is already running off its own snapshot.
  pending.required_epoch = ticks_run_ + (epoch_in_flight_ ? 2 : 1);
  m2e_pending_.push_back(pending);
}

void ServerState::AppendDeviceStats(EntityStatsReply* reply) {
  for (const auto& [id, object] : objects_) {
    if (object->kind() != ObjectKind::kLoud) {
      continue;
    }
    auto* loud = static_cast<Loud*>(object.get());
    if (!loud->IsRoot()) {
      continue;
    }
    DeviceStatsWire wire;
    wire.root = loud->id();
    wire.owner = loud->owner();
    wire.active = loud->active() ? 1 : 0;
    wire.frames_produced = loud->frames_produced();
    wire.frames_consumed = loud->frames_consumed();
    reply->devices.push_back(wire);
  }
  // Stable output for tools and tests (the registry map is unordered).
  std::sort(reply->devices.begin(), reply->devices.end(),
            [](const DeviceStatsWire& a, const DeviceStatsWire& b) {
              return a.root < b.root;
            });
}

// ---------------------------------------------------------------------------
// Decoded-PCM cache
// ---------------------------------------------------------------------------

void ServerState::ConfigureDecodedCache(size_t max_bytes) {
  decoded_cache_.SetMaxBytes(max_bytes);
  metrics_.decoded_cache_bytes.Set(static_cast<int64_t>(decoded_cache_.bytes()));
}

DecodedSoundCache::Entry ServerState::GetDecodedSound(SoundObject* sound) {
  const uint32_t rate = engine_rate();
  const DecodedSoundCache::Key key{sound->id(), sound->generation(), rate};
  if (DecodedSoundCache::Entry hit = decoded_cache_.Lookup(key)) {
    metrics_.decoded_cache_hits.Increment();
    return hit;
  }
  metrics_.decoded_cache_misses.Increment();
  // Full decode to linear at the sound's native rate, then resample to the
  // engine rate. Decoders are chunk-invariant and the resampler's output is
  // a prefix-exact stream, so this whole-sound conversion is bit-identical
  // to the incremental per-tick path it replaces.
  auto pcm = std::make_shared<std::vector<Sample>>();
  StreamDecoder decoder(sound->format().encoding);
  decoder.Decode(sound->data(), pcm.get());
  if (sound->format().sample_rate_hz != rate) {
    Resampler resampler(sound->format().sample_rate_hz, rate);
    std::vector<Sample> resampled;
    resampled.reserve(static_cast<size_t>(
        resampler.OutputSizeFor(static_cast<int64_t>(pcm->size())) + 2));
    resampler.Process(*pcm, &resampled);
    *pcm = std::move(resampled);
  }
  DecodedSoundCache::Entry entry = std::move(pcm);
  const size_t evicted = decoded_cache_.Insert(key, entry);
  if (evicted > 0) {
    metrics_.decoded_cache_evictions.Increment(evicted);
  }
  metrics_.decoded_cache_bytes.Set(static_cast<int64_t>(decoded_cache_.bytes()));
  return entry;
}

}  // namespace aud
