// Core server object model: the protocol entities a connection manipulates
// (section 4.1's five pieces: connections, virtual devices, events, command
// queues, sounds) plus wires and properties. These are declarations only;
// behaviour lives in the per-concern .cc files.

#ifndef SRC_SERVER_CORE_H_
#define SRC_SERVER_CORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/sample.h"
#include "src/common/status.h"
#include "src/wire/attributes.h"
#include "src/wire/messages.h"
#include "src/wire/protocol.h"

namespace aud {

class Loud;
class VirtualDevice;
class WireObject;
class SoundObject;
class ServerState;

// Marker for objects owned by the server itself (the device LOUD tree).
inline constexpr uint32_t kServerOwner = 0xFFFFFFFFu;

// Kinds of protocol objects a ResourceId can name.
enum class ObjectKind : uint8_t {
  kLoud = 0,
  kVirtualDevice = 1,
  kWire = 2,
  kSound = 3,
};

// Base of every id-named server object.
class ServerObject {
 public:
  ServerObject(ResourceId id, ObjectKind kind, uint32_t owner)
      : id_(id), kind_(kind), owner_(owner) {}
  virtual ~ServerObject() = default;

  ServerObject(const ServerObject&) = delete;
  ServerObject& operator=(const ServerObject&) = delete;

  ResourceId id() const { return id_; }
  ObjectKind kind() const { return kind_; }
  // Connection index that owns this object (kServerOwner for server-owned).
  uint32_t owner() const { return owner_; }

 private:
  ResourceId id_;
  ObjectKind kind_;
  uint32_t owner_;
};

// An X-style property: (name, value, type) triple (section 5.8).
struct Property {
  std::string type;
  std::vector<uint8_t> value;
};

// Server-side sound: typed audio data (section 5.6). Data may be supplied
// by the client (WriteSoundData), loaded from the catalogue, or produced by
// a recorder.
class SoundObject : public ServerObject {
 public:
  SoundObject(ResourceId id, uint32_t owner, AudioFormat format)
      : ServerObject(id, ObjectKind::kSound, owner), format_(format) {}

  const AudioFormat& format() const { return format_; }

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>& mutable_data() {
    ++generation_;
    return data_;
  }

  // Bumped on every mutation; keys the decoded-PCM cache so a stale decode
  // of overwritten data can never be served.
  uint64_t generation() const { return generation_; }

  uint64_t size_bytes() const { return data_.size(); }

  // Whole samples stored.
  int64_t sample_count() const;

  // Writes `bytes` at byte `offset`, growing the sound as needed (zero-fill
  // gaps). Real-time supply appends while a player drains.
  void Write(uint64_t offset, std::span<const uint8_t> bytes);

  // Reads up to `length` bytes at `offset`.
  std::vector<uint8_t> Read(uint64_t offset, uint32_t length) const;

 private:
  AudioFormat format_;
  std::vector<uint8_t> data_;
  uint64_t generation_ = 0;
};

// A wire between two virtual-device ports (section 5.2). Carries linear
// samples at the source device's rate; the destination resamples on pull
// when rates differ. The declared AudioFormat is the protocol-level wire
// type used for match checking.
class WireObject : public ServerObject {
 public:
  WireObject(ResourceId id, uint32_t owner, VirtualDevice* src, uint16_t src_port,
             VirtualDevice* dst, uint16_t dst_port, AudioFormat format)
      : ServerObject(id, ObjectKind::kWire, owner),
        src_(src),
        src_port_(src_port),
        dst_(dst),
        dst_port_(dst_port),
        format_(format) {}

  VirtualDevice* src() const { return src_; }
  uint16_t src_port() const { return src_port_; }
  VirtualDevice* dst() const { return dst_; }
  uint16_t dst_port() const { return dst_port_; }
  const AudioFormat& format() const { return format_; }

  // In-flight audio (linear, source rate).
  std::vector<Sample>& buffer() { return buffer_; }

  // Appends samples (called by the source device's produce step).
  void Push(std::span<const Sample> samples) {
    buffer_.insert(buffer_.end(), samples.begin(), samples.end());
  }

  // Appends samples with intra-tick alignment: if this wire has received
  // fewer than `offset` samples during tick `tick_id`, the gap is filled
  // with silence first. Used by queue-driven producers so a command that
  // starts mid-tick (e.g. after a Delay expires) lands at the right sample
  // position instead of the tick boundary.
  void PushAt(int64_t tick_id, size_t offset, std::span<const Sample> samples) {
    if (tick_id != last_tick_) {
      last_tick_ = tick_id;
      pushed_in_tick_ = 0;
    }
    if (pushed_in_tick_ < offset) {
      buffer_.insert(buffer_.end(), offset - pushed_in_tick_, 0);
      pushed_in_tick_ = offset;
    }
    Push(samples);
    pushed_in_tick_ += samples.size();
  }

  // Moves up to `n` samples out (called by the destination's consume step).
  size_t Pull(size_t n, std::vector<Sample>* out);

 private:
  VirtualDevice* src_;
  uint16_t src_port_;
  VirtualDevice* dst_;
  uint16_t dst_port_;
  AudioFormat format_;
  std::vector<Sample> buffer_;
  int64_t last_tick_ = -1;
  size_t pushed_in_tick_ = 0;
};

}  // namespace aud

#endif  // SRC_SERVER_CORE_H_
