// ServerState: the protocol-object world of one audio server — registry,
// device LOUD, active stack, catalogue, event routing, and the engine tick
// that moves audio.
//
// Locking and the parallel tick: all *protocol* mutation is called with the
// server's big lock held (by the dispatcher for requests, by the engine for
// ticks), so registry/stack/catalogue state stays single-threaded by
// construction, mirroring the paper's per-server serialization point for
// resource arbitration. The engine tick itself may fan out: Tick()
// partitions the active device graph into independent *islands* — sets of
// root LOUDs that share no wire endpoints, no non-speaker physical devices
// (microphones and phone lines are destructive reads), no referenced
// sounds, and neither the phone exchange nor the recognizer vocabulary
// store — and runs each island on a persistent worker pool (EnginePool).
// Workers only touch island-local state plus two thread-routed sinks:
//   * output mixing goes to a per-worker TickOutputs accumulator set that
//     the tick thread merges into the global per-device accumulators after
//     the join (island merge order is deterministic and the integer sums
//     commute, so parallel output is bit-identical to serial);
//   * events are buffered per island and flushed by the tick thread in
//     island-id (stack) order after the join.
// The big lock still protects everything else: request dispatch, activation,
// object lifetime, event masks, and the codec resolve + board advance that
// bracket the parallel phase.

#ifndef SRC_SERVER_SERVER_STATE_H_
#define SRC_SERVER_SERVER_STATE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dsp/mixer_kernel.h"
#include "src/hw/board.h"
#include "src/server/command_queue.h"
#include "src/server/core.h"
#include "src/server/decoded_cache.h"
#include "src/server/devices.h"
#include "src/server/engine_pool.h"
#include "src/server/loud.h"
#include "src/server/metrics.h"

namespace aud {

// A named catalogue entry (section 5.6: "sounds are grouped into libraries
// or catalogues").
struct CatalogueSound {
  AudioFormat format;
  std::vector<uint8_t> data;
};

// One independent slice of the active device graph: root LOUDs (in active-
// stack order) plus their devices. Islands share no mutable engine state,
// so they can tick concurrently.
struct EngineIsland {
  std::vector<Loud*> louds;
  std::vector<VirtualDevice*> devices;
};

// Per-worker output mixing sink for the parallel tick. Each worker
// accumulates every AccumulateOutput call it executes into its own set of
// per-device accumulators; the tick thread merges the sets after the join.
// Accumulators are reused across ticks (reset lazily on first touch).
class TickOutputs {
 public:
  void BeginTick(size_t frames) {
    frames_ = frames;
    touched_.clear();
    ++stamp_;
  }

  void Accumulate(PhysicalDevice* device, std::span<const Sample> samples, int32_t gain) {
    Slot& slot = slots_[device];
    if (slot.stamp != stamp_) {
      slot.acc.Reset(frames_);
      slot.stamp = stamp_;
      touched_.push_back(device);
    }
    slot.acc.Accumulate(samples, gain);
  }

  // Devices this worker touched since BeginTick.
  const std::vector<PhysicalDevice*>& touched() const { return touched_; }
  const MixAccumulator& accumulator(PhysicalDevice* device) const {
    return slots_.at(device).acc;
  }

 private:
  struct Slot {
    MixAccumulator acc;
    uint64_t stamp = 0;
  };
  std::unordered_map<PhysicalDevice*, Slot> slots_;
  std::vector<PhysicalDevice*> touched_;
  size_t frames_ = 0;
  uint64_t stamp_ = 0;
};

class ServerState {
 public:
  // Delivers an event to a connection (index) — wired to the transport by
  // AudioServer, or to a test harness.
  using EventSender =
      std::function<void(uint32_t conn, const EventMessage& event)>;

  // `board` must outlive the state.
  ServerState(Board* board, std::string server_name);
  ~ServerState();

  Board* board() { return board_; }
  const std::string& server_name() const { return server_name_; }
  uint32_t engine_rate() const { return board_->sample_rate_hz(); }
  int64_t engine_frame() const { return engine_frame_; }
  Ticks server_time() const { return SamplesToTicks(engine_frame_, engine_rate()); }

  void set_event_sender(EventSender sender) { event_sender_ = std::move(sender); }

  // -- Registry ---------------------------------------------------------------

  // Registers a new object; fails with kBadIdChoice on collision.
  Status Register(std::unique_ptr<ServerObject> object);

  ServerObject* Find(ResourceId id);
  Loud* FindLoud(ResourceId id);
  VirtualDevice* FindDevice(ResourceId id);
  WireObject* FindWire(ResourceId id);
  SoundObject* FindSound(ResourceId id);

  // Destroys one object (recursively for LOUDs: children, devices, wires).
  Status Destroy(ResourceId id);

  // Destroys everything a disconnected client owned.
  void DestroyConnectionObjects(uint32_t conn);

  size_t object_count() const { return objects_.size(); }

  // -- Device LOUD (section 5.1) -----------------------------------------------

  ResourceId device_loud_root() const { return device_loud_root_; }
  PhysicalDevice* PhysicalForId(ResourceId id);
  ResourceId IdForPhysical(PhysicalDevice* device);
  DeviceLoudReply DescribeDeviceLoud();

  // Hard-wiring rule (section 5.2): when either device belongs to a
  // hard-wired group (speaker-phone), the other must be one of its
  // permanent partners.
  bool HardWireCompatible(PhysicalDevice* a, PhysicalDevice* b);

  // -- Active stack (section 5.4) ------------------------------------------------

  const std::vector<Loud*>& active_stack() const { return active_stack_; }

  Status MapLoud(Loud* loud);
  Status UnmapLoud(Loud* loud);
  Status RaiseLoud(Loud* loud);
  Status LowerLoud(Loud* loud);

  // Walks the stack top-down, activating every LOUD whose resources don't
  // conflict with a higher active LOUD (exclusive domains, telephones).
  void RecomputeActivation();

  // -- Engine -------------------------------------------------------------------

  // Sets the tick parallelism. threads <= 1 keeps the serial tick (the
  // default); threads > 1 creates a persistent EnginePool of that total
  // width. Must not be called mid-tick.
  void ConfigureEngine(int threads);
  int engine_threads() const { return engine_threads_; }

  // One engine tick: run queues/produce/transform/consume for `frames`,
  // then advance the hardware board. With an engine pool configured the
  // produce/transform/consume phases run island-parallel.
  void Tick(size_t frames);

  // Recomputes the island partition of the currently-active graph and
  // returns it (also used by tests; the parallel tick calls this every
  // tick with reused scratch storage). LOUDs sharing a wire, a non-speaker
  // physical device, a referenced sound, the phone exchange, or the
  // vocabulary store land in the same island; island order follows the
  // active stack.
  const std::vector<EngineIsland>& PartitionIslands();

  // Output mixing: devices add their streams here during Consume; the tick
  // resolves each physical output's accumulator into its codec. This is the
  // transparent mixing of section 6.1. During a parallel tick the call is
  // routed to the executing worker's TickOutputs.
  void AccumulateOutput(PhysicalDevice* device, std::span<const Sample> samples, int32_t gain);

  // -- Events (section 5.7) --------------------------------------------------------

  // Emits to every connection whose event mask on `loud` includes the
  // event's category. Inside a parallel tick the delivery is buffered
  // island-locally and flushed by the tick thread after the join.
  void EmitEvent(Loud* loud, EventType type, ResourceId resource, std::vector<uint8_t> args);

  // Emits to subscribers of a device-LOUD entry (e.g. monitoring the
  // telephone while the answering machine is unmapped, section 5.9).
  void EmitDeviceLoudEvent(ResourceId device_loud_id, EventType type,
                           std::vector<uint8_t> args);

  // Phone-line events enter here (wired to each PhoneLineUnit at startup).
  void OnPhoneEvent(PhoneLineUnit* unit, const ExchangeLine::Event& event);

  // Telephone vdev binding registry (who gets line events).
  void BindTelephone(PhoneLineUnit* unit, TelephoneDevice* device);
  void UnbindTelephone(PhoneLineUnit* unit, TelephoneDevice* device);

  // -- Audio manager support (section 5.8) ---------------------------------------

  std::optional<uint32_t> redirect_conn() const { return redirect_conn_; }
  void set_redirect_conn(std::optional<uint32_t> conn) { redirect_conn_ = conn; }

  // -- Catalogue (section 5.6) ------------------------------------------------------

  std::map<std::string, CatalogueSound>& catalogue() { return catalogue_; }
  const CatalogueSound* FindCatalogueSound(const std::string& name) const;

  // Saved recognizer vocabularies (SaveVocabulary / kVocabularyName attr).
  std::map<std::string, std::vector<uint8_t>>& vocabularies() { return vocabularies_; }

  // -- Decoded-PCM cache ---------------------------------------------------------

  // Sets the cache byte budget (0 disables). Called once at server startup
  // from ServerOptions::decoded_cache_bytes; tests may reconfigure.
  void ConfigureDecodedCache(size_t max_bytes);
  DecodedSoundCache& decoded_cache() { return decoded_cache_; }

  // Returns `sound`'s full data decoded to linear PCM at the engine rate,
  // from cache when possible (decode-and-insert on miss). Metrics are
  // bumped either way. Safe to call from engine workers: the registry is
  // not touched, only the sound object (island-serialized) and the cache
  // (internally locked).
  DecodedSoundCache::Entry GetDecodedSound(SoundObject* sound);

  // -- Stats ---------------------------------------------------------------------

  int64_t ticks_run() const { return ticks_run_; }

  // The server-wide metrics aggregate. Counters/gauges may be bumped from
  // any thread; histograms only under the big lock (see metrics.h).
  ServerMetrics& metrics() { return metrics_; }

  // Snapshot for GetServerStats. Called with the big lock held.
  ServerStatsReply BuildServerStats(bool include_opcodes);

 private:
  void BuildDeviceLoud();
  void SeedCatalogue();
  bool TryActivate(Loud* loud, const std::set<uint32_t>& exclusive_in,
                   const std::set<uint32_t>& exclusive_out,
                   const std::set<PhysicalDevice*>& claimed_phones,
                   std::vector<std::pair<VirtualDevice*, PhysicalDevice*>>* bindings);
  PhysicalDevice* MatchPhysical(const VirtualDevice& vdev,
                                const std::set<PhysicalDevice*>& claimed_phones);
  void Activate(Loud* loud,
                const std::vector<std::pair<VirtualDevice*, PhysicalDevice*>>& bindings);
  void Deactivate(Loud* loud);

  // Engine internals.
  void PrepareOutputAccumulator(PhysicalDevice* device, size_t frames);
  // Runs queue/produce/transform/consume for one island (or, in serial
  // mode, a pseudo-island holding the whole active graph).
  void RunIslandPhases(const EngineIsland& island, EngineTick* tick, size_t frames);
  void TickSerial(EngineTick* tick, size_t frames);
  void TickParallel(EngineTick* tick, size_t frames);
  void DeliverEvent(uint32_t conn, const EventMessage& event);

  Board* board_;
  std::string server_name_;
  EventSender event_sender_;

  std::unordered_map<ResourceId, std::unique_ptr<ServerObject>> objects_;

  ResourceId device_loud_root_ = kNoResource;
  std::map<ResourceId, PhysicalDevice*> device_loud_entries_;
  std::map<PhysicalDevice*, ResourceId> physical_ids_;
  ResourceId next_server_id_ = kServerIdBase;

  std::vector<Loud*> active_stack_;  // index 0 = top

  std::map<PhoneLineUnit*, TelephoneDevice*> telephone_bindings_;

  std::map<PhysicalDevice*, MixAccumulator> output_acc_;
  size_t current_tick_frames_ = 0;
  int64_t engine_frame_ = 0;
  int64_t ticks_run_ = 0;
  bool in_tick_ = false;

  // Parallel engine machinery (ConfigureEngine). Scratch containers are
  // members so steady-state ticks stay allocation-free.
  int engine_threads_ = 1;
  std::unique_ptr<EnginePool> engine_pool_;
  std::vector<EngineIsland> islands_;
  EngineIsland serial_island_;
  std::vector<TickOutputs> worker_outputs_;
  std::vector<std::vector<std::pair<uint32_t, EventMessage>>> island_events_;
  std::vector<Sample> resolved_;
  // PartitionIslands scratch.
  std::vector<Loud*> partition_louds_;
  std::vector<VirtualDevice*> partition_devices_;
  std::vector<int> partition_parent_;
  std::vector<int> partition_reps_;
  std::unordered_map<const Loud*, int> partition_index_;
  std::vector<ResourceId> partition_sounds_;
  std::unordered_map<PhysicalDevice*, int> partition_phys_;
  std::unordered_map<ResourceId, int> partition_sound_rep_;

  std::optional<uint32_t> redirect_conn_;

  std::map<std::string, CatalogueSound> catalogue_;
  std::map<std::string, std::vector<uint8_t>> vocabularies_;

  DecodedSoundCache decoded_cache_;

  ServerMetrics metrics_;
};

}  // namespace aud

#endif  // SRC_SERVER_SERVER_STATE_H_
