// ServerState: the protocol-object world of one audio server — registry,
// device LOUD, active stack, catalogue, event routing, and the engine tick
// that moves audio.
//
// Locking — the epoch-snapshot tick (DESIGN.md decision 12): all *protocol*
// mutation still runs with the server's state lock held (the dispatcher per
// request), mirroring the paper's per-server serialization point for
// resource arbitration. The engine tick, however, no longer holds that lock
// across its fan-out. Tick() runs in three phases:
//   1. Epoch open (state lock held, short): partition the active graph into
//      independent *islands* — sets of root LOUDs that share no wire
//      endpoints, no non-speaker physical devices (microphones and phone
//      lines are destructive reads), no referenced sounds, and neither the
//      phone exchange nor the recognizer vocabulary store — and capture
//      that partition plus the per-device output accumulators as the
//      epoch's immutable snapshot.
//   2. Fan-out (state lock NOT held): islands run queues/produce/transform/
//      consume on the EnginePool and the tick thread. Each island job holds
//      the engine shard locks of its root LOUDs (Loud::engine_mutex(), in
//      id order), which is what serializes it against engine-plane requests
//      on those same roots. Output mixing routes to per-worker TickOutputs
//      accumulator sets; events buffer per island. Structure (registry,
//      wiring, activation) cannot change mid-epoch: mutating requests wait
//      for the epoch via WaitEngineIdle().
//   3. Commit (state lock held, short): merge per-worker mixes (island
//      merge order is deterministic and the integer sums commute, so
//      parallel output stays bit-identical to serial), flush buffered
//      events in island-id (stack) order, resolve accumulators into the
//      codecs, advance the board, publish engine time, and wake any
//      structural mutators waiting for the epoch boundary.
// Requests against roots the tick is not touching therefore only overlap
// the tick's two short critical sections, never the fan-out.

#ifndef SRC_SERVER_SERVER_STATE_H_
#define SRC_SERVER_SERVER_STATE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/thread_annotations.h"

#include "src/dsp/mixer_kernel.h"
#include "src/hw/board.h"
#include "src/server/command_queue.h"
#include "src/server/core.h"
#include "src/server/decoded_cache.h"
#include "src/server/devices.h"
#include "src/server/engine_pool.h"
#include "src/server/loud.h"
#include "src/server/metrics.h"

namespace aud {

// A named catalogue entry (section 5.6: "sounds are grouped into libraries
// or catalogues").
struct CatalogueSound {
  AudioFormat format;
  std::vector<uint8_t> data;
};

// One independent slice of the active device graph: root LOUDs (in active-
// stack order) plus their devices. Islands share no mutable engine state,
// so they can tick concurrently.
struct EngineIsland {
  std::vector<Loud*> louds;
  std::vector<VirtualDevice*> devices;
};

// Per-worker output mixing sink for the parallel tick. Each worker
// accumulates every AccumulateOutput call it executes into its own set of
// per-device accumulators; the tick thread merges the sets after the join.
// Accumulators are reused across ticks (reset lazily on first touch).
class TickOutputs {
 public:
  void BeginTick(size_t frames) {
    frames_ = frames;
    touched_.clear();
    ++stamp_;
  }

  void Accumulate(PhysicalDevice* device, std::span<const Sample> samples, int32_t gain) {
    Slot& slot = slots_[device];
    if (slot.stamp != stamp_) {
      slot.acc.Reset(frames_);
      slot.stamp = stamp_;
      touched_.push_back(device);
    }
    slot.acc.Accumulate(samples, gain);
  }

  // Devices this worker touched since BeginTick.
  const std::vector<PhysicalDevice*>& touched() const { return touched_; }
  const MixAccumulator& accumulator(PhysicalDevice* device) const {
    return slots_.at(device).acc;
  }

 private:
  struct Slot {
    MixAccumulator acc;
    uint64_t stamp = 0;
  };
  std::unordered_map<PhysicalDevice*, Slot> slots_;
  std::vector<PhysicalDevice*> touched_;
  size_t frames_ = 0;
  uint64_t stamp_ = 0;
};

class ServerState {
 public:
  // Delivers an event to a connection (index) — wired to the transport by
  // AudioServer, or to a test harness.
  using EventSender =
      std::function<void(uint32_t conn, const EventMessage& event)>;

  // `board` must outlive the state.
  ServerState(Board* board, std::string server_name);
  ~ServerState();

  Board* board() { return board_; }
  const std::string& server_name() const { return server_name_; }
  uint32_t engine_rate() const { return board_->sample_rate_hz(); }
  // Engine time is published atomically at epoch commit so island workers
  // can stamp events mid-fan-out without the state lock.
  int64_t engine_frame() const { return engine_frame_.load(std::memory_order_relaxed); }
  Ticks server_time() const { return SamplesToTicks(engine_frame(), engine_rate()); }

  void set_event_sender(EventSender sender) { event_sender_ = std::move(sender); }

  // Attaches the server's state lock. Tick() takes it for the epoch open
  // and commit critical sections (and runs its fan-out without it);
  // WaitEngineIdle() releases it while waiting. A detached state (unit
  // tests driving a bare ServerState single-threaded) skips all locking.
  void AttachStateLock(Mutex* mu) { state_mu_ = mu; }

  // Blocks until no epoch fan-out is in flight. Callers must hold the
  // attached state lock (the wait releases and reacquires it); on return
  // the engine is quiescent and cannot start a new epoch until the caller
  // drops the lock, so structural mutation (registry, wiring, activation,
  // sound data) is safe. Invisible to the analysis because the lock is an
  // attached pointer, not a member the annotations can name.
  void WaitEngineIdle() AUD_NO_THREAD_SAFETY_ANALYSIS;

  // -- Registry ---------------------------------------------------------------

  // Registers a new object; fails with kBadIdChoice on collision.
  Status Register(std::unique_ptr<ServerObject> object);

  ServerObject* Find(ResourceId id);
  Loud* FindLoud(ResourceId id);
  VirtualDevice* FindDevice(ResourceId id);
  WireObject* FindWire(ResourceId id);
  SoundObject* FindSound(ResourceId id);

  // Destroys one object (recursively for LOUDs: children, devices, wires).
  Status Destroy(ResourceId id);

  // Destroys everything a disconnected client owned.
  void DestroyConnectionObjects(uint32_t conn);

  size_t object_count() const { return objects_.size(); }

  // -- Device LOUD (section 5.1) -----------------------------------------------

  ResourceId device_loud_root() const { return device_loud_root_; }
  PhysicalDevice* PhysicalForId(ResourceId id);
  ResourceId IdForPhysical(PhysicalDevice* device);
  DeviceLoudReply DescribeDeviceLoud();

  // Hard-wiring rule (section 5.2): when either device belongs to a
  // hard-wired group (speaker-phone), the other must be one of its
  // permanent partners.
  bool HardWireCompatible(PhysicalDevice* a, PhysicalDevice* b);

  // -- Active stack (section 5.4) ------------------------------------------------

  const std::vector<Loud*>& active_stack() const { return active_stack_; }

  Status MapLoud(Loud* loud);
  Status UnmapLoud(Loud* loud);
  Status RaiseLoud(Loud* loud);
  Status LowerLoud(Loud* loud);

  // Walks the stack top-down, activating every LOUD whose resources don't
  // conflict with a higher active LOUD (exclusive domains, telephones).
  void RecomputeActivation();

  // -- Engine -------------------------------------------------------------------

  // Sets the tick parallelism. threads <= 1 keeps the serial tick (the
  // default); threads > 1 creates a persistent EnginePool of that total
  // width. Must not be called mid-tick.
  void ConfigureEngine(int threads);
  int engine_threads() const { return engine_threads_; }

  // One engine tick: open an epoch (snapshot the island partition under the
  // state lock), run queues/produce/transform/consume for `frames` with the
  // lock dropped (island-parallel when an engine pool is configured), then
  // commit — merge, flush events, resolve codecs, advance the board — in a
  // short critical section at the tick boundary. Callers must NOT hold the
  // attached state lock.
  void Tick(size_t frames);

  // Recomputes the island partition of the currently-active graph and
  // returns it (also used by tests; the parallel tick calls this every
  // tick with reused scratch storage). LOUDs sharing a wire, a non-speaker
  // physical device, a referenced sound, the phone exchange, or the
  // vocabulary store land in the same island; island order follows the
  // active stack.
  const std::vector<EngineIsland>& PartitionIslands();

  // Output mixing: devices add their streams here during Consume; the tick
  // resolves each physical output's accumulator into its codec. This is the
  // transparent mixing of section 6.1. During a parallel tick the call is
  // routed to the executing worker's TickOutputs.
  void AccumulateOutput(PhysicalDevice* device, std::span<const Sample> samples, int32_t gain);

  // -- Events (section 5.7) --------------------------------------------------------

  // Emits to every connection whose event mask on `loud` includes the
  // event's category. Inside a parallel tick the delivery is buffered
  // island-locally and flushed by the tick thread after the join.
  void EmitEvent(Loud* loud, EventType type, ResourceId resource, std::vector<uint8_t> args);

  // Emits to subscribers of a device-LOUD entry (e.g. monitoring the
  // telephone while the answering machine is unmapped, section 5.9).
  void EmitDeviceLoudEvent(ResourceId device_loud_id, EventType type,
                           std::vector<uint8_t> args);

  // Phone-line events enter here (wired to each PhoneLineUnit at startup).
  void OnPhoneEvent(PhoneLineUnit* unit, const ExchangeLine::Event& event);

  // Telephone vdev binding registry (who gets line events).
  void BindTelephone(PhoneLineUnit* unit, TelephoneDevice* device);
  void UnbindTelephone(PhoneLineUnit* unit, TelephoneDevice* device);

  // -- Audio manager support (section 5.8) ---------------------------------------

  std::optional<uint32_t> redirect_conn() const { return redirect_conn_; }
  void set_redirect_conn(std::optional<uint32_t> conn) { redirect_conn_ = conn; }

  // -- Catalogue (section 5.6) ------------------------------------------------------

  std::map<std::string, CatalogueSound>& catalogue() { return catalogue_; }
  const CatalogueSound* FindCatalogueSound(const std::string& name) const;

  // Saved recognizer vocabularies (SaveVocabulary / kVocabularyName attr).
  std::map<std::string, std::vector<uint8_t>>& vocabularies() { return vocabularies_; }

  // -- Decoded-PCM cache ---------------------------------------------------------

  // Sets the cache byte budget (0 disables). Called once at server startup
  // from ServerOptions::decoded_cache_bytes; tests may reconfigure.
  void ConfigureDecodedCache(size_t max_bytes);
  DecodedSoundCache& decoded_cache() { return decoded_cache_; }

  // Returns `sound`'s full data decoded to linear PCM at the engine rate,
  // from cache when possible (decode-and-insert on miss). Metrics are
  // bumped either way. Safe to call from engine workers: the registry is
  // not touched, only the sound object (island-serialized) and the cache
  // (internally locked).
  DecodedSoundCache::Entry GetDecodedSound(SoundObject* sound);

  // -- Stats ---------------------------------------------------------------------

  int64_t ticks_run() const { return ticks_run_; }

  // The server-wide metrics aggregate. Counters/gauges/histograms are all
  // relaxed atomics and may be bumped from any thread (see metrics.h).
  ServerMetrics& metrics() { return metrics_; }

  // Snapshot for GetServerStats. Called with the state lock held (the
  // structural fields it reads — registry size, active stack — only change
  // under that lock).
  ServerStatsReply BuildServerStats(bool include_opcodes);

  // Effective trace sampling period (ServerOptions::trace_sample_every),
  // mirrored here so GetServerStats can report it. 0 = tracing off.
  void set_trace_sample_every(uint32_t n) { trace_sample_every_ = n; }
  uint32_t trace_sample_every() const { return trace_sample_every_; }

  // Number of event-loop connection threads (ServerOptions::
  // connection_threads as actually started), mirrored for GetServerStats.
  // 0 = legacy thread-per-connection plane.
  void set_connection_loops(uint32_t n) { connection_loops_ = n; }
  uint32_t connection_loops() const { return connection_loops_; }

  // -- Request tracing (DESIGN.md decision 13) -----------------------------------

  // Registers a traced play acceptance for mouth-to-ear measurement: the
  // first epoch commit whose fan-out could have mixed the play records the
  // latency (metrics_.mouth_to_ear_us) plus kSpanEpoch / kMouthToEar spans
  // linked under `root_seq`. Called with the state lock held (dispatcher);
  // the pending list is drained inside the commit critical section.
  void NotePlayAccepted(uint64_t trace, uint64_t root_seq);

  // Appends one DeviceStatsWire per root LOUD (client trees and the device
  // LOUD) to `reply`. Called with the state lock held.
  void AppendDeviceStats(EntityStatsReply* reply);

  // -- Overload protection (DESIGN.md decision 15) --------------------------------

  // Hangs up every off-hook telephone line (graceful drain's last act: a
  // terminating server leaves the building's lines on-hook). Called with
  // the state lock held and the engine idle.
  void HangUpAllLines();

  // Per-client quota accounting, counted on demand at the few dispatcher
  // sites that grow the resource (create device / store sound / start
  // queue) — no shadow counters to keep balanced through every teardown
  // path. Called with the state lock held; registry walks are O(objects),
  // fine at admission-control scale.
  uint32_t CountOwnedDevices(uint32_t conn) const;
  uint64_t CountOwnedSoundBytes(uint32_t conn) const;
  uint32_t CountRunningQueues(uint32_t conn) const;

 private:
  void BuildDeviceLoud();
  void SeedCatalogue();
  bool TryActivate(Loud* loud, const std::set<uint32_t>& exclusive_in,
                   const std::set<uint32_t>& exclusive_out,
                   const std::set<PhysicalDevice*>& claimed_phones,
                   std::vector<std::pair<VirtualDevice*, PhysicalDevice*>>* bindings);
  PhysicalDevice* MatchPhysical(const VirtualDevice& vdev,
                                const std::set<PhysicalDevice*>& claimed_phones);
  void Activate(Loud* loud,
                const std::vector<std::pair<VirtualDevice*, PhysicalDevice*>>& bindings);
  void Deactivate(Loud* loud);

  // Engine internals.
  void PrepareOutputAccumulator(PhysicalDevice* device, size_t frames);
  // Runs queue/produce/transform/consume for one island (or, in serial
  // mode, a pseudo-island holding the whole active graph).
  void RunIslandPhases(const EngineIsland& island, EngineTick* tick, size_t frames);
  // Epoch phases (Tick). Open/Commit run under the state lock; the fan-out
  // does not. `parallel` is decided at open and carried across the epoch.
  bool EpochOpen(size_t frames) AUD_NO_THREAD_SAFETY_ANALYSIS;
  void EpochFanOut(EngineTick* tick, size_t frames, bool parallel);
  void EpochCommit(size_t frames, bool parallel) AUD_NO_THREAD_SAFETY_ANALYSIS;
  void DeliverEvent(uint32_t conn, const EventMessage& event);

  Board* board_;
  std::string server_name_;
  EventSender event_sender_;

  std::unordered_map<ResourceId, std::unique_ptr<ServerObject>> objects_;

  ResourceId device_loud_root_ = kNoResource;
  std::map<ResourceId, PhysicalDevice*> device_loud_entries_;
  std::map<PhysicalDevice*, ResourceId> physical_ids_;
  ResourceId next_server_id_ = kServerIdBase;

  std::vector<Loud*> active_stack_;  // index 0 = top

  std::map<PhoneLineUnit*, TelephoneDevice*> telephone_bindings_;

  std::map<PhysicalDevice*, MixAccumulator> output_acc_;
  size_t current_tick_frames_ = 0;
  std::atomic<int64_t> engine_frame_{0};
  int64_t ticks_run_ = 0;
  bool in_tick_ = false;

  // Epoch machinery (decision 12). `state_mu_` is the server's state lock;
  // epoch_in_flight_ is true exactly while a fan-out runs without it.
  // Structural mutators queue on epoch_cv_ (WaitEngineIdle) and the next
  // epoch open defers to them so a tick storm cannot starve mutation.
  Mutex* state_mu_ = nullptr;
  CondVar epoch_cv_;
  bool epoch_in_flight_ = false;
  int drain_waiters_ = 0;
  // Event buffer for the serial (single-island) fan-out; the parallel path
  // uses island_events_. Flushed at commit in emission order either way.
  std::vector<std::pair<uint32_t, EventMessage>> serial_events_;

  // Traced plays awaiting their first possible mix (NotePlayAccepted).
  // Guarded by the state lock like the epoch machinery above: appended by
  // the dispatcher, drained by EpochCommit once ticks_run_ reaches
  // required_epoch.
  struct PendingMouthToEar {
    uint64_t trace = 0;
    uint64_t root_seq = 0;
    int64_t t_accept_us = 0;
    int64_t required_epoch = 0;
  };
  std::vector<PendingMouthToEar> m2e_pending_;

  // Parallel engine machinery (ConfigureEngine). Scratch containers are
  // members so steady-state ticks stay allocation-free.
  int engine_threads_ = 1;
  std::unique_ptr<EnginePool> engine_pool_;
  std::vector<EngineIsland> islands_;
  EngineIsland serial_island_;
  std::vector<TickOutputs> worker_outputs_;
  std::vector<std::vector<std::pair<uint32_t, EventMessage>>> island_events_;
  std::vector<Sample> resolved_;
  // PartitionIslands scratch.
  std::vector<Loud*> partition_louds_;
  std::vector<VirtualDevice*> partition_devices_;
  std::vector<int> partition_parent_;
  std::vector<int> partition_reps_;
  std::unordered_map<const Loud*, int> partition_index_;
  std::vector<ResourceId> partition_sounds_;
  std::unordered_map<PhysicalDevice*, int> partition_phys_;
  std::unordered_map<ResourceId, int> partition_sound_rep_;

  std::optional<uint32_t> redirect_conn_;

  std::map<std::string, CatalogueSound> catalogue_;
  std::map<std::string, std::vector<uint8_t>> vocabularies_;

  DecodedSoundCache decoded_cache_;

  uint32_t trace_sample_every_ = 0;
  uint32_t connection_loops_ = 0;

  ServerMetrics metrics_;
};

}  // namespace aud

#endif  // SRC_SERVER_SERVER_STATE_H_
