// ServerState: the protocol-object world of one audio server — registry,
// device LOUD, active stack, catalogue, event routing, and the engine tick
// that moves audio. Everything here is called with the server's big lock
// held (by the dispatcher for requests, by the engine for ticks), so the
// state itself is single-threaded by construction, mirroring the paper's
// per-server serialization point for resource arbitration.

#ifndef SRC_SERVER_SERVER_STATE_H_
#define SRC_SERVER_SERVER_STATE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/dsp/mixer_kernel.h"
#include "src/hw/board.h"
#include "src/server/command_queue.h"
#include "src/server/core.h"
#include "src/server/devices.h"
#include "src/server/loud.h"

namespace aud {

// A named catalogue entry (section 5.6: "sounds are grouped into libraries
// or catalogues").
struct CatalogueSound {
  AudioFormat format;
  std::vector<uint8_t> data;
};

class ServerState {
 public:
  // Delivers an event to a connection (index) — wired to the transport by
  // AudioServer, or to a test harness.
  using EventSender =
      std::function<void(uint32_t conn, const EventMessage& event)>;

  // `board` must outlive the state.
  ServerState(Board* board, std::string server_name);
  ~ServerState();

  Board* board() { return board_; }
  const std::string& server_name() const { return server_name_; }
  uint32_t engine_rate() const { return board_->sample_rate_hz(); }
  int64_t engine_frame() const { return engine_frame_; }
  Ticks server_time() const { return SamplesToTicks(engine_frame_, engine_rate()); }

  void set_event_sender(EventSender sender) { event_sender_ = std::move(sender); }

  // -- Registry ---------------------------------------------------------------

  // Registers a new object; fails with kBadIdChoice on collision.
  Status Register(std::unique_ptr<ServerObject> object);

  ServerObject* Find(ResourceId id);
  Loud* FindLoud(ResourceId id);
  VirtualDevice* FindDevice(ResourceId id);
  WireObject* FindWire(ResourceId id);
  SoundObject* FindSound(ResourceId id);

  // Destroys one object (recursively for LOUDs: children, devices, wires).
  Status Destroy(ResourceId id);

  // Destroys everything a disconnected client owned.
  void DestroyConnectionObjects(uint32_t conn);

  size_t object_count() const { return objects_.size(); }

  // -- Device LOUD (section 5.1) -----------------------------------------------

  ResourceId device_loud_root() const { return device_loud_root_; }
  PhysicalDevice* PhysicalForId(ResourceId id);
  ResourceId IdForPhysical(PhysicalDevice* device);
  DeviceLoudReply DescribeDeviceLoud();

  // Hard-wiring rule (section 5.2): when either device belongs to a
  // hard-wired group (speaker-phone), the other must be one of its
  // permanent partners.
  bool HardWireCompatible(PhysicalDevice* a, PhysicalDevice* b);

  // -- Active stack (section 5.4) ------------------------------------------------

  const std::vector<Loud*>& active_stack() const { return active_stack_; }

  Status MapLoud(Loud* loud);
  Status UnmapLoud(Loud* loud);
  Status RaiseLoud(Loud* loud);
  Status LowerLoud(Loud* loud);

  // Walks the stack top-down, activating every LOUD whose resources don't
  // conflict with a higher active LOUD (exclusive domains, telephones).
  void RecomputeActivation();

  // -- Engine -------------------------------------------------------------------

  // One engine tick: run queues/produce/transform/consume for `frames`,
  // then advance the hardware board.
  void Tick(size_t frames);

  // Output mixing: devices add their streams here during Consume; the tick
  // resolves each physical output's accumulator into its codec. This is the
  // transparent mixing of section 6.1.
  void AccumulateOutput(PhysicalDevice* device, std::span<const Sample> samples, int32_t gain);

  // -- Events (section 5.7) --------------------------------------------------------

  // Emits to every connection whose event mask on `loud` includes the
  // event's category.
  void EmitEvent(Loud* loud, EventType type, ResourceId resource, std::vector<uint8_t> args);

  // Emits to subscribers of a device-LOUD entry (e.g. monitoring the
  // telephone while the answering machine is unmapped, section 5.9).
  void EmitDeviceLoudEvent(ResourceId device_loud_id, EventType type,
                           std::vector<uint8_t> args);

  // Phone-line events enter here (wired to each PhoneLineUnit at startup).
  void OnPhoneEvent(PhoneLineUnit* unit, const ExchangeLine::Event& event);

  // Telephone vdev binding registry (who gets line events).
  void BindTelephone(PhoneLineUnit* unit, TelephoneDevice* device);
  void UnbindTelephone(PhoneLineUnit* unit, TelephoneDevice* device);

  // -- Audio manager support (section 5.8) ---------------------------------------

  std::optional<uint32_t> redirect_conn() const { return redirect_conn_; }
  void set_redirect_conn(std::optional<uint32_t> conn) { redirect_conn_ = conn; }

  // -- Catalogue (section 5.6) ------------------------------------------------------

  std::map<std::string, CatalogueSound>& catalogue() { return catalogue_; }
  const CatalogueSound* FindCatalogueSound(const std::string& name) const;

  // Saved recognizer vocabularies (SaveVocabulary / kVocabularyName attr).
  std::map<std::string, std::vector<uint8_t>>& vocabularies() { return vocabularies_; }

  // -- Stats ---------------------------------------------------------------------

  int64_t ticks_run() const { return ticks_run_; }

 private:
  void BuildDeviceLoud();
  void SeedCatalogue();
  bool TryActivate(Loud* loud, const std::set<uint32_t>& exclusive_in,
                   const std::set<uint32_t>& exclusive_out,
                   const std::set<PhysicalDevice*>& claimed_phones,
                   std::vector<std::pair<VirtualDevice*, PhysicalDevice*>>* bindings);
  PhysicalDevice* MatchPhysical(const VirtualDevice& vdev,
                                const std::set<PhysicalDevice*>& claimed_phones);
  void Activate(Loud* loud,
                const std::vector<std::pair<VirtualDevice*, PhysicalDevice*>>& bindings);
  void Deactivate(Loud* loud);

  Board* board_;
  std::string server_name_;
  EventSender event_sender_;

  std::unordered_map<ResourceId, std::unique_ptr<ServerObject>> objects_;

  ResourceId device_loud_root_ = kNoResource;
  std::map<ResourceId, PhysicalDevice*> device_loud_entries_;
  std::map<PhysicalDevice*, ResourceId> physical_ids_;
  ResourceId next_server_id_ = kServerIdBase;

  std::vector<Loud*> active_stack_;  // index 0 = top

  std::map<PhoneLineUnit*, TelephoneDevice*> telephone_bindings_;

  std::map<PhysicalDevice*, std::unique_ptr<MixAccumulator>> output_acc_;
  size_t current_tick_frames_ = 0;
  int64_t engine_frame_ = 0;
  int64_t ticks_run_ = 0;
  bool in_tick_ = false;

  std::optional<uint32_t> redirect_conn_;

  std::map<std::string, CatalogueSound> catalogue_;
  std::map<std::string, std::vector<uint8_t>> vocabularies_;
};

}  // namespace aud

#endif  // SRC_SERVER_SERVER_STATE_H_
