// Request dispatcher: decodes each framed request, validates it against
// the object registry, performs it, and sends replies or asynchronous
// errors (section 4.1's request/reply/error model). Runs with the server
// state lock held.
//
// Epoch coexistence (DESIGN.md decision 12) — each opcode falls in one of
// three classes with respect to a concurrently running engine fan-out:
//   * drain: structural mutation (registry create/destroy, wiring, the
//     active stack, sound data that a recorder may be writing). These call
//     ServerState::WaitEngineIdle() FIRST — before any registry lookup,
//     because the wait releases the state lock and a pointer resolved
//     earlier could dangle by the time the wait returns.
//   * shard: engine-plane requests against one root LOUD (queues, events,
//     sync marks, properties). These take the root's engine shard lock via
//     EngineShardGuard and never wait for the whole epoch.
//   * state-lock only: pure reads of structure that no engine worker
//     mutates (queries, catalogue listing, stats, trace, redirect).

#include <chrono>

#include "src/server/server.h"

namespace aud {

namespace {

// Largest accepted sound (64 MiB): a resource-exhaustion guard.
constexpr uint64_t kMaxSoundBytes = 64ull << 20;

// Serializes one engine-plane request against the tick fan-out by holding
// the target root LOUD's engine shard lock for the scope (taken after the
// state lock; see the rank order in server.h). The device LOUD is special:
// its root is never part of an island, but engine workers read its
// per-connection event masks when emitting device-LOUD events, so requests
// against it drain the epoch instead of taking a shard lock. The analysis
// opt-outs cover the conditional acquisition.
class EngineShardGuard {
 public:
  EngineShardGuard(ServerState* state, ServerMetrics* metrics, Loud* loud)
      AUD_NO_THREAD_SAFETY_ANALYSIS {
    Loud* root = loud->Root();
    if (root->owner() == kServerOwner) {
      state->WaitEngineIdle();
      return;
    }
    Mutex* mu = root->engine_mutex();
    if (mu->TryLock()) {
      locked_ = mu;
      return;
    }
    // The fan-out is ticking this root right now: count the contention and
    // wait it out (bounded by one island run, not the whole epoch).
    metrics->dispatch_shard_contention.Increment();
    const auto wait_t0 = std::chrono::steady_clock::now();
    mu->Lock();
    metrics->lock_wait_us.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_t0)
            .count()));
    locked_ = mu;
  }

  ~EngineShardGuard() AUD_NO_THREAD_SAFETY_ANALYSIS {
    if (locked_ != nullptr) {
      locked_->Unlock();
    }
  }

  EngineShardGuard(const EngineShardGuard&) = delete;
  EngineShardGuard& operator=(const EngineShardGuard&) = delete;

 private:
  Mutex* locked_ = nullptr;
};

ErrorMessage MakeError(ErrorCode code, ResourceId resource, Opcode opcode,
                       std::string detail = {}) {
  ErrorMessage error;
  error.code = code;
  error.resource = resource;
  error.opcode = static_cast<uint16_t>(opcode);
  error.detail = std::move(detail);
  return error;
}

}  // namespace

void AudioServer::HandleRequest(ClientConnection* conn, const FramedMessage& message,
                                std::chrono::steady_clock::time_point received_at,
                                const TraceContext& trace) {
  const uint32_t seq = message.header.sequence;
  const Opcode opcode = static_cast<Opcode>(message.header.code);
  ByteReader r(message.payload);

  // The dispatch switch below is exhaustive over Opcode with no default, so
  // -Werror=switch makes an unwired opcode a compile error; that guarantee
  // only holds if the per-opcode metrics arrays cover the same range.
  static_assert(ServerMetrics::kOpcodes == static_cast<size_t>(Opcode::kOpcodeCount),
                "per-opcode metrics arrays must cover every dispatched opcode");

  // Per-opcode accounting (unknown opcodes only hit the totals).
  ServerMetrics& metrics = state_.metrics();
  const bool known_opcode = message.header.code < ServerMetrics::kOpcodes;
  // Clock dispatch from when the reader thread started queueing for the
  // state lock: dispatch_us = lock wait + handling, so a tick that stalls
  // dispatch shows up here even though the stall happens before the handler.
  const auto dispatch_t0 = received_at;
  metrics.requests_total.Increment();
  conn->stats().requests.Increment();
  if (known_opcode) {
    metrics.requests[message.header.code].Increment();
  }

  // Validates that a client-chosen id lies in the connection's block.
  auto id_ok = [&](ResourceId id) {
    ResourceId base = ClientIdBaseFor(conn->index());
    return id >= base && id < base + kClientIdBlockSize;
  };
  auto send_error = [&](ErrorCode code, ResourceId resource, std::string detail = {}) {
    metrics.request_errors_total.Increment();
    conn->stats().errors.Increment();
    if (known_opcode) {
      metrics.request_errors[message.header.code].Increment();
    }
    obs::Trace(obs::TraceReason::kDispatchError, message.header.code,
               static_cast<uint32_t>(code));
    conn->SendError(seq, MakeError(code, resource, opcode, std::move(detail)),
                    trace.trace_id, trace.root_seq);
  };
  auto send_status = [&](const Status& status, ResourceId resource) {
    if (!status.ok()) {
      send_error(status.code(), resource, status.message());
    }
    return status.ok();
  };
  auto send_reply = [&](const auto& reply) {
    ByteWriter w;
    reply.Encode(&w);
    conn->SendReply(static_cast<uint16_t>(opcode), seq, w.bytes(), trace.trace_id,
                    trace.root_seq);
  };

  // Unknown opcodes are rejected by range before the switch, which lets the
  // switch itself stay default-free (exhaustive under -Werror=switch).
  if (Status request_ok = ValidateRequestHeader(message.header); !request_ok.ok()) {
    send_error(request_ok.code(), kNoResource, request_ok.message());
    metrics.dispatch_us.Record(0);
    obs::Trace(obs::TraceReason::kDispatch, message.header.code, 0);
    return;
  }

  switch (opcode) {
    case Opcode::kNoOp:
      break;

    // -- LOUD tree ---------------------------------------------------------------

    case Opcode::kCreateLoud: {
      state_.WaitEngineIdle();
      CreateLoudReq req = CreateLoudReq::Decode(&r);
      if (!r.ok() || !id_ok(req.id)) {
        send_error(ErrorCode::kBadIdChoice, req.id);
        break;
      }
      Loud* parent = nullptr;
      if (req.parent != kNoResource) {
        parent = state_.FindLoud(req.parent);
        if (parent == nullptr || parent->owner() != conn->index()) {
          send_error(ErrorCode::kBadResource, req.parent, "bad parent LOUD");
          break;
        }
      }
      auto loud = std::make_unique<Loud>(req.id, conn->index(), &state_, parent,
                                         std::move(req.attrs));
      Loud* raw = loud.get();
      if (send_status(state_.Register(std::move(loud)), req.id) && parent != nullptr) {
        parent->AddChild(raw);
      }
      break;
    }

    case Opcode::kDestroyLoud: {
      state_.WaitEngineIdle();
      ResourceReq req = ResourceReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.id);
      if (loud == nullptr || loud->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      if (Status destroyed = state_.Destroy(req.id); !destroyed.ok()) {
        send_error(destroyed.code(), req.id);
        break;
      }
      state_.RecomputeActivation();
      break;
    }

    case Opcode::kCreateVirtualDevice: {
      state_.WaitEngineIdle();
      CreateVirtualDeviceReq req = CreateVirtualDeviceReq::Decode(&r);
      if (!r.ok() || !id_ok(req.id)) {
        send_error(ErrorCode::kBadIdChoice, req.id);
        break;
      }
      Loud* loud = state_.FindLoud(req.loud);
      if (loud == nullptr || loud->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.loud, "bad LOUD for device");
        break;
      }
      if (options_.quota_devices != 0 &&
          state_.CountOwnedDevices(conn->index()) >= options_.quota_devices) {
        metrics.quota_denials.Increment();
        send_error(ErrorCode::kQuotaExceeded, req.id, "device quota exceeded");
        break;
      }
      auto device = CreateVirtualDevice(req.id, conn->index(), req.device_class, loud,
                                        std::move(req.attrs));
      if (device == nullptr) {
        send_error(ErrorCode::kBadValue, req.id, "unknown device class");
        break;
      }
      VirtualDevice* raw = device.get();
      if (send_status(state_.Register(std::move(device)), req.id)) {
        loud->AddDevice(raw);
        if (loud->Root()->mapped()) {
          state_.RecomputeActivation();
        }
      }
      break;
    }

    case Opcode::kDestroyVirtualDevice: {
      state_.WaitEngineIdle();
      ResourceReq req = ResourceReq::Decode(&r);
      VirtualDevice* device = state_.FindDevice(req.id);
      if (device == nullptr || device->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      if (Status destroyed = state_.Destroy(req.id); !destroyed.ok()) {
        send_error(destroyed.code(), req.id);
        break;
      }
      break;
    }

    case Opcode::kAugmentVirtualDevice: {
      state_.WaitEngineIdle();
      AugmentVirtualDeviceReq req = AugmentVirtualDeviceReq::Decode(&r);
      VirtualDevice* device = state_.FindDevice(req.id);
      if (device == nullptr || device->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      device->mutable_attrs().Merge(req.attrs);
      if (device->loud()->Root()->mapped()) {
        state_.RecomputeActivation();
      }
      break;
    }

    case Opcode::kQueryVirtualDevice: {
      ResourceReq req = ResourceReq::Decode(&r);
      VirtualDevice* device = state_.FindDevice(req.id);
      if (device == nullptr) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      VirtualDeviceReply reply;
      reply.id = device->id();
      reply.device_class = device->device_class();
      reply.mapped = device->loud()->Root()->mapped() ? 1 : 0;
      reply.active = device->active() ? 1 : 0;
      reply.bound_device = device->bound_device_id();
      reply.attrs = device->attrs();
      if (device->bound_device() != nullptr) {
        // Include the matched hardware's capabilities (section 5.3).
        reply.attrs.Merge(device->bound_device()->Attributes());
        reply.attrs.SetU32(AttrTag::kDeviceId, device->bound_device_id());
      }
      send_reply(reply);
      break;
    }

    // -- Wires ---------------------------------------------------------------------

    case Opcode::kCreateWire: {
      state_.WaitEngineIdle();
      CreateWireReq req = CreateWireReq::Decode(&r);
      if (!r.ok() || !id_ok(req.id)) {
        send_error(ErrorCode::kBadIdChoice, req.id);
        break;
      }
      VirtualDevice* src = state_.FindDevice(req.src_device);
      VirtualDevice* dst = state_.FindDevice(req.dst_device);
      if (src == nullptr || dst == nullptr) {
        send_error(ErrorCode::kBadResource,
                   src == nullptr ? req.src_device : req.dst_device);
        break;
      }
      if (src->loud()->Root() != dst->loud()->Root()) {
        send_error(ErrorCode::kBadWiring, req.id, "wire crosses LOUD trees");
        break;
      }
      if (req.src_port >= src->source_port_count() ||
          req.dst_port >= dst->sink_port_count()) {
        send_error(ErrorCode::kBadValue, req.id, "no such port");
        break;
      }
      // Hard-wired constraint (section 5.2): if either endpoint is pinned
      // (kDeviceId) to a device in a hard-wired group, the other endpoint,
      // when also pinned, must name one of its permanent partners.
      PhysicalDevice* src_phys = nullptr;
      PhysicalDevice* dst_phys = nullptr;
      if (auto pinned = src->attrs().GetU32(AttrTag::kDeviceId)) {
        src_phys = state_.PhysicalForId(*pinned);
      }
      if (auto pinned = dst->attrs().GetU32(AttrTag::kDeviceId)) {
        dst_phys = state_.PhysicalForId(*pinned);
      }
      if (src_phys != nullptr && dst_phys != nullptr &&
          !state_.HardWireCompatible(src_phys, dst_phys)) {
        send_error(ErrorCode::kBadWiring, req.id,
                   "endpoints are hard-wired to different devices");
        break;
      }

      AudioFormat src_format = src->PortFormat(true, req.src_port);
      AudioFormat dst_format = dst->PortFormat(false, req.dst_port);
      // Wire type checking (section 5.2): endpoint encodings must agree,
      // and an explicitly typed wire must match both ends.
      if (src_format.encoding != dst_format.encoding) {
        send_error(ErrorCode::kBadMatch, req.id, "port encodings differ");
        break;
      }
      if (req.has_format != 0 && req.format.encoding != src_format.encoding) {
        send_error(ErrorCode::kBadMatch, req.id, "wire type does not match ports");
        break;
      }
      AudioFormat wire_format = req.has_format != 0 ? req.format : src_format;
      auto wire = std::make_unique<WireObject>(req.id, conn->index(), src, req.src_port, dst,
                                               req.dst_port, wire_format);
      WireObject* raw = wire.get();
      if (send_status(state_.Register(std::move(wire)), req.id)) {
        src->AttachWire(raw, true);
        dst->AttachWire(raw, false);
      }
      break;
    }

    case Opcode::kDestroyWire: {
      state_.WaitEngineIdle();
      ResourceReq req = ResourceReq::Decode(&r);
      WireObject* wire = state_.FindWire(req.id);
      if (wire == nullptr || wire->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      if (Status destroyed = state_.Destroy(req.id); !destroyed.ok()) {
        send_error(destroyed.code(), req.id);
        break;
      }
      break;
    }

    case Opcode::kQueryWires: {
      ResourceReq req = ResourceReq::Decode(&r);
      VirtualDevice* device = state_.FindDevice(req.id);
      if (device == nullptr) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      WiresReply reply;
      for (WireObject* wire : device->source_wires()) {
        reply.wires.push_back(CompleteWireInfo(*wire));
      }
      for (WireObject* wire : device->sink_wires()) {
        reply.wires.push_back(CompleteWireInfo(*wire));
      }
      send_reply(reply);
      break;
    }

    // -- Mapping and the active stack ----------------------------------------------

    case Opcode::kMapLoud: {
      state_.WaitEngineIdle();
      MapLoudReq req = MapLoudReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.loud);
      // The redirect-holding audio manager may map other clients' LOUDs on
      // their behalf (section 5.8).
      bool is_manager = state_.redirect_conn() == conn->index();
      if (loud == nullptr || (loud->owner() != conn->index() && !is_manager)) {
        send_error(ErrorCode::kBadResource, req.loud);
        break;
      }
      // Audio-manager redirection (section 5.8): the map request is sent
      // to the manager instead of being performed.
      if (state_.redirect_conn().has_value() && *state_.redirect_conn() != conn->index() &&
          req.override_redirect == 0) {
        MapRequestArgs args;
        args.loud = req.loud;
        EventMessage event;
        event.type = EventType::kMapRequest;
        event.resource = req.loud;
        event.server_time = state_.server_time();
        event.args = args.Encode();
        for (auto& c : connections_) {
          if (c->index() == *state_.redirect_conn()) {
            c->SendEvent(event);
          }
        }
        break;
      }
      send_status(state_.MapLoud(loud), req.loud);
      break;
    }

    case Opcode::kUnmapLoud: {
      state_.WaitEngineIdle();
      ResourceReq req = ResourceReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.id);
      if (loud == nullptr || loud->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      send_status(state_.UnmapLoud(loud), req.id);
      break;
    }

    case Opcode::kRaiseLoud:
    case Opcode::kLowerLoud: {
      state_.WaitEngineIdle();
      MapLoudReq req = MapLoudReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.loud);
      bool is_manager = state_.redirect_conn() == conn->index();
      if (loud == nullptr || (loud->owner() != conn->index() && !is_manager)) {
        send_error(ErrorCode::kBadResource, req.loud);
        break;
      }
      if (state_.redirect_conn().has_value() && *state_.redirect_conn() != conn->index() &&
          req.override_redirect == 0) {
        MapRequestArgs args;
        args.loud = req.loud;
        args.raise = opcode == Opcode::kRaiseLoud ? 1 : 0;
        EventMessage event;
        event.type = EventType::kRestackRequest;
        event.resource = req.loud;
        event.server_time = state_.server_time();
        event.args = args.Encode();
        for (auto& c : connections_) {
          if (c->index() == *state_.redirect_conn()) {
            c->SendEvent(event);
          }
        }
        break;
      }
      Status status = opcode == Opcode::kRaiseLoud ? state_.RaiseLoud(loud)
                                                   : state_.LowerLoud(loud);
      send_status(status, req.loud);
      break;
    }

    // -- Sounds --------------------------------------------------------------------

    case Opcode::kCreateSound: {
      state_.WaitEngineIdle();
      CreateSoundReq req = CreateSoundReq::Decode(&r);
      if (!r.ok() || !id_ok(req.id)) {
        send_error(ErrorCode::kBadIdChoice, req.id);
        break;
      }
      if (req.format.sample_rate_hz == 0) {
        send_error(ErrorCode::kBadValue, req.id, "zero sample rate");
        break;
      }
      send_status(
          state_.Register(std::make_unique<SoundObject>(req.id, conn->index(), req.format)),
          req.id);
      break;
    }

    case Opcode::kDestroySound: {
      state_.WaitEngineIdle();
      ResourceReq req = ResourceReq::Decode(&r);
      SoundObject* sound = state_.FindSound(req.id);
      if (sound == nullptr || sound->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      if (Status destroyed = state_.Destroy(req.id); !destroyed.ok()) {
        send_error(destroyed.code(), req.id);
        break;
      }
      break;
    }

    case Opcode::kWriteSoundData: {
      state_.WaitEngineIdle();
      WriteSoundDataReq req = WriteSoundDataReq::Decode(&r);
      SoundObject* sound = state_.FindSound(req.id);
      if (sound == nullptr || !r.ok()) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      if (req.offset + req.data.size() > kMaxSoundBytes) {
        send_error(ErrorCode::kAlloc, req.id, "sound too large");
        break;
      }
      const uint64_t end = req.offset + req.data.size();
      const uint64_t growth = end > sound->size_bytes() ? end - sound->size_bytes() : 0;
      if (options_.quota_sound_bytes != 0 && growth > 0 &&
          state_.CountOwnedSoundBytes(sound->owner()) + growth >
              options_.quota_sound_bytes) {
        metrics.quota_denials.Increment();
        send_error(ErrorCode::kQuotaExceeded, req.id, "sound byte quota exceeded");
        break;
      }
      sound->Write(req.offset, req.data);
      break;
    }

    case Opcode::kReadSoundData: {
      // Drain, not shard: an active recorder writes into the sound from the
      // fan-out, and its LOUD need not be the one named here.
      state_.WaitEngineIdle();
      ReadSoundDataReq req = ReadSoundDataReq::Decode(&r);
      SoundObject* sound = state_.FindSound(req.id);
      if (sound == nullptr) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      SoundDataReply reply;
      reply.id = req.id;
      reply.offset = req.offset;
      reply.data = sound->Read(req.offset, req.length);
      send_reply(reply);
      break;
    }

    case Opcode::kQuerySound: {
      state_.WaitEngineIdle();
      ResourceReq req = ResourceReq::Decode(&r);
      SoundObject* sound = state_.FindSound(req.id);
      if (sound == nullptr) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      SoundInfoReply reply;
      reply.id = req.id;
      reply.format = sound->format();
      reply.size_bytes = sound->size_bytes();
      reply.samples = static_cast<uint64_t>(sound->sample_count());
      send_reply(reply);
      break;
    }

    case Opcode::kLoadCatalogueSound: {
      state_.WaitEngineIdle();
      NamedSoundReq req = NamedSoundReq::Decode(&r);
      if (!r.ok() || !id_ok(req.id)) {
        send_error(ErrorCode::kBadIdChoice, req.id);
        break;
      }
      const CatalogueSound* entry = state_.FindCatalogueSound(req.name);
      if (entry == nullptr) {
        send_error(ErrorCode::kBadName, req.id, "no catalogue sound: " + req.name);
        break;
      }
      if (options_.quota_sound_bytes != 0 &&
          state_.CountOwnedSoundBytes(conn->index()) + entry->data.size() >
              options_.quota_sound_bytes) {
        metrics.quota_denials.Increment();
        send_error(ErrorCode::kQuotaExceeded, req.id, "sound byte quota exceeded");
        break;
      }
      auto sound = std::make_unique<SoundObject>(req.id, conn->index(), entry->format);
      sound->Write(0, entry->data);
      send_status(state_.Register(std::move(sound)), req.id);
      break;
    }

    case Opcode::kSaveCatalogueSound: {
      state_.WaitEngineIdle();
      NamedSoundReq req = NamedSoundReq::Decode(&r);
      SoundObject* sound = state_.FindSound(req.id);
      if (sound == nullptr) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      if (req.name.empty()) {
        send_error(ErrorCode::kBadName, req.id, "empty catalogue name");
        break;
      }
      CatalogueSound entry;
      entry.format = sound->format();
      entry.data = sound->data();
      state_.catalogue()[req.name] = std::move(entry);
      break;
    }

    case Opcode::kListCatalogue: {
      CatalogueReply reply;
      for (const auto& [name, entry] : state_.catalogue()) {
        CatalogueEntry item;
        item.name = name;
        item.format = entry.format;
        item.size_bytes = entry.data.size();
        reply.entries.push_back(std::move(item));
      }
      send_reply(reply);
      break;
    }

    // -- Command queues -------------------------------------------------------------

    case Opcode::kEnqueueCommands: {
      EnqueueCommandsReq req = EnqueueCommandsReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.loud);
      if (loud == nullptr || loud->owner() != conn->index() || !r.ok()) {
        send_error(ErrorCode::kBadResource, req.loud);
        break;
      }
      EngineShardGuard shard(&state_, &metrics, loud);
      const bool already_started = loud->queue()->state() == QueueState::kStarted;
      if (send_status(loud->queue()->Enqueue(req.commands), req.loud) &&
          already_started && trace.trace_id != 0) {
        // Commands landing on a running queue feed the next epoch directly:
        // start the mouth-to-ear clock here (mirrors kStartQueue below).
        state_.NotePlayAccepted(trace.trace_id, trace.root_seq);
      }
      break;
    }

    case Opcode::kImmediateCommand: {
      ImmediateCommandReq req = ImmediateCommandReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.loud);
      if (loud == nullptr || loud->owner() != conn->index() || !r.ok()) {
        send_error(ErrorCode::kBadResource, req.loud);
        break;
      }
      if (IsQueuedOnlyCommand(req.command.command)) {
        send_error(ErrorCode::kBadValue, req.loud,
                   "command is queued-mode only (section 5.1)");
        break;
      }
      EngineShardGuard shard(&state_, &metrics, loud);
      VirtualDevice* device = state_.FindDevice(req.command.device);
      if (device == nullptr || device->loud()->Root() != loud->Root()) {
        send_error(ErrorCode::kBadResource, req.command.device);
        break;
      }
      send_status(device->ImmediateCommand(req.command), req.command.device);
      break;
    }

    case Opcode::kStartQueue:
    case Opcode::kStopQueue:
    case Opcode::kPauseQueue:
    case Opcode::kResumeQueue:
    case Opcode::kFlushQueue: {
      ResourceReq req = ResourceReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.id);
      if (loud == nullptr || loud->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      EngineShardGuard shard(&state_, &metrics, loud);
      CommandQueue* queue = loud->queue();
      // Concurrent-play quota: only a Start that actually brings a stopped
      // queue to life consumes a slot (re-starting a started queue is an
      // error further down, and pause/resume keep the slot they hold).
      if (opcode == Opcode::kStartQueue && options_.quota_plays != 0 &&
          queue->state() == QueueState::kStopped &&
          state_.CountRunningQueues(conn->index()) >= options_.quota_plays) {
        metrics.quota_denials.Increment();
        send_error(ErrorCode::kQuotaExceeded, req.id, "concurrent play quota exceeded");
        break;
      }
      Status status;
      switch (opcode) {
        case Opcode::kStartQueue:
          status = queue->Start(nullptr);
          break;
        case Opcode::kStopQueue:
          status = queue->Stop(nullptr);
          break;
        case Opcode::kPauseQueue:
          status = queue->ClientPause(nullptr);
          break;
        case Opcode::kResumeQueue:
          status = queue->Resume(nullptr);
          break;
        default:
          queue->Flush();
          break;
      }
      if (send_status(status, req.id) && opcode == Opcode::kStartQueue &&
          trace.trace_id != 0) {
        // Mouth-to-ear (ISSUE: play accept -> first mixed frame): the accept
        // timestamp is now; EpochCommit records the latency when the first
        // epoch that can mix this queue commits.
        state_.NotePlayAccepted(trace.trace_id, trace.root_seq);
      }
      break;
    }

    case Opcode::kQueryQueue: {
      ResourceReq req = ResourceReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.id);
      if (loud == nullptr) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      EngineShardGuard shard(&state_, &metrics, loud);
      QueueStateReply reply;
      reply.loud = loud->Root()->id();
      reply.state = loud->queue()->state();
      reply.depth = loud->queue()->Depth();
      reply.current_tag = loud->queue()->CurrentTag();
      send_reply(reply);
      break;
    }

    // -- Events ----------------------------------------------------------------------

    case Opcode::kSelectEvents: {
      SelectEventsReq req = SelectEventsReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.resource);
      if (loud == nullptr) {
        send_error(ErrorCode::kBadResource, req.resource);
        break;
      }
      EngineShardGuard shard(&state_, &metrics, loud);
      if (req.mask == 0) {
        loud->event_masks().erase(conn->index());
      } else {
        loud->event_masks()[conn->index()] = req.mask;
      }
      break;
    }

    case Opcode::kSetSyncMarks: {
      SetSyncMarksReq req = SetSyncMarksReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.loud);
      if (loud == nullptr || loud->owner() != conn->index()) {
        send_error(ErrorCode::kBadResource, req.loud);
        break;
      }
      EngineShardGuard shard(&state_, &metrics, loud);
      loud->set_sync_interval_ms(req.interval_ms);
      break;
    }

    // -- Properties and redirection ---------------------------------------------------

    case Opcode::kChangeProperty: {
      ChangePropertyReq req = ChangePropertyReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.resource);
      if (loud == nullptr || !r.ok()) {
        send_error(ErrorCode::kBadResource, req.resource);
        break;
      }
      EngineShardGuard shard(&state_, &metrics, loud);
      loud->properties()[req.name] = Property{req.type, req.value};
      PropertyNotifyArgs args;
      args.name = req.name;
      args.deleted = 0;
      state_.EmitEvent(loud, EventType::kPropertyNotify, req.resource, args.Encode());
      break;
    }

    case Opcode::kDeleteProperty: {
      NamedPropertyReq req = NamedPropertyReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.resource);
      if (loud == nullptr) {
        send_error(ErrorCode::kBadResource, req.resource);
        break;
      }
      EngineShardGuard shard(&state_, &metrics, loud);
      if (loud->properties().erase(req.name) > 0) {
        PropertyNotifyArgs args;
        args.name = req.name;
        args.deleted = 1;
        state_.EmitEvent(loud, EventType::kPropertyNotify, req.resource, args.Encode());
      }
      break;
    }

    case Opcode::kGetProperty: {
      NamedPropertyReq req = NamedPropertyReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.resource);
      if (loud == nullptr) {
        send_error(ErrorCode::kBadResource, req.resource);
        break;
      }
      PropertyReply reply;
      reply.resource = req.resource;
      reply.name = req.name;
      auto it = loud->properties().find(req.name);
      if (it != loud->properties().end()) {
        reply.found = 1;
        reply.type = it->second.type;
        reply.value = it->second.value;
      }
      send_reply(reply);
      break;
    }

    case Opcode::kListProperties: {
      ResourceReq req = ResourceReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.id);
      if (loud == nullptr) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      PropertyListReply reply;
      for (const auto& [name, value] : loud->properties()) {
        reply.names.push_back(name);
      }
      send_reply(reply);
      break;
    }

    case Opcode::kSetRedirect: {
      SetRedirectReq req = SetRedirectReq::Decode(&r);
      if (req.enable != 0) {
        if (state_.redirect_conn().has_value() &&
            *state_.redirect_conn() != conn->index()) {
          send_error(ErrorCode::kDeviceBusy, kNoResource,
                     "another audio manager holds redirection");
          break;
        }
        state_.set_redirect_conn(conn->index());
      } else if (state_.redirect_conn() == conn->index()) {
        state_.set_redirect_conn(std::nullopt);
      }
      break;
    }

    // -- Introspection -----------------------------------------------------------------

    case Opcode::kQueryDeviceLoud:
      send_reply(state_.DescribeDeviceLoud());
      break;

    case Opcode::kQueryActiveStack: {
      ActiveStackReply reply;
      for (Loud* loud : state_.active_stack()) {
        ActiveStackEntry entry;
        entry.loud = loud->id();
        entry.active = loud->active() ? 1 : 0;
        reply.entries.push_back(entry);
      }
      send_reply(reply);
      break;
    }

    case Opcode::kGetServerTime: {
      ServerTimeReply reply;
      reply.server_time = state_.server_time();
      send_reply(reply);
      break;
    }

    case Opcode::kSync: {
      // Round-trip no-op: the reply is the synchronization point.
      ServerTimeReply reply;
      reply.server_time = state_.server_time();
      send_reply(reply);
      break;
    }

    case Opcode::kGetServerStats: {
      GetServerStatsReq req = GetServerStatsReq::Decode(&r);
      send_reply(state_.BuildServerStats(req.include_opcodes != 0));
      break;
    }

    case Opcode::kGetServerTrace: {
      GetServerTraceReq req = GetServerTraceReq::Decode(&r);
      // Each per-thread ring carries its own mutex (see obs.h), so this
      // snapshot is safe against engine workers still tracing mid-fan-out —
      // the tick no longer runs under the state lock.
      size_t max_events = req.max_events == 0 ? obs::TraceRing::kCapacity : req.max_events;
      ServerTraceReply reply;
      for (const obs::TraceEvent& e :
           obs::TraceRegistry::Instance().Snapshot(max_events)) {
        TraceEventWire wire;
        wire.t_us = e.t_us;
        wire.seq = e.seq;
        wire.tid = e.tid;
        wire.reason = static_cast<uint16_t>(e.reason);
        wire.arg0 = e.arg0;
        wire.arg1 = e.arg1;
        wire.trace = e.trace;
        wire.parent = e.parent;
        wire.dur_us = e.dur_us;
        reply.events.push_back(wire);
      }
      send_reply(reply);
      break;
    }

    case Opcode::kGetRequestTrace: {
      GetRequestTraceReq req = GetRequestTraceReq::Decode(&r);
      // trace_id 0 asks for the most recently sampled request — the common
      // interactive path ("show me a trace") without guessing ids.
      const uint64_t want = req.trace_id != 0
                                ? req.trace_id
                                : metrics.last_trace_id.load(std::memory_order_relaxed);
      const size_t max_spans =
          req.max_spans == 0 ? obs::TraceRing::kCapacity : req.max_spans;
      RequestTraceReply reply;
      reply.trace_id = want;
      if (want != 0) {
        for (const obs::TraceEvent& e : obs::TraceRegistry::Instance().Snapshot(0)) {
          if (e.trace != want) {
            continue;
          }
          if (reply.spans.size() >= max_spans) {
            break;
          }
          TraceEventWire wire;
          wire.t_us = e.t_us;
          wire.seq = e.seq;
          wire.tid = e.tid;
          wire.reason = static_cast<uint16_t>(e.reason);
          wire.arg0 = e.arg0;
          wire.arg1 = e.arg1;
          wire.trace = e.trace;
          wire.parent = e.parent;
          wire.dur_us = e.dur_us;
          reply.spans.push_back(wire);
        }
      }
      send_reply(reply);
      break;
    }

    case Opcode::kGetEntityStats: {
      GetEntityStatsReq req = GetEntityStatsReq::Decode(&r);
      EntityStatsReply reply;
      // connections_ is guarded by the state lock, which dispatch holds;
      // the per-connection counters themselves are lock-free atomics, so
      // the reader/writer threads of other clients keep running.
      for (const auto& c : connections_) {
        if (c->finished()) {
          continue;
        }
        ConnectionStatsWire wire;
        wire.index = c->index();
        wire.name = c->client_name();
        wire.requests = c->stats().requests.value();
        wire.errors = c->stats().errors.value();
        wire.bytes_in = c->stats().bytes_in.value();
        wire.bytes_out = c->stats().bytes_out.value();
        wire.events_sent = c->stats().events_sent.value();
        wire.events_dropped = c->events_dropped();
        wire.dispatch_us = c->stats().dispatch_us.Snapshot();
        reply.connections.push_back(std::move(wire));
      }
      if (req.include_devices != 0) {
        state_.AppendDeviceStats(&reply);
      }
      send_reply(reply);
      break;
    }

    case Opcode::kQueryLoud: {
      ResourceReq req = ResourceReq::Decode(&r);
      Loud* loud = state_.FindLoud(req.id);
      if (loud == nullptr) {
        send_error(ErrorCode::kBadResource, req.id);
        break;
      }
      LoudStateReply reply;
      reply.loud = loud->id();
      reply.parent = loud->parent() != nullptr ? loud->parent()->id() : kNoResource;
      reply.mapped = loud->Root()->mapped() ? 1 : 0;
      reply.active = loud->active() ? 1 : 0;
      reply.children = static_cast<uint32_t>(loud->children().size());
      reply.devices = static_cast<uint32_t>(loud->devices().size());
      send_reply(reply);
      break;
    }

    case Opcode::kOpcodeCount:
      break;  // unreachable: rejected by the range check above
  }

  const uint64_t dispatch_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - dispatch_t0)
          .count());
  metrics.dispatch_us.Record(dispatch_us);
  conn->stats().dispatch_us.Record(dispatch_us);
  if (known_opcode) {
    metrics.opcode_us[message.header.code].Increment(dispatch_us);
  }
  obs::Trace(obs::TraceReason::kDispatch, message.header.code,
             static_cast<uint32_t>(dispatch_us));
  if (trace.trace_id != 0) {
    // Dispatch span: lock wait + handling, backdated to when the reader
    // started queueing for the state lock (same window dispatch_us clocks).
    auto& tracer = obs::TraceRegistry::Instance();
    const int64_t now_us = tracer.NowUs();
    tracer.Span(obs::TraceReason::kSpanDispatch, trace.trace_id, trace.root_seq,
                now_us - static_cast<int64_t>(dispatch_us),
                static_cast<uint32_t>(dispatch_us), message.header.code);
    metrics.trace_spans.Increment();
  }
}

}  // namespace aud
