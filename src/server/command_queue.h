// Command queues (section 5.5): sequential processing of device commands
// inside the server, without client round trips, with the CoBegin/CoEnd/
// Delay/DelayEnd synchronization pseudo-commands ("not a programming
// language ... no conditionals or branches").
//
// Gapless transitions: the queue is ticked with a frame budget; when a
// producing command (Play) finishes mid-tick, the next command starts
// immediately and produces the remainder of the budget, so back-to-back
// plays are sample-accurate ("without a single dropped or inserted
// sample", section 6.2). This is the engine-side realization of the
// paper's pre-issued commands: completion is accounted in device frames,
// never server CPU time (footnote 8).

#ifndef SRC_SERVER_COMMAND_QUEUE_H_
#define SRC_SERVER_COMMAND_QUEUE_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/server/core.h"
#include "src/server/virtual_device.h"

namespace aud {

class Loud;

class CommandQueue {
 public:
  explicit CommandQueue(Loud* loud) : loud_(loud) {}

  QueueState state() const { return state_; }

  // Parses and appends commands (CoBegin/Delay build nested structure).
  // Errors on malformed nesting (CoEnd without CoBegin, etc.).
  Status Enqueue(const std::vector<CommandSpec>& commands);

  // Control requests.
  Status Start(EngineTick* tick);
  Status Stop(EngineTick* tick);            // Aborts the current command.
  Status ClientPause(EngineTick* tick);     // client-paused state
  Status Resume(EngineTick* tick);
  void Flush();                             // Drops all queued commands.

  // Server-side pause/resume driven by LOUD deactivation (section 5.5:
  // "if a LOUD is made inactive while processing a command, the server
  // pauses the queue"; reactivation auto-resumes).
  void ServerPause(EngineTick* tick);
  void ServerResume(EngineTick* tick);

  // Advances the queue by up to `frames` frames. Called once per engine
  // tick while the LOUD is active and the queue is started.
  void Tick(EngineTick* tick, size_t frames);

  // Commands waiting or running.
  uint32_t Depth() const;

  // Island partitioning support: appends the sound ids referenced by every
  // queued (not-yet-finished) Play/Record/Train command, so a command that
  // starts mid-tick inside a worker never reads or writes a sound another
  // island is touching.
  void CollectSoundIds(std::vector<ResourceId>* out) const;

  // Tag of the command currently in flight (0 when idle).
  uint32_t CurrentTag() const;

  // Drops every reference to `device` from the program. Called when the
  // device is destroyed while the queue still exists (e.g. a child LOUD
  // torn down before its root on connection teardown); a started command
  // on the device is marked aborted/done so the queue skips past it.
  void ForgetDevice(const VirtualDevice* device);

 private:
  struct Node {
    enum class Kind : uint8_t { kCommand, kCo, kDelay };
    Kind kind = Kind::kCommand;
    CommandSpec spec;        // kCommand
    uint32_t delay_ms = 0;   // kDelay
    std::vector<std::unique_ptr<Node>> children;  // kCo branches / kDelay body

    // Execution state.
    bool started = false;
    bool done = false;
    bool aborted = false;
    VirtualDevice* device = nullptr;
    size_t child_index = 0;       // kDelay sequential body position
    int64_t delay_frames_left = -1;
  };

  // Returns frames consumed; marks node->done when complete.
  size_t TickNode(Node* node, EngineTick* tick, size_t frames);
  size_t TickCommand(Node* node, EngineTick* tick, size_t frames);

  void StartCommandNode(Node* node, EngineTick* tick);
  void FinishCommandNode(Node* node, EngineTick* tick);
  void AbortNode(Node* node, EngineTick* tick);
  void PausePropagate(Node* node, bool* pausable);
  void ResumePropagate(Node* node);
  static uint32_t CountNodes(const Node& node);
  static uint32_t FirstTag(const Node& node);
  static void CollectNodeSounds(const Node& node, std::vector<ResourceId>* out);
  static void ForgetNodeDevice(Node* node, const VirtualDevice* device);

  void SetState(QueueState state, EngineTick* tick, bool server_initiated);

  Loud* loud_;
  QueueState state_ = QueueState::kStopped;
  std::deque<std::unique_ptr<Node>> program_;
  // Parse stack for incremental CoBegin/Delay nesting.
  std::vector<Node*> parse_stack_;
};

}  // namespace aud

#endif  // SRC_SERVER_COMMAND_QUEUE_H_
