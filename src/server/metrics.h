// ServerMetrics: the one aggregate of every aud::obs counter, gauge and
// histogram the server maintains. Owned by ServerState and snapshotted into
// a ServerStatsReply under the big lock (GetServerStats).
//
// Thread-safety contract: counters and gauges are relaxed atomics, so any
// thread (reader threads counting transport bytes, engine workers, the
// dispatcher) may bump them without holding the state lock. Histograms are
// built entirely from relaxed atomics too: recording needs no lock (reader
// threads record lock_wait_us while they are *waiting* for the state lock,
// and the tick thread records epoch/tick timings inside its commit
// section), and a snapshot taken concurrently never tears a bucket. See
// DESIGN.md ("Observability and thread safety").

#ifndef SRC_SERVER_METRICS_H_
#define SRC_SERVER_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "src/common/obs.h"
#include "src/wire/protocol.h"

namespace aud {

struct ServerMetrics {
  static constexpr size_t kOpcodes = static_cast<size_t>(Opcode::kOpcodeCount);

  // -- Request dispatch (per opcode, indexed by Opcode value) ----------------
  obs::Counter requests[kOpcodes];
  obs::Counter request_errors[kOpcodes];
  obs::Counter opcode_us[kOpcodes];  // cumulative dispatch time per opcode
  obs::Counter requests_total;       // includes unknown opcodes
  obs::Counter request_errors_total;
  obs::LatencyHistogram dispatch_us;

  // -- Engine tick -----------------------------------------------------------
  obs::LatencyHistogram tick_us;         // tick body duration
  obs::LatencyHistogram tick_jitter_us;  // realtime wakeup lateness
  obs::LatencyHistogram islands_per_tick;
  obs::LatencyHistogram worker_imbalance;  // max-min islands per worker slot
  obs::Counter tick_overruns;              // tick body exceeded the period

  // -- Epoch / lock instrumentation (DESIGN.md decision 12) -------------------
  obs::LatencyHistogram lock_wait_us;     // reader wait for the state lock or
                                          // a contended dispatch shard lock
  obs::LatencyHistogram epoch_commit_us;  // tick-boundary commit critical section
  obs::Counter epoch_commits;             // epochs published (== completed ticks)
  obs::Counter dispatch_shard_contention;  // shard TryLock misses in dispatch

  // -- Connections and transport --------------------------------------------
  obs::Gauge connections_open;
  obs::Counter connections_total;
  obs::Counter bytes_in;
  obs::Counter bytes_out;
  obs::Counter events_sent;     // counted at successful enqueue, not write
  obs::Counter events_dropped;  // egress overflow, drop-oldest-events policy
  obs::Counter egress_disconnects;  // slow clients cut off by overflow policy
  obs::Gauge egress_queued_bytes;   // sum of all connections' egress backlogs
  obs::Counter accept_retries;      // transient accept(2) failures retried

  // -- Event-loop connection plane (DESIGN.md decision 14) -------------------
  obs::Counter epoll_waits;         // wait syscalls across all loops
  obs::Counter loop_wakeups;        // self-pipe wakeups consumed by loops
  obs::Counter readiness_spurious;  // readiness that yielded no work
  obs::Gauge fds_watched;           // fds currently registered with loops
  obs::LatencyHistogram loop_dispatch_us;  // one readiness handler run

  // -- Decoded-PCM cache -----------------------------------------------------
  obs::Counter decoded_cache_hits;
  obs::Counter decoded_cache_misses;
  obs::Counter decoded_cache_evictions;
  obs::Gauge decoded_cache_bytes;

  // -- Request tracing (DESIGN.md decision 13) -------------------------------
  obs::LatencyHistogram mouth_to_ear_us;  // play accept -> first mixed frame
  obs::Counter trace_spans;               // request-scoped spans recorded
  obs::Counter trace_requests_sampled;    // requests that got a root span
  std::atomic<uint64_t> last_trace_id{0}; // most recent sampled trace id

  // -- Overload protection (DESIGN.md decision 15) ---------------------------
  obs::Counter admission_rejects;        // connections closed at accept time
  obs::Counter rate_limited;             // requests refused by a token bucket
  obs::Counter rate_limit_disconnects;   // flooders cut by the hard policy
  obs::Counter quota_denials;            // requests refused by a client quota
  obs::Gauge draining;                   // 1 while a graceful drain runs
  obs::Counter drain_forced_closes;      // unflushed conns cut at the deadline
  obs::Gauge drain_duration_ms;          // wall time of the last drain

  // -- Command queues --------------------------------------------------------
  obs::Counter commands_enqueued;
  obs::Counter commands_done;
  obs::Counter commands_aborted;
  obs::Counter queue_events;  // queue-category events emitted

  std::chrono::steady_clock::time_point start_time =
      std::chrono::steady_clock::now();

  uint64_t uptime_ms() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                     std::chrono::steady_clock::now() - start_time)
                                     .count());
  }
};

}  // namespace aud

#endif  // SRC_SERVER_METRICS_H_
