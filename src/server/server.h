// AudioServer: the composed server process — connection manager, request
// dispatcher and engine pump around a ServerState. One server controls one
// workstation's audio hardware (section 4.1).
//
// Threading (section 6.1's thread inventory, adapted):
//   * the connection-manager thread accepts TCP connections;
//   * one reader thread per client connection parses and dispatches
//     requests;
//   * the engine thread (realtime mode) pumps the board every period;
//   * with ServerOptions::engine_threads > 1, a persistent EnginePool of
//     engine workers runs the tick's produce/transform/consume phases
//     island-parallel (see server_state.h for the island partition and
//     the bit-identical merge-order guarantee).
// All protocol *mutation* is serialized by one state lock; reader threads
// take it per message. The engine tick does NOT hold it across the fan-out
// (DESIGN.md decision 12): Tick() takes the lock only for the short epoch
// open (island-partition snapshot) and epoch commit (merge, event flush,
// codec resolve, board advance) critical sections. During the fan-out each
// island job holds its root LOUDs' engine shard locks (Loud::engine_mutex()),
// which is what serializes it against engine-plane requests on those roots;
// structural requests (create/destroy/rewire/activate/sound data) wait for
// the epoch boundary via ServerState::WaitEngineIdle(). Lock rank: state
// lock -> root engine locks (ascending id) -> leaf locks.
//
// Time can instead be driven manually with StepFrames() for deterministic
// tests and virtual-time benches.

#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/server/connection.h"
#include "src/server/server_state.h"
#include "src/transport/event_loop.h"
#include "src/transport/fault_stream.h"
#include "src/transport/socket_stream.h"
#include "src/transport/stream.h"

namespace aud {

// What to do with a request that exceeds the connection's token-bucket
// rate (DESIGN.md decision 15). Soft answers `kRateLimited` and keeps the
// connection; hard disconnects the flooder outright.
enum class RateLimitPolicy : uint8_t { kSoft, kHard };

struct ServerOptions {
  std::string name = "netaudio";
  // Engine period in frames at the board rate (160 = 20 ms at 8 kHz).
  size_t period_frames = 160;
  // Engine tick parallelism (total workers including the tick thread).
  // 1 = the serial engine (default; deterministic-by-construction for
  // tests). N > 1 ticks independent islands of the active graph
  // concurrently; output is bit-identical to serial either way.
  int engine_threads = 1;
  // Byte budget for the decoded-PCM cache (linear samples already resampled
  // to the engine rate, keyed by sound generation). 0 disables caching and
  // every Play decodes incrementally. 8 MiB holds ~8.7 minutes of 8 kHz
  // audio — plenty for a prompt catalogue.
  size_t decoded_cache_bytes = 8 * 1024 * 1024;
  // Per-connection outbound byte budget and what to do when a slow client
  // fills it (DESIGN.md decision 11). Replies/errors are never dropped;
  // kDropEvents sheds oldest events first and disconnects only when the
  // reply backlog alone exceeds the budget.
  size_t egress_buffer_bytes = kDefaultEgressBudgetBytes;
  EgressOverflowPolicy egress_overflow = EgressOverflowPolicy::kDropEvents;
  // Server-side transport fault injection for chaos tests: every accepted
  // stream is wrapped in a per-connection seeded FaultStream. Disabled by
  // default; the AUD_FAULT env spec applies when this is not set.
  FaultOptions fault;
  // Request-trace sampling period: every Nth request per connection gets a
  // root span and request-scoped child spans down the audio path (DESIGN.md
  // decision 13). 0 disables tracing entirely (the default) — the hot path
  // then pays only one integer increment per request.
  uint32_t trace_sample_every = 0;
  // Event-loop connection plane (DESIGN.md decision 14): number of loop
  // threads sharing all pollable connections, sharded by fd hash. 0 keeps
  // the legacy thread-per-connection mode (one reader + one writer thread
  // per client); non-pollable transports (in-process pipes) always use the
  // legacy mode regardless.
  uint32_t connection_threads = 0;
  // Edge-triggered epoll readiness for the loops (level-triggered default).
  bool loop_edge_triggered = false;
  // Force the portable poll(2) backend even where epoll is available
  // (fallback-path test coverage).
  bool loop_use_poll = false;
  // -- Overload protection (DESIGN.md decision 15). Zero disables each
  // limit; all limits are per connection except max_connections.
  // Admission control: connections beyond this are politely closed at
  // accept time (counted in admission_rejects), on both planes.
  size_t max_connections = 0;
  // Token-bucket rate limits checked in the reader before dispatch:
  // requests per second and ingress bytes per second, each with a burst
  // capacity (0 = one second's worth of the rate).
  uint32_t limit_rps = 0;
  uint32_t limit_rps_burst = 0;
  uint64_t limit_bps = 0;
  uint64_t limit_bps_burst = 0;
  RateLimitPolicy limit_policy = RateLimitPolicy::kSoft;
  // Per-client resource quotas enforced in the dispatcher with
  // kQuotaExceeded: live virtual devices, stored sound bytes, and
  // concurrent plays/records (started command queues) per connection.
  uint32_t quota_devices = 0;
  uint64_t quota_sound_bytes = 0;
  uint32_t quota_plays = 0;
};

// Sampling decision for one request, made by the reader thread before it
// queues for the state lock and threaded through dispatch so every span the
// request produces shares one trace id and hangs off one root span.
// trace_id == 0 means "not sampled" everywhere.
struct TraceContext {
  uint64_t trace_id = 0;  // (client id-base << 32) | request sequence
  uint64_t root_seq = 0;  // pre-reserved seq of the root kSpanRequest span
};

class AudioServer {
 public:
  // `board` must outlive the server.
  explicit AudioServer(Board* board);
  AudioServer(Board* board, ServerOptions options);
  ~AudioServer();

  AudioServer(const AudioServer&) = delete;
  AudioServer& operator=(const AudioServer&) = delete;

  // -- Connections -------------------------------------------------------------

  // Adopts an in-process transport endpoint (the other end goes to an
  // Alib client). Spawns the reader thread.
  void AddConnection(std::unique_ptr<ByteStream> stream);

  // Starts the connection-manager thread on 127.0.0.1:`port` (0 for an
  // ephemeral port). Returns false if the bind failed.
  bool ListenTcp(uint16_t port);
  uint16_t tcp_port() const { return listener_.port(); }

  // Direct listener access for tests (errno injection, retry counters).
  SocketListener& listener_for_test() { return listener_; }

  size_t connection_count();

  // -- Time ---------------------------------------------------------------------

  // Manual time: advances the engine by `frames` (in whole periods; a
  // trailing partial period is run as its own smaller tick). Must not be
  // mixed with StartRealtime.
  void StepFrames(int64_t frames);

  // Realtime mode: an engine thread pumps one period every period-length
  // of wall time.
  void StartRealtime();
  void StopRealtime();
  bool realtime() const { return engine_running_; }

  // -- Introspection ----------------------------------------------------------------

  // The state lock; tests take it around direct state() access.
  Mutex& mutex() AUD_RETURN_CAPABILITY(mu_) { return mu_; }
  ServerState& state() AUD_REQUIRES(mu_) { return state_; }
  const ServerOptions& options() const { return options_; }

  // Stops all threads and closes all connections.
  void Shutdown();

  // Graceful drain (DESIGN.md decision 15): stop accepting, keep answering
  // in-flight requests, wait for every connection's egress backlog to flush
  // (bounded by `deadline`), hang up any off-hook telephone lines, then
  // Shutdown. Returns true when every backlog flushed inside the deadline;
  // false when the deadline expired and connections with unflushed egress
  // were forced closed (counted in drain_forced_closes).
  bool Drain(std::chrono::milliseconds deadline);
  bool draining() const { return draining_.load(); }

  // Destroys connections whose reader/loop finished teardown. AddConnection
  // already prunes on every accept; this is the timed sweep for an
  // otherwise idle server (called ~1/s by the realtime engine thread), so
  // a dead client's memory and fds never linger until the next accept.
  void ReapFinishedConnections();

  // Connection objects still held (live + finished-but-unreaped).
  size_t connection_objects_for_test();

  // Number of event-loop threads actually running (0 in legacy mode).
  size_t connection_loops() const { return loops_.size(); }

 private:
  void ReaderLoop(ClientConnection* conn);
  void AcceptLoop();
  void EngineLoop();

  // Shared per-message dispatch body: byte accounting aside, everything a
  // request goes through between framing and its reply — trace sampling,
  // the state-lock acquire, HandleRequest, and the root span. Called from
  // the legacy ReaderLoop and from the loop-plane read path alike.
  void DispatchRequest(ClientConnection* conn, const FramedMessage& message);

  // Token-bucket rate gate, checked by the owning reader/loop thread after
  // byte accounting and before dispatch (DESIGN.md decision 15).
  enum class RateGate {
    kDispatch,   // within budget: dispatch normally
    kThrottled,  // soft policy: kRateLimited was sent, skip dispatch
    kCut,        // hard policy: stop reading and tear the connection down
  };
  RateGate CheckRateLimit(ClientConnection* conn, const FramedMessage& message);

  // Event-loop connection plane (DESIGN.md decision 14). All of these run
  // on the loop thread that owns the connection's fd; teardown for a
  // connection therefore never races itself.
  void StartLoops();
  // The bool-returning loop helpers report liveness: false means the
  // connection was torn down (MarkFinished ran — it may be destroyed by the
  // pruner at any moment) and the caller must not touch it again.
  void LoopHandleReady(ClientConnection* conn, uint32_t loop_index, uint32_t events);
  bool LoopReadAndDispatch(ClientConnection* conn, uint32_t loop_index);
  bool LoopFlush(ClientConnection* conn, uint32_t loop_index);
  bool LoopBeginDrain(ClientConnection* conn, uint32_t loop_index);
  void LoopTeardown(ClientConnection* conn, uint32_t loop_index);
  void LoopSweep(uint32_t loop_index);

  // Tick-driver access to the state. Tick() manages the state lock itself
  // (epoch open/commit take it; the fan-out runs without it — the lock was
  // attached at construction via AttachStateLock), so the callers must NOT
  // hold mu_; the annotation opt-out reflects that inverted ownership.
  ServerState& tick_state() AUD_NO_THREAD_SAFETY_ANALYSIS { return state_; }

  // Dispatcher (dispatcher.cc). `received_at` is taken by the reader thread
  // before it queues for the state lock, so dispatch_us covers state-lock
  // wait + handling — the end-to-end server-side dispatch latency that the
  // epoch-snapshot tick is designed to bound (DESIGN.md decision 12).
  void HandleRequest(ClientConnection* conn, const FramedMessage& message,
                     std::chrono::steady_clock::time_point received_at,
                     const TraceContext& trace) AUD_REQUIRES(mu_);
  bool HandleSetup(ClientConnection* conn, const FramedMessage& message);

  // Event-sender target. Only ever invoked from ServerState (dispatch or
  // engine tick), both of which run with mu_ held; the std::function
  // indirection hides that from the analysis, hence the opt-out.
  void DeliverEvent(uint32_t conn_index, const EventMessage& event)
      AUD_NO_THREAD_SAFETY_ANALYSIS;

  Board* board_;
  ServerOptions options_;
  Mutex mu_{LockRank::kServerState, "AudioServer::mu_"};
  // All protocol state — devices, queues, islands, the registry — is one
  // unit under the big lock (DESIGN.md decision 9).
  ServerState state_ AUD_GUARDED_BY(mu_);
  // state_.metrics() is all relaxed atomics; this unguarded alias lets the
  // reader/engine hot paths count bytes and jitter without taking mu_.
  ServerMetrics* metrics_ = nullptr;

  // Connections own their reader and writer threads; AddConnection prunes
  // entries whose reader has finished teardown (joining outside mu_).
  std::vector<std::unique_ptr<ClientConnection>> connections_ AUD_GUARDED_BY(mu_);
  uint32_t next_connection_index_ AUD_GUARDED_BY(mu_) = 0;
  // Resolved once at construction: options_.fault, else the AUD_FAULT env.
  FaultOptions fault_options_;

  SocketListener listener_;
  std::thread accept_thread_;

  // The event-loop pool (empty in legacy mode). Started at construction,
  // stopped by Shutdown after every connection is hard-closed.
  std::vector<std::unique_ptr<EventLoop>> loops_;

  std::thread engine_thread_;
  std::atomic<bool> engine_running_{false};
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> draining_{false};
};

}  // namespace aud

#endif  // SRC_SERVER_SERVER_H_
