#include "src/hw/codec.h"

namespace aud {

Codec::Codec(uint32_t sample_rate_hz, size_t ring_frames)
    : rate_(sample_rate_hz), play_ring_(ring_frames), capture_ring_(ring_frames) {}

size_t Codec::WritePlayback(std::span<const Sample> frames) {
  if (!frames.empty()) {
    playback_started_ = true;
  }
  return play_ring_.Write(frames);
}

size_t Codec::ReadCapture(std::span<Sample> out) { return capture_ring_.Read(out); }

void Codec::PumpPlayback(size_t frames, std::vector<Sample>* played) {
  scratch_.assign(frames, 0);
  size_t got = play_ring_.Read(scratch_);
  if (playback_started_ && got < frames) {
    underrun_frames_ += static_cast<int64_t>(frames - got);
    if (!in_underrun_) {
      ++underrun_events_;
      in_underrun_ = true;
    }
  } else if (got == frames) {
    in_underrun_ = false;
  }
  frames_played_ += static_cast<int64_t>(frames);
  if (played != nullptr) {
    played->insert(played->end(), scratch_.begin(), scratch_.end());
  }
}

void Codec::PumpCapture(std::span<const Sample> frames_in) {
  size_t wrote = capture_ring_.Write(frames_in);
  if (wrote < frames_in.size()) {
    overrun_frames_ += static_cast<int64_t>(frames_in.size() - wrote);
  }
}

}  // namespace aud
