#include "src/hw/phone_line.h"

namespace aud {

PhoneLineUnit::PhoneLineUnit(std::string name, ExchangeLine* line, uint32_t ambient_domain,
                             size_t ring_frames)
    : PhysicalDevice(DeviceClass::kTelephone, std::move(name), line->rate(), ambient_domain),
      line_(line),
      tx_codec_(line->rate(), ring_frames),
      rx_codec_(line->rate(), ring_frames) {}

AttrList PhoneLineUnit::Attributes() const {
  AttrList attrs = PhysicalDevice::Attributes();
  attrs.SetString(AttrTag::kPhoneNumber, line_->number());
  attrs.SetU32(AttrTag::kLineCount, 1);
  attrs.SetBool(AttrTag::kCallerId, line_->caller_id_enabled());
  attrs.SetBool(AttrTag::kDigitalLine, false);
  return attrs;
}

void PhoneLineUnit::SetEventSink(EventSink sink) { line_->SetEventSink(std::move(sink)); }

void PhoneLineUnit::Advance(size_t frames) {
  // tx: drain what the server queued for playback toward the line.
  scratch_.clear();
  tx_codec_.PumpPlayback(frames, &scratch_);
  line_->WriteTx(scratch_);

  // rx: pull the far-end/tone audio into the capture ring.
  scratch_.assign(frames, 0);
  line_->ReadRx(scratch_);
  rx_codec_.PumpCapture(scratch_);
}

}  // namespace aud
