// Simulated telephone exchange. Substitutes for the analog/ISDN telephone
// network the paper's telephone device class talks to: call setup and
// teardown, ringing with caller id, call-progress tones (dial/ringback/
// busy/reorder), full-duplex audio relay between connected lines, and DTMF
// transport (in-band tones plus out-of-band digit events, the way a line
// card would decode them).
//
// The exchange is advanced in frames by the board pump, so the whole
// telephone world shares the engine's time base deterministically.

#ifndef SRC_HW_EXCHANGE_H_
#define SRC_HW_EXCHANGE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ring_buffer.h"
#include "src/common/sample.h"
#include "src/common/status.h"
#include "src/dsp/tone.h"
#include "src/wire/protocol.h"

namespace aud {

class Exchange;

// Subscriber-loop states.
enum class LineState : uint8_t {
  kOnHook = 0,
  kRingingIn = 1,   // Incoming call; Answer() is legal.
  kRingingOut = 2,  // Placed a call; hearing ringback.
  kConnected = 3,
  kBusyTone = 4,    // Called party was busy.
  kReorderTone = 5, // Number unreachable / call failed.
};

// One subscriber line on the exchange.
class ExchangeLine {
 public:
  // Events delivered to the subscriber equipment (the workstation's phone
  // device or a scripted far-end party).
  struct Event {
    enum class Type : uint8_t {
      kRing,        // Incoming ring burst; caller id attached if available.
      kAnswered,    // Our outbound call was answered (or we answered).
      kProgress,    // Call-state change (CallState in `state`).
      kDtmf,        // Digit decoded from the far end.
    };
    Type type = Type::kProgress;
    CallState state = CallState::kIdle;
    std::string caller_id;
    char digit = 0;
  };
  using EventSink = std::function<void(const Event&)>;

  ExchangeLine(Exchange* exchange, std::string number, std::string display_name,
               uint32_t rate, bool caller_id_enabled);

  const std::string& number() const { return number_; }
  const std::string& display_name() const { return display_name_; }
  uint32_t rate() const { return rate_; }
  LineState state() const { return state_; }
  bool caller_id_enabled() const { return caller_id_enabled_; }

  // Subscriber controls -----------------------------------------------------

  // Places a call. Errors if the line is not on-hook.
  Status Dial(const std::string& number);

  // Answers an incoming call. Errors unless ringing-in.
  Status Answer();

  // Returns the line to on-hook, tearing down any call.
  void HangUp();

  // Sends touch-tone digits to the far end (audible in-band and delivered
  // as digit events). Silently ignored when not connected.
  void SendDtmf(const std::string& digits);

  // Subscriber audio ---------------------------------------------------------

  // Voice toward the network (what the far end hears).
  void WriteTx(std::span<const Sample> frames);

  // Voice from the network (far-end speech or progress tones). Pads with
  // silence when less is available.
  size_t ReadRx(std::span<Sample> out);

  void SetEventSink(EventSink sink) { event_sink_ = std::move(sink); }

 private:
  friend class Exchange;

  void Emit(const Event& event);

  Exchange* exchange_;
  std::string number_;
  std::string display_name_;
  uint32_t rate_;
  bool caller_id_enabled_;

  LineState state_ = LineState::kOnHook;
  ExchangeLine* peer_ = nullptr;

  RingBuffer<Sample> tx_{1 << 16};
  RingBuffer<Sample> rx_{1 << 16};
  // Pending in-band DTMF samples mixed into tx during Advance.
  std::deque<Sample> dtmf_tx_;
  // Digits pending out-of-band delivery to the peer (paired with the tone).
  std::deque<char> dtmf_digits_;

  std::unique_ptr<ProgressToneGenerator> tone_;
  int64_t ring_frame_counter_ = 0;

  EventSink event_sink_;
};

// The switch itself.
class Exchange {
 public:
  explicit Exchange(uint32_t sample_rate_hz) : rate_(sample_rate_hz) {}

  uint32_t sample_rate_hz() const { return rate_; }

  // Registers a subscriber line. `display_name` is the caller-id text other
  // parties see. The returned pointer remains owned by the exchange.
  ExchangeLine* AddLine(const std::string& number, const std::string& display_name = "",
                        bool caller_id_enabled = true);

  // Finds a line by number; nullptr when absent.
  ExchangeLine* FindLine(const std::string& number);

  // Advances network time: relays audio between connected lines, renders
  // progress tones, and repeats ring bursts on ringing lines.
  void Advance(size_t frames);

 private:
  friend class ExchangeLine;

  Status PlaceCall(ExchangeLine* caller, const std::string& number);
  void AnswerCall(ExchangeLine* callee);
  void TearDown(ExchangeLine* line);

  uint32_t rate_;
  std::vector<std::unique_ptr<ExchangeLine>> lines_;
  std::vector<Sample> scratch_;
};

}  // namespace aud

#endif  // SRC_HW_EXCHANGE_H_
