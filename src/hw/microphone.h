// Microphone unit: a capture-only CODEC channel. What the microphone
// "hears" comes from a configurable signal source — silence, an oscillator,
// a prerecorded vector, or a custom callback — so recognition and recording
// paths can be exercised deterministically.

#ifndef SRC_HW_MICROPHONE_H_
#define SRC_HW_MICROPHONE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/hw/codec.h"
#include "src/hw/physical_device.h"

namespace aud {

class MicrophoneUnit : public PhysicalDevice {
 public:
  // Fills a block with "ambient" audio for the period.
  using SignalSource = std::function<void(std::span<Sample>)>;

  MicrophoneUnit(std::string name, uint32_t rate, uint32_t ambient_domain,
                 size_t ring_frames = 8192);

  AttrList Attributes() const override;

  Codec& codec() { return codec_; }

  // Replaces the signal source (default: silence).
  void set_source(SignalSource source) { source_ = std::move(source); }

  // Convenience: queue a vector to be "spoken into" the microphone once;
  // silence after it drains. Appends to any pending audio.
  void AddPendingAudio(std::vector<Sample> samples);

  // Frames of queued pending audio not yet heard.
  size_t pending_frames() const { return pending_.size() - pending_offset_; }

  void Advance(size_t frames) override;
  int64_t device_frames() const override { return frames_elapsed_; }

 private:
  Codec codec_;
  SignalSource source_;
  std::vector<Sample> pending_;
  size_t pending_offset_ = 0;
  std::vector<Sample> period_;
  int64_t frames_elapsed_ = 0;
};

}  // namespace aud

#endif  // SRC_HW_MICROPHONE_H_
