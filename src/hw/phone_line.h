// Telephone line unit: the workstation's attachment to an exchange line.
// Full duplex through two CODEC channels (tx toward the network, rx from
// it) plus the control surface the telephone device class needs: Dial,
// Answer, HangUp, SendDTMF, and asynchronous line events (ring with caller
// id, answered, call progress, incoming DTMF).

#ifndef SRC_HW_PHONE_LINE_H_
#define SRC_HW_PHONE_LINE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/hw/codec.h"
#include "src/hw/exchange.h"
#include "src/hw/physical_device.h"

namespace aud {

class PhoneLineUnit : public PhysicalDevice {
 public:
  using EventSink = std::function<void(const ExchangeLine::Event&)>;

  // `line` must outlive the unit.
  PhoneLineUnit(std::string name, ExchangeLine* line, uint32_t ambient_domain,
                size_t ring_frames = 8192);

  AttrList Attributes() const override;

  // Playback direction: server audio toward the far end.
  Codec& tx_codec() { return tx_codec_; }
  // Capture direction: far-end audio toward the server.
  Codec& rx_codec() { return rx_codec_; }

  ExchangeLine* line() { return line_; }

  // Control surface.
  Status Dial(const std::string& number) { return line_->Dial(number); }
  Status Answer() { return line_->Answer(); }
  void HangUp() { line_->HangUp(); }
  void SendDtmf(const std::string& digits) { line_->SendDtmf(digits); }
  LineState line_state() const { return line_->state(); }

  // Events forwarded from the exchange line. Set once (by the server's
  // telephone device wrapper).
  void SetEventSink(EventSink sink);

  void Advance(size_t frames) override;
  int64_t device_frames() const override { return tx_codec_.device_frames(); }

 private:
  ExchangeLine* line_;
  Codec tx_codec_;
  Codec rx_codec_;
  std::vector<Sample> scratch_;
};

}  // namespace aud

#endif  // SRC_HW_PHONE_LINE_H_
