#include "src/hw/speaker.h"

namespace aud {

SpeakerUnit::SpeakerUnit(std::string name, uint32_t rate, uint32_t ambient_domain,
                         size_t ring_frames, std::string position)
    : PhysicalDevice(DeviceClass::kOutput, std::move(name), rate, ambient_domain),
      codec_(rate, ring_frames),
      position_(std::move(position)) {}

AttrList SpeakerUnit::Attributes() const {
  AttrList attrs;
  attrs.SetU32(AttrTag::kClass, static_cast<uint32_t>(DeviceClass::kOutput));
  attrs.SetString(AttrTag::kName, name());
  attrs.SetU32(AttrTag::kSampleRate, sample_rate_hz());
  attrs.SetU32(AttrTag::kAmbientDomain, ambient_domain());
  attrs.SetString(AttrTag::kPosition, position_);
  return attrs;
}

void SpeakerUnit::Advance(size_t frames) {
  period_.clear();
  codec_.PumpPlayback(frames, &period_);
  if (capture_output_) {
    played_.insert(played_.end(), period_.begin(), period_.end());
  }
  if (sink_) {
    sink_(period_);
  }
}

}  // namespace aud
