#include "src/hw/microphone.h"

#include <algorithm>

namespace aud {

MicrophoneUnit::MicrophoneUnit(std::string name, uint32_t rate, uint32_t ambient_domain,
                               size_t ring_frames)
    : PhysicalDevice(DeviceClass::kInput, std::move(name), rate, ambient_domain),
      codec_(rate, ring_frames) {}

AttrList MicrophoneUnit::Attributes() const {
  AttrList attrs;
  attrs.SetU32(AttrTag::kClass, static_cast<uint32_t>(DeviceClass::kInput));
  attrs.SetString(AttrTag::kName, name());
  attrs.SetU32(AttrTag::kSampleRate, sample_rate_hz());
  attrs.SetU32(AttrTag::kAmbientDomain, ambient_domain());
  return attrs;
}

void MicrophoneUnit::AddPendingAudio(std::vector<Sample> samples) {
  if (pending_offset_ == pending_.size()) {
    pending_ = std::move(samples);
    pending_offset_ = 0;
  } else {
    pending_.insert(pending_.end(), samples.begin(), samples.end());
  }
}

void MicrophoneUnit::Advance(size_t frames) {
  period_.assign(frames, 0);
  // Pending one-shot audio takes priority over the ambient source.
  size_t from_pending = std::min(frames, pending_.size() - pending_offset_);
  if (from_pending > 0) {
    std::copy_n(pending_.begin() + static_cast<ptrdiff_t>(pending_offset_), from_pending,
                period_.begin());
    pending_offset_ += from_pending;
  }
  if (from_pending < frames && source_) {
    source_(std::span<Sample>(period_).subspan(from_pending));
  }
  codec_.PumpCapture(period_);
  frames_elapsed_ += static_cast<int64_t>(frames);
}

}  // namespace aud
