#include "src/hw/exchange.h"

#include <algorithm>

#include "src/dsp/dtmf.h"

namespace aud {

namespace {
// Ring cadence: 2 s on / 4 s off; a ring event fires at each burst start.
constexpr int kRingPeriodSeconds = 6;
}  // namespace

ExchangeLine::ExchangeLine(Exchange* exchange, std::string number, std::string display_name,
                           uint32_t rate, bool caller_id_enabled)
    : exchange_(exchange),
      number_(std::move(number)),
      display_name_(std::move(display_name)),
      rate_(rate),
      caller_id_enabled_(caller_id_enabled) {}

Status ExchangeLine::Dial(const std::string& number) {
  if (state_ != LineState::kOnHook) {
    return Status(ErrorCode::kBadState, "line not on-hook");
  }
  return exchange_->PlaceCall(this, number);
}

Status ExchangeLine::Answer() {
  if (state_ != LineState::kRingingIn) {
    return Status(ErrorCode::kBadState, "no incoming call");
  }
  exchange_->AnswerCall(this);
  return Status::Ok();
}

void ExchangeLine::HangUp() { exchange_->TearDown(this); }

void ExchangeLine::SendDtmf(const std::string& digits) {
  if (state_ != LineState::kConnected) {
    return;
  }
  auto tone = MakeDtmfString(digits, rate_);
  dtmf_tx_.insert(dtmf_tx_.end(), tone.begin(), tone.end());
  for (char d : digits) {
    if (IsDtmfDigit(d)) {
      dtmf_digits_.push_back(d);
    }
  }
}

void ExchangeLine::WriteTx(std::span<const Sample> frames) { tx_.Write(frames); }

size_t ExchangeLine::ReadRx(std::span<Sample> out) {
  size_t n = rx_.Read(out);
  std::fill(out.begin() + static_cast<ptrdiff_t>(n), out.end(), 0);
  return out.size();
}

void ExchangeLine::Emit(const Event& event) {
  if (event_sink_) {
    event_sink_(event);
  }
}

ExchangeLine* Exchange::AddLine(const std::string& number, const std::string& display_name,
                                bool caller_id_enabled) {
  lines_.push_back(std::make_unique<ExchangeLine>(this, number, display_name, rate_,
                                                  caller_id_enabled));
  return lines_.back().get();
}

ExchangeLine* Exchange::FindLine(const std::string& number) {
  for (auto& line : lines_) {
    if (line->number() == number) {
      return line.get();
    }
  }
  return nullptr;
}

Status Exchange::PlaceCall(ExchangeLine* caller, const std::string& number) {
  ExchangeLine* callee = FindLine(number);
  if (callee == nullptr || callee == caller) {
    caller->state_ = LineState::kReorderTone;
    caller->tone_ = std::make_unique<ProgressToneGenerator>(ProgressTone::kReorder, rate_);
    caller->Emit({ExchangeLine::Event::Type::kProgress, CallState::kFailed, "", 0});
    return Status::Ok();  // The dial itself succeeded; progress says failed.
  }
  if (callee->state_ != LineState::kOnHook) {
    caller->state_ = LineState::kBusyTone;
    caller->tone_ = std::make_unique<ProgressToneGenerator>(ProgressTone::kBusy, rate_);
    caller->Emit({ExchangeLine::Event::Type::kProgress, CallState::kBusy, "", 0});
    return Status::Ok();
  }

  caller->state_ = LineState::kRingingOut;
  caller->peer_ = callee;
  caller->tone_ = std::make_unique<ProgressToneGenerator>(ProgressTone::kRingback, rate_);
  caller->Emit({ExchangeLine::Event::Type::kProgress, CallState::kRinging, "", 0});

  callee->state_ = LineState::kRingingIn;
  callee->peer_ = caller;
  callee->ring_frame_counter_ = 0;
  std::string caller_id;
  if (callee->caller_id_enabled()) {
    caller_id = caller->display_name().empty() ? caller->number() : caller->display_name();
  }
  callee->Emit({ExchangeLine::Event::Type::kRing, CallState::kRinging, caller_id, 0});
  return Status::Ok();
}

void Exchange::AnswerCall(ExchangeLine* callee) {
  ExchangeLine* caller = callee->peer_;
  callee->state_ = LineState::kConnected;
  callee->tone_.reset();
  callee->Emit({ExchangeLine::Event::Type::kAnswered, CallState::kConnected, "", 0});
  if (caller != nullptr) {
    caller->state_ = LineState::kConnected;
    caller->tone_.reset();
    caller->Emit({ExchangeLine::Event::Type::kAnswered, CallState::kConnected, "", 0});
  }
}

void Exchange::TearDown(ExchangeLine* line) {
  ExchangeLine* peer = line->peer_;
  line->state_ = LineState::kOnHook;
  line->peer_ = nullptr;
  line->tone_.reset();
  line->tx_.Clear();
  line->rx_.Clear();
  line->dtmf_tx_.clear();
  line->dtmf_digits_.clear();

  if (peer != nullptr && peer->peer_ == line) {
    peer->peer_ = nullptr;
    if (peer->state_ == LineState::kConnected) {
      // Far end went on-hook mid-call.
      peer->state_ = LineState::kOnHook;
      peer->Emit({ExchangeLine::Event::Type::kProgress, CallState::kHungUp, "", 0});
    } else if (peer->state_ == LineState::kRingingIn) {
      // Caller abandoned before answer.
      peer->state_ = LineState::kOnHook;
      peer->Emit({ExchangeLine::Event::Type::kProgress, CallState::kIdle, "", 0});
    } else if (peer->state_ == LineState::kRingingOut) {
      peer->state_ = LineState::kOnHook;
      peer->Emit({ExchangeLine::Event::Type::kProgress, CallState::kHungUp, "", 0});
    }
  }
}

void Exchange::Advance(size_t frames) {
  // Phase 1: collect each line's outgoing audio (voice + pending DTMF).
  for (auto& line_ptr : lines_) {
    ExchangeLine* line = line_ptr.get();
    switch (line->state_) {
      case LineState::kConnected: {
        scratch_.assign(frames, 0);
        size_t got = line->tx_.Read(scratch_);
        std::fill(scratch_.begin() + static_cast<ptrdiff_t>(got), scratch_.end(), 0);
        // Overlay in-band DTMF (replaces voice while a digit sounds, as a
        // real sender's keypad would mute the microphone).
        size_t overlay = std::min(frames, line->dtmf_tx_.size());
        for (size_t i = 0; i < overlay; ++i) {
          scratch_[i] = line->dtmf_tx_.front();
          line->dtmf_tx_.pop_front();
        }
        if (line->peer_ != nullptr) {
          line->peer_->rx_.Write(scratch_);
          // Deliver one out-of-band digit per tone burst as it drains (the
          // last digit is due once the queue is fully drained).
          while (!line->dtmf_digits_.empty() &&
                 line->dtmf_tx_.size() <=
                     (line->dtmf_digits_.size() - 1) *
                         static_cast<size_t>(rate_ * 140 / 1000)) {
            char digit = line->dtmf_digits_.front();
            line->dtmf_digits_.pop_front();
            line->peer_->Emit(
                {ExchangeLine::Event::Type::kDtmf, CallState::kConnected, "", digit});
          }
        }
        break;
      }
      case LineState::kRingingOut:
      case LineState::kBusyTone:
      case LineState::kReorderTone: {
        // The network renders a progress tone into the subscriber's ear.
        scratch_.clear();
        line->tone_->Generate(frames, &scratch_);
        line->rx_.Write(scratch_);
        // Drop whatever the subscriber says meanwhile.
        line->tx_.Discard(frames);
        break;
      }
      case LineState::kRingingIn: {
        // Repeat ring bursts on cadence.
        line->ring_frame_counter_ += static_cast<int64_t>(frames);
        int64_t period = static_cast<int64_t>(rate_) * kRingPeriodSeconds;
        if (line->ring_frame_counter_ >= period) {
          line->ring_frame_counter_ -= period;
          std::string caller_id;
          if (line->caller_id_enabled() && line->peer_ != nullptr) {
            caller_id = line->peer_->display_name().empty() ? line->peer_->number()
                                                            : line->peer_->display_name();
          }
          line->Emit({ExchangeLine::Event::Type::kRing, CallState::kRinging, caller_id, 0});
        }
        line->tx_.Discard(frames);
        break;
      }
      case LineState::kOnHook:
        line->tx_.Discard(frames);
        break;
    }
  }
}

}  // namespace aud
