// Base class for the board's physical audio units. The server's device
// LOUD (section 5.1 "What does the hardware do, really?") is built by
// wrapping each of these in a server-side device object; the engine pumps
// them every tick.

#ifndef SRC_HW_PHYSICAL_DEVICE_H_
#define SRC_HW_PHYSICAL_DEVICE_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/common/clock.h"
#include "src/common/sample.h"
#include "src/wire/attributes.h"
#include "src/wire/protocol.h"

namespace aud {

// Ambient-domain ids used by the default board (section 5.8: the desktop
// speakers/microphone share an acoustic environment; each phone line is
// its own domain).
inline constexpr uint32_t kDesktopDomain = 1;
inline constexpr uint32_t kPhoneDomainBase = 100;

class PhysicalDevice {
 public:
  PhysicalDevice(DeviceClass device_class, std::string name, uint32_t rate,
                 uint32_t ambient_domain)
      : class_(device_class), name_(std::move(name)), rate_(rate), domain_(ambient_domain) {}
  virtual ~PhysicalDevice() = default;

  PhysicalDevice(const PhysicalDevice&) = delete;
  PhysicalDevice& operator=(const PhysicalDevice&) = delete;

  DeviceClass device_class() const { return class_; }
  const std::string& name() const { return name_; }
  uint32_t sample_rate_hz() const { return rate_; }
  uint32_t ambient_domain() const { return domain_; }

  // Capability attributes for the device LOUD entry.
  virtual AttrList Attributes() const;

  // Advances device time by `frames` (consumes playback / produces capture
  // through the codec rings). Called once per engine tick.
  virtual void Advance(size_t frames) = 0;

  // Device-clock frame count (see Codec::device_frames).
  virtual int64_t device_frames() const = 0;

 private:
  DeviceClass class_;
  std::string name_;
  uint32_t rate_;
  uint32_t domain_;
};

}  // namespace aud

#endif  // SRC_HW_PHYSICAL_DEVICE_H_
