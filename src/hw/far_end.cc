#include "src/hw/far_end.h"

#include <cmath>

namespace aud {

namespace {
// RMS above this fraction of full scale counts as "a tone".
constexpr double kToneThreshold = 0.05;
// RMS below this counts as silence.
constexpr double kSilenceThreshold = 0.01;

double BlockRms(std::span<const Sample> block) {
  if (block.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (Sample s : block) {
    double x = s / 32768.0;
    acc += x * x;
  }
  return std::sqrt(acc / static_cast<double>(block.size()));
}
}  // namespace

FarEndParty::FarEndParty(ExchangeLine* line)
    : line_(line), rate_(line->rate()) {
  line_->SetEventSink([this](const ExchangeLine::Event& event) { OnEvent(event); });
}

FarEndParty& FarEndParty::AnswerAfterRings(int rings) {
  steps_.push_back({Step::Kind::kAnswerAfterRings, rings, 0, "", {}});
  return *this;
}

FarEndParty& FarEndParty::DialAndWait(const std::string& number) {
  steps_.push_back({Step::Kind::kDialAndWait, 0, 0, number, {}});
  return *this;
}

FarEndParty& FarEndParty::WaitMs(int ms) {
  steps_.push_back({Step::Kind::kWaitMs, ms, 0, "", {}});
  return *this;
}

FarEndParty& FarEndParty::WaitForSilence(int ms, int timeout_ms) {
  steps_.push_back({Step::Kind::kWaitForSilence, ms, timeout_ms, "", {}});
  return *this;
}

FarEndParty& FarEndParty::WaitForTone(int timeout_ms) {
  steps_.push_back({Step::Kind::kWaitForTone, timeout_ms, 0, "", {}});
  return *this;
}

FarEndParty& FarEndParty::Speak(std::vector<Sample> samples) {
  steps_.push_back({Step::Kind::kSpeak, 0, 0, "", std::move(samples)});
  return *this;
}

FarEndParty& FarEndParty::SendDtmf(const std::string& digits) {
  steps_.push_back({Step::Kind::kSendDtmf, 0, 0, digits, {}});
  return *this;
}

FarEndParty& FarEndParty::RecordMs(int ms) {
  steps_.push_back({Step::Kind::kRecordMs, ms, 0, "", {}});
  return *this;
}

FarEndParty& FarEndParty::HangUp() {
  steps_.push_back({Step::Kind::kHangUp, 0, 0, "", {}});
  return *this;
}

void FarEndParty::OnEvent(const ExchangeLine::Event& event) {
  switch (event.type) {
    case ExchangeLine::Event::Type::kRing:
      ++rings_seen_;
      break;
    case ExchangeLine::Event::Type::kAnswered:
      answered_ = true;
      last_progress_ = CallState::kConnected;
      break;
    case ExchangeLine::Event::Type::kProgress:
      last_progress_ = event.state;
      break;
    case ExchangeLine::Event::Type::kDtmf:
      break;
  }
}

void FarEndParty::Advance(size_t frames) {
  // Always drain rx so the line's buffer doesn't grow unbounded, and keep
  // the audio for assertions.
  rx_scratch_.assign(frames, 0);
  line_->ReadRx(rx_scratch_);
  heard_.insert(heard_.end(), rx_scratch_.begin(), rx_scratch_.end());

  // Execute script steps; several can complete inside one tick (e.g. a
  // HangUp immediately after a RecordMs ends).
  while (step_ < steps_.size()) {
    if (!StepDone(steps_[step_], rx_scratch_, frames)) {
      break;
    }
    ++step_;
    step_frames_ = 0;
    quiet_frames_ = 0;
    tone_seen_ = false;
    speak_offset_ = 0;
  }
}

bool FarEndParty::StepDone(Step& step, std::span<const Sample> rx, size_t frames) {
  switch (step.kind) {
    case Step::Kind::kAnswerAfterRings:
      if (rings_seen_ >= step.count && line_->state() == LineState::kRingingIn) {
        // Answer on a line observed kRingingIn cannot fail; a failure here
        // means the scripted party lost a race with a hang-up, and the
        // progress callback will end the script on its own.
        if (!line_->Answer().ok()) {
          return false;
        }
        return true;
      }
      return false;

    case Step::Kind::kDialAndWait:
      if (step_frames_ == 0) {
        if (!line_->Dial(step.text).ok()) {
          // A rejected dial (line busy/off-hook) ends the script the same
          // way a kBusy progress event does.
          step_ = steps_.size() - 1;
          return true;
        }
      }
      step_frames_ += static_cast<int64_t>(frames);
      if (answered_ && line_->state() == LineState::kConnected) {
        return true;
      }
      // Busy or failed ends the whole script.
      if (last_progress_ == CallState::kBusy || last_progress_ == CallState::kFailed) {
        step_ = steps_.size() - 1;  // advance loop will move past the end
        return true;
      }
      return false;

    case Step::Kind::kWaitMs:
      step_frames_ += static_cast<int64_t>(frames);
      return step_frames_ >= static_cast<int64_t>(rate_) * step.count / 1000;

    case Step::Kind::kWaitForSilence: {
      step_frames_ += static_cast<int64_t>(frames);
      if (BlockRms(rx) < kSilenceThreshold) {
        quiet_frames_ += static_cast<int64_t>(frames);
      } else {
        quiet_frames_ = 0;
      }
      bool timed_out = step_frames_ >= static_cast<int64_t>(rate_) * step.aux / 1000;
      return quiet_frames_ >= static_cast<int64_t>(rate_) * step.count / 1000 || timed_out;
    }

    case Step::Kind::kWaitForTone: {
      step_frames_ += static_cast<int64_t>(frames);
      double rms = BlockRms(rx);
      if (rms >= kToneThreshold) {
        tone_seen_ = true;
      }
      bool tone_over = tone_seen_ && rms < kSilenceThreshold;
      bool timed_out = step_frames_ >= static_cast<int64_t>(rate_) * step.count / 1000;
      return tone_over || timed_out;
    }

    case Step::Kind::kSpeak: {
      size_t remaining = step.audio.size() - speak_offset_;
      size_t n = remaining < frames ? remaining : frames;
      line_->WriteTx(std::span<const Sample>(step.audio).subspan(speak_offset_, n));
      speak_offset_ += n;
      return speak_offset_ >= step.audio.size();
    }

    case Step::Kind::kSendDtmf:
      line_->SendDtmf(step.text);
      return true;

    case Step::Kind::kRecordMs:
      recorded_.insert(recorded_.end(), rx.begin(), rx.end());
      step_frames_ += static_cast<int64_t>(frames);
      return step_frames_ >= static_cast<int64_t>(rate_) * step.count / 1000;

    case Step::Kind::kHangUp:
      line_->HangUp();
      return true;
  }
  return true;
}

}  // namespace aud
