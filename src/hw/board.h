// The simulated workstation audio board: the full set of physical devices
// one server instance controls, plus the off-workstation world (the phone
// exchange and its other subscribers). Tests and benches configure a board,
// hand it to the server, and drive time through Advance().

#ifndef SRC_HW_BOARD_H_
#define SRC_HW_BOARD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hw/exchange.h"
#include "src/hw/far_end.h"
#include "src/hw/microphone.h"
#include "src/hw/phone_line.h"
#include "src/hw/physical_device.h"
#include "src/hw/speaker.h"

namespace aud {

struct BoardConfig {
  uint32_t sample_rate_hz = 8000;
  int speakers = 1;
  int microphones = 1;
  int phone_lines = 1;
  size_t codec_ring_frames = 8192;
  // The workstation lines get numbers 555-0100, 555-0101, ...
  std::string number_prefix = "555-01";
  // Adds an outboard speaker-phone: a speaker, microphone and phone line
  // (number 555-0999) with permanent hard-wired connections between them
  // (the paper's section 5.2 wiring-constraint example).
  bool speakerphone = false;
};

class Board {
 public:
  explicit Board(const BoardConfig& config);

  uint32_t sample_rate_hz() const { return config_.sample_rate_hz; }

  // All physical devices, in device-LOUD order.
  const std::vector<PhysicalDevice*>& devices() const { return devices_; }

  std::vector<SpeakerUnit*>& speakers() { return speakers_; }
  std::vector<MicrophoneUnit*>& microphones() { return microphones_; }
  std::vector<PhoneLineUnit*>& phone_lines() { return phone_lines_; }

  Exchange& exchange() { return exchange_; }

  // Adds an off-workstation subscriber (a far-end phone) to the exchange.
  // The returned party is owned by the board.
  FarEndParty* AddFarEnd(const std::string& number, const std::string& display_name = "");

  // Permanent physical connections ("some devices are connected via
  // physical wires that cannot be broken", section 5.1/5.2). Pairs are
  // (source-ish, sink-ish) in data-flow order.
  const std::vector<std::pair<PhysicalDevice*, PhysicalDevice*>>& hard_wires() const {
    return hard_wires_;
  }

  // All hard-wire partners of `device` (either direction).
  std::vector<PhysicalDevice*> HardWirePartners(PhysicalDevice* device) const;

  // Advances the whole hardware world by `frames`: all codecs, the
  // exchange, and every scripted far-end party.
  void Advance(size_t frames);

  int64_t frames_elapsed() const { return frames_elapsed_; }

 private:
  BoardConfig config_;
  Exchange exchange_;
  std::vector<std::unique_ptr<PhysicalDevice>> owned_;
  std::vector<PhysicalDevice*> devices_;
  std::vector<SpeakerUnit*> speakers_;
  std::vector<MicrophoneUnit*> microphones_;
  std::vector<PhoneLineUnit*> phone_lines_;
  std::vector<std::unique_ptr<FarEndParty>> far_ends_;
  std::vector<std::pair<PhysicalDevice*, PhysicalDevice*>> hard_wires_;
  int64_t frames_elapsed_ = 0;
};

}  // namespace aud

#endif  // SRC_HW_BOARD_H_
