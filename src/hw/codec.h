// CODEC emulation. The paper's prototype needed only "a simple CODEC with
// memory-mapped buffers" (section 6); this class reproduces that contract:
// a sample-clocked device with a playback ring and a capture ring. The
// server side writes/reads the rings; the "hardware" side (Pump*) consumes
// and produces frames at the device's own rate, counting underruns and
// overruns — the observable failures the paper's real-time design exists
// to avoid.
//
// The codec keeps its own notion of time (frames elapsed). Per the paper's
// footnote 8, completion times are computed against *this* clock, never
// the server CPU clock.

#ifndef SRC_HW_CODEC_H_
#define SRC_HW_CODEC_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/clock.h"
#include "src/common/ring_buffer.h"
#include "src/common/sample.h"

namespace aud {

class Codec {
 public:
  // `ring_frames` is the depth of each direction's buffer (the "memory-
  // mapped buffer" size); typical is 4-16 periods of 160 frames.
  Codec(uint32_t sample_rate_hz, size_t ring_frames);

  uint32_t sample_rate_hz() const { return rate_; }

  // -- Server (software) side ----------------------------------------------

  // Queues playback samples; returns frames accepted (short on full ring).
  size_t WritePlayback(std::span<const Sample> frames);

  // Frames of queued playback not yet consumed by the hardware.
  size_t PlaybackQueued() const { return play_ring_.size(); }

  // Free playback ring space in frames.
  size_t PlaybackSpace() const { return play_ring_.free_space(); }

  // Reads captured samples; returns frames read.
  size_t ReadCapture(std::span<Sample> out);

  size_t CaptureAvailable() const { return capture_ring_.size(); }

  // -- Hardware side (driven by the board/engine pump) ---------------------

  // Consumes `frames` frames of playback at the device rate. Missing data
  // is rendered as silence and counted as underrun — unless nothing at all
  // has ever been queued (an idle codec is not "underrunning"). The
  // consumed audio is appended to `played` when non-null.
  void PumpPlayback(size_t frames, std::vector<Sample>* played);

  // Produces `frames` frames of capture data into the capture ring;
  // overflow is dropped and counted.
  void PumpCapture(std::span<const Sample> frames_in);

  // -- Device clock and accounting ------------------------------------------

  // Total frames the device has consumed (its sample clock).
  int64_t device_frames() const { return frames_played_; }

  // Device time in Ticks (microseconds on the device's crystal).
  Ticks DeviceTime() const { return SamplesToTicks(frames_played_, rate_); }

  // Device frame at which currently queued playback will finish. This is
  // the number the player device reports to the command queue so the next
  // command can be pre-issued sample-accurately (section 6.2).
  int64_t PlaybackEndFrame() const {
    return frames_played_ + static_cast<int64_t>(play_ring_.size());
  }

  int64_t underrun_frames() const { return underrun_frames_; }
  int64_t overrun_frames() const { return overrun_frames_; }
  // Number of distinct underrun episodes (gaps), not frames.
  int64_t underrun_events() const { return underrun_events_; }

  // True if the playback path has started (ever had data).
  bool playback_started() const { return playback_started_; }

  // Drops all queued playback (used by immediate Stop).
  void FlushPlayback() { play_ring_.Clear(); }

 private:
  uint32_t rate_;
  RingBuffer<Sample> play_ring_;
  RingBuffer<Sample> capture_ring_;
  int64_t frames_played_ = 0;
  int64_t underrun_frames_ = 0;
  int64_t underrun_events_ = 0;
  int64_t overrun_frames_ = 0;
  bool playback_started_ = false;
  bool in_underrun_ = false;
  std::vector<Sample> scratch_;
};

}  // namespace aud

#endif  // SRC_HW_CODEC_H_
