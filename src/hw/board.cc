#include "src/hw/board.h"

namespace aud {

Board::Board(const BoardConfig& config) : config_(config), exchange_(config.sample_rate_hz) {
  for (int i = 0; i < config.speakers; ++i) {
    std::string position = config.speakers == 1 ? "center" : (i == 0 ? "left" : "right");
    auto speaker = std::make_unique<SpeakerUnit>(
        "speaker" + std::to_string(i), config.sample_rate_hz, kDesktopDomain,
        config.codec_ring_frames, position);
    speakers_.push_back(speaker.get());
    devices_.push_back(speaker.get());
    owned_.push_back(std::move(speaker));
  }
  for (int i = 0; i < config.microphones; ++i) {
    auto mic = std::make_unique<MicrophoneUnit>("microphone" + std::to_string(i),
                                                config.sample_rate_hz, kDesktopDomain,
                                                config.codec_ring_frames);
    microphones_.push_back(mic.get());
    devices_.push_back(mic.get());
    owned_.push_back(std::move(mic));
  }
  for (int i = 0; i < config.phone_lines; ++i) {
    std::string number = config.number_prefix + std::to_string(i / 10) + std::to_string(i % 10);
    ExchangeLine* line = exchange_.AddLine(number, "workstation-line" + std::to_string(i));
    auto phone = std::make_unique<PhoneLineUnit>("phone" + std::to_string(i), line,
                                                 kPhoneDomainBase + static_cast<uint32_t>(i),
                                                 config.codec_ring_frames);
    phone_lines_.push_back(phone.get());
    devices_.push_back(phone.get());
    owned_.push_back(std::move(phone));
  }

  if (config.speakerphone) {
    // An outboard speaker-phone: its speaker, microphone and line are
    // permanently wired to each other (section 5.2's example of hardware
    // that is "not as general as might be desired").
    auto sp_speaker = std::make_unique<SpeakerUnit>("speakerphone-speaker",
                                                    config.sample_rate_hz, 2,
                                                    config.codec_ring_frames, "speakerphone");
    auto sp_mic = std::make_unique<MicrophoneUnit>("speakerphone-mic", config.sample_rate_hz,
                                                   2, config.codec_ring_frames);
    ExchangeLine* sp_line = exchange_.AddLine("555-0999", "speakerphone");
    auto sp_phone = std::make_unique<PhoneLineUnit>("speakerphone-line", sp_line,
                                                    kPhoneDomainBase + 99,
                                                    config.codec_ring_frames);
    hard_wires_.push_back({sp_phone.get(), sp_speaker.get()});  // line rx -> speaker
    hard_wires_.push_back({sp_mic.get(), sp_phone.get()});      // mic -> line tx
    speakers_.push_back(sp_speaker.get());
    microphones_.push_back(sp_mic.get());
    phone_lines_.push_back(sp_phone.get());
    devices_.push_back(sp_speaker.get());
    devices_.push_back(sp_mic.get());
    devices_.push_back(sp_phone.get());
    owned_.push_back(std::move(sp_speaker));
    owned_.push_back(std::move(sp_mic));
    owned_.push_back(std::move(sp_phone));
  }
}

std::vector<PhysicalDevice*> Board::HardWirePartners(PhysicalDevice* device) const {
  std::vector<PhysicalDevice*> partners;
  for (const auto& [a, b] : hard_wires_) {
    if (a == device) {
      partners.push_back(b);
    }
    if (b == device) {
      partners.push_back(a);
    }
  }
  return partners;
}

FarEndParty* Board::AddFarEnd(const std::string& number, const std::string& display_name) {
  ExchangeLine* line = exchange_.AddLine(number, display_name);
  far_ends_.push_back(std::make_unique<FarEndParty>(line));
  return far_ends_.back().get();
}

void Board::Advance(size_t frames) {
  // Workstation-side units first (they feed tx into the exchange and will
  // read the rx produced by this tick's exchange relay next tick).
  for (PhysicalDevice* dev : devices_) {
    dev->Advance(frames);
  }
  exchange_.Advance(frames);
  for (auto& far_end : far_ends_) {
    far_end->Advance(frames);
  }
  frames_elapsed_ += static_cast<int64_t>(frames);
}

}  // namespace aud
