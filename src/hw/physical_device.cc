#include "src/hw/physical_device.h"

namespace aud {

AttrList PhysicalDevice::Attributes() const {
  AttrList attrs;
  attrs.SetU32(AttrTag::kClass, static_cast<uint32_t>(class_));
  attrs.SetString(AttrTag::kName, name_);
  attrs.SetU32(AttrTag::kSampleRate, rate_);
  attrs.SetU32(AttrTag::kAmbientDomain, domain_);
  return attrs;
}

}  // namespace aud
