// Speaker unit: a playback-only CODEC channel. What the codec "plays" is
// delivered to a configurable sink: discarded (bench), retained in memory
// (tests/examples), or streamed to a callback (WAV writers, the terminal
// Soundviewer demo).

#ifndef SRC_HW_SPEAKER_H_
#define SRC_HW_SPEAKER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/hw/codec.h"
#include "src/hw/physical_device.h"

namespace aud {

class SpeakerUnit : public PhysicalDevice {
 public:
  using PlaybackSink = std::function<void(std::span<const Sample>)>;

  SpeakerUnit(std::string name, uint32_t rate, uint32_t ambient_domain,
              size_t ring_frames = 8192, std::string position = "center");

  AttrList Attributes() const override;

  Codec& codec() { return codec_; }
  const Codec& codec() const { return codec_; }

  // Retain everything played in played() (off by default; costs memory).
  void set_capture_output(bool capture) { capture_output_ = capture; }
  const std::vector<Sample>& played() const { return played_; }
  void clear_played() { played_.clear(); }

  // Optional streaming sink invoked each Advance with the period's audio.
  void set_sink(PlaybackSink sink) { sink_ = std::move(sink); }

  void Advance(size_t frames) override;
  int64_t device_frames() const override { return codec_.device_frames(); }

 private:
  Codec codec_;
  std::string position_;
  bool capture_output_ = false;
  std::vector<Sample> played_;
  std::vector<Sample> period_;
  PlaybackSink sink_;
};

}  // namespace aud

#endif  // SRC_HW_SPEAKER_H_
