// Scripted far-end party: a fake human (or machine) on an exchange line.
// Tests and examples use it to drive the telephony paths end to end — a
// caller who rings the workstation, waits for the answering machine's
// greeting and beep, speaks a message, punches touch tones, and hangs up.

#ifndef SRC_HW_FAR_END_H_
#define SRC_HW_FAR_END_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/sample.h"
#include "src/hw/exchange.h"

namespace aud {

class FarEndParty {
 public:
  // `line` must outlive the party.
  explicit FarEndParty(ExchangeLine* line);

  // -- Script steps (executed in order) -------------------------------------

  // Waits for `rings` ring events, then answers.
  FarEndParty& AnswerAfterRings(int rings = 1);

  // Dials a number, then waits until the call connects (or fails, which
  // ends the script).
  FarEndParty& DialAndWait(const std::string& number);

  // Waits wall-(exchange-)clock milliseconds.
  FarEndParty& WaitMs(int ms);

  // Waits until `ms` of near-silence has been heard (e.g. the greeting
  // finished playing), bounded by `timeout_ms`.
  FarEndParty& WaitForSilence(int ms = 400, int timeout_ms = 30000);

  // Waits until a loud burst (>= threshold) is heard — e.g. the beep —
  // then until it ends. Bounded by `timeout_ms`.
  FarEndParty& WaitForTone(int timeout_ms = 30000);

  // Plays samples into the call.
  FarEndParty& Speak(std::vector<Sample> samples);

  // Sends touch tones.
  FarEndParty& SendDtmf(const std::string& digits);

  // Records incoming audio for `ms` into recorded().
  FarEndParty& RecordMs(int ms);

  // Hangs up.
  FarEndParty& HangUp();

  // -- Execution -------------------------------------------------------------

  // Advances the script by `frames` of exchange time. Call in lockstep with
  // Exchange::Advance (after it, so rx audio for the tick is visible).
  void Advance(size_t frames);

  bool done() const { return step_ >= steps_.size(); }

  // Everything heard while a RecordMs step was active.
  const std::vector<Sample>& recorded() const { return recorded_; }

  // All audio heard since creation (for assertions on greetings etc.).
  const std::vector<Sample>& heard() const { return heard_; }

  int rings_seen() const { return rings_seen_; }
  CallState last_progress() const { return last_progress_; }

 private:
  struct Step {
    enum class Kind : uint8_t {
      kAnswerAfterRings,
      kDialAndWait,
      kWaitMs,
      kWaitForSilence,
      kWaitForTone,
      kSpeak,
      kSendDtmf,
      kRecordMs,
      kHangUp,
    };
    Kind kind;
    int count = 0;        // rings / ms / timeout
    int aux = 0;          // secondary ms
    std::string text;     // number / digits
    std::vector<Sample> audio;
  };

  void OnEvent(const ExchangeLine::Event& event);
  bool StepDone(Step& step, std::span<const Sample> rx, size_t frames);

  ExchangeLine* line_;
  uint32_t rate_;
  std::vector<Step> steps_;
  size_t step_ = 0;

  // Per-step progress state.
  int64_t step_frames_ = 0;
  int64_t quiet_frames_ = 0;
  bool tone_seen_ = false;
  size_t speak_offset_ = 0;

  int rings_seen_ = 0;
  bool answered_ = false;
  CallState last_progress_ = CallState::kIdle;

  std::vector<Sample> recorded_;
  std::vector<Sample> heard_;
  std::vector<Sample> rx_scratch_;
};

}  // namespace aud

#endif  // SRC_HW_FAR_END_H_
