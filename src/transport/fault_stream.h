// FaultStream: a deterministic fault-injecting decorator over any
// ByteStream. Chaos and soak tests wrap the server's accepted streams and
// the client's connect path in one of these to prove that framing,
// reclamation and the engine tick survive the transport misbehaving —
// short reads, writes split into arbitrary chunks, injected latency, and
// abrupt mid-frame resets (the peer dying between a header and its
// payload).
//
// Everything is driven by a seeded SplitMix64 PRNG, so a failing chaos run
// replays exactly from its seed. With a default-constructed FaultOptions
// (enabled = false) MaybeWrapFault is the identity and costs one branch.

#ifndef SRC_TRANSPORT_FAULT_STREAM_H_
#define SRC_TRANSPORT_FAULT_STREAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/transport/stream.h"

namespace aud {

struct FaultOptions {
  bool enabled = false;
  uint64_t seed = 1;

  // Probabilities in [0, 1], evaluated independently per Read/Write call.
  double short_read = 0.0;   // deliver a 1-byte prefix of what is available
  double chop_write = 0.0;   // split the write into two inner writes
  double reset_read = 0.0;   // abrupt EOF: Read returns 0, stream closes
  double reset_write = 0.0;  // fail after writing a partial prefix (mid-frame)

  // Uniform random sleep in [0, delay_us] before each Read/Write.
  uint32_t delay_us = 0;

  // Derives a per-connection variant so each accepted stream replays its
  // own independent (but still seed-determined) fault schedule.
  FaultOptions ForInstance(uint64_t instance) const;
};

// Parses "seed=7,short_read=0.3,chop_write=0.5,reset_read=0.01,
// reset_write=0.01,delay_us=500" from the named environment variable.
// Unset or empty variable yields {enabled = false}; unknown keys are
// ignored so old binaries tolerate new knobs.
FaultOptions FaultOptionsFromEnv(const char* env_var);
FaultOptions ParseFaultSpec(const std::string& spec);

class FaultStream : public ByteStream {
 public:
  FaultStream(std::unique_ptr<ByteStream> inner, const FaultOptions& options);

  bool Write(std::span<const uint8_t> data) override;
  size_t Read(std::span<uint8_t> out) override;
  void Close() override;

  // Non-blocking variants apply the same seeded fault schedule (short
  // reads, chopped writes, sticky resets) so the event-loop plane is
  // chaos-testable exactly like the thread-per-connection plane.
  IoResult ReadSome(std::span<uint8_t> out) override;
  IoResult WriteSome(std::span<const uint8_t> data) override;
  int pollable_fd() const override { return inner_->pollable_fd(); }

  // Injected-fault accounting (test assertions).
  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

 private:
  // Returns the next PRNG draw as a double in [0, 1).
  double NextUniform();
  uint64_t NextU64();

  std::unique_ptr<ByteStream> inner_;
  FaultOptions options_;
  std::atomic<uint64_t> rng_;
  // Once a reset fired, the stream stays dead (like a real broken socket).
  std::atomic<bool> reset_{false};
  std::atomic<uint64_t> faults_{0};
};

// Wraps `stream` when options.enabled, otherwise returns it unchanged.
std::unique_ptr<ByteStream> MaybeWrapFault(std::unique_ptr<ByteStream> stream,
                                           const FaultOptions& options);

}  // namespace aud

#endif  // SRC_TRANSPORT_FAULT_STREAM_H_
