// TCP socket transport: the "networked access to resources" requirement of
// section 2 — a client connects to the audio server of any workstation on
// the network the same way X clients reach remote displays.

#ifndef SRC_TRANSPORT_SOCKET_STREAM_H_
#define SRC_TRANSPORT_SOCKET_STREAM_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/transport/stream.h"

namespace aud {

// A connected TCP socket endpoint.
class SocketStream : public ByteStream {
 public:
  // Takes ownership of a connected fd.
  explicit SocketStream(int fd) : fd_(fd) {}
  ~SocketStream() override;

  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  bool Write(std::span<const uint8_t> data) override;
  size_t Read(std::span<uint8_t> out) override;
  void Close() override;

 private:
  // Atomic: Close() may run from one thread while another blocks in Read().
  std::atomic<int> fd_;
};

// Listening socket. Bind to port 0 for an ephemeral port.
class SocketListener {
 public:
  SocketListener() = default;
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Binds and listens on 127.0.0.1:`port`. Returns false on failure.
  bool Listen(uint16_t port);

  // The bound port (useful after Listen(0)).
  uint16_t port() const { return port_; }

  // Blocks for the next connection; nullptr when the listener is closed.
  std::unique_ptr<ByteStream> Accept();

  // Unblocks Accept.
  void Close();

 private:
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

// Connects to 127.0.0.1:`port`; nullptr on failure.
std::unique_ptr<ByteStream> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace aud

#endif  // SRC_TRANSPORT_SOCKET_STREAM_H_
