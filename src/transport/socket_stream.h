// TCP socket transport: the "networked access to resources" requirement of
// section 2 — a client connects to the audio server of any workstation on
// the network the same way X clients reach remote displays.

#ifndef SRC_TRANSPORT_SOCKET_STREAM_H_
#define SRC_TRANSPORT_SOCKET_STREAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/transport/stream.h"

namespace aud {

// A connected TCP socket endpoint.
class SocketStream : public ByteStream {
 public:
  // Takes ownership of a connected fd.
  explicit SocketStream(int fd) : fd_(fd) {}
  ~SocketStream() override;

  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  bool Write(std::span<const uint8_t> data) override;
  size_t Read(std::span<uint8_t> out) override;
  void Close() override;

  // Non-blocking variants for the event-loop connection plane. Correct
  // whether or not the fd carries O_NONBLOCK: blocking-mode fds simply
  // never return kWouldBlock (send/recv are used with MSG_DONTWAIT).
  IoResult ReadSome(std::span<uint8_t> out) override;
  IoResult WriteSome(std::span<const uint8_t> data) override;
  int pollable_fd() const override {
    return fd_.load(std::memory_order_relaxed);
  }

 private:
  // Atomic: Close() may run from one thread while another blocks in Read().
  std::atomic<int> fd_;
};

// Listening socket. Bind to port 0 for an ephemeral port.
class SocketListener {
 public:
  SocketListener() = default;
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Binds and listens on 127.0.0.1:`port`. Returns false on failure.
  bool Listen(uint16_t port);

  // The bound port (useful after Listen(0)).
  uint16_t port() const { return port_; }

  // Blocks for the next connection; nullptr only when the listener has
  // been closed. Transient accept(2) failures — EINTR, ECONNABORTED,
  // EMFILE/ENFILE, ENOMEM/ENOBUFS — are retried internally with bounded
  // exponential backoff (1 ms doubling to 100 ms) so one failure burst can
  // never permanently stop the server accepting. The first failure of a
  // burst is logged; subsequent ones are only counted.
  //
  // Accepted fds are always FD_CLOEXEC (via accept4 where available, fcntl
  // otherwise) so they cannot leak into forked tools; pass `nonblocking`
  // to additionally set O_NONBLOCK atomically for event-loop ownership.
  std::unique_ptr<ByteStream> Accept(bool nonblocking = false);

  // Unblocks Accept.
  void Close();

  // Total transient accept failures retried since Listen (a monotone
  // counter the server mirrors into its accept_retries stat).
  uint64_t accept_retries() const {
    return accept_retries_.load(std::memory_order_relaxed);
  }

  // Test hook: the next Accept() calls consume these errno values (one per
  // call) instead of calling accept(2), exercising the retry/backoff paths
  // deterministically. Not thread-safe against a concurrent Accept.
  void InjectAcceptErrnosForTest(std::vector<int> errnos);

 private:
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
  // Set by Close(); distinguishes "listener shut down" from a transient
  // accept failure (after shutdown(2), accept returns EINVAL on Linux).
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> accept_retries_{0};
  std::vector<int> injected_errnos_;
};

// Connects to 127.0.0.1:`port`; nullptr on failure.
std::unique_ptr<ByteStream> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace aud

#endif  // SRC_TRANSPORT_SOCKET_STREAM_H_
