#include "src/transport/fault_stream.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace aud {

namespace {

// SplitMix64 output mix. The state advance is a fetch_add of the golden
// gamma, so concurrent reader/writer threads each draw distinct values
// without a lock (order between threads does not matter for fault
// schedules; the schedule is still fully determined by the seed for any
// single-threaded replay).
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr uint64_t kGamma = 0x9E3779B97F4A7C15ull;

}  // namespace

FaultOptions FaultOptions::ForInstance(uint64_t instance) const {
  FaultOptions derived = *this;
  derived.seed = Mix64(seed + kGamma * (instance + 1));
  return derived;
}

FaultOptions ParseFaultSpec(const std::string& spec) {
  FaultOptions options;
  if (spec.empty()) {
    return options;
  }
  options.enabled = true;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        options.seed = std::stoull(value);
      } else if (key == "short_read") {
        options.short_read = std::stod(value);
      } else if (key == "chop_write") {
        options.chop_write = std::stod(value);
      } else if (key == "reset_read") {
        options.reset_read = std::stod(value);
      } else if (key == "reset_write") {
        options.reset_write = std::stod(value);
      } else if (key == "delay_us") {
        options.delay_us = static_cast<uint32_t>(std::stoul(value));
      }
      // Unknown keys are ignored: forward compatibility with newer specs.
    } catch (...) {
      // Unparseable values keep the knob at its default.
    }
  }
  return options;
}

FaultOptions FaultOptionsFromEnv(const char* env_var) {
  const char* spec = std::getenv(env_var);
  if (spec == nullptr) {
    return FaultOptions{};
  }
  return ParseFaultSpec(spec);
}

FaultStream::FaultStream(std::unique_ptr<ByteStream> inner, const FaultOptions& options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

uint64_t FaultStream::NextU64() {
  return Mix64(rng_.fetch_add(kGamma, std::memory_order_relaxed) + kGamma);
}

double FaultStream::NextUniform() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool FaultStream::Write(std::span<const uint8_t> data) {
  if (reset_.load(std::memory_order_relaxed)) {
    return false;
  }
  if (options_.delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(NextU64() % (options_.delay_us + 1)));
  }
  if (options_.reset_write > 0 && NextUniform() < options_.reset_write) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    reset_.store(true, std::memory_order_relaxed);
    // Mid-frame reset: a prefix escapes onto the wire, then the stream
    // dies — the peer sees a truncated frame followed by EOF.
    if (!data.empty()) {
      size_t prefix = NextU64() % data.size();
      if (prefix > 0) {
        inner_->Write(data.first(prefix));
      }
    }
    inner_->Close();
    return false;
  }
  if (options_.chop_write > 0 && data.size() > 1 && NextUniform() < options_.chop_write) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    size_t cut = 1 + NextU64() % (data.size() - 1);
    return inner_->Write(data.first(cut)) && inner_->Write(data.subspan(cut));
  }
  return inner_->Write(data);
}

size_t FaultStream::Read(std::span<uint8_t> out) {
  if (reset_.load(std::memory_order_relaxed)) {
    return 0;
  }
  if (options_.delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(NextU64() % (options_.delay_us + 1)));
  }
  if (options_.reset_read > 0 && NextUniform() < options_.reset_read) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    reset_.store(true, std::memory_order_relaxed);
    inner_->Close();
    return 0;
  }
  if (options_.short_read > 0 && out.size() > 1 && NextUniform() < options_.short_read) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return inner_->Read(out.first(1));
  }
  return inner_->Read(out);
}

IoResult FaultStream::ReadSome(std::span<uint8_t> out) {
  if (reset_.load(std::memory_order_relaxed)) {
    return {IoStatus::kEof, 0};
  }
  if (options_.delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(NextU64() % (options_.delay_us + 1)));
  }
  if (options_.reset_read > 0 && NextUniform() < options_.reset_read) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    reset_.store(true, std::memory_order_relaxed);
    inner_->Close();
    return {IoStatus::kEof, 0};
  }
  if (options_.short_read > 0 && out.size() > 1 && NextUniform() < options_.short_read) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return inner_->ReadSome(out.first(1));
  }
  return inner_->ReadSome(out);
}

IoResult FaultStream::WriteSome(std::span<const uint8_t> data) {
  if (reset_.load(std::memory_order_relaxed)) {
    return {IoStatus::kError, 0};
  }
  if (options_.delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(NextU64() % (options_.delay_us + 1)));
  }
  if (options_.reset_write > 0 && NextUniform() < options_.reset_write) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    reset_.store(true, std::memory_order_relaxed);
    // Mid-frame reset: a best-effort prefix escapes, then the stream dies.
    if (!data.empty()) {
      size_t prefix = NextU64() % data.size();
      if (prefix > 0) {
        inner_->WriteSome(data.first(prefix));
      }
    }
    inner_->Close();
    return {IoStatus::kError, 0};
  }
  if (options_.chop_write > 0 && data.size() > 1 && NextUniform() < options_.chop_write) {
    // A partial transfer is already legal for WriteSome, so "chop" here
    // means capping the attempt — the caller resubmits the tail, giving
    // the same split-frame coverage as the blocking decorator.
    faults_.fetch_add(1, std::memory_order_relaxed);
    size_t cut = 1 + NextU64() % (data.size() - 1);
    return inner_->WriteSome(data.first(cut));
  }
  return inner_->WriteSome(data);
}

void FaultStream::Close() { inner_->Close(); }

std::unique_ptr<ByteStream> MaybeWrapFault(std::unique_ptr<ByteStream> stream,
                                           const FaultOptions& options) {
  if (!options.enabled || stream == nullptr) {
    return stream;
  }
  return std::make_unique<FaultStream>(std::move(stream), options);
}

}  // namespace aud
