// The transport abstraction under the protocol: "clients and a server
// communicate over a reliable full duplex, 8-bit byte stream" (section
// 4.1). The protocol is transport-independent; we provide an in-memory
// pipe (for in-process servers, tests and benches) and TCP sockets (for
// networked access), both behind this interface.

#ifndef SRC_TRANSPORT_STREAM_H_
#define SRC_TRANSPORT_STREAM_H_

#include <cstdint>
#include <span>

namespace aud {

// A reliable, ordered, full-duplex byte stream endpoint. All methods are
// blocking. Thread-compatible: one reader thread and one writer thread may
// use an endpoint concurrently.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Writes all of `data`. Returns false if the peer has closed or the
  // stream failed; partial writes never succeed silently.
  virtual bool Write(std::span<const uint8_t> data) = 0;

  // Reads between 1 and out.size() bytes, blocking until at least one byte
  // is available. Returns the count, or 0 on end-of-stream.
  virtual size_t Read(std::span<uint8_t> out) = 0;

  // Shuts the stream down; concurrent and future Reads return 0 and Writes
  // return false on both ends.
  virtual void Close() = 0;
};

// Reads exactly out.size() bytes. Returns false on EOF/failure.
bool ReadFully(ByteStream* stream, std::span<uint8_t> out);

}  // namespace aud

#endif  // SRC_TRANSPORT_STREAM_H_
