// The transport abstraction under the protocol: "clients and a server
// communicate over a reliable full duplex, 8-bit byte stream" (section
// 4.1). The protocol is transport-independent; we provide an in-memory
// pipe (for in-process servers, tests and benches) and TCP sockets (for
// networked access), both behind this interface.

#ifndef SRC_TRANSPORT_STREAM_H_
#define SRC_TRANSPORT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace aud {

// Outcome of a single non-blocking I/O attempt.
enum class IoStatus : uint8_t {
  kOk,          // `bytes` were transferred (>= 1)
  kWouldBlock,  // nothing transferable right now; retry on readiness
  kEof,         // orderly end-of-stream (reads only)
  kError,       // the stream failed; no further I/O will succeed
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  size_t bytes = 0;
};

// A reliable, ordered, full-duplex byte stream endpoint. Write/Read/Close
// are blocking. Thread-compatible: one reader thread and one writer thread
// may use an endpoint concurrently.
//
// Streams backed by a pollable descriptor additionally support the
// non-blocking ReadSome/WriteSome pair, used by the event-loop connection
// plane. The default implementations adapt the blocking calls (never
// returning kWouldBlock) so in-memory transports keep working unchanged.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Writes all of `data`. Returns false if the peer has closed or the
  // stream failed; partial writes never succeed silently.
  virtual bool Write(std::span<const uint8_t> data) = 0;

  // Reads between 1 and out.size() bytes, blocking until at least one byte
  // is available. Returns the count, or 0 on end-of-stream.
  virtual size_t Read(std::span<uint8_t> out) = 0;

  // Shuts the stream down; concurrent and future Reads return 0 and Writes
  // return false on both ends.
  virtual void Close() = 0;

  // Non-blocking read: transfers up to out.size() bytes that are already
  // buffered. kWouldBlock means "wait for readability". The default adapts
  // the blocking Read (so it may block on non-pollable transports).
  virtual IoResult ReadSome(std::span<uint8_t> out) {
    size_t n = Read(out);
    if (n == 0) {
      return {IoStatus::kEof, 0};
    }
    return {IoStatus::kOk, n};
  }

  // Non-blocking write: transfers up to data.size() bytes without waiting.
  // kWouldBlock means "wait for writability". Partial transfers are normal.
  virtual IoResult WriteSome(std::span<const uint8_t> data) {
    if (!Write(data)) {
      return {IoStatus::kError, 0};
    }
    return {IoStatus::kOk, data.size()};
  }

  // The descriptor an event loop can watch for readiness, or -1 when the
  // transport is not pollable (in-memory pipes). A connection whose stream
  // returns -1 falls back to the legacy thread-per-connection mode.
  virtual int pollable_fd() const { return -1; }
};

// Reads exactly out.size() bytes. Returns false on EOF/failure.
bool ReadFully(ByteStream* stream, std::span<uint8_t> out);

}  // namespace aud

#endif  // SRC_TRANSPORT_STREAM_H_
