#include "src/transport/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "src/common/logging.h"

namespace aud {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

}  // namespace

EventLoop::EventLoop(EventLoopOptions options) : options_(options) {
#ifdef __linux__
  use_epoll_ = options_.backend != EventLoopOptions::Backend::kPoll;
#else
  use_epoll_ = false;
#endif
}

EventLoop::~EventLoop() {
  Stop();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
  for (int fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

bool EventLoop::Start() {
  if (running_.load(std::memory_order_relaxed)) {
    return true;
  }
  if (!use_epoll_ && options_.backend == EventLoopOptions::Backend::kEpoll) {
    LogLine(LogLevel::kWarning) << "event loop: epoll backend unavailable";
    return false;
  }
  if (::pipe(wake_fds_) != 0) {
    LogLine(LogLevel::kWarning) << "event loop: pipe() failed";
    return false;
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
  ::fcntl(wake_fds_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(wake_fds_[1], F_SETFD, FD_CLOEXEC);
#ifdef __linux__
  if (use_epoll_) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      LogLine(LogLevel::kWarning) << "event loop: epoll_create1 failed";
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fds_[0];
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);
  }
#endif
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void EventLoop::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  Wakeup();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void EventLoop::Wakeup() {
  if (wake_fds_[1] >= 0) {
    // A full pipe already guarantees a pending wakeup, so EAGAIN is fine.
    uint8_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &one, 1);
  }
}

void EventLoop::Add(int fd, Handler handler) {
  Op op{Op::Kind::kAdd, fd, false,
        std::make_shared<Handler>(std::move(handler))};
  if (OnLoopThread()) {
    ApplyOp(std::move(op));
    return;
  }
  {
    MutexLock lock(&mu_);
    pending_.push_back(std::move(op));
  }
  Wakeup();
}

void EventLoop::Remove(int fd) {
  Op op{Op::Kind::kRemove, fd, false, nullptr};
  if (OnLoopThread()) {
    ApplyOp(std::move(op));
    return;
  }
  {
    MutexLock lock(&mu_);
    pending_.push_back(std::move(op));
  }
  Wakeup();
}

void EventLoop::SetWantWrite(int fd, bool want) {
  Op op{Op::Kind::kWantWrite, fd, want, nullptr};
  if (OnLoopThread()) {
    ApplyOp(std::move(op));
    return;
  }
  {
    MutexLock lock(&mu_);
    pending_.push_back(std::move(op));
  }
  Wakeup();
}

void EventLoop::ApplyPending() {
  std::vector<Op> ops;
  {
    MutexLock lock(&mu_);
    ops.swap(pending_);
  }
  for (Op& op : ops) {
    ApplyOp(std::move(op));
  }
}

void EventLoop::ApplyOp(Op op) {
  switch (op.kind) {
    case Op::Kind::kAdd: {
      Watch& watch = watches_[op.fd];
      const bool fresh = watch.handler == nullptr;
      watch.handler = std::move(op.handler);
      watch.want_write = false;
      SyncBackend(op.fd, watch, /*add=*/fresh);
      if (fresh && options_.metrics.fds_watched != nullptr) {
        options_.metrics.fds_watched->Add(1);
      }
      break;
    }
    case Op::Kind::kRemove: {
      auto it = watches_.find(op.fd);
      if (it == watches_.end()) {
        break;
      }
      watches_.erase(it);
#ifdef __linux__
      if (use_epoll_) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, op.fd, nullptr);
      }
#endif
      if (options_.metrics.fds_watched != nullptr) {
        options_.metrics.fds_watched->Sub(1);
      }
      break;
    }
    case Op::Kind::kWantWrite: {
      auto it = watches_.find(op.fd);
      if (it == watches_.end() || it->second.want_write == op.want_write) {
        break;
      }
      it->second.want_write = op.want_write;
      SyncBackend(op.fd, it->second, /*add=*/false);
      break;
    }
  }
}

void EventLoop::SyncBackend(int fd, const Watch& watch, bool add) {
#ifdef __linux__
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | (watch.want_write ? EPOLLOUT : 0u) |
                (options_.edge_triggered ? EPOLLET : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &ev) !=
            0 &&
        add && errno == EEXIST) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    }
    return;
  }
#endif
  // The poll backend rebuilds its pollfd set each round from watches_, so
  // there is nothing to sync eagerly.
  (void)fd;
  (void)watch;
  (void)add;
}

void EventLoop::Run() {
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  while (running_.load(std::memory_order_acquire)) {
    ApplyPending();
    WaitAndDispatch();
    if (sweep_) {
      sweep_();
    }
  }
}

void EventLoop::WaitAndDispatch() {
  const int timeout_ms = static_cast<int>(options_.wait_timeout_ms);
#ifdef __linux__
  if (use_epoll_) {
    epoll_event events[64];
    int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (options_.metrics.epoll_waits != nullptr) {
      options_.metrics.epoll_waits->Increment();
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[0]) {
        DrainWakePipe();
        continue;
      }
      uint32_t bits = 0;
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        bits |= kLoopReadable;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        bits |= kLoopWritable;
      }
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        bits |= kLoopError;
      }
      DispatchEvent(fd, bits);
    }
    return;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(watches_.size() + 1);
  fds.push_back({wake_fds_[0], POLLIN, 0});
  for (const auto& [fd, watch] : watches_) {
    fds.push_back(
        {fd, static_cast<short>(POLLIN | (watch.want_write ? POLLOUT : 0)), 0});
  }
  int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (options_.metrics.epoll_waits != nullptr) {
    options_.metrics.epoll_waits->Increment();
  }
  if (n <= 0) {
    return;
  }
  for (const pollfd& p : fds) {
    if (p.revents == 0) {
      continue;
    }
    if (p.fd == wake_fds_[0]) {
      DrainWakePipe();
      continue;
    }
    uint32_t bits = 0;
    // POLLIN alone suffices for EOF detection: a closed peer is readable
    // and the read returns 0. (POLLRDHUP is Linux-only.)
    if ((p.revents & POLLIN) != 0) {
      bits |= kLoopReadable;
    }
    if ((p.revents & POLLOUT) != 0) {
      bits |= kLoopWritable;
    }
    if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      bits |= kLoopError;
    }
    DispatchEvent(p.fd, bits);
  }
}

void EventLoop::DispatchEvent(int fd, uint32_t events) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) {
    // Readiness outlived the registration (removed by an earlier handler
    // this round, or a cross-thread Remove landed first).
    if (options_.metrics.readiness_spurious != nullptr) {
      options_.metrics.readiness_spurious->Increment();
    }
    return;
  }
  // Keep the function alive across the call even if it removes itself.
  std::shared_ptr<Handler> handler = it->second.handler;
  const auto t0 = std::chrono::steady_clock::now();
  (*handler)(events);
  if (options_.metrics.dispatch_us != nullptr) {
    options_.metrics.dispatch_us->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
}

void EventLoop::DrainWakePipe() {
  uint8_t buf[256];
  size_t drained = 0;
  while (true) {
    ssize_t n = ::read(wake_fds_[0], buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    drained += static_cast<size_t>(n);
  }
  if (options_.metrics.wakeups != nullptr && drained > 0) {
    options_.metrics.wakeups->Increment();
  }
  if (options_.metrics.readiness_spurious != nullptr && drained == 0) {
    options_.metrics.readiness_spurious->Increment();
  }
}

}  // namespace aud
