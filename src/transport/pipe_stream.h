// In-memory duplex pipe: a pair of ByteStream endpoints connected back to
// back. Used for same-process client/server wiring in tests, benches and
// the library-embedded server mode.

#ifndef SRC_TRANSPORT_PIPE_STREAM_H_
#define SRC_TRANSPORT_PIPE_STREAM_H_

#include <deque>
#include <memory>
#include <utility>

#include "src/common/thread_annotations.h"
#include "src/transport/stream.h"

namespace aud {

// One direction of a pipe: an unbounded byte queue with blocking reads.
class PipeChannel {
 public:
  bool Write(std::span<const uint8_t> data);
  size_t Read(std::span<uint8_t> out);
  void Close();

 private:
  Mutex mu_{LockRank::kPipeChannel, "PipeChannel::mu_"};
  CondVar cv_;
  std::deque<uint8_t> bytes_ AUD_GUARDED_BY(mu_);
  bool closed_ AUD_GUARDED_BY(mu_) = false;
};

// A ByteStream endpoint over two shared channels.
class PipeStream : public ByteStream {
 public:
  PipeStream(std::shared_ptr<PipeChannel> read_channel,
             std::shared_ptr<PipeChannel> write_channel)
      : read_(std::move(read_channel)), write_(std::move(write_channel)) {}

  bool Write(std::span<const uint8_t> data) override { return write_->Write(data); }
  size_t Read(std::span<uint8_t> out) override { return read_->Read(out); }
  void Close() override {
    read_->Close();
    write_->Close();
  }

 private:
  std::shared_ptr<PipeChannel> read_;
  std::shared_ptr<PipeChannel> write_;
};

// Creates a connected pair of endpoints.
std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>> CreatePipePair();

}  // namespace aud

#endif  // SRC_TRANSPORT_PIPE_STREAM_H_
