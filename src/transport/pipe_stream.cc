#include "src/transport/pipe_stream.h"

namespace aud {

bool PipeChannel::Write(std::span<const uint8_t> data) {
  MutexLock lock(&mu_);
  if (closed_) {
    return false;
  }
  bytes_.insert(bytes_.end(), data.begin(), data.end());
  cv_.NotifyAll();
  return true;
}

size_t PipeChannel::Read(std::span<uint8_t> out) {
  MutexLock lock(&mu_);
  while (bytes_.empty() && !closed_) {
    cv_.Wait(mu_);
  }
  if (bytes_.empty()) {
    return 0;  // closed and drained
  }
  size_t n = out.size() < bytes_.size() ? out.size() : bytes_.size();
  for (size_t i = 0; i < n; ++i) {
    out[i] = bytes_.front();
    bytes_.pop_front();
  }
  return n;
}

void PipeChannel::Close() {
  MutexLock lock(&mu_);
  closed_ = true;
  cv_.NotifyAll();
}

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>> CreatePipePair() {
  auto a_to_b = std::make_shared<PipeChannel>();
  auto b_to_a = std::make_shared<PipeChannel>();
  auto a = std::make_unique<PipeStream>(b_to_a, a_to_b);
  auto b = std::make_unique<PipeStream>(a_to_b, b_to_a);
  return {std::move(a), std::move(b)};
}

bool ReadFully(ByteStream* stream, std::span<uint8_t> out) {
  size_t done = 0;
  while (done < out.size()) {
    size_t n = stream->Read(out.subspan(done));
    if (n == 0) {
      return false;
    }
    done += n;
  }
  return true;
}

}  // namespace aud
