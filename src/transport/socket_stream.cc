#include "src/transport/socket_stream.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/logging.h"

namespace aud {

SocketStream::~SocketStream() {
  // The owner joins its reader thread before destroying the stream, so the
  // fd can be released here without racing a blocked recv().
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    ::close(fd);
  }
}

bool SocketStream::Write(std::span<const uint8_t> data) {
  const int fd = fd_.load(std::memory_order_relaxed);
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

size_t SocketStream::Read(std::span<uint8_t> out) {
  const int fd = fd_.load(std::memory_order_relaxed);
  while (true) {
    ssize_t n = ::recv(fd, out.data(), out.size(), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return 0;
    }
    return static_cast<size_t>(n);
  }
}

void SocketStream::Close() {
  // Shutdown only: this is the wake-up for a reader blocked in recv(), so
  // closing the fd here would race that recv() with fd reuse. The fd is
  // released by the destructor, after the owner joins its reader.
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

SocketListener::~SocketListener() {
  Close();
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    ::close(fd);
  }
}

bool SocketListener::Listen(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  if (::listen(fd_, 16) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  return true;
}

std::unique_ptr<ByteStream> SocketListener::Accept() {
  if (fd_ < 0) {
    return nullptr;
  }
  int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    return nullptr;
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketStream>(client);
}

void SocketListener::Close() {
  // Same split as SocketStream: shutdown() unblocks a thread in Accept();
  // the destructor (after the accept thread is joined) closes the fd.
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

std::unique_ptr<ByteStream> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    LogLine(LogLevel::kWarning) << "connect to " << host << ":" << port
                                << " failed: " << std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketStream>(fd);
}

}  // namespace aud
