#include "src/transport/socket_stream.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/logging.h"

namespace aud {

SocketStream::~SocketStream() {
  // The owner joins its reader thread before destroying the stream, so the
  // fd can be released here without racing a blocked recv().
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    ::close(fd);
  }
}

bool SocketStream::Write(std::span<const uint8_t> data) {
  const int fd = fd_.load(std::memory_order_relaxed);
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

size_t SocketStream::Read(std::span<uint8_t> out) {
  const int fd = fd_.load(std::memory_order_relaxed);
  while (true) {
    ssize_t n = ::recv(fd, out.data(), out.size(), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return 0;
    }
    return static_cast<size_t>(n);
  }
}

IoResult SocketStream::ReadSome(std::span<uint8_t> out) {
  const int fd = fd_.load(std::memory_order_relaxed);
  while (true) {
    ssize_t n = ::recv(fd, out.data(), out.size(), MSG_DONTWAIT);
    if (n > 0) {
      return {IoStatus::kOk, static_cast<size_t>(n)};
    }
    if (n == 0) {
      return {IoStatus::kEof, 0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult SocketStream::WriteSome(std::span<const uint8_t> data) {
  const int fd = fd_.load(std::memory_order_relaxed);
  while (true) {
    ssize_t n =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) {
      return {IoStatus::kOk, static_cast<size_t>(n)};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

void SocketStream::Close() {
  // Shutdown only: this is the wake-up for a reader blocked in recv(), so
  // closing the fd here would race that recv() with fd reuse. The fd is
  // released by the destructor, after the owner joins its reader.
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

SocketListener::~SocketListener() {
  Close();
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) {
    ::close(fd);
  }
}

bool SocketListener::Listen(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  if (::listen(fd_, 16) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  return true;
}

namespace {

// accept(2) failures that do not mean the listener itself is dead. EMFILE /
// ENFILE / ENOMEM / ENOBUFS clear up when some other connection releases its
// fd; ECONNABORTED and EINTR are momentary by definition. EAGAIN appears
// here because injected test errnos route through the same classifier.
bool IsTransientAcceptError(int err) {
  switch (err) {
    case EINTR:
    case ECONNABORTED:
    case EMFILE:
    case ENFILE:
    case ENOMEM:
    case ENOBUFS:
    case EAGAIN:
      return true;
    default:
      return false;
  }
}

// Accepts with FD_CLOEXEC (and optionally O_NONBLOCK) applied atomically.
// accept4(2) closes the race where a concurrent fork() in a spawned tool
// inherits the freshly accepted fd before fcntl could mark it; the fcntl
// fallback keeps non-Linux builds working at the cost of that window.
int AcceptClient(int listen_fd, bool nonblocking) {
#ifdef SOCK_CLOEXEC
  int flags = SOCK_CLOEXEC | (nonblocking ? SOCK_NONBLOCK : 0);
  return ::accept4(listen_fd, nullptr, nullptr, flags);
#else
  int client = ::accept(listen_fd, nullptr, nullptr);
  if (client >= 0) {
    ::fcntl(client, F_SETFD, FD_CLOEXEC);
    if (nonblocking) {
      ::fcntl(client, F_SETFL, ::fcntl(client, F_GETFL, 0) | O_NONBLOCK);
    }
  }
  return client;
#endif
}

}  // namespace

std::unique_ptr<ByteStream> SocketListener::Accept(bool nonblocking) {
  uint32_t backoff_ms = 0;  // 0 → 1 → 2 → ... → 100 (capped)
  while (true) {
    if (closed_.load(std::memory_order_relaxed) || fd_ < 0) {
      return nullptr;
    }
    int client;
    int err;
    if (!injected_errnos_.empty()) {
      client = -1;
      err = injected_errnos_.front();
      injected_errnos_.erase(injected_errnos_.begin());
    } else {
      client = AcceptClient(fd_, nonblocking);
      err = errno;
    }
    if (client >= 0) {
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::make_unique<SocketStream>(client);
    }
    // Close() runs shutdown(2) to unblock us, which surfaces as EINVAL (or
    // EBADF once the destructor ran): re-check the flag before classifying.
    if (closed_.load(std::memory_order_relaxed)) {
      return nullptr;
    }
    if (!IsTransientAcceptError(err)) {
      LogLine(LogLevel::kWarning)
          << "accept failed (fatal): " << std::strerror(err);
      return nullptr;
    }
    // Transient burst: log the first failure only, count all of them, and
    // back off exponentially so an fd-exhaustion storm doesn't spin a core.
    if (backoff_ms == 0) {
      LogLine(LogLevel::kWarning)
          << "accept failed (transient, retrying): " << std::strerror(err);
      backoff_ms = 1;
    } else {
      backoff_ms = std::min<uint32_t>(backoff_ms * 2, 100);
    }
    accept_retries_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

void SocketListener::Close() {
  // Same split as SocketStream: shutdown() unblocks a thread in Accept();
  // the destructor (after the accept thread is joined) closes the fd.
  closed_.store(true, std::memory_order_relaxed);
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void SocketListener::InjectAcceptErrnosForTest(std::vector<int> errnos) {
  injected_errnos_ = std::move(errnos);
}

std::unique_ptr<ByteStream> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    LogLine(LogLevel::kWarning) << "connect to " << host << ":" << port
                                << " failed: " << std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketStream>(fd);
}

}  // namespace aud
