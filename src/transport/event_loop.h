// EventLoop: readiness-driven I/O multiplexing for the connection plane.
// One instance owns one thread and a set of watched descriptors; the
// server shards accepted sockets across a small pool of these by fd hash
// instead of spending a reader + writer thread per client (DESIGN.md
// decision 14). The epoll backend is the Linux fast path (level-triggered
// by default, optionally edge-triggered); a poll(2) backend provides the
// portable fallback and is selectable at runtime so tests cover it on any
// host.
//
// Threading contract: handlers and the sweep callback run on the loop
// thread only, with no EventLoop lock held — a handler may freely take the
// server's big lock, re-enter Add/Remove/SetWantWrite, or tear its own
// connection down. Registration calls are thread-safe: from the loop
// thread they apply immediately, from any other thread they enqueue onto a
// pending-op queue (guarded by mu_, rank kEventLoop) and wake the loop via
// a self-pipe.

#ifndef SRC_TRANSPORT_EVENT_LOOP_H_
#define SRC_TRANSPORT_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/obs.h"
#include "src/common/thread_annotations.h"

namespace aud {

// Readiness bits passed to handlers.
inline constexpr uint32_t kLoopReadable = 1u << 0;
inline constexpr uint32_t kLoopWritable = 1u << 1;
inline constexpr uint32_t kLoopError = 1u << 2;  // EPOLLERR/EPOLLHUP

// Optional observability sinks (all may be null). The server points these
// at its ServerMetrics fields so every loop feeds the same v6 stats.
struct EventLoopMetrics {
  obs::Counter* epoll_waits = nullptr;         // wait syscalls issued
  obs::Counter* wakeups = nullptr;             // self-pipe wakeups consumed
  obs::Counter* readiness_spurious = nullptr;  // events with no useful work
  obs::Gauge* fds_watched = nullptr;           // currently registered fds
  obs::LatencyHistogram* dispatch_us = nullptr;  // per-handler run time
};

struct EventLoopOptions {
  enum class Backend : uint8_t {
    kAuto,   // epoll on Linux, poll elsewhere
    kEpoll,  // fails Start() where unavailable
    kPoll,   // portable fallback, also usable on Linux for test coverage
  };
  Backend backend = Backend::kAuto;
  // Edge-triggered readiness (epoll backend only). Handlers must drain to
  // kWouldBlock — which ours do under level-triggering too, so both modes
  // share one state machine.
  bool edge_triggered = false;
  // Upper bound on one wait; bounds sweep latency for drain deadlines.
  uint32_t wait_timeout_ms = 50;
  EventLoopMetrics metrics;
};

class EventLoop {
 public:
  using Handler = std::function<void(uint32_t events)>;

  explicit EventLoop(EventLoopOptions options = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Spawns the loop thread. False if the backend could not be set up.
  bool Start();

  // Stops and joins the loop thread; pending ops are discarded. Idempotent.
  void Stop();

  // Periodic callback run on the loop thread after every wait round (so at
  // least every wait_timeout_ms). Set before Start.
  void set_sweep(std::function<void()> sweep) { sweep_ = std::move(sweep); }

  // Watches `fd` for readability (writability is armed separately). The
  // handler stays alive through any in-flight dispatch even if Remove runs
  // from inside it. Call only after Start.
  void Add(int fd, Handler handler);

  // Stops watching `fd`. From the loop thread this applies immediately;
  // from other threads the handler may fire once more before the op lands.
  void Remove(int fd);

  // Arms or disarms write-readiness interest for a watched fd.
  void SetWantWrite(int fd, bool want);

  // Forces the loop out of its wait (used by Stop and cross-thread ops).
  void Wakeup();

  bool using_epoll() const { return use_epoll_; }
  bool edge_triggered() const { return use_epoll_ && options_.edge_triggered; }
  bool OnLoopThread() const {
    // Before the loop thread publishes its id, callers see "not the loop
    // thread" and take the (always-correct) queued-op path.
    return std::this_thread::get_id() ==
           loop_thread_id_.load(std::memory_order_acquire);
  }

 private:
  struct Op {
    enum class Kind : uint8_t { kAdd, kRemove, kWantWrite };
    Kind kind;
    int fd = -1;
    bool want_write = false;
    std::shared_ptr<Handler> handler;
  };
  // Loop-thread-only registration record. The shared_ptr lets a handler
  // Remove itself mid-dispatch without destroying the std::function it is
  // currently executing.
  struct Watch {
    std::shared_ptr<Handler> handler;
    bool want_write = false;
  };

  void Run();
  void ApplyPending();
  void ApplyOp(Op op);                      // loop thread only
  void SyncBackend(int fd, const Watch& watch, bool add);  // epoll_ctl
  void WaitAndDispatch();
  void DispatchEvent(int fd, uint32_t events);
  void DrainWakePipe();

  EventLoopOptions options_;
  bool use_epoll_ = false;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe; [0] is watched by the loop

  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<bool> running_{false};
  std::function<void()> sweep_;

  Mutex mu_{LockRank::kEventLoop, "EventLoop::mu_"};
  std::vector<Op> pending_ AUD_GUARDED_BY(mu_);

  // Owned by the loop thread; cross-thread mutation goes through pending_.
  std::unordered_map<int, Watch> watches_;
};

}  // namespace aud

#endif  // SRC_TRANSPORT_EVENT_LOOP_H_
