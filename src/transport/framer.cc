#include "src/transport/framer.h"

#include <array>

namespace aud {

std::optional<FramedMessage> ReadMessage(ByteStream* stream) {
  std::array<uint8_t, kHeaderSize> header_bytes;
  if (!ReadFully(stream, header_bytes)) {
    return std::nullopt;
  }
  Result<MessageHeader> header = DecodeHeaderStrict(header_bytes);
  if (!header.ok()) {
    return std::nullopt;
  }
  FramedMessage msg;
  msg.header = header.take();
  msg.payload.resize(msg.header.length);
  if (msg.header.length > 0 && !ReadFully(stream, msg.payload)) {
    return std::nullopt;
  }
  return msg;
}

bool WriteMessage(ByteStream* stream, MessageType type, uint16_t code, uint32_t sequence,
                  std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame = FrameMessage(type, code, sequence, payload);
  return stream->Write(frame);
}

}  // namespace aud
