#include "src/transport/framer.h"

#include <array>

namespace aud {

std::optional<FramedMessage> ReadMessage(ByteStream* stream) {
  std::array<uint8_t, kHeaderSize> header_bytes;
  if (!ReadFully(stream, header_bytes)) {
    return std::nullopt;
  }
  Result<MessageHeader> header = DecodeHeaderStrict(header_bytes);
  if (!header.ok()) {
    return std::nullopt;
  }
  FramedMessage msg;
  msg.header = header.take();
  msg.payload.resize(msg.header.length);
  if (msg.header.length > 0 && !ReadFully(stream, msg.payload)) {
    return std::nullopt;
  }
  return msg;
}

bool WriteMessage(ByteStream* stream, MessageType type, uint16_t code, uint32_t sequence,
                  std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame = FrameMessage(type, code, sequence, payload);
  return stream->Write(frame);
}

FrameStatus Framer::TryReadMessage(ByteStream* stream, FramedMessage* out) {
  while (true) {
    if (state_ == State::kDead) {
      return FrameStatus::kEof;
    }
    if (state_ == State::kHeader) {
      while (filled_ < kHeaderSize) {
        IoResult r = stream->ReadSome(
            std::span<uint8_t>(header_bytes_).subspan(filled_));
        if (r.status == IoStatus::kWouldBlock) {
          return FrameStatus::kWouldBlock;
        }
        if (r.status != IoStatus::kOk) {
          state_ = State::kDead;
          return FrameStatus::kEof;
        }
        filled_ += r.bytes;
      }
      Result<MessageHeader> header = DecodeHeaderStrict(header_bytes_);
      if (!header.ok()) {
        state_ = State::kDead;
        return FrameStatus::kMalformed;
      }
      partial_.header = header.take();
      partial_.payload.resize(partial_.header.length);
      state_ = State::kPayload;
      filled_ = 0;
    }
    while (filled_ < partial_.payload.size()) {
      IoResult r = stream->ReadSome(
          std::span<uint8_t>(partial_.payload).subspan(filled_));
      if (r.status == IoStatus::kWouldBlock) {
        return FrameStatus::kWouldBlock;
      }
      if (r.status != IoStatus::kOk) {
        state_ = State::kDead;
        return FrameStatus::kEof;
      }
      filled_ += r.bytes;
    }
    *out = std::move(partial_);
    partial_ = FramedMessage{};
    state_ = State::kHeader;
    filled_ = 0;
    return FrameStatus::kMessage;
  }
}

}  // namespace aud
