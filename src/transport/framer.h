// Message framing over a ByteStream: assembles the protocol's
// header+payload messages out of arbitrary read chunks, and writes framed
// messages atomically.

#ifndef SRC_TRANSPORT_FRAMER_H_
#define SRC_TRANSPORT_FRAMER_H_

#include <optional>
#include <vector>

#include "src/transport/stream.h"
#include "src/wire/messages.h"

namespace aud {

// A complete wire message.
struct FramedMessage {
  MessageHeader header;
  std::vector<uint8_t> payload;
};

// Blocking read of exactly one message. Returns nullopt on EOF or a
// malformed header (oversized length).
std::optional<FramedMessage> ReadMessage(ByteStream* stream);

// Writes one framed message; returns false on stream failure.
bool WriteMessage(ByteStream* stream, MessageType type, uint16_t code, uint32_t sequence,
                  std::span<const uint8_t> payload);

}  // namespace aud

#endif  // SRC_TRANSPORT_FRAMER_H_
