// Message framing over a ByteStream: assembles the protocol's
// header+payload messages out of arbitrary read chunks, and writes framed
// messages atomically.

#ifndef SRC_TRANSPORT_FRAMER_H_
#define SRC_TRANSPORT_FRAMER_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/transport/stream.h"
#include "src/wire/messages.h"

namespace aud {

// A complete wire message.
struct FramedMessage {
  MessageHeader header;
  std::vector<uint8_t> payload;
};

// Blocking read of exactly one message. Returns nullopt on EOF or a
// malformed header (oversized length).
std::optional<FramedMessage> ReadMessage(ByteStream* stream);

// Writes one framed message; returns false on stream failure.
bool WriteMessage(ByteStream* stream, MessageType type, uint16_t code, uint32_t sequence,
                  std::span<const uint8_t> payload);

// Outcome of one TryReadMessage attempt.
enum class FrameStatus : uint8_t {
  kMessage,     // `*out` holds a complete message
  kWouldBlock,  // mid-frame; call again when the stream is readable
  kEof,         // orderly end-of-stream at a frame boundary or mid-frame
  kMalformed,   // header failed strict decode; the stream is unusable
};

// Resumable frame reassembly for non-blocking streams: accumulates header
// and payload bytes across ReadSome calls, surfacing kWouldBlock cleanly on
// partial frames where the blocking ReadMessage would stall the thread.
// One instance per connection direction; not thread-safe.
class Framer {
 public:
  // Attempts to complete the in-progress message. kMessage fills `*out`
  // and resets for the next frame; kWouldBlock preserves partial state.
  // After kEof or kMalformed the framer is sticky-dead.
  FrameStatus TryReadMessage(ByteStream* stream, FramedMessage* out);

  // True while a frame is partially assembled (useful for distinguishing a
  // clean EOF from a mid-frame cut).
  bool mid_frame() const { return state_ == State::kPayload || filled_ > 0; }

 private:
  enum class State : uint8_t { kHeader, kPayload, kDead };

  State state_ = State::kHeader;
  size_t filled_ = 0;  // bytes of the current section accumulated so far
  std::array<uint8_t, kHeaderSize> header_bytes_{};
  FramedMessage partial_;
};

}  // namespace aud

#endif  // SRC_TRANSPORT_FRAMER_H_
