// The audio protocol: wire-level vocabulary shared by client (Alib) and
// server. Mirrors section 5 of the paper: connections, virtual devices,
// LOUDs, wires, sounds, command queues, events, properties, and audio-
// manager support (redirection, ambient domains).
//
// Message framing (after connection setup): every message starts with a
// 12-byte header (all little-endian):
//
//   u8  type       (MessageType)
//   u8  pad
//   u16 code       (request opcode / event type / error code)
//   u32 length     (payload bytes following the header)
//   u32 sequence   (requests: client-assigned, monotonically increasing;
//                   replies/errors: sequence of the causing request;
//                   events: sequence of the last request processed)
//
// Requests are asynchronous (section 4.1): the server never acknowledges a
// successful request unless it has a reply; errors arrive asynchronously
// tagged with the failing request's sequence number.

#ifndef SRC_WIRE_PROTOCOL_H_
#define SRC_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string_view>

#include "src/common/ids.h"

namespace aud {

// Protocol revision implemented by this tree. Minor 1 added server
// introspection (GetServerStats / GetServerTrace); minor 2 added request
// tracing and per-entity statistics (GetRequestTrace / GetEntityStats).
inline constexpr uint16_t kProtocolMajor = 1;
inline constexpr uint16_t kProtocolMinor = 2;

// Connection-setup magic ("AUDP").
inline constexpr uint32_t kSetupMagic = 0x41554450u;

// Wire message kinds.
enum class MessageType : uint8_t {
  kRequest = 1,
  kReply = 2,
  kEvent = 3,
  kError = 4,
};

// Fixed header size in bytes.
inline constexpr size_t kHeaderSize = 12;

// Hard cap on a single message payload; protects the server from a
// malformed length field.
inline constexpr uint32_t kMaxPayload = 16u << 20;

// Connection-setup opcode: the code carried by the first framed message in
// each direction (SetupRequest / SetupReply payloads).
inline constexpr uint16_t kSetupOpcode = 0xFFFF;

// Request opcodes.
enum class Opcode : uint16_t {
  kNoOp = 0,

  // LOUD tree construction (section 5.1).
  kCreateLoud = 1,
  kDestroyLoud = 2,
  kCreateVirtualDevice = 3,
  kDestroyVirtualDevice = 4,
  kAugmentVirtualDevice = 5,   // Tighten attributes post-map (section 5.3).
  kQueryVirtualDevice = 6,     // -> VirtualDeviceReply

  // Wires (section 5.2).
  kCreateWire = 7,
  kDestroyWire = 8,
  kQueryWires = 9,             // -> WiresReply

  // Mapping and the active stack (sections 5.3, 5.4).
  kMapLoud = 10,
  kUnmapLoud = 11,
  kRaiseLoud = 12,
  kLowerLoud = 13,

  // Sounds (section 5.6).
  kCreateSound = 14,
  kDestroySound = 15,
  kWriteSoundData = 16,
  kReadSoundData = 17,         // -> SoundDataReply
  kQuerySound = 18,            // -> SoundInfoReply
  kLoadCatalogueSound = 19,    // Bind a server-side catalogue entry to an id.
  kListCatalogue = 20,         // -> CatalogueReply
  kSaveCatalogueSound = 21,    // Store a sound into the server catalogue.

  // Command queues (section 5.5).
  kEnqueueCommands = 22,
  kImmediateCommand = 23,
  kStartQueue = 24,
  kStopQueue = 25,
  kPauseQueue = 26,            // client-paused state
  kResumeQueue = 27,
  kFlushQueue = 28,
  kQueryQueue = 29,            // -> QueueStateReply

  // Events (section 5.7).
  kSelectEvents = 30,
  kSetSyncMarks = 31,          // Periodic sync events during playback.

  // Properties and audio-manager support (section 5.8).
  kChangeProperty = 32,
  kDeleteProperty = 33,
  kGetProperty = 34,           // -> PropertyReply
  kListProperties = 35,        // -> PropertyListReply
  kSetRedirect = 36,           // Audio manager claims map/restack redirection.

  // Introspection.
  kQueryDeviceLoud = 37,       // -> DeviceLoudReply (the device LOUD tree).
  kQueryActiveStack = 38,      // -> ActiveStackReply
  kGetServerTime = 39,         // -> ServerTimeReply
  kSync = 40,                  // Round-trip no-op -> ServerTimeReply.
  kQueryLoud = 41,             // -> LoudStateReply

  // Observability (the server is "just another client" of its own
  // statistics, the way X exposes server internals in-protocol).
  kGetServerStats = 42,        // -> ServerStatsReply
  kGetServerTrace = 43,        // -> ServerTraceReply

  // Request tracing and per-entity statistics (protocol minor 2).
  kGetRequestTrace = 44,       // -> RequestTraceReply (spans of one trace id)
  kGetEntityStats = 45,        // -> EntityStatsReply (per-conn / per-root)

  kOpcodeCount = 46,
};

// Human-readable opcode name ("CreateLoud", "GetServerStats", ...), for
// stats output and logs.
std::string_view OpcodeName(Opcode opcode);

// Virtual-device classes (section 5.1).
enum class DeviceClass : uint8_t {
  kInput = 0,             // Microphones and friends; ChangeGain.
  kOutput = 1,            // Speakers, headphones; ChangeGain.
  kPlayer = 2,            // Sound data -> output port.
  kRecorder = 3,          // Input port -> sound data.
  kTelephone = 4,         // Combined input/output; Dial, Answer, SendDTMF...
  kMixer = 5,             // N inputs -> combined outputs; SetGain per input.
  kSpeechSynthesizer = 6, // SpeakText and vocal-tract controls.
  kSpeechRecognizer = 7,  // Train/SetVocabulary; recognition events.
  kMusicSynthesizer = 8,  // Note-based audio.
  kCrossbar = 9,          // Input->output routing switch; SetState.
  kDsp = 10,              // Software stream manipulation.
};

std::string_view DeviceClassName(DeviceClass cls);

// Device commands, issued in queued or immediate mode (section 5.1).
enum class DeviceCommand : uint16_t {
  // Generic.
  kStop = 0,
  kPause = 1,
  kResume = 2,
  kChangeGain = 3,       // arg: i32 gain (centi-percent)

  // Player.
  kPlay = 4,             // arg: u32 sound id [, i64 start, i64 end sample]

  // Recorder.
  kRecord = 5,           // arg: u32 sound id, u8 termination flags, u32 max ms

  // Telephone.
  kDial = 6,             // arg: string number
  kAnswer = 7,
  kHangUp = 8,
  kSendDtmf = 9,         // arg: string digits

  // Mixer.
  kSetInputGain = 10,    // arg: u16 input index, i32 gain

  // Speech synthesizer.
  kSpeakText = 11,       // arg: string text
  kSetTextLanguage = 12, // arg: string language tag
  kSetValues = 13,       // arg: attr list of vocal-tract parameters
  kSetExceptionList = 14,// arg: repeated (word, pronunciation)

  // Speech recognizer.
  kTrain = 15,           // arg: string word, u32 sound id (template audio)
  kSetVocabulary = 16,   // arg: repeated string words
  kAdjustContext = 17,   // arg: repeated string active words
  kSaveVocabulary = 18,  // arg: string catalogue name

  // Music synthesizer.
  kNote = 19,            // arg: u8 midi note, u8 velocity, u32 duration ms
  kSetVoice = 20,        // arg: u8 waveform, ADSR params
  kSetState = 21,        // Crossbar routing matrix: repeated (in, out, on)

  // Queue-only synchronization pseudo-commands (section 5.5). These target
  // no device (device id = kNoResource).
  kCoBegin = 100,
  kCoEnd = 101,
  kDelay = 102,          // arg: u32 milliseconds
  kDelayEnd = 103,
};

std::string_view DeviceCommandName(DeviceCommand cmd);

// True for CoBegin/CoEnd/Delay/DelayEnd.
inline constexpr bool IsQueuePseudoCommand(DeviceCommand cmd) {
  return static_cast<uint16_t>(cmd) >= 100;
}

// Commands that must be synchronized with others and therefore may be
// issued only in queued mode (section 5.1: "Some device commands, such as
// Play or Record ... can be issued only in queued mode").
inline constexpr bool IsQueuedOnlyCommand(DeviceCommand cmd) {
  switch (cmd) {
    case DeviceCommand::kPlay:
    case DeviceCommand::kRecord:
    case DeviceCommand::kDial:
    case DeviceCommand::kAnswer:
    case DeviceCommand::kSendDtmf:
    case DeviceCommand::kSpeakText:
    case DeviceCommand::kNote:
      return true;
    default:
      return IsQueuePseudoCommand(cmd);
  }
}

// Event types (section 5.7: command queue, device and synchronization
// categories).
enum class EventType : uint16_t {
  // Command-queue events.
  kQueueStarted = 0,
  kQueueStopped = 1,
  kQueuePaused = 2,       // arg: u8 reason (0 client, 1 server)
  kQueueResumed = 3,
  kCommandDone = 4,       // arg: u32 command tag, u16 command code, u8 aborted

  // LOUD lifecycle.
  kMapNotify = 5,
  kUnmapNotify = 6,
  kActivateNotify = 7,
  kDeactivateNotify = 8,

  // Audio-manager redirection (section 5.8).
  kMapRequest = 9,        // Sent to the redirect holder instead of mapping.
  kRestackRequest = 10,

  // Telephone device events.
  kTelephoneRing = 11,    // arg: string caller id (may be empty), u32 line
  kTelephoneAnswered = 12,
  kTelephoneDialDone = 13,// arg: u8 call state at completion
  kCallProgress = 14,     // arg: u8 CallState
  kDtmfReceived = 15,     // arg: u8 digit character

  // Recorder device events.
  kRecorderStarted = 16,
  kRecorderStopped = 17,  // arg: u8 reason, u64 samples recorded

  // Recognizer events.
  kRecognition = 18,      // arg: string word, u32 score (0..10000)

  // Synchronization events (section 5.7, the Soundviewer driver).
  kSyncMark = 19,         // arg: u64 position samples, i64 device time, u32 total

  // Properties.
  kPropertyNotify = 20,   // arg: string name, u8 deleted

  kEventTypeCount = 21,
};

std::string_view EventTypeName(EventType type);

// Event-selection mask bits (SelectEvents).
enum EventMask : uint32_t {
  kQueueEvents = 1u << 0,
  kLifecycleEvents = 1u << 1,
  kTelephoneEvents = 1u << 2,
  kRecorderEvents = 1u << 3,
  kRecognitionEvents = 1u << 4,
  kSyncEvents = 1u << 5,
  kPropertyEvents = 1u << 6,
  kRedirectEvents = 1u << 7,  // Audio manager only; granted by SetRedirect.
  kAllEvents = 0xFF,
};

// Telephone call states (CallProgress payload).
enum class CallState : uint8_t {
  kIdle = 0,
  kDialing = 1,
  kRinging = 2,     // Outbound: ringback; inbound: ringing.
  kConnected = 3,
  kBusy = 4,
  kHungUp = 5,      // Far end went on-hook.
  kFailed = 6,      // No such number / reorder.
};

std::string_view CallStateName(CallState state);

// Recorder stop reasons (RecorderStopped payload).
enum class RecordStopReason : uint8_t {
  kStopped = 0,      // Explicit Stop command.
  kPauseDetected = 1,// Termination condition: trailing silence (section 5.9).
  kMaxDuration = 2,
  kSourceEnded = 3,  // e.g. caller hung up.
};

// Queue states (section 5.5).
enum class QueueState : uint8_t {
  kStopped = 0,
  kStarted = 1,
  kClientPaused = 2,
  kServerPaused = 3,
};

std::string_view QueueStateName(QueueState state);

// Record termination condition flags (Record command arg).
enum RecordTermination : uint8_t {
  kTerminateOnStop = 0,
  kTerminateOnPause = 1u << 0,   // stop after trailing silence
  kTerminateOnHangup = 1u << 1,  // stop when the wired source ends
};

}  // namespace aud

#endif  // SRC_WIRE_PROTOCOL_H_
