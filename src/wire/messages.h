// Typed protocol messages: the payloads carried behind the 12-byte header.
// Each struct has Encode(ByteWriter*) and a static Decode(ByteReader*);
// decoding never reads out of bounds (ByteReader saturates) and callers
// validate reader.ok() after the fact.

#ifndef SRC_WIRE_MESSAGES_H_
#define SRC_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/byte_io.h"
#include "src/common/ids.h"
#include "src/common/obs.h"
#include "src/common/sample.h"
#include "src/common/status.h"
#include "src/wire/attributes.h"
#include "src/wire/protocol.h"

namespace aud {

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

struct MessageHeader {
  MessageType type = MessageType::kRequest;
  uint16_t code = 0;     // opcode / event type / error code
  uint32_t length = 0;   // payload length
  uint32_t sequence = 0;

  void Encode(ByteWriter* w) const;
  static MessageHeader Decode(ByteReader* r);
};

// Framing-level header validation: decodes exactly one 12-byte header and
// rejects frames no conforming peer produces — truncation, a non-zero
// reserved byte, an unknown message type, or a length past kMaxPayload.
// All failures are ErrorCode::kConnection: past this point the byte stream
// cannot be re-synchronised, so the transport drops the connection.
Result<MessageHeader> DecodeHeaderStrict(std::span<const uint8_t> bytes);

// Request-level opcode check, shared by the dispatcher's pre-switch guard:
// a well-framed request whose opcode this server does not implement is
// ErrorCode::kBadRequest, answered in-protocol rather than by disconnect.
Status ValidateRequestHeader(const MessageHeader& header);

// ---------------------------------------------------------------------------
// Connection setup (exchanged before framed messages)
// ---------------------------------------------------------------------------

struct SetupRequest {
  uint32_t magic = kSetupMagic;
  uint16_t major = kProtocolMajor;
  uint16_t minor = kProtocolMinor;
  std::string client_name;

  void Encode(ByteWriter* w) const;
  static SetupRequest Decode(ByteReader* r);
};

struct SetupReply {
  uint8_t success = 0;
  uint16_t major = kProtocolMajor;
  uint16_t minor = kProtocolMinor;
  ResourceId id_base = 0;      // First resource id this client may allocate.
  uint32_t id_count = 0;       // Number of ids in the client's block.
  ResourceId device_loud = 0;  // Root of the device LOUD tree (section 5.1).
  std::string server_name;
  std::string reason;          // On failure.

  void Encode(ByteWriter* w) const;
  static SetupReply Decode(ByteReader* r);
};

// ---------------------------------------------------------------------------
// Command specs (EnqueueCommands / ImmediateCommand)
// ---------------------------------------------------------------------------

// One device or queue command. `tag` is a client-chosen cookie echoed in
// the CommandDone event so applications can correlate completions.
struct CommandSpec {
  ResourceId device = kNoResource;  // kNoResource for queue pseudo-commands.
  DeviceCommand command = DeviceCommand::kStop;
  uint32_t tag = 0;
  std::vector<uint8_t> args;

  void Encode(ByteWriter* w) const;
  static CommandSpec Decode(ByteReader* r);
};

// Typed command-argument payloads. Helpers build/parse CommandSpec::args.

struct PlayArgs {
  ResourceId sound = kNoResource;
  int64_t start_sample = 0;
  int64_t end_sample = -1;  // -1 = to end of sound

  std::vector<uint8_t> Encode() const;
  static PlayArgs Decode(std::span<const uint8_t> args);
};

struct RecordArgs {
  ResourceId sound = kNoResource;
  uint8_t termination = kTerminateOnStop;  // RecordTermination flags
  uint32_t max_ms = 0;                     // 0 = unlimited

  std::vector<uint8_t> Encode() const;
  static RecordArgs Decode(std::span<const uint8_t> args);
};

struct StringArg {  // Dial, SendDTMF, SpeakText, SetTextLanguage, SaveVocabulary
  std::string value;

  std::vector<uint8_t> Encode() const;
  static StringArg Decode(std::span<const uint8_t> args);
};

struct GainArgs {  // ChangeGain
  int32_t gain = 10000;

  std::vector<uint8_t> Encode() const;
  static GainArgs Decode(std::span<const uint8_t> args);
};

struct InputGainArgs {  // Mixer SetGain (per-input percentage, section 5.1)
  uint16_t input = 0;
  int32_t gain = 10000;

  std::vector<uint8_t> Encode() const;
  static InputGainArgs Decode(std::span<const uint8_t> args);
};

struct DelayArgs {  // Queue Delay pseudo-command
  uint32_t milliseconds = 0;

  std::vector<uint8_t> Encode() const;
  static DelayArgs Decode(std::span<const uint8_t> args);
};

struct TrainArgs {  // Recognizer Train: associate a word with template audio
  std::string word;
  ResourceId sound = kNoResource;

  std::vector<uint8_t> Encode() const;
  static TrainArgs Decode(std::span<const uint8_t> args);
};

struct WordListArgs {  // SetVocabulary / AdjustContext
  std::vector<std::string> words;

  std::vector<uint8_t> Encode() const;
  static WordListArgs Decode(std::span<const uint8_t> args);
};

struct ExceptionListArgs {  // Synthesizer SetExceptionList
  std::vector<std::pair<std::string, std::string>> entries;  // word -> phonemes

  std::vector<uint8_t> Encode() const;
  static ExceptionListArgs Decode(std::span<const uint8_t> args);
};

struct NoteArgs {  // Music synthesizer Note
  uint8_t midi_note = 60;
  uint8_t velocity = 100;
  uint32_t duration_ms = 250;

  std::vector<uint8_t> Encode() const;
  static NoteArgs Decode(std::span<const uint8_t> args);
};

struct VoiceArgs {  // Music synthesizer SetVoice
  uint8_t waveform = 0;  // 0 sine, 1 square, 2 saw, 3 triangle
  uint16_t attack_ms = 10;
  uint16_t decay_ms = 50;
  uint16_t sustain_centi = 7000;  // sustain level, centi-percent
  uint16_t release_ms = 100;

  std::vector<uint8_t> Encode() const;
  static VoiceArgs Decode(std::span<const uint8_t> args);
};

struct CrossbarStateArgs {  // Crossbar SetState: routing matrix entries
  struct Route {
    uint16_t input = 0;
    uint16_t output = 0;
    uint8_t enabled = 1;
  };
  std::vector<Route> routes;

  std::vector<uint8_t> Encode() const;
  static CrossbarStateArgs Decode(std::span<const uint8_t> args);
};

struct ValuesArgs {  // Synthesizer SetValues: vocal-tract parameters
  AttrList values;

  std::vector<uint8_t> Encode() const;
  static ValuesArgs Decode(std::span<const uint8_t> args);
};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

struct CreateLoudReq {
  ResourceId id = kNoResource;
  ResourceId parent = kNoResource;  // kNoResource = root LOUD
  AttrList attrs;

  void Encode(ByteWriter* w) const;
  static CreateLoudReq Decode(ByteReader* r);
};

struct ResourceReq {  // Destroy*/Unmap/queue-control/etc: a single id.
  ResourceId id = kNoResource;

  void Encode(ByteWriter* w) const;
  static ResourceReq Decode(ByteReader* r);
};

struct CreateVirtualDeviceReq {
  ResourceId id = kNoResource;
  ResourceId loud = kNoResource;
  DeviceClass device_class = DeviceClass::kOutput;
  AttrList attrs;

  void Encode(ByteWriter* w) const;
  static CreateVirtualDeviceReq Decode(ByteReader* r);
};

struct AugmentVirtualDeviceReq {
  ResourceId id = kNoResource;
  AttrList attrs;

  void Encode(ByteWriter* w) const;
  static AugmentVirtualDeviceReq Decode(ByteReader* r);
};

struct CreateWireReq {
  ResourceId id = kNoResource;
  ResourceId src_device = kNoResource;
  uint16_t src_port = 0;
  ResourceId dst_device = kNoResource;
  uint16_t dst_port = 0;
  uint8_t has_format = 0;  // Constrain the wire type (section 5.2).
  AudioFormat format;

  void Encode(ByteWriter* w) const;
  static CreateWireReq Decode(ByteReader* r);
};

struct MapLoudReq {
  ResourceId loud = kNoResource;
  uint8_t override_redirect = 0;  // Audio manager bypasses redirection.

  void Encode(ByteWriter* w) const;
  static MapLoudReq Decode(ByteReader* r);
};

struct CreateSoundReq {
  ResourceId id = kNoResource;
  AudioFormat format;

  void Encode(ByteWriter* w) const;
  static CreateSoundReq Decode(ByteReader* r);
};

struct WriteSoundDataReq {
  ResourceId id = kNoResource;
  uint64_t offset = 0;  // byte offset
  std::vector<uint8_t> data;

  void Encode(ByteWriter* w) const;
  static WriteSoundDataReq Decode(ByteReader* r);
};

struct ReadSoundDataReq {
  ResourceId id = kNoResource;
  uint64_t offset = 0;
  uint32_t length = 0;

  void Encode(ByteWriter* w) const;
  static ReadSoundDataReq Decode(ByteReader* r);
};

struct NamedSoundReq {  // LoadCatalogueSound / SaveCatalogueSound
  ResourceId id = kNoResource;
  std::string name;

  void Encode(ByteWriter* w) const;
  static NamedSoundReq Decode(ByteReader* r);
};

struct EnqueueCommandsReq {
  ResourceId loud = kNoResource;
  std::vector<CommandSpec> commands;

  void Encode(ByteWriter* w) const;
  static EnqueueCommandsReq Decode(ByteReader* r);
};

struct ImmediateCommandReq {
  ResourceId loud = kNoResource;
  CommandSpec command;

  void Encode(ByteWriter* w) const;
  static ImmediateCommandReq Decode(ByteReader* r);
};

struct SelectEventsReq {
  ResourceId resource = kNoResource;  // LOUD or device-LOUD entry to watch.
  uint32_t mask = 0;

  void Encode(ByteWriter* w) const;
  static SelectEventsReq Decode(ByteReader* r);
};

struct SetSyncMarksReq {
  ResourceId loud = kNoResource;
  uint32_t interval_ms = 0;  // 0 disables sync marks.

  void Encode(ByteWriter* w) const;
  static SetSyncMarksReq Decode(ByteReader* r);
};

struct ChangePropertyReq {
  ResourceId resource = kNoResource;
  std::string name;
  std::string type;  // (name, value, type) triple, section 5.8.
  std::vector<uint8_t> value;

  void Encode(ByteWriter* w) const;
  static ChangePropertyReq Decode(ByteReader* r);
};

struct NamedPropertyReq {  // GetProperty / DeleteProperty
  ResourceId resource = kNoResource;
  std::string name;

  void Encode(ByteWriter* w) const;
  static NamedPropertyReq Decode(ByteReader* r);
};

struct SetRedirectReq {
  uint8_t enable = 1;

  void Encode(ByteWriter* w) const;
  static SetRedirectReq Decode(ByteReader* r);
};

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

struct VirtualDeviceReply {
  ResourceId id = kNoResource;
  DeviceClass device_class = DeviceClass::kOutput;
  uint8_t mapped = 0;
  uint8_t active = 0;
  ResourceId bound_device = kNoResource;  // Device-LOUD id once mapped (5.3).
  AttrList attrs;

  void Encode(ByteWriter* w) const;
  static VirtualDeviceReply Decode(ByteReader* r);
};

struct WireInfo {
  ResourceId id = kNoResource;
  ResourceId src_device = kNoResource;
  uint16_t src_port = 0;
  ResourceId dst_device = kNoResource;
  uint16_t dst_port = 0;
  AudioFormat format;

  void Encode(ByteWriter* w) const;
  static WireInfo Decode(ByteReader* r);
};

struct WiresReply {
  std::vector<WireInfo> wires;

  void Encode(ByteWriter* w) const;
  static WiresReply Decode(ByteReader* r);
};

struct SoundDataReply {
  ResourceId id = kNoResource;
  uint64_t offset = 0;
  std::vector<uint8_t> data;

  void Encode(ByteWriter* w) const;
  static SoundDataReply Decode(ByteReader* r);
};

struct SoundInfoReply {
  ResourceId id = kNoResource;
  AudioFormat format;
  uint64_t size_bytes = 0;
  uint64_t samples = 0;

  void Encode(ByteWriter* w) const;
  static SoundInfoReply Decode(ByteReader* r);
};

struct CatalogueEntry {
  std::string name;
  AudioFormat format;
  uint64_t size_bytes = 0;

  void Encode(ByteWriter* w) const;
  static CatalogueEntry Decode(ByteReader* r);
};

struct CatalogueReply {
  std::vector<CatalogueEntry> entries;

  void Encode(ByteWriter* w) const;
  static CatalogueReply Decode(ByteReader* r);
};

struct QueueStateReply {
  ResourceId loud = kNoResource;
  QueueState state = QueueState::kStopped;
  uint32_t depth = 0;        // Commands waiting (including current).
  uint32_t current_tag = 0;  // Tag of the in-flight command, 0 if none.

  void Encode(ByteWriter* w) const;
  static QueueStateReply Decode(ByteReader* r);
};

struct PropertyReply {
  ResourceId resource = kNoResource;
  uint8_t found = 0;
  std::string name;
  std::string type;
  std::vector<uint8_t> value;

  void Encode(ByteWriter* w) const;
  static PropertyReply Decode(ByteReader* r);
};

struct PropertyListReply {
  std::vector<std::string> names;

  void Encode(ByteWriter* w) const;
  static PropertyListReply Decode(ByteReader* r);
};

struct DeviceInfo {  // One entry in the device LOUD tree.
  ResourceId id = kNoResource;
  ResourceId parent = kNoResource;
  DeviceClass device_class = DeviceClass::kOutput;
  AttrList attrs;

  void Encode(ByteWriter* w) const;
  static DeviceInfo Decode(ByteReader* r);
};

struct DeviceLoudReply {
  ResourceId root = kNoResource;
  std::vector<DeviceInfo> devices;
  std::vector<WireInfo> hard_wires;  // Permanent physical connections (5.2).

  void Encode(ByteWriter* w) const;
  static DeviceLoudReply Decode(ByteReader* r);
};

struct ActiveStackEntry {
  ResourceId loud = kNoResource;
  uint8_t active = 0;

  void Encode(ByteWriter* w) const;
  static ActiveStackEntry Decode(ByteReader* r);
};

struct ActiveStackReply {
  std::vector<ActiveStackEntry> entries;  // Top of stack first.

  void Encode(ByteWriter* w) const;
  static ActiveStackReply Decode(ByteReader* r);
};

struct ServerTimeReply {
  int64_t server_time = 0;  // Ticks on the server clock.

  void Encode(ByteWriter* w) const;
  static ServerTimeReply Decode(ByteReader* r);
};

struct LoudStateReply {
  ResourceId loud = kNoResource;
  ResourceId parent = kNoResource;
  uint8_t mapped = 0;
  uint8_t active = 0;
  uint32_t children = 0;
  uint32_t devices = 0;

  void Encode(ByteWriter* w) const;
  static LoudStateReply Decode(ByteReader* r);
};

// -- Server statistics (GetServerStats) --------------------------------------------
//
// Versioning rule (docs/PROTOCOL.md): the reply opens with `stats_version`;
// new fields are only ever appended and bump the version, so an old client
// decodes the prefix it knows and skips the rest, and a new client talking
// to an old server zero-fills fields past the server's version.

inline constexpr uint32_t kServerStatsVersion = 7;

// Per-opcode dispatch accounting. Only opcodes with count > 0 are sent.
struct OpcodeStats {
  uint16_t opcode = 0;
  uint64_t count = 0;     // requests dispatched
  uint64_t errors = 0;    // asynchronous errors sent
  uint64_t total_us = 0;  // cumulative dispatch time

  void Encode(ByteWriter* w) const;
  static OpcodeStats Decode(ByteReader* r);
};

struct GetServerStatsReq {
  uint8_t include_opcodes = 1;  // 0 suppresses the per-opcode table.

  void Encode(ByteWriter* w) const;
  static GetServerStatsReq Decode(ByteReader* r);
};

struct ServerStatsReply {
  uint32_t stats_version = kServerStatsVersion;

  // Identity.
  uint16_t proto_major = kProtocolMajor;
  uint16_t proto_minor = kProtocolMinor;
  uint64_t uptime_ms = 0;      // wall time since the server state was built
  int64_t server_time = 0;     // Ticks on the engine clock
  uint32_t engine_threads = 0;
  uint32_t engine_rate_hz = 0;

  // Engine.
  uint64_t ticks_run = 0;
  uint64_t tick_overruns = 0;  // ticks whose cost exceeded their period
  obs::HistogramSnapshot tick_us;          // tick duration
  obs::HistogramSnapshot tick_jitter_us;   // realtime wakeup lateness
  obs::HistogramSnapshot islands_per_tick; // parallel ticks only
  obs::HistogramSnapshot worker_imbalance; // max-min islands per worker slot

  // Dispatcher.
  uint64_t requests_total = 0;
  uint64_t request_errors_total = 0;
  obs::HistogramSnapshot dispatch_us;      // all opcodes
  std::vector<OpcodeStats> opcodes;        // nonzero opcodes only

  // Connections and transport.
  int64_t connections_open = 0;
  uint64_t connections_total = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t events_sent = 0;

  // Objects and queues.
  uint32_t objects = 0;        // live registry entries
  uint32_t active_louds = 0;   // active entries of the active stack
  uint64_t commands_enqueued = 0;
  uint64_t commands_done = 0;
  uint64_t commands_aborted = 0;
  uint64_t queue_events = 0;   // queue lifecycle + CommandDone events emitted

  // Decoded-PCM cache (v2).
  uint64_t decoded_cache_hits = 0;
  uint64_t decoded_cache_misses = 0;
  uint64_t decoded_cache_bytes = 0;      // resident payload bytes
  uint64_t decoded_cache_evictions = 0;

  // Connection-lifecycle robustness (v3).
  uint64_t events_dropped = 0;      // events shed by egress overflow policy
  uint64_t egress_disconnects = 0;  // slow clients cut off by overflow
  int64_t egress_queued_bytes = 0;  // current total egress backlog
  uint64_t accept_retries = 0;      // transient accept() failures retried

  // Epoch-snapshot engine (v4, DESIGN.md decision 12).
  uint64_t epoch_commits = 0;             // epochs published (completed ticks)
  uint64_t dispatch_shard_contention = 0; // shard TryLock misses in dispatch
  obs::HistogramSnapshot lock_wait_us;    // state-lock / shard-lock waits
  obs::HistogramSnapshot epoch_commit_us; // commit critical-section duration

  // Request tracing (v5, DESIGN.md decision 13).
  obs::HistogramSnapshot mouth_to_ear_us; // play accept -> first mixed frame
  uint64_t trace_spans = 0;               // request-scoped spans recorded
  uint64_t trace_requests_sampled = 0;    // requests that got a root span
  uint32_t trace_sample_every = 0;        // sampling period; 0 = tracing off

  // Event-loop connection plane (v6, DESIGN.md decision 14).
  uint32_t loops = 0;                  // loop threads; 0 = thread-per-connection
  int64_t fds_watched = 0;             // fds currently registered with loops
  uint64_t epoll_waits = 0;            // wait syscalls across all loops
  uint64_t wakeups = 0;                // self-pipe wakeups consumed
  uint64_t readiness_spurious = 0;     // readiness that yielded no work
  obs::HistogramSnapshot loop_dispatch_us;  // one readiness handler run

  // Overload protection (v7, DESIGN.md decision 15).
  uint64_t admission_rejects = 0;       // connections closed at accept time
  uint64_t rate_limited = 0;            // requests refused by a token bucket
  uint64_t rate_limit_disconnects = 0;  // flooders cut by the hard policy
  uint64_t quota_denials = 0;           // requests refused by a client quota
  uint32_t draining = 0;                // 1 while a graceful drain runs
  uint64_t drain_forced_closes = 0;     // unflushed conns cut at the deadline
  uint64_t drain_duration_ms = 0;       // wall time of the last drain

  void Encode(ByteWriter* w) const;
  static ServerStatsReply Decode(ByteReader* r);
};

// -- Server trace (GetServerTrace) --------------------------------------------------

struct GetServerTraceReq {
  uint32_t max_events = 0;  // 0 = server default (one TraceRing's capacity)

  void Encode(ByteWriter* w) const;
  static GetServerTraceReq Decode(ByteReader* r);
};

struct TraceEventWire {
  int64_t t_us = 0;    // microseconds on the server trace clock
  uint64_t seq = 0;    // global ordering stamp
  uint32_t tid = 0;    // dense thread id
  uint16_t reason = 0; // obs::TraceReason
  uint32_t arg0 = 0;
  uint32_t arg1 = 0;
  // Span fields (protocol minor 2, appended): zero for point events.
  uint64_t trace = 0;   // request correlation id
  uint64_t parent = 0;  // seq of the parent span, 0 = root
  uint32_t dur_us = 0;  // span duration

  void Encode(ByteWriter* w) const;
  static TraceEventWire Decode(ByteReader* r);
};

struct ServerTraceReply {
  std::vector<TraceEventWire> events;  // oldest first

  void Encode(ByteWriter* w) const;
  static ServerTraceReply Decode(ByteReader* r);
};

// -- Request trace (GetRequestTrace, protocol minor 2) ------------------------------

inline constexpr uint32_t kRequestTraceVersion = 1;

struct GetRequestTraceReq {
  uint64_t trace_id = 0;   // 0 = most recently sampled request
  uint32_t max_spans = 0;  // 0 = server default

  void Encode(ByteWriter* w) const;
  static GetRequestTraceReq Decode(ByteReader* r);
};

struct RequestTraceReply {
  uint32_t trace_version = kRequestTraceVersion;
  uint64_t trace_id = 0;                // resolved id (useful when asked for 0)
  std::vector<TraceEventWire> spans;    // timestamp order, root first on ties

  void Encode(ByteWriter* w) const;
  static RequestTraceReply Decode(ByteReader* r);
};

// -- Per-entity statistics (GetEntityStats, protocol minor 2) -----------------------

inline constexpr uint32_t kEntityStatsVersion = 1;

struct GetEntityStatsReq {
  uint8_t include_devices = 1;  // 0 suppresses the per-root device table

  void Encode(ByteWriter* w) const;
  static GetEntityStatsReq Decode(ByteReader* r);
};

struct ConnectionStatsWire {
  uint32_t index = 0;        // connection slot (trace ids embed this)
  std::string name;          // client-reported name from setup
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t events_sent = 0;
  uint64_t events_dropped = 0;
  obs::HistogramSnapshot dispatch_us;

  void Encode(ByteWriter* w) const;
  static ConnectionStatsWire Decode(ByteReader* r);
};

struct DeviceStatsWire {
  ResourceId root = kNoResource;  // root LOUD owning the counters
  uint32_t owner = 0;             // owning connection index (0xFFFFFFFF = server)
  uint8_t active = 0;
  uint64_t frames_produced = 0;   // device frames fed into the mix
  uint64_t frames_consumed = 0;   // device frames drained from the mix

  void Encode(ByteWriter* w) const;
  static DeviceStatsWire Decode(ByteReader* r);
};

struct EntityStatsReply {
  uint32_t entity_version = kEntityStatsVersion;
  std::vector<ConnectionStatsWire> connections;
  std::vector<DeviceStatsWire> devices;

  void Encode(ByteWriter* w) const;
  static EntityStatsReply Decode(ByteReader* r);
};

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

// Generic wire event: type + the resource it concerns + typed args.
struct EventMessage {
  EventType type = EventType::kQueueStarted;
  ResourceId resource = kNoResource;  // Usually the root LOUD or device id.
  int64_t server_time = 0;
  std::vector<uint8_t> args;

  void Encode(ByteWriter* w) const;
  static EventMessage Decode(ByteReader* r);
};

// Typed event-argument payloads.

struct CommandDoneArgs {
  uint32_t tag = 0;
  uint16_t command = 0;  // DeviceCommand
  uint8_t aborted = 0;

  std::vector<uint8_t> Encode() const;
  static CommandDoneArgs Decode(std::span<const uint8_t> args);
};

struct QueuePausedArgs {
  uint8_t server_paused = 0;  // 1 = server-paused (deactivation), 0 = client.

  std::vector<uint8_t> Encode() const;
  static QueuePausedArgs Decode(std::span<const uint8_t> args);
};

struct TelephoneRingArgs {
  std::string caller_id;  // Empty when unavailable (attribute-dependent).
  uint32_t line = 0;

  std::vector<uint8_t> Encode() const;
  static TelephoneRingArgs Decode(std::span<const uint8_t> args);
};

struct CallProgressArgs {
  CallState state = CallState::kIdle;

  std::vector<uint8_t> Encode() const;
  static CallProgressArgs Decode(std::span<const uint8_t> args);
};

struct DtmfReceivedArgs {
  char digit = '0';

  std::vector<uint8_t> Encode() const;
  static DtmfReceivedArgs Decode(std::span<const uint8_t> args);
};

struct RecorderStoppedArgs {
  uint8_t reason = 0;  // RecordStopReason
  uint64_t samples = 0;

  std::vector<uint8_t> Encode() const;
  static RecorderStoppedArgs Decode(std::span<const uint8_t> args);
};

struct RecognitionArgs {
  std::string word;
  uint32_t score = 0;  // 0..10000, larger is more confident.

  std::vector<uint8_t> Encode() const;
  static RecognitionArgs Decode(std::span<const uint8_t> args);
};

struct SyncMarkArgs {
  uint64_t position_samples = 0;
  int64_t device_time = 0;  // Time on the *device* clock (footnote 8).
  uint64_t total_samples = 0;

  std::vector<uint8_t> Encode() const;
  static SyncMarkArgs Decode(std::span<const uint8_t> args);
};

struct PropertyNotifyArgs {
  std::string name;
  uint8_t deleted = 0;

  std::vector<uint8_t> Encode() const;
  static PropertyNotifyArgs Decode(std::span<const uint8_t> args);
};

struct MapRequestArgs {  // Redirected map/restack (section 5.8).
  ResourceId loud = kNoResource;
  uint8_t raise = 0;  // For RestackRequest: 1 = raise, 0 = lower.

  std::vector<uint8_t> Encode() const;
  static MapRequestArgs Decode(std::span<const uint8_t> args);
};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

struct ErrorMessage {
  ErrorCode code = ErrorCode::kOk;
  ResourceId resource = kNoResource;
  uint16_t opcode = 0;  // The failing request's opcode.
  std::string detail;

  void Encode(ByteWriter* w) const;
  static ErrorMessage Decode(ByteReader* r);
};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Encodes AudioFormat as (u8 encoding, u32 rate).
void EncodeFormat(ByteWriter* w, const AudioFormat& f);
AudioFormat DecodeFormat(ByteReader* r);

// Builds a complete framed message: header + payload.
std::vector<uint8_t> FrameMessage(MessageType type, uint16_t code, uint32_t sequence,
                                  std::span<const uint8_t> payload);

}  // namespace aud

#endif  // SRC_WIRE_MESSAGES_H_
