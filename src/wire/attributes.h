// Device attributes (section 5.1 "Device Attributes"). Attributes describe
// virtual devices (to constrain mapping onto physical devices) and physical
// devices (to describe actual capabilities). An application specifies a
// desired device "loosely" ("give me a speaker") or "tightly" ("give me
// the left speaker", or even a specific device id).
//
// On the wire an attribute list is: u16 count, then per entry
// (u16 tag, u8 kind, value) where kind selects u32 / i32 / string.

#ifndef SRC_WIRE_ATTRIBUTES_H_
#define SRC_WIRE_ATTRIBUTES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/byte_io.h"
#include "src/common/ids.h"
#include "src/common/sample.h"

namespace aud {

// Attribute tags. Wire-stable; append only.
enum class AttrTag : uint16_t {
  // Matching constraints / descriptions.
  kClass = 0,            // u32: DeviceClass
  kEncoding = 1,         // u32: Encoding a port produces/accepts
  kSampleRate = 2,       // u32: Hz
  kDeviceId = 3,         // u32: bind to this physical device (device LOUD id)
  kName = 4,             // string: human-readable device name
  kDirection = 5,        // u32: 0 source-ish, 1 sink-ish (informational)

  // Acoustic policy (section 5.8).
  kAmbientDomain = 6,    // u32: domain id (e.g. desktop=1, phone-line=2)
  kExclusiveInput = 7,   // u32 bool: preempt other inputs in the domain
  kExclusiveOutput = 8,  // u32 bool: preempt other outputs in the domain

  // Recorder capabilities (section 5.1).
  kAgc = 9,              // u32 bool
  kPauseCompression = 10,// u32 bool
  kPauseDetect = 11,     // u32 bool

  // Telephone capabilities (section 5.1).
  kPhoneNumber = 12,     // string
  kAreaCode = 13,        // string
  kLineCount = 14,       // u32
  kCallerId = 15,        // u32 bool: reports incoming caller identity
  kDigitalLine = 16,     // u32 bool: ISDN-style digital line

  // Mixer / crossbar shape.
  kInputPorts = 17,      // u32
  kOutputPorts = 18,     // u32

  // Synthesizer.
  kLanguage = 19,        // string

  // Positional hints ("the left speaker").
  kPosition = 20,        // string: "left", "right", "center"...

  // Speech-synthesizer vocal-tract values (SetValues command payload).
  kPitch = 21,           // u32: glottal pitch in Hz
  kSpeakingRate = 22,    // u32: percent of nominal rate (100 = 1.0x)
  kVolume = 23,          // u32: percent of full output
  kFormantShift = 24,    // u32: percent formant scaling (vocal-tract length)

  // Speech-recognizer: preload a vocabulary saved with SaveVocabulary.
  kVocabularyName = 25,  // string
};

// One attribute value.
using AttrValue = std::variant<uint32_t, int32_t, std::string>;

struct Attr {
  AttrTag tag;
  AttrValue value;

  bool operator==(const Attr&) const = default;
};

// An ordered attribute list with typed accessors.
class AttrList {
 public:
  AttrList() = default;
  AttrList(std::initializer_list<Attr> attrs) : attrs_(attrs) {}

  bool empty() const { return attrs_.empty(); }
  size_t size() const { return attrs_.size(); }
  const std::vector<Attr>& entries() const { return attrs_; }

  // Sets or replaces the value for `tag`.
  void Set(AttrTag tag, AttrValue value);
  void SetU32(AttrTag tag, uint32_t v) { Set(tag, v); }
  void SetI32(AttrTag tag, int32_t v) { Set(tag, v); }
  void SetString(AttrTag tag, std::string v) { Set(tag, std::move(v)); }
  void SetBool(AttrTag tag, bool v) { Set(tag, static_cast<uint32_t>(v ? 1 : 0)); }

  // Removes `tag` if present; returns whether it was.
  bool Remove(AttrTag tag);

  // Typed lookups; nullopt when absent or wrong type.
  std::optional<uint32_t> GetU32(AttrTag tag) const;
  std::optional<int32_t> GetI32(AttrTag tag) const;
  std::optional<std::string> GetString(AttrTag tag) const;
  bool GetBool(AttrTag tag, bool default_value = false) const;

  bool Has(AttrTag tag) const;

  // Merges `other` into this list, overwriting duplicate tags (used by
  // AugmentVirtualDevice, section 5.3).
  void Merge(const AttrList& other);

  // Wire encoding.
  void Encode(ByteWriter* w) const;
  static AttrList Decode(ByteReader* r);

  bool operator==(const AttrList&) const = default;

 private:
  std::vector<Attr> attrs_;
};

}  // namespace aud

#endif  // SRC_WIRE_ATTRIBUTES_H_
