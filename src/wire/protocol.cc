#include "src/wire/protocol.h"

namespace aud {

std::string_view DeviceClassName(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kInput:
      return "input";
    case DeviceClass::kOutput:
      return "output";
    case DeviceClass::kPlayer:
      return "player";
    case DeviceClass::kRecorder:
      return "recorder";
    case DeviceClass::kTelephone:
      return "telephone";
    case DeviceClass::kMixer:
      return "mixer";
    case DeviceClass::kSpeechSynthesizer:
      return "speech-synthesizer";
    case DeviceClass::kSpeechRecognizer:
      return "speech-recognizer";
    case DeviceClass::kMusicSynthesizer:
      return "music-synthesizer";
    case DeviceClass::kCrossbar:
      return "crossbar";
    case DeviceClass::kDsp:
      return "dsp";
  }
  return "unknown";
}

std::string_view OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kNoOp:
      return "NoOp";
    case Opcode::kCreateLoud:
      return "CreateLoud";
    case Opcode::kDestroyLoud:
      return "DestroyLoud";
    case Opcode::kCreateVirtualDevice:
      return "CreateVirtualDevice";
    case Opcode::kDestroyVirtualDevice:
      return "DestroyVirtualDevice";
    case Opcode::kAugmentVirtualDevice:
      return "AugmentVirtualDevice";
    case Opcode::kQueryVirtualDevice:
      return "QueryVirtualDevice";
    case Opcode::kCreateWire:
      return "CreateWire";
    case Opcode::kDestroyWire:
      return "DestroyWire";
    case Opcode::kQueryWires:
      return "QueryWires";
    case Opcode::kMapLoud:
      return "MapLoud";
    case Opcode::kUnmapLoud:
      return "UnmapLoud";
    case Opcode::kRaiseLoud:
      return "RaiseLoud";
    case Opcode::kLowerLoud:
      return "LowerLoud";
    case Opcode::kCreateSound:
      return "CreateSound";
    case Opcode::kDestroySound:
      return "DestroySound";
    case Opcode::kWriteSoundData:
      return "WriteSoundData";
    case Opcode::kReadSoundData:
      return "ReadSoundData";
    case Opcode::kQuerySound:
      return "QuerySound";
    case Opcode::kLoadCatalogueSound:
      return "LoadCatalogueSound";
    case Opcode::kListCatalogue:
      return "ListCatalogue";
    case Opcode::kSaveCatalogueSound:
      return "SaveCatalogueSound";
    case Opcode::kEnqueueCommands:
      return "EnqueueCommands";
    case Opcode::kImmediateCommand:
      return "ImmediateCommand";
    case Opcode::kStartQueue:
      return "StartQueue";
    case Opcode::kStopQueue:
      return "StopQueue";
    case Opcode::kPauseQueue:
      return "PauseQueue";
    case Opcode::kResumeQueue:
      return "ResumeQueue";
    case Opcode::kFlushQueue:
      return "FlushQueue";
    case Opcode::kQueryQueue:
      return "QueryQueue";
    case Opcode::kSelectEvents:
      return "SelectEvents";
    case Opcode::kSetSyncMarks:
      return "SetSyncMarks";
    case Opcode::kChangeProperty:
      return "ChangeProperty";
    case Opcode::kDeleteProperty:
      return "DeleteProperty";
    case Opcode::kGetProperty:
      return "GetProperty";
    case Opcode::kListProperties:
      return "ListProperties";
    case Opcode::kSetRedirect:
      return "SetRedirect";
    case Opcode::kQueryDeviceLoud:
      return "QueryDeviceLoud";
    case Opcode::kQueryActiveStack:
      return "QueryActiveStack";
    case Opcode::kGetServerTime:
      return "GetServerTime";
    case Opcode::kSync:
      return "Sync";
    case Opcode::kQueryLoud:
      return "QueryLoud";
    case Opcode::kGetServerStats:
      return "GetServerStats";
    case Opcode::kGetServerTrace:
      return "GetServerTrace";
    case Opcode::kOpcodeCount:
      break;
  }
  return "unknown";
}

std::string_view DeviceCommandName(DeviceCommand cmd) {
  switch (cmd) {
    case DeviceCommand::kStop:
      return "Stop";
    case DeviceCommand::kPause:
      return "Pause";
    case DeviceCommand::kResume:
      return "Resume";
    case DeviceCommand::kChangeGain:
      return "ChangeGain";
    case DeviceCommand::kPlay:
      return "Play";
    case DeviceCommand::kRecord:
      return "Record";
    case DeviceCommand::kDial:
      return "Dial";
    case DeviceCommand::kAnswer:
      return "Answer";
    case DeviceCommand::kHangUp:
      return "HangUp";
    case DeviceCommand::kSendDtmf:
      return "SendDTMF";
    case DeviceCommand::kSetInputGain:
      return "SetInputGain";
    case DeviceCommand::kSpeakText:
      return "SpeakText";
    case DeviceCommand::kSetTextLanguage:
      return "SetTextLanguage";
    case DeviceCommand::kSetValues:
      return "SetValues";
    case DeviceCommand::kSetExceptionList:
      return "SetExceptionList";
    case DeviceCommand::kTrain:
      return "Train";
    case DeviceCommand::kSetVocabulary:
      return "SetVocabulary";
    case DeviceCommand::kAdjustContext:
      return "AdjustContext";
    case DeviceCommand::kSaveVocabulary:
      return "SaveVocabulary";
    case DeviceCommand::kNote:
      return "Note";
    case DeviceCommand::kSetVoice:
      return "SetVoice";
    case DeviceCommand::kSetState:
      return "SetState";
    case DeviceCommand::kCoBegin:
      return "CoBegin";
    case DeviceCommand::kCoEnd:
      return "CoEnd";
    case DeviceCommand::kDelay:
      return "Delay";
    case DeviceCommand::kDelayEnd:
      return "DelayEnd";
  }
  return "unknown";
}

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kQueueStarted:
      return "QueueStarted";
    case EventType::kQueueStopped:
      return "QueueStopped";
    case EventType::kQueuePaused:
      return "QueuePaused";
    case EventType::kQueueResumed:
      return "QueueResumed";
    case EventType::kCommandDone:
      return "CommandDone";
    case EventType::kMapNotify:
      return "MapNotify";
    case EventType::kUnmapNotify:
      return "UnmapNotify";
    case EventType::kActivateNotify:
      return "ActivateNotify";
    case EventType::kDeactivateNotify:
      return "DeactivateNotify";
    case EventType::kMapRequest:
      return "MapRequest";
    case EventType::kRestackRequest:
      return "RestackRequest";
    case EventType::kTelephoneRing:
      return "TelephoneRing";
    case EventType::kTelephoneAnswered:
      return "TelephoneAnswered";
    case EventType::kTelephoneDialDone:
      return "TelephoneDialDone";
    case EventType::kCallProgress:
      return "CallProgress";
    case EventType::kDtmfReceived:
      return "DtmfReceived";
    case EventType::kRecorderStarted:
      return "RecorderStarted";
    case EventType::kRecorderStopped:
      return "RecorderStopped";
    case EventType::kRecognition:
      return "Recognition";
    case EventType::kSyncMark:
      return "SyncMark";
    case EventType::kPropertyNotify:
      return "PropertyNotify";
    case EventType::kEventTypeCount:
      break;
  }
  return "unknown";
}

std::string_view CallStateName(CallState state) {
  switch (state) {
    case CallState::kIdle:
      return "idle";
    case CallState::kDialing:
      return "dialing";
    case CallState::kRinging:
      return "ringing";
    case CallState::kConnected:
      return "connected";
    case CallState::kBusy:
      return "busy";
    case CallState::kHungUp:
      return "hung-up";
    case CallState::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string_view QueueStateName(QueueState state) {
  switch (state) {
    case QueueState::kStopped:
      return "stopped";
    case QueueState::kStarted:
      return "started";
    case QueueState::kClientPaused:
      return "client-paused";
    case QueueState::kServerPaused:
      return "server-paused";
  }
  return "unknown";
}

}  // namespace aud
