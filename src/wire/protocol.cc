#include "src/wire/protocol.h"

#include <iterator>

namespace aud {

std::string_view DeviceClassName(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kInput:
      return "input";
    case DeviceClass::kOutput:
      return "output";
    case DeviceClass::kPlayer:
      return "player";
    case DeviceClass::kRecorder:
      return "recorder";
    case DeviceClass::kTelephone:
      return "telephone";
    case DeviceClass::kMixer:
      return "mixer";
    case DeviceClass::kSpeechSynthesizer:
      return "speech-synthesizer";
    case DeviceClass::kSpeechRecognizer:
      return "speech-recognizer";
    case DeviceClass::kMusicSynthesizer:
      return "music-synthesizer";
    case DeviceClass::kCrossbar:
      return "crossbar";
    case DeviceClass::kDsp:
      return "dsp";
  }
  return "unknown";
}

namespace {

// Indexed by opcode value. Adding an Opcode without extending this table is
// a compile error (the static_assert below), not a silent "unknown".
constexpr std::string_view kOpcodeNames[] = {
    "NoOp",                   // 0
    "CreateLoud",             // 1
    "DestroyLoud",            // 2
    "CreateVirtualDevice",    // 3
    "DestroyVirtualDevice",   // 4
    "AugmentVirtualDevice",   // 5
    "QueryVirtualDevice",     // 6
    "CreateWire",             // 7
    "DestroyWire",            // 8
    "QueryWires",             // 9
    "MapLoud",                // 10
    "UnmapLoud",              // 11
    "RaiseLoud",              // 12
    "LowerLoud",              // 13
    "CreateSound",            // 14
    "DestroySound",           // 15
    "WriteSoundData",         // 16
    "ReadSoundData",          // 17
    "QuerySound",             // 18
    "LoadCatalogueSound",     // 19
    "ListCatalogue",          // 20
    "SaveCatalogueSound",     // 21
    "EnqueueCommands",        // 22
    "ImmediateCommand",       // 23
    "StartQueue",             // 24
    "StopQueue",              // 25
    "PauseQueue",             // 26
    "ResumeQueue",            // 27
    "FlushQueue",             // 28
    "QueryQueue",             // 29
    "SelectEvents",           // 30
    "SetSyncMarks",           // 31
    "ChangeProperty",         // 32
    "DeleteProperty",         // 33
    "GetProperty",            // 34
    "ListProperties",         // 35
    "SetRedirect",            // 36
    "QueryDeviceLoud",        // 37
    "QueryActiveStack",       // 38
    "GetServerTime",          // 39
    "Sync",                   // 40
    "QueryLoud",              // 41
    "GetServerStats",         // 42
    "GetServerTrace",         // 43
    "GetRequestTrace",        // 44
    "GetEntityStats",         // 45
};

static_assert(std::size(kOpcodeNames) ==
                  static_cast<size_t>(Opcode::kOpcodeCount),
              "kOpcodeNames must have exactly one entry per Opcode; "
              "update the table when adding an opcode");

}  // namespace

std::string_view OpcodeName(Opcode opcode) {
  auto index = static_cast<size_t>(opcode);
  if (index >= std::size(kOpcodeNames)) {
    return "unknown";
  }
  return kOpcodeNames[index];
}

std::string_view DeviceCommandName(DeviceCommand cmd) {
  switch (cmd) {
    case DeviceCommand::kStop:
      return "Stop";
    case DeviceCommand::kPause:
      return "Pause";
    case DeviceCommand::kResume:
      return "Resume";
    case DeviceCommand::kChangeGain:
      return "ChangeGain";
    case DeviceCommand::kPlay:
      return "Play";
    case DeviceCommand::kRecord:
      return "Record";
    case DeviceCommand::kDial:
      return "Dial";
    case DeviceCommand::kAnswer:
      return "Answer";
    case DeviceCommand::kHangUp:
      return "HangUp";
    case DeviceCommand::kSendDtmf:
      return "SendDTMF";
    case DeviceCommand::kSetInputGain:
      return "SetInputGain";
    case DeviceCommand::kSpeakText:
      return "SpeakText";
    case DeviceCommand::kSetTextLanguage:
      return "SetTextLanguage";
    case DeviceCommand::kSetValues:
      return "SetValues";
    case DeviceCommand::kSetExceptionList:
      return "SetExceptionList";
    case DeviceCommand::kTrain:
      return "Train";
    case DeviceCommand::kSetVocabulary:
      return "SetVocabulary";
    case DeviceCommand::kAdjustContext:
      return "AdjustContext";
    case DeviceCommand::kSaveVocabulary:
      return "SaveVocabulary";
    case DeviceCommand::kNote:
      return "Note";
    case DeviceCommand::kSetVoice:
      return "SetVoice";
    case DeviceCommand::kSetState:
      return "SetState";
    case DeviceCommand::kCoBegin:
      return "CoBegin";
    case DeviceCommand::kCoEnd:
      return "CoEnd";
    case DeviceCommand::kDelay:
      return "Delay";
    case DeviceCommand::kDelayEnd:
      return "DelayEnd";
  }
  return "unknown";
}

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kQueueStarted:
      return "QueueStarted";
    case EventType::kQueueStopped:
      return "QueueStopped";
    case EventType::kQueuePaused:
      return "QueuePaused";
    case EventType::kQueueResumed:
      return "QueueResumed";
    case EventType::kCommandDone:
      return "CommandDone";
    case EventType::kMapNotify:
      return "MapNotify";
    case EventType::kUnmapNotify:
      return "UnmapNotify";
    case EventType::kActivateNotify:
      return "ActivateNotify";
    case EventType::kDeactivateNotify:
      return "DeactivateNotify";
    case EventType::kMapRequest:
      return "MapRequest";
    case EventType::kRestackRequest:
      return "RestackRequest";
    case EventType::kTelephoneRing:
      return "TelephoneRing";
    case EventType::kTelephoneAnswered:
      return "TelephoneAnswered";
    case EventType::kTelephoneDialDone:
      return "TelephoneDialDone";
    case EventType::kCallProgress:
      return "CallProgress";
    case EventType::kDtmfReceived:
      return "DtmfReceived";
    case EventType::kRecorderStarted:
      return "RecorderStarted";
    case EventType::kRecorderStopped:
      return "RecorderStopped";
    case EventType::kRecognition:
      return "Recognition";
    case EventType::kSyncMark:
      return "SyncMark";
    case EventType::kPropertyNotify:
      return "PropertyNotify";
    case EventType::kEventTypeCount:
      break;
  }
  return "unknown";
}

std::string_view CallStateName(CallState state) {
  switch (state) {
    case CallState::kIdle:
      return "idle";
    case CallState::kDialing:
      return "dialing";
    case CallState::kRinging:
      return "ringing";
    case CallState::kConnected:
      return "connected";
    case CallState::kBusy:
      return "busy";
    case CallState::kHungUp:
      return "hung-up";
    case CallState::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string_view QueueStateName(QueueState state) {
  switch (state) {
    case QueueState::kStopped:
      return "stopped";
    case QueueState::kStarted:
      return "started";
    case QueueState::kClientPaused:
      return "client-paused";
    case QueueState::kServerPaused:
      return "server-paused";
  }
  return "unknown";
}

}  // namespace aud
