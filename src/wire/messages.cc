#include "src/wire/messages.h"

namespace aud {

// ---------------------------------------------------------------------------
// Header & setup
// ---------------------------------------------------------------------------

void MessageHeader::Encode(ByteWriter* w) const {
  w->WriteU8(static_cast<uint8_t>(type));
  w->WriteU8(0);
  w->WriteU16(code);
  w->WriteU32(length);
  w->WriteU32(sequence);
}

MessageHeader MessageHeader::Decode(ByteReader* r) {
  MessageHeader h;
  h.type = static_cast<MessageType>(r->ReadU8());
  r->ReadU8();
  h.code = r->ReadU16();
  h.length = r->ReadU32();
  h.sequence = r->ReadU32();
  return h;
}

Result<MessageHeader> DecodeHeaderStrict(std::span<const uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status(ErrorCode::kConnection,
                  "truncated header: " + std::to_string(bytes.size()) + " of " +
                      std::to_string(kHeaderSize) + " bytes");
  }
  if (bytes[1] != 0) {
    return Status(ErrorCode::kConnection, "non-zero reserved header byte");
  }
  ByteReader r(bytes.first(kHeaderSize));
  MessageHeader h = MessageHeader::Decode(&r);
  uint8_t type = static_cast<uint8_t>(h.type);
  if (type < static_cast<uint8_t>(MessageType::kRequest) ||
      type > static_cast<uint8_t>(MessageType::kError)) {
    return Status(ErrorCode::kConnection,
                  "unknown message type " + std::to_string(type));
  }
  if (h.length > kMaxPayload) {
    return Status(ErrorCode::kConnection,
                  "payload length " + std::to_string(h.length) +
                      " exceeds limit " + std::to_string(kMaxPayload));
  }
  return h;
}

Status ValidateRequestHeader(const MessageHeader& header) {
  if (header.type != MessageType::kRequest) {
    return Status::Ok();
  }
  // kSetupOpcode is only legal as the first frame of the connection; the
  // setup path never consults this check, so it is unknown here too.
  if (header.code >= static_cast<uint16_t>(Opcode::kOpcodeCount)) {
    return Status(ErrorCode::kBadRequest,
                  "unknown opcode " + std::to_string(header.code));
  }
  return Status::Ok();
}

void SetupRequest::Encode(ByteWriter* w) const {
  w->WriteU32(magic);
  w->WriteU16(major);
  w->WriteU16(minor);
  w->WriteString(client_name);
}

SetupRequest SetupRequest::Decode(ByteReader* r) {
  SetupRequest s;
  s.magic = r->ReadU32();
  s.major = r->ReadU16();
  s.minor = r->ReadU16();
  s.client_name = r->ReadString();
  return s;
}

void SetupReply::Encode(ByteWriter* w) const {
  w->WriteU8(success);
  w->WriteU16(major);
  w->WriteU16(minor);
  w->WriteU32(id_base);
  w->WriteU32(id_count);
  w->WriteU32(device_loud);
  w->WriteString(server_name);
  w->WriteString(reason);
}

SetupReply SetupReply::Decode(ByteReader* r) {
  SetupReply s;
  s.success = r->ReadU8();
  s.major = r->ReadU16();
  s.minor = r->ReadU16();
  s.id_base = r->ReadU32();
  s.id_count = r->ReadU32();
  s.device_loud = r->ReadU32();
  s.server_name = r->ReadString();
  s.reason = r->ReadString();
  return s;
}

// ---------------------------------------------------------------------------
// Command specs & args
// ---------------------------------------------------------------------------

void CommandSpec::Encode(ByteWriter* w) const {
  w->WriteU32(device);
  w->WriteU16(static_cast<uint16_t>(command));
  w->WriteU32(tag);
  w->WriteBlob(args);
}

CommandSpec CommandSpec::Decode(ByteReader* r) {
  CommandSpec c;
  c.device = r->ReadU32();
  c.command = static_cast<DeviceCommand>(r->ReadU16());
  c.tag = r->ReadU32();
  c.args = r->ReadBlob();
  return c;
}

std::vector<uint8_t> PlayArgs::Encode() const {
  ByteWriter w;
  w.WriteU32(sound);
  w.WriteI64(start_sample);
  w.WriteI64(end_sample);
  return w.Take();
}

PlayArgs PlayArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  PlayArgs a;
  a.sound = r.ReadU32();
  a.start_sample = r.ReadI64();
  a.end_sample = r.ReadI64();
  return a;
}

std::vector<uint8_t> RecordArgs::Encode() const {
  ByteWriter w;
  w.WriteU32(sound);
  w.WriteU8(termination);
  w.WriteU32(max_ms);
  return w.Take();
}

RecordArgs RecordArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  RecordArgs a;
  a.sound = r.ReadU32();
  a.termination = r.ReadU8();
  a.max_ms = r.ReadU32();
  return a;
}

std::vector<uint8_t> StringArg::Encode() const {
  ByteWriter w;
  w.WriteString(value);
  return w.Take();
}

StringArg StringArg::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  StringArg a;
  a.value = r.ReadString();
  return a;
}

std::vector<uint8_t> GainArgs::Encode() const {
  ByteWriter w;
  w.WriteI32(gain);
  return w.Take();
}

GainArgs GainArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  GainArgs a;
  a.gain = r.ReadI32();
  return a;
}

std::vector<uint8_t> InputGainArgs::Encode() const {
  ByteWriter w;
  w.WriteU16(input);
  w.WriteI32(gain);
  return w.Take();
}

InputGainArgs InputGainArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  InputGainArgs a;
  a.input = r.ReadU16();
  a.gain = r.ReadI32();
  return a;
}

std::vector<uint8_t> DelayArgs::Encode() const {
  ByteWriter w;
  w.WriteU32(milliseconds);
  return w.Take();
}

DelayArgs DelayArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  DelayArgs a;
  a.milliseconds = r.ReadU32();
  return a;
}

std::vector<uint8_t> TrainArgs::Encode() const {
  ByteWriter w;
  w.WriteString(word);
  w.WriteU32(sound);
  return w.Take();
}

TrainArgs TrainArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  TrainArgs a;
  a.word = r.ReadString();
  a.sound = r.ReadU32();
  return a;
}

std::vector<uint8_t> WordListArgs::Encode() const {
  ByteWriter w;
  w.WriteU32(static_cast<uint32_t>(words.size()));
  for (const auto& word : words) {
    w.WriteString(word);
  }
  return w.Take();
}

WordListArgs WordListArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  WordListArgs a;
  uint32_t n = r.ReadU32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    a.words.push_back(r.ReadString());
  }
  return a;
}

std::vector<uint8_t> ExceptionListArgs::Encode() const {
  ByteWriter w;
  w.WriteU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [word, phonemes] : entries) {
    w.WriteString(word);
    w.WriteString(phonemes);
  }
  return w.Take();
}

ExceptionListArgs ExceptionListArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  ExceptionListArgs a;
  uint32_t n = r.ReadU32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string word = r.ReadString();
    std::string phonemes = r.ReadString();
    a.entries.emplace_back(std::move(word), std::move(phonemes));
  }
  return a;
}

std::vector<uint8_t> NoteArgs::Encode() const {
  ByteWriter w;
  w.WriteU8(midi_note);
  w.WriteU8(velocity);
  w.WriteU32(duration_ms);
  return w.Take();
}

NoteArgs NoteArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  NoteArgs a;
  a.midi_note = r.ReadU8();
  a.velocity = r.ReadU8();
  a.duration_ms = r.ReadU32();
  return a;
}

std::vector<uint8_t> VoiceArgs::Encode() const {
  ByteWriter w;
  w.WriteU8(waveform);
  w.WriteU16(attack_ms);
  w.WriteU16(decay_ms);
  w.WriteU16(sustain_centi);
  w.WriteU16(release_ms);
  return w.Take();
}

VoiceArgs VoiceArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  VoiceArgs a;
  a.waveform = r.ReadU8();
  a.attack_ms = r.ReadU16();
  a.decay_ms = r.ReadU16();
  a.sustain_centi = r.ReadU16();
  a.release_ms = r.ReadU16();
  return a;
}

std::vector<uint8_t> CrossbarStateArgs::Encode() const {
  ByteWriter w;
  w.WriteU32(static_cast<uint32_t>(routes.size()));
  for (const Route& route : routes) {
    w.WriteU16(route.input);
    w.WriteU16(route.output);
    w.WriteU8(route.enabled);
  }
  return w.Take();
}

CrossbarStateArgs CrossbarStateArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  CrossbarStateArgs a;
  uint32_t n = r.ReadU32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    Route route;
    route.input = r.ReadU16();
    route.output = r.ReadU16();
    route.enabled = r.ReadU8();
    a.routes.push_back(route);
  }
  return a;
}

std::vector<uint8_t> ValuesArgs::Encode() const {
  ByteWriter w;
  values.Encode(&w);
  return w.Take();
}

ValuesArgs ValuesArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  ValuesArgs a;
  a.values = AttrList::Decode(&r);
  return a;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

void CreateLoudReq::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU32(parent);
  attrs.Encode(w);
}

CreateLoudReq CreateLoudReq::Decode(ByteReader* r) {
  CreateLoudReq q;
  q.id = r->ReadU32();
  q.parent = r->ReadU32();
  q.attrs = AttrList::Decode(r);
  return q;
}

void ResourceReq::Encode(ByteWriter* w) const { w->WriteU32(id); }

ResourceReq ResourceReq::Decode(ByteReader* r) {
  ResourceReq q;
  q.id = r->ReadU32();
  return q;
}

void CreateVirtualDeviceReq::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU32(loud);
  w->WriteU8(static_cast<uint8_t>(device_class));
  attrs.Encode(w);
}

CreateVirtualDeviceReq CreateVirtualDeviceReq::Decode(ByteReader* r) {
  CreateVirtualDeviceReq q;
  q.id = r->ReadU32();
  q.loud = r->ReadU32();
  q.device_class = static_cast<DeviceClass>(r->ReadU8());
  q.attrs = AttrList::Decode(r);
  return q;
}

void AugmentVirtualDeviceReq::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  attrs.Encode(w);
}

AugmentVirtualDeviceReq AugmentVirtualDeviceReq::Decode(ByteReader* r) {
  AugmentVirtualDeviceReq q;
  q.id = r->ReadU32();
  q.attrs = AttrList::Decode(r);
  return q;
}

void CreateWireReq::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU32(src_device);
  w->WriteU16(src_port);
  w->WriteU32(dst_device);
  w->WriteU16(dst_port);
  w->WriteU8(has_format);
  EncodeFormat(w, format);
}

CreateWireReq CreateWireReq::Decode(ByteReader* r) {
  CreateWireReq q;
  q.id = r->ReadU32();
  q.src_device = r->ReadU32();
  q.src_port = r->ReadU16();
  q.dst_device = r->ReadU32();
  q.dst_port = r->ReadU16();
  q.has_format = r->ReadU8();
  q.format = DecodeFormat(r);
  return q;
}

void MapLoudReq::Encode(ByteWriter* w) const {
  w->WriteU32(loud);
  w->WriteU8(override_redirect);
}

MapLoudReq MapLoudReq::Decode(ByteReader* r) {
  MapLoudReq q;
  q.loud = r->ReadU32();
  q.override_redirect = r->ReadU8();
  return q;
}

void CreateSoundReq::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  EncodeFormat(w, format);
}

CreateSoundReq CreateSoundReq::Decode(ByteReader* r) {
  CreateSoundReq q;
  q.id = r->ReadU32();
  q.format = DecodeFormat(r);
  return q;
}

void WriteSoundDataReq::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU64(offset);
  w->WriteBlob(data);
}

WriteSoundDataReq WriteSoundDataReq::Decode(ByteReader* r) {
  WriteSoundDataReq q;
  q.id = r->ReadU32();
  q.offset = r->ReadU64();
  q.data = r->ReadBlob();
  return q;
}

void ReadSoundDataReq::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU64(offset);
  w->WriteU32(length);
}

ReadSoundDataReq ReadSoundDataReq::Decode(ByteReader* r) {
  ReadSoundDataReq q;
  q.id = r->ReadU32();
  q.offset = r->ReadU64();
  q.length = r->ReadU32();
  return q;
}

void NamedSoundReq::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteString(name);
}

NamedSoundReq NamedSoundReq::Decode(ByteReader* r) {
  NamedSoundReq q;
  q.id = r->ReadU32();
  q.name = r->ReadString();
  return q;
}

void EnqueueCommandsReq::Encode(ByteWriter* w) const {
  w->WriteU32(loud);
  w->WriteU32(static_cast<uint32_t>(commands.size()));
  for (const CommandSpec& c : commands) {
    c.Encode(w);
  }
}

EnqueueCommandsReq EnqueueCommandsReq::Decode(ByteReader* r) {
  EnqueueCommandsReq q;
  q.loud = r->ReadU32();
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    q.commands.push_back(CommandSpec::Decode(r));
  }
  return q;
}

void ImmediateCommandReq::Encode(ByteWriter* w) const {
  w->WriteU32(loud);
  command.Encode(w);
}

ImmediateCommandReq ImmediateCommandReq::Decode(ByteReader* r) {
  ImmediateCommandReq q;
  q.loud = r->ReadU32();
  q.command = CommandSpec::Decode(r);
  return q;
}

void SelectEventsReq::Encode(ByteWriter* w) const {
  w->WriteU32(resource);
  w->WriteU32(mask);
}

SelectEventsReq SelectEventsReq::Decode(ByteReader* r) {
  SelectEventsReq q;
  q.resource = r->ReadU32();
  q.mask = r->ReadU32();
  return q;
}

void SetSyncMarksReq::Encode(ByteWriter* w) const {
  w->WriteU32(loud);
  w->WriteU32(interval_ms);
}

SetSyncMarksReq SetSyncMarksReq::Decode(ByteReader* r) {
  SetSyncMarksReq q;
  q.loud = r->ReadU32();
  q.interval_ms = r->ReadU32();
  return q;
}

void ChangePropertyReq::Encode(ByteWriter* w) const {
  w->WriteU32(resource);
  w->WriteString(name);
  w->WriteString(type);
  w->WriteBlob(value);
}

ChangePropertyReq ChangePropertyReq::Decode(ByteReader* r) {
  ChangePropertyReq q;
  q.resource = r->ReadU32();
  q.name = r->ReadString();
  q.type = r->ReadString();
  q.value = r->ReadBlob();
  return q;
}

void NamedPropertyReq::Encode(ByteWriter* w) const {
  w->WriteU32(resource);
  w->WriteString(name);
}

NamedPropertyReq NamedPropertyReq::Decode(ByteReader* r) {
  NamedPropertyReq q;
  q.resource = r->ReadU32();
  q.name = r->ReadString();
  return q;
}

void SetRedirectReq::Encode(ByteWriter* w) const { w->WriteU8(enable); }

SetRedirectReq SetRedirectReq::Decode(ByteReader* r) {
  SetRedirectReq q;
  q.enable = r->ReadU8();
  return q;
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

void VirtualDeviceReply::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU8(static_cast<uint8_t>(device_class));
  w->WriteU8(mapped);
  w->WriteU8(active);
  w->WriteU32(bound_device);
  attrs.Encode(w);
}

VirtualDeviceReply VirtualDeviceReply::Decode(ByteReader* r) {
  VirtualDeviceReply p;
  p.id = r->ReadU32();
  p.device_class = static_cast<DeviceClass>(r->ReadU8());
  p.mapped = r->ReadU8();
  p.active = r->ReadU8();
  p.bound_device = r->ReadU32();
  p.attrs = AttrList::Decode(r);
  return p;
}

void WireInfo::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU32(src_device);
  w->WriteU16(src_port);
  w->WriteU32(dst_device);
  w->WriteU16(dst_port);
  EncodeFormat(w, format);
}

WireInfo WireInfo::Decode(ByteReader* r) {
  WireInfo i;
  i.id = r->ReadU32();
  i.src_device = r->ReadU32();
  i.src_port = r->ReadU16();
  i.dst_device = r->ReadU32();
  i.dst_port = r->ReadU16();
  i.format = DecodeFormat(r);
  return i;
}

void WiresReply::Encode(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(wires.size()));
  for (const WireInfo& wi : wires) {
    wi.Encode(w);
  }
}

WiresReply WiresReply::Decode(ByteReader* r) {
  WiresReply p;
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.wires.push_back(WireInfo::Decode(r));
  }
  return p;
}

void SoundDataReply::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU64(offset);
  w->WriteBlob(data);
}

SoundDataReply SoundDataReply::Decode(ByteReader* r) {
  SoundDataReply p;
  p.id = r->ReadU32();
  p.offset = r->ReadU64();
  p.data = r->ReadBlob();
  return p;
}

void SoundInfoReply::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  EncodeFormat(w, format);
  w->WriteU64(size_bytes);
  w->WriteU64(samples);
}

SoundInfoReply SoundInfoReply::Decode(ByteReader* r) {
  SoundInfoReply p;
  p.id = r->ReadU32();
  p.format = DecodeFormat(r);
  p.size_bytes = r->ReadU64();
  p.samples = r->ReadU64();
  return p;
}

void CatalogueEntry::Encode(ByteWriter* w) const {
  w->WriteString(name);
  EncodeFormat(w, format);
  w->WriteU64(size_bytes);
}

CatalogueEntry CatalogueEntry::Decode(ByteReader* r) {
  CatalogueEntry e;
  e.name = r->ReadString();
  e.format = DecodeFormat(r);
  e.size_bytes = r->ReadU64();
  return e;
}

void CatalogueReply::Encode(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(entries.size()));
  for (const CatalogueEntry& e : entries) {
    e.Encode(w);
  }
}

CatalogueReply CatalogueReply::Decode(ByteReader* r) {
  CatalogueReply p;
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.entries.push_back(CatalogueEntry::Decode(r));
  }
  return p;
}

void QueueStateReply::Encode(ByteWriter* w) const {
  w->WriteU32(loud);
  w->WriteU8(static_cast<uint8_t>(state));
  w->WriteU32(depth);
  w->WriteU32(current_tag);
}

QueueStateReply QueueStateReply::Decode(ByteReader* r) {
  QueueStateReply p;
  p.loud = r->ReadU32();
  p.state = static_cast<QueueState>(r->ReadU8());
  p.depth = r->ReadU32();
  p.current_tag = r->ReadU32();
  return p;
}

void PropertyReply::Encode(ByteWriter* w) const {
  w->WriteU32(resource);
  w->WriteU8(found);
  w->WriteString(name);
  w->WriteString(type);
  w->WriteBlob(value);
}

PropertyReply PropertyReply::Decode(ByteReader* r) {
  PropertyReply p;
  p.resource = r->ReadU32();
  p.found = r->ReadU8();
  p.name = r->ReadString();
  p.type = r->ReadString();
  p.value = r->ReadBlob();
  return p;
}

void PropertyListReply::Encode(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(names.size()));
  for (const std::string& n : names) {
    w->WriteString(n);
  }
}

PropertyListReply PropertyListReply::Decode(ByteReader* r) {
  PropertyListReply p;
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.names.push_back(r->ReadString());
  }
  return p;
}

void DeviceInfo::Encode(ByteWriter* w) const {
  w->WriteU32(id);
  w->WriteU32(parent);
  w->WriteU8(static_cast<uint8_t>(device_class));
  attrs.Encode(w);
}

DeviceInfo DeviceInfo::Decode(ByteReader* r) {
  DeviceInfo d;
  d.id = r->ReadU32();
  d.parent = r->ReadU32();
  d.device_class = static_cast<DeviceClass>(r->ReadU8());
  d.attrs = AttrList::Decode(r);
  return d;
}

void DeviceLoudReply::Encode(ByteWriter* w) const {
  w->WriteU32(root);
  w->WriteU32(static_cast<uint32_t>(devices.size()));
  for (const DeviceInfo& d : devices) {
    d.Encode(w);
  }
  w->WriteU32(static_cast<uint32_t>(hard_wires.size()));
  for (const WireInfo& wi : hard_wires) {
    wi.Encode(w);
  }
}

DeviceLoudReply DeviceLoudReply::Decode(ByteReader* r) {
  DeviceLoudReply p;
  p.root = r->ReadU32();
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.devices.push_back(DeviceInfo::Decode(r));
  }
  uint32_t m = r->ReadU32();
  for (uint32_t i = 0; i < m && r->ok(); ++i) {
    p.hard_wires.push_back(WireInfo::Decode(r));
  }
  return p;
}

void ActiveStackEntry::Encode(ByteWriter* w) const {
  w->WriteU32(loud);
  w->WriteU8(active);
}

ActiveStackEntry ActiveStackEntry::Decode(ByteReader* r) {
  ActiveStackEntry e;
  e.loud = r->ReadU32();
  e.active = r->ReadU8();
  return e;
}

void ActiveStackReply::Encode(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(entries.size()));
  for (const ActiveStackEntry& e : entries) {
    e.Encode(w);
  }
}

ActiveStackReply ActiveStackReply::Decode(ByteReader* r) {
  ActiveStackReply p;
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.entries.push_back(ActiveStackEntry::Decode(r));
  }
  return p;
}

void ServerTimeReply::Encode(ByteWriter* w) const { w->WriteI64(server_time); }

ServerTimeReply ServerTimeReply::Decode(ByteReader* r) {
  ServerTimeReply p;
  p.server_time = r->ReadI64();
  return p;
}

void LoudStateReply::Encode(ByteWriter* w) const {
  w->WriteU32(loud);
  w->WriteU32(parent);
  w->WriteU8(mapped);
  w->WriteU8(active);
  w->WriteU32(children);
  w->WriteU32(devices);
}

LoudStateReply LoudStateReply::Decode(ByteReader* r) {
  LoudStateReply p;
  p.loud = r->ReadU32();
  p.parent = r->ReadU32();
  p.mapped = r->ReadU8();
  p.active = r->ReadU8();
  p.children = r->ReadU32();
  p.devices = r->ReadU32();
  return p;
}

// ---------------------------------------------------------------------------
// Server statistics and trace
// ---------------------------------------------------------------------------

namespace {

void EncodeHistogram(ByteWriter* w, const obs::HistogramSnapshot& h) {
  w->WriteU64(h.count);
  w->WriteU64(h.sum);
  w->WriteU64(h.min);
  w->WriteU64(h.max);
  w->WriteU32(static_cast<uint32_t>(h.buckets.size()));
  for (uint64_t b : h.buckets) {
    w->WriteU64(b);
  }
}

obs::HistogramSnapshot DecodeHistogram(ByteReader* r) {
  obs::HistogramSnapshot h;
  h.count = r->ReadU64();
  h.sum = r->ReadU64();
  h.min = r->ReadU64();
  h.max = r->ReadU64();
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    h.buckets.push_back(r->ReadU64());
  }
  return h;
}

}  // namespace

void OpcodeStats::Encode(ByteWriter* w) const {
  w->WriteU16(opcode);
  w->WriteU64(count);
  w->WriteU64(errors);
  w->WriteU64(total_us);
}

OpcodeStats OpcodeStats::Decode(ByteReader* r) {
  OpcodeStats p;
  p.opcode = r->ReadU16();
  p.count = r->ReadU64();
  p.errors = r->ReadU64();
  p.total_us = r->ReadU64();
  return p;
}

void GetServerStatsReq::Encode(ByteWriter* w) const { w->WriteU8(include_opcodes); }

GetServerStatsReq GetServerStatsReq::Decode(ByteReader* r) {
  GetServerStatsReq p;
  p.include_opcodes = r->ReadU8();
  return p;
}

void ServerStatsReply::Encode(ByteWriter* w) const {
  w->WriteU32(stats_version);
  w->WriteU16(proto_major);
  w->WriteU16(proto_minor);
  w->WriteU64(uptime_ms);
  w->WriteI64(server_time);
  w->WriteU32(engine_threads);
  w->WriteU32(engine_rate_hz);
  w->WriteU64(ticks_run);
  w->WriteU64(tick_overruns);
  EncodeHistogram(w, tick_us);
  EncodeHistogram(w, tick_jitter_us);
  EncodeHistogram(w, islands_per_tick);
  EncodeHistogram(w, worker_imbalance);
  w->WriteU64(requests_total);
  w->WriteU64(request_errors_total);
  EncodeHistogram(w, dispatch_us);
  w->WriteU32(static_cast<uint32_t>(opcodes.size()));
  for (const OpcodeStats& op : opcodes) {
    op.Encode(w);
  }
  w->WriteI64(connections_open);
  w->WriteU64(connections_total);
  w->WriteU64(bytes_in);
  w->WriteU64(bytes_out);
  w->WriteU64(events_sent);
  w->WriteU32(objects);
  w->WriteU32(active_louds);
  w->WriteU64(commands_enqueued);
  w->WriteU64(commands_done);
  w->WriteU64(commands_aborted);
  w->WriteU64(queue_events);
  w->WriteU64(decoded_cache_hits);
  w->WriteU64(decoded_cache_misses);
  w->WriteU64(decoded_cache_bytes);
  w->WriteU64(decoded_cache_evictions);
  w->WriteU64(events_dropped);
  w->WriteU64(egress_disconnects);
  w->WriteI64(egress_queued_bytes);
  w->WriteU64(accept_retries);
  w->WriteU64(epoch_commits);
  w->WriteU64(dispatch_shard_contention);
  EncodeHistogram(w, lock_wait_us);
  EncodeHistogram(w, epoch_commit_us);
  EncodeHistogram(w, mouth_to_ear_us);
  w->WriteU64(trace_spans);
  w->WriteU64(trace_requests_sampled);
  w->WriteU32(trace_sample_every);
  w->WriteU32(loops);
  w->WriteI64(fds_watched);
  w->WriteU64(epoll_waits);
  w->WriteU64(wakeups);
  w->WriteU64(readiness_spurious);
  EncodeHistogram(w, loop_dispatch_us);
  w->WriteU64(admission_rejects);
  w->WriteU64(rate_limited);
  w->WriteU64(rate_limit_disconnects);
  w->WriteU64(quota_denials);
  w->WriteU32(draining);
  w->WriteU64(drain_forced_closes);
  w->WriteU64(drain_duration_ms);
}

ServerStatsReply ServerStatsReply::Decode(ByteReader* r) {
  ServerStatsReply p;
  p.stats_version = r->ReadU32();
  p.proto_major = r->ReadU16();
  p.proto_minor = r->ReadU16();
  p.uptime_ms = r->ReadU64();
  p.server_time = r->ReadI64();
  p.engine_threads = r->ReadU32();
  p.engine_rate_hz = r->ReadU32();
  p.ticks_run = r->ReadU64();
  p.tick_overruns = r->ReadU64();
  p.tick_us = DecodeHistogram(r);
  p.tick_jitter_us = DecodeHistogram(r);
  p.islands_per_tick = DecodeHistogram(r);
  p.worker_imbalance = DecodeHistogram(r);
  p.requests_total = r->ReadU64();
  p.request_errors_total = r->ReadU64();
  p.dispatch_us = DecodeHistogram(r);
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.opcodes.push_back(OpcodeStats::Decode(r));
  }
  p.connections_open = r->ReadI64();
  p.connections_total = r->ReadU64();
  p.bytes_in = r->ReadU64();
  p.bytes_out = r->ReadU64();
  p.events_sent = r->ReadU64();
  p.objects = r->ReadU32();
  p.active_louds = r->ReadU32();
  p.commands_enqueued = r->ReadU64();
  p.commands_done = r->ReadU64();
  p.commands_aborted = r->ReadU64();
  p.queue_events = r->ReadU64();
  p.decoded_cache_hits = r->ReadU64();
  p.decoded_cache_misses = r->ReadU64();
  p.decoded_cache_bytes = r->ReadU64();
  p.decoded_cache_evictions = r->ReadU64();
  p.events_dropped = r->ReadU64();
  p.egress_disconnects = r->ReadU64();
  p.egress_queued_bytes = r->ReadI64();
  p.accept_retries = r->ReadU64();
  p.epoch_commits = r->ReadU64();
  p.dispatch_shard_contention = r->ReadU64();
  p.lock_wait_us = DecodeHistogram(r);
  p.epoch_commit_us = DecodeHistogram(r);
  p.mouth_to_ear_us = DecodeHistogram(r);
  p.trace_spans = r->ReadU64();
  p.trace_requests_sampled = r->ReadU64();
  p.trace_sample_every = r->ReadU32();
  p.loops = r->ReadU32();
  p.fds_watched = r->ReadI64();
  p.epoll_waits = r->ReadU64();
  p.wakeups = r->ReadU64();
  p.readiness_spurious = r->ReadU64();
  p.loop_dispatch_us = DecodeHistogram(r);
  p.admission_rejects = r->ReadU64();
  p.rate_limited = r->ReadU64();
  p.rate_limit_disconnects = r->ReadU64();
  p.quota_denials = r->ReadU64();
  p.draining = r->ReadU32();
  p.drain_forced_closes = r->ReadU64();
  p.drain_duration_ms = r->ReadU64();
  return p;
}

void GetServerTraceReq::Encode(ByteWriter* w) const { w->WriteU32(max_events); }

GetServerTraceReq GetServerTraceReq::Decode(ByteReader* r) {
  GetServerTraceReq p;
  p.max_events = r->ReadU32();
  return p;
}

void TraceEventWire::Encode(ByteWriter* w) const {
  w->WriteI64(t_us);
  w->WriteU64(seq);
  w->WriteU32(tid);
  w->WriteU16(reason);
  w->WriteU32(arg0);
  w->WriteU32(arg1);
  w->WriteU64(trace);
  w->WriteU64(parent);
  w->WriteU32(dur_us);
}

TraceEventWire TraceEventWire::Decode(ByteReader* r) {
  TraceEventWire p;
  p.t_us = r->ReadI64();
  p.seq = r->ReadU64();
  p.tid = r->ReadU32();
  p.reason = r->ReadU16();
  p.arg0 = r->ReadU32();
  p.arg1 = r->ReadU32();
  p.trace = r->ReadU64();
  p.parent = r->ReadU64();
  p.dur_us = r->ReadU32();
  return p;
}

void ServerTraceReply::Encode(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(events.size()));
  for (const TraceEventWire& e : events) {
    e.Encode(w);
  }
}

ServerTraceReply ServerTraceReply::Decode(ByteReader* r) {
  ServerTraceReply p;
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.events.push_back(TraceEventWire::Decode(r));
  }
  return p;
}

void GetRequestTraceReq::Encode(ByteWriter* w) const {
  w->WriteU64(trace_id);
  w->WriteU32(max_spans);
}

GetRequestTraceReq GetRequestTraceReq::Decode(ByteReader* r) {
  GetRequestTraceReq p;
  p.trace_id = r->ReadU64();
  p.max_spans = r->ReadU32();
  return p;
}

void RequestTraceReply::Encode(ByteWriter* w) const {
  w->WriteU32(trace_version);
  w->WriteU64(trace_id);
  w->WriteU32(static_cast<uint32_t>(spans.size()));
  for (const TraceEventWire& e : spans) {
    e.Encode(w);
  }
}

RequestTraceReply RequestTraceReply::Decode(ByteReader* r) {
  RequestTraceReply p;
  p.trace_version = r->ReadU32();
  p.trace_id = r->ReadU64();
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.spans.push_back(TraceEventWire::Decode(r));
  }
  return p;
}

void GetEntityStatsReq::Encode(ByteWriter* w) const { w->WriteU8(include_devices); }

GetEntityStatsReq GetEntityStatsReq::Decode(ByteReader* r) {
  GetEntityStatsReq p;
  p.include_devices = r->ReadU8();
  return p;
}

void ConnectionStatsWire::Encode(ByteWriter* w) const {
  w->WriteU32(index);
  w->WriteString(name);
  w->WriteU64(requests);
  w->WriteU64(errors);
  w->WriteU64(bytes_in);
  w->WriteU64(bytes_out);
  w->WriteU64(events_sent);
  w->WriteU64(events_dropped);
  EncodeHistogram(w, dispatch_us);
}

ConnectionStatsWire ConnectionStatsWire::Decode(ByteReader* r) {
  ConnectionStatsWire p;
  p.index = r->ReadU32();
  p.name = r->ReadString();
  p.requests = r->ReadU64();
  p.errors = r->ReadU64();
  p.bytes_in = r->ReadU64();
  p.bytes_out = r->ReadU64();
  p.events_sent = r->ReadU64();
  p.events_dropped = r->ReadU64();
  p.dispatch_us = DecodeHistogram(r);
  return p;
}

void DeviceStatsWire::Encode(ByteWriter* w) const {
  w->WriteU32(root);
  w->WriteU32(owner);
  w->WriteU8(active);
  w->WriteU64(frames_produced);
  w->WriteU64(frames_consumed);
}

DeviceStatsWire DeviceStatsWire::Decode(ByteReader* r) {
  DeviceStatsWire p;
  p.root = r->ReadU32();
  p.owner = r->ReadU32();
  p.active = r->ReadU8();
  p.frames_produced = r->ReadU64();
  p.frames_consumed = r->ReadU64();
  return p;
}

void EntityStatsReply::Encode(ByteWriter* w) const {
  w->WriteU32(entity_version);
  w->WriteU32(static_cast<uint32_t>(connections.size()));
  for (const ConnectionStatsWire& c : connections) {
    c.Encode(w);
  }
  w->WriteU32(static_cast<uint32_t>(devices.size()));
  for (const DeviceStatsWire& d : devices) {
    d.Encode(w);
  }
}

EntityStatsReply EntityStatsReply::Decode(ByteReader* r) {
  EntityStatsReply p;
  p.entity_version = r->ReadU32();
  uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    p.connections.push_back(ConnectionStatsWire::Decode(r));
  }
  uint32_t m = r->ReadU32();
  for (uint32_t i = 0; i < m && r->ok(); ++i) {
    p.devices.push_back(DeviceStatsWire::Decode(r));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

void EventMessage::Encode(ByteWriter* w) const {
  w->WriteU16(static_cast<uint16_t>(type));
  w->WriteU32(resource);
  w->WriteI64(server_time);
  w->WriteBlob(args);
}

EventMessage EventMessage::Decode(ByteReader* r) {
  EventMessage e;
  e.type = static_cast<EventType>(r->ReadU16());
  e.resource = r->ReadU32();
  e.server_time = r->ReadI64();
  e.args = r->ReadBlob();
  return e;
}

std::vector<uint8_t> CommandDoneArgs::Encode() const {
  ByteWriter w;
  w.WriteU32(tag);
  w.WriteU16(command);
  w.WriteU8(aborted);
  return w.Take();
}

CommandDoneArgs CommandDoneArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  CommandDoneArgs a;
  a.tag = r.ReadU32();
  a.command = r.ReadU16();
  a.aborted = r.ReadU8();
  return a;
}

std::vector<uint8_t> QueuePausedArgs::Encode() const {
  ByteWriter w;
  w.WriteU8(server_paused);
  return w.Take();
}

QueuePausedArgs QueuePausedArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  QueuePausedArgs a;
  a.server_paused = r.ReadU8();
  return a;
}

std::vector<uint8_t> TelephoneRingArgs::Encode() const {
  ByteWriter w;
  w.WriteString(caller_id);
  w.WriteU32(line);
  return w.Take();
}

TelephoneRingArgs TelephoneRingArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  TelephoneRingArgs a;
  a.caller_id = r.ReadString();
  a.line = r.ReadU32();
  return a;
}

std::vector<uint8_t> CallProgressArgs::Encode() const {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(state));
  return w.Take();
}

CallProgressArgs CallProgressArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  CallProgressArgs a;
  a.state = static_cast<CallState>(r.ReadU8());
  return a;
}

std::vector<uint8_t> DtmfReceivedArgs::Encode() const {
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(digit));
  return w.Take();
}

DtmfReceivedArgs DtmfReceivedArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  DtmfReceivedArgs a;
  a.digit = static_cast<char>(r.ReadU8());
  return a;
}

std::vector<uint8_t> RecorderStoppedArgs::Encode() const {
  ByteWriter w;
  w.WriteU8(reason);
  w.WriteU64(samples);
  return w.Take();
}

RecorderStoppedArgs RecorderStoppedArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  RecorderStoppedArgs a;
  a.reason = r.ReadU8();
  a.samples = r.ReadU64();
  return a;
}

std::vector<uint8_t> RecognitionArgs::Encode() const {
  ByteWriter w;
  w.WriteString(word);
  w.WriteU32(score);
  return w.Take();
}

RecognitionArgs RecognitionArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  RecognitionArgs a;
  a.word = r.ReadString();
  a.score = r.ReadU32();
  return a;
}

std::vector<uint8_t> SyncMarkArgs::Encode() const {
  ByteWriter w;
  w.WriteU64(position_samples);
  w.WriteI64(device_time);
  w.WriteU64(total_samples);
  return w.Take();
}

SyncMarkArgs SyncMarkArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  SyncMarkArgs a;
  a.position_samples = r.ReadU64();
  a.device_time = r.ReadI64();
  a.total_samples = r.ReadU64();
  return a;
}

std::vector<uint8_t> PropertyNotifyArgs::Encode() const {
  ByteWriter w;
  w.WriteString(name);
  w.WriteU8(deleted);
  return w.Take();
}

PropertyNotifyArgs PropertyNotifyArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  PropertyNotifyArgs a;
  a.name = r.ReadString();
  a.deleted = r.ReadU8();
  return a;
}

std::vector<uint8_t> MapRequestArgs::Encode() const {
  ByteWriter w;
  w.WriteU32(loud);
  w.WriteU8(raise);
  return w.Take();
}

MapRequestArgs MapRequestArgs::Decode(std::span<const uint8_t> args) {
  ByteReader r(args);
  MapRequestArgs a;
  a.loud = r.ReadU32();
  a.raise = r.ReadU8();
  return a;
}

// ---------------------------------------------------------------------------
// Errors & helpers
// ---------------------------------------------------------------------------

void ErrorMessage::Encode(ByteWriter* w) const {
  w->WriteU8(static_cast<uint8_t>(code));
  w->WriteU32(resource);
  w->WriteU16(opcode);
  w->WriteString(detail);
}

ErrorMessage ErrorMessage::Decode(ByteReader* r) {
  ErrorMessage e;
  e.code = static_cast<ErrorCode>(r->ReadU8());
  e.resource = r->ReadU32();
  e.opcode = r->ReadU16();
  e.detail = r->ReadString();
  return e;
}

void EncodeFormat(ByteWriter* w, const AudioFormat& f) {
  w->WriteU8(static_cast<uint8_t>(f.encoding));
  w->WriteU32(f.sample_rate_hz);
}

AudioFormat DecodeFormat(ByteReader* r) {
  AudioFormat f;
  f.encoding = static_cast<Encoding>(r->ReadU8());
  f.sample_rate_hz = r->ReadU32();
  return f;
}

std::vector<uint8_t> FrameMessage(MessageType type, uint16_t code, uint32_t sequence,
                                  std::span<const uint8_t> payload) {
  ByteWriter w;
  MessageHeader h;
  h.type = type;
  h.code = code;
  h.length = static_cast<uint32_t>(payload.size());
  h.sequence = sequence;
  h.Encode(&w);
  w.WriteBytes(payload);
  return w.Take();
}

}  // namespace aud
