#include "src/wire/attributes.h"

#include <algorithm>

namespace aud {

namespace {
// Wire kinds for AttrValue alternatives.
constexpr uint8_t kKindU32 = 0;
constexpr uint8_t kKindI32 = 1;
constexpr uint8_t kKindString = 2;
}  // namespace

void AttrList::Set(AttrTag tag, AttrValue value) {
  for (Attr& a : attrs_) {
    if (a.tag == tag) {
      a.value = std::move(value);
      return;
    }
  }
  attrs_.push_back({tag, std::move(value)});
}

bool AttrList::Remove(AttrTag tag) {
  auto it = std::find_if(attrs_.begin(), attrs_.end(),
                         [tag](const Attr& a) { return a.tag == tag; });
  if (it == attrs_.end()) {
    return false;
  }
  attrs_.erase(it);
  return true;
}

std::optional<uint32_t> AttrList::GetU32(AttrTag tag) const {
  for (const Attr& a : attrs_) {
    if (a.tag == tag) {
      if (const auto* v = std::get_if<uint32_t>(&a.value)) {
        return *v;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<int32_t> AttrList::GetI32(AttrTag tag) const {
  for (const Attr& a : attrs_) {
    if (a.tag == tag) {
      if (const auto* v = std::get_if<int32_t>(&a.value)) {
        return *v;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<std::string> AttrList::GetString(AttrTag tag) const {
  for (const Attr& a : attrs_) {
    if (a.tag == tag) {
      if (const auto* v = std::get_if<std::string>(&a.value)) {
        return *v;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool AttrList::GetBool(AttrTag tag, bool default_value) const {
  auto v = GetU32(tag);
  if (!v) {
    return default_value;
  }
  return *v != 0;
}

bool AttrList::Has(AttrTag tag) const {
  return std::any_of(attrs_.begin(), attrs_.end(),
                     [tag](const Attr& a) { return a.tag == tag; });
}

void AttrList::Merge(const AttrList& other) {
  for (const Attr& a : other.attrs_) {
    Set(a.tag, a.value);
  }
}

void AttrList::Encode(ByteWriter* w) const {
  w->WriteU16(static_cast<uint16_t>(attrs_.size()));
  for (const Attr& a : attrs_) {
    w->WriteU16(static_cast<uint16_t>(a.tag));
    if (const auto* u = std::get_if<uint32_t>(&a.value)) {
      w->WriteU8(kKindU32);
      w->WriteU32(*u);
    } else if (const auto* i = std::get_if<int32_t>(&a.value)) {
      w->WriteU8(kKindI32);
      w->WriteI32(*i);
    } else {
      w->WriteU8(kKindString);
      w->WriteString(std::get<std::string>(a.value));
    }
  }
}

AttrList AttrList::Decode(ByteReader* r) {
  AttrList list;
  uint16_t count = r->ReadU16();
  for (uint16_t i = 0; i < count && r->ok(); ++i) {
    auto tag = static_cast<AttrTag>(r->ReadU16());
    uint8_t kind = r->ReadU8();
    switch (kind) {
      case kKindU32:
        list.attrs_.push_back({tag, r->ReadU32()});
        break;
      case kKindI32:
        list.attrs_.push_back({tag, r->ReadI32()});
        break;
      case kKindString:
        list.attrs_.push_back({tag, r->ReadString()});
        break;
      default:
        // Unknown kind: poison the reader by over-reading is wrong; instead
        // stop parsing. The caller will see a short list and, for requests,
        // the dispatcher validates reader.ok().
        return list;
    }
  }
  return list;
}

}  // namespace aud
