#include "src/synth/phonemes.h"

#include <sstream>

namespace aud {

namespace {
// Formant targets are textbook male-voice averages (Peterson & Barney and
// successors), rounded; consonant values are loci adequate for an
// intelligible 1991-grade robot voice.
const std::vector<Phoneme> kInventory = {
    // Vowels.
    {"AA", PhonationType::kVoiced, 730, 1090, 2440, 140, 1.0},   // f-a-ther
    {"AE", PhonationType::kVoiced, 660, 1720, 2410, 130, 1.0},   // c-a-t
    {"AH", PhonationType::kVoiced, 640, 1190, 2390, 100, 0.9},   // b-u-t
    {"AO", PhonationType::kVoiced, 570, 840, 2410, 140, 1.0},    // b-ough-t
    {"AW", PhonationType::kVoiced, 660, 1200, 2350, 160, 1.0},   // h-ow
    {"AY", PhonationType::kVoiced, 660, 1400, 2400, 160, 1.0},   // h-i-de
    {"EH", PhonationType::kVoiced, 530, 1840, 2480, 110, 0.95},  // b-e-d
    {"ER", PhonationType::kVoiced, 490, 1350, 1690, 120, 0.9},   // b-ir-d
    {"EY", PhonationType::kVoiced, 480, 2000, 2600, 150, 1.0},   // d-ay
    {"IH", PhonationType::kVoiced, 390, 1990, 2550, 90, 0.9},    // b-i-t
    {"IY", PhonationType::kVoiced, 270, 2290, 3010, 120, 0.95},  // b-ea-t
    {"OW", PhonationType::kVoiced, 490, 910, 2450, 150, 1.0},    // b-oa-t
    {"OY", PhonationType::kVoiced, 520, 1000, 2500, 170, 1.0},   // b-oy
    {"UH", PhonationType::kVoiced, 440, 1020, 2240, 90, 0.85},   // b-oo-k
    {"UW", PhonationType::kVoiced, 300, 870, 2240, 130, 0.9},    // b-oo-t

    // Semivowels / liquids / nasals.
    {"W", PhonationType::kVoiced, 300, 610, 2200, 70, 0.7},
    {"Y", PhonationType::kVoiced, 270, 2100, 2900, 70, 0.7},
    {"R", PhonationType::kVoiced, 420, 1300, 1600, 80, 0.7},
    {"L", PhonationType::kVoiced, 380, 880, 2575, 80, 0.7},
    {"M", PhonationType::kVoiced, 280, 900, 2200, 80, 0.6},
    {"N", PhonationType::kVoiced, 280, 1700, 2600, 80, 0.6},
    {"NG", PhonationType::kVoiced, 280, 2300, 2750, 90, 0.6},

    // Fricatives.
    {"S", PhonationType::kUnvoiced, 0, 4500, 0, 100, 0.5},
    {"SH", PhonationType::kUnvoiced, 0, 2500, 0, 110, 0.55},
    {"F", PhonationType::kUnvoiced, 0, 1400, 0, 90, 0.35},
    {"TH", PhonationType::kUnvoiced, 0, 1600, 0, 90, 0.3},
    {"HH", PhonationType::kUnvoiced, 500, 1500, 2500, 60, 0.3},
    {"Z", PhonationType::kMixed, 250, 4300, 0, 90, 0.5},
    {"ZH", PhonationType::kMixed, 250, 2400, 0, 100, 0.5},
    {"V", PhonationType::kMixed, 250, 1300, 0, 70, 0.4},
    {"DH", PhonationType::kMixed, 250, 1500, 0, 60, 0.35},

    // Stops.
    {"P", PhonationType::kStop, 0, 1100, 0, 90, 0.6},
    {"B", PhonationType::kStop, 200, 900, 2100, 70, 0.6},
    {"T", PhonationType::kStop, 0, 3800, 0, 90, 0.6},
    {"D", PhonationType::kStop, 200, 1700, 2600, 70, 0.6},
    {"K", PhonationType::kStop, 0, 2200, 0, 90, 0.6},
    {"G", PhonationType::kStop, 200, 2000, 2500, 70, 0.6},

    // Affricates approximated as stop+fricative colour.
    {"CH", PhonationType::kStop, 0, 2800, 0, 110, 0.55},
    {"JH", PhonationType::kStop, 220, 2500, 0, 100, 0.55},

    // Pauses.
    {"SIL", PhonationType::kSilence, 0, 0, 0, 120, 0.0},
    {"PAU", PhonationType::kSilence, 0, 0, 0, 250, 0.0},
};
}  // namespace

const std::vector<Phoneme>& PhonemeInventory() { return kInventory; }

const Phoneme* FindPhoneme(std::string_view symbol) {
  for (const Phoneme& p : kInventory) {
    if (p.symbol == symbol) {
      return &p;
    }
  }
  return nullptr;
}

std::vector<const Phoneme*> ParsePhonemeString(std::string_view phonemes) {
  std::vector<const Phoneme*> out;
  std::istringstream stream{std::string(phonemes)};
  std::string token;
  while (stream >> token) {
    for (char& c : token) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (const Phoneme* p = FindPhoneme(token)) {
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace aud
