#include "src/synth/synthesizer.h"

namespace aud {

TextToSpeech::TextToSpeech(uint32_t sample_rate_hz) : synth_(sample_rate_hz) {}

std::vector<Sample> TextToSpeech::Synthesize(const std::string& text) {
  return SynthesizePhonemes(lts_.ConvertText(text));
}

std::vector<Sample> TextToSpeech::SynthesizePhonemes(const std::string& phonemes) {
  std::vector<Sample> out;
  auto sequence = ParsePhonemeString(phonemes);
  synth_.Render(sequence, params_, &out);
  return out;
}

void TextToSpeech::AddException(const std::string& word, const std::string& phonemes) {
  lts_.AddException(word, phonemes);
}

void TextToSpeech::ClearExceptions() { lts_.ClearExceptions(); }

bool TextToSpeech::SetLanguage(const std::string& language_tag) {
  if (language_tag.rfind("en", 0) == 0) {
    language_ = language_tag;
    return true;
  }
  return false;
}

}  // namespace aud
