// Text-to-speech front door: combines the letter-to-sound stage and the
// formant vocal-tract model. This is the engine behind the protocol's
// speech-synthesizer device class (SpeakText, SetTextLanguage, SetValues,
// SetExceptionList).

#ifndef SRC_SYNTH_SYNTHESIZER_H_
#define SRC_SYNTH_SYNTHESIZER_H_

#include <string>
#include <vector>

#include "src/common/sample.h"
#include "src/synth/formant.h"
#include "src/synth/lts_rules.h"

namespace aud {

class TextToSpeech {
 public:
  explicit TextToSpeech(uint32_t sample_rate_hz);

  // Renders `text` to PCM at the configured rate.
  std::vector<Sample> Synthesize(const std::string& text);

  // Renders a raw phoneme string ("HH AH L OW").
  std::vector<Sample> SynthesizePhonemes(const std::string& phonemes);

  // SetExceptionList support.
  void AddException(const std::string& word, const std::string& phonemes);
  void ClearExceptions();

  // SetValues support.
  VoiceParameters& parameters() { return params_; }
  const VoiceParameters& parameters() const { return params_; }

  // SetTextLanguage support. Only "en" variants are implemented; setting
  // any other tag fails.
  bool SetLanguage(const std::string& language_tag);
  const std::string& language() const { return language_; }

  uint32_t sample_rate_hz() const { return synth_.sample_rate_hz(); }

  const LetterToSound& letter_to_sound() const { return lts_; }

 private:
  LetterToSound lts_;
  FormantSynthesizer synth_;
  VoiceParameters params_;
  std::string language_ = "en";
};

}  // namespace aud

#endif  // SRC_SYNTH_SYNTHESIZER_H_
