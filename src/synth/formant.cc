#include "src/synth/formant.h"

#include <cmath>
#include <numbers>

namespace aud {

namespace {
// Fixed formant bandwidths (Hz), wider for higher formants.
constexpr double kBw1 = 90.0;
constexpr double kBw2 = 110.0;
constexpr double kBw3 = 170.0;

// Transition (coarticulation) fraction of each phoneme spent gliding from
// the previous phoneme's targets.
constexpr double kTransitionFraction = 0.35;
}  // namespace

void Resonator::Tune(double frequency_hz, double bandwidth_hz, uint32_t sample_rate_hz) {
  if (frequency_hz <= 0.0) {
    a_ = 0.0;
    b_ = 0.0;
    gain_ = 0.0;
    return;
  }
  double t = 1.0 / sample_rate_hz;
  double r = std::exp(-std::numbers::pi * bandwidth_hz * t);
  double theta = 2.0 * std::numbers::pi * frequency_hz * t;
  a_ = 2.0 * r * std::cos(theta);
  b_ = -r * r;
  gain_ = 1.0 - a_ - b_;  // Unity gain at DC-ish; adequate normalization.
}

double Resonator::Process(double x) {
  double y = gain_ * x + a_ * y1_ + b_ * y2_;
  y2_ = y1_;
  y1_ = y;
  return y;
}

void Resonator::Reset() {
  y1_ = 0.0;
  y2_ = 0.0;
}

FormantSynthesizer::FormantSynthesizer(uint32_t sample_rate_hz) : rate_(sample_rate_hz) {}

void FormantSynthesizer::Render(const std::vector<const Phoneme*>& phonemes,
                                const VoiceParameters& params, std::vector<Sample>* out) {
  const Phoneme* silence = FindPhoneme("SIL");
  const Phoneme* prev = silence;
  for (const Phoneme* p : phonemes) {
    double duration_scale = 1.0 / (params.speaking_rate <= 0.1 ? 0.1 : params.speaking_rate);
    size_t frames =
        static_cast<size_t>(rate_ * p->duration_ms * duration_scale / 1000.0);
    RenderTransition(*prev, *p, frames, params, out);
    prev = p;
  }
}

void FormantSynthesizer::RenderTransition(const Phoneme& from, const Phoneme& to,
                                          size_t frames, const VoiceParameters& params,
                                          std::vector<Sample>* out) {
  if (to.phonation == PhonationType::kSilence) {
    out->insert(out->end(), frames, 0);
    r1_.Reset();
    r2_.Reset();
    r3_.Reset();
    return;
  }

  size_t transition = static_cast<size_t>(frames * kTransitionFraction);
  // A stop begins with a closure gap, then a burst.
  size_t closure = 0;
  if (to.phonation == PhonationType::kStop) {
    closure = frames / 3;
    out->insert(out->end(), closure, 0);
  }

  double from_f1 = from.f1 > 0 ? from.f1 : to.f1;
  double from_f2 = from.f2 > 0 ? from.f2 : to.f2;
  double from_f3 = from.f3 > 0 ? from.f3 : to.f3;

  size_t voiced_frames = frames - closure;
  for (size_t i = 0; i < voiced_frames; ++i) {
    // Glide formants from the previous phoneme's targets.
    double t = transition > 0 && i < transition
                   ? static_cast<double>(i) / static_cast<double>(transition)
                   : 1.0;
    double f1 = (from_f1 + (to.f1 - from_f1) * t) * params.formant_shift;
    double f2 = (from_f2 + (to.f2 - from_f2) * t) * params.formant_shift;
    double f3 = (from_f3 + (to.f3 - from_f3) * t) * params.formant_shift;
    // Retune every 2 ms for glide smoothness without per-sample cost.
    if (i % (rate_ / 500 + 1) == 0) {
      r1_.Tune(to.f1 > 0 ? f1 : 0.0, kBw1, rate_);
      r2_.Tune(to.f2 > 0 ? f2 : 0.0, kBw2, rate_);
      r3_.Tune(to.f3 > 0 ? f3 : 0.0, kBw3, rate_);
    }

    // Source excitation.
    double voiced_src = 0.0;
    double noise_src = 0.0;
    // Glottal sawtooth-ish pulse train.
    glottal_phase_ += params.pitch_hz / rate_;
    if (glottal_phase_ >= 1.0) {
      glottal_phase_ -= 1.0;
    }
    voiced_src = (1.0 - 2.0 * glottal_phase_) * 0.6;
    // Xorshift white noise.
    noise_state_ ^= noise_state_ << 13;
    noise_state_ ^= noise_state_ >> 17;
    noise_state_ ^= noise_state_ << 5;
    noise_src = (static_cast<int32_t>(noise_state_) / 2147483648.0) * 0.5;

    double src = 0.0;
    switch (to.phonation) {
      case PhonationType::kVoiced:
        src = voiced_src;
        break;
      case PhonationType::kUnvoiced:
        src = noise_src;
        break;
      case PhonationType::kMixed:
        src = 0.6 * voiced_src + 0.4 * noise_src;
        break;
      case PhonationType::kStop: {
        // Burst: strong noise that decays across the release.
        double decay = 1.0 - static_cast<double>(i) / static_cast<double>(voiced_frames);
        src = noise_src * decay + (to.f1 > 0 ? voiced_src * 0.3 : 0.0);
        break;
      }
      case PhonationType::kSilence:
        break;
    }

    double y = r1_.Process(src) + 0.7 * r2_.Process(src) + 0.4 * r3_.Process(src);
    // Amplitude envelope: quick attack/decay at the phoneme edges.
    double env = 1.0;
    size_t edge = rate_ / 100;  // 10 ms
    if (i < edge) {
      env = static_cast<double>(i) / static_cast<double>(edge);
    } else if (voiced_frames - i < edge) {
      env = static_cast<double>(voiced_frames - i) / static_cast<double>(edge);
    }
    double v = y * to.amplitude * params.volume * env * 12000.0;
    if (v > 32767.0) {
      v = 32767.0;
    }
    if (v < -32768.0) {
      v = -32768.0;
    }
    out->push_back(static_cast<Sample>(v));
  }
}

}  // namespace aud
