// Letter-to-sound conversion: the "linguistically difficult" first stage
// of synthesis (paper section 1.1), run on the general-purpose processor.
// A compact context-sensitive rule set (in the tradition of the NRL rules
// behind 1980s synthesizers) plus a word-exception dictionary that the
// protocol's SetExceptionList command feeds ("override the normal
// pronunciation of words, such as names or technical terms").

#ifndef SRC_SYNTH_LTS_RULES_H_
#define SRC_SYNTH_LTS_RULES_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace aud {

// Text-to-phoneme converter with exception dictionary.
class LetterToSound {
 public:
  LetterToSound() = default;

  // Adds/replaces an exception: `word` (case-insensitive) pronounces as the
  // space-separated phoneme string.
  void AddException(const std::string& word, const std::string& phonemes);

  void ClearExceptions();
  size_t exception_count() const { return exceptions_.size(); }

  // Converts one word to a space-separated phoneme string.
  std::string ConvertWord(std::string_view word) const;

  // Converts running text: words become phonemes, spaces become nothing,
  // commas/periods insert pauses ("SIL"/"PAU"). Digits are spoken one at a
  // time ("42" -> "four two").
  std::string ConvertText(std::string_view text) const;

 private:
  std::map<std::string, std::string> exceptions_;
};

// Spoken form of a single digit character ('0'..'9'), as phonemes.
std::string_view DigitPhonemes(char digit);

}  // namespace aud

#endif  // SRC_SYNTH_LTS_RULES_H_
